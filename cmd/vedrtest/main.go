// Command vedrtest runs declarative conformance specs (internal/spec)
// through the scenario runner (internal/vedrtest) and reports assertion
// failures as unified diffs of expected vs. actual diagnosis fields.
//
// Usage:
//
//	vedrtest [-workers N] [-analyzerd PATH] [-artifacts DIR] [-in-process]
//	         <file.yaml | directory | glob> ...
//
// A directory argument runs every *.yaml inside it (sorted); a glob runs
// its matches. Specs fan out over -workers through the deterministic task
// pool, and all output is printed in input order after every spec
// completes, so stdout — including the final machine-readable JSON summary
// line — is byte-identical at any worker count.
//
// Exit status: 0 when every assertion passed, 1 when any assertion failed,
// 2 on usage errors or specs that failed to parse/validate (the error
// carries the offending line number).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/vedrtest"
)

func main() {
	os.Exit(run())
}

type summary struct {
	Specs        int `json:"specs"`
	Passed       int `json:"passed"`
	Failed       int `json:"failed"`
	LoadErrors   int `json:"load_errors"`
	Checks       int `json:"checks"`
	ChecksFailed int `json:"checks_failed"`
}

func run() int {
	workers := flag.Int("workers", 4, "specs to run concurrently (output is identical at any count)")
	analyzerdPath := flag.String("analyzerd", "", "prebuilt vedranalyzerd binary for end-to-end specs (default: go build on demand)")
	artifacts := flag.String("artifacts", "", "directory for failure artifacts (obs trace + JSON report); empty disables")
	inProcess := flag.Bool("in-process", false, "force analyzerd-mode specs to run in-process")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vedrtest [flags] <file.yaml | directory | glob> ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	files, err := resolveArgs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrtest:", err)
		return 2
	}

	r := &vedrtest.Runner{
		ForceInProcess: *inProcess,
		AnalyzerdPath:  *analyzerdPath,
		ArtifactsDir:   *artifacts,
	}
	reports := sweep.RunTasks(len(files), *workers, func(i int) *vedrtest.Report {
		return r.RunFile(files[i])
	})

	var sum summary
	sum.Specs = len(reports)
	for _, rep := range reports {
		total, failed := rep.Counts()
		sum.Checks += total
		sum.ChecksFailed += failed
		switch {
		case rep.LoadFailed:
			sum.LoadErrors++
			fmt.Printf("FAIL %s: %s\n", rep.File, rep.Err)
		case rep.Failed():
			sum.Failed++
			printFailure(rep)
		default:
			sum.Passed++
			fmt.Printf("ok   %s (%s, %d checks)\n", rep.File, rep.Mode, total)
		}
	}
	data, err := json.Marshal(sum)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrtest:", err)
		return 2
	}
	fmt.Printf("%s\n", data)
	switch {
	case sum.LoadErrors > 0:
		return 2
	case sum.Failed > 0:
		return 1
	default:
		return 0
	}
}

// printFailure renders one failed spec: the execution error, or a unified
// diff of expected vs. actual assertion fields.
func printFailure(rep *vedrtest.Report) {
	fmt.Printf("FAIL %s (%s)\n", rep.File, rep.Mode)
	if rep.Err != "" {
		fmt.Printf("     %s\n", rep.Err)
	}
	if diff := vedrtest.FailureDiff(rep); diff != "" {
		for _, line := range strings.Split(strings.TrimSuffix(diff, "\n"), "\n") {
			fmt.Printf("     %s\n", line)
		}
	}
	if rep.TracePath != "" {
		fmt.Printf("     trace: %s\n", rep.TracePath)
	}
	if rep.ReportPath != "" {
		fmt.Printf("     report: %s\n", rep.ReportPath)
	}
}

// resolveArgs expands each argument — file, directory, or glob — into spec
// files, preserving command-line order and deduplicating.
func resolveArgs(args []string) ([]string, error) {
	var files []string
	seen := make(map[string]bool)
	addFile := func(path string) {
		if !seen[path] {
			seen[path] = true
			files = append(files, path)
		}
	}
	for _, arg := range args {
		if st, err := os.Stat(arg); err == nil {
			if !st.IsDir() {
				addFile(arg)
				continue
			}
			matches, err := filepath.Glob(filepath.Join(arg, "*.yaml"))
			if err != nil {
				return nil, err
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("no *.yaml specs in directory %s", arg)
			}
			sort.Strings(matches)
			for _, m := range matches {
				addFile(m)
			}
			continue
		}
		matches, err := filepath.Glob(arg)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %q: %w", arg, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no spec files match %q", arg)
		}
		sort.Strings(matches)
		for _, m := range matches {
			addFile(m)
		}
	}
	return files, nil
}
