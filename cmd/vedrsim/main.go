// Command vedrsim runs one collective-communication scenario end-to-end on
// the simulated RoCEv2 fat-tree and prints Vedrfolnir's diagnosis.
//
// Usage:
//
//	vedrsim [-anomaly contention|incast|storm|backpressure|clean]
//	        [-seed N] [-system vedrfolnir|hawkeye-maxr|hawkeye-minr|full-polling]
//	        [-scale N] [-v] [-stages]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/perf"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/wire"
)

func main() {
	anomaly := flag.String("anomaly", "contention", "anomaly to inject: contention, incast, storm, backpressure, loop, imbalance, clean")
	system := flag.String("system", "vedrfolnir", "diagnosis system: vedrfolnir, hawkeye-maxr, hawkeye-minr, full-polling")
	seed := flag.Int64("seed", 1, "case seed")
	scaleDen := flag.Float64("scale", 90, "workload scale denominator")
	verbose := flag.Bool("v", false, "print the full diagnosis summary")
	dump := flag.String("dump", "", "write the diagnosis inputs as a JSON bundle (for vedranalyze)")
	tracePath := flag.String("trace", "", "write a sim-time Chrome trace (Perfetto-loadable) of the run")
	logRun := flag.Bool("log", false, "emit the run's structured sim-time log on stderr")
	stageTimes := flag.Bool("stages", false, "print hot-path stage wall-time breakdown on stderr (stdout and -dump stay byte-identical)")
	flag.Parse()

	kinds := map[string]scenario.AnomalyKind{
		"contention":   scenario.Contention,
		"incast":       scenario.Incast,
		"storm":        scenario.PFCStorm,
		"backpressure": scenario.PFCBackpressure,
		"loop":         scenario.Loop,
		"imbalance":    scenario.LoadImbalance,
		"clean":        scenario.Clean,
	}
	kind, ok := kinds[*anomaly]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown anomaly %q\n", *anomaly)
		os.Exit(2)
	}
	systems := map[string]scenario.SystemKind{
		"vedrfolnir":   scenario.Vedrfolnir,
		"hawkeye-maxr": scenario.HawkeyeMaxR,
		"hawkeye-minr": scenario.HawkeyeMinR,
		"full-polling": scenario.FullPolling,
	}
	sys, ok := systems[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	cfg := scenario.ConfigForScale(*scaleDen)

	cs, err := scenario.GenerateCase(kind, *seed, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := scenario.DefaultRunOptions(cfg)
	var scope *obs.Scope
	if *tracePath != "" || *logRun {
		scope = &obs.Scope{Metrics: obs.NewRegistry()}
		if *tracePath != "" {
			scope.Trace = obs.NewTracer()
		}
		if *logRun {
			scope.Log = obs.NewLogger(os.Stderr, slog.LevelInfo, nil)
		}
		opts.Obs = scope
	}
	// Stage wall times go to a dedicated registry, never the Obs scope:
	// the -dump bundle's metrics must stay byte-identical across runs.
	var stageReg *obs.Registry
	if *stageTimes {
		stageReg = obs.NewRegistry()
		opts.Stages = obs.NewStages(stageReg, perf.NanoNow())
	}
	start := time.Now()
	res, err := scenario.Run(cs, sys, cfg, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scenario:   %v (seed %d) under %v\n", kind, *seed, sys)
	fmt.Printf("completed:  %v (simulated %v, wall %v)\n",
		res.Completed, res.CollectiveTime, time.Since(start).Round(time.Millisecond))
	fmt.Printf("outcome:    %v\n", res.Outcome)
	if len(cs.Flows) > 0 {
		fmt.Println("ground truth flows:")
		for _, f := range cs.Flows {
			fmt.Printf("  %v  %d bytes starting at %v\n", f.Key, f.Bytes, f.StartAt)
		}
	}
	if cs.Kind == scenario.PFCStorm {
		fmt.Printf("ground truth storm: switch %d ingress %d for %v from %v\n",
			cs.StormSwitch, cs.StormPort, cs.StormDur, cs.StormStart)
	}
	if cs.Kind == scenario.PFCBackpressure {
		fmt.Printf("ground truth root: %v\n", cs.BackpressureRoot)
	}
	fmt.Printf("detections: %d reports, %d telemetry bytes, %d bandwidth bytes\n",
		res.ReportCount, res.Overhead.TelemetryBytes, res.Overhead.Bandwidth())
	if stageReg != nil {
		fmt.Fprintf(os.Stderr, "%-20s %10s %12s %10s %10s %10s\n",
			"stage", "count", "total(ms)", "p50(us)", "p95(us)", "p99(us)")
		for _, r := range perf.StageSummary(stageReg) {
			fmt.Fprintf(os.Stderr, "%-20s %10d %12.1f %10.1f %10.1f %10.1f\n",
				r.Stage, r.Count, r.TotalMs, r.P50Us, r.P95Us, r.P99Us)
		}
	}
	if *tracePath != "" {
		if err := scope.Trace.WriteFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *tracePath, scope.Trace.Len())
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bundle := wire.NewBundle(res.Records, res.Reports, res.CFs)
		if scope != nil {
			bundle.Metrics = scope.M().Flatten()
		}
		if err := bundle.Write(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("bundle written to", *dump)
	}
	if *verbose {
		fmt.Println("---- diagnosis ----")
		fmt.Print(res.Diag.Summary())
	} else {
		for _, f := range res.Diag.Findings {
			fmt.Printf("finding:    %v at %v", f.Type, f.Port)
			if len(f.Culprits) > 0 {
				fmt.Printf(" culprits=%v", f.Culprits)
			}
			if f.RootPort.Node != 0 || f.RootPort.Port != 0 {
				fmt.Printf(" root=%v", f.RootPort)
			}
			fmt.Println()
		}
	}
}
