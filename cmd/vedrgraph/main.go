// Command vedrgraph emits the Fig 14 case-study graphs as Graphviz DOT:
// the pruned waiting graph (critical path highlighted) and the network
// provenance graph around the contended ports.
//
// Usage:
//
//	vedrgraph -out dir [-scale N]
//
// Writes waiting.dot and provenance.dot into dir (default ".").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vedrfolnir/internal/experiments"
	"vedrfolnir/internal/scenario"
)

func main() {
	out := flag.String("out", ".", "output directory for DOT files")
	scaleDen := flag.Float64("scale", 90, "workload scale denominator")
	flag.Parse()

	cfg := scenario.ConfigForScale(*scaleDen)

	study, err := experiments.Fig14(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	files := []struct{ name, content string }{
		{"waiting.dot", study.WaitDOT},
		{"provenance.dot", study.ProvDOT},
	}
	for _, f := range files {
		path := filepath.Join(*out, f.name)
		if err := os.WriteFile(path, []byte(f.content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	fmt.Println("critical path:", study.CriticalStr)
	fmt.Printf("ratings: BF1=%.0f BF2=%.0f\n", study.BF1Score, study.BF2Score)
}
