// Command vedrgraph emits the Fig 14 case-study graphs as Graphviz DOT:
// the pruned waiting graph (critical path highlighted) and the network
// provenance graph around the contended ports.
//
// Usage:
//
//	vedrgraph -out dir [-scale N]
//
// Writes waiting.dot and provenance.dot into dir (default ".").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vedrfolnir/internal/experiments"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
)

func main() {
	out := flag.String("out", ".", "output directory for DOT files")
	scaleDen := flag.Float64("scale", 90, "workload scale denominator")
	tracePath := flag.String("trace", "", "also write a sim-time Chrome trace of the case-study run")
	flag.Parse()

	cfg := scenario.ConfigForScale(*scaleDen)

	var scope *obs.Scope
	if *tracePath != "" {
		scope = &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
	}
	study, err := experiments.Fig14Obs(cfg, scope)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tracePath != "" {
		if err := scope.Trace.WriteFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *tracePath, scope.Trace.Len())
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	files := []struct{ name, content string }{
		{"waiting.dot", study.WaitDOT},
		{"provenance.dot", study.ProvDOT},
	}
	for _, f := range files {
		path := filepath.Join(*out, f.name)
		if err := os.WriteFile(path, []byte(f.content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	fmt.Println("critical path:", study.CriticalStr)
	fmt.Printf("ratings: BF1=%.0f BF2=%.0f\n", study.BF1Score, study.BF2Score)
}
