// Command vedranalyze runs Vedrfolnir's analyzer offline over a diagnosis
// bundle (step records + telemetry reports + collective-flow census in the
// wire JSON format), as produced by `vedrsim -dump`.
//
// Usage:
//
//	vedranalyze -in bundle.json [-json]
//
// With -json the diagnosis is emitted as machine-readable JSON; otherwise a
// human-readable summary prints.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

func main() {
	in := flag.String("in", "", "input bundle (JSON; - for stdin)")
	asJSON := flag.Bool("json", false, "emit the diagnosis as JSON")
	tracePath := flag.String("trace", "", "write a Chrome trace of the analyzer phases")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vedranalyze: -in required")
		os.Exit(2)
	}
	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyze:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	bundle, err := wire.ReadBundle(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyze:", err)
		os.Exit(1)
	}
	var scope *obs.Scope
	if *tracePath != "" {
		scope = &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
		scope.Trace.NameProcess(obs.PidAnalyzer, "analyzer")
		scope.Trace.NameThread(obs.PidAnalyzer, 0, "phases")
	}
	diag := bundle.AnalyzeObs(scope)
	if *tracePath != "" {
		if err := scope.Trace.WriteFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyze:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vedranalyze: trace written to %s (%d events)\n", *tracePath, scope.Trace.Len())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(diag)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyze:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("inputs: %d step records, %d reports, %d collective flows\n",
		len(bundle.Records), len(bundle.Reports), len(bundle.CFs))
	fmt.Print(diag.Summary())
}
