// Command vedranalyze runs Vedrfolnir's analyzer offline over a diagnosis
// bundle (step records + telemetry reports + collective-flow census in the
// wire JSON format), as produced by `vedrsim -dump`.
//
// Usage:
//
//	vedranalyze -in bundle.json [-json]
//
// With -json the diagnosis is emitted as machine-readable JSON; otherwise a
// human-readable summary prints.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vedrfolnir/internal/wire"
)

func main() {
	in := flag.String("in", "", "input bundle (JSON; - for stdin)")
	asJSON := flag.Bool("json", false, "emit the diagnosis as JSON")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "vedranalyze: -in required")
		os.Exit(2)
	}
	f := os.Stdin
	if *in != "-" {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyze:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	bundle, err := wire.ReadBundle(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyze:", err)
		os.Exit(1)
	}
	diag := bundle.Analyze()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(diag)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyze:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("inputs: %d step records, %d reports, %d collective flows\n",
		len(bundle.Records), len(bundle.Reports), len(bundle.CFs))
	fmt.Print(diag.Summary())
}
