// Command vedrsweep drives the internal/sweep engine over a checkpoint
// journal: it runs a named case sweep (the paper's figure grids) across a
// worker pool, journaling every finished case so a killed run can be
// resumed, and inspects journals.
//
// Usage:
//
//	vedrsweep run    -journal path [-sweep fig9|fig12|fig13a|fig13b|ext|slowdowns]
//	                 [-paper] [-scale N] [-workers N] [-cpuprofile f] [-memprofile f]
//	vedrsweep resume -journal path [-workers N] [-cpuprofile f] [-memprofile f]
//	vedrsweep status -journal path
//
// run starts a fresh sweep and refuses an existing journal; resume picks
// an interrupted journal up where it stopped (the sweep spec — job set,
// census, scale — is rebuilt from the journal header) and completes it to
// the same bytes an uninterrupted run would have produced. status reports
// completed/failed/pending counts without running anything. Ctrl-C
// interrupts cleanly: in-flight cases finish and are journaled first.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vedrfolnir/internal/experiments"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/perf"
	"vedrfolnir/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	journal := fs.String("journal", "", "journal file (JSONL); required")
	name := fs.String("sweep", "fig9", "sweep to run: "+strings.Join(experiments.SweepNames(), "|"))
	paper := fs.Bool("paper", false, "run the full paper case census (60/60/40/60)")
	scaleDen := fs.Float64("scale", 90, "workload scale denominator")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	obsListen := fs.String("obs-listen", "", "serve live /metrics, /debug/vars and /debug/pprof on this address while the sweep runs")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf := fs.String("memprofile", "", "write a heap profile at exit to this file")
	fs.Parse(args)
	if *journal == "" {
		fatal(fmt.Errorf("-journal is required"))
	}

	// Profiles flush through the run/resume exit paths below (which call
	// os.Exit, skipping defers), so execute owns them.
	prof := profileOpts{cpu: *cpuProf, mem: *memProf}

	switch cmd {
	case "run":
		if _, err := os.Stat(*journal); err == nil {
			fatal(fmt.Errorf("journal %s already exists; use `vedrsweep resume` to continue it", *journal))
		}
		plan, err := experiments.PlanSweep(*name, *paper, *scaleDen)
		if err != nil {
			fatal(err)
		}
		execute(plan, *journal, *workers, *obsListen, prof)
	case "resume":
		header, _, skipped, err := sweep.ReadJournal(*journal)
		if err != nil {
			fatal(err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "vedrsweep: journal %s: skipped %d corrupt line(s); those jobs re-run\n",
				*journal, skipped)
		}
		plan, err := experiments.PlanFromSpec(header.Spec)
		if err != nil {
			fatal(err)
		}
		execute(plan, *journal, *workers, *obsListen, prof)
	case "status":
		status(*journal)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vedrsweep <run|resume|status> -journal path [flags]")
	fmt.Fprintln(os.Stderr, "run flags: -sweep name -paper -scale N -workers N -cpuprofile f -memprofile f")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedrsweep:", err)
	os.Exit(1)
}

// profileOpts carries the optional pprof capture paths.
type profileOpts struct{ cpu, mem string }

// start begins CPU profiling (if requested) and returns a flush that
// finishes both profiles; execute calls it before every exit path because
// os.Exit skips defers.
func (p profileOpts) start() func() {
	var stopCPU func() error
	if p.cpu != "" {
		var err error
		if stopCPU, err = perf.StartCPUProfile(p.cpu); err != nil {
			fatal(err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintln(os.Stderr, "vedrsweep:", err)
			}
		}
		if p.mem != "" {
			if err := perf.WriteHeapProfile(p.mem); err != nil {
				fmt.Fprintln(os.Stderr, "vedrsweep:", err)
			}
		}
	}
}

// execute runs (or completes) the planned sweep against the journal.
func execute(plan *experiments.SweepPlan, path string, workers int, obsListen string, prof profileOpts) {
	flushProfiles := prof.start()
	defer flushProfiles()
	j, err := sweep.OpenJournal(path, plan.Spec)
	if err != nil {
		fatal(err)
	}
	defer j.Close()

	// The sweep always feeds a metrics registry: the final summary line is
	// sourced from it, and -obs-listen exposes it (plus expvar and pprof)
	// live while cases run. The journal and stdout stay byte-identical
	// either way.
	reg := obs.NewRegistry()
	scope := &obs.Scope{Metrics: reg}
	if obsListen != "" {
		reg.PublishExpvar("vedrsweep")
		ln, err := net.Listen("tcp", obsListen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vedrsweep: obs on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, obs.Mux(reg))
	}

	// SIGINT/SIGTERM stop dispatch; in-flight cases finish and are
	// journaled, so the next resume loses nothing.
	interrupt := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "vedrsweep: interrupted; finishing in-flight cases")
		signal.Stop(sigs)
		close(interrupt)
	}()

	fmt.Fprintf(os.Stderr, "vedrsweep: %s (%d cases) -> %s\n", plan.Spec.Name, len(plan.Jobs), path)
	sum, err := sweep.Run(plan.Jobs, plan.Exec, sweep.Options{
		Workers:   workers,
		Journal:   j,
		Progress:  os.Stderr,
		Interrupt: interrupt,
		Obs:       scope,
	})
	if err != nil {
		fatal(err)
	}
	summaryLine(reg)
	switch {
	case sum.Interrupted:
		fmt.Printf("interrupted: %d/%d cases journaled, %d pending; resume with:\n  vedrsweep resume -journal %s\n",
			len(plan.Jobs)-len(sum.Pending), len(plan.Jobs), len(sum.Pending), path)
		flushProfiles()
		_ = j.Close()
		os.Exit(3)
	case len(sum.Failed) > 0:
		fmt.Printf("done: %d cases (%d resumed from journal), %d failed:\n",
			len(plan.Jobs), sum.Skipped, len(sum.Failed))
		for _, k := range sum.Failed {
			fmt.Println(" ", k)
		}
		flushProfiles()
		_ = j.Close()
		os.Exit(1)
	default:
		fmt.Printf("done: %d cases (%d resumed from journal), journal compacted\n",
			len(plan.Jobs), sum.Skipped)
	}
}

// summaryLine emits one machine-readable key=value line on stderr sourced
// from the observability registry, for scripts wrapping vedrsweep. stdout
// is left untouched so its bytes stay identical to uninstrumented runs.
func summaryLine(reg *obs.Registry) {
	m := reg.Flatten()
	fmt.Fprintf(os.Stderr,
		"vedrsweep: summary cases=%d done=%d failed=%d skipped=%d pending=%d interrupted=%d wall_ms=%d\n",
		m["vedr_sweep_cases"], m["vedr_sweep_cases_done_total"],
		m["vedr_sweep_cases_failed_total"], m["vedr_sweep_cases_skipped_total"],
		m["vedr_sweep_cases_pending"], m["vedr_sweep_interrupted"], m["vedr_sweep_wall_ms"])
}

// status summarizes a journal without running anything.
func status(path string) {
	header, results, skippedLines, err := sweep.ReadJournal(path)
	if err != nil {
		fatal(err)
	}
	if skippedLines > 0 {
		fmt.Fprintf(os.Stderr, "vedrsweep: journal %s: skipped %d corrupt line(s)\n", path, skippedLines)
	}
	plan, err := experiments.PlanFromSpec(header.Spec)
	if err != nil {
		fatal(err)
	}
	// Later lines supersede earlier ones (a resume re-runs failed jobs).
	state := map[string]string{}
	for _, r := range results {
		state[r.Key] = r.Err
	}
	var done, failed int
	var failedKeys []string
	for _, job := range plan.Jobs {
		errStr, ok := state[job.Key()]
		switch {
		case !ok:
		case errStr == "":
			done++
		default:
			failed++
			failedKeys = append(failedKeys, fmt.Sprintf("%s: %s", job.Key(), errStr))
		}
	}
	total := len(plan.Jobs)
	fmt.Printf("sweep:   %s (paper=%v scale=1/%g)\n", header.Spec.Name, header.Spec.Paper, header.Spec.ScaleDen)
	fmt.Printf("journal: %s\n", path)
	fmt.Printf("cases:   %d/%d done, %d failed, %d pending\n", done, total, failed, total-done-failed)
	for _, k := range failedKeys {
		fmt.Println("  failed:", k)
	}
	if done+failed < total {
		fmt.Printf("resume with: vedrsweep resume -journal %s\n", path)
	}
}
