// Command vedrperf runs the repo's named performance workloads, captures
// pprof profiles, and gates CI on the checked-in perf baseline.
//
// Usage:
//
//	vedrperf sweep    [-workers 1,2,4] [-seeds N] [-repeat N] [-out BENCH_sweep.json]
//	                  [-stages] [-cpuprofile f] [-memprofile f]
//	vedrperf analyzerd [-bin vedranalyzerd] [-shards 1,2,4] [-latency-msgs N]
//	                  [-throughput-msgs N] [-iters N] [-out BENCH_analyzerd.json]
//	                  [-stages] [-cpuprofile f] [-memprofile f]
//	vedrperf gate     [-baseline perf/baseline.json] [-workers 1] [-seeds N]
//	                  [-update-baseline] [-canary-extra-allocs N]
//
// sweep measures merged-sweep throughput (the Fig 9 contention subset) at
// each worker-pool size and writes the BENCH_sweep.json trajectory rows.
// analyzerd measures the analyzer: fleet ingest throughput and ack latency
// at each shard count (needs -bin, a built cmd/vedranalyzerd), plus
// repeated full-pipeline diagnose latency. gate re-measures the sweep
// workload and fails (exit 1) if allocs/case, ns/case, or cases/s regress
// past the baseline's tolerance; -update-baseline rewrites the baseline
// from the fresh measurement instead. -canary-extra-allocs burns N heap
// allocations per case — CI uses it to prove the gate can fail.
//
// All workloads run the pinned perf.BenchConfig workload so rows are
// comparable across machines and PRs; -stages prints the hot-path stage
// timing breakdown (event queue, fabric forward, telemetry, waitgraph,
// provenance, diagnose) on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "sweep":
		runSweep(args)
	case "analyzerd":
		runAnalyzerd(args)
	case "gate":
		runGate(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vedrperf <sweep|analyzerd|gate> [flags]")
	fmt.Fprintln(os.Stderr, "  sweep:     worker-scaling curve -> BENCH_sweep.json")
	fmt.Fprintln(os.Stderr, "  analyzerd: fleet ingest + diagnose latency -> BENCH_analyzerd.json")
	fmt.Fprintln(os.Stderr, "  gate:      compare a fresh sweep against perf/baseline.json")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedrperf:", err)
	os.Exit(1)
}

// parseCounts parses a comma-separated list of positive ints.
func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q in %q", part, s)
		}
		out = append(out, n)
	}
	return out, nil
}

// profiled wraps a workload with optional CPU/heap profile capture.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		stop, err := perf.StartCPUProfile(cpuPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "vedrperf:", err)
			} else {
				fmt.Fprintln(os.Stderr, "vedrperf: cpu profile written to", cpuPath)
			}
		}()
	}
	if memPath != "" {
		defer func() {
			if err := perf.WriteHeapProfile(memPath); err != nil {
				fmt.Fprintln(os.Stderr, "vedrperf:", err)
			} else {
				fmt.Fprintln(os.Stderr, "vedrperf: heap profile written to", memPath)
			}
		}()
	}
	return fn()
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "vedrperf: wrote", path)
	return nil
}

func printStages(reg *obs.Registry) {
	rows := perf.StageSummary(reg)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%-20s %10s %12s %10s %10s %10s\n",
		"stage", "count", "total(ms)", "p50(us)", "p95(us)", "p99(us)")
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "%-20s %10d %12.1f %10.1f %10.1f %10.1f\n",
			r.Stage, r.Count, r.TotalMs, r.P50Us, r.P95Us, r.P99Us)
	}
}

func runSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workersCSV := fs.String("workers", "", "comma-separated pool sizes (default 1..NumCPU)")
	seeds := fs.Int("seeds", 8, "contention cases per run")
	repeat := fs.Int("repeat", 1, "repetitions of the job set per pool size")
	out := fs.String("out", "BENCH_sweep.json", "output path for the trajectory rows")
	stages := fs.Bool("stages", false, "print the hot-path stage timing breakdown on stderr")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file")
	extra := fs.Int("canary-extra-allocs", 0, "burn N extra heap allocations per case (CI gate canary)")
	_ = fs.Parse(args)

	workers, err := parseCounts(*workersCSV)
	if err != nil {
		fatal(err)
	}
	cfg := perf.BenchConfig()
	reg := obs.NewRegistry()
	var rows []perf.SweepRow
	err = profiled(*cpuProf, *memProf, func() error {
		var err error
		rows, err = perf.RunSweepCurve(cfg, perf.BenchRunOptions(cfg), perf.SweepCurveConfig{
			Workers:            workers,
			Seeds:              *seeds,
			Repeat:             *repeat,
			Registry:           reg,
			Progress:           os.Stderr,
			ExtraAllocsPerCase: *extra,
		})
		return err
	})
	if err != nil {
		fatal(err)
	}
	if *stages {
		printStages(reg)
	}
	if err := writeJSON(*out, rows); err != nil {
		fatal(err)
	}
}

func runAnalyzerd(args []string) {
	fs := flag.NewFlagSet("analyzerd", flag.ExitOnError)
	bin := fs.String("bin", "", "path to a built cmd/vedranalyzerd binary (empty: skip the fleet ingest workload)")
	shardsCSV := fs.String("shards", "1,2,4", "comma-separated fleet widths for the ingest workload")
	latMsgs := fs.Int("latency-msgs", 200, "acked one-at-a-time sends per width (ack-latency sample)")
	thrMsgs := fs.Int("throughput-msgs", 0, "batched sends per width (0 = four stream passes, min 1000)")
	iters := fs.Int("iters", 50, "timed diagnose.Analyze calls")
	seed := fs.Int64("seed", 0, "case seed for both workloads")
	out := fs.String("out", "BENCH_analyzerd.json", "output path")
	stages := fs.Bool("stages", false, "print the analyzer stage timing breakdown on stderr")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file")
	_ = fs.Parse(args)

	shards, err := parseCounts(*shardsCSV)
	if err != nil {
		fatal(err)
	}
	cfg := perf.BenchConfig()
	reg := obs.NewRegistry()
	var doc perf.AnalyzerdBench
	err = profiled(*cpuProf, *memProf, func() error {
		if *bin != "" {
			rows, err := perf.RunIngest(cfg, perf.BenchRunOptions(cfg), perf.IngestConfig{
				BinPath:        *bin,
				Shards:         shards,
				Seed:           *seed,
				LatencyMsgs:    *latMsgs,
				ThroughputMsgs: *thrMsgs,
				Registry:       reg,
				Progress:       os.Stderr,
			})
			if err != nil {
				return err
			}
			doc.Ingest = rows
		} else {
			fmt.Fprintln(os.Stderr, "vedrperf: -bin not set; skipping the fleet ingest workload")
		}
		row, err := perf.RunDiagnose(cfg, perf.BenchRunOptions(cfg), perf.DiagnoseConfig{
			Seed:     *seed,
			Iters:    *iters,
			Registry: reg,
		})
		if err != nil {
			return err
		}
		doc.Diagnose = row
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if *stages {
		printStages(reg)
	}
	if err := writeJSON(*out, doc); err != nil {
		fatal(err)
	}
}

func runGate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	baselinePath := fs.String("baseline", "perf/baseline.json", "checked-in baseline to compare against")
	workersCSV := fs.String("workers", "1", "comma-separated pool sizes to measure")
	seeds := fs.Int("seeds", 8, "contention cases per run")
	repeat := fs.Int("repeat", 1, "repetitions of the job set per pool size")
	update := fs.Bool("update-baseline", false, "rewrite the baseline from this measurement instead of gating")
	note := fs.String("note", "", "note recorded in the baseline on -update-baseline")
	extra := fs.Int("canary-extra-allocs", 0, "burn N extra heap allocations per case (proves the gate can fail)")
	_ = fs.Parse(args)

	workers, err := parseCounts(*workersCSV)
	if err != nil {
		fatal(err)
	}
	cfg := perf.BenchConfig()
	rows, err := perf.RunSweepCurve(cfg, perf.BenchRunOptions(cfg), perf.SweepCurveConfig{
		Workers:            workers,
		Seeds:              *seeds,
		Repeat:             *repeat,
		Registry:           obs.NewRegistry(),
		Progress:           os.Stderr,
		ExtraAllocsPerCase: *extra,
	})
	if err != nil {
		fatal(err)
	}

	if *update {
		b := &perf.Baseline{Note: *note, Tolerance: perf.Tolerance{}.WithDefaults(), Sweep: rows}
		if err := b.Save(*baselinePath); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "vedrperf: baseline updated:", *baselinePath)
		return
	}

	base, err := perf.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	violations := base.CompareSweep(rows)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "vedrperf: perf gate FAILED (%d violation(s) vs %s):\n",
			len(violations), *baselinePath)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  ", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "vedrperf: perf gate passed (%d row(s) vs %s)\n", len(rows), *baselinePath)
}
