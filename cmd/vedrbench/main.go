// Command vedrbench regenerates every table and figure of the paper's
// evaluation section (§IV) and prints the same rows/series the paper plots.
//
// Usage:
//
//	vedrbench [-fig 9|10|11|12|13|14|ext|chaos|all] [-paper] [-scale N]
//	          [-workers N] [-journal base] [-cpuprofile f] [-memprofile f]
//
// By default a reduced case census runs in seconds; -paper runs the full
// §IV-A census (60/60/40/60 cases per scenario). Case grids run on the
// internal/sweep worker pool (-workers, default GOMAXPROCS); -journal
// checkpoints each grid to base.<fig>.jsonl so an interrupted run resumes
// where it stopped (see cmd/vedrsweep for journal tooling). A failing case
// no longer aborts the run: completed rows still print, the failed case
// keys are reported at the end, and the exit status is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vedrfolnir/internal/experiments"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/perf"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/wire"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9, 10, 11, 12, 13, 14, ext, chaos or all")
	paper := flag.Bool("paper", false, "run the full paper case census (60/60/40/60)")
	scaleDen := flag.Float64("scale", 90, "workload scale denominator: sizes and times are 1/N of the paper's")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "checkpoint base path: each case grid journals to base.<fig>.jsonl")
	traceDir := flag.String("trace-dir", "", "write one sim-time Chrome trace per sweep/case study into this directory")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProf := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Profiles are flushed explicitly (not deferred) so the partial-failure
	// exit below still writes them; fatal() paths lose the profile.
	var stopCPU func() error
	if *cpuProf != "" {
		var err error
		if stopCPU, err = perf.StartCPUProfile(*cpuProf); err != nil {
			fatal(err)
		}
	}
	flushProfiles := func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			stopCPU = nil
		}
		if *memProf != "" {
			if err := perf.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	defer flushProfiles()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
	}

	cfg := scenario.ConfigForScale(*scaleDen)

	counts := experiments.SmallCaseCounts()
	if *paper {
		counts = experiments.PaperCaseCounts()
	}

	// One failing case degrades its figure instead of aborting the run;
	// every captured failure is reported (and the exit status set) at the
	// end. OnResult is invoked from the sweep's single merging goroutine,
	// so plain append is safe.
	var failed []string
	var journals []*sweep.Journal
	// Each sweep (and the Fig 14 case study) gets its own trace scope; the
	// files are written together at the end so a mid-run failure still
	// leaves the completed traces on disk in one place.
	type namedScope struct {
		name  string
		scope *obs.Scope
	}
	var scopes []namedScope
	newScope := func(name string) *obs.Scope {
		scope := &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
		scopes = append(scopes, namedScope{name, scope})
		return scope
	}
	sweepOpts := func(name string) sweep.Options {
		sw := sweep.Options{
			Workers:  *workers,
			Progress: os.Stderr,
			OnResult: func(r sweep.Result) {
				if r.Err != "" {
					failed = append(failed, fmt.Sprintf("%s: %s", r.Key, r.Err))
				}
			},
		}
		if *traceDir != "" {
			sw.Obs = newScope(name)
		}
		if *journal != "" {
			spec := wire.SweepSpec{Name: name, Paper: *paper, ScaleDen: *scaleDen}
			j, err := sweep.OpenJournal(fmt.Sprintf("%s.%s.jsonl", *journal, name), spec)
			if err != nil {
				fatal(err)
			}
			journals = append(journals, j)
			sw.Journal = j
		}
		return sw
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		fn()
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	var cells []experiments.Cell
	if want("9") || want("10") {
		// One sweep feeds both figures.
		opts := scenario.DefaultRunOptions(cfg)
		opts.Monitor.MaxDetectPerStep = 5 // Fig 9 uses "optimal parameters"
		var err error
		cells, err = experiments.Sweep(cfg, counts, experiments.Systems, opts, sweepOpts("fig9"))
		if err != nil {
			fatal(err)
		}
	}
	if want("9") {
		run("Fig 9: precision & recall vs baselines", func() { printFig9(cells) })
	}
	if want("10") {
		run("Fig 10: processing & bandwidth overhead", func() { printFig10(cells) })
	}
	if want("11") {
		run("Fig 11: host monitor overhead (testbed substitute)", printFig11)
	}
	if want("12") {
		run("Fig 12: precision & recall over RTT thresholds × detection counts", func() {
			rows, err := experiments.Fig12(cfg, counts, sweepOpts("fig12"))
			if err != nil {
				fatal(err)
			}
			printFig12(rows)
		})
	}
	if want("13") {
		run("Fig 13: ablations of the step-aware mechanism", func() {
			printFig13(cfg, counts[scenario.Contention], sweepOpts)
		})
	}
	if want("14") {
		run("Fig 14: case study", func() {
			var scope *obs.Scope
			if *traceDir != "" {
				scope = newScope("fig14")
			}
			printFig14(cfg, scope)
		})
	}
	if want("ext") {
		run("Extensions: remaining §II-B anomalies + slowdown distributions", func() {
			printExtensions(cfg, counts, sweepOpts)
		})
	}
	if want("chaos") {
		run("Chaos: precision/recall/confidence vs control-packet loss", func() {
			rows, err := experiments.Chaos(cfg, counts, sweepOpts("chaos"))
			if err != nil {
				fatal(err)
			}
			printChaos(rows)
		})
	}
	known := false
	for _, f := range []string{"9", "10", "11", "12", "13", "14", "ext", "chaos"} {
		if want(f) {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	for _, j := range journals {
		if err := j.Close(); err != nil {
			fatal(err)
		}
	}
	for _, ns := range scopes {
		path := filepath.Join(*traceDir, ns.name+".trace.json")
		if err := ns.scope.Trace.WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", path, ns.scope.Trace.Len())
	}
	if len(failed) > 0 {
		sort.Strings(failed)
		fmt.Fprintf(os.Stderr, "%d case(s) failed (rows above aggregate the remainder):\n", len(failed))
		for _, f := range failed {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		flushProfiles()
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func printExtensions(cfg scenario.Config, counts map[scenario.AnomalyKind]int,
	sweepOpts func(string) sweep.Options) {
	cases := counts[scenario.Contention]
	if cases == 0 {
		cases = 6
	}
	fmt.Println("-- extension anomalies (vedrfolnir) --")
	fmt.Printf("%-18s %9s %9s %16s\n", "scenario", "precision", "recall", "telemetry(B)")
	ext, err := experiments.ExtensionSweep(cfg, cases, sweepOpts("ext"))
	if err != nil {
		fatal(err)
	}
	for _, c := range ext {
		fmt.Printf("%-18s %9.2f %9.2f %16d\n", c.Kind, c.Precision(), c.Recall(), c.TelemetryBytes)
	}
	fmt.Println("-- per-step slowdown distributions --")
	rows, err := experiments.Slowdowns(cfg, counts, sweepOpts("slowdowns"))
	if err != nil {
		fatal(err)
	}
	for _, row := range rows {
		fmt.Printf("%-18s %s\n", row.Kind, row.Summary)
	}
}

func printFig9(cells []experiments.Cell) {
	fmt.Printf("%-18s %-14s %9s %9s %6s\n", "scenario", "system", "precision", "recall", "cases")
	for _, c := range cells {
		fmt.Printf("%-18s %-14s %9.2f %9.2f %6d%s\n",
			c.Kind, c.System, c.Precision(), c.Recall(), c.Cases, failNote(c.Failed))
	}
}

func printFig10(cells []experiments.Cell) {
	fmt.Printf("%-18s %-14s %16s %16s\n", "scenario", "system", "telemetry(B)", "bandwidth(B)")
	for _, c := range cells {
		fmt.Printf("%-18s %-14s %16d %16d%s\n", c.Kind, c.System, c.TelemetryBytes, c.BandwidthBytes, failNote(c.Failed))
	}
}

// failNote annotates a row whose cell lost cases to captured failures.
func failNote(failed int) string {
	if failed == 0 {
		return ""
	}
	return fmt.Sprintf("  (!%d failed)", failed)
}

func printFig11() {
	rows, err := experiments.Fig11(3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-18s %12s %14s %12s\n", "run", "cpu", "alloc(B)", "sim-time")
	for _, r := range rows {
		fmt.Printf("%-18s %12v %14d %12v\n", r.Label, r.CPU.Round(time.Microsecond), r.AllocBytes, r.SimTime)
	}
}

func printFig12(rows []experiments.Fig12Row) {
	fmt.Printf("%-18s %6s %7s %9s %9s\n", "scenario", "rtt%", "detect", "precision", "recall")
	for _, r := range rows {
		fmt.Printf("%-18s %5.0f%% %7d %9.2f %9.2f%s\n",
			r.Kind, r.RTTFactor*100, r.DetectCount, r.Metrics.Precision(), r.Metrics.Recall(), failNote(r.Failed))
	}
}

func printFig13(cfg scenario.Config, cases int, sweepOpts func(string) sweep.Options) {
	if cases == 0 {
		cases = 6
	}
	ths := experiments.Fig13aThresholds(cfg)
	fmt.Println("-- Fig 13a: fixed vs step-grained RTT thresholds (contention, ≤3/step) --")
	fmt.Printf("%-22s %9s %16s\n", "threshold", "precision", "telemetry(B)")
	rows13a, err := experiments.Fig13a(cfg, cases, ths, sweepOpts("fig13a"))
	if err != nil {
		fatal(err)
	}
	for _, row := range rows13a {
		label := "step-grained (ours)"
		if row.Threshold > 0 {
			label = row.Threshold.String()
		}
		fmt.Printf("%-22s %9.2f %16d%s\n", label, row.Metrics.Precision(), row.TelemetryBytes, failNote(row.Failed))
	}
	fmt.Println("-- Fig 13b: detection-count allocation vs unrestricted triggering --")
	fmt.Printf("%-22s %9s %16s\n", "setting", "precision", "telemetry(B)")
	rows13b, err := experiments.Fig13b(cfg, cases, []int{1, 3, 5}, sweepOpts("fig13b"))
	if err != nil {
		fatal(err)
	}
	for _, row := range rows13b {
		fmt.Printf("%-22s %9.2f %16d%s\n", row.Label, row.Metrics.Precision(), row.TelemetryBytes, failNote(row.Failed))
	}
}

func printChaos(rows []experiments.ChaosRow) {
	fmt.Printf("%-18s %7s %9s %9s %11s %6s\n", "scenario", "loss%", "precision", "recall", "confidence", "cases")
	for _, r := range rows {
		note := failNote(r.Failed)
		if r.Incomplete > 0 {
			note += fmt.Sprintf("  (%d incomplete)", r.Incomplete)
		}
		fmt.Printf("%-18s %6.1f%% %9.2f %9.2f %11.2f %6d%s\n",
			r.Kind, r.LossRate*100, r.Metrics.Precision(), r.Metrics.Recall(),
			r.MeanConfidence, r.Cases, note)
	}
}

func printFig14(cfg scenario.Config, scope *obs.Scope) {
	study, err := experiments.Fig14Obs(cfg, scope)
	if err != nil {
		fatal(err)
	}
	fmt.Println("critical path:", study.CriticalStr)
	fmt.Printf("BF1 (%v) overall score: %.0f\n", study.BF1, study.BF1Score)
	fmt.Printf("BF2 (%v) overall score: %.0f\n", study.BF2, study.BF2Score)
	fmt.Println(strings.TrimSpace(study.Diag.Summary()))
	fmt.Println("\n(waiting graph and provenance DOT available via cmd/vedrgraph)")
}
