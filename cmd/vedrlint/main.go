// Command vedrlint runs the repository's determinism and diagnosis
// invariant analyzers (internal/lint) over the module, multichecker-style,
// and gates the result on the known-violation baseline. Run it alongside
// go vet:
//
//	go vet ./... && go run ./cmd/vedrlint ./...
//
// It prints one line per finding (file:line:col: message (analyzer)) and
// exits non-zero when a finding is NOT in lint/baseline.json — existing,
// recorded debt passes while every new violation fails. Stale baseline
// entries (fixed debt) are reported as prunable; stale //lint:ignore
// comments (suppressing nothing) are hard failures, so dead justifications
// cannot accumulate. Suppress a finding with a justified comment on or
// above the offending line:
//
//	//lint:ignore nosystime measuring real host overhead, not simulated time
//
// Flags:
//
//	-list              print the analyzer suite and exit
//	-baseline PATH     baseline file, relative to the module root
//	                   (default lint/baseline.json)
//	-update-baseline   rewrite the baseline from this run's findings
//	                   (burn-down: fix debt, then update to shrink the
//	                   ledger; run over ./... so nothing is dropped)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vedrfolnir/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	baselinePath := flag.String("baseline", filepath.Join("lint", "baseline.json"),
		"known-violation baseline, relative to the module root")
	update := flag.Bool("update-baseline", false, "rewrite the baseline from this run's findings")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrlint:", err)
		os.Exit(2)
	}
	rep, err := lint.RunTree(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrlint:", err)
		os.Exit(2)
	}
	bpath := *baselinePath
	if !filepath.IsAbs(bpath) {
		bpath = filepath.Join(rep.ModuleDir, bpath)
	}

	if *update {
		b := lint.NewBaseline(rep.ModuleDir, rep.Diags)
		if err := lint.WriteBaseline(bpath, b); err != nil {
			fmt.Fprintln(os.Stderr, "vedrlint:", err)
			os.Exit(2)
		}
		fmt.Printf("vedrlint: baseline updated: %d finding(s) recorded in %s\n",
			len(b.Entries), bpath)
		for _, d := range rep.StaleIgnores {
			fmt.Println(d)
		}
		if len(rep.StaleIgnores) > 0 {
			fmt.Fprintf(os.Stderr, "vedrlint: %d stale suppression(s)\n", len(rep.StaleIgnores))
			os.Exit(1)
		}
		return
	}

	base, err := lint.LoadBaseline(bpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrlint:", err)
		os.Exit(2)
	}
	fresh, unmatched := lint.DiffBaseline(base, rep.ModuleDir, rep.Diags)
	for _, d := range fresh {
		fmt.Println(d)
	}
	for _, d := range rep.StaleIgnores {
		fmt.Println(d)
	}
	for _, e := range unmatched {
		fmt.Printf("vedrlint: baseline entry fixed or drifted: %s:%d %s (%s) — prune with -update-baseline\n",
			e.File, e.Line, e.Note, e.Rule)
	}
	known := len(rep.Diags) - len(fresh)
	if known > 0 {
		fmt.Fprintf(os.Stderr, "vedrlint: %d known finding(s) carried by the baseline\n", known)
	}
	if len(fresh)+len(rep.StaleIgnores) > 0 {
		fmt.Fprintf(os.Stderr, "vedrlint: %d new invariant violation(s), %d stale suppression(s)\n",
			len(fresh), len(rep.StaleIgnores))
		os.Exit(1)
	}
}
