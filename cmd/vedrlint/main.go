// Command vedrlint runs the repository's determinism and diagnosis
// invariant analyzers (internal/lint) over the module, multichecker-style.
// Run it alongside go vet:
//
//	go vet ./... && go run ./cmd/vedrlint ./...
//
// It prints one line per finding (file:line:col: message (analyzer)) and
// exits non-zero when any invariant is violated. Suppress a finding with a
// justified comment on or above the offending line:
//
//	//lint:ignore nosystime measuring real host overhead, not simulated time
//
// Use -list to print the analyzer suite and the invariant each enforces.
package main

import (
	"flag"
	"fmt"
	"os"

	"vedrfolnir/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrlint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunSuite(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedrlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vedrlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
