package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/wire"
)

// shardPid scans the captured announce lines for shard i's most recent
// incarnation and returns its pid (-1 when it never announced).
func (d *daemon) shardPid(i int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	pid := -1
	prefix := fmt.Sprintf("shard %d listening on ", i)
	for _, l := range d.lines {
		rest, ok := strings.CutPrefix(l, prefix)
		if !ok {
			continue
		}
		var addr string
		var p int
		if _, err := fmt.Sscanf(rest, "%s (pid %d)", &addr, &p); err == nil {
			pid = p
		}
	}
	return pid
}

// clusterHosts is the fixed multi-client stream for the fleet e2e tests:
// six named host agents, each registering its collective flow and step.
func clusterHosts(t *testing.T, addr string) (map[string]*analyzerd.ReliableClient, []func() error) {
	t.Helper()
	clients := map[string]*analyzerd.ReliableClient{}
	items := testMessages()
	var sends []func() error
	for i, item := range items {
		host := fmt.Sprintf("h%02d", i%6)
		rc, ok := clients[host]
		if !ok {
			var err error
			rc, err = analyzerd.NewReliableClient(addr, analyzerd.ClientConfig{
				ID: host, MaxAttempts: 40,
				BackoffBase: 20 * time.Millisecond, BackoffMax: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("client %s: %v", host, err)
			}
			clients[host] = rc
		}
		item := item
		sends = append(sends, func() error { return item(rc) })
	}
	return clients, sends
}

func closeClients(t *testing.T, clients map[string]*analyzerd.ReliableClient) {
	t.Helper()
	for host, rc := range clients {
		if err := rc.Close(); err != nil {
			t.Fatalf("closing client %s: %v", host, err)
		}
	}
}

// TestClusterKillRecoverDiagnosisIdentical is the real-binary half of the
// kill-any-shard contract: run `vedranalyzerd -cluster 2` with durable
// shards, SIGKILL each shard in turn mid-ingest, let the supervisor
// restart it on its WAL, and require the drained output (ingest totals +
// diagnosis) byte-identical to an unbroken cluster run's.
func TestClusterKillRecoverDiagnosisIdentical(t *testing.T) {
	ref, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0")
	if !ok {
		t.Fatal("reference cluster failed to start")
	}
	clients, sends := clusterHosts(t, ref.addr)
	for i, send := range sends {
		if err := send(); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	closeClients(t, clients)
	want := ref.terminate(t)
	if len(want) == 0 || !strings.HasPrefix(want[0], "ingested: ") {
		t.Fatalf("unexpected reference output: %q", want)
	}

	for shard := 0; shard < 2; shard++ {
		t.Run(fmt.Sprintf("kill-shard-%d", shard), func(t *testing.T) {
			d, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0",
				"-wal-dir", t.TempDir(), "-fsync", "always", "-snapshot-every", "3")
			if !ok {
				t.Fatal("cluster failed to start")
			}
			clients, sends := clusterHosts(t, d.addr)
			half := len(sends) / 2
			for i := 0; i < half; i++ {
				if err := sends[i](); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			for _, rc := range clients {
				if err := rc.Flush(); err != nil {
					t.Fatalf("flush before kill: %v", err)
				}
			}

			pid := d.shardPid(shard)
			if pid <= 0 {
				t.Fatalf("shard %d never announced a pid", shard)
			}
			if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL shard %d (pid %d): %v", shard, pid, err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for d.shardPid(shard) == pid {
				if time.Now().After(deadline) {
					t.Fatalf("shard %d never re-announced after SIGKILL", shard)
				}
				time.Sleep(10 * time.Millisecond)
			}

			for i := half; i < len(sends); i++ {
				if err := sends[i](); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			closeClients(t, clients)
			got := d.terminate(t)
			if !slicesEqual(got, want) {
				t.Fatalf("killed-shard-%d run output differs:\n%s\nvs reference\n%s",
					shard, strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}

// TestClusterResizeDiagnosisIdentical is the real-binary elastic
// contract: a cluster that live-rebalances 2 -> 4 shards mid-ingest —
// including runs where a shard is SIGKILLed at each rebalance cut point
// and supervised back onto its WAL — drains output byte-identical to an
// unbroken fixed-width run's. (Under the 2- and 4-wide rings, hosts h02
// and h05 change owners, so the handoff path genuinely carries state.)
func TestClusterResizeDiagnosisIdentical(t *testing.T) {
	ref, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0")
	if !ok {
		t.Fatal("reference cluster failed to start")
	}
	refClients, refSends := clusterHosts(t, ref.addr)
	for i, send := range refSends {
		if err := send(); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	closeClients(t, refClients)
	want := ref.terminate(t)
	if len(want) == 0 || !strings.HasPrefix(want[0], "ingested: ") {
		t.Fatalf("unexpected reference output: %q", want)
	}

	resizeRun := func(t *testing.T, extra ...string) {
		args := append([]string{"-cluster", "2", "-listen", "127.0.0.1:0",
			"-resize-to", "4", "-resize-after", "6",
			"-wal-dir", t.TempDir(), "-fsync", "always", "-snapshot-every", "3"}, extra...)
		d, ok := startDaemon(t, args...)
		if !ok {
			t.Fatal("cluster failed to start")
		}
		clients, sends := clusterHosts(t, d.addr)
		// Land the first six acks to trip the -resize-after trigger,
		// then keep streaming across the live rebalance.
		for i := 0; i < 6; i++ {
			if err := sends[i](); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		for _, rc := range clients {
			if err := rc.Flush(); err != nil {
				t.Fatalf("flush at the resize trigger: %v", err)
			}
		}
		for i := 6; i < len(sends); i++ {
			if err := sends[i](); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		closeClients(t, clients)
		got := d.terminate(t)
		if !slicesEqual(got, want) {
			t.Fatalf("resized run output differs:\n%s\nvs reference\n%s",
				strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
		if !d.sawResize(4) {
			t.Fatal("cluster never reported the resize")
		}
	}

	t.Run("unbroken-resize", func(t *testing.T) { resizeRun(t) })
	for _, kill := range []struct {
		phase string
		shard int
	}{
		{"before-quiesce", 0}, // a donor dies before the fence goes up
		{"during-handoff", 1}, // a donor dies with its dump taken, map not yet flipped
		{"after-flip", 3},     // the adoptee dies right after re-admission
	} {
		kill := kill
		t.Run(fmt.Sprintf("kill-shard-%d-%s", kill.shard, kill.phase), func(t *testing.T) {
			resizeRun(t, "-rebalance-kill", fmt.Sprintf("%s:%d", kill.phase, kill.shard))
		})
	}
}

// sawResize reports whether the cluster printed its resize report for
// the given target width (the line the output() filter hides from the
// byte-identity comparisons).
func (d *daemon) sawResize(to int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	want := fmt.Sprintf("resized to %d shards", to)
	for _, l := range d.lines {
		if strings.HasPrefix(l, want) {
			return true
		}
	}
	return false
}

// TestClusterTenantAccounting: with -tenant-rate, a 32-client tenant
// saturating the router is throttled to its budget (losing nothing)
// while an interleaved quiet tenant rides free, and the drain prints
// the per-tenant accounting.
func TestClusterTenantAccounting(t *testing.T) {
	d, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0",
		"-tenant-rate", "25", "-tenant-burst", "4")
	if !ok {
		t.Fatal("cluster failed to start")
	}
	send := func(id string, i int) {
		rc, err := analyzerd.NewReliableClient(d.addr, analyzerd.ClientConfig{
			ID: id, MaxAttempts: 40,
			BackoffBase: 20 * time.Millisecond, BackoffMax: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("client %s: %v", id, err)
		}
		cf := fabric.FlowKey{Src: topo.NodeID(i + 1), Dst: topo.NodeID(i + 2), SrcPort: 7, DstPort: 8, Proto: 17}
		if err := rc.SendCF(cf); err != nil {
			t.Fatalf("%s send: %v", id, err)
		}
		if err := rc.Close(); err != nil {
			t.Fatalf("%s close: %v", id, err)
		}
	}
	for i := 0; i < 32; i++ {
		send(fmt.Sprintf("hog/c%02d", i), i)
		if i%8 == 0 {
			send(fmt.Sprintf("quiet/q%02d", i/8), 100+i)
		}
	}
	out := d.terminate(t)
	wantHog := "tenant hog: 32 clients, 0 records, 0 reports, 32 flows"
	wantQuiet := "tenant quiet: 4 clients, 0 records, 0 reports, 4 flows"
	var gotHog, gotQuiet bool
	for _, l := range out {
		if l == wantHog {
			gotHog = true
		}
		if l == wantQuiet {
			gotQuiet = true
		}
	}
	if !gotHog || !gotQuiet {
		t.Fatalf("per-tenant drain accounting missing:\nwant %q and %q in\n%s",
			wantHog, wantQuiet, strings.Join(out, "\n"))
	}
}

// TestClusterHoldShardDegraded: with -hold-shard, the held shard is down
// at drain time and the cluster must still produce a diagnosis — degraded,
// with confidence < 1 — rather than an error.
func TestClusterHoldShardDegraded(t *testing.T) {
	// Hold the shard that owns h00 so the gather verifiably loses data.
	ring, err := wire.NewHashRing(wire.ShardMap{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hold := ring.Owner("h00")

	d, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0",
		"-hold-shard", fmt.Sprint(hold), "-json")
	if !ok {
		t.Fatal("cluster failed to start")
	}
	clients, sends := clusterHosts(t, d.addr)
	for i, send := range sends {
		if err := send(); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	closeClients(t, clients)
	out := d.terminate(t)
	if len(out) == 0 || !strings.HasPrefix(out[0], "ingested: ") {
		t.Fatalf("unexpected output: %q", out)
	}
	var diag struct {
		Confidence float64 `json:"confidence"`
	}
	if err := json.Unmarshal([]byte(strings.Join(out[1:], "\n")), &diag); err != nil {
		t.Fatalf("parsing diagnosis JSON: %v\n%s", err, strings.Join(out[1:], "\n"))
	}
	if diag.Confidence <= 0 || diag.Confidence >= 1 {
		t.Errorf("Confidence = %v, want in (0, 1) for a drain missing shard %d", diag.Confidence, hold)
	}
}
