package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/wire"
)

// shardPid scans the captured announce lines for shard i's most recent
// incarnation and returns its pid (-1 when it never announced).
func (d *daemon) shardPid(i int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	pid := -1
	prefix := fmt.Sprintf("shard %d listening on ", i)
	for _, l := range d.lines {
		rest, ok := strings.CutPrefix(l, prefix)
		if !ok {
			continue
		}
		var addr string
		var p int
		if _, err := fmt.Sscanf(rest, "%s (pid %d)", &addr, &p); err == nil {
			pid = p
		}
	}
	return pid
}

// clusterHosts is the fixed multi-client stream for the fleet e2e tests:
// six named host agents, each registering its collective flow and step.
func clusterHosts(t *testing.T, addr string) (map[string]*analyzerd.ReliableClient, []func() error) {
	t.Helper()
	clients := map[string]*analyzerd.ReliableClient{}
	items := testMessages()
	var sends []func() error
	for i, item := range items {
		host := fmt.Sprintf("h%02d", i%6)
		rc, ok := clients[host]
		if !ok {
			var err error
			rc, err = analyzerd.NewReliableClient(addr, analyzerd.ClientConfig{
				ID: host, MaxAttempts: 40,
				BackoffBase: 20 * time.Millisecond, BackoffMax: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("client %s: %v", host, err)
			}
			clients[host] = rc
		}
		item := item
		sends = append(sends, func() error { return item(rc) })
	}
	return clients, sends
}

func closeClients(t *testing.T, clients map[string]*analyzerd.ReliableClient) {
	t.Helper()
	for host, rc := range clients {
		if err := rc.Close(); err != nil {
			t.Fatalf("closing client %s: %v", host, err)
		}
	}
}

// TestClusterKillRecoverDiagnosisIdentical is the real-binary half of the
// kill-any-shard contract: run `vedranalyzerd -cluster 2` with durable
// shards, SIGKILL each shard in turn mid-ingest, let the supervisor
// restart it on its WAL, and require the drained output (ingest totals +
// diagnosis) byte-identical to an unbroken cluster run's.
func TestClusterKillRecoverDiagnosisIdentical(t *testing.T) {
	ref, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0")
	if !ok {
		t.Fatal("reference cluster failed to start")
	}
	clients, sends := clusterHosts(t, ref.addr)
	for i, send := range sends {
		if err := send(); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	closeClients(t, clients)
	want := ref.terminate(t)
	if len(want) == 0 || !strings.HasPrefix(want[0], "ingested: ") {
		t.Fatalf("unexpected reference output: %q", want)
	}

	for shard := 0; shard < 2; shard++ {
		t.Run(fmt.Sprintf("kill-shard-%d", shard), func(t *testing.T) {
			d, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0",
				"-wal-dir", t.TempDir(), "-fsync", "always", "-snapshot-every", "3")
			if !ok {
				t.Fatal("cluster failed to start")
			}
			clients, sends := clusterHosts(t, d.addr)
			half := len(sends) / 2
			for i := 0; i < half; i++ {
				if err := sends[i](); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			for _, rc := range clients {
				if err := rc.Flush(); err != nil {
					t.Fatalf("flush before kill: %v", err)
				}
			}

			pid := d.shardPid(shard)
			if pid <= 0 {
				t.Fatalf("shard %d never announced a pid", shard)
			}
			if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL shard %d (pid %d): %v", shard, pid, err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for d.shardPid(shard) == pid {
				if time.Now().After(deadline) {
					t.Fatalf("shard %d never re-announced after SIGKILL", shard)
				}
				time.Sleep(10 * time.Millisecond)
			}

			for i := half; i < len(sends); i++ {
				if err := sends[i](); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			closeClients(t, clients)
			got := d.terminate(t)
			if !slicesEqual(got, want) {
				t.Fatalf("killed-shard-%d run output differs:\n%s\nvs reference\n%s",
					shard, strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}

// TestClusterHoldShardDegraded: with -hold-shard, the held shard is down
// at drain time and the cluster must still produce a diagnosis — degraded,
// with confidence < 1 — rather than an error.
func TestClusterHoldShardDegraded(t *testing.T) {
	// Hold the shard that owns h00 so the gather verifiably loses data.
	ring, err := wire.NewHashRing(wire.ShardMap{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hold := ring.Owner("h00")

	d, ok := startDaemon(t, "-cluster", "2", "-listen", "127.0.0.1:0",
		"-hold-shard", fmt.Sprint(hold), "-json")
	if !ok {
		t.Fatal("cluster failed to start")
	}
	clients, sends := clusterHosts(t, d.addr)
	for i, send := range sends {
		if err := send(); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	closeClients(t, clients)
	out := d.terminate(t)
	if len(out) == 0 || !strings.HasPrefix(out[0], "ingested: ") {
		t.Fatalf("unexpected output: %q", out)
	}
	var diag struct {
		Confidence float64 `json:"confidence"`
	}
	if err := json.Unmarshal([]byte(strings.Join(out[1:], "\n")), &diag); err != nil {
		t.Fatalf("parsing diagnosis JSON: %v\n%s", err, strings.Join(out[1:], "\n"))
	}
	if diag.Confidence <= 0 || diag.Confidence >= 1 {
		t.Errorf("Confidence = %v, want in (0, 1) for a drain missing shard %d", diag.Confidence, hold)
	}
}
