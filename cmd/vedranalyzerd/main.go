// Command vedranalyzerd runs the centralized analyzer of the paper's Fig 3
// architecture as a long-lived network service: host agents connect over
// TCP and stream step records, telemetry reports and collective-flow
// registrations as newline-delimited JSON; on SIGINT/SIGTERM (or after
// -after) the daemon prints the diagnosis over everything ingested and
// exits.
//
// Usage:
//
//	vedranalyzerd [-listen 127.0.0.1:7391] [-after 30s] [-json]
//	              [-read-timeout 2m] [-max-line 16777216]
//
// The service is hardened against misbehaving agents: -read-timeout drops
// a connection that stops delivering bytes, -max-line caps one protocol
// line, malformed lines are skipped with a counter, and sequence-numbered
// submissions are acknowledged for exactly-once resubmission (see
// internal/analyzerd). Abuse counters print alongside the ingest totals.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7391", "TCP listen address")
	after := flag.Duration("after", 0, "diagnose and exit after this duration (0 = wait for SIGINT)")
	asJSON := flag.Bool("json", false, "emit the diagnosis as JSON")
	scfg := analyzerd.DefaultServerConfig()
	flag.DurationVar(&scfg.ReadTimeout, "read-timeout", scfg.ReadTimeout,
		"drop a connection idle for this long (0 = never)")
	flag.IntVar(&scfg.MaxLineBytes, "max-line", scfg.MaxLineBytes,
		"maximum protocol line size in bytes")
	obsListen := flag.String("obs-listen", "",
		"serve live /metrics, /debug/vars and /debug/pprof on this address")
	verbose := flag.Bool("v", false, "log connection and ingest events on stderr")
	flag.Parse()

	if *verbose {
		scfg.Log = obs.NewLogger(os.Stderr, slog.LevelDebug, nil)
	}
	srv, err := analyzerd.ServeWith(*listen, scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		os.Exit(1)
	}
	fmt.Println("analyzer listening on", srv.Addr())

	if *obsListen != "" {
		reg := obs.NewRegistry()
		srv.PublishStats(reg)
		reg.PublishExpvar("vedranalyzerd")
		ln, err := net.Listen("tcp", *obsListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vedranalyzerd: obs on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, obs.Mux(reg))
	}

	done := make(chan struct{})
	if *after > 0 {
		go func() {
			time.Sleep(*after)
			close(done)
		}()
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(done)
		}()
	}
	<-done

	recs, reps, cfs := srv.Counts()
	fmt.Printf("ingested: %d step records, %d reports, %d collective flows\n", recs, reps, cfs)
	if st := srv.Stats(); st != (analyzerd.ServerStats{}) {
		fmt.Printf("shrugged off: %d malformed, %d oversized, %d timed out, %d rejected, %d duplicates\n",
			st.Malformed, st.Oversized, st.TimedOut, st.Rejected, st.Duplicates)
	}
	diag := srv.Diagnose()
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(diag)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(diag.Summary())
}
