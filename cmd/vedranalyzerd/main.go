// Command vedranalyzerd runs the centralized analyzer of the paper's Fig 3
// architecture as a long-lived network service: host agents connect over
// TCP and stream step records, telemetry reports and collective-flow
// registrations as newline-delimited JSON; on SIGINT/SIGTERM (or after
// -after) the daemon drains, prints the diagnosis over everything
// ingested, and exits 0.
//
// Usage:
//
//	vedranalyzerd [-listen 127.0.0.1:7391] [-after 30s] [-json]
//	              [-read-timeout 2m] [-max-line 16777216]
//	              [-wal-dir DIR] [-fsync always|interval|off]
//	              [-snapshot-every N] [-queue N] [-rate R] [-burst N]
//	vedranalyzerd supervise [-backoff 200ms] [-crash-loops 5] -- <daemon flags>
//
// The service is hardened against misbehaving agents: -read-timeout drops
// a connection that stops delivering bytes, -max-line caps one protocol
// line, malformed lines are skipped with a counter, and sequence-numbered
// submissions are acknowledged for exactly-once resubmission (see
// internal/analyzerd). Abuse counters print alongside the ingest totals.
//
// With -wal-dir every accepted message is write-ahead-logged before it is
// acknowledged and the daemon snapshots its state there; a restarted
// daemon recovers a byte-identical diagnosis from the snapshot plus the
// log tail. -queue bounds the ingest queue and -rate/-burst cap each
// client's submission rate; both overload paths answer with explicit
// retryable NACKs that the reliable client backs off on. The obs listener
// additionally serves /healthz and /readyz probes.
//
// The supervise subcommand re-runs the daemon under a restart-with-backoff
// loop: a clean exit (0) ends supervision, a crash restarts the daemon
// after exponential backoff, and too many consecutive short-lived runs is
// declared a crash loop and gives up rather than burning CPU forever.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "supervise" {
		os.Exit(supervise(os.Args[2:]))
	}
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7391", "TCP listen address")
	after := flag.Duration("after", 0, "diagnose and exit after this duration (0 = wait for SIGINT)")
	asJSON := flag.Bool("json", false, "emit the diagnosis as JSON")
	scfg := analyzerd.DefaultServerConfig()
	flag.DurationVar(&scfg.ReadTimeout, "read-timeout", scfg.ReadTimeout,
		"drop a connection idle for this long (0 = never)")
	flag.IntVar(&scfg.MaxLineBytes, "max-line", scfg.MaxLineBytes,
		"maximum protocol line size in bytes")
	flag.IntVar(&scfg.MaxQueue, "queue", scfg.MaxQueue,
		"ingest queue bound; a full queue NACKs with retry")
	flag.Float64Var(&scfg.RateLimit.Rate, "rate", 0,
		"per-client sustained messages/second (0 = unlimited)")
	flag.IntVar(&scfg.RateLimit.Burst, "burst", 0,
		"per-client token bucket depth (0 = derived from -rate)")
	flag.DurationVar(&scfg.AckTTL, "ack-ttl", 0,
		"evict a disconnected client's ack window after this idle time (0 = default 15m, <0 = never)")
	walDir := flag.String("wal-dir", "",
		"write-ahead log + snapshot directory; empty disables durability")
	fsyncMode := flag.String("fsync", "always",
		"WAL fsync policy with -wal-dir: always|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond,
		"sync pacing for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 0,
		"snapshot state every N accepted messages with -wal-dir (0 = only on drain)")
	obsListen := flag.String("obs-listen", "",
		"serve live /metrics, /healthz, /readyz, /debug/vars and /debug/pprof on this address")
	verbose := flag.Bool("v", false, "log connection and ingest events on stderr")
	flag.Parse()

	if *verbose {
		scfg.Log = obs.NewLogger(os.Stderr, slog.LevelDebug, nil)
	}
	if *walDir != "" {
		policy, err := analyzerd.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		scfg.Durability = &analyzerd.DurabilityConfig{
			Dir:           *walDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
		}
	}
	srv, err := analyzerd.ServeWith(*listen, scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	if rec := srv.Recovery(); rec.SnapshotLoaded || rec.WALEntries > 0 || rec.WALTruncatedBytes > 0 {
		fmt.Fprintf(os.Stderr,
			"vedranalyzerd: recovered %d snapshot records, %d WAL entries (%d skipped, %d malformed, %d tail bytes dropped)\n",
			rec.SnapshotRecords, rec.WALEntries, rec.WALSkipped, rec.WALMalformed, rec.WALTruncatedBytes)
	}
	// Arm the drain trigger before announcing readiness: a client that
	// reads the line below may legitimately finish its work and SIGTERM us
	// before this goroutine would otherwise have installed the handler.
	done := make(chan struct{})
	if *after > 0 {
		go func() {
			time.Sleep(*after)
			close(done)
		}()
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(done)
		}()
	}
	fmt.Println("analyzer listening on", srv.Addr())

	if *obsListen != "" {
		reg := obs.NewRegistry()
		srv.PublishStats(reg)
		reg.PublishExpvar("vedranalyzerd")
		ln, err := net.Listen("tcp", *obsListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "vedranalyzerd: obs on http://%s/metrics\n", ln.Addr())
		mux := obs.Mux(reg)
		obs.HandleHealth(mux, nil, srv.Ready)
		go http.Serve(ln, mux)
	}

	<-done

	// Graceful drain: stop accepting, apply everything queued, flush and
	// sync the WAL, write a final snapshot. Counts and the diagnosis below
	// then cover every accepted message.
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
	}
	recs, reps, cfs := srv.Counts()
	fmt.Printf("ingested: %d step records, %d reports, %d collective flows\n", recs, reps, cfs)
	st := srv.Stats()
	if st.Malformed != 0 || st.Oversized != 0 || st.TimedOut != 0 || st.Rejected != 0 || st.Duplicates != 0 {
		fmt.Printf("shrugged off: %d malformed, %d oversized, %d timed out, %d rejected, %d duplicates\n",
			st.Malformed, st.Oversized, st.TimedOut, st.Rejected, st.Duplicates)
	}
	if st.Overloaded != 0 || st.RateLimited != 0 || st.AckEvictions != 0 || st.WALErrors != 0 {
		fmt.Printf("backpressure: %d overloaded, %d rate limited, %d ack evictions, %d wal errors\n",
			st.Overloaded, st.RateLimited, st.AckEvictions, st.WALErrors)
	}
	diag := srv.Diagnose()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(diag)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		return 0
	}
	fmt.Print(diag.Summary())
	return 0
}

// supervise re-runs this binary as a child daemon, restarting it with
// exponential backoff when it dies, until it exits cleanly (0), the
// supervisor itself is signalled (the signal is forwarded and the child's
// verdict passed through), or too many consecutive short-lived runs
// trip the crash-loop detector.
func supervise(argv []string) int {
	fs := flag.NewFlagSet("supervise", flag.ExitOnError)
	backoff := fs.Duration("backoff", 200*time.Millisecond, "first restart delay; doubles per crash")
	backoffMax := fs.Duration("backoff-max", 5*time.Second, "restart delay cap")
	crashWindow := fs.Duration("crash-window", 2*time.Second,
		"a child living shorter than this counts toward the crash loop")
	crashLoops := fs.Int("crash-loops", 5, "give up after this many consecutive short-lived crashes")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vedranalyzerd supervise [flags] -- <daemon flags>")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	childArgs := fs.Args()

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd: supervise:", err)
		return 1
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	consecutive := 0
	delay := *backoff
	for {
		start := time.Now()
		cmd := exec.Command(exe, childArgs...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd: supervise:", err)
			return 1
		}
		waitErr := make(chan error, 1)
		go func() { waitErr <- cmd.Wait() }()
		var werr error
		select {
		case s := <-sig:
			// Forward the signal so the child drains gracefully, then pass
			// its exit code through; supervision ends with the operator's
			// intent, not a restart.
			if err := cmd.Process.Signal(s); err != nil {
				fmt.Fprintln(os.Stderr, "vedranalyzerd: supervise: forwarding signal:", err)
			}
			werr = <-waitErr
			if werr == nil {
				return 0
			}
			if ee, ok := werr.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			return 1
		case werr = <-waitErr:
		}
		lived := time.Since(start)
		if werr == nil {
			return 0 // clean exit: the daemon drained and is done
		}
		if lived < *crashWindow {
			consecutive++
			if consecutive >= *crashLoops {
				fmt.Fprintf(os.Stderr,
					"vedranalyzerd: supervise: crash loop: %d consecutive exits within %s; giving up\n",
					consecutive, *crashWindow)
				return 1
			}
		} else {
			consecutive = 0
			delay = *backoff
		}
		fmt.Fprintf(os.Stderr, "vedranalyzerd: supervise: child exited (%v) after %s; restarting in %s\n",
			werr, lived.Round(time.Millisecond), delay)
		time.Sleep(delay)
		delay *= 2
		if delay > *backoffMax {
			delay = *backoffMax
		}
	}
}
