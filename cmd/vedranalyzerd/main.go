// Command vedranalyzerd runs the centralized analyzer of the paper's Fig 3
// architecture as a long-lived network service: host agents connect over
// TCP and stream step records, telemetry reports and collective-flow
// registrations as newline-delimited JSON; on SIGINT/SIGTERM (or after
// -after) the daemon drains, prints the diagnosis over everything
// ingested, and exits 0.
//
// Usage:
//
//	vedranalyzerd [-listen 127.0.0.1:7391] [-after 30s] [-json]
//	              [-read-timeout 2m] [-max-line 16777216]
//	              [-wal-dir DIR] [-fsync always|interval|off]
//	              [-snapshot-every N] [-queue N] [-rate R] [-burst N]
//	vedranalyzerd -cluster N [-shard-replicas R] [-hold-shard I]
//	              [-resize-to M [-resize-after K] [-rebalance-kill P:S]]
//	              [-tenant-rate R [-tenant-burst N]] [...]
//	vedranalyzerd supervise [-backoff 200ms] [-crash-loops 5]
//	              [-healthy-after 30s] -- <daemon flags>
//
// The service is hardened against misbehaving agents: -read-timeout drops
// a connection that stops delivering bytes, -max-line caps one protocol
// line, malformed lines are skipped with a counter, and sequence-numbered
// submissions are acknowledged for exactly-once resubmission (see
// internal/analyzerd). Abuse counters print alongside the ingest totals.
//
// With -wal-dir every accepted message is write-ahead-logged before it is
// acknowledged and the daemon snapshots its state there; a restarted
// daemon recovers a byte-identical diagnosis from the snapshot plus the
// log tail. -queue bounds the ingest queue and -rate/-burst cap each
// client's submission rate; both overload paths answer with explicit
// retryable NACKs that the reliable client backs off on. The obs listener
// additionally serves /healthz and /readyz probes.
//
// The supervise subcommand re-runs the daemon under a restart-with-backoff
// loop: a clean exit (0) ends supervision, a crash restarts the daemon
// after exponential backoff, and too many consecutive short-lived runs is
// declared a crash loop and gives up rather than burning CPU forever.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/fleet"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "supervise" {
		os.Exit(supervise(os.Args[2:]))
	}
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7391", "TCP listen address")
	after := flag.Duration("after", 0, "diagnose and exit after this duration (0 = wait for SIGINT)")
	asJSON := flag.Bool("json", false, "emit the diagnosis as JSON")
	scfg := analyzerd.DefaultServerConfig()
	flag.DurationVar(&scfg.ReadTimeout, "read-timeout", scfg.ReadTimeout,
		"drop a connection idle for this long (0 = never)")
	flag.IntVar(&scfg.MaxLineBytes, "max-line", scfg.MaxLineBytes,
		"maximum protocol line size in bytes")
	flag.IntVar(&scfg.MaxQueue, "queue", scfg.MaxQueue,
		"ingest queue bound; a full queue NACKs with retry")
	flag.Float64Var(&scfg.RateLimit.Rate, "rate", 0,
		"per-client sustained messages/second (0 = unlimited)")
	flag.IntVar(&scfg.RateLimit.Burst, "burst", 0,
		"per-client token bucket depth (0 = derived from -rate)")
	flag.DurationVar(&scfg.AckTTL, "ack-ttl", 0,
		"evict a disconnected client's ack window after this idle time (0 = default 15m, <0 = never)")
	walDir := flag.String("wal-dir", "",
		"write-ahead log + snapshot directory; empty disables durability")
	fsyncMode := flag.String("fsync", "always",
		"WAL fsync policy with -wal-dir: always|interval|off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond,
		"sync pacing for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 0,
		"snapshot state every N accepted messages with -wal-dir (0 = only on drain)")
	obsListen := flag.String("obs-listen", "",
		"serve live /metrics, /healthz, /readyz, /debug/vars and /debug/pprof on this address")
	verbose := flag.Bool("v", false, "log connection and ingest events on stderr")
	cluster := flag.Int("cluster", 0,
		"run as a fleet: N supervised shard children behind a consistent-hash router")
	shardReplicas := flag.Int("shard-replicas", 0,
		"consistent-hash virtual nodes per shard (0 = default)")
	holdShard := flag.Int("hold-shard", -1,
		"with -cluster: hold this shard down at drain time and report a degraded diagnosis")
	resizeTo := flag.Int("resize-to", 0,
		"with -cluster: live-rebalance the fleet to this many shards mid-run")
	resizeAfter := flag.Int("resize-after", 0,
		"with -cluster and -resize-to: trigger the rebalance once this many submissions are acked")
	rebalanceKill := flag.String("rebalance-kill", "",
		"with -cluster and -resize-to: SIGKILL shard S at rebalance phase P, as P:S (chaos hook)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"with -cluster: per-tenant sustained messages/second quota (0 = no quotas)")
	tenantBurst := flag.Int("tenant-burst", 0,
		"with -cluster: per-tenant token bucket depth (0 = derived from -tenant-rate)")
	shardIndex := flag.Int("shard-index", -1,
		"run as shard I of a fleet (internal; spawned by -cluster)")
	shardCount := flag.Int("shard-count", 0,
		"fleet width for -shard-index (internal; spawned by -cluster)")
	shardEpoch := flag.Int64("shard-epoch", 0,
		"shard map epoch for -shard-index (internal; rewritten by a live rebalance)")
	flag.Parse()

	if *cluster > 0 {
		return runCluster(clusterOpts{
			listen:        *listen,
			after:         *after,
			asJSON:        *asJSON,
			shards:        *cluster,
			replicas:      *shardReplicas,
			holdShard:     *holdShard,
			resizeTo:      *resizeTo,
			resizeAfter:   *resizeAfter,
			rebalanceKill: *rebalanceKill,
			tenantRate:    *tenantRate,
			tenantBurst:   *tenantBurst,
			walDir:        *walDir,
			fsyncMode:     *fsyncMode,
			snapshotEvery: *snapshotEvery,
			obsListen:     *obsListen,
			verbose:       *verbose,
		})
	}
	if *verbose {
		scfg.Log = obs.NewLogger(os.Stderr, slog.LevelDebug, nil)
	}
	if *shardCount > 0 {
		scfg.Shard = &analyzerd.ShardConfig{
			Map:   wire.ShardMap{Shards: *shardCount, Replicas: *shardReplicas, Epoch: *shardEpoch},
			Index: *shardIndex,
		}
	}
	if *walDir != "" {
		policy, err := analyzerd.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		scfg.Durability = &analyzerd.DurabilityConfig{
			Dir:           *walDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
		}
	}
	srv, err := analyzerd.ServeWith(*listen, scfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	if rec := srv.Recovery(); rec.SnapshotLoaded || rec.WALEntries > 0 || rec.WALTruncatedBytes > 0 {
		fmt.Fprintf(os.Stderr,
			"vedranalyzerd: recovered %d snapshot records, %d WAL entries (%d skipped, %d malformed, %d tail bytes dropped)\n",
			rec.SnapshotRecords, rec.WALEntries, rec.WALSkipped, rec.WALMalformed, rec.WALTruncatedBytes)
	}
	// Arm the drain trigger before announcing readiness: a client that
	// reads the line below may legitimately finish its work and SIGTERM us
	// before this goroutine would otherwise have installed the handler.
	done := make(chan struct{})
	if *after > 0 {
		go func() {
			time.Sleep(*after)
			close(done)
		}()
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(done)
		}()
	}
	fmt.Println("analyzer listening on", srv.Addr())

	if *obsListen != "" {
		reg := obs.NewRegistry()
		srv.PublishStats(reg)
		reg.PublishExpvar("vedranalyzerd")
		ln, err := net.Listen("tcp", *obsListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "vedranalyzerd: obs on http://%s/metrics\n", ln.Addr())
		mux := obs.Mux(reg)
		obs.HandleHealth(mux, nil, srv.Ready)
		go http.Serve(ln, mux)
	}

	<-done

	// Graceful drain: stop accepting, apply everything queued, flush and
	// sync the WAL, write a final snapshot. Counts and the diagnosis below
	// then cover every accepted message.
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
	}
	recs, reps, cfs := srv.Counts()
	fmt.Printf("ingested: %d step records, %d reports, %d collective flows\n", recs, reps, cfs)
	st := srv.Stats()
	if st.Malformed != 0 || st.Oversized != 0 || st.TimedOut != 0 || st.Rejected != 0 || st.Duplicates != 0 {
		fmt.Printf("shrugged off: %d malformed, %d oversized, %d timed out, %d rejected, %d duplicates\n",
			st.Malformed, st.Oversized, st.TimedOut, st.Rejected, st.Duplicates)
	}
	if st.Overloaded != 0 || st.RateLimited != 0 || st.AckEvictions != 0 || st.WALErrors != 0 {
		fmt.Printf("backpressure: %d overloaded, %d rate limited, %d ack evictions, %d wal errors\n",
			st.Overloaded, st.RateLimited, st.AckEvictions, st.WALErrors)
	}
	diag := srv.Diagnose()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(diag)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		return 0
	}
	fmt.Print(diag.Summary())
	return 0
}

// supervise re-runs this binary as a child daemon under fleet.Proc's
// restart-with-backoff loop: a clean exit (0) ends supervision, a crash
// restarts the daemon, a forwarded signal passes the child's verdict
// through, and too many consecutive short-lived runs is declared a crash
// loop. The crash-loop counter forgives earlier crashes only once a child
// has stayed up for -healthy-after — a daemon that limps past the crash
// window but keeps dying is still a crash loop, not a healthy service.
func supervise(argv []string) int {
	fs := flag.NewFlagSet("supervise", flag.ExitOnError)
	backoff := fs.Duration("backoff", 200*time.Millisecond, "first restart delay; doubles per crash")
	backoffMax := fs.Duration("backoff-max", 5*time.Second, "restart delay cap")
	crashWindow := fs.Duration("crash-window", 2*time.Second,
		"a child living shorter than this counts toward the crash loop")
	crashLoops := fs.Int("crash-loops", 5, "give up after this many consecutive short-lived crashes")
	healthyAfter := fs.Duration("healthy-after", 30*time.Second,
		"a child must live this long before earlier crashes are forgiven")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vedranalyzerd supervise [flags] -- <daemon flags>")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	childArgs := fs.Args()

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd: supervise:", err)
		return 1
	}
	p, err := fleet.StartProc(fleet.ProcConfig{
		Path:           exe,
		Args:           childArgs,
		AnnouncePrefix: "analyzer listening on ",
		RelistenFlag:   "-listen",
		Backoff:        *backoff,
		BackoffMax:     *backoffMax,
		CrashWindow:    *crashWindow,
		CrashLoops:     *crashLoops,
		HealthyAfter:   *healthyAfter,
		Stdout:         os.Stdout,
		Stderr:         os.Stderr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "vedranalyzerd: supervise: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd: supervise:", err)
		return 1
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		// Forward the signal so the child drains gracefully; supervision
		// ends with the child's own verdict, not a restart.
		p.Terminate(<-sig)
	}()
	return p.Wait().Code
}
