package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vedrfolnir/internal/fleet"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

// clusterOpts carries the -cluster subset of the daemon flags into the
// fleet runner.
type clusterOpts struct {
	listen        string
	after         time.Duration
	asJSON        bool
	shards        int
	replicas      int
	holdShard     int
	resizeTo      int
	resizeAfter   int
	rebalanceKill string // "phase:shard" chaos cut point
	tenantRate    float64
	tenantBurst   int
	walDir        string
	fsyncMode     string
	snapshotEvery int
	obsListen     string
	verbose       bool
}

// parseRebalanceKill splits the -rebalance-kill "phase:shard" chaos
// coordinate.
func parseRebalanceKill(s string) (phase string, shard int, err error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 {
		return "", 0, fmt.Errorf("want phase:shard, got %q", s)
	}
	phase = s[:i]
	switch phase {
	case fleet.PhaseBeforeQuiesce, fleet.PhaseDuringHandoff, fleet.PhaseAfterFlip:
	default:
		return "", 0, fmt.Errorf("unknown rebalance phase %q", phase)
	}
	shard, err = strconv.Atoi(s[i+1:])
	if err != nil || shard < 0 {
		return "", 0, fmt.Errorf("bad shard index in %q", s)
	}
	return phase, shard, nil
}

// runCluster is the -cluster entrypoint: it spawns this same binary as N
// supervised shard children, fronts them with the consistent-hash router,
// and on drain gathers every shard's state into one merged diagnosis —
// printed in exactly the format of a standalone run, so harnesses that
// diff daemon output need not know a fleet produced it. Per-shard
// announce lines go to stdout with a "shard " prefix so those same
// harnesses can filter them (and chaos drivers can read the pids).
func runCluster(o clusterOpts) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	var log *slog.Logger
	if o.verbose {
		log = obs.NewLogger(os.Stderr, slog.LevelDebug, nil)
	}
	var reg *obs.Registry
	if o.obsListen != "" {
		reg = obs.NewRegistry()
	}
	var tenants *fleet.TenantConfig
	if o.tenantRate > 0 {
		tenants = &fleet.TenantConfig{Rate: o.tenantRate, Burst: o.tenantBurst}
	}
	killPhase, killShard := "", -1
	if o.rebalanceKill != "" {
		var err error
		if killPhase, killShard, err = parseRebalanceKill(o.rebalanceKill); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd: -rebalance-kill:", err)
			return 1
		}
	}

	// The -resize-to trigger: once -resize-after submissions are acked
	// (immediately, with 0), rebalance the live fleet exactly once. The
	// resize runs on its own goroutine — OnAcked is called from router
	// handlers, which must not block behind a whole rebalance — and the
	// drain below waits for it, so its report always precedes the output.
	var f *fleet.Fleet
	var resizeOnce sync.Once
	resizeDone := make(chan struct{})
	var resizeTriggered atomic.Bool
	triggerResize := func() {
		resizeOnce.Do(func() {
			resizeTriggered.Store(true)
			go func() {
				defer close(resizeDone)
				rep, err := f.Resize(o.resizeTo)
				if err != nil {
					fmt.Fprintln(os.Stderr, "vedranalyzerd: resize:", err)
					return
				}
				fmt.Printf("resized to %d shards (epoch %d)\n", rep.To, rep.Epoch)
			}()
		})
	}
	var onAcked func(total int64)
	if o.resizeTo > 0 && o.resizeAfter > 0 {
		onAcked = func(total int64) {
			if total >= int64(o.resizeAfter) {
				triggerResize()
			}
		}
	}
	var killOnce sync.Once
	onPhase := func(phase string) {
		if phase != killPhase {
			return
		}
		killOnce.Do(func() {
			if err := f.KillShard(killShard); err != nil {
				fmt.Fprintln(os.Stderr, "vedranalyzerd: rebalance-kill:", err)
			}
		})
	}

	f, err = fleet.Start(fleet.Config{
		BinPath:       exe,
		Shards:        o.shards,
		Replicas:      o.replicas,
		Dir:           o.walDir,
		Fsync:         o.fsyncMode,
		SnapshotEvery: o.snapshotEvery,
		Listen:        o.listen,
		HoldShard:     o.holdShard,
		Tenants:       tenants,
		OnAcked:       onAcked,
		OnPhase:       onPhase,
		OnShard: func(i int, addr string, pid int) {
			fmt.Printf("shard %d listening on %s (pid %d)\n", i, addr, pid)
		},
		Stderr:  os.Stderr,
		Log:     log,
		Metrics: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	// Arm the drain trigger before announcing readiness, same as run():
	// a client may read the announce line and SIGTERM us immediately.
	done := make(chan struct{})
	if o.after > 0 {
		go func() {
			//lint:ignore nosystime operator-requested wall-clock run duration
			time.Sleep(o.after)
			close(done)
		}()
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(done)
		}()
	}
	fmt.Println("analyzer listening on", f.Addr())
	if o.resizeTo > 0 && o.resizeAfter <= 0 {
		triggerResize() // no ack threshold: rebalance as soon as the fleet is up
	}

	if o.obsListen != "" {
		reg.PublishExpvar("vedranalyzerd")
		ln, err := net.Listen("tcp", o.obsListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			f.Close()
			return 1
		}
		fmt.Fprintf(os.Stderr, "vedranalyzerd: obs on http://%s/metrics\n", ln.Addr())
		mux := obs.Mux(reg)
		obs.HandleHealth(mux, nil, f.Ready)
		go http.Serve(ln, mux)
	}

	<-done
	if resizeTriggered.Load() {
		// Let an in-flight rebalance finish before tearing the fleet
		// down: its handoffs are what the drain is about to gather.
		<-resizeDone
	}

	router := f.Router()
	merged, err := f.Drain(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	fmt.Printf("ingested: %d step records, %d reports, %d collective flows\n",
		merged.Stats.Records, merged.Stats.Reports, merged.Stats.CFs)
	st := router.Stats()
	if st.Rejected != 0 {
		fmt.Printf("shrugged off: %d rejected lines\n", st.Rejected)
	}
	if st.ShardDown != 0 || st.Quiesced != 0 || st.TenantLimited != 0 {
		fmt.Printf("backpressure: %d shard-down retries, %d rebalance fences, %d tenant limits\n",
			st.ShardDown, st.Quiesced, st.TenantLimited)
	}
	if tenants != nil {
		// Per-tenant accounting: what each budget owner got through
		// (deterministic for a completed workload, so it lives on stdout)
		// and how often the quota gate pushed back (timing-dependent, so
		// it rides stderr with the rest of the operational noise).
		for _, ta := range merged.Tenants {
			fmt.Printf("tenant %s: %d clients, %d records, %d reports, %d flows\n",
				ta.Tenant, ta.Clients, ta.Records, ta.Reports, ta.CFs)
			if ta.Limited > 0 {
				fmt.Fprintf(os.Stderr, "vedranalyzerd: tenant %s: %d over-quota NACKs\n",
					ta.Tenant, ta.Limited)
			}
		}
	}
	if merged.Degraded() {
		fmt.Fprintf(os.Stderr,
			"vedranalyzerd: degraded: shards %v unreachable; diagnosis missing >= %d records, %d reports, %d flows\n",
			merged.Missing, merged.MissedRecords, merged.MissedReports, merged.MissedCFs)
	}
	if o.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(merged.Diagnosis)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		return 0
	}
	fmt.Print(merged.Diagnosis.Summary())
	return 0
}
