package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vedrfolnir/internal/fleet"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

// clusterOpts carries the -cluster subset of the daemon flags into the
// fleet runner.
type clusterOpts struct {
	listen        string
	after         time.Duration
	asJSON        bool
	shards        int
	replicas      int
	holdShard     int
	walDir        string
	fsyncMode     string
	snapshotEvery int
	obsListen     string
	verbose       bool
}

// runCluster is the -cluster entrypoint: it spawns this same binary as N
// supervised shard children, fronts them with the consistent-hash router,
// and on drain gathers every shard's state into one merged diagnosis —
// printed in exactly the format of a standalone run, so harnesses that
// diff daemon output need not know a fleet produced it. Per-shard
// announce lines go to stdout with a "shard " prefix so those same
// harnesses can filter them (and chaos drivers can read the pids).
func runCluster(o clusterOpts) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	var log *slog.Logger
	if o.verbose {
		log = obs.NewLogger(os.Stderr, slog.LevelDebug, nil)
	}
	var reg *obs.Registry
	if o.obsListen != "" {
		reg = obs.NewRegistry()
	}
	f, err := fleet.Start(fleet.Config{
		BinPath:       exe,
		Shards:        o.shards,
		Replicas:      o.replicas,
		Dir:           o.walDir,
		Fsync:         o.fsyncMode,
		SnapshotEvery: o.snapshotEvery,
		Listen:        o.listen,
		HoldShard:     o.holdShard,
		OnShard: func(i int, addr string, pid int) {
			fmt.Printf("shard %d listening on %s (pid %d)\n", i, addr, pid)
		},
		Stderr:  os.Stderr,
		Log:     log,
		Metrics: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	// Arm the drain trigger before announcing readiness, same as run():
	// a client may read the announce line and SIGTERM us immediately.
	done := make(chan struct{})
	if o.after > 0 {
		go func() {
			//lint:ignore nosystime operator-requested wall-clock run duration
			time.Sleep(o.after)
			close(done)
		}()
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(done)
		}()
	}
	fmt.Println("analyzer listening on", f.Addr())

	if o.obsListen != "" {
		reg.PublishExpvar("vedranalyzerd")
		ln, err := net.Listen("tcp", o.obsListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			f.Close()
			return 1
		}
		fmt.Fprintf(os.Stderr, "vedranalyzerd: obs on http://%s/metrics\n", ln.Addr())
		mux := obs.Mux(reg)
		obs.HandleHealth(mux, nil, f.Ready)
		go http.Serve(ln, mux)
	}

	<-done

	router := f.Router()
	merged, err := f.Drain(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
		return 1
	}
	fmt.Printf("ingested: %d step records, %d reports, %d collective flows\n",
		merged.Stats.Records, merged.Stats.Reports, merged.Stats.CFs)
	st := router.Stats()
	if st.Rejected != 0 {
		fmt.Printf("shrugged off: %d rejected lines\n", st.Rejected)
	}
	if st.ShardDown != 0 {
		fmt.Printf("backpressure: %d shard-down retries\n", st.ShardDown)
	}
	if merged.Degraded() {
		fmt.Fprintf(os.Stderr,
			"vedranalyzerd: degraded: shards %v unreachable; diagnosis missing >= %d records, %d reports, %d flows\n",
			merged.Missing, merged.MissedRecords, merged.MissedReports, merged.MissedCFs)
	}
	if o.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(wire.FromDiagnosis(merged.Diagnosis)); err != nil {
			fmt.Fprintln(os.Stderr, "vedranalyzerd:", err)
			return 1
		}
		return 0
	}
	fmt.Print(merged.Diagnosis.Summary())
	return 0
}
