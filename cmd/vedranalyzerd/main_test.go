package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/topo"
)

var daemonPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "vedranalyzerd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	daemonPath = filepath.Join(dir, "vedranalyzerd")
	build := exec.Command("go", "build", "-o", daemonPath, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, "building daemon:", err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one running vedranalyzerd subprocess with captured stdout.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	done chan error

	mu    sync.Mutex
	lines []string
}

// startDaemon launches the binary and waits for its listening line; ok is
// false when the daemon exited before announcing (e.g. a bind race on
// restart — the caller retries).
func startDaemon(t *testing.T, args ...string) (*daemon, bool) {
	t.Helper()
	d := &daemon{cmd: exec.Command(daemonPath, args...), done: make(chan error, 1)}
	d.cmd.Stderr = os.Stderr
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "analyzer listening on "); ok {
				addrCh <- a
				continue
			}
			d.mu.Lock()
			d.lines = append(d.lines, line)
			d.mu.Unlock()
		}
		close(addrCh)
		d.done <- d.cmd.Wait()
	}()
	select {
	case a, ok := <-addrCh:
		if !ok {
			<-d.done
			return nil, false
		}
		d.addr = a
		return d, true
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon never announced its address")
		return nil, false
	}
}

// output returns the captured stdout lines, minus the operational noise
// that legitimately differs between a crashed-and-recovered run and an
// uninterrupted one (duplicate-suppression and backpressure counters, and
// per-shard announce lines whose ports and pids are never stable).
func (d *daemon) output() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, l := range d.lines {
		if strings.HasPrefix(l, "shrugged off:") || strings.HasPrefix(l, "backpressure:") ||
			strings.HasPrefix(l, "shard ") || strings.HasPrefix(l, "resized ") {
			continue
		}
		out = append(out, l)
	}
	return out
}

func (d *daemon) terminate(t *testing.T) []string {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not drain and exit after SIGTERM")
	}
	return d.output()
}

func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.done
}

// testMessages is a fixed submission stream: a few step records plus the
// collective-flow census, enough to give the diagnosis real state.
func testMessages() []func(rc *analyzerd.ReliableClient) error {
	var items []func(rc *analyzerd.ReliableClient) error
	for i := 0; i < 6; i++ {
		rec := collective.StepRecord{
			Host:  topo.NodeID(i + 1),
			Step:  i,
			Flow:  fabric.FlowKey{Src: topo.NodeID(i + 1), Dst: topo.NodeID(i + 2), SrcPort: 7, DstPort: 8, Proto: 17},
			Bytes: int64(1000 * (i + 1)),
			Start: 0,
			End:   0,
		}
		items = append(items, func(rc *analyzerd.ReliableClient) error { return rc.SendStep(rec) })
	}
	for i := 0; i < 6; i++ {
		cf := fabric.FlowKey{Src: topo.NodeID(i + 1), Dst: topo.NodeID(i + 2), SrcPort: 7, DstPort: 8, Proto: 17}
		items = append(items, func(rc *analyzerd.ReliableClient) error { return rc.SendCF(cf) })
	}
	return items
}

func newClient(t *testing.T, addr string) *analyzerd.ReliableClient {
	t.Helper()
	rc, err := analyzerd.NewReliableClient(addr, analyzerd.ClientConfig{
		ID:          "harness",
		MaxAttempts: 20,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func sendItems(t *testing.T, rc *analyzerd.ReliableClient, items []func(rc *analyzerd.ReliableClient) error, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := items[i](rc); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

// restartDaemon rebinds the recovered daemon on the address the killed one
// used (the client keeps resubmitting there), retrying the bind race.
func restartDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		if d, ok := startDaemon(t, args...); ok {
			return d
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("could not rebind the daemon's address after 20 attempts")
	return nil
}

// TestKillRecoverDiagnosisIdentical SIGKILLs the durable daemon at seeded
// cut points mid-ingest, restarts it on the same WAL directory and
// address, finishes the stream through the same reliable client, and
// requires the drained output (ingest totals + diagnosis) to be
// byte-identical to a run that never crashed.
func TestKillRecoverDiagnosisIdentical(t *testing.T) {
	items := testMessages()

	ref, ok := startDaemon(t, "-listen", "127.0.0.1:0")
	if !ok {
		t.Fatal("reference daemon failed to start")
	}
	rcRef := newClient(t, ref.addr)
	sendItems(t, rcRef, items, 0, len(items))
	if err := rcRef.Close(); err != nil {
		t.Fatal(err)
	}
	want := ref.terminate(t)
	if len(want) == 0 || !strings.HasPrefix(want[0], "ingested: ") {
		t.Fatalf("unexpected reference output: %q", want)
	}

	faults := chaos.NewWALFaults(1337)
	for _, cut := range faults.CrashPoints(2, len(items)-1) {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			walDir := t.TempDir()
			d1, ok := startDaemon(t, "-listen", "127.0.0.1:0",
				"-wal-dir", walDir, "-fsync", "always", "-snapshot-every", "4")
			if !ok {
				t.Fatal("daemon failed to start")
			}
			rc := newClient(t, d1.addr)
			sendItems(t, rc, items, 0, cut)
			if err := rc.Flush(); err != nil {
				t.Fatal(err)
			}
			d1.kill(t)

			d2 := restartDaemon(t, "-listen", d1.addr,
				"-wal-dir", walDir, "-fsync", "always", "-snapshot-every", "4")
			sendItems(t, rc, items, cut, len(items))
			if err := rc.Close(); err != nil {
				t.Fatal(err)
			}
			got := d2.terminate(t)
			if !slicesEqual(got, want) {
				t.Fatalf("recovered run output differs:\n%s\nvs reference\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSuperviseCleanExit: a child that drains and exits 0 ends
// supervision with exit 0 (no restart).
func TestSuperviseCleanExit(t *testing.T) {
	cmd := exec.Command(daemonPath, "supervise", "--", "-listen", "127.0.0.1:0", "-after", "300ms")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("supervise of a clean child: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "analyzer listening on ") {
		t.Fatalf("child never ran under supervision:\n%s", out.String())
	}
	if strings.Contains(out.String(), "restarting in") {
		t.Fatalf("clean exit was restarted:\n%s", out.String())
	}
}

// TestSuperviseCrashLoopGivesUp: a child that dies instantly must be
// restarted with backoff only a bounded number of times.
func TestSuperviseCrashLoopGivesUp(t *testing.T) {
	cmd := exec.Command(daemonPath, "supervise",
		"-backoff", "10ms", "-crash-window", "5s", "-crash-loops", "3",
		"--", "-definitely-not-a-flag")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("supervise of a crash-looping child: err=%v, want exit 1\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "crash loop") {
		t.Fatalf("crash loop not reported:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "restarting in"); got != 2 {
		t.Fatalf("child restarted %d times before giving up, want 2\n%s", got, out.String())
	}
}
