package vedrfolnir

import (
	"strings"
	"testing"
	"time"
	"vedrfolnir/internal/monitor"
)

// small returns fast options for unit tests.
func small() Options {
	return Options{
		Ranks:     4,
		StepBytes: 1 << 20,
		CellSize:  16 << 10,
	}
}

func TestCleanSession(t *testing.T) {
	sess, err := NewSession(small())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CollectiveTime <= 0 {
		t.Fatalf("no completion time")
	}
	if len(rep.Diagnosis.Findings) != 0 {
		t.Fatalf("clean run produced findings: %+v", rep.Diagnosis.Findings)
	}
	if len(rep.Diagnosis.CriticalPath) == 0 {
		t.Fatalf("no critical path")
	}
}

func TestContentionSession(t *testing.T) {
	sess, err := NewSession(small())
	if err != nil {
		t.Fatal(err)
	}
	hosts := sess.Hosts()
	bg := sess.InjectFlow(hosts[8], hosts[1], 4<<20, 0)
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Diagnosis.Findings {
		if f.Type == FlowContention || f.Type == Incast {
			for _, c := range f.Culprits {
				if c == bg {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("injected flow not identified: %s", rep.Diagnosis.Summary())
	}
	if rep.Detections == 0 || rep.Overhead.TelemetryBytes == 0 {
		t.Fatalf("no detections/overhead recorded")
	}
	// DOT exports render.
	if !strings.Contains(WaitGraphDOT(rep.Diagnosis), "digraph waiting") {
		t.Fatalf("bad wait DOT")
	}
	if !strings.Contains(ProvenanceDOT(rep.Diagnosis), "digraph provenance") {
		t.Fatalf("bad provenance DOT")
	}
}

func TestStormSession(t *testing.T) {
	opts := small()
	sess, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pause rank 0's uplink via its edge switch ingress for a while.
	edgeSwitch := sess.Switches()[4] // first edge switch in a K=4 tree... verify via topology
	_ = edgeSwitch
	// Robust: find the switch adjacent to host 0.
	sess.InjectPFCStorm(sessEdgeOf(t, sess, sess.Hosts()[0]), 0, 50*time.Microsecond, 300*time.Microsecond)
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diagnosis.HasType(PFCStorm) {
		t.Fatalf("storm not diagnosed: %s", rep.Diagnosis.Summary())
	}
}

// sessEdgeOf finds the edge switch a host hangs off using the public host
// list (the host's uplink peer).
func sessEdgeOf(t *testing.T, s *Session, host NodeID) NodeID {
	t.Helper()
	sw, _ := s.ft.EdgeOf(host)
	return sw
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(Options{Ranks: 1}); err == nil {
		t.Fatalf("1 rank should fail")
	}
	if _, err := NewSession(Options{Ranks: 99}); err == nil {
		t.Fatalf("99 ranks on K=4 should fail")
	}
	sess, err := NewSession(small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err == nil {
		t.Fatalf("second Run should fail")
	}
}

func TestHalvingDoublingSession(t *testing.T) {
	opts := small()
	opts.Algorithm = HalvingDoubling
	opts.Op = AllReduce
	sess, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CollectiveTime <= 0 {
		t.Fatalf("HD allreduce did not complete")
	}
}

func TestLoopViaPublicAPI(t *testing.T) {
	opts := small()
	opts.Monitor = monitorDefaultsForTest()
	sess, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	hosts := sess.Hosts()
	// Loop pod-0 edge0 ↔ agg0 for traffic toward a bystander: switch
	// order is 4 cores, then per pod [agg, agg, edge, edge].
	agg := sess.Switches()[4]
	edge := sess.Switches()[6]
	victim := hosts[10]
	up := sess.PortToward(edge, agg)
	down := sess.PortToward(agg, edge)
	if up < 0 || down < 0 {
		t.Fatalf("agg/edge not adjacent: up=%d down=%d", up, down)
	}
	sess.PinRoute(edge, victim, []int{up})
	sess.PinRoute(agg, victim, []int{down})
	// Feed the loop from a rank under the looped edge.
	sess.InjectFlow(hosts[0], victim, 2<<20, 0)

	rep, err := sess.Run()
	if err != nil {
		// A deadlocked collective may hit the deadline; that is itself
		// the §II-B failure mode and acceptable here.
		t.Skipf("collective deadlocked by the loop (expected possibility): %v", err)
	}
	if !rep.Diagnosis.HasType(PFCDeadlock) && !rep.Diagnosis.HasType(ForwardingLoop) {
		t.Fatalf("loop neither detected as deadlock nor as loop: %s", rep.Diagnosis.Summary())
	}
}

// monitorDefaultsForTest enables the stall watchdog so halted flows are
// still investigated (as scenario.DefaultRunOptions does).
func monitorDefaultsForTest() monitor.Config {
	m := monitor.DefaultConfig()
	m.CellSize = 16 << 10
	m.StallTimeout = 200 * time.Microsecond
	return m
}

func TestPortTowardNonAdjacent(t *testing.T) {
	sess, err := NewSession(small())
	if err != nil {
		t.Fatal(err)
	}
	// Two cores are never adjacent.
	if got := sess.PortToward(sess.Switches()[0], sess.Switches()[1]); got != -1 {
		t.Fatalf("non-adjacent PortToward = %d, want -1", got)
	}
}
