package vedrfolnir_test

import (
	"fmt"

	"vedrfolnir"
)

// ExampleSession demonstrates the complete diagnosis loop: run a collective,
// disturb it, and read the analyzer's findings.
func ExampleSession() {
	sess, err := vedrfolnir.NewSession(vedrfolnir.Options{
		Ranks:     4,
		StepBytes: 1 << 20,
		CellSize:  16 << 10,
	})
	if err != nil {
		panic(err)
	}
	hosts := sess.Hosts()
	// A bystander host floods participant 1.
	bg := sess.InjectFlow(hosts[8], hosts[1], 4<<20, 0)

	rep, err := sess.Run()
	if err != nil {
		panic(err)
	}
	for _, f := range rep.Diagnosis.Findings {
		if f.Type != vedrfolnir.FlowContention {
			continue
		}
		for _, c := range f.Culprits {
			if c == bg {
				fmt.Println("culprit identified")
				return
			}
		}
	}
	// Output: culprit identified
}

// ExampleSession_pfcStorm shows PFC storm localization: the faulty port is
// traced through the PFC spreading path.
func ExampleSession_pfcStorm() {
	sess, err := vedrfolnir.NewSession(vedrfolnir.Options{
		Ranks:     4,
		StepBytes: 1 << 20,
		CellSize:  16 << 10,
	})
	if err != nil {
		panic(err)
	}
	// Storm the first edge switch's host-facing ingress mid-run
	// (switch order: 4 cores, then per pod 2 aggs + 2 edges).
	edge := sess.Switches()[6]
	sess.InjectPFCStorm(edge, 0, 50_000 /* 50µs */, 400_000 /* 400µs */)

	rep, err := sess.Run()
	if err != nil {
		panic(err)
	}
	for _, f := range rep.Diagnosis.Findings {
		if f.Type == vedrfolnir.PFCStorm && f.RootPort.Node == edge {
			fmt.Println("storm traced to the injecting switch")
			return
		}
	}
	// Output: storm traced to the injecting switch
}
