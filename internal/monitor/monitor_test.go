package monitor

import (
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// rig: nRanks collective hosts + nExtra background hosts on one switch.
type rig struct {
	k      *sim.Kernel
	tp     *topo.Topology
	net    *fabric.Network
	hosts  map[topo.NodeID]*rdma.Host
	ranks  []topo.NodeID
	extras []topo.NodeID
}

func newRig(t *testing.T, nRanks, nExtra int) *rig {
	t.Helper()
	tp := topo.New()
	var ranks, extras []topo.NodeID
	for i := 0; i < nRanks; i++ {
		ranks = append(ranks, tp.AddNode(topo.KindHost, "r"))
	}
	for i := 0; i < nExtra; i++ {
		extras = append(extras, tp.AddNode(topo.KindHost, "x"))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range append(append([]topo.NodeID{}, ranks...), extras...) {
		tp.AddLink(h, sw, 100*simtime.Gbps, time.Microsecond)
	}
	tp.ComputeRoutes()
	k := sim.New(21)
	net := fabric.NewNetwork(k, tp, fabric.DefaultConfig())
	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = 4096
	hosts := map[topo.NodeID]*rdma.Host{}
	for _, id := range append(append([]topo.NodeID{}, ranks...), extras...) {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = h
	}
	return &rig{k: k, tp: tp, net: net, hosts: hosts, ranks: ranks, extras: extras}
}

func (r *rig) collective(t *testing.T, bytes int64) *collective.Runner {
	t.Helper()
	schs, err := collective.Decompose(collective.Spec{
		Op: collective.AllGather, Alg: collective.Ring, Ranks: r.ranks, Bytes: bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := collective.NewRunner(r.k, r.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	return run
}

func monCfg() Config {
	c := DefaultConfig()
	c.CellSize = 4096
	return c
}

func TestNoAnomalyNoTriggers(t *testing.T) {
	r := newRig(t, 4, 0)
	run := r.collective(t, 256*1024)
	sys := NewSystem(r.k, r.net, run, r.hosts, monCfg())
	run.Start()
	r.k.Run(simtime.Never)
	if done, _ := run.Done(); !done {
		t.Fatal("collective incomplete")
	}
	if got := sys.Triggers(); got != 0 {
		t.Fatalf("clean run triggered %d detections, want 0", got)
	}
	if len(sys.Reports()) != 0 {
		t.Fatalf("clean run produced reports")
	}
}

func TestContentionTriggersBoundedDetection(t *testing.T) {
	r := newRig(t, 4, 1)
	run := r.collective(t, 512*1024)
	cfg := monCfg()
	sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
	// Background flow colliding with rank1→rank2 traffic at the switch.
	bg := fabric.FlowKey{Src: r.extras[0], Dst: r.ranks[2], SrcPort: 9000, DstPort: 9001, Proto: 17}
	r.hosts[r.extras[0]].Send(bg, 2<<20)
	run.Start()
	r.k.Run(simtime.Never)
	if done, _ := run.Done(); !done {
		t.Fatal("collective incomplete")
	}
	if sys.Triggers() == 0 {
		t.Fatalf("contention produced no detections")
	}
	// The paper's overhead bound: opportunities funnel toward the slowest
	// monitor (Fig 7) but the system-wide issue is bounded by
	// hosts × steps × MaxDetectPerStep.
	if total := sys.Triggers(); total > 4*3*cfg.MaxDetectPerStep {
		t.Fatalf("system triggered %d times, exceeding the issued budget %d",
			total, 4*3*cfg.MaxDetectPerStep)
	}
	if len(sys.Reports()) == 0 {
		t.Fatalf("no telemetry reports retained")
	}
}

func TestUnrestrictedTriggersMore(t *testing.T) {
	runCase := func(unrestricted bool) int {
		r := newRig(t, 4, 1)
		run := r.collective(t, 512*1024)
		cfg := monCfg()
		cfg.Unrestricted = unrestricted
		sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
		bg := fabric.FlowKey{Src: r.extras[0], Dst: r.ranks[2], SrcPort: 9000, DstPort: 9001, Proto: 17}
		r.hosts[r.extras[0]].Send(bg, 4<<20)
		run.Start()
		r.k.Run(simtime.Never)
		return sys.Triggers()
	}
	restricted := runCase(false)
	unrestricted := runCase(true)
	if unrestricted <= restricted {
		t.Fatalf("unrestricted (%d) should trigger more than restricted (%d)",
			unrestricted, restricted)
	}
}

func TestPerStepThresholdRecomputation(t *testing.T) {
	// On a fat-tree, an HD collective's steps traverse paths of different
	// lengths, so the per-step threshold must change — the fix for
	// Hawkeye's fixed threshold (§III-C2).
	ft := topo.PaperFatTree()
	k := sim.New(9)
	net := fabric.NewNetwork(k, ft.Topology, fabric.DefaultConfig())
	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = 4096
	hosts := map[topo.NodeID]*rdma.Host{}
	ranks := ft.Hosts()[:8]
	for _, id := range ranks {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = h
	}
	schs, err := collective.Decompose(collective.Spec{
		Op: collective.AllGather, Alg: collective.HalvingDoubling, Ranks: ranks, Bytes: 256 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := collective.NewRunner(k, hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	cfg := monCfg()
	sys := NewSystem(k, net, run, hosts, cfg)

	m := sys.Monitors[ranks[0]]
	var thresholds []simtime.Duration
	prev := run.OnStepStart
	run.OnStepStart = func(h topo.NodeID, s int, f fabric.FlowKey, at simtime.Time) {
		prev(h, s, f, at)
		if h == ranks[0] {
			thresholds = append(thresholds, m.Threshold())
		}
	}
	run.Start()
	k.Run(simtime.Never)

	if len(thresholds) != 3 {
		t.Fatalf("thresholds = %v", thresholds)
	}
	// Step 0 partner shares the edge switch (2 hops); step 2 partner is
	// cross-pod (6 hops): thresholds must grow.
	if thresholds[2] <= thresholds[0] {
		t.Fatalf("threshold did not grow with path length: %v", thresholds)
	}
}

func TestFixedThresholdOverride(t *testing.T) {
	r := newRig(t, 4, 0)
	run := r.collective(t, 64*1024)
	cfg := monCfg()
	cfg.FixedRTTThreshold = 123 * time.Microsecond
	sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
	run.Start()
	r.k.Run(simtime.Never)
	for _, m := range sys.Monitors {
		if m.Threshold() != 123*time.Microsecond {
			t.Fatalf("fixed threshold not applied: %v", m.Threshold())
		}
	}
}

func TestAdaptiveTransfer(t *testing.T) {
	r := newRig(t, 4, 0)
	run := r.collective(t, 512*1024)
	cfg := monCfg()
	sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
	// Slow rank2's uplink so every other monitor finishes its steps first
	// and transfers opportunities toward the waiter chain.
	sw := r.tp.Switches()[0]
	r.net.InjectPFCStorm(sw, 2, simtime.Time(10*time.Microsecond), 300*time.Microsecond)
	run.Start()
	r.k.Run(simtime.Never)
	if done, _ := run.Done(); !done {
		t.Fatal("collective incomplete")
	}
	var transferred, received int
	for _, m := range sys.Monitors {
		transferred += m.Transferred
		received += m.Received
	}
	if transferred == 0 {
		t.Fatalf("no opportunities transferred despite skewed completion")
	}
	if received == 0 {
		t.Fatalf("transferred but never received")
	}
	// Notification traffic must be in the bandwidth overhead.
	if sys.Col.Totals.NotifyBytes == 0 {
		t.Fatalf("notification bytes unaccounted")
	}
}

func TestAdaptiveOffNoTransfer(t *testing.T) {
	r := newRig(t, 4, 0)
	run := r.collective(t, 512*1024)
	cfg := monCfg()
	cfg.Adaptive = false
	sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
	sw := r.tp.Switches()[0]
	r.net.InjectPFCStorm(sw, 2, simtime.Time(10*time.Microsecond), 300*time.Microsecond)
	run.Start()
	r.k.Run(simtime.Never)
	for _, m := range sys.Monitors {
		if m.Transferred != 0 || m.Received != 0 {
			t.Fatalf("transfer happened with Adaptive=false")
		}
	}
	if sys.Col.Totals.NotifyBytes != 0 {
		t.Fatalf("notify bytes with Adaptive=false")
	}
}

func TestWaitStateTableI(t *testing.T) {
	r := newRig(t, 4, 0)
	run := r.collective(t, 64*1024)
	sys := NewSystem(r.k, r.net, run, r.hosts, monCfg())
	m := sys.Monitors[r.ranks[0]]
	// Before starting: step 0 has no data dependency, so its receive gate
	// is vacuously satisfied — Send Steps < Recv Steps → non-waiting
	// (Table I: "execute the next send step as soon as current is
	// finished").
	if m.WaitState() != NonWaiting {
		t.Fatalf("initial state = %v, want non-waiting", m.WaitState())
	}
	run.Start()
	r.k.Run(simtime.Never)
	// After completion both counters are equal again → waiting (for data
	// that will never come; the collective is over).
	if m.WaitState() != Waiting {
		t.Fatalf("final state = %v", m.WaitState())
	}
}

func TestBudgetCap(t *testing.T) {
	r := newRig(t, 4, 0)
	run := r.collective(t, 64*1024)
	cfg := monCfg()
	sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
	m := sys.Monitors[r.ranks[0]]
	// Simulate hoarding: inject large transfers.
	m.HandleNotify(&fabric.Packet{Kind: fabric.KindNotify, Payload: NotifyPayload{Count: 1000}})
	m.HandleStepStart(0, fabric.FlowKey{})
	if m.Budget() > 4*cfg.MaxDetectPerStep {
		t.Fatalf("budget %d exceeds hoard cap %d", m.Budget(), 4*cfg.MaxDetectPerStep)
	}
	_ = run
}

func TestStallWatchdog(t *testing.T) {
	// Storm the switch ingress facing rank 0 from t=0: rank 0's flow is
	// fully halted, produces no ACKs, and the RTT trigger never fires.
	// The §V stall watchdog must trigger instead.
	runCase := func(timeout simtime.Duration) (stall int, reports int) {
		r := newRig(t, 4, 0)
		run := r.collective(t, 256*1024)
		cfg := monCfg()
		cfg.StallTimeout = timeout
		sys := NewSystem(r.k, r.net, run, r.hosts, cfg)
		sw := r.tp.Switches()[0]
		r.net.InjectPFCStorm(sw, 0, 0, 400*time.Microsecond)
		run.Start()
		r.k.Run(simtime.Never)
		if done, _ := run.Done(); !done {
			t.Fatal("collective incomplete")
		}
		m := sys.Monitors[r.ranks[0]]
		return m.StallTriggers, len(m.Reports)
	}
	stall, reports := runCase(50 * time.Microsecond)
	if stall == 0 {
		t.Fatalf("watchdog never fired for a fully halted flow")
	}
	if reports == 0 {
		t.Fatalf("watchdog triggered but no telemetry collected")
	}
	// Without the watchdog the halted flow goes unobserved by rank 0.
	stallOff, _ := runCase(0)
	if stallOff != 0 {
		t.Fatalf("watchdog disabled but StallTriggers = %d", stallOff)
	}
}
