package monitor

import (
	"testing"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
)

// gateFunc adapts a func to PollGate for fault-injection tests.
type gateFunc func() bool

func (g gateFunc) PollLost() bool { return g() }

func TestPollGateBoundedRetries(t *testing.T) {
	// Every poll round trip is lost: each detection re-arms a bounded
	// number of times and then gives up. The collective must complete with
	// zero telemetry and the loss must be fully accounted.
	r := newRig(t, 4, 1)
	run := r.collective(t, 512*1024)
	sys := NewSystem(r.k, r.net, run, r.hosts, monCfg())
	for _, m := range sys.Monitors {
		m.Gate = gateFunc(func() bool { return true })
	}
	bg := fabric.FlowKey{Src: r.extras[0], Dst: r.ranks[2], SrcPort: 9000, DstPort: 9001, Proto: 17}
	r.hosts[r.extras[0]].Send(bg, 2<<20)
	run.Start()
	r.k.Run(simtime.Never)
	if done, _ := run.Done(); !done {
		t.Fatal("collective incomplete under total poll loss")
	}
	if sys.Triggers() == 0 {
		t.Fatal("contention produced no detections; gate untested")
	}
	if sys.PollsLost() == 0 {
		t.Fatal("gate installed but no polls counted lost")
	}
	if got := len(sys.Reports()); got != 0 {
		t.Fatalf("%d reports collected despite a closed gate", got)
	}
	// Bounded re-arm: each trigger costs at most 1 + maxPollRetries lost
	// polls (the initial attempt plus its retries).
	var retries int
	for _, m := range sys.Monitors {
		retries += m.PollRetries
	}
	if retries == 0 {
		t.Fatal("lost polls were never re-armed")
	}
	if max := sys.Triggers() * (1 + maxPollRetries); sys.PollsLost() > max {
		t.Fatalf("%d polls lost for %d triggers, exceeding the re-arm bound %d",
			sys.PollsLost(), sys.Triggers(), max)
	}
}

func TestPollGateRetrySucceeds(t *testing.T) {
	// A gate that eats only the first attempt: the re-arm must recover the
	// telemetry instead of dropping the detection.
	r := newRig(t, 4, 1)
	run := r.collective(t, 512*1024)
	sys := NewSystem(r.k, r.net, run, r.hosts, monCfg())
	calls := 0
	flaky := gateFunc(func() bool {
		calls++
		return calls == 1
	})
	for _, m := range sys.Monitors {
		m.Gate = flaky
	}
	bg := fabric.FlowKey{Src: r.extras[0], Dst: r.ranks[2], SrcPort: 9000, DstPort: 9001, Proto: 17}
	r.hosts[r.extras[0]].Send(bg, 2<<20)
	run.Start()
	r.k.Run(simtime.Never)
	if sys.PollsLost() != 1 {
		t.Fatalf("PollsLost = %d, want exactly the one eaten attempt", sys.PollsLost())
	}
	if len(sys.Reports()) == 0 {
		t.Fatal("retry never recovered any telemetry")
	}
}

func TestMonitorKillRestart(t *testing.T) {
	// Kill one monitor mid-collective and restart it shortly after: the
	// collective completes, the kill is counted, the monitor is alive at
	// the end, and events during the dead window are ignored (no panics,
	// no stale-state triggers).
	r := newRig(t, 4, 1)
	run := r.collective(t, 512*1024)
	sys := NewSystem(r.k, r.net, run, r.hosts, monCfg())
	victim := sys.Monitors[r.ranks[0]]
	killAt := simtime.Time(20 * time.Microsecond)
	r.k.At(killAt, victim.Kill)
	r.k.At(killAt.Add(simtime.Duration(100*time.Microsecond)), victim.Restart)
	bg := fabric.FlowKey{Src: r.extras[0], Dst: r.ranks[2], SrcPort: 9000, DstPort: 9001, Proto: 17}
	r.hosts[r.extras[0]].Send(bg, 2<<20)
	run.Start()
	r.k.Run(simtime.Never)
	if done, _ := run.Done(); !done {
		t.Fatal("collective incomplete after kill/restart")
	}
	if victim.Kills != 1 || sys.Kills() != 1 {
		t.Fatalf("Kills = %d (system %d), want 1", victim.Kills, sys.Kills())
	}
	if victim.Dead() {
		t.Fatal("monitor still dead after Restart")
	}
}

func TestDeadMonitorIgnoresEvents(t *testing.T) {
	// Direct unit check on the dead-state guards: a killed monitor ignores
	// notifications and step events instead of mutating volatile state.
	r := newRig(t, 4, 0)
	run := r.collective(t, 64*1024)
	sys := NewSystem(r.k, r.net, run, r.hosts, monCfg())
	m := sys.Monitors[r.ranks[0]]
	m.Kill()
	m.HandleNotify(&fabric.Packet{Kind: fabric.KindNotify, Payload: NotifyPayload{Count: 5}})
	if m.Budget() != 0 {
		t.Fatalf("dead monitor accepted notify budget %d", m.Budget())
	}
	m.HandleStepStart(0, fabric.FlowKey{})
	if m.Budget() != 0 {
		t.Fatalf("dead monitor armed a step (budget %d)", m.Budget())
	}
	m.Restart()
	m.HandleStepStart(0, fabric.FlowKey{})
	if m.Budget() == 0 {
		t.Fatal("restarted monitor did not re-arm at the next step start")
	}
	_ = run
}
