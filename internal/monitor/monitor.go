// Package monitor implements Vedrfolnir's host-side monitor (§III-C1/C2):
// waiting-status awareness over the SSQ/RSQ decomposition (Table I),
// per-step performance recording, and the step-aware adaptive anomaly
// detection that distinguishes Vedrfolnir from Hawkeye — per-step RTT
// thresholds recomputed from the topology, a bounded number of detection
// triggers per step spaced by the estimated FCT, and the transfer of
// remaining detection opportunities to the waiting flow's monitor through
// highest-priority notification packets (Figs 5–8).
package monitor

import (
	"sort"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

// Config tunes the detection mechanism. The experiment sweeps of Figs 12–13
// vary RTTFactor and MaxDetectPerStep.
type Config struct {
	// RTTFactor scales the per-step topology-derived base RTT into the
	// detection threshold (1.2 = the paper's "120% RTT").
	RTTFactor float64
	// FixedRTTThreshold, when positive, replaces the per-step threshold
	// with a fixed value for every flow and step (the Fig 13a ablation).
	FixedRTTThreshold simtime.Duration
	// MaxDetectPerStep bounds detection triggers per step (Fig 5).
	MaxDetectPerStep int
	// Unrestricted disables the per-step budget and FCT-derived spacing,
	// falling back to a raw spacing alone (the Fig 13b ablation,
	// "unrestricted triggering similar to Hawkeye").
	Unrestricted bool
	// UnrestrictedSpacing is the only rate limit in Unrestricted mode.
	UnrestrictedSpacing simtime.Duration
	// Adaptive enables the notification-packet transfer of remaining
	// detection opportunities (§III-C2's adaptive mechanism).
	Adaptive bool
	// StallTimeout, when positive, arms the §V extension: if a running
	// step produces no RTT sample for this long (its flow is completely
	// halted — PFC storm or deadlock), a detection triggers immediately,
	// bypassing the budget. The paper proposes exactly this fix for
	// anomalies the RTT trigger cannot see because no packets flow.
	StallTimeout simtime.Duration
	// Window is the telemetry look-back passed to each poll.
	Window simtime.Duration
	// CellSize is the data packet size, needed to estimate base RTTs.
	CellSize int
}

// DefaultConfig returns the paper's operating point: 120% step-grained RTT
// threshold, 3 detections per step, adaptive transfer on.
func DefaultConfig() Config {
	return Config{
		RTTFactor:           1.2,
		MaxDetectPerStep:    3,
		Adaptive:            true,
		UnrestrictedSpacing: time.Microsecond,
		Window:              5 * time.Millisecond,
		CellSize:            64 << 10,
	}
}

// WaitState is the Table I waiting-status determination.
type WaitState uint8

// Waiting states.
const (
	// Waiting: Send Steps == Recv Steps — the next send step waits for
	// the current receive to complete.
	Waiting WaitState = iota
	// NonWaiting: Send Steps < Recv Steps — the next send step can start
	// as soon as the current one finishes.
	NonWaiting
)

func (s WaitState) String() string {
	if s == Waiting {
		return "waiting"
	}
	return "non-waiting"
}

// PollGate decides, per detection, whether the poll round trip is lost —
// the query or the switches' responses eaten by the fabric under diagnosis.
// internal/chaos implements this; nil means every poll completes.
type PollGate interface {
	PollLost() bool
}

// NotifyPayload is the content of a notification packet (Fig 6): the sender
// and the detection opportunities being transferred.
type NotifyPayload struct {
	From  topo.NodeID
	Step  int
	Count int
}

// Monitor is the per-host detection agent (Fig 8).
type Monitor struct {
	K    *sim.Kernel
	Topo *topo.Topology
	Net  *fabric.Network
	Col  *telemetry.Collector
	Run  *collective.Runner
	Host topo.NodeID
	Cfg  Config

	sch *collective.Schedule

	curStep     int
	stepActive  bool
	curFlow     fabric.FlowKey
	threshold   simtime.Duration
	budget      int
	minInterval simtime.Duration
	lastTrigger simtime.Time

	// Obs, when set, receives detection-level trace instants and metrics;
	// the nil default records nothing.
	Obs *obs.Scope

	// Reports are the telemetry reports this monitor's detections
	// produced, in trigger order.
	Reports []*telemetry.Report
	// Triggers counts detection activations.
	Triggers int
	// Suppressed counts over-threshold RTT samples whose detection was
	// withheld by the per-step budget or the FCT-derived spacing — the
	// triggers an unrestricted system would have fired.
	Suppressed int
	// StallTriggers counts detections fired by the stall watchdog.
	StallTriggers int
	// stallBudget bounds watchdog firings per step so a permanently
	// stalled flow (deadlock) cannot poll unboundedly.
	stallBudget int
	// Transferred counts opportunities handed away; Received counts
	// opportunities accepted from notifications.
	Transferred, Received int

	// Gate, when set, can lose a detection's poll round trip (fault
	// injection); the monitor re-arms the detection with bounded retries.
	Gate PollGate
	// PollsLost counts poll round trips the Gate ate; PollRetries counts
	// re-armed detections. Both feed the diagnosis confidence.
	PollsLost, PollRetries int
	// Kills counts how many times this monitor was killed mid-collective.
	Kills int
	dead  bool

	lastSample simtime.Time
	stallSeq   int // invalidates outstanding watchdog timers
}

// System wires one monitor per participating host plus a shared collector.
type System struct {
	Monitors map[topo.NodeID]*Monitor
	Col      *telemetry.Collector
	Cfg      Config
}

// NewSystem builds monitors for every schedule in the runner and chains
// itself into the runner's and hosts' hooks (preserving hooks already set).
func NewSystem(k *sim.Kernel, net *fabric.Network, run *collective.Runner,
	hosts map[topo.NodeID]*rdma.Host, cfg Config) *System {

	sys := &System{
		Monitors: make(map[topo.NodeID]*Monitor),
		Col:      telemetry.NewCollector(net),
		Cfg:      cfg,
	}
	for id, h := range hosts {
		sch := run.Schedule(id)
		if sch == nil {
			continue
		}
		m := &Monitor{
			K:           k,
			Topo:        net.Topo,
			Net:         net,
			Col:         sys.Col,
			Run:         run,
			Host:        id,
			Cfg:         cfg,
			sch:         sch,
			lastTrigger: -1 << 62,
		}
		sys.Monitors[id] = m

		prevRTT := h.OnRTTSample
		h.OnRTTSample = func(s rdma.RTTSample) {
			if prevRTT != nil {
				prevRTT(s)
			}
			m.HandleRTTSample(s)
		}
		prevNotify := h.OnNotify
		h.OnNotify = func(p *fabric.Packet) {
			if prevNotify != nil {
				prevNotify(p)
			}
			m.HandleNotify(p)
		}
	}

	prevStart := run.OnStepStart
	run.OnStepStart = func(host topo.NodeID, step int, flow fabric.FlowKey, at simtime.Time) {
		if prevStart != nil {
			prevStart(host, step, flow, at)
		}
		if m := sys.Monitors[host]; m != nil {
			m.HandleStepStart(step, flow)
		}
	}
	prevEnd := run.OnStepEnd
	run.OnStepEnd = func(rec collective.StepRecord) {
		if prevEnd != nil {
			prevEnd(rec)
		}
		if m := sys.Monitors[rec.Host]; m != nil {
			m.HandleStepEnd(rec)
		}
	}
	return sys
}

// SetObs attaches an observability scope to every monitor. Call before
// the run starts; a nil scope (the default) records nothing.
func (s *System) SetObs(scope *obs.Scope) {
	for _, m := range s.Monitors {
		m.Obs = scope
	}
}

// Reports returns every monitor's retained reports, analyzer-ready.
func (s *System) Reports() []*telemetry.Report {
	var out []*telemetry.Report
	for _, id := range sortedHosts(s.Monitors) {
		out = append(out, s.Monitors[id].Reports...)
	}
	return out
}

// Triggers sums detection activations across monitors.
func (s *System) Triggers() int {
	n := 0
	for _, m := range s.Monitors {
		n += m.Triggers
	}
	return n
}

// Suppressed sums withheld detections across monitors.
func (s *System) Suppressed() int {
	n := 0
	for _, m := range s.Monitors {
		n += m.Suppressed
	}
	return n
}

func sortedHosts(ms map[topo.NodeID]*Monitor) []topo.NodeID {
	out := make([]topo.NodeID, 0, len(ms))
	for id := range ms {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PollsLost sums lost poll round trips across monitors (fault injection).
func (s *System) PollsLost() int {
	n := 0
	for _, m := range s.Monitors {
		n += m.PollsLost
	}
	return n
}

// Kills sums monitor kills across monitors (fault injection).
func (s *System) Kills() int {
	n := 0
	for _, m := range s.Monitors {
		n += m.Kills
	}
	return n
}

// WaitState derives Table I's determination from the SSQ/RSQ indices.
func (m *Monitor) WaitState() WaitState {
	if m.Run.SendIndex(m.Host) < m.Run.RecvIndex(m.Host) {
		return NonWaiting
	}
	return Waiting
}

// HandleStepStart recomputes the detection parameters for the new step:
// the RTT threshold from the topology over the step's actual path (unlike
// Hawkeye's fixed threshold, §III-C2), the trigger budget, and the
// FCT-derived minimum trigger spacing.
func (m *Monitor) HandleStepStart(step int, flow fabric.FlowKey) {
	if m.dead {
		return
	}
	m.curStep = step
	m.curFlow = flow
	m.stepActive = true
	st := m.sch.Steps[step]

	if m.Cfg.FixedRTTThreshold > 0 {
		m.threshold = m.Cfg.FixedRTTThreshold
	} else {
		base := m.Topo.EstimateBaseRTT(m.Host, st.Dst, m.Cfg.CellSize, fabric.AckSize, flow.PathHash())
		m.threshold = simtime.Duration(float64(base) * m.Cfg.RTTFactor)
	}

	m.budget += m.Cfg.MaxDetectPerStep
	if m.budget > 4*m.Cfg.MaxDetectPerStep {
		// Cap hoarding so transferred opportunities cannot grow without
		// bound (the paper's "upper bound on overhead").
		m.budget = 4 * m.Cfg.MaxDetectPerStep
	}
	est := m.Topo.EstimateFCT(m.Host, st.Dst, st.Bytes, flow.PathHash())
	div := m.Cfg.MaxDetectPerStep
	if div <= 0 {
		div = 1
	}
	m.minInterval = est / simtime.Duration(div)

	m.lastSample = m.K.Now()
	m.stallBudget = 3
	m.armStallWatchdog()
}

// armStallWatchdog schedules the §V stall check: if the step is still
// active and nothing arrived since the timer was armed, the flow is halted
// and an investigation triggers immediately.
func (m *Monitor) armStallWatchdog() {
	if m.Cfg.StallTimeout <= 0 {
		return
	}
	m.stallSeq++
	seq := m.stallSeq
	armedAt := m.K.Now()
	step := m.curStep
	m.K.After(m.Cfg.StallTimeout, func() {
		if m.dead || seq != m.stallSeq || !m.stepActive || m.curStep != step {
			return
		}
		if m.lastSample > armedAt {
			// Progress since arming: re-arm from the last sample.
			m.armStallWatchdog()
			return
		}
		if m.stallBudget <= 0 {
			return
		}
		m.stallBudget--
		m.Triggers++
		m.StallTriggers++
		m.lastTrigger = m.K.Now()
		m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "detect", "stall-detect", m.lastTrigger,
			obs.I("step", int64(step)))
		m.Obs.M().Counter("vedr_monitor_stall_detections_total",
			"detections fired by the stall watchdog").Inc()
		m.collect(m.curFlow, maxPollRetries)
		m.armStallWatchdog()
	})
}

// HandleStepEnd closes the step and, in adaptive mode, transfers the unused
// detection opportunities to the monitor of the flow waiting on this one
// via a highest-priority notification packet (Fig 7).
func (m *Monitor) HandleStepEnd(rec collective.StepRecord) {
	if m.dead || rec.Step != m.curStep {
		return
	}
	m.stepActive = false
	if m.Cfg.Unrestricted {
		return
	}
	// Unused opportunities either transfer to the waiting monitor or
	// expire with the step (the budget is per step, Fig 5).
	if !m.Cfg.Adaptive || m.budget <= 0 {
		m.budget = 0
		return
	}
	st := m.sch.Steps[rec.Step]
	waiter := st.Dst
	wsch := m.Run.Schedule(waiter)
	if wsch == nil {
		m.budget = 0
		return
	}
	waits := false
	for _, ws := range wsch.Steps {
		if ws.WaitSrc == m.Host && ws.WaitStep == rec.Step {
			waits = true
			break
		}
	}
	if !waits {
		m.budget = 0
		return
	}
	count := m.budget
	m.budget = 0
	m.Transferred += count
	m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "transfer", "transfer", m.K.Now(),
		obs.I("step", int64(rec.Step)), obs.I("to", int64(waiter)), obs.I("count", int64(count)))
	m.Obs.M().Counter("vedr_monitor_opportunities_transferred_total",
		"detection opportunities handed to waiting monitors").Add(int64(count))
	pkt := &fabric.Packet{
		Kind:    fabric.KindNotify,
		Flow:    rec.Flow,
		To:      waiter,
		Size:    fabric.NotifySize,
		Payload: NotifyPayload{From: m.Host, Step: rec.Step, Count: count},
	}
	hops := m.Net.DeliverControl(m.Host, waiter, pkt)
	m.Col.AddNotifyBytes(int64(hops * fabric.NotifySize))
}

// HandleNotify accepts transferred detection opportunities.
func (m *Monitor) HandleNotify(pkt *fabric.Packet) {
	if m.dead {
		return
	}
	payload, ok := pkt.Payload.(NotifyPayload)
	if !ok || !m.Cfg.Adaptive {
		return
	}
	m.budget += payload.Count
	m.Received += payload.Count
	m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "transfer", "notify-recv", m.K.Now(),
		obs.I("from", int64(payload.From)), obs.I("step", int64(payload.Step)),
		obs.I("count", int64(payload.Count)))
	m.Obs.M().Counter("vedr_monitor_opportunities_received_total",
		"detection opportunities accepted from notifications").Add(int64(payload.Count))
}

// HandleRTTSample applies the trigger decision of Fig 8 to one RTT
// observation from the NIC.
func (m *Monitor) HandleRTTSample(s rdma.RTTSample) {
	if m.dead || !m.stepActive || s.Flow != m.curFlow {
		return
	}
	m.lastSample = m.K.Now()
	if s.RTT <= m.threshold {
		return
	}
	now := m.K.Now()
	if m.Cfg.Unrestricted {
		if now.Sub(m.lastTrigger) < m.Cfg.UnrestrictedSpacing {
			m.suppress(now)
			return
		}
	} else {
		if m.budget <= 0 || now.Sub(m.lastTrigger) < m.minInterval {
			m.suppress(now)
			return
		}
		m.budget--
	}
	m.lastTrigger = now
	m.Triggers++
	m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "detect", "detect", now,
		obs.I("step", int64(m.curStep)), obs.I("rtt_ns", int64(s.RTT)),
		obs.I("threshold_ns", int64(m.threshold)), obs.I("budget_left", int64(m.budget)))
	m.Obs.M().Counter("vedr_monitor_detections_total",
		"detection triggers fired across monitors").Inc()
	m.collect(s.Flow, maxPollRetries)
}

// suppress accounts one over-threshold sample whose detection the budget
// or spacing withheld.
func (m *Monitor) suppress(now simtime.Time) {
	m.Suppressed++
	m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "detect", "detect-suppressed", now,
		obs.I("step", int64(m.curStep)), obs.I("budget_left", int64(m.budget)))
	m.Obs.M().Counter("vedr_monitor_detections_suppressed_total",
		"over-threshold samples withheld by the budget or trigger spacing").Inc()
}

// maxPollRetries bounds how many times a detection whose poll round trip
// was lost is re-armed before the opportunity is abandoned.
const maxPollRetries = 2

// collect performs one detection's telemetry poll. When the Gate loses the
// round trip, the detection re-arms after the FCT-derived trigger spacing —
// the same timescale the paper uses to pace detections within a step — and
// retries a bounded number of times, so a fully partitioned control plane
// degrades to missing reports instead of an unbounded poll loop. A retry
// only fires while the step it was armed in is still the active one.
func (m *Monitor) collect(flow fabric.FlowKey, retriesLeft int) {
	if m.Gate != nil && m.Gate.PollLost() {
		m.PollsLost++
		m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "poll", "poll-lost", m.K.Now(),
			obs.I("retries_left", int64(retriesLeft)))
		m.Obs.M().Counter("vedr_monitor_polls_lost_total",
			"poll round trips eaten by fault injection").Inc()
		if retriesLeft <= 0 {
			return
		}
		step := m.curStep
		m.K.After(m.retryTimeout(), func() {
			if m.dead || !m.stepActive || m.curStep != step {
				return
			}
			m.PollRetries++
			m.Obs.M().Counter("vedr_monitor_poll_retries_total",
				"detections re-armed after a lost poll").Inc()
			m.collect(flow, retriesLeft-1)
		})
		return
	}
	rep := m.Col.Poll(flow, m.Cfg.Window)
	m.Reports = append(m.Reports, rep)
	m.Obs.T().Instant(obs.PidMonitor, int(m.Host), "poll", "poll", m.K.Now(),
		obs.I("ports", int64(len(rep.Ports))), obs.I("ports_missed", int64(rep.PortsMissed)))
	m.Obs.M().Counter("vedr_monitor_polls_total",
		"completed telemetry poll round trips").Inc()
}

// retryTimeout derives the lost-poll re-arm delay from the step's estimated
// FCT (the detection spacing), falling back to the RTT threshold and then
// the telemetry window for configurations without either.
func (m *Monitor) retryTimeout() simtime.Duration {
	if m.minInterval > 0 {
		return m.minInterval
	}
	if m.threshold > 0 {
		return m.threshold
	}
	return m.Cfg.Window
}

// Kill simulates the host monitor process dying mid-collective: volatile
// detection state (budget, active step, armed watchdogs) is lost and every
// event is ignored until Restart. Reports already produced survive — they
// model records already streamed to the analyzer.
func (m *Monitor) Kill() {
	m.dead = true
	m.Kills++
	m.stepActive = false
	m.budget = 0
	m.stallSeq++ // cancel outstanding watchdog timers
}

// Restart revives a killed monitor. It re-synchronizes at its next step
// start; samples from a step already in flight are ignored because no
// threshold is known for it.
func (m *Monitor) Restart() { m.dead = false }

// Dead reports whether the monitor is currently killed (tests).
func (m *Monitor) Dead() bool { return m.dead }

// Budget exposes the current remaining detection opportunities (tests).
func (m *Monitor) Budget() int { return m.budget }

// Threshold exposes the active RTT threshold (tests).
func (m *Monitor) Threshold() simtime.Duration { return m.threshold }
