package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids silently discarding load-bearing error returns — the bug
// class that turns a failed WAL fsync into corrupted-but-trusted state.
// Two patterns are reported:
//
//  1. A call whose last result is an error used as a bare statement, when
//     the callee is a module function or comes from the error-bearing
//     stdlib I/O packages (os, io, net, bufio, plus fmt.Fprint* to
//     fallible writers). Discarding explicitly with `_ = f()` is allowed —
//     the point is that drops must be visible in review — and deferred
//     calls and `go` statements are conventionally exempt.
//  2. An error variable overwritten before it is ever read (def-use over
//     go/types within one statement list): `v, err := f(); w, err := g()`
//     silently forgets f's failure.
//
// Writers that cannot fail (*strings.Builder, *bytes.Buffer) and the
// process streams os.Stdout/os.Stderr are exempt from the fmt.Fprint rule.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "forbid silently discarding error returns from module functions and os/io/net/bufio calls; " +
		"drop deliberately with `_ =` or handle the error",
	Run: runErrDrop,
}

// errStdlibPkgs are the stdlib packages whose error returns are always
// load-bearing for this repository's durability story.
var errStdlibPkgs = map[string]bool{
	"os": true, "io": true, "io/fs": true, "net": true, "bufio": true,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Immediate calls of defer/go statements are exempt by convention.
		exempt := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				exempt[n.Call] = true
			case *ast.GoStmt:
				exempt[n.Call] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok || exempt[call] {
					return true
				}
				if why, bad := dropsError(pass, call); bad {
					pass.Reportf(call.Pos(),
						"%s returns an error that is discarded; handle it or discard explicitly with `_ =`", why)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkErrOverwrites(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// dropsError reports whether call's discarded result set ends in a
// load-bearing error.
func dropsError(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(call, pass.TypesInfo)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	results := sig.Results()
	if results.Len() == 0 || !isErrorType(results.At(results.Len()-1).Type()) {
		return "", false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	// bufio.Writer latches its first error and returns it from Flush (and
	// from every later call): dropping intermediate Write/WriteString
	// returns is the idiom, and only the Flush result is load-bearing.
	if recv := sig.Recv(); recv != nil && fn.Name() != "Flush" {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "bufio" && n.Obj().Name() == "Writer" {
			return "", false
		}
	}
	switch {
	case pass.moduleFunc(fn):
	case errStdlibPkgs[pkg.Path()]:
	case pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
		if len(call.Args) == 0 || safeWriter(pass, call.Args[0]) {
			return "", false
		}
	default:
		return "", false
	}
	return types.ExprString(call.Fun), true
}

// safeWriter reports whether e is a writer whose Write cannot meaningfully
// fail: an in-memory buffer, or the process's own stdout/stderr (where the
// universal CLI convention is to ignore write errors).
func safeWriter(pass *Pass, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok &&
			v.Pkg() != nil && v.Pkg().Path() == "os" &&
			(v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// checkErrOverwrites is the def-use pass: within each straight-line
// statement list of body, an assignment to an error variable that is
// overwritten by a later assignment in the same list, with no intervening
// read, drops the first error. Branch-local assignments live in nested
// lists and are never compared across branches, and error variables
// captured by closures are skipped entirely — their reads can happen on
// any path (deferred handlers, goroutines).
func checkErrOverwrites(pass *Pass, body *ast.BlockStmt) {
	captured := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					captured[obj] = true
				}
			}
			return true
		})
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkErrOverwritesList(pass, block.List, captured)
		return true
	})
}

func checkErrOverwritesList(pass *Pass, list []ast.Stmt, captured map[types.Object]bool) {
	// lastWrite maps an error object to the statement index of its latest
	// unread assignment in this list.
	type write struct {
		idx int
		id  *ast.Ident
	}
	lastWrite := map[types.Object]write{}
	readsIn := func(n ast.Node, obj types.Object) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	for i, s := range list {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) || captured[obj] {
				continue
			}
			if prev, ok := lastWrite[obj]; ok {
				read := false
				for j := prev.idx + 1; j < i && !read; j++ {
					read = readsIn(list[j], obj)
				}
				// The overwriting statement's RHS may read it too
				// (err = fmt.Errorf("...: %w", err)).
				for _, rhs := range as.Rhs {
					if readsIn(rhs, obj) {
						read = true
					}
				}
				if !read {
					pass.Reportf(prev.id.Pos(),
						"error assigned to %s is overwritten before being checked", prev.id.Name)
				}
			}
			lastWrite[obj] = write{idx: i, id: id}
		}
	}
}
