// Package a exercises the guardedfield analyzer: a field annotated
// "guarded by <mu>" may only be touched while the named sibling mutex is
// held, with the Locked-suffix, caller-contract and constructor escape
// hatches.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu

	free int // unannotated: never reported
}

func (c *counter) goodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodExplicit() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) badRead() int {
	return c.n // want "guarded by mu but accessed without it held"
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "guarded by mu but accessed without it held"
}

// badBranch holds the mutex on only one path, so the merged state after
// the if does not hold it.
func (c *counter) badBranch(cond bool) {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want "guarded by mu but accessed without it held"
}

// badGo spawns a goroutine: the body runs outside the launcher's critical
// section even though the launcher holds the lock.
func (c *counter) badGo() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "guarded by mu but accessed without it held"
	}()
}

func (c *counter) goodGo() {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
}

// bumpLocked is exempt by the *Locked naming contract.
func (c *counter) bumpLocked() {
	c.n++
	c.m["hits"]++
}

// bumpContract is exempt by doc contract. Callers hold c.mu.
func (c *counter) bumpContract() {
	c.n++
}

// newCounter is the constructor pattern: the value cannot be shared yet.
func newCounter() *counter {
	c := &counter{m: map[string]int{}}
	c.n = 1
	return c
}

func (c *counter) suppressed() int {
	//lint:ignore guardedfield racy read is fine here, stats are advisory
	return c.n
}

func (c *counter) unguarded() int {
	return c.free
}

type gauge struct {
	mu sync.RWMutex
	v  int64 // guarded by mu
}

func (g *gauge) goodRLock() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *gauge) badWrite(v int64) {
	g.v = v // want "guarded by mu but accessed without it held"
}

var _ = newCounter
