// Package a exercises the hotalloc analyzer: per-iteration allocations —
// fmt formatting, map construction, new/&T{} and interface boxing — inside
// loops, with the cold-path (return/panic) exemption.
package a

import (
	"fmt"
	"strconv"
)

type item struct{ id int }

func sink(args ...any) {}

func labels(items []item) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, fmt.Sprintf("item-%d", it.id)) // want "fmt.Sprintf allocates"
	}
	return out
}

func mapsPerIteration(n int) {
	for i := 0; i < n; i++ {
		seen := make(map[string]int) // want "map allocated on every iteration"
		lit := map[string]int{}      // want "map literal allocated on every iteration"
		seen["x"] = i
		lit["y"] = i
	}
}

func heapPerIteration(items []item) {
	for range items {
		p := new(item) // want "new allocates on every iteration"
		q := &item{}   // want "&composite literal allocates"
		p.id = q.id
	}
}

func boxing(items []item) {
	for _, it := range items {
		_ = any(it.id) // want "conversion boxes int"
		sink(it.id)    // want "arguments box into any"
	}
}

// coldPaths only allocate once per loop exit: return and panic are exempt.
func coldPaths(items []item) error {
	for _, it := range items {
		if it.id < 0 {
			return fmt.Errorf("negative id %d", it.id)
		}
		if it.id > 1<<30 {
			panic(fmt.Sprintf("absurd id %d", it.id))
		}
	}
	return nil
}

// hoisted is the blessed shape: buffers reused, appends instead of fmt.
func hoisted(items []item) []string {
	out := make([]string, 0, len(items))
	buf := make([]byte, 0, 32)
	for _, it := range items {
		buf = buf[:0]
		buf = append(buf, "item-"...)
		buf = strconv.AppendInt(buf, int64(it.id), 10)
		out = append(out, string(buf))
	}
	return out
}

// literalNotDescended: a function literal defined in the loop is not
// walked (its execution count is unknown here).
func literalNotDescended(items []item) []func() string {
	var out []func() string
	for _, it := range items {
		it := it
		out = append(out, func() string { return fmt.Sprintf("%d", it.id) })
	}
	return out
}

func outsideLoop(it item) string {
	return fmt.Sprintf("item-%d", it.id)
}

func suppressed(items []item) {
	for _, it := range items {
		//lint:ignore hotalloc error-path formatting, loop runs at most twice
		sink(fmt.Sprint(it.id))
	}
}
