// Package a exercises the nosystime analyzer: host-clock reads are
// flagged, simulated-time arithmetic on time.Duration is allowed, and a
// justified //lint:ignore comment suppresses a finding.
package a

import "time"

// Durations, constants and conversions are fine: simtime.Duration aliases
// time.Duration precisely so these compose.
const tick = 2 * time.Microsecond

func allowedArithmetic(d time.Duration) time.Duration {
	return d + tick + 5*time.Millisecond
}

func wallClockReads() {
	start := time.Now()          // want `time\.Now reads the host clock`
	_ = time.Since(start)        // want `time\.Since reads the host clock`
	_ = time.Until(start)        // want `time\.Until reads the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
}

func timers() {
	<-time.After(tick)       // want `time\.After reads the host clock`
	t := time.NewTimer(tick) // want `time\.NewTimer reads the host clock`
	_ = t
	time.AfterFunc(tick, func() {}) // want `time\.AfterFunc reads the host clock`
	_ = time.NewTicker(time.Second) // want `time\.NewTicker reads the host clock`
	_ = time.Tick(time.Second)      // want `time\.Tick reads the host clock`
}

// A reference without a call is still a clock dependency.
var clock = time.Now // want `time\.Now reads the host clock`

func suppressed() {
	//lint:ignore nosystime profiling real host CPU overhead (Fig 11)
	_ = time.Now()
}

func suppressedTrailing() {
	_ = time.Now() //lint:ignore nosystime measuring wall time on purpose
}
