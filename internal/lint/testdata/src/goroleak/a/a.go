// Package a exercises the goroleak analyzer: goroutines whose body loops
// forever with no shutdown edge, launched as literals or as named
// functions resolved through the fact store.
package a

func work() {}

// spin loops forever with no exit edge; launching it leaks a goroutine.
func spin() {
	for {
		work()
	}
}

// poll has a shutdown edge (the select on stop), so launching it is fine.
func poll(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}

func badLiteral() {
	go func() {
		for { // want "loops forever with no shutdown edge"
			work()
		}
	}()
}

func badNamed() {
	go spin() // want "goroutine runs a.spin"
}

func badCallInLiteral(n int) {
	go func() {
		if n > 0 {
			spin() // want "goroutine calls a.spin"
		}
	}()
}

// badTransitive picks the fact up through an intermediate callee.
func relay() {
	spin()
}

func badTransitiveNamed() {
	go relay() // want "goroutine runs a.relay"
}

func goodLiteral(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

func goodNamed(stop chan struct{}) {
	go poll(stop)
}

func goodRangeOverChannel(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

func goodBoundedLoop(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

func suppressed() {
	//lint:ignore goroleak daemon main loop, runs for the process lifetime
	go spin()
}
