// Package a exercises the obswallclock analyzer: host-clock reads and
// slog.Record's wall-clock timestamp are flagged in observability code,
// duration arithmetic stays legal, and //lint:ignore suppresses a finding.
// (The simtime.Stopwatch half of the rule is covered by a synthetic
// go/types test, since testdata packages may import only the stdlib.)
package a

import (
	"log/slog"
	"time"
)

// Durations and constants remain fine: sim time aliases time.Duration.
const tick = 2 * time.Microsecond

func allowedArithmetic(d time.Duration) time.Duration {
	return d + tick
}

func recording() {
	_ = time.Now()   // want `time\.Now in an observability recording path`
	time.Sleep(tick) // want `time\.Sleep in an observability recording path`
}

// A handler must not read the record's wall-clock stamp; the message and
// attributes are fair game.
func handle(r slog.Record) string {
	_ = r.Time // want `slog\.Record\.Time is the host clock`
	return r.Message
}

func suppressed() {
	//lint:ignore obswallclock exercising the suppression path
	_ = time.Now()
}
