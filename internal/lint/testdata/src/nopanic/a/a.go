// Package a exercises the nopanic analyzer: library panics are flagged,
// Must*-named invariant helpers and suppressed sites are allowed.
package a

import (
	"errors"
	"fmt"
)

func library(n int) error {
	if n < 0 {
		panic("negative") // want `panic in library code; return an error`
	}
	return nil
}

func formatted(n int) {
	if n > 10 {
		panic(fmt.Sprintf("n too large: %d", n)) // want `panic in library code; return an error`
	}
}

// MustParse follows the regexp.MustCompile contract: panics only on
// programmer error with compile-time-constant arguments.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// mustPositive is the unexported flavor of the same exemption.
func mustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

// Closures inherit the enclosing Must helper's exemption.
func MustRun(fn func() error) {
	defer func() {
		if err := recover(); err != nil {
			panic(err)
		}
	}()
	if err := fn(); err != nil {
		panic(err)
	}
}

func closureInLibrary() func() {
	return func() {
		panic("inside closure") // want `panic in library code; return an error`
	}
}

// A shadowed identifier named panic is not the builtin.
func shadowed() {
	panic := func(v any) error { return errors.New("soft") }
	_ = panic("fine")
}

func suppressed() {
	//lint:ignore nopanic kernel causality invariant, documented API behavior
	panic("scheduling in the past")
}
