// Package a exercises the errdrop analyzer: discarded error returns from
// module functions and the error-bearing stdlib I/O packages, plus the
// overwritten-before-read def-use check.
package a

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func noError() int { return 0 }

func dropModule() {
	mayFail()    // want "returns an error that is discarded"
	twoResults() // want "returns an error that is discarded"
	noError()
	_ = mayFail()
	_, _ = twoResults()
}

// dropDurability is the seeded fsync bug: a dropped Sync return turns a
// failed flush into corrupted-but-trusted state.
func dropDurability(f *os.File) {
	f.Sync()  // want "returns an error that is discarded"
	f.Close() // want "returns an error that is discarded"
}

func deferredExempt(f *os.File) {
	defer f.Close()
	go mayFail()
}

// buffered shows the bufio idiom: intermediate writes latch their error
// and only Flush surfaces it, so only a dropped Flush is reported.
func buffered(w *bufio.Writer) {
	w.WriteString("ok")
	w.WriteByte('\n')
	w.Flush() // want "returns an error that is discarded"
}

func writers(sb *strings.Builder, buf *bytes.Buffer, f *os.File) {
	fmt.Fprintf(sb, "x")
	fmt.Fprintln(buf, "x")
	fmt.Fprintf(os.Stdout, "x")
	fmt.Fprintf(os.Stderr, "x")
	fmt.Fprintf(f, "x") // want "returns an error that is discarded"
}

func overwritten() error {
	err := mayFail() // want "overwritten before being checked"
	err = mayFail()
	return err
}

func wrapped() error {
	err := mayFail()
	err = fmt.Errorf("wrap: %w", err)
	return err
}

func checkedBetween() error {
	err := mayFail()
	if err != nil {
		return err
	}
	err = mayFail()
	return err
}

// captured error objects are skipped: the closure may read them on any
// path.
func capturedByClosure() error {
	err := mayFail()
	defer func() {
		_ = err
	}()
	err = mayFail()
	return err
}

func suppressed() {
	//lint:ignore errdrop best-effort cache warmup, failure just means cold
	mayFail()
}
