// Package a exercises the mapiterorder analyzer: order-dependent effects
// inside range-over-map bodies are flagged; the collect-then-sort idiom,
// commutative integer accumulation and loop-local state are allowed.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func appendWithoutSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map captures the random iteration order`
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Local helpers named sort*/Sort* count as the sorting step too (the wire
// package's sortFlowCounts-style helpers).
func collectThenSortHelper(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside range over map`
	}
	return sum
}

func floatAccumulationPlain(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation into sum inside range over map`
	}
	return sum
}

// Integer sums are commutative and associative: order cannot show.
func intAccumulation(m map[string]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map emits output in random iteration order`
	}
}

func writing(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside range over map writes in random iteration order`
	}
}

// Loop-local state cannot leak iteration order.
func loopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Writes into another map are order-insensitive (set semantics).
func mapToMap(m map[string]int) map[string]bool {
	out := map[string]bool{}
	for k := range m {
		out[k] = true
	}
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore mapiterorder order handled by caller
		out = append(out, k)
	}
	return out
}
