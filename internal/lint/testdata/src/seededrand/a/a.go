// Package a exercises the seededrand analyzer: global math/rand draws are
// flagged, explicitly seeded *rand.Rand usage is allowed.
package a

import "math/rand"

// Seeded generators and their methods are the sanctioned pattern.
func seeded(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 0, 4)
	out = append(out, rng.Intn(10))
	out = append(out, int(rng.Int63n(100)))
	out = append(out, rng.Perm(5)...)
	return out
}

// Passing the generator around keeps everything reproducible.
func threaded(rng *rand.Rand) float64 { return rng.Float64() }

func globalDraws() {
	_ = rand.Intn(10)                  // want `global rand\.Intn draws from the shared process-wide source`
	_ = rand.Float64()                 // want `global rand\.Float64 draws from the shared process-wide source`
	_ = rand.Int63()                   // want `global rand\.Int63 draws from the shared process-wide source`
	_ = rand.Perm(4)                   // want `global rand\.Perm draws from the shared process-wide source`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle draws from the shared process-wide source`
	rand.Seed(42)                      // want `global rand\.Seed draws from the shared process-wide source`
}

// Types from the package are fine; only global draws are banned.
var source rand.Source = rand.NewSource(7)

func suppressed() {
	//lint:ignore seededrand demo code, determinism irrelevant here
	_ = rand.Intn(3)
}
