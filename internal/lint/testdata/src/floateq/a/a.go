// Package a exercises the floateq analyzer: exact equality on floats is
// flagged, ordering comparisons and integer equality are allowed.
package a

type rating struct {
	score float64
	count int
}

func flagged(a, b float64, r rating) bool {
	if a == b { // want `== on floating-point values`
		return true
	}
	if r.score != 0 { // want `!= on floating-point values`
		return true
	}
	var f32 float32
	return f32 == 1.5 // want `== on floating-point values`
}

func orderingIsFine(a, b float64, r rating) bool {
	if a > b || a < b {
		return false
	}
	return r.score >= 1 && r.count == 3
}

func tolerance(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func suppressed(a float64) bool {
	//lint:ignore floateq sentinel comparison against an exact stored value
	return a == 1.0
}
