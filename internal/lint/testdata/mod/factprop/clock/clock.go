// Package clock is the fixture's tainted leaf: one unsanctioned host-clock
// read (whose WallClock fact must propagate to importers) and one
// suppressed read (whose fact must not exist at all).
package clock

import (
	"sync"
	"time"
)

// Stamp reads the host clock without sanction; callers inherit the taint
// through the fact store.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the host clock"
}

// Sanctioned carries a justified suppression, so no fact is recorded and
// callers stay clean.
func Sanctioned() int64 {
	//lint:ignore nosystime fixture's sanctioned read; the fact must not leak to callers
	return time.Now().UnixNano()
}

// Meter carries a guarded-field annotation that importing packages must
// honor — the annotation fact crosses package boundaries by object
// identity.
type Meter struct {
	Mu sync.Mutex
	N  int64 // guarded by Mu
}
