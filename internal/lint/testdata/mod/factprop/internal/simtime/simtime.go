// Package simtime mirrors the real module's sanctioned wall-clock gateway
// (<module>/internal/simtime): its own read is reported when the analyzer
// runs here, but calls INTO it never taint callers.
package simtime

import "time"

// HostNow reads the host clock; the gateway is the one place allowed to.
func HostNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the host clock"
}
