module factprop

go 1.21
