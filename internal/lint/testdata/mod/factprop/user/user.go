// Package user imports the tainted leaf: transitive wall-clock reads and
// cross-package guarded fields must be reported here, while sanctioned and
// gateway calls stay clean.
package user

import (
	"factprop/clock"
	"factprop/internal/simtime"
)

func Tainted() int64 {
	return clock.Stamp() // want "transitively reads the host clock"
}

// helper picks up the fact from clock.Stamp, and Chained picks it up from
// helper — two propagation hops, one of them in-package.
func helper() int64 {
	return clock.Stamp() // want "transitively reads the host clock"
}

func Chained() int64 {
	return helper() // want "call to user.helper transitively reads the host clock"
}

func CleanSanctioned() int64 {
	return clock.Sanctioned()
}

func CleanGateway() int64 {
	return simtime.HostNow()
}

func ReadMeter(m *clock.Meter) int64 {
	m.Mu.Lock()
	defer m.Mu.Unlock()
	return m.N
}

func ReadMeterRacy(m *clock.Meter) int64 {
	return m.N // want "guarded by Mu but accessed without it held"
}
