package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedField enforces the `// guarded by <mu>` annotation convention: a
// struct field carrying the annotation may only be read or written while
// the named sibling mutex is held. Holding is tracked intra-procedurally
// with a statement-ordered lock-state walk: <x>.mu.Lock()/RLock() adds
// x.mu to the held set, Unlock()/RUnlock() removes it, `defer Unlock`
// holds to function end, and branches are analyzed with forked state and
// merged by intersection (a field is safe only if every path holds the
// mutex). Three escape hatches keep the rule honest instead of noisy:
// functions whose name ends in "Locked" or whose doc says "callers hold
// <x>.mu" start with that mutex held, accesses through constructor-fresh
// locals (def-use: defined in this function from a composite literal or
// new/make, so unshared) are exempt, and goroutine/deferred bodies are
// analyzed with an empty held set because they run outside the launching
// critical section.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc: "require the mutex named in a `// guarded by <mu>` field annotation to be held " +
		"on every path that reads or writes the field",
	Run: runGuardedField,
}

// callersHoldRE extracts the caller-contract doc convention, e.g.
// "Callers hold s.mu." or "caller must hold q.mu".
var callersHoldRE = regexp.MustCompile(`[Cc]allers?\s+(?:must\s+)?holds?\s+(\w+(?:\.\w+)*)`)

func runGuardedField(pass *Pass) error {
	if pass.Facts == nil {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &guardedChecker{pass: pass, fresh: freshLocals(fd.Body, pass.TypesInfo)}
			st := lockState{held: map[string]bool{}}
			if len(fd.Name.Name) > len("Locked") &&
				fd.Name.Name[len(fd.Name.Name)-len("Locked"):] == "Locked" {
				st.all = true
			}
			if fd.Doc != nil {
				for _, m := range callersHoldRE.FindAllStringSubmatch(fd.Doc.Text(), -1) {
					st.held[m[1]] = true
				}
			}
			c.stmts(fd.Body.List, st)
		}
	}
	return nil
}

// lockState is the set of mutexes held at a program point, keyed by the
// rendered owner expression ("s.mu"). all is the *Locked-suffix wildcard:
// the function's contract is that it runs entirely under its receiver's
// locks.
type lockState struct {
	held map[string]bool
	all  bool
}

func (s lockState) clone() lockState {
	out := lockState{held: make(map[string]bool, len(s.held)), all: s.all}
	for k := range s.held {
		out.held[k] = true
	}
	return out
}

func (s lockState) has(key string) bool { return s.all || s.held[key] }

// intersect keeps only what both branch outcomes hold.
func intersect(a, b lockState) lockState {
	out := lockState{held: map[string]bool{}, all: a.all && b.all}
	for k := range a.held {
		if b.held[k] {
			out.held[k] = true
		}
	}
	return out
}

type guardedChecker struct {
	pass  *Pass
	fresh map[types.Object]bool
}

// stmts walks a statement list, threading lock state; the bool result
// reports whether the list always terminates (returns or branches away).
func (c *guardedChecker) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *guardedChecker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := lockOp(s.X, c.pass.TypesInfo); ok {
			if acquire {
				st.held[key] = true
			} else {
				delete(st.held, key)
			}
			return st, false
		}
		c.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, st)
		}
		for _, e := range s.Lhs {
			c.expr(e, st)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.DeferStmt:
		if _, _, ok := lockOp(s.Call, c.pass.TypesInfo); ok {
			// defer mu.Unlock(): the mutex stays held to function end, so
			// the state is unchanged; defer mu.Lock() would be a bug this
			// analyzer does not model.
			return st, false
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Deferred bodies run at return, when the locks of this scope
			// may already be released: analyze with nothing held (the body
			// can acquire its own).
			c.stmts(fl.Body.List, lockState{held: map[string]bool{}})
		} else {
			c.expr(s.Call.Fun, st)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A spawned goroutine does not inherit the launcher's critical
			// section.
			c.stmts(fl.Body.List, lockState{held: map[string]bool{}})
		} else {
			c.expr(s.Call.Fun, st)
		}
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		bodyOut, bodyTerm := c.stmts(s.Body.List, st.clone())
		elseOut, elseTerm := st, false
		if s.Else != nil {
			elseOut, elseTerm = c.stmt(s.Else, st.clone())
		}
		switch {
		case bodyTerm && elseTerm:
			return st, true
		case bodyTerm:
			return elseOut, false
		case elseTerm:
			return bodyOut, false
		default:
			return intersect(bodyOut, elseOut), false
		}
	case *ast.ForStmt:
		inner := st.clone()
		if s.Init != nil {
			inner, _ = c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inner)
		}
		c.stmts(s.Body.List, inner.clone())
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
		return st, false // assume balanced lock use across iterations
	case *ast.RangeStmt:
		c.expr(s.X, st)
		c.stmts(s.Body.List, st.clone())
		return st, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, e := range cl.List {
				c.expr(e, st)
			}
			c.stmts(cl.Body, st.clone())
		}
		return st, false
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		st, _ = c.stmt(s.Assign, st)
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			c.stmts(cl.Body, st.clone())
		}
		return st, false
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			inner := st.clone()
			if comm.Comm != nil {
				inner, _ = c.stmt(comm.Comm, inner)
			}
			c.stmts(comm.Body, inner)
		}
		return st, false
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	}
	return st, false
}

// expr scans an expression tree for guarded-field accesses under the
// current lock state. Function literals are analyzed with the same state:
// immediately-invoked and callback literals run on the current path, and a
// literal that truly escapes to another goroutine is handled at its
// go/defer statement instead.
func (c *guardedChecker) expr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, st.clone())
			return false
		case *ast.SelectorExpr:
			c.access(n, st)
		}
		return true
	})
}

// access reports a guarded field reached without its mutex held.
func (c *guardedChecker) access(sel *ast.SelectorExpr, st lockState) {
	selInfo := c.pass.TypesInfo.Selections[sel]
	if selInfo == nil || selInfo.Kind() != types.FieldVal {
		return
	}
	field, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, ok := c.pass.Facts.GuardedBy(field)
	if !ok {
		return
	}
	base := ast.Unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok {
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[id]
		}
		if obj != nil && c.fresh[obj] {
			return // constructor pattern: the value is not shared yet
		}
	}
	key := types.ExprString(base) + "." + mu
	if st.has(key) {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"%s is guarded by %s but accessed without it held; acquire %s first (or document the contract: \"callers hold %s\")",
		types.ExprString(sel), mu, key, key)
}

// lockOp recognizes <x>.<mu>.Lock/RLock (acquire=true) and
// Unlock/RUnlock (acquire=false) calls on sync mutexes, returning the
// held-set key "<x>.<mu>".
func lockOp(e ast.Expr, info *types.Info) (key string, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	return types.ExprString(ast.Unparen(sel.X)), acquire, true
}
