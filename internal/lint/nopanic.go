package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids panic() in library code. A panic inside the diagnosis
// pipeline kills the whole analyzer daemon instead of failing one case;
// library packages must return errors. Exemptions: _test.go files, and
// Must*/must*-named helpers whose documented contract is "panics on
// programmer error with compile-time-checkable arguments" (the usual
// regexp.MustCompile pattern).
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "forbid panic() in library packages; return errors instead " +
		"(Must*-named invariant helpers and tests are exempt)",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				name := fd.Name.Name
				if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
					return true // shadowed identifier named panic
				}
				pass.Reportf(call.Pos(),
					"panic in library code; return an error (or move the invariant into a Must* helper)")
				return true
			})
		}
	}
	return nil
}
