// The vedrvet baseline: a ledger of known violations (lint/baseline.json)
// that lets the suite gate CI on *new* findings while existing debt stays
// visible and burns down. Entries are matched by fingerprint — a hash of
// the analyzer, the module-relative file, the trimmed text of the
// offending source line, and the message — so pure line-number drift
// (code added above) keeps a finding recognized, while touching the
// offending line itself invalidates the entry and resurfaces the finding.
package lint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineFormat versions the baseline file.
const BaselineFormat = 1

// BaselineEntry records one known finding.
type BaselineEntry struct {
	Rule        string `json:"rule"`
	File        string `json:"file"` // module-relative, forward slashes
	Fingerprint string `json:"fingerprint"`
	// Line and Note are informational (refreshed by -update-baseline);
	// matching uses only the fingerprint.
	Line int    `json:"line"`
	Note string `json:"note"`
}

// Baseline is the known-violation set CI diffs fresh runs against.
type Baseline struct {
	Format  int             `json:"format"`
	Tool    string          `json:"tool"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads the baseline at path; a missing file is an empty
// baseline (a new checkout gates on everything).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Format: BaselineFormat, Tool: "vedrvet"}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Format != BaselineFormat {
		return nil, fmt.Errorf("lint: baseline %s has format %d, want %d", path, b.Format, BaselineFormat)
	}
	return &b, nil
}

// WriteBaseline writes b to path, deterministically ordered so the file
// diffs cleanly under version control.
func WriteBaseline(path string, b *Baseline) error {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Fingerprint < c.Fingerprint
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	return nil
}

// NewBaseline records diags (positions under moduleDir) as the
// known-violation set.
func NewBaseline(moduleDir string, diags []Diagnostic) *Baseline {
	b := &Baseline{Format: BaselineFormat, Tool: "vedrvet"}
	src := sourceCache{}
	for _, d := range diags {
		fp, rel := fingerprintDiag(moduleDir, d, src)
		b.Entries = append(b.Entries, BaselineEntry{
			Rule:        d.Analyzer,
			File:        rel,
			Fingerprint: fp,
			Line:        d.Pos.Line,
			Note:        d.Message,
		})
	}
	return b
}

// DiffBaseline splits diags into fresh findings (not in the baseline) and
// returns the baseline entries that matched nothing — fixed debt, ready to
// prune with -update-baseline. Matching is a multiset: N identical
// findings need N entries.
func DiffBaseline(b *Baseline, moduleDir string, diags []Diagnostic) (fresh []Diagnostic, unmatched []BaselineEntry) {
	remaining := map[string]int{}
	for _, e := range b.Entries {
		remaining[e.Fingerprint]++
	}
	src := sourceCache{}
	for _, d := range diags {
		fp, _ := fingerprintDiag(moduleDir, d, src)
		if remaining[fp] > 0 {
			remaining[fp]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		if remaining[e.Fingerprint] > 0 {
			remaining[e.Fingerprint]--
			unmatched = append(unmatched, e)
		}
	}
	return fresh, unmatched
}

// sourceCache memoizes file contents split into lines.
type sourceCache map[string][]string

func (c sourceCache) line(file string, n int) string {
	lines, ok := c[file]
	if !ok {
		data, err := os.ReadFile(file)
		if err == nil {
			lines = strings.Split(string(data), "\n")
		}
		c[file] = lines
	}
	if n < 1 || n > len(lines) {
		return ""
	}
	return lines[n-1]
}

// fingerprintDiag hashes the drift-stable identity of a finding.
func fingerprintDiag(moduleDir string, d Diagnostic, src sourceCache) (fp, relFile string) {
	relFile = d.Pos.Filename
	if rel, err := filepath.Rel(moduleDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		relFile = filepath.ToSlash(rel)
	}
	text := strings.TrimSpace(src.line(d.Pos.Filename, d.Pos.Line))
	h := fnv.New64a()
	for _, part := range []string{d.Analyzer, relFile, text, d.Message} {
		_, _ = h.Write([]byte(part))
		_, _ = h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64()), relFile
}
