package lint

import (
	"go/ast"
	"go/types"
)

// ObsWallClock tightens nosystime for the observability layer. Traces,
// metrics and log lines produced by internal/obs must be pure functions of
// the simulation: byte-identical across runs, machines and -workers
// counts. That rules out not only the direct host-clock reads nosystime
// already bans, but also the two sanctioned escape hatches that are legal
// elsewhere in the tree:
//
//   - internal/simtime's Stopwatch (the Fig 11 profiling gateway) — a
//     component that wants to record wall-clock readings must take them as
//     plain values from its caller, keeping the recording path itself
//     clock-free;
//   - the wall-clock timestamp slog stamps on every Record — handlers must
//     ignore Record.Time and stamp sim time instead.
var ObsWallClock = &Analyzer{
	Name: "obswallclock",
	Doc: "forbid wall-clock dependence in internal/obs recording paths: no " +
		"time.Now and friends, no simtime.Stopwatch, no slog Record.Time reads",
	Run: runObsWallClock,
}

func runObsWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if named, ok := s.Recv().(*types.Named); ok {
					o := named.Obj()
					if o.Pkg() != nil && o.Pkg().Path() == "log/slog" &&
						o.Name() == "Record" && sel.Sel.Name == "Time" {
						pass.Reportf(sel.Pos(),
							"slog.Record.Time is the host clock; observability handlers must ignore it and stamp sim time instead")
					}
				}
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "time":
				if fn, ok := obj.(*types.Func); ok && bannedTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in an observability recording path; traces and metrics must be keyed by sim time only",
						fn.Name())
				}
			case obj.Pkg().Name() == "simtime" &&
				(obj.Name() == "Stopwatch" || obj.Name() == "NewSystemStopwatch"):
				pass.Reportf(sel.Pos(),
					"simtime.%s in internal/obs: even the sanctioned stopwatch may not feed recorded values; take wall-clock readings as plain values from callers",
					obj.Name())
			}
			return true
		})
	}
	return nil
}
