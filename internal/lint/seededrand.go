package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// allowedRandFuncs are the math/rand package-level constructors that build
// an explicitly seeded generator — the only sanctioned way to obtain
// randomness here.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// SeededRand forbids the process-global math/rand functions (rand.Intn,
// rand.Float64, rand.Perm, ...). Their shared, ambient source makes output
// depend on everything else that drew from it; two runs of the same
// scenario would diverge. Randomness must come from an explicitly seeded
// *rand.Rand threaded through the scenario/workload config (sim.Kernel's
// Rand, scenario.GenerateCase's seed, ...). Methods on *rand.Rand are fine.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions; use an explicitly seeded " +
		"*rand.Rand from the scenario/workload config",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkgPath := obj.Pkg().Path()
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return true // types (rand.Rand, rand.Source) are fine
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *rand.Rand
			}
			if allowedRandFuncs[fn.Name()] {
				return true
			}
			short := pkgPath[strings.LastIndex(pkgPath, "/")+1:]
			if pkgPath == "math/rand/v2" {
				short = "rand/v2"
			}
			pass.Reportf(sel.Pos(),
				"global %s.%s draws from the shared process-wide source; thread a seeded *rand.Rand from the scenario/workload config",
				short, fn.Name())
			return true
		})
	}
	return nil
}
