package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"vedrfolnir/internal/lint"
)

// TestObsWallClockStopwatch covers the half of the rule that linttest's
// stdlib-only testdata cannot: references to internal/simtime's Stopwatch
// gateway. The simtime package is synthesized with go/types and injected
// through a fake importer, then the analyzer runs over a type-checked
// source that uses it the way a tempted obs author would.
func TestObsWallClockStopwatch(t *testing.T) {
	const src = `package obs

import "vedrfolnir/internal/simtime"

type sampler struct {
	clock simtime.Stopwatch
}

func start() {
	s := sampler{clock: simtime.NewSystemStopwatch()}
	_ = s
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "obs.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	simtime := types.NewPackage("vedrfolnir/internal/simtime", "simtime")
	iface := types.NewInterfaceType(nil, nil)
	iface.Complete()
	tn := types.NewTypeName(token.NoPos, simtime, "Stopwatch", nil)
	named := types.NewNamed(tn, iface, nil)
	simtime.Scope().Insert(tn)
	ret := types.NewTuple(types.NewVar(token.NoPos, simtime, "", named))
	sig := types.NewSignatureType(nil, nil, nil, nil, ret, false)
	simtime.Scope().Insert(types.NewFunc(token.NoPos, simtime, "NewSystemStopwatch", sig))
	simtime.MarkComplete()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if path == "vedrfolnir/internal/simtime" {
			return simtime, nil
		}
		t.Fatalf("unexpected import %q", path)
		return nil, nil
	})}
	tpkg, err := conf.Check("vedrfolnir/internal/obs", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}

	pkg := &lint.Package{Path: tpkg.Path(), Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{lint.ObsWallClock})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	// One finding per reference: the field's type and the constructor call.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	wantNames := []string{"Stopwatch", "NewSystemStopwatch"}
	for i, d := range diags {
		if !strings.Contains(d.Message, "simtime."+wantNames[i]) {
			t.Errorf("diagnostic %d = %q, want mention of simtime.%s", i, d.Message, wantNames[i])
		}
		if !strings.Contains(d.Message, "sanctioned stopwatch") {
			t.Errorf("diagnostic %d = %q, want the stopwatch rationale", i, d.Message)
		}
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
