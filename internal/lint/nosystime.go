package lint

import (
	"go/ast"
	"go/types"
)

// bannedTimeFuncs are the package time entry points that read or depend on
// the host's clock. Types and constants (time.Duration, time.Microsecond)
// remain usable: the simulator aliases its Duration to time.Duration so the
// stdlib constants compose.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// NoSysTime forbids host-clock access in simulation packages. All
// simulated components must derive time from the kernel's virtual clock
// (internal/simtime, sim.Kernel.Now); a single wall-clock read makes a run
// unreproducible. The only sanctioned gateway to the host clock is
// internal/simtime's Stopwatch, used for host-overhead profiling (Fig 11).
//
// Two report modes: direct (a banned time.* selector in this package) and
// transitive (a call into a module function whose cross-package fact says
// it eventually reads the clock). Sanctioned reads — those justified with
// //lint:ignore nosystime — set no fact, so they never taint callers, and
// calls into internal/simtime are the gateway and exempt by construction.
var NoSysTime = &Analyzer{
	Name: "nosystime",
	Doc: "forbid time.Now/Sleep/Since and friends in simulation packages, directly or transitively; " +
		"all time must flow through internal/simtime",
	Run: runNoSysTime,
}

func runNoSysTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				if fn, ok := obj.(*types.Func); ok && bannedTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s reads the host clock in simulation code; use the injected simtime clock (kernel.Now / simtime.Stopwatch)",
						fn.Name())
				}
			case *ast.CallExpr:
				if pass.Facts == nil {
					return true
				}
				if _, direct := bannedTimeCall(n, pass.TypesInfo); direct {
					return true // the selector case above already reports it
				}
				fn := calleeFunc(n, pass.TypesInfo)
				if fn == nil || !pass.moduleFunc(fn) || pass.Facts.isGateway(fn) {
					return true
				}
				if fact, ok := pass.Facts.FuncFact(fn); ok && fact.WallClock {
					pass.Reportf(n.Pos(),
						"call to %s transitively reads the host clock (%s); thread the simtime clock through instead",
						shortFuncName(fn), fact.WallClockVia)
				}
			}
			return true
		})
	}
	return nil
}
