package lint

import (
	"go/ast"
	"go/types"
)

// bannedTimeFuncs are the package time entry points that read or depend on
// the host's clock. Types and constants (time.Duration, time.Microsecond)
// remain usable: the simulator aliases its Duration to time.Duration so the
// stdlib constants compose.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// NoSysTime forbids host-clock access in simulation packages. All
// simulated components must derive time from the kernel's virtual clock
// (internal/simtime, sim.Kernel.Now); a single wall-clock read makes a run
// unreproducible. The only sanctioned gateway to the host clock is
// internal/simtime's Stopwatch, used for host-overhead profiling (Fig 11).
var NoSysTime = &Analyzer{
	Name: "nosystime",
	Doc: "forbid time.Now/Sleep/Since and friends in simulation packages; " +
		"all time must flow through internal/simtime",
	Run: runNoSysTime,
}

func runNoSysTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if fn, ok := obj.(*types.Func); ok && bannedTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host clock in simulation code; use the injected simtime clock (kernel.Now / simtime.Stopwatch)",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
