// Intra-procedural dataflow helpers shared by the concurrency and
// error-flow analyzers: control-flow shape queries (forever-loops,
// constructor-fresh locals) and callee resolution, all over go/ast and
// go/types. Deliberately no SSA: def-use over types.Info covers the
// invariants this suite enforces and keeps the framework stdlib-only.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// inspectSkipFuncLit walks the tree rooted at n without descending into
// function literals: their bodies run on a different control path (often a
// different goroutine), so their statements say nothing about n's own
// control flow.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m == nil {
			return true
		}
		return fn(m)
	})
}

// foreverLoop returns the position of the first condition-less for-loop in
// body whose own control flow has no exit edge — no return, break, goto,
// select, or channel operation. Such a loop can only be left by killing
// the process; a goroutine running one has no shutdown path.
func foreverLoop(body ast.Node, info *types.Info) (token.Pos, bool) {
	var pos token.Pos
	found := false
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if !loopHasExit(fs.Body, info) {
			pos, found = fs.For, true
			return false
		}
		return true
	})
	return pos, found
}

// loopHasExit reports whether a loop body contains an edge that can end or
// coordinate the loop: return, break, goto, a select, a channel operation,
// or ranging over a channel. The check is conservative in the safe
// direction — a break targeting an inner loop still counts — because the
// analyzers using it only report when no edge exists at all.
func loopHasExit(body *ast.BlockStmt, info *types.Info) bool {
	exit := false
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exit = true
			}
		case *ast.SelectStmt:
			exit = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				exit = true
			}
		case *ast.SendStmt:
			exit = true
		case *ast.RangeStmt:
			if info != nil {
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						exit = true
					}
				}
			}
		}
		return !exit
	})
	return exit
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for builtins, conversions, and calls through function values.
func calleeFunc(call *ast.CallExpr, info *types.Info) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// shortFuncName renders fn for diagnostics: Type.Method for methods,
// pkg.Func otherwise.
func shortFuncName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// freshLocals returns the local variables of body that are initialized
// from a composite literal, new, or make in the function itself. Until
// such a value escapes, no other goroutine can reach it, so guarded-field
// accesses through these locals are the constructor pattern, not races.
func freshLocals(body ast.Node, info *types.Info) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil && isFreshExpr(as.Rhs[i]) {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: a composite
// literal (optionally behind &) or a new/make call.
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
