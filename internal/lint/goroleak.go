package lint

import (
	"go/ast"
)

// GoroLeak forbids launching goroutines with no shutdown edge. A `go`
// statement is reported when the spawned body — a function literal, or a
// named function resolved through the cross-package fact store — loops
// forever without any exit or coordination edge (return, break, select,
// channel send/receive, or ranging over a channel). Such a goroutine can
// never be stopped: it outlives Close/Stop, leaks its stack, and keeps
// touching state after the owner is gone — exactly the lifecycle bug an
// always-on diagnosis daemon cannot afford. The fix is structural: select
// on a ctx.Done()/stop channel inside the loop, or range over the work
// channel so closing it ends the goroutine.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "forbid goroutines whose body loops forever without a shutdown edge " +
		"(no return/break/select/channel operation, directly or via callees)",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				if pos, ok := foreverLoop(fl.Body, pass.TypesInfo); ok {
					pass.Reportf(pos,
						"goroutine body loops forever with no shutdown edge; select on a stop/ctx.Done() channel or add an exit condition")
				}
				reportBlockingCalls(pass, fl.Body)
				return true
			}
			if fn := calleeFunc(gs.Call, pass.TypesInfo); fn != nil && pass.Facts != nil {
				if fact, ok := pass.Facts.FuncFact(fn); ok && fact.BlocksForever {
					pass.Reportf(gs.Pos(),
						"goroutine runs %s, which loops forever with no shutdown edge (%s); thread a stop channel or context through it",
						shortFuncName(fn), fact.BlocksVia)
				}
			}
			return true
		})
	}
	return nil
}

// reportBlockingCalls flags calls in a goroutine literal's own control
// flow into functions whose fact says they never return.
func reportBlockingCalls(pass *Pass, body ast.Node) {
	if pass.Facts == nil {
		return
	}
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(call, pass.TypesInfo)
		if fn == nil {
			return true
		}
		if fact, ok := pass.Facts.FuncFact(fn); ok && fact.BlocksForever {
			pass.Reportf(call.Pos(),
				"goroutine calls %s, which loops forever with no shutdown edge (%s); thread a stop channel or context through it",
				shortFuncName(fn), fact.BlocksVia)
		}
		return true
	})
}
