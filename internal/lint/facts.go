// Cross-package facts: behavioral summaries of exported (and unexported)
// symbols, extracted per package and propagated in dependency order so
// analyzers can reason transitively — "this function eventually reads the
// wall clock", "this goroutine body can never be stopped", "this field is
// guarded by that mutex". Facts are keyed by go/types object identity,
// which the loader's shared importer keeps stable across packages within
// one run.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// guardedByRE matches the guarded-field annotation on a struct field:
//
//	mu      sync.Mutex
//	records map[string]int // guarded by mu
//
// The named mutex must be a sibling field of the same struct; the
// guardedfield analyzer then requires <recv>.mu to be held wherever the
// field is read or written.
var guardedByRE = regexp.MustCompile(`guarded by\s+([A-Za-z_]\w*)`)

// FuncFact is what the store knows about one function, including behavior
// inherited transitively from its callees.
type FuncFact struct {
	// WallClock: calling the function (transitively) reads the host clock
	// through a banned time.* entry point. Suppressed reads — the
	// sanctioned, justified ones — do not set this, and calls into the
	// module's wall-clock gateway (internal/simtime) never propagate it.
	WallClock bool
	// WallClockVia is the witness chain, e.g. "pollLoop -> time.Now".
	WallClockVia string
	// BlocksForever: the function's own control flow contains (or calls
	// into) a condition-less for-loop with no exit edge, so a call can
	// never return and a goroutine running it can never be stopped.
	BlocksForever bool
	// BlocksVia is the witness chain for BlocksForever.
	BlocksVia string
}

// Facts is the cross-package fact store. AddPackage must be called in
// dependency order (imports first) so that by the time a package is
// analyzed every fact about its callees is already present; the loader's
// DependencyOrder provides that order.
type Facts struct {
	modulePath string
	funcs      map[*types.Func]*FuncFact
	guarded    map[*types.Var]string
}

// NewFacts returns an empty store for the module at modulePath ("" for
// single-package runs, which disables module-relative scoping like the
// simtime gateway).
func NewFacts(modulePath string) *Facts {
	return &Facts{
		modulePath: modulePath,
		funcs:      map[*types.Func]*FuncFact{},
		guarded:    map[*types.Var]string{},
	}
}

// FuncFact returns the recorded fact for fn.
func (f *Facts) FuncFact(fn *types.Func) (FuncFact, bool) {
	if fact, ok := f.funcs[fn]; ok {
		return *fact, true
	}
	return FuncFact{}, false
}

// GuardedBy returns the sibling mutex field name guarding field, if the
// field carries a "guarded by" annotation.
func (f *Facts) GuardedBy(field *types.Var) (string, bool) {
	mu, ok := f.guarded[field]
	return mu, ok
}

// isGateway reports whether fn belongs to the module's sanctioned
// wall-clock gateway package: calls into it are how code is supposed to
// touch the host clock, so they never taint callers.
func (f *Facts) isGateway(fn *types.Func) bool {
	return f.modulePath != "" && fn.Pkg() != nil &&
		fn.Pkg().Path() == f.modulePath+"/internal/simtime"
}

// AddPackage extracts facts from one type-checked package: guarded-field
// annotations, direct wall-clock reads (minus //lint:ignore-sanctioned
// ones), exit-less forever-loops, and then a fixpoint that folds callee
// facts — already present for imported packages, iterated to convergence
// for in-package calls in any declaration order — into the callers.
func (f *Facts) AddPackage(pkg *Package) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := fieldGuard(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						f.guarded[v] = mu
					}
				}
			}
			return true
		})
	}

	type fnScan struct {
		fact         *FuncFact
		wallCallees  []*types.Func
		blockCallees []*types.Func
	}
	var fns []*fnScan
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sc := &fnScan{fact: &FuncFact{}}

			// Calls launched with `go` run concurrently: they do not make
			// the launcher block, so they are excluded from BlocksForever
			// propagation (WallClock still propagates — a spawned clock
			// read taints the run all the same). Calls inside function
			// literals are likewise excluded from blocking propagation:
			// the literal may never run on the enclosing call path.
			goCalls := map[*ast.CallExpr]bool{}
			var lits []*ast.FuncLit
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					goCalls[n.Call] = true
				case *ast.FuncLit:
					lits = append(lits, n)
				}
				return true
			})
			inLit := func(call *ast.CallExpr) bool {
				for _, fl := range lits {
					if fl.Pos() <= call.Pos() && call.Pos() < fl.End() {
						return true
					}
				}
				return false
			}

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := bannedTimeCall(call, pkg.Info); ok {
					if !sup.allows(pkg.Fset.Position(call.Pos()), NoSysTime.Name) && !sc.fact.WallClock {
						sc.fact.WallClock = true
						sc.fact.WallClockVia = "time." + name
					}
					return true
				}
				callee := calleeFunc(call, pkg.Info)
				if callee == nil {
					return true
				}
				sc.wallCallees = append(sc.wallCallees, callee)
				if !goCalls[call] && !inLit(call) {
					sc.blockCallees = append(sc.blockCallees, callee)
				}
				return true
			})
			if _, ok := foreverLoop(fd.Body, pkg.Info); ok {
				sc.fact.BlocksForever = true
				sc.fact.BlocksVia = fmt.Sprintf("for{} in %s", fd.Name.Name)
			}
			fns = append(fns, sc)
			f.funcs[obj] = sc.fact
		}
	}

	for changed := true; changed; {
		changed = false
		for _, sc := range fns {
			if !sc.fact.WallClock {
				for _, callee := range sc.wallCallees {
					if f.isGateway(callee) {
						continue
					}
					if cf := f.funcs[callee]; cf != nil && cf.WallClock {
						sc.fact.WallClock = true
						sc.fact.WallClockVia = shortFuncName(callee) + " -> " + cf.WallClockVia
						changed = true
						break
					}
				}
			}
			if !sc.fact.BlocksForever {
				for _, callee := range sc.blockCallees {
					if cf := f.funcs[callee]; cf != nil && cf.BlocksForever {
						sc.fact.BlocksForever = true
						sc.fact.BlocksVia = shortFuncName(callee) + " -> " + cf.BlocksVia
						changed = true
						break
					}
				}
			}
		}
	}
}

// fieldGuard extracts the "guarded by <mu>" annotation from a struct
// field's doc or trailing comment.
func fieldGuard(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// bannedTimeCall reports whether call invokes one of the banned package
// time entry points, returning its name.
func bannedTimeCall(call *ast.CallExpr, info *types.Info) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	if !bannedTimeFuncs[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}
