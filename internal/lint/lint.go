// Package lint is a stdlib-only static-analysis framework plus the suite of
// analyzers that encode this repository's determinism and diagnosis
// invariants (see DESIGN.md "Determinism invariants & linting"). The
// simulator's value proposition is *reproducible* diagnosis: the waiting
// graph, per-step thresholds and contributor ratings (Eqs. 1–3) must come
// out identical for identical inputs, and the crash-safe daemon around them
// must be free of lock-discipline and error-swallowing bugs. The analyzers
// reject the code patterns that silently break those properties — wall-clock
// reads (direct or transitive), globally seeded randomness, order-dependent
// map iteration, library panics, exact floating-point equality, unguarded
// access to mutex-protected fields, discarded error returns, unstoppable
// goroutines and per-iteration allocations in declared hot paths.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the upstream framework
// when the dependency becomes available; until then everything here is
// built on go/ast, go/parser and go/types alone. On top of the per-package
// passes sit two module-wide capabilities: a cross-package fact store
// (facts.go) propagated in dependency order, and a known-violation
// baseline (baseline.go) that lets CI fail on new findings only while the
// recorded debt burns down.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> reason" suppression comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the import path of the module under analysis, or ""
	// for single-package runs (linttest); analyzers use it to tell module
	// code from dependencies.
	ModulePath string
	// Facts is the cross-package fact store, populated for every module
	// package in dependency order before any analyzer runs.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// StaleIgnore is the pseudo-analyzer name under which unused
// //lint:ignore comments are reported: a suppression that no longer
// suppresses anything is debt pretending to be justification.
const StaleIgnore = "staleignore"

// ignoreRE matches the suppression comment. The analyzer list is
// comma-separated; a reason is mandatory, matching staticcheck's
// //lint:ignore convention.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+([\w,]+)\s+\S`)

// suppression is one //lint:ignore comment. It covers its own line
// (trailing-comment form) and the line immediately below (standalone
// form). used records whether any diagnostic was actually suppressed, so
// stale comments can be audited away.
type suppression struct {
	pos   token.Position
	names map[string]bool
	list  string // the comma-separated analyzer list as written
	used  bool
}

type suppressionList []*suppression

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionList {
	var sups suppressionList
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				s := &suppression{pos: fset.Position(c.Pos()), names: map[string]bool{}, list: m[1]}
				for _, n := range strings.Split(m[1], ",") {
					s.names[n] = true
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

// covers reports whether any suppression matches d, marking every match
// used.
func (l suppressionList) covers(d Diagnostic) bool {
	hit := false
	for _, s := range l {
		if s.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != s.pos.Line && d.Pos.Line != s.pos.Line+1 {
			continue
		}
		if s.names[d.Analyzer] || s.names["all"] {
			s.used = true
			hit = true
		}
	}
	return hit
}

// allows is the side-effect-free variant used during fact extraction: it
// reports whether a finding by the named analyzer at pos would be
// suppressed, without marking anything used.
func (l suppressionList) allows(pos token.Position, name string) bool {
	for _, s := range l {
		if s.pos.Filename == pos.Filename &&
			(pos.Line == s.pos.Line || pos.Line == s.pos.Line+1) &&
			(s.names[name] || s.names["all"]) {
			return true
		}
	}
	return false
}

// stale returns the suppressions that suppressed nothing, restricted to
// comments whose every named analyzer actually ran (a comment naming an
// analyzer outside this run may be load-bearing for another scope, and
// "all" can never be proven stale).
func (l suppressionList) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, s := range l {
		if s.used || s.names["all"] {
			continue
		}
		covered := true
		for n := range s.names {
			if !ran[n] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: StaleIgnore,
			Pos:      s.pos,
			Message: fmt.Sprintf("stale //lint:ignore %s: it suppresses nothing on this or the next line; delete it",
				s.list),
		})
	}
	return out
}

// RunAnalyzers executes the analyzers over one loaded package, honoring
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// by position. Facts are computed from the package itself; module-wide
// runs go through RunTree, which propagates facts across packages first.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts("")
	facts.AddPackage(pkg)
	diags, _, err := runAnalyzers(pkg, analyzers, "", facts)
	return diags, err
}

// runAnalyzers is the shared core: run the analyzers, filter suppressed
// findings, and audit the suppressions themselves.
func runAnalyzers(pkg *Package, analyzers []*Analyzer, modulePath string, facts *Facts) (diags, stale []Diagnostic, err error) {
	var raw []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			ModulePath: modulePath,
			Facts:      facts,
			diags:      &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sups := collectSuppressions(pkg.Fset, pkg.Files)
	var kept []Diagnostic
	for _, d := range raw {
		if !sups.covers(d) {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	stale = sups.stale(ran)
	sortDiags(stale)
	return kept, stale, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// moduleFunc reports whether fn is defined in this module (including the
// package under analysis itself, which covers single-package runs where
// ModulePath is empty).
func (p *Pass) moduleFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == p.Pkg {
		return true
	}
	if p.ModulePath == "" {
		return false
	}
	path := pkg.Path()
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}
