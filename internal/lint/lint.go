// Package lint is a stdlib-only static-analysis framework plus the suite of
// analyzers that encode this repository's determinism and diagnosis
// invariants (see DESIGN.md "Determinism invariants & linting"). The
// simulator's value proposition is *reproducible* diagnosis: the waiting
// graph, per-step thresholds and contributor ratings (Eqs. 1–3) must come
// out identical for identical inputs. The analyzers reject the code
// patterns that silently break that property — wall-clock reads, globally
// seeded randomness, order-dependent map iteration, library panics and
// exact floating-point equality.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate to the upstream framework
// when the dependency becomes available; until then everything here is
// built on go/ast, go/parser and go/types alone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> reason" suppression comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ignoreRE matches the suppression comment. The analyzer list is
// comma-separated; a reason is mandatory, matching staticcheck's
// //lint:ignore convention.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+([\w,]+)\s+\S`)

// suppressions maps file -> line -> set of suppressed analyzer names. A
// suppression comment covers its own line (trailing comment) and, when the
// comment stands alone, the line immediately below it.
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	add := func(file string, line int, names []string) {
		byLine := sup[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			sup[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = map[string]bool{}
			byLine[line] = set
		}
		for _, n := range names {
			set[n] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, names)
				add(pos.Filename, pos.Line+1, names)
			}
		}
	}
	return sup
}

func (s suppressions) covers(d Diagnostic) bool {
	set := s[d.Pos.Filename][d.Pos.Line]
	return set[d.Analyzer] || set["all"]
}

// RunAnalyzers executes the analyzers over one loaded package, honoring
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		if kept[i].Pos.Column != kept[j].Pos.Column {
			return kept[i].Pos.Column < kept[j].Pos.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
