package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIterOrder flags `range` over a map whose body has an order-dependent
// effect: appending to a slice that outlives the loop, accumulating a
// floating-point sum, or writing output. Go randomizes map iteration
// order, so each of these makes the result differ run to run — exactly
// what poisoned the provenance weight aggregation and report assembly.
//
// The collect-then-sort idiom is recognized: an append target that is
// later passed to a sort.* / slices.* call inside the same function is
// allowed, since the sort re-establishes a deterministic order. Integer
// accumulation is allowed (commutative and associative); float
// accumulation is not (rounding depends on order).
var MapIterOrder = &Analyzer{
	Name: "mapiterorder",
	Doc: "flag order-dependent effects (append, float accumulation, " +
		"output writes) inside range-over-map loops without a deterministic key sort",
	Run: runMapIterOrder,
}

// outputMethodNames are receiver methods treated as externally visible
// writes when called inside a map-range body.
var outputMethodNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

func runMapIterOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorts := collectSortCalls(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, rs, sorts)
				return true
			})
		}
	}
	return nil
}

// sortCall records one sorting invocation — a sort.*/slices.* call or a
// call to a function whose name starts with "sort"/"Sort" (local sorting
// helpers) — and the rendering of its first argument.
type sortCall struct {
	pos token.Pos
	arg string
}

func collectSortCalls(pass *Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[fun.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
		case *ast.Ident:
			obj, isFunc := pass.TypesInfo.Uses[fun].(*types.Func)
			if !isFunc || obj == nil ||
				!(strings.HasPrefix(obj.Name(), "sort") || strings.HasPrefix(obj.Name(), "Sort")) {
				return true
			}
		default:
			return true
		}
		out = append(out, sortCall{pos: call.Pos(), arg: types.ExprString(call.Args[0])})
		return true
	})
	return out
}

// declaredWithin reports whether expr is an identifier whose object is
// declared inside the span [lo, hi] — i.e. loop-local state whose mutation
// cannot leak iteration order.
func declaredWithin(pass *Pass, expr ast.Expr, lo, hi token.Pos) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorts []sortCall) {
	sortedLater := func(target string) bool {
		for _, sc := range sorts {
			if sc.arg == target && sc.pos > rs.Pos() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin && len(n.Args) > 0 {
					target := n.Args[0]
					if declaredWithin(pass, target, rs.Body.Pos(), rs.Body.End()) {
						return true
					}
					ts := types.ExprString(target)
					if !sortedLater(ts) {
						pass.Reportf(n.Pos(),
							"append to %s inside range over map captures the random iteration order; iterate sorted keys (or sort %s afterwards)", ts, ts)
					}
					return true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
					(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
					pass.Reportf(n.Pos(),
						"fmt.%s inside range over map emits output in random iteration order; iterate sorted keys", obj.Name())
					return true
				}
				if outputMethodNames[sel.Sel.Name] {
					if _, isSel := pass.TypesInfo.Selections[sel]; isSel {
						pass.Reportf(n.Pos(),
							"%s inside range over map writes in random iteration order; iterate sorted keys", types.ExprString(sel))
					}
				}
			}
		case *ast.AssignStmt:
			reportFloatAccum(pass, rs, n)
		}
		return true
	})
}

// reportFloatAccum flags floating-point accumulation into state that
// outlives the loop: x += e, x -= e, x *= e, x /= e, and x = x + e.
func reportFloatAccum(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	lt := pass.TypesInfo.TypeOf(lhs)
	if lt == nil || !isFloat(lt) {
		return
	}
	if declaredWithin(pass, lhs, rs.Body.Pos(), rs.Body.End()) {
		return
	}
	accum := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accum = true
	case token.ASSIGN:
		if be, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
			ls := types.ExprString(lhs)
			if types.ExprString(be.X) == ls || types.ExprString(be.Y) == ls {
				accum = true
			}
		}
	}
	if accum {
		pass.Reportf(as.Pos(),
			"floating-point accumulation into %s inside range over map rounds in random iteration order; iterate sorted keys", types.ExprString(lhs))
	}
}
