// Package loading without golang.org/x/tools: parse and type-check the
// module's packages in dependency order, resolving stdlib imports through
// the compiler's source importer (works offline, needs only GOROOT) and
// module-internal imports recursively through the loader itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("vedrfolnir/internal/sim"); external test
	// packages get a ".test" suffix appended to the base path.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of a single module.
type Loader struct {
	// IncludeTests adds _test.go files: in-package test files join their
	// package; external (package foo_test) files become a separate package.
	IncludeTests bool

	fset       *token.FileSet
	modulePath string
	moduleDir  string
	std        types.Importer
	pkgs       map[string]*Package // by import path
	loading    map[string]bool     // cycle detection
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// NewLoader locates the enclosing module of dir (walking up to go.mod) and
// prepares a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		modulePath: string(m[1]),
		moduleDir:  root,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the module root directory on disk.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// DependencyOrder returns every package loaded so far with imports before
// importers, the order cross-package fact propagation needs. Roots are
// visited in path order, so the result is deterministic.
func (l *Loader) DependencyOrder() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	seen := map[string]bool{}
	var out []*Package
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := l.pkgs[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(l.pkgs[path])
	}
	return out
}

// LoadPatterns resolves go-tool-style patterns ("./...", "./internal/sim")
// relative to the module root and loads every matched package.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.moduleDir, filepath.FromSlash(pat))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	var out []*Package
	for _, dir := range sorted {
		pkgs, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its module import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleDir)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads the package in dir (and, with IncludeTests, its external
// test package, if any).
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	out := []*Package{pkg}
	if l.IncludeTests {
		ext, err := l.loadExternalTests(dir, path)
		if err != nil {
			return nil, err
		}
		if ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

// load parses and type-checks the package with the given module import
// path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.moduleDir
	if path != l.modulePath {
		rel := strings.TrimPrefix(path, l.modulePath+"/")
		if rel == path {
			return nil, fmt.Errorf("lint: %s is not in module %s", path, l.modulePath)
		}
		dir = filepath.Join(l.moduleDir, filepath.FromSlash(rel))
	}
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses a directory's Go files, returning the package's own
// files (including in-package tests when IncludeTests) and any external
// test-package files separately.
func (l *Loader) parseDir(dir string) (own, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			extTest = append(extTest, f)
			continue
		}
		own = append(own, f)
	}
	return own, extTest, nil
}

// loadExternalTests builds the "package foo_test" companion package of dir.
func (l *Loader) loadExternalTests(dir, basePath string) (*Package, error) {
	_, ext, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(ext) == 0 {
		return nil, nil
	}
	return l.check(basePath+".test", dir, ext)
}

// check type-checks one file set as a package.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &chainImporter{loader: l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// chainImporter resolves module-internal imports through the loader and
// everything else through the stdlib source importer.
type chainImporter struct {
	loader *Loader
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	l := c.loader
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
