package lint

import "strings"

// SuiteEntry binds an analyzer to the set of packages its invariant
// governs.
type SuiteEntry struct {
	Analyzer *Analyzer
	// AppliesTo reports whether the analyzer runs on the package with the
	// given import path (external test packages carry a ".test" suffix).
	AppliesTo func(pkgPath string) bool
}

// Suite returns the repository's analyzer set with its package scoping,
// for the module rooted at modulePath:
//
//   - nosystime: every internal simulation/diagnosis package and the root
//     facade. internal/simtime is the sanctioned wall-clock gateway and
//     internal/lint is host-side tooling, so both are exempt, as are the
//     cmd/ CLIs and examples (wall-clock progress reporting is legitimate
//     there).
//   - obswallclock: internal/obs only — the observability layer's outputs
//     must be byte-identical across runs, so even the sanctioned stopwatch
//     gateway and slog's wall-clock record stamps are off-limits there.
//   - seededrand, mapiterorder: everywhere — determinism is global.
//   - nopanic: library (internal/...) packages except internal/lint's own
//     testdata-free tooling; binaries may still crash on startup errors.
//   - floateq: the weight/rating computations (provenance, diagnose,
//     waitgraph, baseline, stats) where float comparisons gate results.
func Suite(modulePath string) []SuiteEntry {
	internal := func(path string) (string, bool) {
		rel := strings.TrimPrefix(path, modulePath+"/internal/")
		if rel == path {
			return "", false
		}
		rel = strings.TrimSuffix(rel, ".test")
		if i := strings.IndexByte(rel, '/'); i >= 0 {
			rel = rel[:i]
		}
		return rel, true
	}
	return []SuiteEntry{
		{NoSysTime, func(path string) bool {
			if path == modulePath || path == modulePath+".test" {
				return true
			}
			sub, ok := internal(path)
			return ok && sub != "simtime" && sub != "lint"
		}},
		{ObsWallClock, func(path string) bool {
			sub, ok := internal(path)
			return ok && sub == "obs"
		}},
		{SeededRand, func(string) bool { return true }},
		{MapIterOrder, func(string) bool { return true }},
		{NoPanic, func(path string) bool {
			sub, ok := internal(path)
			return ok && sub != "lint"
		}},
		{FloatEq, func(path string) bool {
			sub, ok := internal(path)
			switch sub {
			case "provenance", "diagnose", "waitgraph", "baseline", "stats":
				return ok
			}
			return false
		}},
	}
}

// Analyzers returns every analyzer in the suite, unscoped (for tests and
// tools that want the full set).
func Analyzers() []*Analyzer {
	return []*Analyzer{NoSysTime, ObsWallClock, SeededRand, MapIterOrder, NoPanic, FloatEq}
}

// RunSuite loads the packages matched by patterns (tests included) and
// runs each analyzer over the packages it applies to.
func RunSuite(dir string, patterns []string) ([]Diagnostic, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = true
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	suite := Suite(loader.ModulePath())
	var all []Diagnostic
	for _, pkg := range pkgs {
		var as []*Analyzer
		for _, entry := range suite {
			if entry.AppliesTo(pkg.Path) {
				as = append(as, entry.Analyzer)
			}
		}
		if len(as) == 0 {
			continue
		}
		diags, err := RunAnalyzers(pkg, as)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
