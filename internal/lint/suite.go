package lint

import "strings"

// SuiteEntry binds an analyzer to the set of packages its invariant
// governs.
type SuiteEntry struct {
	Analyzer *Analyzer
	// AppliesTo reports whether the analyzer runs on the package with the
	// given import path (external test packages carry a ".test" suffix).
	AppliesTo func(pkgPath string) bool
}

// Suite returns the repository's analyzer set with its package scoping,
// for the module rooted at modulePath:
//
//   - nosystime: every internal simulation/diagnosis package and the root
//     facade. internal/simtime is the sanctioned wall-clock gateway and
//     internal/lint is host-side tooling, so both are exempt, as are the
//     cmd/ CLIs and examples (wall-clock progress reporting is legitimate
//     there).
//   - obswallclock: internal/obs only — the observability layer's outputs
//     must be byte-identical across runs, so even the sanctioned stopwatch
//     gateway and slog's wall-clock record stamps are off-limits there.
//   - seededrand, mapiterorder: everywhere — determinism is global.
//   - nopanic: library (internal/...) packages except internal/lint's own
//     testdata-free tooling; binaries may still crash on startup errors.
//   - floateq: the weight/rating computations (provenance, diagnose,
//     waitgraph, baseline, stats) where float comparisons gate results.
//   - guardedfield, errdrop, goroleak: everywhere — the annotation (and
//     the error/goroutine conventions) are opt-in per site, so broad scope
//     costs nothing and concurrency discipline is global.
//   - hotalloc: the declared hot-path packages only (eventq, fabric, sim,
//     sweep) — per-iteration allocation is a defect there and merely a
//     style choice elsewhere.
func Suite(modulePath string) []SuiteEntry {
	internal := func(path string) (string, bool) {
		rel := strings.TrimPrefix(path, modulePath+"/internal/")
		if rel == path {
			return "", false
		}
		rel = strings.TrimSuffix(rel, ".test")
		if i := strings.IndexByte(rel, '/'); i >= 0 {
			rel = rel[:i]
		}
		return rel, true
	}
	return []SuiteEntry{
		{NoSysTime, func(path string) bool {
			if path == modulePath || path == modulePath+".test" {
				return true
			}
			sub, ok := internal(path)
			return ok && sub != "simtime" && sub != "lint"
		}},
		{ObsWallClock, func(path string) bool {
			sub, ok := internal(path)
			return ok && sub == "obs"
		}},
		{SeededRand, func(string) bool { return true }},
		{MapIterOrder, func(string) bool { return true }},
		{NoPanic, func(path string) bool {
			sub, ok := internal(path)
			return ok && sub != "lint"
		}},
		{FloatEq, func(path string) bool {
			sub, ok := internal(path)
			switch sub {
			case "provenance", "diagnose", "waitgraph", "baseline", "stats":
				return ok
			}
			return false
		}},
		{GuardedField, func(string) bool { return true }},
		{ErrDrop, func(string) bool { return true }},
		{GoroLeak, func(string) bool { return true }},
		{HotAlloc, func(path string) bool {
			sub, ok := internal(path)
			switch sub {
			case "eventq", "fabric", "sim", "sweep":
				return ok
			}
			return false
		}},
	}
}

// Analyzers returns every analyzer in the suite, unscoped (for tests and
// tools that want the full set).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoSysTime, ObsWallClock, SeededRand, MapIterOrder, NoPanic, FloatEq,
		GuardedField, ErrDrop, GoroLeak, HotAlloc,
	}
}

// TreeReport is a module-wide analysis result.
type TreeReport struct {
	// ModuleDir is the module root on disk (where lint/baseline.json
	// lives) and ModulePath its import path.
	ModuleDir  string
	ModulePath string
	// Diags are the surviving (unsuppressed) findings across every
	// analyzed package, position-sorted per package.
	Diags []Diagnostic
	// StaleIgnores are //lint:ignore comments that suppressed nothing,
	// reported under the "staleignore" pseudo-analyzer.
	StaleIgnores []Diagnostic
}

// RunTree loads the packages matched by patterns (tests included),
// computes cross-package facts over every loaded package in dependency
// order, and runs each suite analyzer over the packages it applies to.
func RunTree(dir string, patterns []string) (*TreeReport, error) {
	suite := func(modulePath string) func(string) []*Analyzer {
		entries := Suite(modulePath)
		return func(pkgPath string) []*Analyzer {
			var as []*Analyzer
			for _, e := range entries {
				if e.AppliesTo(pkgPath) {
					as = append(as, e.Analyzer)
				}
			}
			return as
		}
	}
	return analyzeTree(dir, patterns, suite)
}

// AnalyzeModule runs the given analyzers, with cross-package facts, over
// every package of the module at dir matched by patterns. It is the
// entry point for tooling and for linttest's multi-package fixtures; the
// repository suite goes through RunTree, which scopes per package.
func AnalyzeModule(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	rep, err := analyzeTree(dir, patterns, func(string) func(string) []*Analyzer {
		return func(string) []*Analyzer { return analyzers }
	})
	if err != nil {
		return nil, err
	}
	return rep.Diags, nil
}

func analyzeTree(dir string, patterns []string, pick func(modulePath string) func(string) []*Analyzer) (*TreeReport, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = true
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	facts := NewFacts(loader.ModulePath())
	for _, pkg := range loader.DependencyOrder() {
		facts.AddPackage(pkg)
	}
	analyzersFor := pick(loader.ModulePath())
	rep := &TreeReport{ModuleDir: loader.ModuleDir(), ModulePath: loader.ModulePath()}
	for _, pkg := range pkgs {
		as := analyzersFor(pkg.Path)
		if len(as) == 0 {
			continue
		}
		diags, stale, err := runAnalyzers(pkg, as, loader.ModulePath(), facts)
		if err != nil {
			return nil, err
		}
		rep.Diags = append(rep.Diags, diags...)
		rep.StaleIgnores = append(rep.StaleIgnores, stale...)
	}
	return rep, nil
}

// RunSuite loads the packages matched by patterns (tests included) and
// runs each analyzer over the packages it applies to, returning the
// surviving findings. Kept for callers that do not need the baseline or
// suppression audit; CI uses RunTree through cmd/vedrlint.
func RunSuite(dir string, patterns []string) ([]Diagnostic, error) {
	rep, err := RunTree(dir, patterns)
	if err != nil {
		return nil, err
	}
	return rep.Diags, nil
}
