package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"vedrfolnir/internal/lint"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func diagAt(file string, line int, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Analyzer: "errdrop",
		Pos:      token.Position{Filename: file, Line: line, Column: 2},
		Message:  msg,
	}
}

// TestBaselineStableUnderLineDrift is the burn-down contract: a recorded
// finding stays recognized when code is added above it (pure line drift),
// and resurfaces as fresh the moment the offending line itself changes.
func TestBaselineStableUnderLineDrift(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "pkg", "f.go")
	const msg = "f.Sync returns an error that is discarded; handle it or discard explicitly with `_ =`"

	writeFile(t, file, "package pkg\n\nfunc flush() {\n\tf.Sync()\n}\n")
	base := lint.NewBaseline(dir, []lint.Diagnostic{diagAt(file, 4, msg)})
	if got := base.Entries[0].File; got != "pkg/f.go" {
		t.Fatalf("entry file = %q, want module-relative %q", got, "pkg/f.go")
	}

	// Drift: three lines inserted above; the finding moves to line 7 but
	// its fingerprint (file, line text, message) is unchanged.
	writeFile(t, file, "package pkg\n\n// a\n// b\n// c\nfunc flush() {\n\tf.Sync()\n}\n")
	fresh, unmatched := lint.DiffBaseline(base, dir, []lint.Diagnostic{diagAt(file, 7, msg)})
	if len(fresh) != 0 || len(unmatched) != 0 {
		t.Fatalf("after pure line drift: fresh=%v unmatched=%v, want none", fresh, unmatched)
	}

	// Touching the offending line invalidates the entry: the finding is
	// fresh again and the old entry is prunable.
	writeFile(t, file, "package pkg\n\nfunc flush() {\n\tf.Sync() // changed\n}\n")
	fresh, unmatched = lint.DiffBaseline(base, dir, []lint.Diagnostic{diagAt(file, 4, msg)})
	if len(fresh) != 1 || len(unmatched) != 1 {
		t.Fatalf("after editing the line: fresh=%d unmatched=%d, want 1 and 1", len(fresh), len(unmatched))
	}
}

// TestBaselineMultiset pins multiset matching: two identical findings
// (same file, same line text, same message — e.g. the same drop repeated)
// need two entries; one entry carries only one of them.
func TestBaselineMultiset(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "pkg", "f.go")
	const msg = "f.Close returns an error that is discarded; handle it or discard explicitly with `_ =`"
	writeFile(t, file, "package pkg\n\nfunc a() {\n\tf.Close()\n}\n\nfunc b() {\n\tf.Close()\n}\n")

	both := []lint.Diagnostic{diagAt(file, 4, msg), diagAt(file, 8, msg)}
	base := lint.NewBaseline(dir, both)
	if base.Entries[0].Fingerprint != base.Entries[1].Fingerprint {
		t.Fatalf("identical findings should share a fingerprint")
	}
	if fresh, unmatched := lint.DiffBaseline(base, dir, both); len(fresh) != 0 || len(unmatched) != 0 {
		t.Fatalf("full multiset: fresh=%v unmatched=%v, want none", fresh, unmatched)
	}

	one := lint.NewBaseline(dir, both[:1])
	fresh, _ := lint.DiffBaseline(one, dir, both)
	if len(fresh) != 1 {
		t.Fatalf("one entry against two findings: fresh=%d, want 1", len(fresh))
	}
}

// TestBaselineRoundTrip checks Write/Load and that a missing file loads as
// an empty baseline (a fresh checkout gates on everything).
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint", "baseline.json")

	empty, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if len(empty.Entries) != 0 || empty.Tool != "vedrvet" {
		t.Fatalf("missing baseline should load empty, got %+v", empty)
	}

	file := filepath.Join(dir, "pkg", "f.go")
	writeFile(t, file, "package pkg\n\nfunc a() {\n\tf.Close()\n}\n")
	b := lint.NewBaseline(dir, []lint.Diagnostic{diagAt(file, 4, "msg")})
	if err := lint.WriteBaseline(path, b); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	got, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0] != b.Entries[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got.Entries, b.Entries)
	}
	if got.Format != lint.BaselineFormat {
		t.Fatalf("format = %d, want %d", got.Format, lint.BaselineFormat)
	}
}
