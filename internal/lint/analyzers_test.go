package lint_test

import (
	"path/filepath"
	"testing"

	"vedrfolnir/internal/lint"
	"vedrfolnir/internal/lint/linttest"
)

func td(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestNoSysTime(t *testing.T)    { linttest.Run(t, lint.NoSysTime, td("nosystime", "a")) }
func TestObsWallClock(t *testing.T) { linttest.Run(t, lint.ObsWallClock, td("obswallclock", "a")) }
func TestSeededRand(t *testing.T)   { linttest.Run(t, lint.SeededRand, td("seededrand", "a")) }
func TestMapIterOrder(t *testing.T) { linttest.Run(t, lint.MapIterOrder, td("mapiterorder", "a")) }
func TestNoPanic(t *testing.T)      { linttest.Run(t, lint.NoPanic, td("nopanic", "a")) }
func TestFloatEq(t *testing.T)      { linttest.Run(t, lint.FloatEq, td("floateq", "a")) }
func TestGuardedField(t *testing.T) { linttest.Run(t, lint.GuardedField, td("guardedfield", "a")) }
func TestErrDrop(t *testing.T)      { linttest.Run(t, lint.ErrDrop, td("errdrop", "a")) }
func TestGoroLeak(t *testing.T)     { linttest.Run(t, lint.GoroLeak, td("goroleak", "a")) }
func TestHotAlloc(t *testing.T)     { linttest.Run(t, lint.HotAlloc, td("hotalloc", "a")) }

// TestFactPropagation drives the cross-package fact store over a
// self-contained fixture module: an unsanctioned wall-clock read taints
// importers (directly and through two call hops), a suppressed read sets
// no fact, the internal/simtime gateway never propagates, and a guarded
// field annotated in one package is enforced in another.
func TestFactPropagation(t *testing.T) {
	linttest.RunModule(t, []*lint.Analyzer{lint.NoSysTime, lint.GuardedField},
		filepath.Join("testdata", "mod", "factprop"))
}

// TestSuiteScoping pins the package scoping decisions: which invariants
// govern which parts of the tree.
func TestSuiteScoping(t *testing.T) {
	const mod = "vedrfolnir"
	byName := map[string]func(string) bool{}
	for _, e := range lint.Suite(mod) {
		byName[e.Analyzer.Name] = e.AppliesTo
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"nosystime", mod + "/internal/sim", true},
		{"nosystime", mod + "/internal/hostmon", true},
		{"nosystime", mod + "/internal/simtime", false}, // sanctioned wall-clock gateway
		{"nosystime", mod + "/internal/lint", false},    // host-side tooling
		{"nosystime", mod + "/cmd/vedrsim", false},      // CLIs may report wall time
		{"nosystime", mod, true},                        // root facade is simulated
		{"obswallclock", mod + "/internal/obs", true},
		{"obswallclock", mod + "/internal/obs.test", true},
		{"obswallclock", mod + "/internal/sweep", false}, // stopwatch legal outside obs
		{"obswallclock", mod + "/internal/simtime", false},
		{"seededrand", mod + "/cmd/vedrsim", true},
		{"seededrand", mod + "/internal/scenario", true},
		{"mapiterorder", mod + "/internal/provenance", true},
		{"nopanic", mod + "/internal/diagnose", true},
		{"nopanic", mod + "/cmd/vedrsim", false}, // binaries may crash on startup
		{"floateq", mod + "/internal/provenance", true},
		{"floateq", mod + "/internal/diagnose", true},
		{"floateq", mod + "/internal/fabric", false},
		{"guardedfield", mod + "/internal/analyzerd", true},
		{"guardedfield", mod + "/cmd/vedrsim", true}, // annotation is opt-in, scope is global
		{"errdrop", mod + "/internal/analyzerd", true},
		{"errdrop", mod + "/cmd/vedrsim", true},
		{"goroleak", mod + "/internal/hostmon", true},
		{"hotalloc", mod + "/internal/eventq", true},
		{"hotalloc", mod + "/internal/fabric", true},
		{"hotalloc", mod + "/internal/sim", true},
		{"hotalloc", mod + "/internal/sweep", true},
		{"hotalloc", mod + "/internal/diagnose", false}, // not a declared hot path
		{"hotalloc", mod + "/internal/obs", false},
	}
	for _, c := range cases {
		if got := byName[c.analyzer](c.pkg); got != c.want {
			t.Errorf("%s applies to %s = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

// TestRunSuiteOnTree runs the full scoped suite over this repository and
// gates it on the known-violation baseline — the same check CI enforces
// via cmd/vedrlint: no NEW findings, no stale suppressions. Entries the
// baseline carries that matched nothing are logged as prunable, not
// failed, so fixing debt locally never breaks the test.
func TestRunSuiteOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	rep, err := lint.RunTree(".", []string{"./..."})
	if err != nil {
		t.Fatalf("RunTree: %v", err)
	}
	base, err := lint.LoadBaseline(filepath.Join(rep.ModuleDir, "lint", "baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	fresh, unmatched := lint.DiffBaseline(base, rep.ModuleDir, rep.Diags)
	for _, d := range fresh {
		t.Errorf("new finding: %s", d)
	}
	for _, d := range rep.StaleIgnores {
		t.Errorf("%s", d)
	}
	for _, e := range unmatched {
		t.Logf("baseline entry fixed or drifted (prune with vedrlint -update-baseline): %s:%d %s", e.File, e.Line, e.Rule)
	}
}
