package lint_test

import (
	"path/filepath"
	"testing"

	"vedrfolnir/internal/lint"
	"vedrfolnir/internal/lint/linttest"
)

func td(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestNoSysTime(t *testing.T)    { linttest.Run(t, lint.NoSysTime, td("nosystime", "a")) }
func TestObsWallClock(t *testing.T) { linttest.Run(t, lint.ObsWallClock, td("obswallclock", "a")) }
func TestSeededRand(t *testing.T)   { linttest.Run(t, lint.SeededRand, td("seededrand", "a")) }
func TestMapIterOrder(t *testing.T) { linttest.Run(t, lint.MapIterOrder, td("mapiterorder", "a")) }
func TestNoPanic(t *testing.T)      { linttest.Run(t, lint.NoPanic, td("nopanic", "a")) }
func TestFloatEq(t *testing.T)      { linttest.Run(t, lint.FloatEq, td("floateq", "a")) }

// TestSuiteScoping pins the package scoping decisions: which invariants
// govern which parts of the tree.
func TestSuiteScoping(t *testing.T) {
	const mod = "vedrfolnir"
	byName := map[string]func(string) bool{}
	for _, e := range lint.Suite(mod) {
		byName[e.Analyzer.Name] = e.AppliesTo
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"nosystime", mod + "/internal/sim", true},
		{"nosystime", mod + "/internal/hostmon", true},
		{"nosystime", mod + "/internal/simtime", false}, // sanctioned wall-clock gateway
		{"nosystime", mod + "/internal/lint", false},    // host-side tooling
		{"nosystime", mod + "/cmd/vedrsim", false},      // CLIs may report wall time
		{"nosystime", mod, true},                        // root facade is simulated
		{"obswallclock", mod + "/internal/obs", true},
		{"obswallclock", mod + "/internal/obs.test", true},
		{"obswallclock", mod + "/internal/sweep", false}, // stopwatch legal outside obs
		{"obswallclock", mod + "/internal/simtime", false},
		{"seededrand", mod + "/cmd/vedrsim", true},
		{"seededrand", mod + "/internal/scenario", true},
		{"mapiterorder", mod + "/internal/provenance", true},
		{"nopanic", mod + "/internal/diagnose", true},
		{"nopanic", mod + "/cmd/vedrsim", false}, // binaries may crash on startup
		{"floateq", mod + "/internal/provenance", true},
		{"floateq", mod + "/internal/diagnose", true},
		{"floateq", mod + "/internal/fabric", false},
	}
	for _, c := range cases {
		if got := byName[c.analyzer](c.pkg); got != c.want {
			t.Errorf("%s applies to %s = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

// TestRunSuiteOnTree runs the full scoped suite over this repository: the
// tree must stay invariant-clean (this is the same check CI enforces via
// cmd/vedrlint).
func TestRunSuiteOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := lint.RunSuite(".", []string{"./..."})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
