package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != on floating-point operands. The contributor
// ratings (Eqs. 1–3) and threshold computations accumulate float64 sums
// whose low bits depend on accumulation order and compiler fusion; exact
// equality on such values is a latent nondeterminism. Compare with an
// explicit tolerance, or restructure around ordering comparisons.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= on float operands in weight/rating code; use a " +
		"tolerance or ordering comparisons",
	Run: runFloatEq,
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := pass.TypesInfo.TypeOf(be.X)
			ty := pass.TypesInfo.TypeOf(be.Y)
			if tx == nil || ty == nil {
				return true
			}
			if isFloat(tx) || isFloat(ty) {
				pass.Reportf(be.OpPos,
					"%s on floating-point values is order-of-accumulation sensitive; compare with a tolerance or use </>", be.Op)
			}
			return true
		})
	}
	return nil
}
