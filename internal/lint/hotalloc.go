package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc makes per-iteration allocation visible in the declared hot-path
// packages (the simulator's event queue, fabric, kernel and the sweep
// engine — see the suite scoping): inside a loop it flags fmt
// formatting calls, map construction, new/&T{} heap allocations, and
// values boxed into interfaces (explicit conversions and variadic ...any
// arguments). Each of these is a malloc (or a whole format machine) per
// event or per packet; the ROADMAP's scaling item needs them hoisted,
// pooled, or replaced with appends.
//
// Cold paths inside loops are exempt: expressions under a return
// statement or a panic call run at most once per loop exit, so
// `return fmt.Errorf(...)` stays legal. Function literals defined inside
// a loop are not descended into (their execution count is unknowable
// here), and test files are skipped.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag per-iteration allocations in hot-path loops: fmt formatting, map construction, " +
		"new/&T{} and interface boxing; hoist them out of the loop or reuse buffers",
	Run: runHotAlloc,
}

// hotFmtFuncs are the fmt entry points that build a formatter and a string
// per call.
var hotFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if _, ok := n.(*ast.FuncLit); ok && inLoopBody(stack) {
				return false
			}
			if !inLoopBody(stack) || onColdPath(stack) {
				return true
			}
			checkHotNode(pass, n, stack)
			return true
		})
	}
	return nil
}

// inLoopBody reports whether the innermost node sits inside the body of a
// for/range statement on the stack (not in its init/cond/post clauses).
func inLoopBody(stack []ast.Node) bool {
	n := stack[len(stack)-1]
	for _, anc := range stack[:len(stack)-1] {
		var body *ast.BlockStmt
		switch anc := anc.(type) {
		case *ast.ForStmt:
			body = anc.Body
		case *ast.RangeStmt:
			body = anc.Body
		default:
			continue
		}
		if body.Pos() <= n.Pos() && n.Pos() < body.End() {
			return true
		}
	}
	return false
}

// onColdPath reports whether the node runs at most once per loop exit: it
// hangs under a return statement or a panic call.
func onColdPath(stack []ast.Node) bool {
	for _, anc := range stack[:len(stack)-1] {
		switch anc := anc.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(anc.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func checkHotNode(pass *Pass, n ast.Node, stack []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(n, pass.TypesInfo); fn != nil &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && hotFmtFuncs[fn.Name()] {
			pass.Reportf(n.Pos(),
				"fmt.%s allocates and reflects on every iteration of a hot loop; format outside the loop or use strconv appends",
				fn.Name())
			return
		}
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make":
				if len(n.Args) > 0 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(),
								"map allocated on every iteration of a hot loop; hoist it out and reuse it (clear to reset)")
						}
					}
				}
				return
			case "new":
				pass.Reportf(n.Pos(), "new allocates on every iteration of a hot loop; hoist or pool the value")
				return
			}
		}
		if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
			// Explicit conversion: boxing when the target is an interface
			// and the operand is concrete.
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(n.Args) == 1 {
				if at := pass.TypesInfo.TypeOf(n.Args[0]); at != nil {
					if _, already := at.Underlying().(*types.Interface); !already {
						pass.Reportf(n.Pos(),
							"conversion boxes %s into %s on every iteration of a hot loop",
							at.String(), tv.Type.String())
					}
				}
			}
			return
		}
		reportVariadicBoxing(pass, n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(),
					"&composite literal allocates on every iteration of a hot loop; hoist or pool the value")
			}
		}
	case *ast.CompositeLit:
		if t := pass.TypesInfo.TypeOf(n); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(),
					"map literal allocated on every iteration of a hot loop; hoist it out and reuse it (clear to reset)")
			}
		}
	}
}

// reportVariadicBoxing flags concrete arguments passed through a
// ...interface{} (or other interface-element) variadic parameter: each one
// is an allocation per iteration.
func reportVariadicBoxing(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
	if !ok {
		return
	}
	if _, isIface := slice.Elem().Underlying().(*types.Interface); !isIface {
		return
	}
	for _, arg := range call.Args[min(params.Len()-1, len(call.Args)):] {
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if at == types.Typ[types.UntypedNil] {
			continue
		}
		pass.Reportf(call.Pos(),
			"arguments box into %s on every iteration of a hot loop; preformat outside the loop",
			slice.Elem().String())
		return
	}
}
