// Package linttest is an analysistest-style harness for the lint suite's
// analyzers: it loads a testdata package, runs one analyzer, and compares
// the reported diagnostics against `// want "regexp"` comments placed on
// the offending lines. Both directions are checked — every diagnostic must
// be expected, and every expectation must fire. //lint:ignore suppressions
// are honored, so testdata can also exercise the suppression path.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"vedrfolnir/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one `// want` pattern anchored to a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (e.g. "testdata/src/nosystime/a"),
// applies the analyzer, and reports mismatches through t. Testdata
// packages may import only the standard library.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := loadTestdata(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants, err := parseExpectations(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing expectations in %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected diagnostic matching %q at %s:%d, got none", w.pattern, w.file, w.line)
		}
	}
}

// RunModule loads the self-contained module rooted at dir (it has its own
// go.mod — e.g. "testdata/mod/factprop"), runs the analyzers with
// cross-package fact propagation over the packages matched by patterns
// (default ./...), and checks the `// want` expectations of every Go file
// in the module. This is the multi-package counterpart of Run: use it when
// the case under test is a fact crossing a package boundary.
func RunModule(t *testing.T, analyzers []*lint.Analyzer, dir string, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("resolving %s: %v", dir, err)
	}
	diags, err := lint.AnalyzeModule(abs, analyzers, patterns...)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}
	wants, err := moduleExpectations(abs)
	if err != nil {
		t.Fatalf("parsing expectations in %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected diagnostic matching %q at %s:%d, got none", w.pattern, w.file, w.line)
		}
	}
}

// moduleExpectations parses every Go file under root for want comments.
func moduleExpectations(root string) ([]*expectation, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return parseExpectations(fset, files)
}

// claim marks the first unmatched expectation that covers d.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func parseExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				qs := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range qs {
					text := q[1]
					if q[2] != "" {
						text = q[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}

// loadTestdata parses and type-checks a self-contained testdata package.
func loadTestdata(dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{Path: tpkg.Path(), Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
