package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/wire"
)

// Live rebalance: Resize installs a new shard map without restarting the
// fleet. The state machine, in order:
//
//  1. before-quiesce — new shards (grow) start under the next map.
//  2. The router fences every moved client (retryable NACKs) and waits
//     for in-flight routed submissions to settle.
//  3. Every donor shard is dumped; the dumps slice into wire.Handoff
//     units, one per (donor, adoptee) pair, persisted to HandoffDir.
//  4. during-handoff — surviving shards get their restart args rewritten
//     (PrepareShard) and then the "remap" verb: they install the next
//     map and drop moved clients (already captured in step 3).
//  5. Each handoff is delivered with the "adopt" verb; the adoptee WALs,
//     re-ingests, and snapshots the moved state before acknowledging.
//  6. The router flips its own map atomically and lifts the fence.
//  7. after-flip — removed shards (shrink) stop.
//
// Every shard exchange retries until RebalanceTimeout, so a SIGKILLed
// shard's supervised restart is a delay, not a failure; idempotent verbs
// (epoch-checked remap, per-donor-deduplicated adopt) make the retries
// safe, and the drain-side merge dedup absorbs any duplicate copies a
// mid-handoff crash leaves behind.

// Rebalance phase announcements, in the order Resize reaches them. The
// strings match internal/chaos.RebalanceKills cut points so a chaos
// harness can key kills directly off OnPhase.
const (
	PhaseBeforeQuiesce = "before-quiesce"
	PhaseDuringHandoff = "during-handoff"
	PhaseAfterFlip     = "after-flip"
)

// RebalanceHooks are the process-level operations a live Resize needs
// from whoever supervises the shard daemons (the Fleet, or a test
// harness). All hooks are called from the resizing goroutine.
type RebalanceHooks struct {
	// StartShard launches shard i under map m (a grow target) and
	// returns its announced listen address. Required for grows.
	StartShard func(i int, m wire.ShardMap) (addr string, err error)
	// PrepareShard rewrites shard i's restart arguments to map m, so a
	// crash after the remap restarts the shard under the map it
	// acknowledged. Called before the remap verb is sent. Optional.
	PrepareShard func(i int, m wire.ShardMap) error
	// StopShard retires shard i (a shrink donor) after the flip.
	// Optional.
	StopShard func(i int)
	// OnPhase observes each phase announcement — the chaos harness's
	// kill trigger. Optional.
	OnPhase func(phase string)
}

// ResizeReport summarizes one completed rebalance.
type ResizeReport struct {
	// From and To are the old and new shard counts; Epoch is the new
	// map's epoch.
	From  int   `json:"from"`
	To    int   `json:"to"`
	Epoch int64 `json:"epoch"`
	// Donors are the shards whose state was dumped and sliced.
	Donors []int `json:"donors,omitempty"`
	// Handoffs counts delivered handoff units; MovedClients and
	// MovedMessages what they carried; Adopted what the adoptees
	// acknowledged ingesting (retried deliveries dedup to zero).
	Handoffs      int   `json:"handoffs"`
	MovedClients  int   `json:"moved_clients"`
	MovedMessages int   `json:"moved_messages"`
	Adopted       int64 `json:"adopted"`
}

// phase announces a rebalance cut point to the hooks.
func (r *Router) phase(hooks *RebalanceHooks, name string) {
	r.cfg.Log.Info("rebalance phase", "phase", name)
	if hooks.OnPhase != nil {
		hooks.OnPhase(name)
	}
}

// Resize grows or shrinks the fleet to the given shard count (and vnode
// replica count; 0 keeps the current one) without restarting it. One
// resize runs at a time; a concurrent call fails fast. On success the
// router routes under the new map and every moved client has been handed
// off; on failure before the remap step the old topology is restored.
func (r *Router) Resize(shards, replicas int) (*ResizeReport, error) {
	hooks := r.cfg.Rebalance
	if hooks == nil {
		return nil, fmt.Errorf("fleet: this router has no rebalance hooks")
	}
	if !r.resizeMu.TryLock() {
		return nil, fmt.Errorf("fleet: a rebalance is already in progress")
	}
	defer r.resizeMu.Unlock()

	cur := r.Map()
	if shards < 1 {
		return nil, fmt.Errorf("fleet: resize to %d shards, want >= 1", shards)
	}
	if replicas == 0 {
		replicas = cur.Replicas
	}
	if shards == cur.Shards && replicas == cur.Replicas {
		return nil, fmt.Errorf("fleet: already %d shards with %d replicas", shards, replicas)
	}
	next := wire.ShardMap{Shards: shards, Replicas: replicas, Epoch: cur.Epoch + 1}
	newRing, err := wire.NewHashRing(next)
	if err != nil {
		return nil, fmt.Errorf("fleet: resize: %w", err)
	}
	deadline := r.now().Add(r.cfg.RebalanceTimeout)
	report := &ResizeReport{From: cur.Shards, To: next.Shards, Epoch: next.Epoch}
	r.cfg.Log.Info("rebalance starting", "from", cur.Shards, "to", next.Shards, "epoch", next.Epoch)

	r.phase(hooks, PhaseBeforeQuiesce)

	// Grow targets start under the next map so they never have to be
	// remapped — their first epoch is the new one.
	var started []int
	for i := cur.Shards; i < next.Shards; i++ {
		if hooks.StartShard == nil {
			return nil, fmt.Errorf("fleet: growing to %d shards needs a StartShard hook", next.Shards)
		}
		addr, err := hooks.StartShard(i, next)
		if err != nil {
			r.stopStarted(started, cur.Shards, hooks)
			return nil, fmt.Errorf("fleet: starting shard %d: %w", i, err)
		}
		r.rmu.Lock()
		r.links = append(r.links, &shardLink{addr: addr})
		if r.cfg.Metrics != nil {
			r.forwarded = r.cfg.Metrics.CounterSet(
				"vedr_router_shard_forwarded", "messages relayed to this shard", next.Shards)
		}
		r.rmu.Unlock()
		started = append(started, i)
	}

	// Fence every client the next map moves, then wait for submissions
	// already past the fence to finish their shard round trip — after
	// the drain, a donor dump is guaranteed to include them.
	r.rmu.Lock()
	oldRing := r.ring
	r.quiesce = func(client string) bool {
		return oldRing.Owner(client) != newRing.Owner(client)
	}
	r.rmu.Unlock()
	if err := r.drainInflight(deadline); err != nil {
		r.abortResize(started, cur.Shards, hooks)
		return nil, err
	}

	donors := wire.DonorShards(cur, next)
	report.Donors = donors
	var handoffs []*wire.Handoff
	for _, d := range donors {
		state, err := r.dumpRetry(d, deadline)
		if err != nil {
			r.abortResize(started, cur.Shards, hooks)
			return nil, fmt.Errorf("fleet: rebalance dump of shard %d: %w", d, err)
		}
		hs, err := wire.BuildHandoffs(state, next)
		if err != nil {
			r.abortResize(started, cur.Shards, hooks)
			return nil, fmt.Errorf("fleet: slicing shard %d: %w", d, err)
		}
		handoffs = append(handoffs, hs...)
	}
	for _, h := range handoffs {
		report.MovedClients += len(h.Clients)
		report.MovedMessages += len(h.Messages)
	}
	if err := r.persistHandoffs(handoffs); err != nil {
		r.abortResize(started, cur.Shards, hooks)
		return nil, err
	}

	r.phase(hooks, PhaseDuringHandoff)

	// Point of no return: from here, failures leave the fleet mid-flight
	// (fence lifted, old map still routing) rather than rolled back —
	// the epoch-checked verbs make a retried Resize converge, and the
	// drain-side merge dedup keeps the diagnosis correct meanwhile.
	survivors := cur.Shards
	if next.Shards < survivors {
		survivors = next.Shards
	}
	for i := 0; i < survivors; i++ {
		if hooks.PrepareShard != nil {
			if err := hooks.PrepareShard(i, next); err != nil {
				r.liftFence()
				return nil, fmt.Errorf("fleet: preparing shard %d: %w", i, err)
			}
		}
		if err := r.remapRetry(i, next, deadline); err != nil {
			r.liftFence()
			return nil, fmt.Errorf("fleet: remapping shard %d: %w", i, err)
		}
	}
	for _, h := range handoffs {
		n, err := r.adoptRetry(h, deadline)
		if err != nil {
			r.liftFence()
			return nil, fmt.Errorf("fleet: handing off shard %d -> %d: %w", h.From, h.To, err)
		}
		report.Handoffs++
		report.Adopted += n
	}

	// Flip: the router routes under the next map and re-admits the moved
	// clients in one atomic swap.
	r.rmu.Lock()
	r.cur = next
	r.ring = newRing
	r.quiesce = nil
	if len(r.links) > next.Shards {
		r.links = r.links[:next.Shards]
	}
	r.rmu.Unlock()

	r.phase(hooks, PhaseAfterFlip)

	// Donors retire highest-index first so a supervisor backed by a
	// slice can truncate from the tail.
	for i := cur.Shards - 1; i >= next.Shards; i-- {
		if hooks.StopShard != nil {
			hooks.StopShard(i)
		}
	}
	r.count(func(s *RouterStats) { s.Resizes++ })
	r.cfg.Log.Info("rebalance complete", "epoch", next.Epoch, "shards", next.Shards,
		"handoffs", report.Handoffs, "moved", report.MovedMessages)
	return report, nil
}

// liftFence re-admits fenced clients (mid-flight failure path).
func (r *Router) liftFence() {
	r.rmu.Lock()
	r.quiesce = nil
	r.rmu.Unlock()
}

// stopStarted retires grow targets that were launched before a failure.
func (r *Router) stopStarted(started []int, oldShards int, hooks *RebalanceHooks) {
	r.rmu.Lock()
	if len(r.links) > oldShards {
		r.links = r.links[:oldShards]
	}
	r.rmu.Unlock()
	for k := len(started) - 1; k >= 0; k-- { // highest-index first, like a shrink
		if hooks.StopShard != nil {
			hooks.StopShard(started[k])
		}
	}
}

// abortResize restores the old topology after a failure before the remap
// step: the fence lifts, grow targets stop, and no shard ever saw the
// next epoch.
func (r *Router) abortResize(started []int, oldShards int, hooks *RebalanceHooks) {
	r.liftFence()
	r.stopStarted(started, oldShards, hooks)
}

// drainInflight waits for every submission already past the fence to
// complete its shard round trip.
func (r *Router) drainInflight(deadline time.Time) error {
	for r.inflight.Load() != 0 {
		//lint:ignore nosystime Time.After is a pure comparison; the clock read is sanctioned in now()
		if r.now().After(deadline) {
			return fmt.Errorf("fleet: %d routed submissions did not settle before the rebalance deadline",
				r.inflight.Load())
		}
		//lint:ignore nosystime pacing a poll on real in-flight TCP round trips
		time.Sleep(time.Millisecond)
	}
	return nil
}

// persistHandoffs writes each handoff unit to HandoffDir under its
// deterministic filename before anything is delivered.
func (r *Router) persistHandoffs(handoffs []*wire.Handoff) error {
	dir := r.cfg.HandoffDir
	if dir == "" || len(handoffs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: handoff dir: %w", err)
	}
	for _, h := range handoffs {
		b, err := json.Marshal(h)
		if err != nil {
			return fmt.Errorf("fleet: encoding handoff: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, h.Filename()), b, 0o644); err != nil {
			return fmt.Errorf("fleet: persisting handoff: %w", err)
		}
	}
	return nil
}

// dumpRetry dumps one donor shard, riding out supervised restarts.
func (r *Router) dumpRetry(i int, deadline time.Time) (*wire.ShardState, error) {
	for {
		state, err := r.DumpShard(i)
		if err == nil {
			return state, nil
		}
		//lint:ignore nosystime Time.After is a pure comparison; the clock read is sanctioned in now()
		if r.now().After(deadline) {
			return nil, err
		}
		r.cfg.Log.Warn("rebalance dump retrying", "shard", i, "err", err)
		//lint:ignore nosystime backoff between retries against a real restarting process
		time.Sleep(50 * time.Millisecond)
	}
}

// adminReply is the decoded outcome of a remap or adopt exchange.
type adminReply struct {
	Error   string `json:"error"`
	Retry   bool   `json:"retry"`
	Adopted int64  `json:"adopted"`
}

// adminRetry sends one admin line to a shard until it succeeds, the
// shard answers with a permanent error, or the deadline passes.
// Transport failures and retryable replies (an overloaded queue, a
// restart mid-exchange) back off and retry.
func (r *Router) adminRetry(shard int, line []byte, what string, deadline time.Time) (*adminReply, error) {
	var lastErr error
	for {
		rep, err := r.roundTrip(shard, line)
		if err == nil {
			var parsed adminReply
			if jerr := json.Unmarshal(rep, &parsed); jerr != nil {
				return nil, fmt.Errorf("%s reply from shard %d: %w", what, shard, jerr)
			}
			if parsed.Error == "" {
				return &parsed, nil
			}
			if !parsed.Retry {
				return nil, fmt.Errorf("%s rejected by shard %d: %s", what, shard, parsed.Error)
			}
			lastErr = fmt.Errorf("%s deferred by shard %d: %s", what, shard, parsed.Error)
		} else {
			lastErr = err
		}
		//lint:ignore nosystime Time.After is a pure comparison; the clock read is sanctioned in now()
		if r.now().After(deadline) {
			return nil, lastErr
		}
		r.cfg.Log.Warn("rebalance exchange retrying", "what", what, "shard", shard, "err", lastErr)
		//lint:ignore nosystime backoff between retries against a real restarting process
		time.Sleep(50 * time.Millisecond)
	}
}

// remapRetry installs the next map at a surviving shard. A shard that
// crashed after a successful remap restarts under the next map (its
// args were prepared first) and answers the retry with an idempotent
// success.
func (r *Router) remapRetry(i int, next wire.ShardMap, deadline time.Time) error {
	m, err := json.Marshal(next)
	if err != nil {
		return err
	}
	line := []byte(fmt.Sprintf(`{"type":"remap","map":%s}`, m))
	_, err = r.adminRetry(i, line, "remap", deadline)
	return err
}

// adoptRetry delivers one handoff unit to its target shard, returning
// how many messages the adoptee acknowledged ingesting (a retried
// delivery after a mid-adopt crash dedups to what was missing).
func (r *Router) adoptRetry(h *wire.Handoff, deadline time.Time) (int64, error) {
	b, err := json.Marshal(h)
	if err != nil {
		return 0, err
	}
	line := []byte(fmt.Sprintf(`{"type":"adopt","handoff":%s}`, b))
	rep, err := r.adminRetry(h.To, line, "adopt", deadline)
	if err != nil {
		return 0, err
	}
	return rep.Adopted, nil
}

// handleResize serves the router's admin resize verb: the operator (or
// the cluster runner's -resize-to hook) asks the fleet to rebalance to
// msg.Map.Shards/.Replicas; the epoch is the router's to assign. The
// resize runs synchronously on this connection's handler and answers
// with the ResizeReport.
func (r *Router) handleResize(conn net.Conn, msg *analyzerd.Message) {
	report, err := r.Resize(msg.Map.Shards, msg.Map.Replicas)
	if err != nil {
		r.replyf(conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	b, err := json.Marshal(report)
	if err != nil {
		r.replyf(conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	r.replyf(conn, "%s\n", b)
}
