package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/wire"
)

// rebalShard is the in-process stand-in for one supervised shard child:
// the live server, its durable directory, and the config its next
// restart boots under (PrepareShard rewrites it mid-rebalance, exactly
// like the Proc flag rewrite in the real fleet).
type rebalShard struct {
	srv *analyzerd.Server
	dir string
	m   wire.ShardMap
}

// rebalanceRun drives fleetStream through a router over live in-process
// shards, resizing from -> to after resizeAfter acked submissions and —
// when kill is non-nil — SIGKILL-style aborting that shard the moment
// the rebalance announces the kill's cut-point phase, restarting it on
// its WAL under whatever config a real supervisor would relaunch it
// with. Returns the drained merged bundle bytes, diagnosis JSON, and
// the resize report.
func rebalanceRun(t *testing.T, from, to, resizeAfter int, kill *chaos.RebalanceKill) (bundle, diag []byte, rep *ResizeReport) {
	t.Helper()
	m := wire.ShardMap{Shards: from}
	shs := make([]*rebalShard, from)
	addrs := make([]string, from)
	for i := range shs {
		shs[i] = &rebalShard{dir: t.TempDir(), m: m}
		shs[i].srv = startTestShard(t, m, i, shs[i].dir)
		addrs[i] = shs[i].srv.Addr()
	}

	var router *Router
	killed := false
	hooks := &RebalanceHooks{
		StartShard: func(i int, nm wire.ShardMap) (string, error) {
			for len(shs) <= i {
				shs = append(shs, nil)
			}
			sh := &rebalShard{dir: t.TempDir(), m: nm}
			sh.srv = startTestShard(t, nm, i, sh.dir)
			shs[i] = sh
			return sh.srv.Addr(), nil
		},
		PrepareShard: func(i int, nm wire.ShardMap) error {
			shs[i].m = nm // next restart boots under the new map
			return nil
		},
		StopShard: func(i int) {
			_ = shs[i].srv.Close()
			shs = shs[:i] // donors retire highest-index first
		},
		OnPhase: func(phase string) {
			if kill == nil || killed || phase != kill.Phase {
				return
			}
			killed = true
			sh := shs[kill.Shard]
			sh.srv.Abort() // SIGKILL stand-in: no drain, WAL abandoned
			sh.srv = startTestShard(t, sh.m, kill.Shard, sh.dir)
			router.SetShardAddr(kill.Shard, sh.srv.Addr())
		},
	}

	router, err := StartRouter("127.0.0.1:0", RouterConfig{
		Map: m, Addrs: addrs,
		Rebalance:  hooks,
		HandoffDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer func() {
		router.Close()
		for _, sh := range shs {
			_ = sh.srv.Close()
		}
	}()

	clients := map[string]*analyzerd.ReliableClient{}
	client := func(host string) *analyzerd.ReliableClient {
		if rc, ok := clients[host]; ok {
			return rc
		}
		rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
			ID: host, MaxAttempts: 20,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewReliableClient(%s): %v", host, err)
		}
		clients[host] = rc
		return rc
	}

	subs := fleetStream()
	send := func(lo, hi int) {
		for _, sub := range subs[lo:hi] {
			rc := client(sub.host)
			if err := sub.send(rc); err != nil {
				t.Fatalf("send from %s: %v", sub.host, err)
			}
			if err := rc.Flush(); err != nil {
				t.Fatalf("flush from %s: %v", sub.host, err)
			}
		}
	}
	send(0, resizeAfter)
	rep, err = router.Resize(to, 0)
	if err != nil {
		t.Fatalf("Resize(%d): %v", to, err)
	}
	if kill != nil && !killed {
		t.Fatalf("kill %+v never fired: phase not announced", *kill)
	}
	send(resizeAfter, len(subs))

	for _, rc := range clients {
		if err := rc.Close(); err != nil {
			t.Fatalf("client close: %v", err)
		}
	}

	states := make([]*wire.ShardState, 0, router.Shards())
	for i := 0; i < router.Shards(); i++ {
		state, err := router.DumpShard(i)
		if err != nil {
			t.Fatalf("DumpShard(%d): %v", i, err)
		}
		states = append(states, state)
	}
	b, _ := wire.MergeShardStates(states)
	var bb bytes.Buffer
	if err := b.Write(&bb); err != nil {
		t.Fatalf("bundle write: %v", err)
	}
	dj, err := json.Marshal(wire.FromDiagnosis(b.AnalyzeObs(nil)))
	if err != nil {
		t.Fatalf("diagnosis marshal: %v", err)
	}
	return bb.Bytes(), dj, rep
}

// resizeCut picks the submission index at which the rebalance tests
// trigger the resize: late enough that every host in the stream's first
// three quarters has live shard state, so the clients the 2<->3 ring
// delta reassigns are guaranteed to have messages to hand off (the
// MovedClients assertions below verify that, rather than assuming
// which hosts move).
func resizeCut() int {
	subs := fleetStream()
	cut := 0
	for i, s := range subs {
		if s.host <= "h08" {
			cut = i + 1
		}
	}
	return cut
}

// TestFleetResizeByteIdentity: growing 2->3 and shrinking 3->2
// mid-stream, with live handoff of every moved client, yields a merged
// bundle and diagnosis byte-identical to a fixed-map run that never
// resized — the rebalance is invisible in the data.
func TestFleetResizeByteIdentity(t *testing.T) {
	half := resizeCut()
	refBundle, refDiag := fleetRun(t, 2, nil)
	if !strings.Contains(string(refDiag), "critical_path") {
		t.Fatalf("reference diagnosis looks empty: %s", refDiag)
	}

	t.Run("grow-2-to-3", func(t *testing.T) {
		gotBundle, gotDiag, rep := rebalanceRun(t, 2, 3, half, nil)
		if !bytes.Equal(gotBundle, refBundle) {
			t.Errorf("merged bundle differs after grow:\n%s\nvs\n%s", gotBundle, refBundle)
		}
		if !bytes.Equal(gotDiag, refDiag) {
			t.Errorf("diagnosis differs after grow:\n%s\nvs\n%s", gotDiag, refDiag)
		}
		if rep.From != 2 || rep.To != 3 || rep.Epoch != 1 {
			t.Errorf("report = %+v, want From=2 To=3 Epoch=1", rep)
		}
		if len(rep.Donors) != 2 {
			t.Errorf("grow donors = %v, want both old shards", rep.Donors)
		}
		if rep.MovedClients == 0 || rep.MovedMessages == 0 {
			t.Errorf("grow moved nothing: %+v", rep)
		}
		if rep.Adopted != int64(rep.MovedMessages) {
			t.Errorf("adoptees ingested %d of %d moved messages", rep.Adopted, rep.MovedMessages)
		}
	})
	t.Run("shrink-3-to-2", func(t *testing.T) {
		gotBundle, gotDiag, rep := rebalanceRun(t, 3, 2, half, nil)
		if !bytes.Equal(gotBundle, refBundle) {
			t.Errorf("merged bundle differs after shrink:\n%s\nvs\n%s", gotBundle, refBundle)
		}
		if !bytes.Equal(gotDiag, refDiag) {
			t.Errorf("diagnosis differs after shrink:\n%s\nvs\n%s", gotDiag, refDiag)
		}
		if len(rep.Donors) != 1 || rep.Donors[0] != 2 {
			t.Errorf("shrink donors = %v, want just the removed shard", rep.Donors)
		}
		if rep.MovedClients == 0 {
			t.Errorf("shrink moved nothing: %+v", rep)
		}
	})
}

// TestFleetRebalanceKillAnyShardByteIdentity is the headline elastic
// robustness contract: SIGKILL any shard at any reachable cut point of
// a live rebalance — before the quiesce fence, during handoff delivery,
// or after the map flip — let recovery bring it back on its WAL under
// the config a supervisor would relaunch it with, and the drained
// merged bundle AND diagnosis are byte-identical to an unbroken
// fixed-map run's.
func TestFleetRebalanceKillAnyShardByteIdentity(t *testing.T) {
	half := resizeCut()
	refBundle, refDiag := fleetRun(t, 2, nil)

	for _, dir := range []struct {
		name     string
		from, to int
	}{
		{"grow", 2, 3},
		{"shrink", 3, 2},
	} {
		plan := chaos.NewWALFaults(11).RebalanceKills(dir.from, dir.to)
		if len(plan) == 0 {
			t.Fatalf("%s kill plan is empty", dir.name)
		}
		for _, kill := range plan {
			kill := kill
			t.Run(fmt.Sprintf("%s-kill-shard-%d-%s", dir.name, kill.Shard, kill.Phase), func(t *testing.T) {
				gotBundle, gotDiag, _ := rebalanceRun(t, dir.from, dir.to, half, &kill)
				if !bytes.Equal(gotBundle, refBundle) {
					t.Errorf("merged bundle differs after killing shard %d at %s:\n%s\nvs\n%s",
						kill.Shard, kill.Phase, gotBundle, refBundle)
				}
				if !bytes.Equal(gotDiag, refDiag) {
					t.Errorf("diagnosis differs after killing shard %d at %s",
						kill.Shard, kill.Phase)
				}
			})
		}
	}
}

// TestFleetResizeUnderLoad resizes while senders are still in flight:
// moved clients ride out the quiesce fence on retryable NACKs and every
// message lands exactly once — the merged bundle matches the unbroken
// fixed-map reference. (Primarily a -race exercise of the fence and the
// atomic map flip against live traffic.)
func TestFleetResizeUnderLoad(t *testing.T) {
	refBundle, _ := fleetRun(t, 2, nil)

	m := wire.ShardMap{Shards: 2}
	shs := make([]*rebalShard, 2)
	addrs := make([]string, 2)
	for i := range shs {
		shs[i] = &rebalShard{dir: t.TempDir(), m: m}
		shs[i].srv = startTestShard(t, m, i, shs[i].dir)
		addrs[i] = shs[i].srv.Addr()
	}
	router, err := StartRouter("127.0.0.1:0", RouterConfig{
		Map: m, Addrs: addrs,
		Rebalance: &RebalanceHooks{
			StartShard: func(i int, nm wire.ShardMap) (string, error) {
				for len(shs) <= i {
					shs = append(shs, nil)
				}
				sh := &rebalShard{dir: t.TempDir(), m: nm}
				sh.srv = startTestShard(t, nm, i, sh.dir)
				shs[i] = sh
				return sh.srv.Addr(), nil
			},
		},
	})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer func() {
		router.Close()
		for _, sh := range shs {
			_ = sh.srv.Close()
		}
	}()

	// One sender goroutine per host keeps traffic crossing the fence
	// while the main goroutine resizes.
	byHost := map[string][]submission{}
	var hosts []string
	for _, sub := range fleetStream() {
		if _, ok := byHost[sub.host]; !ok {
			hosts = append(hosts, sub.host)
		}
		byHost[sub.host] = append(byHost[sub.host], sub)
	}
	errs := make(chan error, len(hosts))
	var wg sync.WaitGroup
	for _, host := range hosts {
		wg.Add(1)
		go func(host string, subs []submission) {
			defer wg.Done()
			rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
				ID: host, MaxAttempts: 40,
				BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
			})
			if err != nil {
				errs <- fmt.Errorf("%s: %v", host, err)
				return
			}
			for _, sub := range subs {
				if err := sub.send(rc); err != nil {
					errs <- fmt.Errorf("%s: %v", host, err)
					return
				}
				if err := rc.Flush(); err != nil {
					errs <- fmt.Errorf("%s flush: %v", host, err)
					return
				}
			}
			errs <- rc.Close()
		}(host, byHost[host])
	}

	if _, err := router.Resize(3, 0); err != nil {
		t.Fatalf("Resize under load: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("sender failed across the rebalance: %v", err)
		}
	}

	states := make([]*wire.ShardState, 0, router.Shards())
	for i := 0; i < router.Shards(); i++ {
		state, err := router.DumpShard(i)
		if err != nil {
			t.Fatalf("DumpShard(%d): %v", i, err)
		}
		states = append(states, state)
	}
	b, _ := wire.MergeShardStates(states)
	var bb bytes.Buffer
	if err := b.Write(&bb); err != nil {
		t.Fatalf("bundle write: %v", err)
	}
	if !bytes.Equal(bb.Bytes(), refBundle) {
		t.Errorf("merged bundle differs after resize under load:\n%s\nvs\n%s", bb.Bytes(), refBundle)
	}
}
