package fleet

import (
	"fmt"
	"testing"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/wire"
)

func TestTenantOf(t *testing.T) {
	c := &TenantConfig{Rate: 1, Overrides: map[string]string{"legacy-host": "team-x"}}
	c.defaults()
	for _, tc := range []struct {
		client, want string
	}{
		{"team-a/host-3", "team-a"},
		{"team-a/h/with/slashes", "team-a"},
		{"solo", "solo"},          // no separator: its own tenant
		{"/anon", "/anon"},        // leading separator: no usable prefix
		{"legacy-host", "team-x"}, // explicit override wins
		{"", ""},
	} {
		if got := c.TenantOf(tc.client); got != tc.want {
			t.Errorf("TenantOf(%q) = %q, want %q", tc.client, got, tc.want)
		}
	}
	custom := &TenantConfig{Rate: 1, Separator: ":"}
	custom.defaults()
	if got := custom.TenantOf("team-b:host-1"); got != "team-b" {
		t.Errorf("custom separator: got %q, want team-b", got)
	}
}

// TestTenantBucketTake pins the refill arithmetic to a fixed clock.
func TestTenantBucketTake(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := &tenantBucket{tokens: 2, refilled: t0}
	if !b.take(t0, 1, 2) || !b.take(t0, 1, 2) {
		t.Fatal("burst of 2 should admit 2 back-to-back")
	}
	if b.take(t0, 1, 2) {
		t.Fatal("third instant submission should be limited")
	}
	// Half a second refills half a token: still short of the whole
	// token a submission costs.
	if b.take(t0.Add(500*time.Millisecond), 1, 2) {
		t.Fatal("half-refilled bucket should still limit")
	}
	if !b.take(t0.Add(1500*time.Millisecond), 1, 2) {
		t.Fatal("full second of refill should admit")
	}
	// A long idle period caps at Burst, not unbounded credit.
	b2 := &tenantBucket{tokens: 0, refilled: t0}
	for i := 0; i < 2; i++ {
		if !b2.take(t0.Add(time.Hour), 1, 2) {
			t.Fatalf("after idle, take %d should be admitted", i)
		}
	}
	if b2.take(t0.Add(time.Hour), 1, 2) {
		t.Fatal("idle credit must cap at Burst")
	}
}

// TestTenantQuotaIsolation is the quota regression contract: a 32-client
// tenant hammering the router cannot exceed its budget — it degrades to
// retry-paced throughput with zero loss — while a quiet tenant sharing
// the fleet is never limited.
func TestTenantQuotaIsolation(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	srvs := make([]*analyzerd.Server, 2)
	addrs := make([]string, 2)
	for i := range srvs {
		srvs[i] = startTestShard(t, m, i, "")
		addrs[i] = srvs[i].Addr()
	}
	router, err := StartRouter("127.0.0.1:0", RouterConfig{
		Map: m, Addrs: addrs,
		Tenants: &TenantConfig{Rate: 50, Burst: 4},
	})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer func() {
		router.Close()
		for _, s := range srvs {
			_ = s.Close()
		}
	}()

	send := func(id string, i int) {
		rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
			ID: id, MaxAttempts: 40,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewReliableClient(%s): %v", id, err)
		}
		if err := rc.SendCF(hostFlow(i)); err != nil {
			t.Fatalf("%s send: %v", id, err)
		}
		if err := rc.Close(); err != nil {
			t.Fatalf("%s close: %v", id, err)
		}
	}

	// The hog's 32 clients submit back-to-back — far beyond a
	// 4-deep/50-per-second bucket, so the quota gate must push back —
	// with the quiet tenant interleaved throughout.
	for i := 0; i < 32; i++ {
		send(fmt.Sprintf("hog/c%02d", i), i)
		if i%8 == 0 {
			send(fmt.Sprintf("quiet/q%02d", i/8), 100+i)
		}
	}

	accounts := router.TenantAccounts()
	byName := map[string]wire.TenantAccount{}
	for _, a := range accounts {
		byName[a.Tenant] = a
	}
	hog, quiet := byName["hog"], byName["quiet"]
	if hog.Clients != 32 || hog.CFs != 32 {
		t.Errorf("hog account = %+v, want 32 clients / 32 flows through", hog)
	}
	if hog.Limited == 0 {
		t.Errorf("hog was never limited: %+v (quota gate not engaging)", hog)
	}
	if quiet.Clients != 4 || quiet.CFs != 4 {
		t.Errorf("quiet account = %+v, want all 4 submissions through", quiet)
	}
	if quiet.Limited != 0 {
		t.Errorf("quiet tenant was limited %d times by the hog's saturation", quiet.Limited)
	}
	if st := router.Stats(); st.TenantLimited != hog.Limited {
		t.Errorf("router TenantLimited = %d, accounts say %d", st.TenantLimited, hog.Limited)
	}
	if st := router.Stats(); st.Rejected != 0 || st.ShardDown != 0 {
		t.Errorf("quota NACKs leaked into other failure counters: %+v", st)
	}
}

// TestTenantAccountsWithoutQuotas: accounting still groups by the
// default prefix convention when no TenantConfig is set, and nothing is
// ever limited.
func TestTenantAccountsWithoutQuotas(t *testing.T) {
	m := wire.ShardMap{Shards: 1}
	srv := startTestShard(t, m, 0, "")
	router, err := StartRouter("127.0.0.1:0", RouterConfig{Map: m, Addrs: []string{srv.Addr()}})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer func() {
		router.Close()
		_ = srv.Close()
	}()

	for i, id := range []string{"team-a/h0", "team-a/h1", "team-b/h0", "solo"} {
		rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
			ID: id, MaxAttempts: 10,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rc.SendCF(hostFlow(i)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := rc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	accounts := router.TenantAccounts()
	if len(accounts) != 3 {
		t.Fatalf("accounts = %+v, want team-a, team-b, solo", accounts)
	}
	if accounts[0].Tenant != "solo" || accounts[1].Tenant != "team-a" || accounts[2].Tenant != "team-b" {
		t.Fatalf("accounts not sorted by tenant: %+v", accounts)
	}
	if accounts[1].Clients != 2 || accounts[1].CFs != 2 {
		t.Errorf("team-a = %+v, want 2 clients / 2 flows", accounts[1])
	}
	for _, a := range accounts {
		if a.Limited != 0 {
			t.Errorf("tenant %s limited with quotas disabled: %+v", a.Tenant, a)
		}
	}
}
