package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// procLog captures supervisor events for assertions.
type procLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *procLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *procLog) count(substr string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, s := range l.lines {
		if strings.Contains(s, substr) {
			n++
		}
	}
	return n
}

// script writes an executable shell script into the test dir.
func script(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "child.sh")
	if err := os.WriteFile(path, []byte("#!/bin/sh\n"+body), 0o755); err != nil {
		t.Fatalf("write script: %v", err)
	}
	return path
}

func TestProcCleanExitEndsSupervision(t *testing.T) {
	var lg procLog
	p, err := StartProc(ProcConfig{
		Path:           "/bin/sh",
		Args:           []string{script(t, `echo "svc listening on 127.0.0.1:9"; exit 0`)},
		AnnouncePrefix: "svc listening on ",
		Backoff:        time.Millisecond,
		Logf:           lg.logf,
	})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	exit := p.Wait()
	if exit.Code != 0 || exit.CrashLoop || exit.Restarts != 0 {
		t.Errorf("exit = %+v, want clean 0 with no restarts", exit)
	}
	if got := p.Addr(); got != "127.0.0.1:9" {
		t.Errorf("Addr = %q, want the announced address", got)
	}
	if n := lg.count("restarting in"); n != 0 {
		t.Errorf("clean exit logged %d restarts", n)
	}
}

func TestProcCrashLoopGivesUp(t *testing.T) {
	var lg procLog
	p, err := StartProc(ProcConfig{
		Path:        "/bin/sh",
		Args:        []string{script(t, `exit 1`)},
		Backoff:     time.Millisecond,
		CrashWindow: time.Second,
		CrashLoops:  3,
		Logf:        lg.logf,
	})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	exit := p.Wait()
	if exit.Code != 1 || !exit.CrashLoop {
		t.Errorf("exit = %+v, want code 1 with CrashLoop", exit)
	}
	if exit.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2 (third crash gives up)", exit.Restarts)
	}
	if n := lg.count("crash loop: 3 consecutive"); n != 1 {
		t.Errorf("crash-loop log appeared %d times, want 1", n)
	}
	if n := lg.count("restarting in"); n != 2 {
		t.Errorf("restart log appeared %d times, want 2", n)
	}
}

// healthyScript crashes immediately on every run except the second, which
// lives for 500ms — longer than the crash window but possibly shorter
// than HealthyAfter. The run count lands in the state file.
func healthyScript(t *testing.T) (path, state string) {
	t.Helper()
	state = filepath.Join(t.TempDir(), "runs")
	path = script(t, `
f="$1"
n=$(cat "$f" 2>/dev/null || echo 0)
echo $((n+1)) > "$f"
if [ "$n" -eq 1 ]; then sleep 0.5; fi
exit 1
`)
	return path, state
}

func runHealthy(t *testing.T, healthyAfter time.Duration) (runs int, exit ProcExit) {
	t.Helper()
	path, state := healthyScript(t)
	p, err := StartProc(ProcConfig{
		Path:         "/bin/sh",
		Args:         []string{path, state},
		Backoff:      time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		CrashWindow:  300 * time.Millisecond,
		CrashLoops:   3,
		HealthyAfter: healthyAfter,
	})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	exit = p.Wait()
	raw, err := os.ReadFile(state)
	if err != nil {
		t.Fatalf("read state: %v", err)
	}
	if _, err := fmt.Sscanf(string(raw), "%d", &runs); err != nil {
		t.Fatalf("parse state %q: %v", raw, err)
	}
	return runs, exit
}

// TestProcHealthyAfterAccumulates is the crash-loop-counter fix: a child
// that outlives the crash window but not HealthyAfter must NOT be
// forgiven — its earlier crashes still count, so the loop gives up after
// 3 fast crashes total (runs 1, 3, 4; run 2 is the 500ms limper).
func TestProcHealthyAfterAccumulates(t *testing.T) {
	runs, exit := runHealthy(t, time.Hour)
	if !exit.CrashLoop {
		t.Fatalf("exit = %+v, want a crash loop", exit)
	}
	if runs != 4 {
		t.Errorf("child ran %d times, want 4 (limping run must not reset the counter)", runs)
	}
}

// TestProcHealthyAfterResets is the companion: when the limping run DOES
// clear HealthyAfter, the counter resets and three more fast crashes are
// needed before giving up (5 runs total).
func TestProcHealthyAfterResets(t *testing.T) {
	runs, exit := runHealthy(t, 400*time.Millisecond)
	if !exit.CrashLoop {
		t.Fatalf("exit = %+v, want a crash loop", exit)
	}
	if runs != 5 {
		t.Errorf("child ran %d times, want 5 (healthy run resets the counter)", runs)
	}
}

func TestProcKillRestartsImmediately(t *testing.T) {
	var lg procLog
	p, err := StartProc(ProcConfig{
		Path:           "/bin/sh",
		Args:           []string{script(t, `echo "svc listening on pid-$$"; exec sleep 60`)},
		AnnouncePrefix: "svc listening on ",
		Backoff:        time.Second, // a crash restart would be visibly slow
		CrashWindow:    time.Millisecond,
		CrashLoops:     2,
		Logf:           lg.logf,
	})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	if err := p.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	first := p.Addr()
	for i := 0; i < 3; i++ {
		p.Kill()
		deadline := time.Now().Add(10 * time.Second) //lint:ignore nosystime test deadline
		for p.Restarts() != i+1 || p.Ready() != nil {
			if time.Now().After(deadline) { //lint:ignore nosystime test deadline
				t.Fatalf("kill %d: child not back after 10s (restarts=%d)", i, p.Restarts())
			}
			time.Sleep(5 * time.Millisecond) //lint:ignore nosystime polling a real child restart
		}
	}
	// Three kills with CrashLoops=2: operator kills must not have fed the
	// crash-loop counter or waited out the 1s backoff.
	if got := p.Addr(); got == first {
		t.Errorf("Addr unchanged after restarts (announce not re-learned)")
	}
	if n := lg.count("crash loop"); n != 0 {
		t.Errorf("operator kills tripped the crash-loop detector")
	}
	p.Terminate(syscall.SIGKILL)
	p.Wait()
}

func TestProcHoldParksUntilRelease(t *testing.T) {
	p, err := StartProc(ProcConfig{
		Path:           "/bin/sh",
		Args:           []string{script(t, `echo "svc listening on pid-$$"; exec sleep 60`)},
		AnnouncePrefix: "svc listening on ",
		Backoff:        time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	if err := p.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	held := p.Addr()
	p.Hold()
	time.Sleep(100 * time.Millisecond) //lint:ignore nosystime giving a buggy restart time to happen
	if got := p.Restarts(); got != 0 {
		t.Fatalf("held proc restarted %d times", got)
	}
	p.Release()
	deadline := time.Now().Add(10 * time.Second) //lint:ignore nosystime test deadline
	for p.Restarts() != 1 || p.Ready() != nil || p.Addr() == held {
		if time.Now().After(deadline) { //lint:ignore nosystime test deadline
			t.Fatalf("released proc not back after 10s")
		}
		time.Sleep(5 * time.Millisecond) //lint:ignore nosystime polling a real child restart
	}
	p.Terminate(syscall.SIGKILL)
	p.Wait()
}

func TestRelistenArgs(t *testing.T) {
	args := []string{"-listen", "127.0.0.1:0", "-v", "-listen", "0.0.0.0:0"}
	got := relistenArgs(args, "-listen", "127.0.0.1:7391")
	want := []string{"-listen", "127.0.0.1:7391", "-v", "-listen", "127.0.0.1:7391"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("relistenArgs = %v, want %v", got, want)
		}
	}
	if args[1] != "127.0.0.1:0" {
		t.Errorf("relistenArgs mutated its input")
	}
	if out := relistenArgs(args, "", "x"); &out[0] != &args[0] {
		t.Errorf("empty flag should return the input unchanged")
	}
}
