package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/wire"
)

// startTestShard runs an in-process fleet shard with a WAL so an aborted
// incarnation recovers.
func startTestShard(t *testing.T, m wire.ShardMap, index int, dir string) *analyzerd.Server {
	t.Helper()
	cfg := analyzerd.DefaultServerConfig()
	cfg.Shard = &analyzerd.ShardConfig{Map: m, Index: index}
	if dir != "" {
		cfg.Durability = &analyzerd.DurabilityConfig{
			Dir: dir, Fsync: analyzerd.FsyncAlways, SnapshotEvery: 3,
		}
	}
	srv, err := analyzerd.ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	return srv
}

// submission is one message from one named host agent.
type submission struct {
	host string
	send func(rc *analyzerd.ReliableClient) error
}

func hostFlow(i int) fabric.FlowKey {
	return fabric.FlowKey{
		Src: topo.NodeID(i + 1), Dst: topo.NodeID(i + 2),
		SrcPort: 7, DstPort: 8, Proto: 17,
	}
}

// fleetStream is the fixed 12-host submission stream: every host
// registers its collective flow and its step record, and every third host
// also files a telemetry report, so the merged diagnosis has real
// provenance to chew on.
func fleetStream() []submission {
	var subs []submission
	for i := 0; i < 12; i++ {
		host := fmt.Sprintf("h%02d", i)
		cf := hostFlow(i)
		subs = append(subs, submission{host, func(rc *analyzerd.ReliableClient) error {
			return rc.SendCF(cf)
		}})
		rec := collective.StepRecord{
			Host: topo.NodeID(i + 1), Step: i % 4, Flow: cf,
			Bytes: int64(1000 * (i + 1)), Start: 0, End: simtime.Time(100 * (i + 1)),
		}
		subs = append(subs, submission{host, func(rc *analyzerd.ReliableClient) error {
			return rc.SendStep(rec)
		}})
		if i%3 == 0 {
			rep := &telemetry.Report{
				At:          simtime.Time(50 * (i + 1)),
				TriggeredBy: cf,
				HopsPolled:  3,
				Flows: []telemetry.FlowRecord{{
					Switch: topo.NodeID(100 + i), Port: 1, Flow: cf,
					Pkts: int64(10 * (i + 1)), Bytes: int64(500 * (i + 1)),
					Wait: map[fabric.FlowKey]int64{hostFlow((i + 1) % 12): int64(i + 1)},
				}},
			}
			subs = append(subs, submission{host, func(rc *analyzerd.ReliableClient) error {
				return rc.SendReport(rep)
			}})
		}
	}
	return subs
}

// fleetRun drives the full stream through a router over live in-process
// shards, SIGKILL-style aborting and restarting shards per the kill plan,
// and returns the drained merged bundle bytes and diagnosis JSON.
func fleetRun(t *testing.T, shards int, kills []chaos.ShardKill) (bundle, diag []byte) {
	t.Helper()
	m := wire.ShardMap{Shards: shards}
	srvs := make([]*analyzerd.Server, shards)
	dirs := make([]string, shards)
	addrs := make([]string, shards)
	for i := range srvs {
		dirs[i] = t.TempDir()
		srvs[i] = startTestShard(t, m, i, dirs[i])
		addrs[i] = srvs[i].Addr()
	}
	router, err := StartRouter("127.0.0.1:0", RouterConfig{Map: m, Addrs: addrs})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer func() {
		router.Close()
		for _, s := range srvs {
			_ = s.Close()
		}
	}()

	clients := map[string]*analyzerd.ReliableClient{}
	client := func(host string) *analyzerd.ReliableClient {
		if rc, ok := clients[host]; ok {
			return rc
		}
		rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
			ID: host, MaxAttempts: 20,
			BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewReliableClient(%s): %v", host, err)
		}
		clients[host] = rc
		return rc
	}

	acked, ki := 0, 0
	for _, sub := range fleetStream() {
		rc := client(sub.host)
		if err := sub.send(rc); err != nil {
			t.Fatalf("send from %s: %v", sub.host, err)
		}
		if err := rc.Flush(); err != nil {
			t.Fatalf("flush from %s: %v", sub.host, err)
		}
		acked++
		for ki < len(kills) && kills[ki].AfterAcked <= acked {
			i := kills[ki].Shard
			srvs[i].Abort() // SIGKILL stand-in: no drain, WAL abandoned
			srvs[i] = startTestShard(t, m, i, dirs[i])
			router.SetShardAddr(i, srvs[i].Addr())
			ki++
		}
	}
	for _, rc := range clients {
		if err := rc.Close(); err != nil {
			t.Fatalf("client close: %v", err)
		}
	}

	states := make([]*wire.ShardState, 0, shards)
	for i := 0; i < shards; i++ {
		state, err := router.DumpShard(i)
		if err != nil {
			t.Fatalf("DumpShard(%d): %v", i, err)
		}
		states = append(states, state)
	}
	b, _ := wire.MergeShardStates(states)
	var bb bytes.Buffer
	if err := b.Write(&bb); err != nil {
		t.Fatalf("bundle write: %v", err)
	}
	dj, err := json.Marshal(wire.FromDiagnosis(b.AnalyzeObs(nil)))
	if err != nil {
		t.Fatalf("diagnosis marshal: %v", err)
	}
	return bb.Bytes(), dj
}

// TestFleetKillAnyShardByteIdentity is the headline robustness contract:
// SIGKILL any single shard mid-ingest (and, in the final run, every shard
// in turn), let recovery bring it back on its WAL, and the drained merged
// bundle AND diagnosis are byte-identical to an unbroken run's.
func TestFleetKillAnyShardByteIdentity(t *testing.T) {
	const shards = 4
	total := len(fleetStream())
	refBundle, refDiag := fleetRun(t, shards, nil)
	if !strings.Contains(string(refDiag), "critical_path") {
		t.Fatalf("reference diagnosis looks empty: %s", refDiag)
	}

	plan := chaos.NewWALFaults(7).ShardKills(shards, total-1)
	if len(plan) != shards {
		t.Fatalf("kill plan covers %d shards, want %d", len(plan), shards)
	}
	for _, kill := range plan {
		t.Run(fmt.Sprintf("kill-shard-%d-after-%d", kill.Shard, kill.AfterAcked), func(t *testing.T) {
			gotBundle, gotDiag := fleetRun(t, shards, []chaos.ShardKill{kill})
			if !bytes.Equal(gotBundle, refBundle) {
				t.Errorf("merged bundle differs after killing shard %d:\n%s\nvs\n%s",
					kill.Shard, gotBundle, refBundle)
			}
			if !bytes.Equal(gotDiag, refDiag) {
				t.Errorf("diagnosis differs after killing shard %d:\n%s\nvs\n%s",
					kill.Shard, gotDiag, refDiag)
			}
		})
	}
	t.Run("kill-every-shard", func(t *testing.T) {
		gotBundle, gotDiag := fleetRun(t, shards, plan)
		if !bytes.Equal(gotBundle, refBundle) || !bytes.Equal(gotDiag, refDiag) {
			t.Errorf("output differs after killing all %d shards in turn", shards)
		}
	})
}

// TestFleetDegradedGather: a shard that dies and stays down must degrade
// the merged diagnosis (counted missing inputs, confidence < 1), not fail
// the drain. This is the in-process half of the Fleet.Drain contract,
// exercised at the router layer it is built on.
func TestFleetDegradedGather(t *testing.T) {
	const shards = 3
	m := wire.ShardMap{Shards: shards}
	srvs := make([]*analyzerd.Server, shards)
	addrs := make([]string, shards)
	for i := range srvs {
		srvs[i] = startTestShard(t, m, i, "")
		addrs[i] = srvs[i].Addr()
		defer srvs[i].Close()
	}
	router, err := StartRouter("127.0.0.1:0", RouterConfig{Map: m, Addrs: addrs})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer router.Close()

	ring, err := wire.NewHashRing(m)
	if err != nil {
		t.Fatalf("NewHashRing: %v", err)
	}
	clients := map[string]*analyzerd.ReliableClient{}
	for _, sub := range fleetStream() {
		rc, ok := clients[sub.host]
		if !ok {
			var err error
			rc, err = analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
				ID: sub.host, MaxAttempts: 5, BackoffBase: time.Millisecond,
			})
			if err != nil {
				t.Fatalf("client: %v", err)
			}
			clients[sub.host] = rc
		}
		if err := sub.send(rc); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for _, rc := range clients {
		if err := rc.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	// Kill the shard owning h00 and leave it down.
	dead := ring.Owner("h00")
	srvs[dead].Abort()

	tallies := router.Tallies()
	if tallies[dead].Total() == 0 {
		t.Fatalf("router never tallied anything for shard %d, which owns h00", dead)
	}
	var states []*wire.ShardState
	missedRecords, missedReports := 0, 0
	for i := 0; i < shards; i++ {
		state, err := router.DumpShard(i)
		if err != nil {
			if i != dead {
				t.Fatalf("DumpShard(%d): %v", i, err)
			}
			missedRecords += tallies[i].Records
			missedReports += tallies[i].Reports
			continue
		}
		if i == dead {
			t.Fatalf("DumpShard(%d) succeeded on a dead shard", i)
		}
		states = append(states, state)
	}
	b, stats := wire.MergeShardStates(states)
	if stats.Shards != shards-1 {
		t.Errorf("merged %d shards, want %d", stats.Shards, shards-1)
	}
	diag := b.AnalyzeDegraded(nil, missedRecords, missedReports)
	if diag.Confidence >= 1 {
		t.Errorf("Confidence = %v, want < 1 for a degraded gather missing %d records, %d reports",
			diag.Confidence, missedRecords, missedReports)
	}
}

// TestRouterRejectsUnroutableLines pins the router's refusal set: lines
// it could never relay an outcome for are answered with a hard error, not
// silently swallowed or guessed at.
func TestRouterRejectsUnroutableLines(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	router, err := StartRouter("127.0.0.1:0", RouterConfig{Map: m})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer router.Close()
	conn, err := net.Dial("tcp", router.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	cases := []struct {
		name, line string
	}{
		{"malformed", `{not json`},
		{"dump", `{"type":"dump"}`},
		{"unnamed", `{"type":"cf","cf":{"src":1,"dst":2,"src_port":7,"dst_port":8,"proto":17},"seq":1}`},
		{"unsequenced", `{"type":"cf","cf":{"src":1,"dst":2,"src_port":7,"dst_port":8,"proto":17},"client":"h00"}`},
	}
	for _, tc := range cases {
		if _, err := fmt.Fprintln(conn, tc.line); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		rep, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: read: %v", tc.name, err)
		}
		var parsed struct {
			Error string `json:"error"`
			Nak   int64  `json:"nak"`
		}
		if err := json.Unmarshal([]byte(rep), &parsed); err != nil || parsed.Error == "" {
			t.Errorf("%s: reply %q, want a hard error", tc.name, rep)
		}
		if parsed.Nak != 0 {
			t.Errorf("%s: reply %q is a NACK; rejections must not invite a retry", tc.name, rep)
		}
	}
	if got := router.Stats().Rejected; got != int64(len(cases)) {
		t.Errorf("Rejected = %d, want %d", got, len(cases))
	}
}

// TestRouterShardDownNacksRetryably: with no shard reachable, a sequenced
// submission gets {"nak":seq,...,"retry":true} so the reliable client
// backs off and resubmits instead of dropping the message.
func TestRouterShardDownNacksRetryably(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	router, err := StartRouter("127.0.0.1:0", RouterConfig{Map: m})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer router.Close()

	rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
		ID: "h00", MaxAttempts: 3, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := rc.SendCF(hostFlow(0)); err != nil {
		t.Fatalf("SendCF: %v", err)
	}
	err = rc.Flush()
	if err == nil {
		t.Fatal("Flush succeeded with every shard down")
	}
	if errors.Is(err, analyzerd.ErrRedirected) {
		t.Fatalf("Flush = %v; shard-down must be a retryable NACK, not a redirect", err)
	}
	if rc.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (message retained for resubmission)", rc.Pending())
	}
	if got := router.Stats().ShardDown; got < 3 {
		t.Errorf("ShardDown = %d, want >= 3 (one per attempt)", got)
	}
}

// TestRouterRelaysMovedNack: a misassembled fleet (a shard daemon running
// with the wrong index) moved-NACKs disowned clients; the router relays
// that verbatim and the reliable client surfaces ErrRedirected — the
// misconfiguration is loud, not lost.
func TestRouterRelaysMovedNack(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	// Both daemons claim index 0: whichever shard 1's clients land on
	// will disown them.
	s0 := startTestShard(t, m, 0, "")
	defer s0.Close()
	s1 := startTestShard(t, m, 0, "")
	defer s1.Close()
	router, err := StartRouter("127.0.0.1:0", RouterConfig{
		Map: m, Addrs: []string{s0.Addr(), s1.Addr()},
	})
	if err != nil {
		t.Fatalf("StartRouter: %v", err)
	}
	defer router.Close()

	ring, err := wire.NewHashRing(m)
	if err != nil {
		t.Fatalf("NewHashRing: %v", err)
	}
	disowned := ""
	for i := 0; i < 1024 && disowned == ""; i++ {
		if name := fmt.Sprintf("h%03d", i); ring.Owner(name) == 1 {
			disowned = name
		}
	}
	rc, err := analyzerd.NewReliableClient(router.Addr(), analyzerd.ClientConfig{
		ID: disowned, MaxAttempts: 2, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := rc.SendCF(hostFlow(0)); err != nil {
		t.Fatalf("SendCF: %v", err)
	}
	if err := rc.Flush(); !errors.Is(err, analyzerd.ErrRedirected) {
		t.Fatalf("Flush = %v, want ErrRedirected relayed through the router", err)
	}
}
