package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

// RouterConfig tunes the fleet's ingest tier.
type RouterConfig struct {
	// Map is the fleet-wide consistent-hash shard map; it must match the
	// ShardConfig of every shard daemon. Required. A live Resize replaces
	// it (with a bumped Epoch) without restarting the router.
	Map wire.ShardMap
	// Addrs are the shard listen addresses by index; entries may start
	// empty (a not-yet-announced shard routes as unavailable) and are
	// updated via SetShardAddr as supervisors learn them. len(Addrs) must
	// equal Map.Shards when non-nil.
	Addrs []string
	// DialTimeout bounds one shard dial (default 2s); ReplyTimeout bounds
	// one forwarded round trip (default 10s).
	DialTimeout  time.Duration
	ReplyTimeout time.Duration
	// RebalanceTimeout bounds each retried shard exchange (dump, adopt,
	// remap) during a live Resize — long enough to ride out a SIGKILLed
	// shard's supervised restart (default 30s).
	RebalanceTimeout time.Duration
	// MaxLineBytes caps one client protocol line (default 16 MiB).
	MaxLineBytes int
	// Tenants, when set, applies per-tenant token-bucket quotas to ingest
	// (and groups the drain accounting by tenant).
	Tenants *TenantConfig
	// Rebalance supplies the process-level hooks a live Resize needs
	// (start/prepare/stop shard daemons). Nil disables Resize.
	Rebalance *RebalanceHooks
	// HandoffDir, when set, persists every handoff unit a Resize builds
	// as a deterministic JSON file (wire.Handoff.Filename) before it is
	// delivered — the auditable record of what moved where.
	HandoffDir string
	// OnAcked, when set, observes the cumulative count of acknowledged
	// submissions after each ack is folded in. Called without router
	// locks held; keep it fast or hand off to a goroutine.
	OnAcked func(total int64)
	// Now overrides the wall clock for the tenant buckets and rebalance
	// deadlines (tests); nil uses the system clock.
	Now func() time.Time
	// Log receives routing warnings; nil discards. Metrics, when set,
	// publishes the router counters (including a per-shard CounterSet of
	// forwarded messages and lazy per-tenant quota gauges).
	Log     *slog.Logger
	Metrics *obs.Registry
}

// RouterStats counts the router's work. Cheap snapshot via Stats().
type RouterStats struct {
	// Forwarded counts messages relayed to a shard (including retried
	// duplicates of the same seq).
	Forwarded int64
	// Rejected counts lines the router refused outright: malformed,
	// unnamed, unsequenced, or misdirected verbs.
	Rejected int64
	// ShardDown counts retryable NACKs issued because the owning shard
	// could not be reached; the reliable client backs off and resubmits,
	// so these are delays, not losses.
	ShardDown int64
	// TenantLimited counts retryable NACKs issued by the per-tenant
	// quota gate.
	TenantLimited int64
	// Quiesced counts retryable NACKs issued to moved clients while a
	// rebalance had them fenced.
	Quiesced int64
	// Rerouted counts messages re-forwarded once after a shard answered
	// with a moved NACK (the shard's map was ahead of the router's).
	Rerouted int64
	// Resizes counts completed live rebalances.
	Resizes int64
}

// ShardTally is the router's account of what one shard acknowledged, by
// payload type, with resubmitted duplicates counted once. When a shard is
// unreachable at drain time, its tally is exactly what the merged
// diagnosis is missing — the degraded-coverage input. After a rebalance
// the tallies follow the moved clients: acked work is attributed to the
// client's current owner, because that is the shard whose dump now
// carries it.
type ShardTally struct {
	Records int
	Reports int
	CFs     int
}

// Total sums the tally.
func (t ShardTally) Total() int { return t.Records + t.Reports + t.CFs }

// shardLink is one serialized connection to a shard: a single in-flight
// request per shard keeps the newline-framed reply stream unambiguous
// when many client connections multiplex onto it.
type shardLink struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	br   *bufio.Reader
}

// seqType is one forwarded-but-unacked message identity.
type seqType struct {
	seq int64
	typ string
}

// clientTally deduplicates ack accounting per client: pending holds
// forwarded seqs (ascending) awaiting their cumulative ack, counted is
// the highwater already folded into tally.
type clientTally struct {
	counted int64
	pending []seqType
	tally   ShardTally
}

// Router is the fleet's thin ingest tier: it speaks the same seq/ack wire
// protocol as a shard daemon, consistent-hashes each named client onto
// its owning shard, relays the shard's replies verbatim, and answers with
// a retryable NACK when the shard is down so the reliable client's
// resubmission machinery carries submissions across shard failover. A
// live Resize swaps the shard map underneath it: moved clients are
// fenced with retryable NACKs while their state is handed off, then
// re-admitted under the new map.
type Router struct {
	cfg RouterConfig
	ln  net.Listener

	// rmu guards the routable topology: the installed map/ring, the
	// shard links, and the rebalance fence. Lock order: rmu before tmu
	// or qmu; never the reverse.
	rmu       sync.RWMutex
	cur       wire.ShardMap
	ring      *wire.HashRing
	links     []*shardLink
	quiesce   func(client string) bool // non-nil mid-rebalance
	forwarded []*obs.Counter           // per-shard, when Metrics is set

	// inflight counts routed submissions between passing the fence and
	// completing their shard round trip; Resize waits for it to drain
	// after installing the fence, so a donor dump cannot miss a message
	// that was already past the gate.
	inflight atomic.Int64

	resizeMu sync.Mutex // serializes live resizes

	mu      sync.Mutex
	conns   map[net.Conn]bool
	stopped bool
	wg      sync.WaitGroup

	tmu     sync.Mutex
	tallies map[string]*clientTally
	stats   RouterStats
	acked   int64 // cumulative acked submissions (OnAcked feed)

	qmu     sync.Mutex
	tenants map[string]*tenantBucket
}

// StartRouter binds the router and begins accepting clients.
func StartRouter(addr string, cfg RouterConfig) (*Router, error) {
	ring, err := wire.NewHashRing(cfg.Map)
	if err != nil {
		return nil, fmt.Errorf("fleet: router: %w", err)
	}
	if cfg.Addrs != nil && len(cfg.Addrs) != cfg.Map.Shards {
		return nil, fmt.Errorf("fleet: router has %d shard addrs for a map of %d", len(cfg.Addrs), cfg.Map.Shards)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 10 * time.Second
	}
	if cfg.RebalanceTimeout <= 0 {
		cfg.RebalanceTimeout = 30 * time.Second
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 16 << 20
	}
	if cfg.Tenants != nil {
		if cfg.Tenants.Rate <= 0 {
			return nil, fmt.Errorf("fleet: tenant quota rate %v, want > 0", cfg.Tenants.Rate)
		}
		tc := *cfg.Tenants // defaults apply to a private copy
		tc.defaults()
		cfg.Tenants = &tc
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: router: %w", err)
	}
	r := &Router{
		cfg:     cfg,
		cur:     cfg.Map,
		ring:    ring,
		ln:      ln,
		links:   make([]*shardLink, cfg.Map.Shards),
		conns:   map[net.Conn]bool{},
		tallies: map[string]*clientTally{},
		tenants: map[string]*tenantBucket{},
	}
	for i := range r.links {
		l := &shardLink{}
		if cfg.Addrs != nil {
			l.addr = cfg.Addrs[i]
		}
		r.links[i] = l
	}
	r.publishStats()
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// now reads the router's clock (injectable for tests).
func (r *Router) now() time.Time {
	if r.cfg.Now != nil {
		return r.cfg.Now()
	}
	//lint:ignore nosystime pacing real tenant buckets and real TCP rebalance deadlines
	return time.Now()
}

func (r *Router) publishStats() {
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	reg.GaugeFunc("vedr_router_forwarded_total", "messages relayed to shards",
		func() int64 { return r.Stats().Forwarded })
	reg.GaugeFunc("vedr_router_rejected_total", "lines the router refused (malformed/unnamed/unsequenced)",
		func() int64 { return r.Stats().Rejected })
	reg.GaugeFunc("vedr_router_shard_down_total", "retryable NACKs for unreachable shards",
		func() int64 { return r.Stats().ShardDown })
	reg.GaugeFunc("vedr_router_tenant_limited_total", "retryable NACKs from the per-tenant quota gate",
		func() int64 { return r.Stats().TenantLimited })
	reg.GaugeFunc("vedr_router_quiesced_total", "retryable NACKs to clients fenced by a rebalance",
		func() int64 { return r.Stats().Quiesced })
	reg.GaugeFunc("vedr_router_resizes_total", "completed live rebalances",
		func() int64 { return r.Stats().Resizes })
	r.forwarded = reg.CounterSet("vedr_router_shard_forwarded", "messages relayed to this shard", r.cfg.Map.Shards)
}

// Addr returns the router's listen address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Shards returns the current shard-map size.
func (r *Router) Shards() int {
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	return r.cur.Shards
}

// Map returns the currently installed shard map.
func (r *Router) Map() wire.ShardMap {
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	return r.cur
}

// Owner returns the shard index owning a client name under the current
// map.
func (r *Router) Owner(client string) int {
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	return r.ring.Owner(client)
}

// link returns shard i's serialized connection, or nil when i is outside
// the current topology.
func (r *Router) link(i int) *shardLink {
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	if i < 0 || i >= len(r.links) {
		return nil
	}
	return r.links[i]
}

// SetShardAddr re-points shard i (a supervisor learned a restarted
// shard's address). A changed address drops the cached connection.
func (r *Router) SetShardAddr(i int, addr string) {
	l := r.link(i)
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.addr == addr {
		return
	}
	l.addr = addr
	if l.conn != nil {
		_ = l.conn.Close() // stale peer; the next round trip redials
		l.conn, l.br = nil, nil
	}
}

// Stats snapshots the router counters.
func (r *Router) Stats() RouterStats {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	return r.stats
}

// Tallies snapshots the per-shard acked accounting under the current
// map: each client's acknowledged payloads are attributed to the shard
// that owns the client now, which after a rebalance is the shard whose
// dump carries them.
func (r *Router) Tallies() []ShardTally {
	r.rmu.RLock()
	ring, n := r.ring, r.cur.Shards
	r.rmu.RUnlock()
	out := make([]ShardTally, n)
	r.tmu.Lock()
	defer r.tmu.Unlock()
	for client, ct := range r.tallies {
		s := ring.Owner(client)
		out[s].Records += ct.tally.Records
		out[s].Reports += ct.tally.Reports
		out[s].CFs += ct.tally.CFs
	}
	return out
}

// Stop closes the listener and every client connection, and waits for the
// handlers to finish (an admin-driven resize runs on a handler, so Stop
// also waits out any rebalance in flight). Shard links stay usable
// (DumpShard still works); Close tears those down too.
func (r *Router) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.stopped = true
	for conn := range r.conns {
		_ = conn.Close() // unblocks the handler reads
	}
	r.mu.Unlock()
	_ = r.ln.Close() // unblocks Accept
	r.wg.Wait()
}

// Close stops the router and drops the shard connections.
func (r *Router) Close() {
	r.Stop()
	r.rmu.RLock()
	links := append([]*shardLink(nil), r.links...)
	r.rmu.RUnlock()
	for _, l := range links {
		l.mu.Lock()
		if l.conn != nil {
			_ = l.conn.Close() // shutting down; the peer sees EOF either way
			l.conn, l.br = nil, nil
		}
		l.mu.Unlock()
	}
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			_ = conn.Close() // raced shutdown; nothing to serve
			return
		}
		r.conns[conn] = true
		r.wg.Add(1)
		r.mu.Unlock()
		go r.handle(conn)
	}
}

func (r *Router) forget(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
	_ = conn.Close() // either side may already have closed it
}

func (r *Router) count(f func(*RouterStats)) {
	r.tmu.Lock()
	f(&r.stats)
	r.tmu.Unlock()
}

func (r *Router) replyf(conn net.Conn, format string, args ...any) {
	if _, err := fmt.Fprintf(conn, format, args...); err != nil {
		r.cfg.Log.Debug("router reply failed", "err", err)
	}
}

// handle relays one client connection line by line.
func (r *Router) handle(conn net.Conn) {
	defer r.wg.Done()
	defer r.forget(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), r.cfg.MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		msg, err := analyzerd.ParseMessage(line)
		if err != nil {
			r.count(func(s *RouterStats) { s.Rejected++ })
			r.replyf(conn, `{"error":%q}`+"\n", err.Error())
			continue
		}
		switch msg.Type {
		case analyzerd.TypeDump:
			// The drain gathers per-shard dumps itself; a merged dump
			// through the router would hide which shard is unreachable.
			r.count(func(s *RouterStats) { s.Rejected++ })
			r.replyf(conn, `{"error":"dump must target a shard, not the router"}`+"\n")
			continue
		case analyzerd.TypeRemap, analyzerd.TypeAdopt:
			// The router originates these during its own Resize; accepting
			// them from a client would let anyone rewrite the topology.
			r.count(func(s *RouterStats) { s.Rejected++ })
			r.replyf(conn, `{"error":"rebalance verbs are router-internal"}`+"\n")
			continue
		case analyzerd.TypeResize:
			r.handleResize(conn, msg)
			continue
		}
		if msg.Client == "" || msg.Seq == 0 {
			// A shard sends no reply for accepted unsequenced messages, so
			// the router could never relay an outcome; and an unnamed
			// client cannot be hashed. Reject loudly instead of guessing.
			r.count(func(s *RouterStats) { s.Rejected++ })
			r.replyf(conn, `{"error":"fleet ingest requires a named client and a sequence number"}`+"\n")
			continue
		}
		if tenant, ok := r.admitTenant(msg.Client); !ok {
			r.count(func(s *RouterStats) { s.TenantLimited++ })
			r.replyf(conn, `{"nak":%d,"error":%q,"retry":true}`+"\n",
				msg.Seq, fmt.Sprintf("tenant %q over quota", tenant))
			continue
		}
		// Pass the rebalance fence and pin the route under one rmu hold:
		// the inflight increment must be visible before the read lock is
		// released, so a Resize that installs the fence next observes
		// this message and waits for its round trip.
		r.rmu.RLock()
		if q := r.quiesce; q != nil && q(msg.Client) {
			r.rmu.RUnlock()
			r.count(func(s *RouterStats) { s.Quiesced++ })
			r.replyf(conn, `{"nak":%d,"error":"rebalance in progress","retry":true}`+"\n", msg.Seq)
			continue
		}
		shard := r.ring.Owner(msg.Client)
		r.inflight.Add(1)
		r.rmu.RUnlock()
		r.routeOne(conn, msg, line, shard)
		r.inflight.Add(-1)
	}
}

// routeOne forwards one admitted submission and relays the outcome.
func (r *Router) routeOne(conn net.Conn, msg *analyzerd.Message, line []byte, shard int) {
	r.notePending(msg.Client, msg.Seq, msg.Type)
	rep, err := r.roundTrip(shard, line)
	if err != nil {
		r.count(func(s *RouterStats) { s.ShardDown++ })
		r.cfg.Log.Warn("shard unreachable", "shard", shard, "client", msg.Client, "err", err)
		r.replyf(conn, `{"nak":%d,"error":%q,"retry":true}`+"\n",
			msg.Seq, fmt.Sprintf("shard %d unavailable", shard))
		return
	}
	// A shard whose map ran ahead of the router's answers moved; follow
	// the announced owner once rather than bouncing the NACK to the
	// client (stragglers mid-rebalance hit this window).
	if owner, moved := movedOwner(rep); moved && owner != shard {
		if l := r.link(owner); l != nil {
			r.count(func(s *RouterStats) { s.Rerouted++ })
			if rep2, err2 := r.roundTrip(owner, line); err2 == nil {
				rep, shard = rep2, owner
			}
		}
	}
	r.count(func(s *RouterStats) { s.Forwarded++ })
	r.rmu.RLock()
	if r.forwarded != nil && shard < len(r.forwarded) {
		r.forwarded[shard].Inc()
	}
	r.rmu.RUnlock()
	r.noteReply(msg.Client, rep)
	if _, err := conn.Write(rep); err != nil {
		r.cfg.Log.Debug("router relay failed", "err", err)
	}
}

// movedOwner parses a shard reply for a moved NACK's announced owner.
func movedOwner(rep []byte) (int, bool) {
	var parsed struct {
		Moved bool `json:"moved"`
		Owner int  `json:"owner"`
	}
	if err := json.Unmarshal(rep, &parsed); err != nil || !parsed.Moved {
		return 0, false
	}
	return parsed.Owner, true
}

// roundTrip forwards one line to a shard and reads its single-line reply.
// A dead cached connection (the shard restarted since the last trip) gets
// one redial: the write may have landed in a void, but resubmitting the
// same seq is safe — the shard's dedup highwater suppresses duplicates.
func (r *Router) roundTrip(shard int, line []byte) ([]byte, error) {
	l := r.link(shard)
	if l == nil {
		return nil, fmt.Errorf("no shard %d in the current map", shard)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if l.conn == nil {
			if l.addr == "" {
				return nil, fmt.Errorf("shard %d has not announced an address", shard)
			}
			conn, err := net.DialTimeout("tcp", l.addr, r.cfg.DialTimeout)
			if err != nil {
				return nil, err
			}
			l.conn = conn
			l.br = bufio.NewReader(conn)
		}
		//lint:ignore nosystime bounding a real TCP round trip to a shard daemon
		deadline := time.Now().Add(r.cfg.ReplyTimeout)
		if err := l.conn.SetDeadline(deadline); err != nil {
			lastErr = err
			l.drop()
			continue
		}
		if _, err := l.conn.Write(append(append([]byte(nil), line...), '\n')); err != nil {
			lastErr = err
			l.drop()
			continue
		}
		rep, err := l.br.ReadBytes('\n')
		if err != nil {
			lastErr = err
			l.drop()
			continue
		}
		return rep, nil
	}
	return nil, lastErr
}

// drop discards a broken shard connection (caller holds l.mu).
func (l *shardLink) drop() {
	if l.conn != nil {
		_ = l.conn.Close() // already broken; the redial is what matters
		l.conn, l.br = nil, nil
	}
}

// notePending records a forwarded message identity awaiting its ack.
// Already-counted seqs (a resubmission of something acked before a
// failover) are skipped so the tallies stay exactly-once.
func (r *Router) notePending(client string, seq int64, typ string) {
	r.tmu.Lock()
	defer r.tmu.Unlock()
	ct := r.tallies[client]
	if ct == nil {
		ct = &clientTally{}
		r.tallies[client] = ct
	}
	if seq <= ct.counted {
		return
	}
	i := sort.Search(len(ct.pending), func(i int) bool { return ct.pending[i].seq >= seq })
	if i < len(ct.pending) && ct.pending[i].seq == seq {
		return
	}
	ct.pending = append(ct.pending, seqType{})
	copy(ct.pending[i+1:], ct.pending[i:])
	ct.pending[i] = seqType{seq: seq, typ: typ}
}

// noteReply folds a shard's reply into the client's tally: a cumulative
// ack settles every pending seq at or below it.
func (r *Router) noteReply(client string, rep []byte) {
	var parsed struct {
		Ack int64 `json:"ack"`
	}
	if err := json.Unmarshal(rep, &parsed); err != nil || parsed.Ack <= 0 {
		return
	}
	r.tmu.Lock()
	ct := r.tallies[client]
	if ct == nil {
		r.tmu.Unlock()
		return
	}
	n := 0
	for _, p := range ct.pending {
		if p.seq > parsed.Ack {
			break
		}
		switch p.typ {
		case analyzerd.TypeStep:
			ct.tally.Records++
		case analyzerd.TypeReport:
			ct.tally.Reports++
		case analyzerd.TypeCF:
			ct.tally.CFs++
		}
		n++
	}
	ct.pending = ct.pending[n:]
	if parsed.Ack > ct.counted {
		ct.counted = parsed.Ack
	}
	r.acked += int64(n)
	total := r.acked
	r.tmu.Unlock()
	if n > 0 && r.cfg.OnAcked != nil {
		r.cfg.OnAcked(total)
	}
}

// DumpShard asks one shard for its full accepted-message state over the
// serialized shard link. The state's shard index and map are checked
// against the router's currently installed map — a mismatched dump means
// the fleet is misassembled, and merging it would corrupt the diagnosis.
func (r *Router) DumpShard(i int) (*wire.ShardState, error) {
	if r.link(i) == nil {
		return nil, fmt.Errorf("fleet: no shard %d", i)
	}
	rep, err := r.roundTrip(i, []byte(`{"type":"dump"}`))
	if err != nil {
		return nil, err
	}
	state, err := decodeDump(i, rep)
	if err != nil {
		return nil, err
	}
	if cur := r.Map(); state.Shard != i || state.Map != cur {
		return nil, fmt.Errorf("fleet: dump from shard %d/%+v where shard %d/%+v was expected",
			state.Shard, state.Map, i, cur)
	}
	return state, nil
}

// decodeDump parses one shard's dump reply, surfacing a shard-side error
// line as an error.
func decodeDump(i int, rep []byte) (*wire.ShardState, error) {
	var state wire.ShardState
	if err := json.Unmarshal(rep, &state); err != nil {
		return nil, fmt.Errorf("fleet: shard %d dump: %w", i, err)
	}
	if state.Format == 0 {
		var failure struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(rep, &failure) == nil && failure.Error != "" {
			return nil, fmt.Errorf("fleet: shard %d dump: %s", i, failure.Error)
		}
		return nil, fmt.Errorf("fleet: shard %d dump: unrecognized reply", i)
	}
	return &state, nil
}
