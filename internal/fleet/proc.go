// Package fleet runs the sharded diagnosis tier: a supervisor that keeps
// shard daemons alive through crashes (Proc), a consistent-hash router
// that fans the seq/ack ingest protocol out across them (Router), and the
// scatter-gather drain that merges per-shard state into one diagnosis
// (Fleet). The design target is the kill-any-shard contract: SIGKILL any
// single shard mid-ingest, let the supervisor restart it onto its own WAL,
// and the merged diagnosis is byte-identical to a run that never crashed.
//
// This package orchestrates real processes and real TCP connections, so —
// unlike the simulation kernel — it legitimately reads the wall clock for
// backoff pacing and I/O deadlines. Every such read is individually
// sanctioned; nothing here feeds simulated time.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// ProcConfig describes one supervised child process.
type ProcConfig struct {
	// Path and Args are the child's command line. Path is required.
	Path string
	Args []string
	// AnnouncePrefix marks the child's readiness line on stdout; the text
	// after the prefix is the learned address (e.g. "analyzer listening on ").
	// Empty disables announce tracking (the child is considered ready as
	// soon as it starts).
	AnnouncePrefix string
	// RelistenFlag, when non-empty, names the command-line flag whose value
	// is rewritten to the learned address before each restart (typically
	// "-listen"): a child first bound to a :0 wildcard rebinds its concrete
	// port, so peers holding the announced address survive the restart.
	RelistenFlag string

	// Backoff is the first restart delay; it doubles per crash up to
	// BackoffMax (defaults 200ms and 5s).
	Backoff    time.Duration
	BackoffMax time.Duration
	// CrashWindow classifies an exit: a child living shorter than this
	// counts toward the crash loop (default 2s).
	CrashWindow time.Duration
	// CrashLoops gives up after this many consecutive short-lived crashes
	// (default 5).
	CrashLoops int
	// HealthyAfter is the uptime that forgives earlier crashes: the
	// consecutive-crash counter resets only once a child has lived this
	// long (default: CrashWindow). A child that dies after CrashWindow but
	// before HealthyAfter neither increments nor resets the counter — a
	// daemon that limps for a few seconds between crashes is still
	// crash-looping, it is just slow about it.
	HealthyAfter time.Duration

	// Stdout receives every child stdout line (announce lines included);
	// nil discards. Stderr is handed to the child directly; nil discards.
	Stdout io.Writer
	Stderr io.Writer
	// Logf receives supervisor events ("child exited …; restarting in …",
	// "crash loop: …"); nil discards.
	Logf func(format string, args ...any)
	// OnAnnounce is called with the learned address and the child's pid
	// after every announce line (so a router can re-point at a restarted
	// shard, and a harness can aim signals at the right incarnation).
	// Called from the stdout-scanning goroutine; keep it fast.
	OnAnnounce func(addr string, pid int)
}

func (c *ProcConfig) defaults() {
	if c.Backoff <= 0 {
		c.Backoff = 200 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.CrashWindow <= 0 {
		c.CrashWindow = 2 * time.Second
	}
	if c.CrashLoops <= 0 {
		c.CrashLoops = 5
	}
	if c.HealthyAfter < c.CrashWindow {
		c.HealthyAfter = c.CrashWindow
	}
}

// ProcExit is the final verdict of a supervision.
type ProcExit struct {
	// Code is the exit code to surface (the child's on a clean or
	// signalled end, 1 on a crash loop or a start failure).
	Code int
	// CrashLoop reports that supervision gave up on consecutive crashes.
	CrashLoop bool
	// Restarts counts how many times the child was restarted.
	Restarts int
}

// Proc supervises one child process: it restarts crashes with exponential
// backoff, detects crash loops, captures the child's announce line, and
// exposes kill/hold/terminate controls for chaos harnesses. All methods
// are safe for concurrent use.
type Proc struct {
	cfg ProcConfig

	mu        sync.Mutex
	cmd       *exec.Cmd
	addr      string
	announced bool // current child has announced
	restarts  int
	killed    bool // current child was killed by Kill/Hold, not a crash
	holding   bool
	termSig   os.Signal

	release chan struct{} // wakes a held loop
	termCh  chan struct{} // closed once by Terminate
	termOne sync.Once
	ready   chan struct{} // closed on the first announce ever
	readyOn sync.Once
	done    chan struct{}
	exit    ProcExit
}

// StartProc launches the child under supervision.
func StartProc(cfg ProcConfig) (*Proc, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("fleet: ProcConfig.Path is required")
	}
	cfg.defaults()
	p := &Proc{
		cfg:     cfg,
		release: make(chan struct{}, 1),
		termCh:  make(chan struct{}),
		ready:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.supervise()
	return p, nil
}

// Addr returns the last announced address ("" before the first announce).
func (p *Proc) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Pid returns the current child's process ID (0 when none is running).
func (p *Proc) Pid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil || p.cmd.Process == nil {
		return 0
	}
	return p.cmd.Process.Pid
}

// Restarts returns how many times the child has been restarted so far.
func (p *Proc) Restarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// SetFlags rewrites (or appends) flag/value pairs in the child's restart
// arguments. The running child is untouched; the next restart — crash or
// kill — launches with the new command line. This is how a rebalance
// makes a shard's map cutover crash-durable before the remap verb is
// sent.
func (p *Proc) SetFlags(pairs ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	args := append([]string(nil), p.cfg.Args...)
	for k := 0; k+1 < len(pairs); k += 2 {
		flag, val := pairs[k], pairs[k+1]
		found := false
		for i := 0; i < len(args)-1; i++ {
			if args[i] == flag {
				args[i+1] = val
				found = true
			}
		}
		if !found {
			args = append(args, flag, val)
		}
	}
	p.cfg.Args = args
}

// Ready returns nil once the current child incarnation has announced; a
// child mid-restart (or one that never announces) reports an error. With
// no AnnouncePrefix a running child is always ready.
func (p *Proc) Ready() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.done:
		return fmt.Errorf("fleet: supervision ended (exit %d)", p.exit.Code)
	default:
	}
	if p.cfg.AnnouncePrefix == "" {
		return nil
	}
	if !p.announced {
		return fmt.Errorf("fleet: child has not announced readiness")
	}
	return nil
}

// WaitReady blocks until the first announce or the timeout.
func (p *Proc) WaitReady(timeout time.Duration) error {
	if p.cfg.AnnouncePrefix == "" {
		return nil
	}
	select {
	case <-p.ready:
		return nil
	case <-p.done:
		return fmt.Errorf("fleet: supervision ended before the child announced")
	//lint:ignore nosystime bounding a real subprocess's startup, not simulated time
	case <-time.After(timeout):
		return fmt.Errorf("fleet: child did not announce within %s", timeout)
	}
}

// Kill SIGKILLs the current child. The supervisor restarts it immediately
// — an operator-driven kill is not a crash-loop signal, and the chaos
// harness wants the recovery, not the backoff.
func (p *Proc) Kill() {
	p.mu.Lock()
	p.killed = true
	p.mu.Unlock()
	p.signalChild(os.Kill)
}

// Hold SIGKILLs the current child and parks the supervisor: no restart
// until Release (or Terminate). This is the "shard stays down" half of the
// degraded-fleet contract.
func (p *Proc) Hold() {
	p.mu.Lock()
	p.holding = true
	p.killed = true
	p.mu.Unlock()
	p.signalChild(os.Kill)
}

// Release un-parks a held supervisor; the child restarts immediately.
func (p *Proc) Release() {
	p.mu.Lock()
	p.holding = false
	p.mu.Unlock()
	select {
	case p.release <- struct{}{}:
	default:
	}
}

// Terminate forwards sig to the child and ends supervision with the
// child's own exit code. Safe to call more than once.
func (p *Proc) Terminate(sig os.Signal) {
	p.mu.Lock()
	p.termSig = sig
	p.mu.Unlock()
	p.termOne.Do(func() { close(p.termCh) })
	p.signalChild(sig)
}

// Wait blocks until supervision ends and returns its verdict.
func (p *Proc) Wait() ProcExit {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exit
}

func (p *Proc) signalChild(sig os.Signal) {
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		_ = cmd.Process.Signal(sig) // already-dead children are fine
	}
}

func (p *Proc) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// relistenArgs rewrites the value following cfg.RelistenFlag to the
// learned address, so a restarted child rebinds the port it announced.
func relistenArgs(args []string, flag, addr string) []string {
	if flag == "" || addr == "" {
		return args
	}
	out := append([]string(nil), args...)
	for i := 0; i < len(out)-1; i++ {
		if out[i] == flag {
			out[i+1] = addr
		}
	}
	return out
}

// startChild launches one incarnation and returns its wait channel. The
// stdout scanner feeds the wait: cmd.Wait is only called after the pipe
// drains, per the os/exec contract.
func (p *Proc) startChild() (*exec.Cmd, <-chan error, error) {
	p.mu.Lock()
	args := relistenArgs(p.cfg.Args, p.cfg.RelistenFlag, p.addr)
	p.mu.Unlock()
	cmd := exec.Command(p.cfg.Path, args...)
	cmd.Stderr = p.cfg.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	waitCh := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := sc.Text()
			if p.cfg.AnnouncePrefix != "" {
				if a, ok := strings.CutPrefix(line, p.cfg.AnnouncePrefix); ok {
					p.mu.Lock()
					p.addr = a
					p.announced = true
					p.mu.Unlock()
					p.readyOn.Do(func() { close(p.ready) })
					if p.cfg.OnAnnounce != nil {
						p.cfg.OnAnnounce(a, cmd.Process.Pid)
					}
				}
			}
			if p.cfg.Stdout != nil {
				_, _ = fmt.Fprintln(p.cfg.Stdout, line) // best-effort relay of child output
			}
		}
		waitCh <- cmd.Wait()
	}()
	return cmd, waitCh, nil
}

// finish records the verdict and wakes every Wait.
func (p *Proc) finish(exit ProcExit) {
	p.mu.Lock()
	exit.Restarts = p.restarts
	p.exit = exit
	p.cmd = nil
	p.mu.Unlock()
	close(p.done)
}

// supervise is the restart loop. It mirrors the contract of the original
// `vedranalyzerd supervise` subcommand (clean exit ends supervision,
// crashes restart with backoff, a crash loop gives up) and adds the
// HealthyAfter distinction plus the kill/hold/terminate controls.
func (p *Proc) supervise() {
	crashes := 0
	delay := p.cfg.Backoff
	for {
		//lint:ignore nosystime measuring a real child's uptime for crash-loop classification
		start := time.Now()
		cmd, waitCh, err := p.startChild()
		if err != nil {
			p.logf("starting child: %v", err)
			p.finish(ProcExit{Code: 1})
			return
		}
		p.mu.Lock()
		p.cmd = cmd
		p.announced = false
		p.mu.Unlock()

		var werr error
		select {
		case <-p.termCh:
			// Terminate already signalled the child; pass its verdict
			// through — supervision ends with the operator's intent.
			werr = <-waitCh
			p.finish(ProcExit{Code: exitCode(werr)})
			return
		case werr = <-waitCh:
		}
		//lint:ignore nosystime measuring a real child's uptime for crash-loop classification
		lived := time.Since(start)

		p.mu.Lock()
		holding := p.holding
		killed := p.killed
		p.killed = false
		terminating := p.termSig != nil
		p.mu.Unlock()
		if terminating {
			p.finish(ProcExit{Code: exitCode(werr)})
			return
		}
		if werr == nil {
			p.finish(ProcExit{Code: 0}) // clean exit: the child is done
			return
		}
		if holding {
			// Parked by Hold: the kill was ours, so it says nothing about
			// the child's health. Wait for Release or Terminate.
			select {
			case <-p.release:
			case <-p.termCh:
				p.finish(ProcExit{Code: exitCode(werr)})
				return
			}
			p.bumpRestarts()
			continue
		}
		if killed {
			// An operator-driven Kill: restart immediately. It says nothing
			// about the child's health, so it neither feeds nor forgives the
			// crash-loop counter.
			p.bumpRestarts()
			continue
		}
		switch {
		case lived < p.cfg.CrashWindow:
			crashes++
			if crashes >= p.cfg.CrashLoops {
				p.logf("crash loop: %d consecutive exits within %s; giving up",
					crashes, p.cfg.CrashWindow)
				p.finish(ProcExit{Code: 1, CrashLoop: true})
				return
			}
		case lived >= p.cfg.HealthyAfter:
			// Only genuinely healthy uptime forgives earlier crashes; an
			// exit between CrashWindow and HealthyAfter leaves the counter
			// where it was.
			crashes = 0
			delay = p.cfg.Backoff
		}
		p.logf("child exited (%v) after %s; restarting in %s",
			werr, lived.Round(time.Millisecond), delay)
		select {
		case <-p.termCh:
			p.finish(ProcExit{Code: exitCode(werr)})
			return
		//lint:ignore nosystime restart backoff pacing for a real child process
		case <-time.After(delay):
		}
		delay *= 2
		if delay > p.cfg.BackoffMax {
			delay = p.cfg.BackoffMax
		}
		p.bumpRestarts()
	}
}

func (p *Proc) bumpRestarts() {
	p.mu.Lock()
	p.restarts++
	p.mu.Unlock()
}

// exitCode maps a cmd.Wait error to the code supervision surfaces.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() >= 0 {
		return ee.ExitCode()
	}
	return 1
}
