package fleet

import (
	"sort"
	"strings"
	"time"

	"vedrfolnir/internal/wire"
)

// TenantConfig turns on per-tenant ingest quotas at the router. A tenant
// is the budget-owning principal behind a set of clients: by default the
// client-id prefix before the first Separator ("tenant-a/host-3" belongs
// to "tenant-a"), with explicit Overrides for clients whose names don't
// follow the convention. Each tenant gets a token bucket of Rate tokens
// per second with a Burst-deep reservoir; a submission that finds the
// bucket empty is NACKed retryably, so a saturating tenant degrades to
// backoff-paced throughput without ever occupying the shard links that
// other tenants' traffic needs.
type TenantConfig struct {
	// Rate is the sustained messages-per-second budget per tenant
	// (required, > 0).
	Rate float64
	// Burst is the bucket depth — how many messages a tenant may submit
	// back-to-back after an idle period (default: max(1, ceil(Rate))).
	Burst int
	// Separator splits a client id into tenant and host parts (default
	// "/"). A client id without the separator (or starting with it) is
	// its own tenant.
	Separator string
	// Overrides maps exact client ids to tenant names, for clients whose
	// ids don't carry their tenant as a prefix.
	Overrides map[string]string
}

func (c *TenantConfig) defaults() {
	if c.Separator == "" {
		c.Separator = "/"
	}
	if c.Burst <= 0 {
		c.Burst = int(c.Rate)
		if float64(c.Burst) < c.Rate {
			c.Burst++
		}
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
}

// TenantOf resolves a client id to its tenant name.
func (c *TenantConfig) TenantOf(client string) string {
	if t, ok := c.Overrides[client]; ok {
		return t
	}
	if i := strings.Index(client, c.Separator); i > 0 {
		return client[:i]
	}
	return client
}

// tenantBucket is one tenant's token bucket plus its drain-time
// accounting. Guarded by the router's qmu.
type tenantBucket struct {
	tokens   float64
	refilled time.Time // last refill instant
	admitted int64     // submissions that passed the quota gate
	limited  int64     // submissions NACKed over-quota
}

// take refills the bucket for the elapsed wall-clock time and spends one
// token if available.
func (b *tenantBucket) take(now time.Time, rate float64, burst int) bool {
	if !b.refilled.IsZero() {
		if dt := now.Sub(b.refilled).Seconds(); dt > 0 {
			b.tokens += dt * rate
		}
	}
	b.refilled = now
	if b.tokens > float64(burst) {
		b.tokens = float64(burst)
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admitTenant applies the per-tenant quota to one named submission,
// returning the tenant name and whether the message may proceed. With
// quotas disabled every submission is admitted under its tenant name
// (accounting still groups by tenant). First sight of a tenant registers
// its gauges.
func (r *Router) admitTenant(client string) (tenant string, ok bool) {
	tc := r.cfg.Tenants
	if tc == nil {
		return "", true
	}
	tenant = tc.TenantOf(client)
	now := r.now()
	r.qmu.Lock()
	b := r.tenants[tenant]
	if b == nil {
		b = &tenantBucket{tokens: float64(tc.Burst)}
		r.tenants[tenant] = b
		r.publishTenant(tenant, b)
	}
	ok = b.take(now, tc.Rate, tc.Burst)
	if ok {
		b.admitted++
	} else {
		b.limited++
	}
	r.qmu.Unlock()
	return tenant, ok
}

// publishTenant registers the per-tenant gauges (caller holds qmu; the
// closures re-lock on read).
func (r *Router) publishTenant(tenant string, b *tenantBucket) {
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	san := sanitizeMetric(tenant)
	reg.GaugeFunc("vedr_router_tenant_"+san+"_admitted", "submissions admitted for tenant "+tenant,
		func() int64 {
			r.qmu.Lock()
			defer r.qmu.Unlock()
			return b.admitted
		})
	reg.GaugeFunc("vedr_router_tenant_"+san+"_limited", "submissions NACKed over-quota for tenant "+tenant,
		func() int64 {
			r.qmu.Lock()
			defer r.qmu.Unlock()
			return b.limited
		})
}

// sanitizeMetric maps a tenant name onto the metric-name alphabet.
func sanitizeMetric(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// TenantAccounts snapshots the per-tenant drain accounting: every tenant
// the router has seen, with its distinct client count, the payloads those
// clients had acknowledged, and how many submissions the quota gate
// limited. Sorted by tenant name; without a TenantConfig the default
// prefix convention still groups the accounting.
func (r *Router) TenantAccounts() []wire.TenantAccount {
	tc := r.cfg.Tenants
	if tc == nil {
		tc = &TenantConfig{}
		tc.defaults()
	}
	byTenant := map[string]*wire.TenantAccount{}
	get := func(name string) *wire.TenantAccount {
		ta := byTenant[name]
		if ta == nil {
			ta = &wire.TenantAccount{Tenant: name}
			byTenant[name] = ta
		}
		return ta
	}
	r.tmu.Lock()
	for client, ct := range r.tallies {
		ta := get(tc.TenantOf(client))
		ta.Clients++
		ta.Records += int64(ct.tally.Records)
		ta.Reports += int64(ct.tally.Reports)
		ta.CFs += int64(ct.tally.CFs)
	}
	r.tmu.Unlock()
	r.qmu.Lock()
	for tenant, b := range r.tenants {
		get(tenant).Limited += b.limited
	}
	r.qmu.Unlock()
	names := make([]string, 0, len(byTenant))
	for name := range byTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]wire.TenantAccount, 0, len(names))
	for _, name := range names {
		out = append(out, *byTenant[name])
	}
	return out
}
