package fleet

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

// Config assembles a diagnosis fleet: N shard daemons (each a supervised
// child process of the analyzer binary with its own WAL directory) behind
// one Router.
type Config struct {
	// BinPath is the vedranalyzerd binary the shard children run. Required.
	BinPath string
	// Shards is the fleet width (required, >= 1); Replicas is the
	// consistent-hash vnode count per shard (0 = wire.DefaultShardReplicas).
	Shards   int
	Replicas int
	// Dir, when set, gives each shard a WAL under Dir/shard-<i> so a
	// SIGKILLed shard recovers its accepted messages on restart. Empty
	// disables durability (a killed shard loses its slice of the fleet).
	Dir string
	// Fsync ("always", "interval", "never") and SnapshotEvery are passed
	// through to each shard's -fsync / -snapshot-every flags when Dir is
	// set; zero values keep the daemon defaults.
	Fsync         string
	SnapshotEvery int
	// Listen is the router's bind address (default 127.0.0.1:0).
	Listen string
	// Supervision knobs, passed to each shard's Proc; zero values take the
	// Proc defaults.
	Backoff      time.Duration
	BackoffMax   time.Duration
	CrashWindow  time.Duration
	CrashLoops   int
	HealthyAfter time.Duration
	// HoldShard, when >= 0, holds that shard down at Drain time — its dump
	// is skipped and the merged diagnosis is degraded instead of failed.
	// The operator-facing stand-in for "one shard is dead and will not
	// come back before the report is due".
	HoldShard int
	// ReadyTimeout bounds each shard's first announce (default 30s).
	ReadyTimeout time.Duration
	// Epoch seeds the initial shard map's epoch (a fleet resumed after a
	// resize starts where it left off; normally 0). Each live Resize
	// bumps it by one.
	Epoch int64
	// Tenants, when set, applies per-tenant token-bucket quotas at the
	// router and groups the drain accounting by tenant.
	Tenants *TenantConfig
	// RebalanceTimeout bounds each retried shard exchange during a live
	// Resize (default 30s — long enough to ride out a SIGKILLed shard's
	// supervised restart).
	RebalanceTimeout time.Duration
	// OnAcked, when set, observes the cumulative acknowledged-submission
	// count after each ack (the -resize-after trigger hangs off this).
	// Called from router goroutines without locks held.
	OnAcked func(total int64)
	// OnPhase, when set, observes each rebalance phase announcement
	// (fleet.PhaseBeforeQuiesce and friends) — the chaos harness's
	// mid-rebalance kill trigger. Called from the resizing goroutine.
	OnPhase func(phase string)
	// OnShard, when set, observes every shard (re)announce: index, listen
	// address, pid. Called from the supervisor goroutine.
	OnShard func(i int, addr string, pid int)
	// Stderr receives the children's stderr (nil = discard). Log receives
	// supervisor and router notes; nil discards. Metrics publishes router
	// counters.
	Stderr  io.Writer
	Log     *slog.Logger
	Metrics *obs.Registry
}

// Merged is a fleet drain's result: the canonical merged bundle plus the
// coverage bookkeeping a degraded gather needs to be honest about.
type Merged struct {
	// Bundle is the merged telemetry in canonical order.
	Bundle *wire.Bundle
	// Stats describes the merge.
	Stats wire.MergeStats
	// Missing lists the shard indices whose dumps were unavailable.
	Missing []int
	// MissedRecords/MissedReports/MissedCFs count what the router saw the
	// missing shards acknowledge — the lower bound on what the merge lost.
	MissedRecords int
	MissedReports int
	MissedCFs     int
	// Tenants is the per-tenant drain accounting: acknowledged payloads
	// and quota-limited submissions grouped by budget owner, sorted by
	// tenant name.
	Tenants []wire.TenantAccount
	// Diagnosis is the analysis of Bundle; when shards are missing it is
	// computed degraded, with Coverage and Confidence discounted by the
	// missed counts.
	Diagnosis *diagnose.Diagnosis
}

// Degraded reports whether the gather was incomplete.
func (m *Merged) Degraded() bool { return len(m.Missing) > 0 }

// Fleet is a running sharded analyzer: router + supervised shard
// processes. The contract it exists to keep: SIGKILL any single shard
// mid-ingest — or mid-rebalance — and, once its supervisor restarts it,
// the drained merged diagnosis is byte-identical to an unbroken run's.
type Fleet struct {
	cfg    Config
	router *Router

	mu    sync.Mutex // guards procs (a live Resize grows/shrinks it)
	procs []*Proc
}

// Start launches the fleet: router first (so shard announces have
// somewhere to land), then the shard children, then a readiness wait on
// every shard's first announce.
func Start(cfg Config) (*Fleet, error) {
	if cfg.BinPath == "" {
		return nil, fmt.Errorf("fleet: BinPath is required")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	m := wire.ShardMap{Shards: cfg.Shards, Replicas: cfg.Replicas, Epoch: cfg.Epoch}
	f := &Fleet{cfg: cfg}
	handoffDir := ""
	if cfg.Dir != "" {
		handoffDir = filepath.Join(cfg.Dir, "handoffs")
	}
	router, err := StartRouter(cfg.Listen, RouterConfig{
		Map:              m,
		Tenants:          cfg.Tenants,
		RebalanceTimeout: cfg.RebalanceTimeout,
		HandoffDir:       handoffDir,
		OnAcked:          cfg.OnAcked,
		Rebalance: &RebalanceHooks{
			StartShard:   f.hookStartShard,
			PrepareShard: f.hookPrepareShard,
			StopShard:    f.hookStopShard,
			OnPhase:      cfg.OnPhase,
		},
		Log:     cfg.Log,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	f.router = router
	f.procs = make([]*Proc, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		p, err := f.startShard(i, m)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.procs[i] = p
	}
	for i, p := range f.procs {
		if err := p.WaitReady(cfg.ReadyTimeout); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: shard %d never became ready: %w", i, err)
		}
	}
	return f, nil
}

// shardArgs builds shard i's command line for map m. The epoch flag is
// only emitted once an epoch exists, so pre-rebalance fleets run the
// same command lines they always have.
func shardArgs(cfg *Config, i int, m wire.ShardMap) ([]string, error) {
	args := []string{
		"-listen", "127.0.0.1:0",
		"-shard-index", strconv.Itoa(i),
		"-shard-count", strconv.Itoa(m.Shards),
	}
	if m.Replicas > 0 {
		args = append(args, "-shard-replicas", strconv.Itoa(m.Replicas))
	}
	if m.Epoch > 0 {
		args = append(args, "-shard-epoch", strconv.FormatInt(m.Epoch, 10))
	}
	if cfg.Dir != "" {
		dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: shard %d wal dir: %w", i, err)
		}
		args = append(args, "-wal-dir", dir)
		if cfg.Fsync != "" {
			args = append(args, "-fsync", cfg.Fsync)
		}
		if cfg.SnapshotEvery > 0 {
			args = append(args, "-snapshot-every", strconv.Itoa(cfg.SnapshotEvery))
		}
	}
	return args, nil
}

// startShard launches one supervised shard child under map m.
func (f *Fleet) startShard(i int, m wire.ShardMap) (*Proc, error) {
	args, err := shardArgs(&f.cfg, i, m)
	if err != nil {
		return nil, err
	}
	idx := i
	log := f.cfg.Log
	return StartProc(ProcConfig{
		Path:           f.cfg.BinPath,
		Args:           args,
		AnnouncePrefix: "analyzer listening on ",
		RelistenFlag:   "-listen",
		Backoff:        f.cfg.Backoff,
		BackoffMax:     f.cfg.BackoffMax,
		CrashWindow:    f.cfg.CrashWindow,
		CrashLoops:     f.cfg.CrashLoops,
		HealthyAfter:   f.cfg.HealthyAfter,
		Stderr:         f.cfg.Stderr,
		Logf: func(format string, args ...any) {
			log.Info(fmt.Sprintf("shard %d: "+format, append([]any{idx}, args...)...))
		},
		OnAnnounce: func(addr string, pid int) {
			f.router.SetShardAddr(idx, addr)
			if f.cfg.OnShard != nil {
				f.cfg.OnShard(idx, addr, pid)
			}
		},
	})
}

// Addr returns the router's client-facing listen address.
func (f *Fleet) Addr() string { return f.router.Addr() }

// Router exposes the ingest tier (tests and the obs registry peek at it).
func (f *Fleet) Router() *Router { return f.router }

// Shards returns the current fleet width (a live Resize changes it).
func (f *Fleet) Shards() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.procs)
}

// proc returns shard i's supervisor (nil when i is out of range).
func (f *Fleet) proc(i int) *Proc {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < 0 || i >= len(f.procs) {
		return nil
	}
	return f.procs[i]
}

// procSnapshot copies the supervisor list.
func (f *Fleet) procSnapshot() []*Proc {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Proc(nil), f.procs...)
}

// Ready reports whether every shard has announced and is being supervised.
func (f *Fleet) Ready() error {
	for i, p := range f.procSnapshot() {
		if err := p.Ready(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Pid returns shard i's current child pid (-1 when not running).
func (f *Fleet) Pid(i int) int {
	p := f.proc(i)
	if p == nil {
		return -1
	}
	return p.Pid()
}

// Restarts returns how many times shard i has been restarted.
func (f *Fleet) Restarts(i int) int {
	p := f.proc(i)
	if p == nil {
		return 0
	}
	return p.Restarts()
}

// KillShard SIGKILLs shard i's child; the supervisor restarts it
// immediately and the router learns the new address from its announce.
func (f *Fleet) KillShard(i int) error {
	p := f.proc(i)
	if p == nil {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	p.Kill()
	return nil
}

// Resize rebalances the live fleet to the given shard count: new shards
// spawn (grow) or donors retire (shrink), moved clients' state rides the
// handoff protocol to its new owners, and clients never see more than
// retryable NACKs. See Router.Resize for the state machine.
func (f *Fleet) Resize(shards int) (*ResizeReport, error) {
	return f.router.Resize(shards, f.cfg.Replicas)
}

// hookStartShard launches a grow target under the next map and waits for
// its announce so the router can route to it immediately.
func (f *Fleet) hookStartShard(i int, m wire.ShardMap) (string, error) {
	p, err := f.startShard(i, m)
	if err != nil {
		return "", err
	}
	if err := p.WaitReady(f.cfg.ReadyTimeout); err != nil {
		p.Terminate(syscall.SIGKILL)
		p.Wait()
		return "", fmt.Errorf("fleet: shard %d never became ready: %w", i, err)
	}
	f.mu.Lock()
	for len(f.procs) <= i {
		f.procs = append(f.procs, nil)
	}
	f.procs[i] = p
	f.mu.Unlock()
	return p.Addr(), nil
}

// hookPrepareShard rewrites a survivor's restart args to the next map
// before the remap verb is sent: a crash after the remap restarts the
// shard under the map it acknowledged.
func (f *Fleet) hookPrepareShard(i int, m wire.ShardMap) error {
	p := f.proc(i)
	if p == nil {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	p.SetFlags(
		"-shard-count", strconv.Itoa(m.Shards),
		"-shard-replicas", strconv.Itoa(m.Replicas),
		"-shard-epoch", strconv.FormatInt(m.Epoch, 10),
	)
	return nil
}

// hookStopShard retires a shrink donor after the flip.
func (f *Fleet) hookStopShard(i int) {
	f.mu.Lock()
	var p *Proc
	if i >= 0 && i < len(f.procs) {
		p = f.procs[i]
		f.procs = f.procs[:i] // donors retire from the tail, highest first
	}
	f.mu.Unlock()
	if p != nil {
		p.Terminate(syscall.SIGTERM)
		p.Wait()
	}
}

// Drain finishes the fleet run: stop accepting clients, gather every
// shard's dump, terminate the children, merge, and diagnose. A shard that
// cannot be dumped (held down, or dead past its crash-loop budget)
// degrades the result instead of failing it: the router's acked tallies
// for that shard become the missed-input counts that discount Coverage
// and Confidence.
func (f *Fleet) Drain(scope *obs.Scope) (*Merged, error) {
	if p := f.proc(f.cfg.HoldShard); f.cfg.HoldShard >= 0 && p != nil {
		// Hold the shard down before gathering: the degraded-drain drill.
		p.Hold()
	}
	f.router.Stop() // no new ingest; shard links stay up for the dumps

	shards := f.router.Shards() // post-resize width, not the starting one
	tallies := f.router.Tallies()
	merged := &Merged{Tenants: f.router.TenantAccounts()}
	states := make([]*wire.ShardState, 0, shards)
	for i := 0; i < shards; i++ {
		state, err := f.dumpShardPatiently(i)
		if err != nil {
			f.cfg.Log.Warn("shard dump unavailable; degrading", "shard", i, "err", err)
			merged.Missing = append(merged.Missing, i)
			merged.MissedRecords += tallies[i].Records
			merged.MissedReports += tallies[i].Reports
			merged.MissedCFs += tallies[i].CFs
			continue
		}
		states = append(states, state)
	}
	if len(states) == 0 {
		f.Close()
		return nil, fmt.Errorf("fleet: no shard could be dumped; nothing to diagnose")
	}
	f.Close()

	bundle, stats := wire.MergeShardStates(states)
	merged.Bundle = bundle
	merged.Stats = stats
	if merged.Degraded() {
		merged.Diagnosis = bundle.AnalyzeDegraded(scope,
			merged.MissedRecords, merged.MissedReports)
	} else {
		merged.Diagnosis = bundle.AnalyzeObs(scope)
	}
	return merged, nil
}

// dumpShardPatiently gathers one shard's dump, riding out a supervised
// restart: a SIGKILL in the last moments before the drain (say, a chaos
// kill at a rebalance's after-flip cut point) leaves the shard down for
// the few milliseconds its supervisor needs to relaunch it, and a single
// failed dial must not cost the merge that shard's whole slice. The
// deliberately held shard gets no such grace — its absence is the
// degraded-drain drill's entire point.
func (f *Fleet) dumpShardPatiently(i int) (*wire.ShardState, error) {
	state, err := f.router.DumpShard(i)
	if err == nil || i == f.cfg.HoldShard {
		return state, err
	}
	//lint:ignore nosystime bounding a real subprocess restart, not simulated time
	deadline := time.Now().Add(f.cfg.ReadyTimeout)
	//lint:ignore nosystime see above
	for time.Now().Before(deadline) {
		//lint:ignore nosystime pacing a poll for a real subprocess restart
		time.Sleep(20 * time.Millisecond)
		if state, err = f.router.DumpShard(i); err == nil {
			return state, nil
		}
	}
	return nil, err
}

// Close terminates every shard child and the router. Safe to call more
// than once and after Drain.
func (f *Fleet) Close() {
	procs := f.procSnapshot()
	for _, p := range procs {
		if p != nil {
			p.Terminate(syscall.SIGTERM)
		}
	}
	for _, p := range procs {
		if p != nil {
			p.Wait()
		}
	}
	if f.router != nil {
		f.router.Close()
	}
}
