package fleet

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

// Config assembles a diagnosis fleet: N shard daemons (each a supervised
// child process of the analyzer binary with its own WAL directory) behind
// one Router.
type Config struct {
	// BinPath is the vedranalyzerd binary the shard children run. Required.
	BinPath string
	// Shards is the fleet width (required, >= 1); Replicas is the
	// consistent-hash vnode count per shard (0 = wire.DefaultShardReplicas).
	Shards   int
	Replicas int
	// Dir, when set, gives each shard a WAL under Dir/shard-<i> so a
	// SIGKILLed shard recovers its accepted messages on restart. Empty
	// disables durability (a killed shard loses its slice of the fleet).
	Dir string
	// Fsync ("always", "interval", "never") and SnapshotEvery are passed
	// through to each shard's -fsync / -snapshot-every flags when Dir is
	// set; zero values keep the daemon defaults.
	Fsync         string
	SnapshotEvery int
	// Listen is the router's bind address (default 127.0.0.1:0).
	Listen string
	// Supervision knobs, passed to each shard's Proc; zero values take the
	// Proc defaults.
	Backoff      time.Duration
	BackoffMax   time.Duration
	CrashWindow  time.Duration
	CrashLoops   int
	HealthyAfter time.Duration
	// HoldShard, when >= 0, holds that shard down at Drain time — its dump
	// is skipped and the merged diagnosis is degraded instead of failed.
	// The operator-facing stand-in for "one shard is dead and will not
	// come back before the report is due".
	HoldShard int
	// ReadyTimeout bounds each shard's first announce (default 30s).
	ReadyTimeout time.Duration
	// OnShard, when set, observes every shard (re)announce: index, listen
	// address, pid. Called from the supervisor goroutine.
	OnShard func(i int, addr string, pid int)
	// Stderr receives the children's stderr (nil = discard). Log receives
	// supervisor and router notes; nil discards. Metrics publishes router
	// counters.
	Stderr  io.Writer
	Log     *slog.Logger
	Metrics *obs.Registry
}

// Merged is a fleet drain's result: the canonical merged bundle plus the
// coverage bookkeeping a degraded gather needs to be honest about.
type Merged struct {
	// Bundle is the merged telemetry in canonical order.
	Bundle *wire.Bundle
	// Stats describes the merge.
	Stats wire.MergeStats
	// Missing lists the shard indices whose dumps were unavailable.
	Missing []int
	// MissedRecords/MissedReports/MissedCFs count what the router saw the
	// missing shards acknowledge — the lower bound on what the merge lost.
	MissedRecords int
	MissedReports int
	MissedCFs     int
	// Diagnosis is the analysis of Bundle; when shards are missing it is
	// computed degraded, with Coverage and Confidence discounted by the
	// missed counts.
	Diagnosis *diagnose.Diagnosis
}

// Degraded reports whether the gather was incomplete.
func (m *Merged) Degraded() bool { return len(m.Missing) > 0 }

// Fleet is a running sharded analyzer: router + supervised shard
// processes. The contract it exists to keep: SIGKILL any single shard
// mid-ingest and, once its supervisor restarts it, the drained merged
// diagnosis is byte-identical to an unbroken run's.
type Fleet struct {
	cfg    Config
	router *Router
	procs  []*Proc
}

// Start launches the fleet: router first (so shard announces have
// somewhere to land), then the shard children, then a readiness wait on
// every shard's first announce.
func Start(cfg Config) (*Fleet, error) {
	if cfg.BinPath == "" {
		return nil, fmt.Errorf("fleet: BinPath is required")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	m := wire.ShardMap{Shards: cfg.Shards, Replicas: cfg.Replicas}
	router, err := StartRouter(cfg.Listen, RouterConfig{
		Map:     m,
		Log:     cfg.Log,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, router: router, procs: make([]*Proc, cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		p, err := f.startShard(i)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.procs[i] = p
	}
	for i, p := range f.procs {
		if err := p.WaitReady(cfg.ReadyTimeout); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: shard %d never became ready: %w", i, err)
		}
	}
	return f, nil
}

func (f *Fleet) startShard(i int) (*Proc, error) {
	args := []string{
		"-listen", "127.0.0.1:0",
		"-shard-index", strconv.Itoa(i),
		"-shard-count", strconv.Itoa(f.cfg.Shards),
	}
	if f.cfg.Replicas > 0 {
		args = append(args, "-shard-replicas", strconv.Itoa(f.cfg.Replicas))
	}
	if f.cfg.Dir != "" {
		dir := filepath.Join(f.cfg.Dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: shard %d wal dir: %w", i, err)
		}
		args = append(args, "-wal-dir", dir)
		if f.cfg.Fsync != "" {
			args = append(args, "-fsync", f.cfg.Fsync)
		}
		if f.cfg.SnapshotEvery > 0 {
			args = append(args, "-snapshot-every", strconv.Itoa(f.cfg.SnapshotEvery))
		}
	}
	idx := i
	log := f.cfg.Log
	return StartProc(ProcConfig{
		Path:           f.cfg.BinPath,
		Args:           args,
		AnnouncePrefix: "analyzer listening on ",
		RelistenFlag:   "-listen",
		Backoff:        f.cfg.Backoff,
		BackoffMax:     f.cfg.BackoffMax,
		CrashWindow:    f.cfg.CrashWindow,
		CrashLoops:     f.cfg.CrashLoops,
		HealthyAfter:   f.cfg.HealthyAfter,
		Stderr:         f.cfg.Stderr,
		Logf: func(format string, args ...any) {
			log.Info(fmt.Sprintf("shard %d: "+format, append([]any{idx}, args...)...))
		},
		OnAnnounce: func(addr string, pid int) {
			f.router.SetShardAddr(idx, addr)
			if f.cfg.OnShard != nil {
				f.cfg.OnShard(idx, addr, pid)
			}
		},
	})
}

// Addr returns the router's client-facing listen address.
func (f *Fleet) Addr() string { return f.router.Addr() }

// Router exposes the ingest tier (tests and the obs registry peek at it).
func (f *Fleet) Router() *Router { return f.router }

// Shards returns the fleet width.
func (f *Fleet) Shards() int { return len(f.procs) }

// Ready reports whether every shard has announced and is being supervised.
func (f *Fleet) Ready() error {
	for i, p := range f.procs {
		if err := p.Ready(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Pid returns shard i's current child pid (-1 when not running).
func (f *Fleet) Pid(i int) int {
	if i < 0 || i >= len(f.procs) {
		return -1
	}
	return f.procs[i].Pid()
}

// Restarts returns how many times shard i has been restarted.
func (f *Fleet) Restarts(i int) int {
	if i < 0 || i >= len(f.procs) {
		return 0
	}
	return f.procs[i].Restarts()
}

// KillShard SIGKILLs shard i's child; the supervisor restarts it
// immediately and the router learns the new address from its announce.
func (f *Fleet) KillShard(i int) error {
	if i < 0 || i >= len(f.procs) {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	f.procs[i].Kill()
	return nil
}

// Drain finishes the fleet run: stop accepting clients, gather every
// shard's dump, terminate the children, merge, and diagnose. A shard that
// cannot be dumped (held down, or dead past its crash-loop budget)
// degrades the result instead of failing it: the router's acked tallies
// for that shard become the missed-input counts that discount Coverage
// and Confidence.
func (f *Fleet) Drain(scope *obs.Scope) (*Merged, error) {
	if f.cfg.HoldShard >= 0 && f.cfg.HoldShard < len(f.procs) {
		// Hold the shard down before gathering: the degraded-drain drill.
		f.procs[f.cfg.HoldShard].Hold()
	}
	f.router.Stop() // no new ingest; shard links stay up for the dumps

	tallies := f.router.Tallies()
	merged := &Merged{}
	states := make([]*wire.ShardState, 0, len(f.procs))
	for i := range f.procs {
		state, err := f.router.DumpShard(i)
		if err != nil {
			f.cfg.Log.Warn("shard dump unavailable; degrading", "shard", i, "err", err)
			merged.Missing = append(merged.Missing, i)
			merged.MissedRecords += tallies[i].Records
			merged.MissedReports += tallies[i].Reports
			merged.MissedCFs += tallies[i].CFs
			continue
		}
		states = append(states, state)
	}
	if len(states) == 0 {
		f.Close()
		return nil, fmt.Errorf("fleet: no shard could be dumped; nothing to diagnose")
	}
	f.Close()

	bundle, stats := wire.MergeShardStates(states)
	merged.Bundle = bundle
	merged.Stats = stats
	if merged.Degraded() {
		merged.Diagnosis = bundle.AnalyzeDegraded(scope,
			merged.MissedRecords, merged.MissedReports)
	} else {
		merged.Diagnosis = bundle.AnalyzeObs(scope)
	}
	return merged, nil
}

// Close terminates every shard child and the router. Safe to call more
// than once and after Drain.
func (f *Fleet) Close() {
	for _, p := range f.procs {
		if p != nil {
			p.Terminate(syscall.SIGTERM)
		}
	}
	for _, p := range f.procs {
		if p != nil {
			p.Wait()
		}
	}
	f.router.Close()
}
