package analyzerd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vedrfolnir/internal/wire"
)

func fixedNow() time.Time { return time.Unix(1000, 0) }

func walPayload(i byte) []byte {
	return []byte(`{"type":"cf","cf":{"src":` + string('0'+i) + `,"dst":9}}`)
}

// writeTestWAL creates a WAL with n entries (LSNs starting at firstLSN)
// and returns its raw bytes plus the start offset of every entry.
func writeTestWAL(t *testing.T, dir string, firstLSN uint64, n int) (data []byte, starts []int) {
	t.Helper()
	w, err := openWAL(dir, firstLSN, FsyncOff, 0, fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append(walPayload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	rest := data
	for len(rest) > 0 {
		starts = append(starts, len(data)-len(rest))
		_, _, next, err := decodeWALEntry(rest)
		if err != nil {
			t.Fatalf("freshly written WAL does not decode: %v", err)
		}
		rest = next
	}
	if len(starts) != n {
		t.Fatalf("wrote %d entries, decoded %d", n, len(starts))
	}
	return data, starts
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTestWAL(t, dir, 1, 5)
	var got [][]byte
	var lsns []uint64
	st, err := replayWAL(dir, 0, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.WALEntries != 5 || st.WALTruncatedBytes != 0 || st.WALSkipped != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	if st.NextLSN != 6 {
		t.Fatalf("NextLSN = %d, want 6", st.NextLSN)
	}
	for i := range got {
		if lsns[i] != uint64(i+1) {
			t.Fatalf("entry %d has lsn %d", i, lsns[i])
		}
		if !bytes.Equal(got[i], walPayload(byte(i))) {
			t.Fatalf("entry %d payload %q", i, got[i])
		}
	}
}

// TestWALTornTailEveryOffset shears the log at every byte offset of the
// file and checks that replay recovers exactly the entries before the
// cut, truncates the debris, and leaves a log that accepts appends again
// — the crash can land anywhere, recovery must never fail.
func TestWALTornTailEveryOffset(t *testing.T) {
	srcDir := t.TempDir()
	data, starts := writeTestWAL(t, srcDir, 1, 3)

	for cut := 0; cut <= len(data); cut++ {
		// Entries wholly before the cut survive.
		wantEntries := 0
		for i := range starts {
			if starts[i]+entryLen(t, data, starts, i) <= cut {
				wantEntries++
			} else {
				break
			}
		}
		dir := t.TempDir()
		path := filepath.Join(dir, walFileName)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		entries := 0
		st, err := replayWAL(dir, 0, func(uint64, []byte) error { entries++; return nil })
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		if entries != wantEntries {
			t.Fatalf("cut %d: replayed %d entries, want %d", cut, entries, wantEntries)
		}
		wantGood := 0
		if wantEntries > 0 {
			wantGood = starts[wantEntries-1] + entryLen(t, data, starts, wantEntries-1)
		}
		if wantTrunc := int64(cut - wantGood); st.WALTruncatedBytes != wantTrunc {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, st.WALTruncatedBytes, wantTrunc)
		}
		if st.WALTruncatedBytes > 0 && !st.WALTornTail {
			t.Fatalf("cut %d: truncation not marked as torn tail", cut)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(wantGood) {
			t.Fatalf("cut %d: file left at %d bytes, want %d", cut, fi.Size(), wantGood)
		}
		// The reopened log must append and replay cleanly on top.
		w, err := openWAL(dir, st.NextLSN, FsyncOff, 0, fixedNow)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(walPayload(9)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		entries = 0
		st2, err := replayWAL(dir, 0, func(uint64, []byte) error { entries++; return nil })
		if err != nil || st2.WALTruncatedBytes != 0 {
			t.Fatalf("cut %d: post-truncate replay: entries=%d stats=%+v err=%v", cut, entries, st2, err)
		}
		if entries != wantEntries+1 {
			t.Fatalf("cut %d: post-append replay got %d entries, want %d", cut, entries, wantEntries+1)
		}
	}
}

func entryLen(t *testing.T, data []byte, starts []int, i int) int {
	t.Helper()
	end := len(data)
	if i+1 < len(starts) {
		end = starts[i+1]
	}
	return end - starts[i]
}

// TestWALCorruptEntryStopsReplay flips bits at several positions inside
// the second entry (length prefix, CRC, LSN, payload): replay must keep
// the first entry, stop at the damage, and truncate the rest — without
// ever returning an error or panicking.
func TestWALCorruptEntryStopsReplay(t *testing.T) {
	srcDir := t.TempDir()
	data, starts := writeTestWAL(t, srcDir, 1, 3)
	second := starts[1]
	for _, off := range []int{second, second + 4, second + 8, second + walEntryHeader} {
		for bit := uint(0); bit < 8; bit++ {
			dir := t.TempDir()
			path := filepath.Join(dir, walFileName)
			corrupt := append([]byte(nil), data...)
			corrupt[off] ^= 1 << bit
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			entries := 0
			st, err := replayWAL(dir, 0, func(uint64, []byte) error { entries++; return nil })
			if err != nil {
				t.Fatalf("off %d bit %d: replay error: %v", off, bit, err)
			}
			if entries != 1 {
				t.Fatalf("off %d bit %d: replayed %d entries, want 1", off, bit, entries)
			}
			if st.WALTruncatedBytes != int64(len(data)-second) {
				t.Fatalf("off %d bit %d: truncated %d bytes, want %d",
					off, bit, st.WALTruncatedBytes, len(data)-second)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != int64(second) {
				t.Fatalf("off %d bit %d: file left at %d, want %d", off, bit, fi.Size(), second)
			}
		}
	}
}

// TestWALResetKeepsLSNHorizon: truncating after a snapshot must not reuse
// LSNs, and replay must honor the snapshot's horizon.
func TestWALResetKeepsLSNHorizon(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1, FsyncAlways, 0, fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(walPayload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil { // snapshot at NextLSN=4 happened
		t.Fatal(err)
	}
	if lsn, err := w.Append(walPayload(7)); err != nil || lsn != 4 {
		t.Fatalf("post-reset append: lsn=%d err=%v, want 4", lsn, err)
	}
	if lsn, err := w.Append(walPayload(8)); err != nil || lsn != 5 {
		t.Fatalf("post-reset append: lsn=%d err=%v, want 5", lsn, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		minLSN                uint64
		wantEntries, wantSkip int
	}{
		{0, 2, 0}, {4, 2, 0}, {5, 1, 1}, {6, 0, 2},
	} {
		st, err := replayWAL(dir, tc.minLSN, func(uint64, []byte) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if st.WALEntries != tc.wantEntries || st.WALSkipped != tc.wantSkip {
			t.Fatalf("minLSN %d: entries=%d skipped=%d, want %d/%d",
				tc.minLSN, st.WALEntries, st.WALSkipped, tc.wantEntries, tc.wantSkip)
		}
	}
}

func TestWALFsyncIntervalPacing(t *testing.T) {
	dir := t.TempDir()
	var now time.Time
	w, err := openWAL(dir, 1, FsyncInterval, 100*time.Millisecond, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	now = time.Unix(10, 0)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(walPayload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	first := w.syncs.Load() // the first append syncs (lastSync zero)
	if first != 1 {
		t.Fatalf("syncs after burst = %d, want 1", first)
	}
	now = now.Add(200 * time.Millisecond)
	if _, err := w.Append(walPayload(9)); err != nil {
		t.Fatal(err)
	}
	if got := w.syncs.Load(); got != 2 {
		t.Fatalf("syncs after interval elapsed = %d, want 2", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALSyncFailureWedges: after a failed flush/fsync the log must stop
// accepting appends entirely (Linux fsync error semantics: the failed
// bytes may be gone from the page cache, leaving a torn frame that would
// truncate later — acked — entries during recovery). The wedge is sticky:
// every subsequent Append and Sync fails fast with the original error.
func TestWALSyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1, FsyncAlways, 0, fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(walPayload(1)); err != nil {
		t.Fatal(err)
	}
	if w.wedged() != nil {
		t.Fatal("healthy log reports wedged")
	}
	w.f.Close() // the next flush/sync fails like a dying disk
	if _, err := w.Append(walPayload(2)); err == nil {
		t.Fatal("append after sync failure succeeded")
	}
	wedge := w.wedged()
	if wedge == nil {
		t.Fatal("failed sync did not wedge the log")
	}
	before := w.appends.Load()
	if _, err := w.Append(walPayload(3)); !errors.Is(err, wedge) {
		t.Fatalf("append on wedged log: %v, want sticky %v", err, wedge)
	}
	if err := w.Sync(); !errors.Is(err, wedge) {
		t.Fatalf("sync on wedged log: %v, want sticky %v", err, wedge)
	}
	if got := w.appends.Load(); got != before {
		t.Fatalf("appends grew %d -> %d on a wedged log", before, got)
	}
}

func testSnapshot() wire.Snapshot {
	return wire.Snapshot{
		Format:  wire.SnapshotFormat,
		NextLSN: 42,
		Records: []wire.StepRecord{
			{Host: 1, Step: 0, Flow: wire.Flow{Src: 1, Dst: 2, SrcPort: 7, DstPort: 8, Proto: 17}, Bytes: 100, StartNS: 5, EndNS: 9},
			{Host: 2, Step: 1, Flow: wire.Flow{Src: 2, Dst: 3}, Bytes: 50, StartNS: 9, EndNS: 12},
		},
		Reports: []wire.Report{{AtNS: 5, HopsPolled: 3}},
		CFs:     []wire.Flow{{Src: 1, Dst: 2, SrcPort: 7, DstPort: 8, Proto: 17}, {Src: 2, Dst: 3}},
		Acked:   []wire.ClientAck{{Client: "h1", Seq: 9}, {Client: "h2", Seq: 4}},
	}
}

func TestSnapshotWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := readSnapshot(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want no snapshot", ok, err)
	}
	want := testSnapshot()
	if err := writeSnapshot(dir, want); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, snapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := readSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("readSnapshot: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip lost data:\n%+v\nvs\n%+v", got, want)
	}
	// Determinism: writing the same state again is byte-identical.
	if err := writeSnapshot(dir, want); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(filepath.Join(dir, snapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("snapshot serialization not deterministic:\n%s\nvs\n%s", first, second)
	}
	// No temp debris left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1: %v", len(entries), entries)
	}
}

func TestReadSnapshotRejectsCorruptAndWrongFormat(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readSnapshot(dir); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName), []byte(`{"format":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readSnapshot(dir); err == nil {
		t.Fatal("wrong-format snapshot accepted")
	}
}

// FuzzWALDecode: the entry decoder must make progress or stop with one of
// the two replay-terminating errors on arbitrary bytes — never panic,
// never loop — and whatever it accepts must re-encode to the same bytes.
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeWALEntry(nil, 1, []byte(`{"type":"cf","cf":{"src":1,"dst":2}}`)))
	f.Add(encodeWALEntry(encodeWALEntry(nil, 1, []byte("a")), 2, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			lsn, payload, next, err := decodeWALEntry(rest)
			if err != nil {
				if !errors.Is(err, errWALTorn) && !errors.Is(err, errWALCorrupt) {
					t.Fatalf("unexpected decode error class: %v", err)
				}
				return
			}
			if len(next) >= len(rest) {
				t.Fatalf("decode made no progress at %d bytes", len(rest))
			}
			consumed := rest[:len(rest)-len(next)]
			if re := encodeWALEntry(nil, lsn, payload); !bytes.Equal(re, consumed) {
				t.Fatalf("re-encode mismatch:\n% x\nvs\n% x", re, consumed)
			}
			rest = next
		}
	})
}
