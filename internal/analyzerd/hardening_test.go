package analyzerd

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/topo"
)

// runContentionCase simulates one contention case and returns its analyzer
// inputs (records, reports, collective flows).
func runContentionCase(t *testing.T, cfg scenario.Config) scenario.Result {
	t.Helper()
	cs, err := scenario.GenerateCase(scenario.Contention, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, scenario.DefaultRunOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || len(res.Reports) == 0 || len(res.CFs) == 0 {
		t.Fatal("setup: contention case produced no analyzer inputs")
	}
	return res
}

// waitStats polls until the predicate holds over the server's stats or the
// deadline passes.
func waitStats(t *testing.T, s *Server, what string, ok func(ServerStats) bool) {
	t.Helper()
	//lint:ignore nosystime deadline for a real TCP server's background work
	deadline := time.Now().Add(5 * time.Second)
	//lint:ignore nosystime polling a real network service, not simulated state
	for time.Now().Before(deadline) {
		if ok(s.Stats()) {
			return
		}
		//lint:ignore nosystime backoff between polls of the real TCP daemon
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stats never reached %s: %+v", what, s.Stats())
}

// TestStalledClientTimesOut: a connection that stops delivering bytes is
// dropped by the per-read deadline — the handler does not sit on it
// forever.
func TestStalledClientTimesOut(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", ServerConfig{ReadTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send half a line, then stall.
	if _, err := conn.Write([]byte(`{"type":"cf"`)); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, "TimedOut > 0", func(st ServerStats) bool { return st.TimedOut > 0 })
}

// TestCloseNotBlockedByStalledClient: even with the read deadline disabled,
// Close severs live connections out from under their handlers instead of
// waiting for a stalled peer.
func TestCloseNotBlockedByStalledClient(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", ServerConfig{}) // no read timeout
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"cf"`)); err != nil { // half a line, then stall
		t.Fatal(err)
	}
	//lint:ignore nosystime let the real TCP server enter its blocking read first
	time.Sleep(10 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	//lint:ignore nosystime watchdog on a real Close call that must not hang
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a stalled client")
	}
}

// TestOversizedLineTerminatesConnection: a line beyond MaxLineBytes kills
// that connection (counted), without growing the scanner buffer unboundedly
// and without poisoning the listener for other clients.
func TestOversizedLineTerminatesConnection(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", ServerConfig{MaxLineBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(strings.Repeat("x", 8<<10) + "\n")); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv, "Oversized > 0", func(st ServerStats) bool { return st.Oversized > 0 })
	// The listener still serves a well-behaved client.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendCF(fabric.FlowKey{Src: 1, Dst: 2, SrcPort: 7, DstPort: 8, Proto: 17}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, srv, 0, 0, 1)
}

// TestMalformedLineSkipped: garbage on the wire is counted and skipped; the
// same connection keeps working and later valid messages still ingest.
func TestMalformedLineSkipped(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lines := "not json at all\n" + // malformed
		`{"type":"bogus"}` + "\n" + // unknown type
		`{"type":"cf","cf":{"src":1,"dst":2,"sport":7,"dport":8,"proto":17}}` + "\n"
	if _, err := conn.Write([]byte(lines)); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, srv, 0, 0, 1)
	if st := srv.Stats(); st.Malformed != 2 {
		t.Fatalf("Malformed = %d, want 2: %+v", st.Malformed, st)
	}
}

// flakyProxy forwards client↔server traffic but severs the first
// connection after forwarding cutLines lines from the client, simulating a
// connection failure mid-submission. Later connections forward everything.
func flakyProxy(t *testing.T, target string, cutLines int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		first := true
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			go io.Copy(c, s) // server→client (acks)
			go func(c, s net.Conn, limited bool) {
				defer c.Close()
				defer s.Close()
				sc := bufio.NewScanner(c)
				n := 0
				for sc.Scan() {
					if _, err := fmt.Fprintf(s, "%s\n", sc.Bytes()); err != nil {
						return
					}
					if n++; limited && n >= cutLines {
						return
					}
				}
			}(c, s, first)
			first = false
		}
	}()
	return ln.Addr().String()
}

// TestReliableClientExactlyOnce: a connection failure mid-flush triggers
// reconnect + resubmission, and the server's per-client ack highwater
// suppresses anything it had already ingested — the final counts are exact.
func TestReliableClientExactlyOnce(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := flakyProxy(t, srv.Addr(), 2)

	rc, err := NewReliableClient(proxy, ClientConfig{
		ID:    "agent-0",
		Sleep: func(time.Duration) {}, // no real backoff in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		flow := fabric.FlowKey{Src: topo.NodeID(i), Dst: 99, SrcPort: 1000 + uint16(i), DstPort: 1, Proto: 17}
		if err := rc.SendCF(flow); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Pending() != n {
		t.Fatalf("pending = %d before flush", rc.Pending())
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("flush through flaky proxy: %v", err)
	}
	if rc.Pending() != 0 {
		t.Fatalf("pending = %d after successful flush", rc.Pending())
	}
	if rc.Stats.Reconnects == 0 || rc.Stats.Resubmitted == 0 {
		t.Fatalf("cut connection never exercised the retry path: %+v", rc.Stats)
	}
	// Exactly once: 5 distinct flows, no more, no less — duplicates from
	// the resubmission were suppressed by the ack highwater.
	if _, _, cfs := srv.Counts(); cfs != n {
		t.Fatalf("cfs = %d, want exactly %d", cfs, n)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReliableClientBackoffExhaustion: with nothing listening, Flush fails
// after MaxAttempts with exponential backoff between attempts, and the
// pending buffer survives for a later retry.
func TestReliableClientBackoffExhaustion(t *testing.T) {
	// Reserve an address with nothing behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var sleeps []time.Duration
	rc, err := NewReliableClient(addr, ClientConfig{
		ID:          "agent-1",
		MaxAttempts: 4,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  25 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SendCF(fabric.FlowKey{Src: 1, Dst: 2, Proto: 17}); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err == nil {
		t.Fatal("flush succeeded with nothing listening")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (doubling, capped)", i, sleeps[i], want[i])
		}
	}
	if rc.Pending() != 1 {
		t.Fatalf("pending buffer lost on failure: %d", rc.Pending())
	}
}

// TestReliableClientAllTypes: the sequenced path carries all three message
// types and a drained client's second Flush is a no-op.
func TestReliableClientAllTypes(t *testing.T) {
	cfg := testConfig()
	res := runContentionCase(t, cfg)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := NewReliableClient(srv.Addr(), ClientConfig{ID: "agent-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SendStep(res.Records[0]); err != nil {
		t.Fatal(err)
	}
	if err := rc.SendReport(res.Reports[0]); err != nil {
		t.Fatal(err)
	}
	var cf fabric.FlowKey
	for k := range res.CFs {
		cf = k
		break
	}
	if err := rc.SendCF(cf); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil { // drained: no-op
		t.Fatal(err)
	}
	if recs, reps, cfs := srv.Counts(); recs != 1 || reps != 1 || cfs != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/1", recs, reps, cfs)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
}
