package analyzerd

import (
	"encoding/json"
	"fmt"
	"net"

	"vedrfolnir/internal/wire"
)

// ShardConfig places a Server inside a diagnosis fleet: Map is the
// fleet-wide consistent-hash shard map (identical on the router and
// every shard) and Index this daemon's slot in it. See
// ServerConfig.Shard for the behavioral contract.
type ShardConfig struct {
	Map   wire.ShardMap
	Index int
}

func (c *ShardConfig) ring() (*wire.HashRing, error) {
	ring, err := wire.NewHashRing(c.Map)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: shard config: %w", err)
	}
	if c.Index < 0 || c.Index >= c.Map.Shards {
		return nil, fmt.Errorf("analyzerd: shard index %d outside map of %d shards", c.Index, c.Map.Shards)
	}
	return ring, nil
}

// disownedBy reports whether client is a named client the shard map
// assigns to a different shard, and which one. Always false outside
// shard mode and for unnamed (peer-keyed) submissions. The ring is
// read under shardMu: a live remap may swap it at any time.
func (s *Server) disownedBy(client string) (owner int, moved bool) {
	if s.cfg.Shard == nil || client == "" {
		return 0, false
	}
	s.shardMu.RLock()
	ring := s.ring
	s.shardMu.RUnlock()
	owner = ring.Owner(client)
	return owner, owner != s.cfg.Shard.Index
}

// curShardMap returns the map the shard is currently running under.
func (s *Server) curShardMap() wire.ShardMap {
	s.shardMu.RLock()
	defer s.shardMu.RUnlock()
	return s.shardMap
}

// replyMoved NACKs a submission for a client another shard owns. The
// reply is retryable and announces the owner index plus the shard map
// it was derived from, so a ReliableClient (or the router on its
// behalf) can rehash, redial the owning shard, and resubmit — the
// message is not lost.
func (s *Server) replyMoved(conn net.Conn, seq int64, client string, owner int) {
	reason := fmt.Sprintf("client %q belongs to shard %d", client, owner)
	m, err := json.Marshal(s.curShardMap())
	if err != nil {
		m = []byte("{}") // a flat int struct cannot fail to marshal
	}
	if seq > 0 {
		s.replyf(conn, `{"nak":%d,"moved":true,"owner":%d,"map":%s,"error":%q,"retry":true}`+"\n",
			seq, owner, m, reason)
	} else {
		s.replyf(conn, `{"moved":true,"owner":%d,"map":%s,"error":%q,"retry":true}`+"\n", owner, m, reason)
	}
}

// replyDump answers the "dump" verb with this shard's full sourced
// message state as one wire.ShardState JSON line. Outside shard mode
// the verb is an error — a standalone daemon does not retain message
// provenance.
func (s *Server) replyDump(conn net.Conn) {
	if s.cfg.Shard == nil {
		s.replyf(conn, `{"error":"not a fleet shard"}`+"\n")
		return
	}
	state := s.ShardState()
	b, err := json.Marshal(state)
	if err != nil {
		s.replyf(conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	b = append(b, '\n')
	s.replyf(conn, "%s", b)
}

// ShardState returns the shard's accepted messages (ingest order) and
// per-client ack highwaters, with its position in the fleet under the
// *current* (possibly remapped) shard map. Only meaningful in shard
// mode; a standalone server returns an empty state.
func (s *Server) ShardState() *wire.ShardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	state := &wire.ShardState{Format: wire.ShardStateFormat}
	if s.cfg.Shard != nil {
		state.Shard = s.cfg.Shard.Index
		state.Map = s.curShardMap()
		state.Acked = s.ackedLocked()
	}
	state.Messages = append(state.Messages, s.sourced...)
	return state
}

// sourcedFromMessage strips a protocol message to its durable identity
// + payload form.
func sourcedFromMessage(msg *Message) wire.SourcedMessage {
	return wire.SourcedMessage{
		Client: msg.Client,
		Seq:    msg.Seq,
		Type:   msg.Type,
		Step:   msg.Step,
		Report: msg.Report,
		CF:     msg.CF,
	}
}

// messageFromSourced is the inverse of sourcedFromMessage.
func messageFromSourced(sm wire.SourcedMessage) *Message {
	return &Message{
		Type:   sm.Type,
		Step:   sm.Step,
		Report: sm.Report,
		CF:     sm.CF,
		Seq:    sm.Seq,
		Client: sm.Client,
	}
}

// Abort is the in-process stand-in for SIGKILL, for crash tests and the
// in-process fleet harness: connections die, the listener closes,
// whatever the fsync policy already made durable stays on disk, and no
// drain snapshot or final sync is written. The WAL file handle is
// abandoned (closed without flushing), exactly what a killed process
// leaves behind.
func (s *Server) Abort() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.closed = true
	s.draining = true
	for conn := range s.conns {
		_ = conn.Close() // severing peers, as a kill would
	}
	s.mu.Unlock()
	_ = s.ln.Close() // severing the listener, as a kill would
	s.wg.Wait()
	close(s.queue)
	<-s.applierDone
	if s.wal != nil {
		s.wal.abandon()
	}
}
