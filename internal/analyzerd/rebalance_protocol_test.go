package analyzerd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/wire"
)

// adminLine sends one raw admin verb line and decodes the JSON reply —
// the exact exchange the fleet router drives during a rebalance.
func adminLine(t *testing.T, addr, line string) map[string]any {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		t.Fatalf("write %q: %v", line, err)
	}
	reply, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("read reply to %q: %v", line, err)
	}
	var m map[string]any
	if err := json.Unmarshal(reply, &m); err != nil {
		t.Fatalf("bad reply %q: %v", reply, err)
	}
	return m
}

func remapLine(t *testing.T, m wire.ShardMap) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"type":"remap","map":%s}`, b)
}

func adoptLine(t *testing.T, h *wire.Handoff) string {
	t.Helper()
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"type":"adopt","handoff":%s}`, b)
}

func wantErrContaining(t *testing.T, reply map[string]any, sub string) {
	t.Helper()
	e, _ := reply["error"].(string)
	if e == "" || !strings.Contains(e, sub) {
		t.Errorf("reply = %v, want error containing %q", reply, sub)
	}
}

// TestShardRemapEpochProtocol pins the shard-side epoch state machine:
// stale maps are rejected and counted, the installed map re-delivered is
// an idempotent success (how the router retries through a kill), a
// different map at the same epoch is a hard conflict, and a newer map
// installs live — dropping exactly the clients it assigns elsewhere.
func TestShardRemapEpochProtocol(t *testing.T) {
	m1 := wire.ShardMap{Shards: 1, Epoch: 1}
	srv := shardServe(t, m1, 0, "")
	defer srv.Close()

	// Everything is owned under a 1-shard map; find a client the grown
	// map reassigns and one it keeps.
	m2 := wire.ShardMap{Shards: 2, Epoch: 2}
	moved, kept := ownedAndDisowned(t, m2, 1) // moved -> shard 1, kept stays on 0
	for _, id := range []string{moved, kept} {
		rc, err := NewReliableClient(srv.Addr(), ClientConfig{ID: id, MaxAttempts: 2, Sleep: noSleep})
		if err != nil {
			t.Fatal(err)
		}
		if err := rc.SendCF(testFlow(3).Key()); err != nil {
			t.Fatal(err)
		}
		if err := rc.Flush(); err != nil {
			t.Fatalf("%s flush: %v", id, err)
		}
	}

	// Stale epoch: behind the shard's current map.
	wantErrContaining(t, adminLine(t, srv.Addr(), remapLine(t, wire.ShardMap{Shards: 1, Epoch: 0})), "stale")
	// Idempotent re-delivery of the installed map.
	reply := adminLine(t, srv.Addr(), remapLine(t, m1))
	if reply["remapped"] != true || reply["epoch"] != float64(1) {
		t.Errorf("idempotent remap reply = %v", reply)
	}
	// Same epoch, different map: a split-brain artifact, hard error.
	wantErrContaining(t, adminLine(t, srv.Addr(), remapLine(t, wire.ShardMap{Shards: 1, Replicas: 8, Epoch: 1})), "conflicting")
	if st := srv.Stats(); st.StaleEpochs != 1 || st.Remaps != 0 {
		t.Errorf("stats = %+v, want StaleEpochs=1 Remaps=0 before install", st)
	}

	// The real install: epoch 2 doubles the fleet, reassigning `moved`.
	reply = adminLine(t, srv.Addr(), remapLine(t, m2))
	if reply["remapped"] != true || reply["reassigned"] != float64(1) {
		t.Errorf("install reply = %v, want remapped with 1 reassigned", reply)
	}
	state := dumpState(t, srv.Addr())
	if state.Map != m2 {
		t.Errorf("dump map = %+v, want the installed %+v", state.Map, m2)
	}
	if len(state.Messages) != 1 || state.Messages[0].Client != kept {
		t.Errorf("post-remap messages = %+v, want only %s's", state.Messages, kept)
	}
	if st := srv.Stats(); st.Remaps != 1 {
		t.Errorf("Remaps = %d, want 1", st.Remaps)
	}

	// And now the old map is the stale one.
	wantErrContaining(t, adminLine(t, srv.Addr(), remapLine(t, m1)), "stale")
}

// TestShardRemapRefusesRemoval: a shrink stops removed shards, it never
// remaps them — a shard must not install a map that disowns everything.
func TestShardRemapRefusesRemoval(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	srv := shardServe(t, m, 1, "")
	defer srv.Close()
	wantErrContaining(t, adminLine(t, srv.Addr(), remapLine(t, wire.ShardMap{Shards: 1, Epoch: 1})), "removes shard")
}

// TestShardAdoptProtocol drives a real grow handoff: donor state is
// dumped and sliced exactly as the router does it, then delivered to
// the adoptee — after the epoch fences are probed from both sides.
func TestShardAdoptProtocol(t *testing.T) {
	m1 := wire.ShardMap{Shards: 1}
	m2 := wire.ShardMap{Shards: 2, Epoch: 1}
	donor := shardServe(t, m1, 0, "")
	defer donor.Close()
	adoptee := shardServe(t, m2, 1, "") // grow target, born on the new map
	defer adoptee.Close()

	mover, stayer := ownedAndDisowned(t, m2, 1)
	for i, id := range []string{mover, stayer} {
		rc, err := NewReliableClient(donor.Addr(), ClientConfig{ID: id, MaxAttempts: 2, Sleep: noSleep})
		if err != nil {
			t.Fatal(err)
		}
		if err := rc.SendCF(testFlow(i).Key()); err != nil {
			t.Fatal(err)
		}
		if err := rc.SendStep(collective.StepRecord{Host: topo.NodeID(i + 1), Step: i, Flow: testFlow(i).Key(), Bytes: 100}); err != nil {
			t.Fatal(err)
		}
		if err := rc.Flush(); err != nil {
			t.Fatalf("%s flush: %v", id, err)
		}
	}
	handoffs, err := wire.BuildHandoffs(dumpState(t, donor.Addr()), m2)
	if err != nil {
		t.Fatalf("BuildHandoffs: %v", err)
	}
	if len(handoffs) != 1 || handoffs[0].To != 1 || len(handoffs[0].Messages) != 2 {
		t.Fatalf("handoffs = %+v, want one 2-message unit for shard 1", handoffs)
	}
	h := handoffs[0]

	// Epoch ahead of the adoptee: the router's remap is still in
	// flight somewhere — retryable, not fatal.
	ahead := *h
	ahead.Map.Epoch = 2
	reply := adminLine(t, adoptee.Addr(), adoptLine(t, &ahead))
	if reply["retry"] != true {
		t.Errorf("epoch-ahead adopt reply = %v, want retry:true", reply)
	}
	// Epoch behind: a different, finished rebalance. Hard error.
	stale := *h
	stale.Map = wire.ShardMap{Shards: 2}
	wantErrContaining(t, adminLine(t, adoptee.Addr(), adoptLine(t, &stale)), "stale")
	// Misdelivered unit.
	wrong := *h
	wrong.To = 5
	wantErrContaining(t, adminLine(t, adoptee.Addr(), adoptLine(t, &wrong)), "targets shard")
	// A handoff carrying a client the ring does not place here is a
	// corrupt artifact, refused before any mutation.
	alien := *h
	alien.Messages = append([]wire.SourcedMessage{}, h.Messages...)
	alien.Messages[0].Client = stayer
	wantErrContaining(t, adminLine(t, adoptee.Addr(), adoptLine(t, &alien)), "does not own")

	// The genuine delivery.
	reply = adminLine(t, adoptee.Addr(), adoptLine(t, h))
	if reply["adopted"] != float64(2) {
		t.Fatalf("adopt reply = %v, want adopted:2", reply)
	}
	// Retried delivery (the router re-sends through a kill): dedups to
	// zero instead of double-ingesting.
	reply = adminLine(t, adoptee.Addr(), adoptLine(t, h))
	if reply["adopted"] != float64(0) {
		t.Errorf("re-adopt reply = %v, want adopted:0", reply)
	}
	state := dumpState(t, adoptee.Addr())
	if len(state.Messages) != 2 {
		t.Fatalf("adoptee holds %d messages, want 2", len(state.Messages))
	}
	for _, sm := range state.Messages {
		if sm.Client != mover {
			t.Errorf("adoptee holds %s's message, want only %s's", sm.Client, mover)
		}
	}
	// The ack highwater moved with the data: a straggler resubmission
	// of an already-acked seq dedups at the new owner.
	found := false
	for _, ack := range state.Acked {
		if ack.Client == mover && ack.Seq == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("adoptee acks = %+v, want %s at seq 2", state.Acked, mover)
	}
	if st := adoptee.Stats(); st.Adopted != 2 || st.StaleEpochs != 1 {
		t.Errorf("adoptee stats = %+v, want Adopted=2 StaleEpochs=1", st)
	}
}

// TestAdminVerbsRefusedOutsideFleet: resize belongs to the router, and
// a standalone (unsharded) server has no business remapping.
func TestAdminVerbsRefusedOutsideFleet(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wantErrContaining(t, adminLine(t, srv.Addr(), remapLine(t, wire.ShardMap{Shards: 1})), "not a fleet shard")

	m := wire.ShardMap{Shards: 2}
	shard := shardServe(t, m, 0, "")
	defer shard.Close()
	wantErrContaining(t, adminLine(t, shard.Addr(), `{"type":"resize","map":{"shards":3}}`), "router")
}

// TestReliableClientRehash: a client pointed at the wrong shard rides
// the moved NACK's announced map through its Rehash hook instead of
// surfacing ErrRedirected — the straggler path of a live rebalance.
func TestReliableClientRehash(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	srvs := make([]*Server, 2)
	for i := range srvs {
		srvs[i] = shardServe(t, m, i, "")
		defer srvs[i].Close()
	}
	owned, _ := ownedAndDisowned(t, m, 1)

	// Dial shard 0 with a client shard 1 owns.
	rc, err := NewReliableClient(srvs[0].Addr(), ClientConfig{
		ID: owned, MaxAttempts: 4, Sleep: noSleep,
		Rehash: func(gotMap wire.ShardMap, gotOwner int) (string, bool) {
			if gotMap != m || gotOwner != 1 {
				t.Errorf("Rehash announced map %+v owner %d, want %+v owner 1", gotMap, gotOwner, m)
			}
			return srvs[gotOwner].Addr(), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SendCF(testFlow(0).Key()); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("Flush through Rehash: %v", err)
	}
	if rc.Stats.Remapped != 1 {
		t.Errorf("Stats.Remapped = %d, want 1", rc.Stats.Remapped)
	}
	if got := dumpState(t, srvs[1].Addr()); len(got.Messages) != 1 {
		t.Errorf("owning shard holds %d messages, want the rehashed delivery", len(got.Messages))
	}
}

// TestReliableClientRehashBounded: a Rehash that keeps pointing at a
// wrong shard cannot loop — MaxRemaps caps it and ErrRedirected
// surfaces as before.
func TestReliableClientRehashBounded(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	srv := shardServe(t, m, 0, "")
	defer srv.Close()
	_, disowned := ownedAndDisowned(t, m, 0)

	calls := 0
	rc, err := NewReliableClient(srv.Addr(), ClientConfig{
		ID: disowned, MaxAttempts: 8, MaxRemaps: 2, Sleep: noSleep,
		Rehash: func(wire.ShardMap, int) (string, bool) {
			calls++
			return srv.Addr(), true // stubbornly wrong
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SendCF(testFlow(0).Key()); err != nil {
		t.Fatal(err)
	}
	err = rc.Flush()
	if err == nil {
		t.Fatal("Flush through a wrong-address Rehash loop should fail")
	}
	if calls != 2 {
		t.Errorf("Rehash called %d times, want MaxRemaps=2", calls)
	}
	if rc.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (nothing lost)", rc.Pending())
	}
}
