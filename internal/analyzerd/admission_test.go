package analyzerd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/topo"
)

func sendLine(t *testing.T, conn net.Conn, line string) {
	t.Helper()
	if _, err := fmt.Fprintln(conn, line); err != nil {
		t.Fatal(err)
	}
}

type testReply struct {
	Ack   int64  `json:"ack"`
	Nak   int64  `json:"nak"`
	Error string `json:"error"`
	Retry bool   `json:"retry"`
}

// readReplies reads n reply lines (any order — handler nacks and applier
// acks race on the wire) within a real-network deadline.
func readReplies(t *testing.T, br *bufio.Reader, conn net.Conn, n int) []testReply {
	t.Helper()
	//lint:ignore nosystime reply deadline on a real TCP connection
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	out := make([]testReply, 0, n)
	for i := 0; i < n; i++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading reply %d/%d: %v (have %+v)", i+1, n, err, out)
		}
		var rep testReply
		if err := json.Unmarshal(line, &rep); err != nil {
			t.Fatalf("bad reply %q: %v", line, err)
		}
		out = append(out, rep)
	}
	return out
}

func expectReply(t *testing.T, conn net.Conn, want string) {
	t.Helper()
	//lint:ignore nosystime reply deadline on a real TCP connection
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if got := line[:len(line)-1]; got != want {
		t.Fatalf("reply %q, want %q", got, want)
	}
}

// fakeClock is a mutex-guarded manual clock for rate-limit and TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func waitConns(t *testing.T, srv *Server, n int) {
	t.Helper()
	//lint:ignore nosystime polling a real TCP server's connection count
	deadline := time.Now().Add(5 * time.Second)
	//lint:ignore nosystime polling a real TCP server's connection count
	for time.Now().Before(deadline) {
		if srv.Conns() == n {
			return
		}
		//lint:ignore nosystime backoff between polls of the real TCP daemon
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server still has %d conns, want %d", srv.Conns(), n)
}

// TestOutOfOrderSeqNacked: the applier's contiguity check — a sequence
// gap above a live highwater (created when an earlier message was
// load-shed) must bounce as a retryable nak, never advance the cumulative
// highwater past the hole.
func TestOutOfOrderSeqNacked(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	if rep := readReplies(t, br, conn, 1)[0]; rep.Ack != 1 {
		t.Fatalf("first message reply %+v, want ack 1", rep)
	}
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":3},"seq":3,"client":"h1"}`)
	reps := readReplies(t, br, conn, 1)
	if reps[0].Nak != 3 || !reps[0].Retry {
		t.Fatalf("gap reply %+v, want retryable nak 3", reps[0])
	}
	if _, _, cfs := srv.Counts(); cfs != 1 {
		t.Fatal("gapped message was ingested")
	}
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":4},"seq":2,"client":"h1"}`)
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":3},"seq":3,"client":"h1"}`)
	acked := map[int64]bool{}
	for _, rep := range readReplies(t, br, conn, 2) {
		if rep.Ack == 0 {
			t.Fatalf("in-order resubmission not acked: %+v", rep)
		}
		acked[rep.Ack] = true
	}
	if !acked[2] || !acked[3] {
		t.Fatalf("acks %v, want 2 and 3", acked)
	}
	if ov := srv.Stats().Overloaded; ov != 1 {
		t.Fatalf("Overloaded = %d, want 1 (the gap nak)", ov)
	}
}

// TestSeqBaselineForFreshClient: a client the server has no state for —
// first contact, an ack window evicted by AckTTL, or state lost to a
// non-durable restart — resumes mid-sequence, because its counter is
// process-lifetime monotonic. The applier must accept the first seen seq
// as the new baseline instead of demanding seq 1 forever (the wedge: every
// resubmission NACKed "out of order", the client stuck in backoff until
// its pending buffer overflows).
func TestSeqBaselineForFreshClient(t *testing.T) {
	clock := newFakeClock()
	cfg := DefaultServerConfig()
	cfg.AckTTL = time.Minute
	cfg.Now = clock.Now
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A brand-new client starting above seq 1 (it lived through a server
	// restart that lost the ack windows) baselines immediately.
	conn1, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sendLine(t, conn1, `{"type":"cf","cf":{"src":1,"dst":2},"seq":41,"client":"h1"}`)
	expectReply(t, conn1, `{"ack":41}`)
	sendLine(t, conn1, `{"type":"cf","cf":{"src":1,"dst":3},"seq":42,"client":"h1"}`)
	expectReply(t, conn1, `{"ack":42}`)
	conn1.Close()
	waitConns(t, srv, 0)

	// Evict h1's window: idle past the TTL, swept by another client's
	// disconnect.
	clock.Advance(2 * time.Minute)
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sendLine(t, conn2, `{"type":"cf","cf":{"src":2,"dst":3},"seq":1,"client":"h2"}`)
	expectReply(t, conn2, `{"ack":1}`)
	conn2.Close()
	waitConns(t, srv, 0)
	if ev := srv.Stats().AckEvictions; ev != 1 {
		t.Fatalf("AckEvictions = %d, want 1 (h1 idle past TTL)", ev)
	}

	// h1 returns with its counter further along: the evicted window must
	// re-baseline at the first seen seq, and contiguity resumes from there.
	conn3, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	sendLine(t, conn3, `{"type":"cf","cf":{"src":1,"dst":4},"seq":57,"client":"h1"}`)
	expectReply(t, conn3, `{"ack":57}`)
	sendLine(t, conn3, `{"type":"cf","cf":{"src":1,"dst":5},"seq":58,"client":"h1"}`)
	expectReply(t, conn3, `{"ack":58}`)
	sendLine(t, conn3, `{"type":"cf","cf":{"src":1,"dst":6},"seq":60,"client":"h1"}`)
	br := bufio.NewReader(conn3)
	if rep := readReplies(t, br, conn3, 1)[0]; rep.Nak != 60 || !rep.Retry {
		t.Fatalf("gap above rebuilt highwater: %+v, want retryable nak 60", rep)
	}
	if _, _, cfs := srv.Counts(); cfs != 5 {
		t.Fatalf("ingested %d cfs, want 5", cfs)
	}
}

// TestRateLimitTokenBucket: with an injected clock, a client gets exactly
// its burst, the over-limit message is nacked retryable, and refilled
// tokens admit the retry.
func TestRateLimitTokenBucket(t *testing.T) {
	clock := newFakeClock()
	cfg := DefaultServerConfig()
	cfg.RateLimit = RateLimit{Rate: 1, Burst: 2}
	cfg.Now = clock.Now
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":3},"seq":2,"client":"h1"}`)
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":4},"seq":3,"client":"h1"}`)
	var naks, acks int
	for _, rep := range readReplies(t, br, conn, 3) {
		switch {
		case rep.Ack > 0:
			acks++
		case rep.Nak == 3 && rep.Retry:
			naks++
		default:
			t.Fatalf("unexpected reply %+v", rep)
		}
	}
	if acks != 2 || naks != 1 {
		t.Fatalf("acks=%d naks=%d, want 2 acks and 1 retryable nak", acks, naks)
	}
	if rl := srv.Stats().RateLimited; rl != 1 {
		t.Fatalf("RateLimited = %d, want 1", rl)
	}

	clock.Advance(2 * time.Second) // refills 2 tokens
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":4},"seq":3,"client":"h1"}`)
	reps := readReplies(t, br, conn, 1)
	if reps[0].Ack != 3 {
		t.Fatalf("refilled retry reply %+v, want ack 3", reps[0])
	}
	if _, _, cfs := srv.Counts(); cfs != 3 {
		t.Fatalf("ingested %d cfs, want 3", cfs)
	}
}

// TestAckWindowEviction: a disconnected client's dedup state is dropped
// after the idle TTL — the per-client map must not grow forever — and the
// eviction is counted.
func TestAckWindowEviction(t *testing.T) {
	clock := newFakeClock()
	cfg := DefaultServerConfig()
	cfg.AckTTL = time.Minute
	cfg.Now = clock.Now
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn1, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sendLine(t, conn1, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	expectReply(t, conn1, `{"ack":1}`)
	conn1.Close()
	waitConns(t, srv, 0)

	clock.Advance(2 * time.Minute)

	// Another client's disconnect sweeps the idle window.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sendLine(t, conn2, `{"type":"cf","cf":{"src":2,"dst":3},"seq":1,"client":"h2"}`)
	expectReply(t, conn2, `{"ack":1}`)
	conn2.Close()
	waitConns(t, srv, 0)

	if ev := srv.Stats().AckEvictions; ev != 1 {
		t.Fatalf("AckEvictions = %d, want 1 (h1 idle past TTL)", ev)
	}
	// h1's window is gone: a fresh seq 1 is accepted as new, not deduped.
	conn3, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	sendLine(t, conn3, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	expectReply(t, conn3, `{"ack":1}`)
	if d := srv.Stats().Duplicates; d != 0 {
		t.Fatalf("Duplicates = %d after eviction, want 0", d)
	}
}

func TestReliableClientErrQueueFull(t *testing.T) {
	rc, err := NewReliableClient("127.0.0.1:1", ClientConfig{ID: "h1", MaxPending: 2, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.FlowKey{Src: 1, Dst: 2}
	if err := rc.SendCF(f); err != nil {
		t.Fatal(err)
	}
	if err := rc.SendCF(f); err != nil {
		t.Fatal(err)
	}
	err = rc.SendCF(f)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third send: %v, want ErrQueueFull", err)
	}
	if rc.Pending() != 2 {
		t.Fatalf("pending %d, want 2", rc.Pending())
	}
}

// TestOverloadBackpressureRetry: a full ingest queue NACKs instead of
// buffering without bound, and the reliable client backs off and
// resubmits until everything lands exactly once.
func TestOverloadBackpressureRetry(t *testing.T) {
	gate := make(chan struct{})
	cfg := DefaultServerConfig()
	cfg.MaxQueue = 1
	cfg.testApplyGate = gate
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var release sync.Once
	open := func() { release.Do(func() { close(gate) }) }
	defer func() {
		open() // never leave the applier parked if the test fails early
		srv.Close()
	}()

	rc, err := NewReliableClient(srv.Addr(), ClientConfig{
		ID:          "h1",
		MaxAttempts: 8,
		AckTimeout:  200 * time.Millisecond,
		Sleep:       func(time.Duration) { open() },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := rc.SendCF(fabric.FlowKey{Src: topo.NodeID(i + 1), Dst: 99}); err != nil {
			t.Fatal(err)
		}
	}
	// First attempt slams a parked applier with queue capacity 1: at most
	// two messages can be in flight, the rest must come back as retryable
	// naks. The Sleep hook then releases the applier and the retry drains.
	if err := rc.Flush(); err != nil {
		t.Fatalf("flush never recovered from overload: %v", err)
	}
	if rc.Pending() != 0 {
		t.Fatalf("%d messages still pending", rc.Pending())
	}
	if rc.Stats.Backpressure < n-2 {
		t.Fatalf("client saw %d retryable naks, want >= %d", rc.Stats.Backpressure, n-2)
	}
	st := srv.Stats()
	if st.Overloaded < n-2 {
		t.Fatalf("server Overloaded = %d, want >= %d", st.Overloaded, n-2)
	}
	if _, _, cfs := srv.Counts(); cfs != n {
		t.Fatalf("ingested %d cfs, want %d (exactly once)", cfs, n)
	}
}

// TestWALWedgeStopsAcksAndReadiness: once the WAL wedges, every message
// is NACKed retryable (nothing is acked that recovery could lose),
// /readyz flips so a supervisor restarts the daemon, and — the baseline
// guard — a fresh client whose first message was shed by the wedge cannot
// have its successor accepted as a new baseline: the hole still bounces
// as out of order.
func TestWALWedgeStopsAcksAndReadiness(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultServerConfig()
	cfg.Durability = &DurabilityConfig{Dir: dir, Fsync: FsyncAlways}
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Ready(); err != nil {
		t.Fatalf("fresh server not ready: %v", err)
	}
	srv.wal.wedge(errors.New("injected: disk failure"))
	if err := srv.Ready(); err == nil {
		t.Fatal("server with wedged WAL still ready")
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	if rep := readReplies(t, br, conn, 1)[0]; rep.Nak != 1 || !rep.Retry {
		t.Fatalf("wedged-WAL reply %+v, want retryable nak 1", rep)
	}
	// seq 2 must not become h1's baseline past the shed seq 1.
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":3},"seq":2,"client":"h1"}`)
	if rep := readReplies(t, br, conn, 1)[0]; rep.Nak != 2 || !rep.Retry {
		t.Fatalf("successor of shed message: %+v, want retryable nak 2", rep)
	}
	if _, _, cfs := srv.Counts(); cfs != 0 {
		t.Fatalf("wedged server ingested %d cfs, want 0", cfs)
	}
	st := srv.Stats()
	if st.WALErrors != 1 {
		t.Fatalf("WALErrors = %d, want 1 (the shed seq 1)", st.WALErrors)
	}
	if st.Overloaded != 1 {
		t.Fatalf("Overloaded = %d, want 1 (the out-of-order seq 2)", st.Overloaded)
	}
}

func TestReadyFlipsOnDrain(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultServerConfig()
	cfg.Durability = &DurabilityConfig{Dir: dir, Fsync: FsyncAlways}
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Ready(); err != nil {
		t.Fatalf("fresh server not ready: %v", err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ready(); err == nil {
		t.Fatal("drained server still ready")
	}
	if err := srv.Drain(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
