package analyzerd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/wire"
)

// ClientConfig tunes the reliable submission path.
type ClientConfig struct {
	// ID names this client in the server's per-client dedup state; every
	// host agent must use a distinct ID. Required.
	ID string
	// MaxAttempts bounds connection attempts per Flush (default 5).
	MaxAttempts int
	// BackoffBase is the first reconnect delay; it doubles per attempt up
	// to BackoffMax (defaults 10ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// AckTimeout bounds one ack-read (default 10s): a server that stops
	// replying counts as a failed attempt instead of a hang.
	AckTimeout time.Duration
	// Sleep waits between reconnect attempts; tests inject a no-op to
	// avoid real delays. Nil uses time.Sleep.
	Sleep func(time.Duration)
	// MaxPending bounds the unacknowledged buffer: Send* returns
	// ErrQueueFull once this many messages await an ack, instead of
	// growing without bound while the analyzer is down. 0 uses the
	// default (4096); < 0 removes the bound.
	MaxPending int
	// Rehash, when set, turns shard-moved NACKs into live re-resolution
	// instead of ErrRedirected: the NACK's announced shard map and
	// owner index are passed in, and the returned address (with
	// ok=true) replaces the dial target before the next attempt. Return
	// ok=false to fall back to surfacing ErrRedirected. Fleet clients
	// that always speak to the router can simply return the router
	// address — the point is to ride out a live rebalance's straggler
	// window without erroring.
	Rehash func(m wire.ShardMap, owner int) (addr string, ok bool)
	// MaxRemaps bounds Rehash-driven re-resolutions per Flush (default
	// 4); each one also consumes a regular attempt.
	MaxRemaps int
}

// ErrQueueFull is returned by the Send methods when the unacknowledged
// buffer has reached ClientConfig.MaxPending. The caller should Flush (or
// shed load) before buffering more.
var ErrQueueFull = errors.New("analyzerd: client pending buffer full")

// ErrRedirected marks a Flush failure caused by shard-moved NACKs: the
// shard (or router) answering this address says another shard owns this
// client. The pending buffer is retained — the caller should redial the
// fleet router (or the owning shard) and Flush again; nothing was lost.
// Test with errors.Is.
var ErrRedirected = errors.New("analyzerd: client's shard moved")

// ClientStats counts the reliability machinery's work.
type ClientStats struct {
	// Reconnects counts re-dials after a connection failure.
	Reconnects int
	// Resubmitted counts messages sent again after a failure (the server
	// suppresses the ones it had already ingested).
	Resubmitted int
	// Rejected counts messages the server nak'd; they are dropped rather
	// than resubmitted forever.
	Rejected int
	// Backpressure counts retryable naks (overloaded / rate limited /
	// out of order); the nacked messages stay pending and are resubmitted
	// after backoff.
	Backpressure int
	// Redirected counts shard-moved naks: a fleet shard refused the
	// message because the shard map assigns this client elsewhere. The
	// messages stay pending; Flush surfaces ErrRedirected so the caller
	// can re-point the client at the router or the owning shard.
	Redirected int
	// Remapped counts successful Rehash re-resolutions: times a
	// shard-moved NACK was answered by re-pointing the client at the
	// address Rehash derived from the announced shard map, instead of
	// surfacing ErrRedirected.
	Remapped int
}

type pendingMsg struct {
	seq  int64
	line []byte
}

// ReliableClient is a host agent's at-least-once submission path: every
// message carries a per-client sequence number, Flush writes all buffered
// messages and waits for the server's acks, and a broken or stalled
// connection triggers reconnection with exponential backoff followed by
// resubmission of everything unacked. Combined with the server's dedup
// highwater this yields exactly-once ingestion across arbitrary connection
// failures. Not safe for concurrent use.
type ReliableClient struct {
	addr string
	cfg  ClientConfig

	conn    net.Conn
	br      *bufio.Reader
	seq     int64
	pending []pendingMsg

	// lastMoved remembers the newest shard-moved NACK's announced map
	// and owner, the input to a Rehash re-resolution.
	lastMoved struct {
		m     wire.ShardMap
		owner int
	}

	// Stats counts reconnects, resubmissions, and rejections.
	Stats ClientStats
}

// NewReliableClient builds a client for the given analyzer address. No
// connection is made until the first Flush, so a client can buffer while
// the analyzer is still coming up.
func NewReliableClient(addr string, cfg ClientConfig) (*ReliableClient, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("analyzerd: ClientConfig.ID is required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 10 * time.Second
	}
	if cfg.Sleep == nil {
		//lint:ignore nosystime reconnect backoff on a real network client; never runs inside the simulator
		cfg.Sleep = time.Sleep
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 4096
	}
	if cfg.MaxRemaps <= 0 {
		cfg.MaxRemaps = 4
	}
	return &ReliableClient{addr: addr, cfg: cfg}, nil
}

// Pending returns how many submitted messages await acknowledgement.
func (rc *ReliableClient) Pending() int { return len(rc.pending) }

func (rc *ReliableClient) enqueue(msg Message) error {
	if rc.cfg.MaxPending > 0 && len(rc.pending) >= rc.cfg.MaxPending {
		return fmt.Errorf("%w (%d unacked)", ErrQueueFull, len(rc.pending))
	}
	rc.seq++
	msg.Seq = rc.seq
	msg.Client = rc.cfg.ID
	line, err := json.Marshal(msg)
	if err != nil {
		rc.seq--
		return fmt.Errorf("analyzerd: %w", err)
	}
	rc.pending = append(rc.pending, pendingMsg{seq: msg.Seq, line: append(line, '\n')})
	return nil
}

// SendStep buffers a step record for the next Flush.
func (rc *ReliableClient) SendStep(rec collective.StepRecord) error {
	dto := wire.FromStepRecord(rec)
	return rc.enqueue(Message{Type: TypeStep, Step: &dto})
}

// SendReport buffers a telemetry report for the next Flush.
func (rc *ReliableClient) SendReport(rep *telemetry.Report) error {
	dto := wire.FromReport(rep)
	return rc.enqueue(Message{Type: TypeReport, Report: &dto})
}

// SendCF buffers one collective-flow announcement for the next Flush.
func (rc *ReliableClient) SendCF(flow fabric.FlowKey) error {
	dto := wire.FromFlow(flow)
	return rc.enqueue(Message{Type: TypeCF, CF: &dto})
}

// Flush delivers every buffered message and waits for its ack, retrying
// through connection failures with exponential backoff. It returns nil
// once nothing is pending; after MaxAttempts failed attempts the pending
// buffer is retained so a later Flush (or Close) can try again.
func (rc *ReliableClient) Flush() error {
	if len(rc.pending) == 0 {
		return nil
	}
	backoff := rc.cfg.BackoffBase
	var lastErr error
	remaps := 0
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.cfg.Sleep(backoff)
			backoff *= 2
			if backoff > rc.cfg.BackoffMax {
				backoff = rc.cfg.BackoffMax
			}
		}
		err := rc.attempt(attempt > 0)
		if err == nil {
			return nil
		}
		lastErr = err
		_ = rc.dropConn() // the attempt error is what matters; the conn is already broken
		if errors.Is(err, ErrRedirected) && rc.cfg.Rehash != nil && remaps < rc.cfg.MaxRemaps {
			// A live rebalance moved this client: re-resolve against the
			// announced map instead of hammering the stale address (or
			// surfacing ErrRedirected to a caller who can't act on it).
			if addr, ok := rc.cfg.Rehash(rc.lastMoved.m, rc.lastMoved.owner); ok {
				remaps++
				rc.Stats.Remapped++
				rc.addr = addr
			}
		}
	}
	return fmt.Errorf("analyzerd: flush failed after %d attempts: %w",
		rc.cfg.MaxAttempts, lastErr)
}

// attempt writes all pending messages on a (re)established connection and
// consumes ack/nak replies until the pending set drains or the connection
// errors.
func (rc *ReliableClient) attempt(isRetry bool) error {
	if rc.conn == nil {
		conn, err := net.Dial("tcp", rc.addr)
		if err != nil {
			return err
		}
		rc.conn = conn
		rc.br = bufio.NewReader(conn)
		if isRetry {
			rc.Stats.Reconnects++
		}
	}
	var buf bytes.Buffer
	for _, p := range rc.pending {
		buf.Write(p.line)
	}
	written := len(rc.pending)
	if isRetry {
		rc.Stats.Resubmitted += written
	}
	if _, err := rc.conn.Write(buf.Bytes()); err != nil {
		return err
	}
	type reply struct {
		Ack   int64          `json:"ack"`
		Nak   int64          `json:"nak"`
		Error string         `json:"error"`
		Retry bool           `json:"retry"`
		Moved bool           `json:"moved"`
		Owner int            `json:"owner"`
		Map   *wire.ShardMap `json:"map"`
	}
	// The server replies exactly once per submitted line (in order), so
	// read one reply per written message — a retryable nak leaves its
	// message pending, and the server's contiguity check guarantees no
	// later ack can leapfrog it.
	busy, moved := 0, 0
	for i := 0; i < written && len(rc.pending) > 0; i++ {
		//lint:ignore nosystime ack-read deadline on a real TCP connection; wall clock never reaches simulation state
		if err := rc.conn.SetReadDeadline(time.Now().Add(rc.cfg.AckTimeout)); err != nil {
			return err
		}
		line, err := rc.br.ReadBytes('\n')
		if err != nil {
			return err
		}
		var rep reply
		if err := json.Unmarshal(line, &rep); err != nil {
			return fmt.Errorf("bad reply %q: %w", line, err)
		}
		switch {
		case rep.Ack > 0:
			rc.dropThrough(rep.Ack, false)
		case rep.Moved:
			// Another shard owns this client (moved replies are also
			// retryable, so this case must precede Retry). The message
			// stays pending; the attempt ends in ErrRedirected so the
			// caller learns to re-point the client — or, with a Rehash
			// hook, Flush re-resolves from the announced map itself.
			moved++
			rc.Stats.Redirected++
			rc.lastMoved.owner = rep.Owner
			if rep.Map != nil {
				rc.lastMoved.m = *rep.Map
			}
		case rep.Retry:
			// Transient pressure (overloaded / rate limited / out of
			// order): the message stays pending for resubmission after
			// backoff.
			busy++
			rc.Stats.Backpressure++
		case rep.Nak > 0:
			rc.dropThrough(rep.Nak, true)
		default:
			// An un-sequenced error reply means the server could not even
			// parse our head-of-line message; resubmitting it would loop
			// forever, so drop it as rejected.
			rc.Stats.Rejected++
			rc.pending = rc.pending[1:]
		}
	}
	if len(rc.pending) > 0 {
		if moved > 0 {
			return fmt.Errorf("%w: %d shard-moved naks, %d still pending",
				ErrRedirected, moved, len(rc.pending))
		}
		return fmt.Errorf("server backpressure: %d retryable naks, %d still pending",
			busy, len(rc.pending))
	}
	return nil
}

// dropThrough removes every pending message with seq <= through (acks are
// cumulative: the server's highwater guarantees everything earlier was
// ingested or suppressed as a duplicate). rejected marks the boundary
// message as nak'd rather than delivered.
func (rc *ReliableClient) dropThrough(through int64, rejected bool) {
	kept := rc.pending[:0]
	for _, p := range rc.pending {
		if p.seq > through {
			kept = append(kept, p)
			continue
		}
		if rejected && p.seq == through {
			rc.Stats.Rejected++
		}
	}
	rc.pending = kept
}

func (rc *ReliableClient) dropConn() error {
	var err error
	if rc.conn != nil {
		err = rc.conn.Close()
		rc.conn = nil
		rc.br = nil
	}
	return err
}

// Close flushes any remaining messages and closes the connection. The
// flush error takes precedence — buffered records that never made it are
// a real loss the caller should know about — but a clean flush followed
// by a failed close is still reported rather than swallowed.
func (rc *ReliableClient) Close() error {
	err := rc.Flush()
	if cerr := rc.dropConn(); err == nil {
		err = cerr
	}
	return err
}
