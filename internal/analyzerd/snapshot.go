package analyzerd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vedrfolnir/internal/wire"
)

const snapshotFileName = "snapshot.json"

// writeSnapshot atomically replaces dir/snapshot.json: the bytes are
// written to a temp file in the same directory, fsynced, renamed over the
// live name, and the directory is fsynced so the rename itself is durable.
// A crash at any point leaves either the old snapshot or the new one,
// never a torn mix.
func writeSnapshot(dir string, snap wire.Snapshot) error {
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(dir, snapshotFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotFileName)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads dir/snapshot.json. ok is false when no snapshot
// exists; an unreadable or wrong-format snapshot is an error (snapshot
// writes are atomic, so a corrupt one means the storage itself is
// damaged and silently ignoring it would replay an incomplete state).
func readSnapshot(dir string) (snap wire.Snapshot, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, snapshotFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return wire.Snapshot{}, false, nil
		}
		return wire.Snapshot{}, false, fmt.Errorf("analyzerd: snapshot: %w", err)
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		return wire.Snapshot{}, false, fmt.Errorf("analyzerd: snapshot %s: %w",
			filepath.Join(dir, snapshotFileName), err)
	}
	if snap.Format != wire.SnapshotFormat {
		return wire.Snapshot{}, false, fmt.Errorf("analyzerd: snapshot has format %d, want %d",
			snap.Format, wire.SnapshotFormat)
	}
	return snap, true, nil
}

// RecoverStats accounts for what a recovery rebuilt and what it had to
// discard. Torn tails and truncated bytes are counted warnings, never
// errors: they are the expected debris of a crash.
type RecoverStats struct {
	// SnapshotLoaded reports whether a snapshot anchored the recovery.
	SnapshotLoaded bool
	// SnapshotRecords/Reports/CFs count the state restored from the
	// snapshot.
	SnapshotRecords int
	SnapshotReports int
	SnapshotCFs     int
	// WALEntries counts intact log entries replayed on top of the
	// snapshot; WALSkipped counts intact entries below the snapshot's LSN
	// horizon (already folded into it by a snapshot that raced the crash).
	WALEntries int
	WALSkipped int
	// WALMalformed counts replayed entries whose payload no longer parses
	// as a protocol message (skipped).
	WALMalformed int
	// WALTruncatedBytes is the size of the torn or corrupt tail dropped
	// from the log; WALTornTail distinguishes a clean mid-write tear from
	// a CRC mismatch.
	WALTruncatedBytes int64
	WALTornTail       bool
	// Reassigned counts recovered messages dropped because the shard map
	// of the restarted incarnation assigns their client to a different
	// shard (shard mode only; the owning shard replays them instead).
	Reassigned int
	// NextLSN is the first LSN the reopened log will assign.
	NextLSN uint64
}

// RecoveredState is everything Recover rebuilt from a durability
// directory: the snapshot (zero-valued when none existed) plus the WAL
// tail in log order.
type RecoveredState struct {
	Snapshot wire.Snapshot
	// Messages are the replayed WAL entries at or above the snapshot
	// horizon, in ingest order, re-validated through ParseMessage.
	Messages []*Message
	Stats    RecoverStats
}

// Recover reads the snapshot and write-ahead log under dir and rebuilds
// the analyzer state they describe. Applying the snapshot and then the
// messages, in order, yields a byte-identical Diagnose() to the run that
// wrote them. Torn-tail and CRC-corrupt log entries are truncated with a
// counted warning; Recover fails only on I/O errors or a corrupt
// snapshot.
func Recover(dir string) (*RecoveredState, error) {
	snap, ok, err := readSnapshot(dir)
	if err != nil {
		return nil, err
	}
	rs := &RecoveredState{Snapshot: snap}
	rs.Stats.SnapshotLoaded = ok
	rs.Stats.SnapshotRecords = len(snap.Records)
	rs.Stats.SnapshotReports = len(snap.Reports)
	rs.Stats.SnapshotCFs = len(snap.CFs)
	for _, sm := range snap.Messages {
		// Shard snapshots carry messages instead of derived state; the
		// counters still describe what was restored.
		switch sm.Type {
		case TypeStep:
			rs.Stats.SnapshotRecords++
		case TypeReport:
			rs.Stats.SnapshotReports++
		case TypeCF:
			rs.Stats.SnapshotCFs++
		}
	}

	walStats, err := replayWAL(dir, snap.NextLSN, func(_ uint64, payload []byte) error {
		msg, err := ParseMessage(payload)
		if err != nil {
			return err
		}
		rs.Messages = append(rs.Messages, msg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	walStats.SnapshotLoaded = rs.Stats.SnapshotLoaded
	walStats.SnapshotRecords = rs.Stats.SnapshotRecords
	walStats.SnapshotReports = rs.Stats.SnapshotReports
	walStats.SnapshotCFs = rs.Stats.SnapshotCFs
	if walStats.NextLSN < snap.NextLSN {
		walStats.NextLSN = snap.NextLSN
	}
	rs.Stats = walStats
	return rs, nil
}
