package analyzerd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// The write-ahead log makes every accepted message durable before it is
// acknowledged. The file is a sequence of length-prefixed, CRC-checked
// entries (little-endian):
//
//	uint32 length   // 8 + len(payload): the lsn+payload span the CRC covers
//	uint32 crc32c   // Castagnoli CRC over the lsn+payload bytes
//	uint64 lsn      // log sequence number, strictly increasing, never reused
//	payload         // the accepted protocol line (Message JSON, no newline)
//
// LSNs survive snapshot truncation: a snapshot records the NextLSN it
// covers, the WAL is truncated afterwards, and recovery skips any entry
// below the snapshot's horizon — so a crash between "snapshot durable" and
// "WAL truncated" replays nothing twice. A torn tail (a crash mid-write)
// or a CRC-corrupt entry ends replay: everything from the first bad byte
// on is truncated with a counted warning, never a panic. A failed write,
// flush, or fsync on the append side permanently wedges the open log
// (see wal.failed): only a restart, which re-truncates the debris, may
// ack messages again.

// FsyncPolicy selects when the WAL reaches stable storage. The zero value
// is FsyncAlways: the safest policy is the default.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncAlways syncs after every append: an acknowledged message is on
	// stable storage before the ack is sent. SIGKILL loses nothing acked.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per configured interval (appends in
	// between are flushed to the OS but not fsynced): a kernel crash or
	// power cut may lose the last interval's messages, a process kill does
	// not.
	FsyncInterval
	// FsyncOff never syncs explicitly; appends are flushed to the OS per
	// message. Durability is whatever the OS provides.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the flag form: always | interval | off.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("analyzerd: unknown fsync policy %q (want always|interval|off)", s)
	}
}

const (
	walEntryHeader = 16 // length + crc + lsn
	// maxWALEntry caps one entry so a corrupt length prefix cannot drive a
	// huge allocation during replay. Matches the server's default line cap.
	maxWALEntry = 64 << 20
	walFileName = "wal.log"
	// defaultFsyncInterval paces FsyncInterval when no interval is given.
	defaultFsyncInterval = 100 * time.Millisecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. Both mean "stop replaying here"; they are distinguished
// only for reporting (a torn tail is expected after a crash, a CRC
// mismatch suggests corruption).
var (
	errWALTorn    = errors.New("analyzerd: torn WAL entry")
	errWALCorrupt = errors.New("analyzerd: corrupt WAL entry")
)

// encodeWALEntry appends one framed entry to dst and returns it.
func encodeWALEntry(dst []byte, lsn uint64, payload []byte) []byte {
	var hdr [walEntryHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Update(0, crcTable, hdr[8:16])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeWALEntry consumes one entry from b. It returns the entry's LSN and
// payload plus the remaining bytes, errWALTorn when b ends mid-entry, or
// errWALCorrupt when the frame is self-inconsistent. It never panics on
// arbitrary input (fuzzed).
func decodeWALEntry(b []byte) (lsn uint64, payload, rest []byte, err error) {
	if len(b) < walEntryHeader {
		return 0, nil, nil, errWALTorn
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length < 8 || length > maxWALEntry {
		return 0, nil, nil, errWALCorrupt
	}
	if uint64(len(b)-8) < uint64(length) {
		return 0, nil, nil, errWALTorn
	}
	body := b[8 : 8+length]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[4:8]) {
		return 0, nil, nil, errWALCorrupt
	}
	return binary.LittleEndian.Uint64(body[:8]), body[8:], b[8+length:], nil
}

// wal is the append side of the write-ahead log. Not safe for concurrent
// use: the server's single applier goroutine owns it.
type wal struct {
	f        *os.File
	w        *bufio.Writer
	nextLSN  uint64
	policy   FsyncPolicy
	interval time.Duration
	lastSync time.Time
	now      func() time.Time

	// failed, once set, permanently wedges the log. After a failed write,
	// flush, or fsync the file may hold a torn frame whose bytes the
	// kernel silently dropped from the page cache (Linux fsync error
	// semantics), so a later entry that syncs fine — and is acked — would
	// still be truncated at that frame during recovery, losing an acked
	// message. Every subsequent Append/Sync returns the original error;
	// the server NACKs (retryable) and reports unready so a supervisor
	// restarts the daemon, which reopens the log and truncates the
	// debris. An atomic pointer because Ready() reads it from other
	// goroutines while the applier writes it.
	failed atomic.Pointer[error]

	// appends and syncs are atomics only because PublishStats gauges read
	// them from metrics-scrape goroutines; the applier is the sole writer.
	appends atomic.Int64
	syncs   atomic.Int64
}

// wedge records the log's first fatal error and returns it (or the
// earlier one if the log already failed).
func (w *wal) wedge(err error) error {
	w.failed.CompareAndSwap(nil, &err)
	return w.wedged()
}

// wedged returns the error that wedged the log, or nil while it is
// healthy.
func (w *wal) wedged() error {
	if p := w.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// openWAL opens (or creates) the log at dir/wal.log for appending, with
// LSN assignment starting at nextLSN.
func openWAL(dir string, nextLSN uint64, policy FsyncPolicy, interval time.Duration, now func() time.Time) (*wal, error) {
	if interval <= 0 {
		interval = defaultFsyncInterval
	}
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: wal: %w", err)
	}
	return &wal{
		f:        f,
		w:        bufio.NewWriter(f),
		nextLSN:  nextLSN,
		policy:   policy,
		interval: interval,
		now:      now,
	}, nil
}

// Append frames the payload under the next LSN, writes it, and makes it
// as durable as the policy promises. The returned LSN identifies the entry
// for the snapshot horizon.
func (w *wal) Append(payload []byte) (uint64, error) {
	if err := w.wedged(); err != nil {
		return 0, err
	}
	lsn := w.nextLSN
	entry := encodeWALEntry(nil, lsn, payload)
	if _, err := w.w.Write(entry); err != nil {
		return 0, w.wedge(fmt.Errorf("analyzerd: wal append: %w", err))
	}
	w.nextLSN++
	w.appends.Add(1)
	switch w.policy {
	case FsyncAlways:
		if err := w.Sync(); err != nil {
			return 0, err
		}
	case FsyncInterval:
		t := w.now()
		if t.Sub(w.lastSync) >= w.interval {
			if err := w.Sync(); err != nil {
				return 0, err
			}
			w.lastSync = t
		} else if err := w.w.Flush(); err != nil {
			return 0, w.wedge(fmt.Errorf("analyzerd: wal flush: %w", err))
		}
	case FsyncOff:
		if err := w.w.Flush(); err != nil {
			return 0, w.wedge(fmt.Errorf("analyzerd: wal flush: %w", err))
		}
	}
	return lsn, nil
}

// Sync flushes buffered entries and forces them to stable storage. A
// failure wedges the log (see wal.failed): appending past a failed sync
// could ack messages that recovery later truncates at the torn frame.
func (w *wal) Sync() error {
	if err := w.wedged(); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return w.wedge(fmt.Errorf("analyzerd: wal flush: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return w.wedge(fmt.Errorf("analyzerd: wal sync: %w", err))
	}
	w.syncs.Add(1)
	return nil
}

// Reset truncates the log after a snapshot made its contents redundant.
// LSNs keep counting: recovery distinguishes pre- and post-snapshot
// entries by the snapshot's NextLSN, so a crash between the snapshot
// rename and this truncation replays nothing twice.
func (w *wal) Reset() error {
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("analyzerd: wal truncate: %w", err)
	}
	return nil
}

// Close flushes, syncs, and releases the log.
func (w *wal) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("analyzerd: wal close: %w", cerr)
	}
	return err
}

// abandon drops buffered writes and the descriptor without flushing — the
// crash-test stand-in for SIGKILL: whatever the policy already made
// durable is on disk, everything else is torn away.
func (w *wal) abandon() { _ = w.f.Close() }

// replayWAL reads dir/wal.log and hands every intact entry with
// lsn >= minLSN to apply, in log order. Replay ends at the first torn or
// corrupt entry; the file is truncated to the last intact boundary so the
// reopened log appends cleanly. A missing file is an empty log.
func replayWAL(dir string, minLSN uint64, apply func(lsn uint64, payload []byte) error) (RecoverStats, error) {
	var st RecoverStats
	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("analyzerd: wal replay: %w", err)
	}
	rest := data
	good := 0 // bytes of intact entries
	for len(rest) > 0 {
		lsn, payload, next, err := decodeWALEntry(rest)
		if err != nil {
			st.WALTruncatedBytes = int64(len(rest))
			st.WALTornTail = errors.Is(err, errWALTorn)
			break
		}
		good = len(data) - len(next)
		rest = next
		if lsn < minLSN {
			st.WALSkipped++
			continue
		}
		st.WALEntries++
		if st.NextLSN <= lsn {
			st.NextLSN = lsn + 1
		}
		if err := apply(lsn, payload); err != nil {
			st.WALMalformed++
		}
	}
	if st.WALTruncatedBytes > 0 {
		if err := os.Truncate(path, int64(good)); err != nil {
			return st, fmt.Errorf("analyzerd: wal truncate after torn tail: %w", err)
		}
	}
	return st, nil
}
