package analyzerd

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/obs"
)

// syncBuffer guards the log sink: server goroutines write concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPublishStatsAndLogging covers the daemon's observability surface:
// ServerStats and ingest totals exposed live through a registry, and the
// structured connection log.
func TestPublishStatsAndLogging(t *testing.T) {
	var logBuf syncBuffer
	cfg := DefaultServerConfig()
	cfg.Log = obs.NewLogger(&logBuf, slog.LevelDebug, nil)
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	srv.PublishStats(reg)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rec := collective.StepRecord{Host: 1, Step: 0, Bytes: 4096, Start: 0, End: 1000}
	if err := c.SendStep(rec); err != nil {
		t.Fatal(err)
	}
	// A message with a bogus type is counted (and logged) as malformed,
	// exercising the abuse counters.
	if err := c.enc.Encode(Message{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	waitIngested(t, srv, 1, 0, 0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The gauges re-read the live server on every snapshot.
	//lint:ignore nosystime polling a real TCP daemon for connection teardown
	deadline := time.Now().Add(5 * time.Second)
	var flat map[string]int64
	for {
		flat = reg.Flatten()
		if flat["vedr_analyzerd_records"] == 1 && flat["vedr_analyzerd_malformed_total"] == 1 &&
			flat["vedr_analyzerd_connections"] == 0 {
			break
		}
		//lint:ignore nosystime deadline for the real network service
		if time.Now().After(deadline) {
			t.Fatalf("registry never converged: %v (stats %+v)", flat, srv.Stats())
		}
		//lint:ignore nosystime backoff between polls of the real TCP daemon
		time.Sleep(time.Millisecond)
	}

	// Prometheus rendering includes the daemon metrics.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "vedr_analyzerd_records 1") {
		t.Errorf("/metrics rendering missing ingest gauge:\n%s", prom.String())
	}

	logs := logBuf.String()
	for _, want := range []string{"client connected", "client disconnected", "malformed line"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
	if strings.Contains(logs, "time=") {
		t.Errorf("wall-clock timestamp leaked into daemon log:\n%s", logs)
	}
}
