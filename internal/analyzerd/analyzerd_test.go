package analyzerd

import (
	"reflect"
	"testing"
	"time"

	"vedrfolnir/internal/scenario"
)

// testConfig mirrors the scenario package's fast unit-test configuration.
func testConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Scale = 1.0 / 360
	cfg.StepBytes = int64(1e6)
	cfg.CellSize = 16 << 10
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	return cfg
}

// waitIngested polls until the server has ingested the expected counts or
// the deadline passes (submissions are async over TCP).
func waitIngested(t *testing.T, s *Server, recs, reps, cfs int) {
	t.Helper()
	//lint:ignore nosystime the daemon is a real TCP server; wall clock is the right deadline
	deadline := time.Now().Add(5 * time.Second)
	//lint:ignore nosystime polling a real network service, not simulated state
	for time.Now().Before(deadline) {
		r, p, c := s.Counts()
		if r >= recs && p >= reps && c >= cfs {
			return
		}
		//lint:ignore nosystime backoff between polls of the real TCP daemon
		time.Sleep(time.Millisecond)
	}
	r, p, c := s.Counts()
	t.Fatalf("ingestion stalled: have %d/%d/%d, want %d/%d/%d", r, p, c, recs, reps, cfs)
}

// TestEndToEndParity runs a full simulated contention case, ships every
// record and report to the analyzer daemon over real TCP (split across two
// client connections, as two host agents would), and verifies the networked
// diagnosis matches the in-process one exactly.
func TestEndToEndParity(t *testing.T) {
	cfg := testConfig()
	cs, err := scenario.GenerateCase(scenario.Contention, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, scenario.DefaultRunOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	local := res.Diag
	if len(res.Reports) == 0 || len(res.Records) == 0 {
		t.Fatal("setup: no inputs to ship")
	}

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Records {
		c := c1
		if i%2 == 1 {
			c = c2
		}
		if err := c.SendStep(rec); err != nil {
			t.Fatal(err)
		}
	}
	for i, rep := range res.Reports {
		c := c1
		if i%2 == 1 {
			c = c2
		}
		if err := c.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	for cf := range res.CFs {
		if err := c1.SendCF(cf); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	waitIngested(t, srv, len(res.Records), len(res.Reports), len(res.CFs))
	remote := srv.Diagnose()

	if !reflect.DeepEqual(remote.CriticalPath, local.CriticalPath) {
		t.Fatalf("critical path differs:\nremote %v\nlocal  %v", remote.CriticalPath, local.CriticalPath)
	}
	if !reflect.DeepEqual(remote.Culprits(), local.Culprits()) {
		t.Fatalf("culprits differ:\nremote %v\nlocal  %v", remote.Culprits(), local.Culprits())
	}
	if len(remote.Findings) != len(local.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(remote.Findings), len(local.Findings))
	}
	for i := range local.Findings {
		if remote.Findings[i].Type != local.Findings[i].Type ||
			remote.Findings[i].Port != local.Findings[i].Port ||
			remote.Findings[i].RootPort != local.Findings[i].RootPort {
			t.Fatalf("finding %d differs:\nremote %+v\nlocal  %+v", i, remote.Findings[i], local.Findings[i])
		}
	}
	if len(remote.Ratings) != len(local.Ratings) {
		t.Fatalf("rating counts differ: %d vs %d", len(remote.Ratings), len(local.Ratings))
	}
	for i := range local.Ratings {
		if remote.Ratings[i].Flow != local.Ratings[i].Flow ||
			remote.Ratings[i].Score != local.Ratings[i].Score {
			t.Fatalf("rating %d differs: %+v vs %+v", i, remote.Ratings[i], local.Ratings[i])
		}
	}
}

func TestBadMessageRejected(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.enc.Encode(Message{Type: "bogus"}); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	//lint:ignore nosystime grace period for the real TCP server to reject the frame
	time.Sleep(10 * time.Millisecond)
	if r, p, cf := srv.Counts(); r+p+cf != 0 {
		t.Fatalf("bogus message ingested: %d/%d/%d", r, p, cf)
	}
}

func TestServeAndCloseIdempotence(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() == "" {
		t.Fatal("no address")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Dialing a closed server fails.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("dial after close should fail")
	}
}
