package analyzerd

import (
	"encoding/json"
	"fmt"
	"net"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/waitgraph"
	"vedrfolnir/internal/wire"
)

// Shard-side half of a live fleet rebalance. The router drives the
// protocol: it dumps donors, slices the dumps into wire.Handoff units,
// delivers each to its target with the "adopt" verb, and finally
// installs the new map at every surviving shard with "remap". Both
// verbs run on the applier goroutine — the same serialization point as
// ingest — so the WAL, snapshots, and the sourced stream never see a
// concurrent writer.

// handleAdmin routes the rebalance verbs off the connection handler.
// resize is router-only and always an error here; remap/adopt enqueue
// for the applier exactly like ingest, with the same overload NACK so
// a saturated shard sheds the (retryable) admin verb instead of
// deadlocking behind its own queue.
func (s *Server) handleAdmin(conn net.Conn, msg *Message) {
	if msg.Type == TypeResize {
		s.replyf(conn, `{"error":"resize targets the fleet router, not a shard"}`+"\n")
		return
	}
	if s.cfg.Shard == nil {
		s.replyf(conn, `{"error":"not a fleet shard"}`+"\n")
		return
	}
	item := ingestItem{msg: msg, conn: conn}
	select {
	case s.queue <- item:
	default:
		s.count(func(st *ServerStats) { st.Overloaded++ })
		s.log.Warn("ingest queue full, shedding admin verb", "type", msg.Type)
		s.replyf(conn, `{"error":"overloaded","retry":true}`+"\n")
	}
}

// applyRemap installs a newer-epoch shard map live: the ownership ring
// is swapped, retained messages and ack windows for clients the new
// map assigns elsewhere are dropped (they were handed off first — the
// router orders adopt before the donor's remap), and the derived
// diagnosis state is rebuilt from the kept sourced stream. Stale
// epochs are rejected; a re-delivery of the current map is an
// idempotent success, so the router can retry through a kill.
func (s *Server) applyRemap(item ingestItem) {
	next := *item.msg.Map
	cur := s.curShardMap()
	switch {
	case next.Epoch < cur.Epoch:
		s.count(func(st *ServerStats) { st.StaleEpochs++ })
		s.log.Warn("stale remap rejected", "epoch", next.Epoch, "current", cur.Epoch)
		s.replyf(item.conn, `{"error":%q}`+"\n",
			fmt.Sprintf("stale shard map epoch %d (shard at epoch %d)", next.Epoch, cur.Epoch))
		return
	case next.Epoch == cur.Epoch:
		if next == cur {
			// Retried delivery of the map already installed.
			s.replyf(item.conn, `{"remapped":true,"epoch":%d,"reassigned":0}`+"\n", cur.Epoch)
		} else {
			s.replyf(item.conn, `{"error":%q}`+"\n",
				fmt.Sprintf("conflicting shard map at epoch %d", cur.Epoch))
		}
		return
	}
	ring, err := wire.NewHashRing(next)
	if err != nil {
		s.replyf(item.conn, `{"error":%q}`+"\n", err.Error())
		return
	}
	if s.cfg.Shard.Index >= next.Shards {
		// A shrink stops removed shards; it never remaps them — a shard
		// must not install a map that disowns everything it holds.
		s.replyf(item.conn, `{"error":%q}`+"\n",
			fmt.Sprintf("map of %d shards removes shard %d", next.Shards, s.cfg.Shard.Index))
		return
	}
	reassigned := s.installMap(next, ring)
	s.count(func(st *ServerStats) { st.Remaps++ })
	s.log.Info("shard map installed", "epoch", next.Epoch, "shards", next.Shards, "reassigned", reassigned)
	if s.wal != nil {
		// Cutover durability rides on the restart arguments (the
		// supervisor rewrites them before sending remap); the snapshot
		// just compacts the moved clients out of the WAL now instead of
		// on the next recovery.
		if err := s.snapshotNow(); err != nil {
			s.log.Warn("post-remap snapshot failed", "err", err.Error())
		} else {
			s.sinceSnap = 0
		}
	}
	s.replyf(item.conn, `{"remapped":true,"epoch":%d,"reassigned":%d}`+"\n", next.Epoch, reassigned)
}

// installMap swaps the ring and re-derives all in-memory state from
// the sourced messages the new map still assigns here, returning how
// many retained messages were dropped as reassigned.
func (s *Server) installMap(next wire.ShardMap, ring *wire.HashRing) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardMu.Lock()
	s.shardMap, s.ring = next, ring
	s.shardMu.Unlock()
	index := s.cfg.Shard.Index
	old := s.sourced
	kept := make([]wire.SourcedMessage, 0, len(old))
	reassigned := 0
	for _, sm := range old {
		if sm.Client != "" && ring.Owner(sm.Client) != index {
			reassigned++
			continue
		}
		kept = append(kept, sm)
	}
	s.records, s.reports, s.sourced = nil, nil, nil
	s.cfs = make(map[fabric.FlowKey]bool)
	s.stepIndex = make(map[fabric.FlowKey]waitgraph.StepRef)
	for _, sm := range kept {
		if err := s.ingest(messageFromSourced(sm)); err != nil {
			// Every retained message was ingested once already; failing
			// now means memory corruption — surface it, don't hide it.
			s.log.Warn("remap: dropping unreplayable retained message",
				"client", sm.Client, "seq", sm.Seq, "err", err.Error())
		}
	}
	for id := range s.clients {
		if id != "" && ring.Owner(id) != index {
			delete(s.clients, id) // the new owner holds this window now
		}
	}
	return reassigned
}

// applyAdopt absorbs one handoff: the moved clients' retained messages
// are WAL-appended (so a crash replays them) and re-ingested, and
// their ack highwaters install as dedup baselines. The handoff must
// carry exactly the shard's current map — behind is stale, ahead means
// the router's remap is still in flight (retryable). A re-delivered
// handoff from the same donor at the same epoch short-circuits, so
// retries through a mid-adopt kill stay exactly-once for sequenced
// streams.
func (s *Server) applyAdopt(item ingestItem) {
	h := item.msg.Handoff
	cur := s.curShardMap()
	index := s.cfg.Shard.Index
	switch {
	case h.Format != wire.HandoffFormat:
		s.replyf(item.conn, `{"error":%q}`+"\n",
			fmt.Sprintf("unsupported handoff format %d", h.Format))
		return
	case h.To != index:
		s.replyf(item.conn, `{"error":%q}`+"\n",
			fmt.Sprintf("handoff targets shard %d, this is shard %d", h.To, index))
		return
	case h.Map.Epoch < cur.Epoch:
		s.count(func(st *ServerStats) { st.StaleEpochs++ })
		s.replyf(item.conn, `{"error":%q}`+"\n",
			fmt.Sprintf("stale handoff epoch %d (shard at epoch %d)", h.Map.Epoch, cur.Epoch))
		return
	case h.Map.Epoch > cur.Epoch:
		s.replyf(item.conn, `{"error":%q,"retry":true}`+"\n",
			fmt.Sprintf("handoff epoch %d ahead of shard epoch %d", h.Map.Epoch, cur.Epoch))
		return
	case h.Map != cur:
		s.replyf(item.conn, `{"error":%q}`+"\n",
			fmt.Sprintf("conflicting shard map at epoch %d", cur.Epoch))
		return
	}
	s.mu.Lock()
	already := s.adoptedEpochs[h.From] >= h.Map.Epoch
	s.mu.Unlock()
	if already {
		s.replyf(item.conn, `{"adopted":0,"epoch":%d}`+"\n", h.Map.Epoch)
		return
	}
	// Validate the whole handoff against the installed ring before
	// mutating anything: a single misrouted client means the artifact
	// belongs to a different rebalance.
	ring := func(client string) int {
		s.shardMu.RLock()
		defer s.shardMu.RUnlock()
		return s.ring.Owner(client)
	}
	for _, sm := range h.Messages {
		if sm.Client == "" || ring(sm.Client) != index {
			s.replyf(item.conn, `{"error":%q}`+"\n",
				fmt.Sprintf("handoff carries client %q this shard does not own", sm.Client))
			return
		}
	}
	for _, hc := range h.Clients {
		if hc.Client == "" || ring(hc.Client) != index {
			s.replyf(item.conn, `{"error":%q}`+"\n",
				fmt.Sprintf("handoff carries client %q this shard does not own", hc.Client))
			return
		}
	}
	adopted := 0
	for _, sm := range h.Messages {
		s.mu.Lock()
		dup := sm.Seq > 0 && sm.Seq <= s.clientAcked(sm.Client)
		s.mu.Unlock()
		if dup {
			continue // an earlier (partially crashed) adopt already took it
		}
		msg := messageFromSourced(sm)
		if s.wal != nil {
			raw, err := json.Marshal(msg)
			if err == nil {
				_, err = s.wal.Append(raw)
			}
			if err != nil {
				s.count(func(st *ServerStats) { st.WALErrors++ })
				s.log.Warn("adopt WAL append failed", "err", err.Error())
				s.replyf(item.conn, `{"error":%q,"retry":true}`+"\n", err.Error())
				return
			}
		}
		s.mu.Lock()
		if err := s.ingest(msg); err != nil {
			// Mirror apply()'s permanent-rejection contract: the message
			// is handled (dropped) and the highwater still advances, so
			// the stream cannot wedge on the hole.
			s.stats.Rejected++
			s.log.Warn("adopt: message rejected", "client", sm.Client, "seq", sm.Seq, "err", err.Error())
		}
		if sm.Seq > 0 {
			s.markAcked(sm.Client, sm.Seq)
		}
		s.mu.Unlock()
		adopted++
	}
	s.mu.Lock()
	for _, hc := range h.Clients {
		if hc.Acked > 0 {
			s.markAcked(hc.Client, hc.Acked)
		}
	}
	s.adoptedEpochs[h.From] = h.Map.Epoch
	s.stats.Adopted += int64(adopted)
	s.mu.Unlock()
	s.log.Info("handoff adopted", "from", h.From, "epoch", h.Map.Epoch,
		"messages", adopted, "clients", len(h.Clients))
	if s.wal != nil {
		// Make the adoption (including bare ack baselines, which the WAL
		// does not carry) durable before acknowledging it; on failure the
		// router retries and the dedup above keeps it exactly-once.
		if err := s.snapshotNow(); err != nil {
			s.log.Warn("post-adopt snapshot failed", "err", err.Error())
			s.replyf(item.conn, `{"error":%q,"retry":true}`+"\n", err.Error())
			return
		}
		s.sinceSnap = 0
	}
	s.replyf(item.conn, `{"adopted":%d,"epoch":%d}`+"\n", adopted, h.Map.Epoch)
}
