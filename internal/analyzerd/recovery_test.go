package analyzerd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/wire"
)

// crashForTest is the in-process stand-in for SIGKILL (now exported as
// Abort for the fleet harness; the alias keeps the test vocabulary).
func (s *Server) crashForTest() { s.Abort() }

// sendFn defers one submission so tests can cut the stream anywhere.
type sendFn func(rc *ReliableClient) error

// linearize flattens a scenario run into one deterministic submission
// order: records, then reports, then the collective-flow census sorted.
func linearize(res scenario.Result) []sendFn {
	var items []sendFn
	for _, rec := range res.Records {
		rec := rec
		items = append(items, func(rc *ReliableClient) error { return rc.SendStep(rec) })
	}
	for _, rep := range res.Reports {
		rep := rep
		items = append(items, func(rc *ReliableClient) error { return rc.SendReport(rep) })
	}
	cfs := make([]fabric.FlowKey, 0, len(res.CFs))
	for cf := range res.CFs {
		cfs = append(cfs, cf)
	}
	sort.Slice(cfs, func(i, j int) bool { return flowKeyLess(cfs[i], cfs[j]) })
	for _, cf := range cfs {
		cf := cf
		items = append(items, func(rc *ReliableClient) error { return rc.SendCF(cf) })
	}
	return items
}

func diagBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	b, err := json.Marshal(wire.FromDiagnosis(s.Diagnose()))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runScenario(t *testing.T) scenario.Result {
	t.Helper()
	cfg := testConfig()
	cs, err := scenario.GenerateCase(scenario.Contention, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, scenario.DefaultRunOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || len(res.Reports) == 0 || len(res.CFs) == 0 {
		t.Fatal("setup: scenario produced no inputs")
	}
	return res
}

func noSleep(time.Duration) {}

func sendRange(t *testing.T, rc *ReliableClient, items []sendFn, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := items[i](rc); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

// TestCrashRecoveryDiagnoseIdentical is the tentpole property: SIGKILL
// the durable analyzer at seeded cut points mid-ingest, restart it on the
// same directory, finish the stream through the same reliable client, and
// the recovered daemon's diagnosis must be byte-identical to a run that
// never crashed — with zero lost and zero duplicated messages.
func TestCrashRecoveryDiagnoseIdentical(t *testing.T) {
	res := runScenario(t)
	items := linearize(res)

	// Reference: same stream, no durability, no crash.
	ref, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcRef, err := NewReliableClient(ref.Addr(), ClientConfig{ID: "h1", Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	sendRange(t, rcRef, items, 0, len(items))
	if err := rcRef.Close(); err != nil {
		t.Fatal(err)
	}
	wantDiag := diagBytes(t, ref)
	wantRecs, wantReps, wantCFs := ref.Counts()
	ref.Close()

	faults := chaos.NewWALFaults(42)
	for _, cut := range faults.CrashPoints(3, len(items)-1) {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			dur := &DurabilityConfig{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: 5}
			cfg := DefaultServerConfig()
			cfg.Durability = dur
			srv1, err := ServeWith("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := NewReliableClient(srv1.Addr(), ClientConfig{ID: "h1", Sleep: noSleep})
			if err != nil {
				t.Fatal(err)
			}
			sendRange(t, rc, items, 0, cut)
			if err := rc.Flush(); err != nil {
				t.Fatal(err)
			}
			srv1.crashForTest()

			srv2, err := ServeWith("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer srv2.Close()
			// Everything acked before the kill must already be there.
			if r, p, c := srv2.Counts(); r+p+c < cut {
				t.Fatalf("recovered %d messages, want at least %d (%+v)", r+p+c, cut, srv2.Recovery())
			}
			// Same client, new address: the seq counter must survive so
			// the server's highwater keeps deduplicating.
			rc.addr = srv2.Addr()
			rc.dropConn()
			sendRange(t, rc, items, cut, len(items))
			if err := rc.Close(); err != nil {
				t.Fatal(err)
			}

			if r, p, c := srv2.Counts(); r != wantRecs || p != wantReps || c != wantCFs {
				t.Fatalf("recovered counts %d/%d/%d, want %d/%d/%d (lost or duplicated messages)",
					r, p, c, wantRecs, wantReps, wantCFs)
			}
			if got := diagBytes(t, srv2); !bytes.Equal(got, wantDiag) {
				t.Fatalf("recovered diagnosis differs from uninterrupted run:\n%s\nvs\n%s", got, wantDiag)
			}

			// Graceful drain, then a third incarnation recovers from the
			// snapshot alone and still agrees byte-for-byte.
			if err := srv2.Drain(); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(filepath.Join(dir, walFileName))
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != 0 {
				t.Fatalf("WAL holds %d bytes after drain, want 0", fi.Size())
			}
			srv3, err := ServeWith("127.0.0.1:0", cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv3.Close()
			if !srv3.Recovery().SnapshotLoaded {
				t.Fatal("post-drain restart did not load the snapshot")
			}
			if got := diagBytes(t, srv3); !bytes.Equal(got, wantDiag) {
				t.Fatalf("post-drain diagnosis differs:\n%s\nvs\n%s", got, wantDiag)
			}
		})
	}
}

// TestRecoverSuppressesResubmission: a client that never saw its ack
// resubmits after the restart; the recovered highwater must suppress the
// duplicate rather than ingest it twice.
func TestRecoverSuppressesResubmission(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultServerConfig()
	cfg.Durability = &DurabilityConfig{Dir: dir, Fsync: FsyncAlways}
	srv1, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sendLine(t, conn, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	expectReply(t, conn, `{"ack":1}`)
	conn.Close()
	srv1.crashForTest()

	srv2, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	conn2, err := net.Dial("tcp", srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	sendLine(t, conn2, `{"type":"cf","cf":{"src":1,"dst":2},"seq":1,"client":"h1"}`)
	expectReply(t, conn2, `{"ack":1}`)
	if _, _, cfs := srv2.Counts(); cfs != 1 {
		t.Fatalf("resubmission re-ingested: %d cfs", cfs)
	}
	if d := srv2.Stats().Duplicates; d != 1 {
		t.Fatalf("Duplicates = %d, want 1", d)
	}
}

// TestRecoverTornWALTail: debris appended to the log (a torn crash write)
// must cost only a counted warning, never a failed startup.
func TestRecoverTornWALTail(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 1, FsyncAlways, 0, fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		line, err := json.Marshal(Message{Type: TypeCF, CF: &wire.Flow{Src: int32(i), Dst: 9}, Seq: int64(i + 1), Client: "h1"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := DefaultServerConfig()
	cfg.Durability = &DurabilityConfig{Dir: dir, Fsync: FsyncAlways}
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("torn tail broke startup: %v", err)
	}
	defer srv.Close()
	rec := srv.Recovery()
	if rec.WALEntries != 4 || rec.WALTruncatedBytes != 3 || !rec.WALTornTail {
		t.Fatalf("recovery stats %+v, want 4 entries and a 3-byte torn tail", rec)
	}
	if _, _, cfs := srv.Counts(); cfs != 4 {
		t.Fatalf("recovered %d cfs, want 4", cfs)
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	rs, err := Recover(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.SnapshotLoaded || len(rs.Messages) != 0 || rs.Stats.NextLSN != 0 {
		t.Fatalf("empty dir recovered %+v", rs.Stats)
	}
}
