package analyzerd

import (
	"testing"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/waitgraph"
)

// FuzzParseMessage hammers the single entry point for untrusted input. The
// contract: arbitrary bytes never panic, and any line that parses
// successfully satisfies the protocol invariants (known type, the matching
// payload present and singular, non-negative sequence number) — the
// properties Server.handle and ingest rely on without re-checking.
func FuzzParseMessage(f *testing.F) {
	f.Add([]byte(`{"type":"cf","cf":{"src":1,"dst":2,"sport":7,"dport":8,"proto":17}}`))
	f.Add([]byte(`{"type":"step","step":{"host":3,"step":1,"flow":{"src":3,"dst":4},"bytes":1048576,"start_ns":100,"end_ns":900}}`))
	f.Add([]byte(`{"type":"report","report":{"at_ns":5,"triggered_by":{"src":1,"dst":2},"hops_polled":3}}`))
	f.Add([]byte(`{"type":"report","report":{"at_ns":5,"triggered_by":{},"hops_polled":3,"ports_missed":2},"seq":7,"client":"h1"}`))
	f.Add([]byte(`{"type":"cf","cf":{},"step":{}}`))
	f.Add([]byte(`{"type":"cf","cf":{},"seq":-1}`))
	f.Add([]byte(`{"type":"bogus"}`))
	f.Add([]byte(`{"type":"step"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		msg, err := ParseMessage(line)
		if err != nil {
			if msg != nil {
				t.Fatal("error with non-nil message")
			}
			return
		}
		if msg.Seq < 0 {
			t.Fatalf("accepted negative seq %d", msg.Seq)
		}
		payloads := 0
		if msg.Step != nil {
			payloads++
		}
		if msg.Report != nil {
			payloads++
		}
		if msg.CF != nil {
			payloads++
		}
		if payloads != 1 {
			t.Fatalf("accepted message with %d payloads", payloads)
		}
		switch msg.Type {
		case TypeStep:
			if msg.Step == nil {
				t.Fatal("step without payload accepted")
			}
		case TypeReport:
			if msg.Report == nil {
				t.Fatal("report without payload accepted")
			}
		case TypeCF:
			if msg.CF == nil {
				t.Fatal("cf without payload accepted")
			}
		default:
			t.Fatalf("unknown type %q accepted", msg.Type)
		}
		// A validated message must ingest without error: the server relies
		// on ParseMessage as the only gate for untrusted input.
		s := &Server{
			cfs:       make(map[fabric.FlowKey]bool),
			stepIndex: make(map[fabric.FlowKey]waitgraph.StepRef),
			clients:   make(map[string]*clientState),
		}
		if err := s.ingest(msg); err != nil {
			t.Fatalf("validated message rejected by ingest: %v", err)
		}
	})
}
