package analyzerd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"

	"vedrfolnir/internal/wire"
)

// shardServe starts an in-process fleet shard with the given map/index
// and optional durability dir.
func shardServe(t *testing.T, m wire.ShardMap, index int, dir string) *Server {
	t.Helper()
	cfg := DefaultServerConfig()
	cfg.Shard = &ShardConfig{Map: m, Index: index}
	if dir != "" {
		cfg.Durability = &DurabilityConfig{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: 3}
	}
	srv, err := ServeWith("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	return srv
}

// ownedAndDisowned finds one client name owned by index and one owned by
// another shard, under m.
func ownedAndDisowned(t *testing.T, m wire.ShardMap, index int) (owned, disowned string) {
	t.Helper()
	ring, err := wire.NewHashRing(m)
	if err != nil {
		t.Fatalf("NewHashRing: %v", err)
	}
	for i := 0; i < 1024 && (owned == "" || disowned == ""); i++ {
		name := fmt.Sprintf("h%03d", i)
		if ring.Owner(name) == index {
			if owned == "" {
				owned = name
			}
		} else if disowned == "" {
			disowned = name
		}
	}
	if owned == "" || disowned == "" {
		t.Fatalf("could not find owned+disowned client names under %+v", m)
	}
	return owned, disowned
}

func testFlow(i int) wire.Flow {
	return wire.Flow{Src: int32(i), Dst: int32(i + 1), SrcPort: 7, DstPort: 8, Proto: 17}
}

// TestShardMovedNackAndErrRedirected covers the ownership fence end to
// end: a shard NACKs a disowned client with moved=true, the
// ReliableClient counts it and surfaces ErrRedirected, and the message
// stays pending (nothing is silently dropped).
func TestShardMovedNackAndErrRedirected(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	srv := shardServe(t, m, 0, "")
	defer srv.Close()
	owned, disowned := ownedAndDisowned(t, m, 0)

	rc, err := NewReliableClient(srv.Addr(), ClientConfig{ID: disowned, MaxAttempts: 2, Sleep: noSleep})
	if err != nil {
		t.Fatalf("NewReliableClient: %v", err)
	}
	f := testFlow(1)
	if err := rc.SendCF(f.Key()); err != nil {
		t.Fatalf("SendCF: %v", err)
	}
	err = rc.Flush()
	if !errors.Is(err, ErrRedirected) {
		t.Fatalf("Flush error = %v, want ErrRedirected", err)
	}
	if rc.Stats.Redirected != 2 { // one per attempt
		t.Errorf("Stats.Redirected = %d, want 2", rc.Stats.Redirected)
	}
	if rc.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (moved messages must stay buffered)", rc.Pending())
	}
	if srv.Stats().Moved != 2 {
		t.Errorf("server Moved = %d, want 2", srv.Stats().Moved)
	}

	// The owned client is accepted as usual.
	ok, err := NewReliableClient(srv.Addr(), ClientConfig{ID: owned, MaxAttempts: 2, Sleep: noSleep})
	if err != nil {
		t.Fatalf("NewReliableClient: %v", err)
	}
	if err := ok.SendCF(f.Key()); err != nil {
		t.Fatalf("SendCF: %v", err)
	}
	if err := ok.Flush(); err != nil {
		t.Fatalf("owned client Flush: %v", err)
	}
}

// dumpState drives the dump verb over raw TCP, as the fleet aggregator
// does.
func dumpState(t *testing.T, addr string) *wire.ShardState {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, `{"type":"dump"}`+"\n"); err != nil {
		t.Fatalf("write dump: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("read dump reply: %v", err)
	}
	var state wire.ShardState
	if err := json.Unmarshal(line, &state); err != nil {
		t.Fatalf("bad dump reply %q: %v", line, err)
	}
	return &state
}

func TestShardDumpReturnsSourcedMessages(t *testing.T) {
	m := wire.ShardMap{Shards: 2}
	srv := shardServe(t, m, 1, "")
	defer srv.Close()
	owned, _ := ownedAndDisowned(t, m, 1)

	rc, err := NewReliableClient(srv.Addr(), ClientConfig{ID: owned, MaxAttempts: 2, Sleep: noSleep})
	if err != nil {
		t.Fatalf("NewReliableClient: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := rc.SendCF(testFlow(i).Key()); err != nil {
			t.Fatalf("SendCF: %v", err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	state := dumpState(t, srv.Addr())
	if state.Shard != 1 || state.Map != m {
		t.Errorf("dump identifies as shard %d of %+v, want 1 of %+v", state.Shard, state.Map, m)
	}
	if len(state.Messages) != 3 {
		t.Fatalf("dump has %d messages, want 3", len(state.Messages))
	}
	for i, sm := range state.Messages {
		if sm.Client != owned || sm.Seq != int64(i+1) || sm.Type != TypeCF {
			t.Errorf("message %d = %+v, want client %q seq %d cf", i, sm, owned, i+1)
		}
	}
}

func TestDumpOnStandaloneServerErrors(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, `{"type":"dump"}`+"\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var rep struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(line, &rep); err != nil || rep.Error == "" {
		t.Fatalf("want an error reply, got %q (%v)", line, err)
	}
}

// TestShardRecoveryDropsReassignedClients is the shard-map-change
// recovery contract: a restarted shard whose map now assigns some
// recovered clients elsewhere must drop their records — from the
// snapshot AND the WAL tail — deterministically and with a counter,
// never replay them into the wrong shard.
func TestShardRecoveryDropsReassignedClients(t *testing.T) {
	dir := t.TempDir()
	wide := wire.ShardMap{Shards: 1} // owns every client
	narrow := wire.ShardMap{Shards: 2}
	keep, lose := ownedAndDisowned(t, narrow, 0)

	srv := shardServe(t, wide, 0, dir)
	// 4 messages per client with SnapshotEvery=3: some land in the
	// snapshot, the rest stay in the WAL tail, so both recovery filters
	// are exercised.
	perClient := 4
	for _, id := range []string{keep, lose} {
		rc, err := NewReliableClient(srv.Addr(), ClientConfig{ID: id, MaxAttempts: 2, Sleep: noSleep})
		if err != nil {
			t.Fatalf("NewReliableClient: %v", err)
		}
		for i := 0; i < perClient; i++ {
			if err := rc.SendCF(testFlow(i).Key()); err != nil {
				t.Fatalf("SendCF: %v", err)
			}
		}
		if err := rc.Flush(); err != nil {
			t.Fatalf("Flush(%s): %v", id, err)
		}
	}
	srv.Abort() // SIGKILL stand-in: no drain snapshot, WAL abandoned

	recoverOnce := func() (RecoverStats, *wire.ShardState) {
		cfg := DefaultServerConfig()
		cfg.Shard = &ShardConfig{Map: narrow, Index: 0}
		cfg.Durability = &DurabilityConfig{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: 0}
		s2, err := ServeWith("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("recover ServeWith: %v", err)
		}
		stats := s2.Recovery()
		state := s2.ShardState()
		if err := s2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return stats, state
	}

	stats, state := recoverOnce()
	if stats.Reassigned != perClient {
		t.Errorf("Reassigned = %d, want %d (all of %s's messages)", stats.Reassigned, perClient, lose)
	}
	if len(state.Messages) != perClient {
		t.Fatalf("recovered %d messages, want %d (only %s's)", len(state.Messages), perClient, keep)
	}
	for _, sm := range state.Messages {
		if sm.Client != keep {
			t.Errorf("recovered message for %q survived reassignment", sm.Client)
		}
	}

	// Recovery of the same directory is deterministic: run it again
	// (read-only with SnapshotEvery=0 and no new ingest) and compare.
	stats2, state2 := recoverOnce()
	if stats2.Reassigned != stats.Reassigned {
		t.Errorf("second recovery Reassigned = %d, want %d", stats2.Reassigned, stats.Reassigned)
	}
	if !reflect.DeepEqual(state2, state) {
		t.Errorf("second recovery state differs:\n%+v\n%+v", state2, state)
	}
}

// TestShardSnapshotRoundTrip pins shard-mode durability: snapshots carry
// Messages (not derived state) and a clean restart rebuilds the same
// sourced stream.
func TestShardSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := wire.ShardMap{Shards: 2}
	owned, _ := ownedAndDisowned(t, m, 0)

	srv := shardServe(t, m, 0, dir)
	rc, err := NewReliableClient(srv.Addr(), ClientConfig{ID: owned, MaxAttempts: 2, Sleep: noSleep})
	if err != nil {
		t.Fatalf("NewReliableClient: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := rc.SendCF(testFlow(i).Key()); err != nil {
			t.Fatalf("SendCF: %v", err)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := srv.ShardState()
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2 := shardServe(t, m, 0, dir)
	defer s2.Close()
	if got := s2.ShardState(); !reflect.DeepEqual(got, want) {
		t.Errorf("restarted shard state differs:\n got %+v\nwant %+v", got, want)
	}
	if rec := s2.Recovery(); rec.SnapshotCFs != 5 {
		t.Errorf("RecoverStats.SnapshotCFs = %d, want 5", rec.SnapshotCFs)
	}
}
