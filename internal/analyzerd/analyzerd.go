// Package analyzerd implements the centralized analyzer of the paper's
// architecture (Fig 3) as a network service: host-side monitors connect
// over TCP and stream newline-delimited JSON messages — step records as
// collective steps complete, telemetry reports as detections fire, and the
// collective-flow census — and the analyzer aggregates them and produces
// diagnoses on demand.
//
// In the simulator the monitors and analyzer share a process, but this
// service is how a real deployment wires them: one analyzerd per cluster,
// one client per host agent. The service is hardened against misbehaving
// peers: per-connection read deadlines bound a stalled client, the line
// scanner is capped so an unbounded line cannot grow the buffer without
// limit, malformed lines are counted and skipped instead of killing the
// connection, and sequence-numbered submissions are acknowledged so a
// ReliableClient can reconnect and resubmit unacked records exactly once.
//
// The serving path is also crash-safe and overload-safe. With a
// DurabilityConfig, every accepted message is appended to a CRC-checked
// write-ahead log before it is acknowledged (fsync policy configurable),
// periodic snapshots bound replay time, and a restarted daemon calls
// Recover to reach a byte-identical Diagnose() to an uninterrupted run.
// Accepted messages flow through a bounded ingest queue drained by a
// single applier goroutine; when the queue is full or a client exceeds its
// token-bucket rate the server replies with an explicit retryable NACK
// instead of degrading for everyone.
package analyzerd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/waitgraph"
	"vedrfolnir/internal/wire"
)

// Message is one line of the monitor→analyzer protocol. Exactly one payload
// field is set, selected by Type. Seq and Client are optional: a client
// that numbers its messages (per-client, strictly increasing from 1) gets
// an {"ack":seq} reply per ingested message and duplicate suppression on
// resubmission; unnumbered messages keep the original fire-and-forget
// behaviour.
type Message struct {
	Type   string           `json:"type"` // "step" | "report" | "cf"
	Step   *wire.StepRecord `json:"step,omitempty"`
	Report *wire.Report     `json:"report,omitempty"`
	CF     *wire.Flow       `json:"cf,omitempty"`
	Seq    int64            `json:"seq,omitempty"`
	Client string           `json:"client,omitempty"`
	// Map is the remap/resize verb payload: the shard map to install.
	Map *wire.ShardMap `json:"map,omitempty"`
	// Handoff is the adopt verb payload: moved-client state to absorb.
	Handoff *wire.Handoff `json:"handoff,omitempty"`
}

// Protocol message types. The ingest payloads (step/report/cf) mirror
// wire.MsgStep/MsgReport/MsgCF; "dump" is a connection-level query — a
// fleet aggregator asks a shard for its full accepted-message state and
// gets one wire.ShardState JSON line back (never WAL'd, never acked).
// The rebalance verbs are admin-plane: "remap" installs a newer-epoch
// shard map at a shard, "adopt" hands a shard moved-client state, and
// "resize" asks a fleet *router* to rebalance to Map.Shards shards.
const (
	TypeStep   = "step"
	TypeReport = "report"
	TypeCF     = "cf"
	TypeDump   = "dump"
	TypeRemap  = "remap"
	TypeAdopt  = "adopt"
	TypeResize = "resize"
)

// ParseMessage decodes and validates one protocol line: known type, the
// matching payload present, no extra payloads, non-negative sequence
// number. It is the single entry point for untrusted input (the fuzz
// target), so every malformed shape must come back as an error, never a
// panic.
func ParseMessage(line []byte) (*Message, error) {
	var msg Message
	if err := json.Unmarshal(line, &msg); err != nil {
		return nil, err
	}
	if msg.Seq < 0 {
		return nil, fmt.Errorf("negative seq %d", msg.Seq)
	}
	payloads := 0
	if msg.Step != nil {
		payloads++
	}
	if msg.Report != nil {
		payloads++
	}
	if msg.CF != nil {
		payloads++
	}
	if payloads > 1 {
		return nil, fmt.Errorf("%d payloads in one message", payloads)
	}
	switch msg.Type {
	case TypeStep:
		if msg.Step == nil {
			return nil, errors.New("step message without payload")
		}
	case TypeReport:
		if msg.Report == nil {
			return nil, errors.New("report message without payload")
		}
	case TypeCF:
		if msg.CF == nil {
			return nil, errors.New("cf message without payload")
		}
	case TypeDump:
		if payloads != 0 {
			return nil, errors.New("dump message carries a payload")
		}
		if msg.Seq != 0 {
			return nil, errors.New("dump message cannot be sequenced")
		}
	case TypeRemap, TypeResize:
		if payloads != 0 || msg.Handoff != nil {
			return nil, fmt.Errorf("%s message carries a payload", msg.Type)
		}
		if msg.Map == nil {
			return nil, fmt.Errorf("%s message without a map", msg.Type)
		}
		if msg.Seq != 0 {
			return nil, fmt.Errorf("%s message cannot be sequenced", msg.Type)
		}
	case TypeAdopt:
		if payloads != 0 || msg.Map != nil {
			return nil, errors.New("adopt message carries a payload")
		}
		if msg.Handoff == nil {
			return nil, errors.New("adopt message without a handoff")
		}
		if msg.Seq != 0 {
			return nil, errors.New("adopt message cannot be sequenced")
		}
	default:
		return nil, fmt.Errorf("unknown message type %q", msg.Type)
	}
	if msg.Type != TypeRemap && msg.Type != TypeResize && msg.Map != nil {
		return nil, fmt.Errorf("%s message carries a shard map", msg.Type)
	}
	if msg.Type != TypeAdopt && msg.Handoff != nil {
		return nil, fmt.Errorf("%s message carries a handoff", msg.Type)
	}
	return &msg, nil
}

// DurabilityConfig makes accepted messages crash-safe: a write-ahead log
// under Dir, acknowledged only per the fsync policy, plus periodic atomic
// snapshots that bound replay time. The zero Fsync value is FsyncAlways.
type DurabilityConfig struct {
	// Dir holds wal.log and snapshot.json. Created if absent. Required.
	Dir string
	// Fsync selects when the WAL reaches stable storage (always /
	// interval / off); see FsyncPolicy.
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval syncs (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a snapshot (and truncates the WAL) after this
	// many applied messages. <= 0 snapshots only on Drain.
	SnapshotEvery int
}

// RateLimit is the per-client token bucket. Rate 0 disables limiting.
type RateLimit struct {
	// Rate is the sustained messages/second allowed per client (keyed by
	// Message.Client, or the peer address for unnamed submissions).
	Rate float64
	// Burst is the bucket depth (default: Rate rounded up, minimum 1).
	Burst int
}

// ServerConfig hardens the service against misbehaving peers and overload.
type ServerConfig struct {
	// ReadTimeout bounds how long a connection may go without delivering
	// bytes before it is dropped (a stalled client must not hold its
	// handler — or Close — hostage). <= 0 disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds one reply write. Acks flow through the single
	// applier goroutine, so a peer that stops reading its replies (full
	// TCP send buffer) would head-of-line block every client's acks; it
	// is disconnected instead. 0 uses the default (10s); < 0 disables
	// the deadline.
	WriteTimeout time.Duration
	// MaxLineBytes caps one protocol line; a longer line terminates the
	// connection (counted in Stats().Oversized) instead of growing the
	// scanner buffer without bound. <= 0 uses the default (16 MiB).
	MaxLineBytes int
	// MaxQueue bounds the ingest queue between connection handlers and
	// the applier. A full queue produces an explicit retryable
	// "overloaded" NACK instead of unbounded memory growth. <= 0 uses the
	// default (1024).
	MaxQueue int
	// RateLimit throttles each client; the zero value disables it.
	RateLimit RateLimit
	// AckTTL evicts a disconnected client's ack window after this idle
	// time (counted in Stats().AckEvictions), bounding the per-client
	// dedup state. 0 uses the default (15m); < 0 never evicts.
	AckTTL time.Duration
	// Durability, when non-nil, write-ahead-logs and snapshots every
	// accepted message so a restart recovers a byte-identical state.
	Durability *DurabilityConfig
	// Shard, when non-nil, runs this server as one shard of a diagnosis
	// fleet: it only accepts named clients the shard map assigns to it
	// (others get a moved NACK carrying the owning shard), retains every
	// accepted message with its (client, seq) provenance for the "dump"
	// verb, and persists shard snapshots in message form so recovery can
	// re-filter ownership against the current map.
	Shard *ShardConfig
	// Now injects the clock used for rate limiting, ack-window TTLs, and
	// WAL fsync pacing. Nil uses the wall clock. (These are real-daemon
	// concerns; simulation time never reaches this package.)
	Now func() time.Time
	// Log, when set, receives structured connection-level events
	// (accepted peers, malformed and oversized lines, timeouts, duplicate
	// resubmissions, rejected ingests). Nil keeps the server silent.
	Log *slog.Logger

	// testApplyGate, when set (in-package tests only), makes the applier
	// receive from it before each apply — a deterministic way to hold the
	// ingest queue full.
	testApplyGate chan struct{}
}

// DefaultServerConfig returns the production hardening defaults. The read
// timeout is generous — an idle monitor between collectives is normal —
// but finite, and a dropped idle client just reconnects.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ReadTimeout:  2 * time.Minute,
		WriteTimeout: 10 * time.Second,
		MaxLineBytes: 16 << 20,
		MaxQueue:     1024,
	}
}

// ServerStats counts the abuse and overload the server shrugged off.
type ServerStats struct {
	// Malformed lines were skipped (with an error reply) rather than
	// killing the connection.
	Malformed int64
	// Oversized lines exceeded MaxLineBytes and terminated the connection.
	Oversized int64
	// TimedOut connections were dropped by the read deadline.
	TimedOut int64
	// Rejected messages parsed but failed ingestion.
	Rejected int64
	// Duplicates are resubmitted already-acked messages (suppressed).
	Duplicates int64
	// Overloaded messages were NACKed because the ingest queue was full.
	Overloaded int64
	// RateLimited messages were NACKed by a client's token bucket.
	RateLimited int64
	// AckEvictions counts per-client ack windows dropped after the idle
	// TTL expired on a disconnected client.
	AckEvictions int64
	// WALErrors counts messages NACKed because the write-ahead log could
	// not make them durable.
	WALErrors int64
	// Moved messages named a client the shard map assigns to another
	// shard; they were NACKed with the owning shard index (shard mode
	// only).
	Moved int64
	// Remaps counts shard maps installed live via the remap verb.
	Remaps int64
	// Adopted counts messages absorbed from rebalance handoffs.
	Adopted int64
	// StaleEpochs counts remap/adopt deliveries rejected because their
	// map epoch was behind the shard's.
	StaleEpochs int64
}

// clientState is everything the server remembers about one submitting
// client: the ack highwater (a cumulative sliding window over its
// sequence space — O(1) regardless of how much it has sent), the token
// bucket, and the idle-tracking needed to evict it after disconnect.
type clientState struct {
	acked    int64
	conns    int
	lastSeen time.Time
	tokens   float64
	refilled time.Time
	// retryLow is the lowest seq the server load-shed with a retryable
	// NACK under this state. While the state has no live highwater
	// (acked == 0) the applier refuses to baseline past it — the shed
	// message's resubmission must land first or it would be wrongly
	// suppressed as a duplicate. Cleared once acked reaches it.
	retryLow int64
}

// ingestItem is one accepted message queued for the applier. raw is the
// exact protocol line (copied out of the scanner), which the WAL persists
// so recovery re-parses the identical message.
type ingestItem struct {
	msg  *Message
	raw  []byte
	conn net.Conn
	key  string
}

// Server accepts monitor connections and aggregates their submissions.
type Server struct {
	ln  net.Listener
	cfg ServerConfig
	log *slog.Logger
	now func() time.Time

	mu      sync.Mutex
	records []collective.StepRecord // guarded by mu
	reports []*telemetry.Report     // guarded by mu
	cfs     map[fabric.FlowKey]bool // guarded by mu
	// stepIndex maps a collective flow to its (host, step), learned from
	// the step records themselves.
	stepIndex map[fabric.FlowKey]waitgraph.StepRef // guarded by mu
	// clients holds the per-client ack windows, token buckets, and idle
	// state; entries for disconnected clients are evicted after AckTTL.
	clients  map[string]*clientState // guarded by mu
	conns    map[net.Conn]struct{}   // guarded by mu
	stats    ServerStats             // guarded by mu
	draining bool                    // guarded by mu
	closed   bool                    // guarded by mu
	stopped  bool                    // guarded by mu

	// ring is the consistent-hash ownership function in shard mode (nil
	// otherwise) and shardMap the map it was built from; both are
	// guarded by shardMu because a live rebalance swaps them via the
	// remap verb while connection handlers consult ownership. Lock
	// order: mu before shardMu (never the reverse). Whether the server
	// is in shard mode at all is immutable — check cfg.Shard, not ring.
	shardMu  sync.RWMutex
	ring     *wire.HashRing
	shardMap wire.ShardMap
	// adoptedEpochs records, per donor shard, the newest handoff epoch
	// fully absorbed, making a re-delivered adopt idempotent when the
	// reply (not the work) was lost. Guarded by mu.
	adoptedEpochs map[int]int64
	// sourced retains every accepted message with its (client, seq)
	// provenance, in ingest order, for dumps and shard snapshots.
	sourced []wire.SourcedMessage // guarded by mu

	// wal and sinceSnap are owned by the applier goroutine (and by
	// stop(), which runs strictly after the applier exits).
	wal       *wal
	sinceSnap int
	recovery  RecoverStats
	snapshots atomic.Int64

	queue       chan ingestItem
	applierDone chan struct{}
	wg          sync.WaitGroup
}

// Serve starts the analyzer on addr ("127.0.0.1:0" for an ephemeral port)
// with the default hardening configuration.
func Serve(addr string) (*Server, error) {
	return ServeWith(addr, DefaultServerConfig())
}

// ServeWith starts the analyzer with an explicit configuration. With a
// DurabilityConfig it first recovers the snapshot and WAL under Dir, so
// the listener only opens once the restored state is complete.
func ServeWith(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 16 << 20
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.AckTTL == 0 {
		cfg.AckTTL = 15 * time.Minute
	}
	s := &Server{
		cfg:         cfg,
		log:         cfg.Log,
		now:         cfg.Now,
		cfs:         make(map[fabric.FlowKey]bool),
		stepIndex:   make(map[fabric.FlowKey]waitgraph.StepRef),
		clients:     make(map[string]*clientState),
		conns:       make(map[net.Conn]struct{}),
		queue:       make(chan ingestItem, cfg.MaxQueue),
		applierDone: make(chan struct{}),
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	if s.now == nil {
		//lint:ignore nosystime rate limiting, ack TTLs and fsync pacing on a real TCP daemon; wall clock never reaches simulation state
		s.now = time.Now
	}
	if cfg.Shard != nil {
		ring, err := cfg.Shard.ring()
		if err != nil {
			return nil, err
		}
		s.ring = ring
		s.shardMap = cfg.Shard.Map
		s.adoptedEpochs = make(map[int]int64)
	}
	if cfg.Durability != nil {
		if err := s.openDurability(*cfg.Durability); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if s.wal != nil {
			_ = s.wal.Close() // the listen failure is the error worth returning
		}
		return nil, fmt.Errorf("analyzerd: %w", err)
	}
	s.ln = ln
	go s.applier()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// openDurability recovers the state under dur.Dir into memory and opens
// the WAL for appending.
func (s *Server) openDurability(dur DurabilityConfig) error {
	if dur.Dir == "" {
		return errors.New("analyzerd: DurabilityConfig.Dir is required")
	}
	if err := os.MkdirAll(dur.Dir, 0o755); err != nil {
		return fmt.Errorf("analyzerd: %w", err)
	}
	rec, err := Recover(dur.Dir)
	if err != nil {
		return err
	}
	s.applyRecovered(rec)
	s.recovery = rec.Stats
	if rec.Stats.WALTruncatedBytes > 0 {
		s.log.Warn("WAL tail truncated during recovery",
			"bytes", rec.Stats.WALTruncatedBytes, "torn", rec.Stats.WALTornTail)
	}
	w, err := openWAL(dur.Dir, rec.Stats.NextLSN, dur.Fsync, dur.FsyncInterval, s.now)
	if err != nil {
		return err
	}
	s.wal = w
	return nil
}

// applyRecovered loads a recovered snapshot + WAL tail into memory, in
// the exact ingest order the original run used, without re-logging. It
// runs before the listener opens, but takes s.mu anyway: the lock is
// uncontended and keeps the guarded-state discipline uniform.
func (s *Server) applyRecovered(rec *RecoveredState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for _, sm := range rec.Snapshot.Messages {
		// Shard-mode snapshot: rebuild state by re-ingesting the sourced
		// stream, dropping clients the current shard map assigns
		// elsewhere — a map change between incarnations must not replay
		// records into the wrong shard.
		if _, moved := s.disownedBy(sm.Client); moved {
			rec.Stats.Reassigned++
			continue
		}
		msg := messageFromSourced(sm)
		if err := s.ingest(msg); err != nil {
			s.log.Warn("recovery: skipping unreplayable snapshot message",
				"client", msg.Client, "seq", msg.Seq, "err", err.Error())
			continue
		}
	}
	for _, r := range rec.Snapshot.Records {
		recInt := r.Record()
		s.records = append(s.records, recInt)
		s.stepIndex[recInt.Flow] = waitgraph.StepRef{Host: recInt.Host, Step: recInt.Step}
	}
	for _, r := range rec.Snapshot.Reports {
		s.reports = append(s.reports, r.Telemetry())
	}
	for _, f := range rec.Snapshot.CFs {
		s.cfs[f.Key()] = true
	}
	for _, a := range rec.Snapshot.Acked {
		if _, moved := s.disownedBy(a.Client); moved {
			continue // the owning shard holds this client's window now
		}
		st := s.newClientState(now)
		st.acked = a.Seq
		s.clients[a.Client] = st
	}
	for _, msg := range rec.Messages {
		if _, moved := s.disownedBy(msg.Client); moved {
			rec.Stats.Reassigned++
			continue
		}
		if msg.Seq > 0 && msg.Seq <= s.clientAcked(msg.Client) {
			continue // resubmission that was logged twice across a crash
		}
		if err := s.ingest(msg); err != nil {
			// Every logged record passed ParseMessage before it was
			// appended, so an unreplayable one means the WAL was written
			// by a different (or corrupt) writer: surface it and skip,
			// leaving the ack window alone so the client resubmits.
			s.log.Warn("recovery: skipping unreplayable WAL record",
				"client", msg.Client, "seq", msg.Seq, "err", err.Error())
			continue
		}
		if msg.Seq > 0 {
			s.markAcked(msg.Client, msg.Seq)
		}
	}
}

// clientAcked returns client's ack highwater. Callers hold s.mu.
func (s *Server) clientAcked(client string) int64 {
	if st, ok := s.clients[client]; ok {
		return st.acked
	}
	return 0
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the abuse counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Recovery returns what the startup recovery rebuilt and discarded (zero
// without a DurabilityConfig).
func (s *Server) Recovery() RecoverStats {
	return s.recovery
}

// Conns returns the number of live client connections.
func (s *Server) Conns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// QueueDepth returns how many accepted messages await the applier.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Ready reports whether the server is accepting and ingesting — the
// /readyz contract. It returns an error while draining or closed, and
// once the WAL has wedged (a failed flush or fsync stops all acks; only
// a restart recovers the log), so a supervisor sees the daemon needs
// restarting instead of NACKing every client forever.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return errors.New("analyzerd: draining")
	}
	if s.wal != nil {
		if err := s.wal.wedged(); err != nil {
			return err
		}
	}
	return nil
}

// PublishStats exposes the server's abuse counters, ingest totals, queue
// and WAL state on the registry as live gauges (each read re-snapshots
// the server), so a /metrics or /debug/vars endpoint reports them without
// polling glue.
func (s *Server) PublishStats(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("vedr_analyzerd_malformed_total", "protocol lines skipped as malformed",
		func() int64 { return s.Stats().Malformed })
	reg.GaugeFunc("vedr_analyzerd_oversized_total", "connections dropped for oversized lines",
		func() int64 { return s.Stats().Oversized })
	reg.GaugeFunc("vedr_analyzerd_timedout_total", "connections dropped by the read deadline",
		func() int64 { return s.Stats().TimedOut })
	reg.GaugeFunc("vedr_analyzerd_rejected_total", "messages that parsed but failed ingestion",
		func() int64 { return s.Stats().Rejected })
	reg.GaugeFunc("vedr_analyzerd_duplicates_total", "resubmitted already-acked messages suppressed",
		func() int64 { return s.Stats().Duplicates })
	reg.GaugeFunc("vedr_analyzerd_overloaded_total", "messages NACKed because the ingest queue was full",
		func() int64 { return s.Stats().Overloaded })
	reg.GaugeFunc("vedr_analyzerd_ratelimited_total", "messages NACKed by per-client token buckets",
		func() int64 { return s.Stats().RateLimited })
	reg.GaugeFunc("vedr_analyzerd_ack_evictions_total", "idle client ack windows evicted",
		func() int64 { return s.Stats().AckEvictions })
	reg.GaugeFunc("vedr_analyzerd_wal_errors_total", "messages NACKed because the WAL append failed",
		func() int64 { return s.Stats().WALErrors })
	reg.GaugeFunc("vedr_analyzerd_moved_total", "messages NACKed because another shard owns the client",
		func() int64 { return s.Stats().Moved })
	reg.GaugeFunc("vedr_analyzerd_connections", "live client connections",
		func() int64 { return int64(s.Conns()) })
	reg.GaugeFunc("vedr_analyzerd_queue_depth", "accepted messages awaiting the applier",
		func() int64 { return int64(s.QueueDepth()) })
	reg.GaugeFunc("vedr_analyzerd_queue_capacity", "ingest queue bound",
		func() int64 { return int64(cap(s.queue)) })
	reg.GaugeFunc("vedr_analyzerd_records", "step records ingested",
		func() int64 { r, _, _ := s.Counts(); return int64(r) })
	reg.GaugeFunc("vedr_analyzerd_reports", "telemetry reports ingested",
		func() int64 { _, r, _ := s.Counts(); return int64(r) })
	reg.GaugeFunc("vedr_analyzerd_cfs", "collective flows registered",
		func() int64 { _, _, c := s.Counts(); return int64(c) })
	reg.GaugeFunc("vedr_analyzerd_snapshots_total", "state snapshots written",
		func() int64 { return s.snapshots.Load() })
	if s.wal != nil {
		reg.GaugeFunc("vedr_analyzerd_wal_appends_total", "messages appended to the write-ahead log",
			func() int64 { return s.wal.appends.Load() })
		reg.GaugeFunc("vedr_analyzerd_wal_syncs_total", "WAL fsyncs issued",
			func() int64 { return s.wal.syncs.Load() })
		rec := s.recovery
		reg.GaugeFunc("vedr_analyzerd_recovered_wal_entries", "WAL entries replayed at startup",
			func() int64 { return int64(rec.WALEntries) })
		reg.GaugeFunc("vedr_analyzerd_recovered_truncated_bytes", "torn/corrupt WAL tail bytes dropped at startup",
			func() int64 { return rec.WALTruncatedBytes })
		reg.GaugeFunc("vedr_analyzerd_recovered_records", "step records restored from snapshot at startup",
			func() int64 { return int64(rec.SnapshotRecords) })
	}
}

// Close stops accepting, severs live connections, and waits for handlers
// and the applier to drain. A stalled client cannot block it: its
// connection is closed out from under its handler. Queued messages are
// still applied (and, with durability, logged) before Close returns, but
// no final snapshot is taken — use Drain for a graceful shutdown.
func (s *Server) Close() error { return s.stop(false) }

// Drain is the graceful shutdown: stop accepting, sever connections,
// apply everything already queued, flush and sync the WAL, write a final
// snapshot, and release the log. After Drain a restart recovers from the
// snapshot alone.
func (s *Server) Drain() error { return s.stop(true) }

func (s *Server) stop(persist bool) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.closed = true
	s.draining = true
	for conn := range s.conns {
		_ = conn.Close() // severing peers; their handlers report the close
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()     // all handlers (the only queue senders) have exited
	close(s.queue)  // the applier drains what's left and exits
	<-s.applierDone //
	if s.wal != nil {
		if persist {
			if serr := s.snapshotNow(); serr != nil && err == nil {
				err = serr
			}
		}
		if serr := s.wal.Close(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing a shutdown; nothing was written yet
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				_ = conn.Close() // handler already surfaced any I/O error
			}()
			s.handle(conn)
		}()
	}
}

// deadlineReader re-arms the connection's read deadline before every read,
// so the deadline bounds inactivity rather than total connection lifetime.
type deadlineReader struct {
	conn net.Conn
	d    time.Duration
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	//lint:ignore nosystime read deadline on a real TCP connection; wall clock never reaches simulation state
	if err := r.conn.SetReadDeadline(time.Now().Add(r.d)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}

func (s *Server) handle(conn net.Conn) {
	peer := conn.RemoteAddr().String()
	s.log.Info("client connected", "peer", peer)
	// seen tracks which client keys this connection submitted under, so
	// the disconnect can release them for TTL eviction.
	seen := make(map[string]bool)
	defer func() {
		s.releaseClients(seen)
		s.log.Info("client disconnected", "peer", peer)
	}()
	var r io.Reader = conn
	if s.cfg.ReadTimeout > 0 {
		r = &deadlineReader{conn: conn, d: s.cfg.ReadTimeout}
	}
	sc := bufio.NewScanner(r)
	initial := 64 << 10
	if initial > s.cfg.MaxLineBytes {
		initial = s.cfg.MaxLineBytes
	}
	sc.Buffer(make([]byte, 0, initial), s.cfg.MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		msg, err := ParseMessage(line)
		if err != nil {
			s.count(func(st *ServerStats) { st.Malformed++ })
			s.log.Warn("malformed line", "peer", peer, "err", err.Error())
			s.replyf(conn, `{"error":%q}`+"\n", err.Error())
			continue
		}
		if msg.Type == TypeDump {
			s.replyDump(conn)
			continue
		}
		if msg.Type == TypeRemap || msg.Type == TypeAdopt || msg.Type == TypeResize {
			s.handleAdmin(conn, msg)
			continue
		}
		if owner, ok := s.disownedBy(msg.Client); ok {
			s.count(func(st *ServerStats) { st.Moved++ })
			s.log.Warn("client belongs to another shard", "peer", peer,
				"client", msg.Client, "owner", owner)
			s.replyMoved(conn, msg.Seq, msg.Client, owner)
			continue
		}
		key := msg.Client
		if key == "" {
			key = peer
		}
		if !seen[key] {
			seen[key] = true
			s.bindClient(key)
		}
		if msg.Seq > 0 && s.alreadyAcked(msg.Client, msg.Seq) {
			s.count(func(st *ServerStats) { st.Duplicates++ })
			s.log.Debug("duplicate suppressed", "peer", peer, "client", msg.Client, "seq", msg.Seq)
			s.replyf(conn, `{"ack":%d}`+"\n", msg.Seq)
			continue
		}
		if !s.admit(key) {
			s.count(func(st *ServerStats) { st.RateLimited++ })
			s.log.Warn("rate limited", "peer", peer, "client", key)
			s.nackRetry(conn, msg.Client, msg.Seq, "rate limited")
			continue
		}
		item := ingestItem{msg: msg, raw: append([]byte(nil), line...), conn: conn, key: key}
		select {
		case s.queue <- item:
		default:
			s.count(func(st *ServerStats) { st.Overloaded++ })
			s.log.Warn("ingest queue full", "peer", peer, "depth", len(s.queue))
			s.nackRetry(conn, msg.Client, msg.Seq, "overloaded")
		}
	}
	switch err := sc.Err(); {
	case err == nil:
	case errors.Is(err, bufio.ErrTooLong):
		s.count(func(st *ServerStats) { st.Oversized++ })
		s.log.Warn("oversized line, dropping connection", "peer", peer, "limit", s.cfg.MaxLineBytes)
		s.replyf(conn, `{"error":%q}`+"\n",
			fmt.Sprintf("line exceeds %d bytes", s.cfg.MaxLineBytes))
	default:
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			s.count(func(st *ServerStats) { st.TimedOut++ })
			s.log.Warn("connection timed out", "peer", peer)
		}
	}
}

// nackRetry tells the client to back off and resubmit: the message was
// not accepted, but only because of transient pressure. The shed seq is
// recorded on the client's state so the applier cannot baseline a fresh
// ack window past the hole (see apply).
func (s *Server) nackRetry(conn net.Conn, client string, seq int64, reason string) {
	s.noteRetryNack(client, seq)
	if seq > 0 {
		s.replyf(conn, `{"nak":%d,"error":%q,"retry":true}`+"\n", seq, reason)
	} else {
		s.replyf(conn, `{"error":%q,"retry":true}`+"\n", reason)
	}
}

// noteRetryNack remembers the lowest seq load-shed from a client with a
// retryable NACK, the guard the applier's baseline rule checks before
// trusting a first-seen seq.
func (s *Server) noteRetryNack(client string, seq int64) {
	if seq <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.clients[client]
	if st == nil {
		st = s.newClientState(s.now())
		s.clients[client] = st
	}
	if st.retryLow == 0 || seq < st.retryLow {
		st.retryLow = seq
	}
}

// replyf writes one reply line under the write deadline, closing the
// connection on failure: acks flow through the single applier goroutine,
// so a peer that stops reading its replies must not head-of-line block
// every other client — it is cut off and re-syncs by resubmitting on
// reconnect.
func (s *Server) replyf(conn net.Conn, format string, args ...any) {
	if s.cfg.WriteTimeout > 0 {
		//lint:ignore nosystime write deadline on a real TCP connection; wall clock never reaches simulation state
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			// Without the deadline the Fprintf below could block forever on
			// a stuck peer, which is exactly the head-of-line stall the
			// deadline exists to prevent — cut the connection instead.
			s.log.Warn("reply deadline failed, dropping connection",
				"peer", conn.RemoteAddr().String(), "err", err.Error())
			_ = conn.Close()
			return
		}
	}
	if _, err := fmt.Fprintf(conn, format, args...); err != nil {
		s.log.Warn("reply write failed, dropping connection",
			"peer", conn.RemoteAddr().String(), "err", err.Error())
		_ = conn.Close() // the write error is already reported above
	}
}

// applier is the single goroutine that owns the WAL and the apply order:
// every accepted message becomes durable (per the fsync policy), then
// visible to Diagnose, then acknowledged — in exactly the order messages
// entered the queue, which is the order recovery replays.
func (s *Server) applier() {
	defer close(s.applierDone)
	for item := range s.queue {
		if s.cfg.testApplyGate != nil {
			<-s.cfg.testApplyGate
		}
		s.apply(item)
	}
}

func (s *Server) apply(item ingestItem) {
	msg := item.msg
	switch msg.Type {
	case TypeRemap:
		s.applyRemap(item)
		return
	case TypeAdopt:
		s.applyAdopt(item)
		return
	}
	if msg.Seq > 0 {
		s.mu.Lock()
		var acked, retryLow int64
		if st := s.clients[msg.Client]; st != nil {
			acked, retryLow = st.acked, st.retryLow
		}
		s.mu.Unlock()
		switch {
		case msg.Seq <= acked:
			// A resubmission raced its original through the queue.
			s.count(func(st *ServerStats) { st.Duplicates++ })
			s.replyf(item.conn, `{"ack":%d}`+"\n", msg.Seq)
			return
		case acked == 0 && (retryLow == 0 || msg.Seq <= retryLow):
			// No live highwater for this client: first contact, an ack
			// window evicted by AckTTL, or state lost to a non-durable
			// restart. Its seq counter is process-lifetime monotonic, so
			// demanding seq 1 would NACK its resubmissions forever; the
			// first seen seq becomes the new baseline instead. That is
			// only unsafe when a lower seq was already load-shed under
			// this state (retryLow) — then the hole must be filled first,
			// which the next case enforces.
		case msg.Seq != acked+1:
			// An earlier message from this client was NACKed (overload,
			// rate limit) after this one was already queued. Accepting it
			// would advance the cumulative ack highwater past that hole
			// and the resubmission would be wrongly suppressed as a
			// duplicate — so the whole tail is bounced for resubmission.
			s.count(func(st *ServerStats) { st.Overloaded++ })
			s.nackRetry(item.conn, msg.Client, msg.Seq, "out of order")
			return
		}
	}
	if s.wal != nil {
		if _, err := s.wal.Append(item.raw); err != nil {
			s.count(func(st *ServerStats) { st.WALErrors++ })
			s.log.Warn("WAL append failed", "err", err.Error())
			s.nackRetry(item.conn, msg.Client, msg.Seq, "wal append failed")
			return
		}
	}
	if err := s.ingestLocked(msg); err != nil {
		s.count(func(st *ServerStats) { st.Rejected++ })
		s.log.Warn("message rejected", "err", err.Error())
		if msg.Seq > 0 {
			// A permanent rejection still advances the highwater — the
			// message is handled (dropped), and leaving a hole would wedge
			// the client's stream on the contiguity check forever. The nak
			// tells the client to drop it rather than resubmit.
			s.mu.Lock()
			s.markAcked(msg.Client, msg.Seq)
			s.mu.Unlock()
			s.replyf(item.conn, `{"nak":%d,"error":%q}`+"\n", msg.Seq, err.Error())
		} else {
			s.replyf(item.conn, `{"error":%q}`+"\n", err.Error())
		}
		return
	}
	if msg.Seq > 0 {
		s.mu.Lock()
		s.markAcked(msg.Client, msg.Seq)
		s.mu.Unlock()
		s.replyf(item.conn, `{"ack":%d}`+"\n", msg.Seq)
	}
	s.maybeSnapshot()
}

// maybeSnapshot writes a snapshot and truncates the WAL once enough
// messages accumulated since the last one. Applier-only.
func (s *Server) maybeSnapshot() {
	if s.wal == nil || s.cfg.Durability.SnapshotEvery <= 0 {
		return
	}
	s.sinceSnap++
	if s.sinceSnap < s.cfg.Durability.SnapshotEvery {
		return
	}
	if err := s.snapshotNow(); err != nil {
		s.log.Warn("snapshot failed", "err", err.Error())
		return
	}
	s.sinceSnap = 0
}

// snapshotNow captures the full in-memory state as wire DTOs, writes it
// atomically, and truncates the now-redundant WAL. Applier-only (or
// post-applier, from stop).
func (s *Server) snapshotNow() error {
	snap := s.buildSnapshot()
	if err := writeSnapshot(s.cfg.Durability.Dir, snap); err != nil {
		return err
	}
	s.snapshots.Add(1)
	if err := s.wal.Reset(); err != nil {
		return err
	}
	s.log.Info("snapshot written", "records", len(snap.Records),
		"reports", len(snap.Reports), "cfs", len(snap.CFs), "next_lsn", snap.NextLSN)
	return nil
}

// buildSnapshot serializes the ingest state deterministically: records
// and reports in ingest order (the order that defines the flow→step
// index), flow and ack sets sorted.
func (s *Server) buildSnapshot() wire.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := wire.Snapshot{Format: wire.SnapshotFormat, NextLSN: s.wal.nextLSN}
	if s.cfg.Shard != nil {
		// Shard mode persists the sourced message stream instead of the
		// derived record/report/cf state: recovery re-ingests the
		// messages, which re-derives the state *and* re-checks ownership
		// against the shard map of the restarted incarnation.
		snap.Messages = append(snap.Messages, s.sourced...)
		snap.Acked = s.ackedLocked()
		return snap
	}
	for _, r := range s.records {
		snap.Records = append(snap.Records, wire.FromStepRecord(r))
	}
	for _, r := range s.reports {
		snap.Reports = append(snap.Reports, wire.FromReport(r))
	}
	keys := make([]fabric.FlowKey, 0, len(s.cfs))
	for k := range s.cfs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flowKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		snap.CFs = append(snap.CFs, wire.FromFlow(k))
	}
	snap.Acked = s.ackedLocked()
	return snap
}

// ackedLocked returns the per-client ack highwaters, sorted by client.
// Callers hold s.mu.
func (s *Server) ackedLocked() []wire.ClientAck {
	ids := make([]string, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var acked []wire.ClientAck
	for _, id := range ids {
		if st := s.clients[id]; st.acked > 0 {
			acked = append(acked, wire.ClientAck{Client: id, Seq: st.acked})
		}
	}
	return acked
}

func flowKeyLess(a, b fabric.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

func (s *Server) count(f func(*ServerStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func (s *Server) alreadyAcked(client string, seq int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return seq <= s.clientAcked(client)
}

// newClientState is the one constructor for per-client state: every path
// that first learns about a client (bind, admit, ack, NACK, recovery)
// grants the same full token bucket, so a client arriving via recovery
// or an applier-side ack is not spuriously rate-limited from zero.
func (s *Server) newClientState(now time.Time) *clientState {
	st := &clientState{lastSeen: now, refilled: now}
	if s.cfg.RateLimit.Rate > 0 {
		st.tokens = float64(s.burst())
	}
	return st
}

// markAcked advances a client's ack highwater. Callers hold s.mu.
func (s *Server) markAcked(client string, seq int64) {
	st := s.clients[client]
	if st == nil {
		st = s.newClientState(s.now())
		s.clients[client] = st
	}
	if seq > st.acked {
		st.acked = seq
	}
	if st.retryLow != 0 && st.acked >= st.retryLow {
		st.retryLow = 0 // the shed message landed; the hole is filled
	}
	st.lastSeen = s.now()
}

// bindClient pins a client's state for the lifetime of a connection that
// submits under it, so it cannot be evicted mid-conversation.
func (s *Server) bindClient(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	st := s.clients[key]
	if st == nil {
		st = s.newClientState(now)
		s.clients[key] = st
	}
	st.conns++
	st.lastSeen = now
}

// releaseClients unpins a closing connection's clients and evicts any
// client that has been disconnected past the ack TTL.
func (s *Server) releaseClients(seen map[string]bool) {
	if len(seen) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for key := range seen {
		if st := s.clients[key]; st != nil {
			st.conns--
			st.lastSeen = now
		}
	}
	s.evictIdle(now)
}

// evictIdle drops ack windows for clients with no live connection that
// have been idle past AckTTL. Callers hold s.mu.
func (s *Server) evictIdle(now time.Time) {
	if s.cfg.AckTTL < 0 {
		return
	}
	for id, st := range s.clients {
		if st.conns <= 0 && now.Sub(st.lastSeen) > s.cfg.AckTTL {
			delete(s.clients, id)
			s.stats.AckEvictions++
		}
	}
}

func (s *Server) burst() int {
	b := s.cfg.RateLimit.Burst
	if b <= 0 {
		b = int(s.cfg.RateLimit.Rate + 0.999)
		if b < 1 {
			b = 1
		}
	}
	return b
}

// admit charges one token from the client's bucket; false means the
// client is over its rate and must back off.
func (s *Server) admit(key string) bool {
	if s.cfg.RateLimit.Rate <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	st := s.clients[key]
	if st == nil {
		st = s.newClientState(now)
		s.clients[key] = st
	}
	burst := float64(s.burst())
	st.tokens += s.cfg.RateLimit.Rate * now.Sub(st.refilled).Seconds()
	if st.tokens > burst {
		st.tokens = burst
	}
	st.refilled = now
	if st.tokens < 1 {
		return false
	}
	st.tokens--
	return true
}

// ingestLocked stores one validated message under the state lock.
func (s *Server) ingestLocked(msg *Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingest(msg)
}

// ingest stores one validated message. Validation lives in ParseMessage;
// by the time a message reaches here its payload is present and singular.
// Callers hold s.mu.
func (s *Server) ingest(msg *Message) error {
	switch msg.Type {
	case TypeStep:
		if msg.Step == nil {
			return errors.New("step message without payload")
		}
		rec := msg.Step.Record()
		s.records = append(s.records, rec)
		s.stepIndex[rec.Flow] = waitgraph.StepRef{Host: rec.Host, Step: rec.Step}
	case TypeReport:
		if msg.Report == nil {
			return errors.New("report message without payload")
		}
		s.reports = append(s.reports, msg.Report.Telemetry())
	case TypeCF:
		if msg.CF == nil {
			return errors.New("cf message without payload")
		}
		s.cfs[msg.CF.Key()] = true
	default:
		return fmt.Errorf("unknown message type %q", msg.Type)
	}
	if s.cfg.Shard != nil {
		s.sourced = append(s.sourced, sourcedFromMessage(msg))
	}
	return nil
}

// Counts returns how many records/reports/collective flows have been
// ingested.
func (s *Server) Counts() (records, reports, cfs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records), len(s.reports), len(s.cfs)
}

// Diagnose runs the analyzer over everything ingested so far.
func (s *Server) Diagnose() *diagnose.Diagnosis {
	s.mu.Lock()
	records := make([]collective.StepRecord, len(s.records))
	copy(records, s.records)
	reports := make([]*telemetry.Report, len(s.reports))
	copy(reports, s.reports)
	cfs := make(map[fabric.FlowKey]bool, len(s.cfs))
	for k := range s.cfs {
		cfs[k] = true
	}
	index := make(map[fabric.FlowKey]waitgraph.StepRef, len(s.stepIndex))
	for k, v := range s.stepIndex {
		index[k] = v
	}
	s.mu.Unlock()

	return diagnose.Analyze(diagnose.Input{
		Records: records,
		Reports: reports,
		CFs:     cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			ref, ok := index[f]
			return ref, ok
		},
	})
}

// Client is a host agent's connection to the analyzer (fire-and-forget; no
// sequence numbers, no resubmission). ReliableClient adds both.
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects to an analyzer.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: %w", err)
	}
	w := bufio.NewWriter(conn)
	return &Client{conn: conn, w: w, enc: json.NewEncoder(w)}, nil
}

// SendStep submits a completed step record.
func (c *Client) SendStep(rec collective.StepRecord) error {
	dto := wire.FromStepRecord(rec)
	return c.enc.Encode(Message{Type: TypeStep, Step: &dto})
}

// SendReport submits a telemetry report.
func (c *Client) SendReport(rep *telemetry.Report) error {
	dto := wire.FromReport(rep)
	return c.enc.Encode(Message{Type: TypeReport, Report: &dto})
}

// SendCF registers one collective flow (monitors announce their schedule's
// 5-tuples before the collective starts).
func (c *Client) SendCF(flow fabric.FlowKey) error {
	dto := wire.FromFlow(flow)
	return c.enc.Encode(Message{Type: TypeCF, CF: &dto})
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	if err := c.w.Flush(); err != nil {
		_ = c.conn.Close() // the flush failure is the error worth returning
		return err
	}
	return c.conn.Close()
}
