// Package analyzerd implements the centralized analyzer of the paper's
// architecture (Fig 3) as a network service: host-side monitors connect
// over TCP and stream newline-delimited JSON messages — step records as
// collective steps complete, telemetry reports as detections fire, and the
// collective-flow census — and the analyzer aggregates them and produces
// diagnoses on demand.
//
// In the simulator the monitors and analyzer share a process, but this
// service is how a real deployment wires them: one analyzerd per cluster,
// one client per host agent. The service is hardened against misbehaving
// peers: per-connection read deadlines bound a stalled client, the line
// scanner is capped so an unbounded line cannot grow the buffer without
// limit, malformed lines are counted and skipped instead of killing the
// connection, and sequence-numbered submissions are acknowledged so a
// ReliableClient can reconnect and resubmit unacked records exactly once.
package analyzerd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/waitgraph"
	"vedrfolnir/internal/wire"
)

// Message is one line of the monitor→analyzer protocol. Exactly one payload
// field is set, selected by Type. Seq and Client are optional: a client
// that numbers its messages (per-client, strictly increasing from 1) gets
// an {"ack":seq} reply per ingested message and duplicate suppression on
// resubmission; unnumbered messages keep the original fire-and-forget
// behaviour.
type Message struct {
	Type   string           `json:"type"` // "step" | "report" | "cf"
	Step   *wire.StepRecord `json:"step,omitempty"`
	Report *wire.Report     `json:"report,omitempty"`
	CF     *wire.Flow       `json:"cf,omitempty"`
	Seq    int64            `json:"seq,omitempty"`
	Client string           `json:"client,omitempty"`
}

// Protocol message types.
const (
	TypeStep   = "step"
	TypeReport = "report"
	TypeCF     = "cf"
)

// ParseMessage decodes and validates one protocol line: known type, the
// matching payload present, no extra payloads, non-negative sequence
// number. It is the single entry point for untrusted input (the fuzz
// target), so every malformed shape must come back as an error, never a
// panic.
func ParseMessage(line []byte) (*Message, error) {
	var msg Message
	if err := json.Unmarshal(line, &msg); err != nil {
		return nil, err
	}
	if msg.Seq < 0 {
		return nil, fmt.Errorf("negative seq %d", msg.Seq)
	}
	payloads := 0
	if msg.Step != nil {
		payloads++
	}
	if msg.Report != nil {
		payloads++
	}
	if msg.CF != nil {
		payloads++
	}
	if payloads > 1 {
		return nil, fmt.Errorf("%d payloads in one message", payloads)
	}
	switch msg.Type {
	case TypeStep:
		if msg.Step == nil {
			return nil, errors.New("step message without payload")
		}
	case TypeReport:
		if msg.Report == nil {
			return nil, errors.New("report message without payload")
		}
	case TypeCF:
		if msg.CF == nil {
			return nil, errors.New("cf message without payload")
		}
	default:
		return nil, fmt.Errorf("unknown message type %q", msg.Type)
	}
	return &msg, nil
}

// ServerConfig hardens the service against misbehaving peers.
type ServerConfig struct {
	// ReadTimeout bounds how long a connection may go without delivering
	// bytes before it is dropped (a stalled client must not hold its
	// handler — or Close — hostage). <= 0 disables the deadline.
	ReadTimeout time.Duration
	// MaxLineBytes caps one protocol line; a longer line terminates the
	// connection (counted in Stats().Oversized) instead of growing the
	// scanner buffer without bound. <= 0 uses the default (16 MiB).
	MaxLineBytes int
	// Log, when set, receives structured connection-level events
	// (accepted peers, malformed and oversized lines, timeouts, duplicate
	// resubmissions, rejected ingests). Nil keeps the server silent.
	Log *slog.Logger
}

// DefaultServerConfig returns the production hardening defaults. The read
// timeout is generous — an idle monitor between collectives is normal —
// but finite, and a dropped idle client just reconnects.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{ReadTimeout: 2 * time.Minute, MaxLineBytes: 16 << 20}
}

// ServerStats counts the abuse the server shrugged off.
type ServerStats struct {
	// Malformed lines were skipped (with an error reply) rather than
	// killing the connection.
	Malformed int64
	// Oversized lines exceeded MaxLineBytes and terminated the connection.
	Oversized int64
	// TimedOut connections were dropped by the read deadline.
	TimedOut int64
	// Rejected messages parsed but failed ingestion.
	Rejected int64
	// Duplicates are resubmitted already-acked messages (suppressed).
	Duplicates int64
}

// Server accepts monitor connections and aggregates their submissions.
type Server struct {
	ln  net.Listener
	cfg ServerConfig
	log *slog.Logger

	mu      sync.Mutex
	records []collective.StepRecord
	reports []*telemetry.Report
	cfs     map[fabric.FlowKey]bool
	// stepIndex maps a collective flow to its (host, step), learned from
	// the step records themselves.
	stepIndex map[fabric.FlowKey]waitgraph.StepRef
	// acked is the per-client acknowledged-sequence highwater, the
	// resubmission dedup state.
	acked map[string]int64
	conns map[net.Conn]struct{}
	stats ServerStats

	wg     sync.WaitGroup
	closed bool
}

// Serve starts the analyzer on addr ("127.0.0.1:0" for an ephemeral port)
// with the default hardening configuration.
func Serve(addr string) (*Server, error) {
	return ServeWith(addr, DefaultServerConfig())
}

// ServeWith starts the analyzer with an explicit hardening configuration.
func ServeWith(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: %w", err)
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = 16 << 20
	}
	s := &Server{
		ln:        ln,
		cfg:       cfg,
		log:       cfg.Log,
		cfs:       make(map[fabric.FlowKey]bool),
		stepIndex: make(map[fabric.FlowKey]waitgraph.StepRef),
		acked:     make(map[string]int64),
		conns:     make(map[net.Conn]struct{}),
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the abuse counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Conns returns the number of live client connections.
func (s *Server) Conns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// PublishStats exposes the server's abuse counters and ingest totals on
// the registry as live gauges (each read re-snapshots the server), so a
// /metrics or /debug/vars endpoint reports them without polling glue.
func (s *Server) PublishStats(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("vedr_analyzerd_malformed_total", "protocol lines skipped as malformed",
		func() int64 { return s.Stats().Malformed })
	reg.GaugeFunc("vedr_analyzerd_oversized_total", "connections dropped for oversized lines",
		func() int64 { return s.Stats().Oversized })
	reg.GaugeFunc("vedr_analyzerd_timedout_total", "connections dropped by the read deadline",
		func() int64 { return s.Stats().TimedOut })
	reg.GaugeFunc("vedr_analyzerd_rejected_total", "messages that parsed but failed ingestion",
		func() int64 { return s.Stats().Rejected })
	reg.GaugeFunc("vedr_analyzerd_duplicates_total", "resubmitted already-acked messages suppressed",
		func() int64 { return s.Stats().Duplicates })
	reg.GaugeFunc("vedr_analyzerd_connections", "live client connections",
		func() int64 { return int64(s.Conns()) })
	reg.GaugeFunc("vedr_analyzerd_records", "step records ingested",
		func() int64 { r, _, _ := s.Counts(); return int64(r) })
	reg.GaugeFunc("vedr_analyzerd_reports", "telemetry reports ingested",
		func() int64 { _, r, _ := s.Counts(); return int64(r) })
	reg.GaugeFunc("vedr_analyzerd_cfs", "collective flows registered",
		func() int64 { _, _, c := s.Counts(); return int64(c) })
}

// Close stops accepting, severs live connections, and waits for handlers
// to drain. A stalled client cannot block it: its connection is closed out
// from under its handler.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// deadlineReader re-arms the connection's read deadline before every read,
// so the deadline bounds inactivity rather than total connection lifetime.
type deadlineReader struct {
	conn net.Conn
	d    time.Duration
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	//lint:ignore nosystime read deadline on a real TCP connection; wall clock never reaches simulation state
	if err := r.conn.SetReadDeadline(time.Now().Add(r.d)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}

func (s *Server) handle(conn net.Conn) {
	peer := conn.RemoteAddr().String()
	s.log.Info("client connected", "peer", peer)
	var r io.Reader = conn
	if s.cfg.ReadTimeout > 0 {
		r = &deadlineReader{conn: conn, d: s.cfg.ReadTimeout}
	}
	sc := bufio.NewScanner(r)
	initial := 64 << 10
	if initial > s.cfg.MaxLineBytes {
		initial = s.cfg.MaxLineBytes
	}
	sc.Buffer(make([]byte, 0, initial), s.cfg.MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		msg, err := ParseMessage(line)
		if err != nil {
			s.count(func(st *ServerStats) { st.Malformed++ })
			s.log.Warn("malformed line", "peer", peer, "err", err.Error())
			fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
			continue
		}
		if msg.Seq > 0 && s.alreadyAcked(msg.Client, msg.Seq) {
			s.count(func(st *ServerStats) { st.Duplicates++ })
			s.log.Debug("duplicate suppressed", "peer", peer, "client", msg.Client, "seq", msg.Seq)
			fmt.Fprintf(conn, `{"ack":%d}`+"\n", msg.Seq)
			continue
		}
		if err := s.ingest(msg); err != nil {
			s.count(func(st *ServerStats) { st.Rejected++ })
			s.log.Warn("message rejected", "peer", peer, "err", err.Error())
			if msg.Seq > 0 {
				// A nak tells the client to drop the message rather than
				// resubmit it forever.
				fmt.Fprintf(conn, `{"nak":%d,"error":%q}`+"\n", msg.Seq, err.Error())
			} else {
				fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
			}
			continue
		}
		if msg.Seq > 0 {
			s.markAcked(msg.Client, msg.Seq)
			fmt.Fprintf(conn, `{"ack":%d}`+"\n", msg.Seq)
		}
	}
	switch err := sc.Err(); {
	case err == nil:
	case errors.Is(err, bufio.ErrTooLong):
		s.count(func(st *ServerStats) { st.Oversized++ })
		s.log.Warn("oversized line, dropping connection", "peer", peer, "limit", s.cfg.MaxLineBytes)
		fmt.Fprintf(conn, `{"error":%q}`+"\n",
			fmt.Sprintf("line exceeds %d bytes", s.cfg.MaxLineBytes))
	default:
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			s.count(func(st *ServerStats) { st.TimedOut++ })
			s.log.Warn("connection timed out", "peer", peer)
		}
	}
	s.log.Info("client disconnected", "peer", peer)
}

func (s *Server) count(f func(*ServerStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func (s *Server) alreadyAcked(client string, seq int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return seq <= s.acked[client]
}

func (s *Server) markAcked(client string, seq int64) {
	s.mu.Lock()
	if seq > s.acked[client] {
		s.acked[client] = seq
	}
	s.mu.Unlock()
}

// ingest stores one validated message. Validation lives in ParseMessage;
// by the time a message reaches here its payload is present and singular.
func (s *Server) ingest(msg *Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch msg.Type {
	case TypeStep:
		if msg.Step == nil {
			return errors.New("step message without payload")
		}
		rec := msg.Step.Record()
		s.records = append(s.records, rec)
		s.stepIndex[rec.Flow] = waitgraph.StepRef{Host: rec.Host, Step: rec.Step}
	case TypeReport:
		if msg.Report == nil {
			return errors.New("report message without payload")
		}
		s.reports = append(s.reports, msg.Report.Telemetry())
	case TypeCF:
		if msg.CF == nil {
			return errors.New("cf message without payload")
		}
		s.cfs[msg.CF.Key()] = true
	default:
		return fmt.Errorf("unknown message type %q", msg.Type)
	}
	return nil
}

// Counts returns how many records/reports/collective flows have been
// ingested.
func (s *Server) Counts() (records, reports, cfs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records), len(s.reports), len(s.cfs)
}

// Diagnose runs the analyzer over everything ingested so far.
func (s *Server) Diagnose() *diagnose.Diagnosis {
	s.mu.Lock()
	records := make([]collective.StepRecord, len(s.records))
	copy(records, s.records)
	reports := make([]*telemetry.Report, len(s.reports))
	copy(reports, s.reports)
	cfs := make(map[fabric.FlowKey]bool, len(s.cfs))
	for k := range s.cfs {
		cfs[k] = true
	}
	index := make(map[fabric.FlowKey]waitgraph.StepRef, len(s.stepIndex))
	for k, v := range s.stepIndex {
		index[k] = v
	}
	s.mu.Unlock()

	return diagnose.Analyze(diagnose.Input{
		Records: records,
		Reports: reports,
		CFs:     cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			ref, ok := index[f]
			return ref, ok
		},
	})
}

// Client is a host agent's connection to the analyzer (fire-and-forget; no
// sequence numbers, no resubmission). ReliableClient adds both.
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects to an analyzer.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: %w", err)
	}
	w := bufio.NewWriter(conn)
	return &Client{conn: conn, w: w, enc: json.NewEncoder(w)}, nil
}

// SendStep submits a completed step record.
func (c *Client) SendStep(rec collective.StepRecord) error {
	dto := wire.FromStepRecord(rec)
	return c.enc.Encode(Message{Type: TypeStep, Step: &dto})
}

// SendReport submits a telemetry report.
func (c *Client) SendReport(rep *telemetry.Report) error {
	dto := wire.FromReport(rep)
	return c.enc.Encode(Message{Type: TypeReport, Report: &dto})
}

// SendCF registers one collective flow (monitors announce their schedule's
// 5-tuples before the collective starts).
func (c *Client) SendCF(flow fabric.FlowKey) error {
	dto := wire.FromFlow(flow)
	return c.enc.Encode(Message{Type: TypeCF, CF: &dto})
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	if err := c.w.Flush(); err != nil {
		c.conn.Close()
		return err
	}
	return c.conn.Close()
}
