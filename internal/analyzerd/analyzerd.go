// Package analyzerd implements the centralized analyzer of the paper's
// architecture (Fig 3) as a network service: host-side monitors connect
// over TCP and stream newline-delimited JSON messages — step records as
// collective steps complete, telemetry reports as detections fire, and the
// collective-flow census — and the analyzer aggregates them and produces
// diagnoses on demand.
//
// In the simulator the monitors and analyzer share a process, but this
// service is how a real deployment wires them: one analyzerd per cluster,
// one client per host agent.
package analyzerd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/waitgraph"
	"vedrfolnir/internal/wire"
)

// Message is one line of the monitor→analyzer protocol. Exactly one payload
// field is set, selected by Type.
type Message struct {
	Type   string           `json:"type"` // "step" | "report" | "cf"
	Step   *wire.StepRecord `json:"step,omitempty"`
	Report *wire.Report     `json:"report,omitempty"`
	CF     *wire.Flow       `json:"cf,omitempty"`
}

// Protocol message types.
const (
	TypeStep   = "step"
	TypeReport = "report"
	TypeCF     = "cf"
)

// Server accepts monitor connections and aggregates their submissions.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	records []collective.StepRecord
	reports []*telemetry.Report
	cfs     map[fabric.FlowKey]bool
	// stepIndex maps a collective flow to its (host, step), learned from
	// the step records themselves.
	stepIndex map[fabric.FlowKey]waitgraph.StepRef

	wg     sync.WaitGroup
	closed bool
}

// Serve starts the analyzer on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: %w", err)
	}
	s := &Server{
		ln:        ln,
		cfs:       make(map[fabric.FlowKey]bool),
		stepIndex: make(map[fabric.FlowKey]waitgraph.StepRef),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var msg Message
		if err := json.Unmarshal(sc.Bytes(), &msg); err != nil {
			fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
			return
		}
		if err := s.ingest(&msg); err != nil {
			fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
			return
		}
	}
}

func (s *Server) ingest(msg *Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch msg.Type {
	case TypeStep:
		if msg.Step == nil {
			return errors.New("step message without payload")
		}
		rec := msg.Step.Record()
		s.records = append(s.records, rec)
		s.stepIndex[rec.Flow] = waitgraph.StepRef{Host: rec.Host, Step: rec.Step}
	case TypeReport:
		if msg.Report == nil {
			return errors.New("report message without payload")
		}
		s.reports = append(s.reports, msg.Report.Telemetry())
	case TypeCF:
		if msg.CF == nil {
			return errors.New("cf message without payload")
		}
		s.cfs[msg.CF.Key()] = true
	default:
		return fmt.Errorf("unknown message type %q", msg.Type)
	}
	return nil
}

// Counts returns how many records/reports/collective flows have been
// ingested.
func (s *Server) Counts() (records, reports, cfs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records), len(s.reports), len(s.cfs)
}

// Diagnose runs the analyzer over everything ingested so far.
func (s *Server) Diagnose() *diagnose.Diagnosis {
	s.mu.Lock()
	records := make([]collective.StepRecord, len(s.records))
	copy(records, s.records)
	reports := make([]*telemetry.Report, len(s.reports))
	copy(reports, s.reports)
	cfs := make(map[fabric.FlowKey]bool, len(s.cfs))
	for k := range s.cfs {
		cfs[k] = true
	}
	index := make(map[fabric.FlowKey]waitgraph.StepRef, len(s.stepIndex))
	for k, v := range s.stepIndex {
		index[k] = v
	}
	s.mu.Unlock()

	return diagnose.Analyze(diagnose.Input{
		Records: records,
		Reports: reports,
		CFs:     cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			ref, ok := index[f]
			return ref, ok
		},
	})
}

// Client is a host agent's connection to the analyzer.
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects to an analyzer.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzerd: %w", err)
	}
	w := bufio.NewWriter(conn)
	return &Client{conn: conn, w: w, enc: json.NewEncoder(w)}, nil
}

// SendStep submits a completed step record.
func (c *Client) SendStep(rec collective.StepRecord) error {
	dto := wire.FromStepRecord(rec)
	return c.enc.Encode(Message{Type: TypeStep, Step: &dto})
}

// SendReport submits a telemetry report.
func (c *Client) SendReport(rep *telemetry.Report) error {
	dto := wire.FromReport(rep)
	return c.enc.Encode(Message{Type: TypeReport, Report: &dto})
}

// SendCF registers one collective flow (monitors announce their schedule's
// 5-tuples before the collective starts).
func (c *Client) SendCF(flow fabric.FlowKey) error {
	dto := wire.FromFlow(flow)
	return c.enc.Encode(Message{Type: TypeCF, CF: &dto})
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	if err := c.w.Flush(); err != nil {
		c.conn.Close()
		return err
	}
	return c.conn.Close()
}
