package baseline

import (
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

type rig struct {
	k      *sim.Kernel
	tp     *topo.Topology
	net    *fabric.Network
	hosts  map[topo.NodeID]*rdma.Host
	ranks  []topo.NodeID
	extras []topo.NodeID
}

func newRig(t *testing.T, nRanks, nExtra int) *rig {
	t.Helper()
	tp := topo.New()
	var ranks, extras []topo.NodeID
	for i := 0; i < nRanks; i++ {
		ranks = append(ranks, tp.AddNode(topo.KindHost, "r"))
	}
	for i := 0; i < nExtra; i++ {
		extras = append(extras, tp.AddNode(topo.KindHost, "x"))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range append(append([]topo.NodeID{}, ranks...), extras...) {
		tp.AddLink(h, sw, 100*simtime.Gbps, time.Microsecond)
	}
	tp.ComputeRoutes()
	k := sim.New(31)
	net := fabric.NewNetwork(k, tp, fabric.DefaultConfig())
	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = 4096
	hosts := map[topo.NodeID]*rdma.Host{}
	for _, id := range append(append([]topo.NodeID{}, ranks...), extras...) {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = h
	}
	return &rig{k: k, tp: tp, net: net, hosts: hosts, ranks: ranks, extras: extras}
}

func (r *rig) schedules(t *testing.T, bytes int64) []*collective.Schedule {
	t.Helper()
	schs, err := collective.Decompose(collective.Spec{
		Op: collective.AllGather, Alg: collective.Ring, Ranks: r.ranks, Bytes: bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return schs
}

func hkCfg() HawkeyeConfig {
	c := DefaultHawkeyeConfig()
	c.CellSize = 4096
	return c
}

func TestThresholdModes(t *testing.T) {
	// Fat-tree so flow base RTTs actually differ across host pairs.
	ft := topo.PaperFatTree()
	k := sim.New(1)
	net := fabric.NewNetwork(k, ft.Topology, fabric.DefaultConfig())
	ranks := ft.Hosts()[:8]
	schs, err := collective.Decompose(collective.Spec{
		Op: collective.AllGather, Alg: collective.HalvingDoubling, Ranks: ranks, Bytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxr := NewHawkeye(k, net, schs, MaxR, hkCfg())
	minr := NewHawkeye(k, net, schs, MinR, hkCfg())
	if maxr.Threshold() <= minr.Threshold() {
		t.Fatalf("MaxR threshold %v must exceed MinR %v", maxr.Threshold(), minr.Threshold())
	}
}

func runContention(t *testing.T, mode Mode, cfg HawkeyeConfig) *Hawkeye {
	t.Helper()
	r := newRig(t, 4, 1)
	schs := r.schedules(t, 512*1024)
	run, err := collective.NewRunner(r.k, r.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	hk := NewHawkeye(r.k, r.net, schs, mode, cfg)
	hk.Wire(r.hosts)
	bg := fabric.FlowKey{Src: r.extras[0], Dst: r.ranks[2], SrcPort: 9000, DstPort: 9001, Proto: 17}
	r.hosts[r.extras[0]].Send(bg, 4<<20)
	run.Start()
	r.k.Run(simtime.Never)
	if done, _ := run.Done(); !done {
		t.Fatal("collective incomplete")
	}
	return hk
}

func TestHawkeyeTriggersUnderContention(t *testing.T) {
	hk := runContention(t, MinR, hkCfg())
	if hk.Triggers == 0 {
		t.Fatalf("Hawkeye-MinR never triggered under contention")
	}
	if len(hk.Reports)+hk.Discarded != hk.Triggers {
		t.Fatalf("report accounting: %d retained + %d discarded != %d triggers",
			len(hk.Reports), hk.Discarded, hk.Triggers)
	}
}

func TestRetentionDedupDiscards(t *testing.T) {
	cfg := hkCfg()
	cfg.RetainEvery = 50 * time.Microsecond
	hk := runContention(t, MinR, cfg)
	if hk.Discarded == 0 {
		t.Fatalf("50µs dedup never discarded despite repeated triggers (triggers=%d)", hk.Triggers)
	}
	if len(hk.Reports) == 0 {
		t.Fatalf("dedup retained nothing")
	}
}

func TestMinRTriggersMoreThanMaxR(t *testing.T) {
	// On a uniform star the base RTTs are equal, so build thresholds from
	// a fat-tree-like spread by hand: MinR < MaxR means MinR fires on
	// smaller excursions.
	minr := runContention(t, MinR, hkCfg())
	maxr := runContention(t, MaxR, hkCfg())
	if minr.Triggers < maxr.Triggers {
		t.Fatalf("MinR (%d) should trigger at least as often as MaxR (%d)",
			minr.Triggers, maxr.Triggers)
	}
	// MinR pays more overhead.
	if minr.Col.Totals.TelemetryBytes < maxr.Col.Totals.TelemetryBytes {
		t.Fatalf("MinR overhead %d < MaxR %d", minr.Col.Totals.TelemetryBytes,
			maxr.Col.Totals.TelemetryBytes)
	}
}

func TestFullPolling(t *testing.T) {
	r := newRig(t, 4, 0)
	schs := r.schedules(t, 256*1024)
	run, err := collective.NewRunner(r.k, r.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	fp := NewFullPolling(r.k, r.net, 20*time.Microsecond)
	run.OnComplete = func(at simtime.Time) { fp.Stop() }
	fp.Start()
	run.Start()
	r.k.Run(simtime.Never)

	if len(fp.Reports) < 2 {
		t.Fatalf("full polling collected %d epochs", len(fp.Reports))
	}
	if fp.Col.Totals.TelemetryBytes == 0 {
		t.Fatalf("no overhead accounted")
	}
	// Stop must halt collection: drain and compare.
	n := len(fp.Reports)
	r.k.After(time.Millisecond, func() {})
	r.k.Run(simtime.Never)
	if len(fp.Reports) != n {
		t.Fatalf("full polling continued after Stop")
	}
}

func TestFullPollingDominatesOverhead(t *testing.T) {
	// Full polling's telemetry volume must exceed Hawkeye-MaxR's on the
	// same workload duration scale (it reads every port every epoch).
	r := newRig(t, 4, 0)
	schs := r.schedules(t, 256*1024)
	run, err := collective.NewRunner(r.k, r.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	hk := NewHawkeye(r.k, r.net, schs, MaxR, hkCfg())
	hk.Wire(r.hosts)
	fp := NewFullPolling(r.k, r.net, 10*time.Microsecond)
	run.OnComplete = func(at simtime.Time) { fp.Stop() }
	fp.Start()
	run.Start()
	r.k.Run(simtime.Never)
	if fp.Col.Totals.TelemetryBytes <= hk.Col.Totals.TelemetryBytes {
		t.Fatalf("full polling %dB should exceed quiet Hawkeye %dB",
			fp.Col.Totals.TelemetryBytes, hk.Col.Totals.TelemetryBytes)
	}
}
