// Package baseline implements the two comparison systems of §IV-A:
//
//   - Hawkeye, the state-of-the-art single-flow RDMA diagnosis system, with
//     the paper's two threshold variants: Hawkeye-MaxR (fixed threshold at
//     120% of the maximum base RTT over all collective flows) and
//     Hawkeye-MinR (120% of the minimum). Hawkeye triggers on every
//     above-threshold ACK with no step awareness; to bound its processing
//     cost it retains only one telemetry report per 50 µs and discards the
//     rest — the behaviour the paper identifies as discarding valid data.
//   - Full polling: every switch reports all telemetry every epoch for the
//     duration of the collective, the overhead upper bound.
package baseline

import (
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

// Mode selects Hawkeye's fixed RTT threshold.
type Mode uint8

// Hawkeye threshold modes.
const (
	// MaxR sets the threshold to 120% of the largest base RTT among the
	// collective's flows — small-RTT flows' anomalies go unnoticed.
	MaxR Mode = iota
	// MinR sets it to 120% of the smallest base RTT — long-RTT flows
	// trigger continuously.
	MinR
)

func (m Mode) String() string {
	if m == MaxR {
		return "hawkeye-maxr"
	}
	return "hawkeye-minr"
}

// HawkeyeConfig tunes the baseline.
type HawkeyeConfig struct {
	Factor float64 // threshold scale over the base RTT (paper: 1.2)
	// PerFlowSpacing is the minimum time between triggers of one flow;
	// Hawkeye collects "several pieces of telemetry data within tens of
	// microseconds".
	PerFlowSpacing simtime.Duration
	// RetainEvery drops all but one collected report per window (the
	// 50 µs dedup in Hawkeye's source the paper quotes).
	RetainEvery simtime.Duration
	// Window is the telemetry look-back per poll.
	Window simtime.Duration
	// CellSize sizes the probe packet for base-RTT estimation.
	CellSize int
}

// DefaultHawkeyeConfig mirrors the paper's description.
func DefaultHawkeyeConfig() HawkeyeConfig {
	return HawkeyeConfig{
		Factor:         1.2,
		PerFlowSpacing: 10 * time.Microsecond,
		RetainEvery:    50 * time.Microsecond,
		Window:         5 * time.Millisecond,
		CellSize:       64 << 10,
	}
}

// Hawkeye is the re-implemented baseline detector.
type Hawkeye struct {
	K    *sim.Kernel
	Col  *telemetry.Collector
	Cfg  HawkeyeConfig
	Mode Mode

	threshold    simtime.Duration
	lastTrigger  map[fabric.FlowKey]simtime.Time
	lastRetained simtime.Time

	// Reports are the retained telemetry reports.
	Reports []*telemetry.Report
	// Triggers counts every detection (retained or not); Discarded counts
	// reports collected but dropped by the retention dedup.
	Triggers, Discarded int
}

// NewHawkeye computes the fixed threshold from the collective's schedules:
// the base RTT of every (host, step) flow is estimated from the topology,
// then the max (MaxR) or min (MinR) is scaled by Factor.
func NewHawkeye(k *sim.Kernel, net *fabric.Network, schedules []*collective.Schedule,
	mode Mode, cfg HawkeyeConfig) *Hawkeye {

	h := &Hawkeye{
		K:            k,
		Col:          telemetry.NewCollector(net),
		Cfg:          cfg,
		Mode:         mode,
		lastTrigger:  make(map[fabric.FlowKey]simtime.Time),
		lastRetained: -1 << 62,
	}
	var minRTT, maxRTT simtime.Duration
	first := true
	for _, sch := range schedules {
		for s, st := range sch.Steps {
			base := net.Topo.EstimateBaseRTT(sch.Host, st.Dst, cfg.CellSize,
				fabric.AckSize, sch.FlowKey(s).PathHash())
			if first || base < minRTT {
				minRTT = base
			}
			if first || base > maxRTT {
				maxRTT = base
			}
			first = false
		}
	}
	pick := maxRTT
	if mode == MinR {
		pick = minRTT
	}
	h.threshold = simtime.Duration(float64(pick) * cfg.Factor)
	return h
}

// Threshold returns the fixed threshold in force.
func (h *Hawkeye) Threshold() simtime.Duration { return h.threshold }

// Wire chains Hawkeye into every host's RTT sample stream.
func (h *Hawkeye) Wire(hosts map[topo.NodeID]*rdma.Host) {
	for _, hostDev := range hosts {
		prev := hostDev.OnRTTSample
		hostDev.OnRTTSample = func(s rdma.RTTSample) {
			if prev != nil {
				prev(s)
			}
			h.HandleRTTSample(s)
		}
	}
}

// HandleRTTSample applies Hawkeye's fixed-threshold trigger: any flow whose
// ACK RTT exceeds the threshold is polled, subject only to the per-flow
// spacing; the retention dedup then decides whether the analyzer keeps the
// report.
func (h *Hawkeye) HandleRTTSample(s rdma.RTTSample) {
	if s.RTT <= h.threshold {
		return
	}
	now := h.K.Now()
	if last, ok := h.lastTrigger[s.Flow]; ok && now.Sub(last) < h.Cfg.PerFlowSpacing {
		return
	}
	h.lastTrigger[s.Flow] = now
	h.Triggers++
	rep := h.Col.Poll(s.Flow, h.Cfg.Window)
	if now.Sub(h.lastRetained) < h.Cfg.RetainEvery {
		h.Discarded++
		return
	}
	h.lastRetained = now
	h.Reports = append(h.Reports, rep)
}

// FullPolling continuously collects all switches' telemetry every epoch for
// as long as it runs — the paper's overhead upper bound.
type FullPolling struct {
	K     *sim.Kernel
	Col   *telemetry.Collector
	Epoch simtime.Duration

	active  bool
	Reports []*telemetry.Report
}

// NewFullPolling creates the baseline with the given polling epoch.
func NewFullPolling(k *sim.Kernel, net *fabric.Network, epoch simtime.Duration) *FullPolling {
	if epoch <= 0 {
		epoch = 100 * time.Microsecond
	}
	return &FullPolling{K: k, Col: telemetry.NewCollector(net), Epoch: epoch}
}

// Start begins per-epoch collection; call Stop when the collective ends.
func (f *FullPolling) Start() {
	if f.active {
		return
	}
	f.active = true
	f.tick()
}

func (f *FullPolling) tick() {
	if !f.active {
		return
	}
	f.Reports = append(f.Reports, f.Col.PollAllSwitches(f.Epoch))
	f.K.After(f.Epoch, func() { f.tick() })
}

// Stop halts collection after the current epoch.
func (f *FullPolling) Stop() { f.active = false }
