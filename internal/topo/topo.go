// Package topo models the physical network: nodes (hosts and switches),
// ports, links, and shortest-path ECMP routing over them. It also provides
// the fat-tree builder used by the paper's evaluation (§IV-A) and the
// topology-derived RTT/FCT estimates Vedrfolnir's monitor recomputes before
// each collective step (§III-C2).
package topo

import (
	"fmt"

	"vedrfolnir/internal/simtime"
)

// NodeID identifies a node (host or switch) in a Topology.
type NodeID int32

// None is the invalid NodeID.
const None NodeID = -1

// Kind distinguishes hosts from switches.
type Kind uint8

// Node kinds.
const (
	KindHost Kind = iota
	KindSwitch
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PortID names one port of one node. Ports are dense small integers assigned
// in link-creation order.
type PortID struct {
	Node NodeID
	Port int
}

func (p PortID) String() string { return fmt.Sprintf("n%d.p%d", p.Node, p.Port) }

// Peer describes what is attached to a port.
type Peer struct {
	Link int    // index into Topology.Links
	Node NodeID // remote node
	Port int    // remote port index
}

// Node is a vertex of the topology.
type Node struct {
	ID    NodeID
	Kind  Kind
	Name  string
	Ports []Peer
}

// Link is a full-duplex cable between two ports.
type Link struct {
	A, B      PortID
	Bandwidth simtime.Rate
	Delay     simtime.Duration
}

// Topology is an immutable-after-build network graph plus routing state.
type Topology struct {
	Nodes []Node
	Links []Link

	hosts    []NodeID
	switches []NodeID

	// nextHops[switch][host] = candidate egress ports on shortest paths.
	nextHops map[NodeID]map[NodeID][]int
	// hostPort[host] = the single port a host uses (hosts are single-homed).
	dist map[NodeID]map[NodeID]int
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		nextHops: make(map[NodeID]map[NodeID][]int),
		dist:     make(map[NodeID]map[NodeID]int),
	}
}

// AddNode appends a node and returns its ID.
func (t *Topology) AddNode(kind Kind, name string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Name: name})
	if kind == KindHost {
		t.hosts = append(t.hosts, id)
	} else {
		t.switches = append(t.switches, id)
	}
	return id
}

// AddLink connects a and b with a new full-duplex link, allocating the next
// free port index on each side, and returns the link index.
func (t *Topology) AddLink(a, b NodeID, bw simtime.Rate, delay simtime.Duration) int {
	if a == b {
		//lint:ignore nopanic topology-construction invariant hit only by builder code with constant shapes
		panic("topo: self link")
	}
	li := len(t.Links)
	pa := len(t.Nodes[a].Ports)
	pb := len(t.Nodes[b].Ports)
	t.Nodes[a].Ports = append(t.Nodes[a].Ports, Peer{Link: li, Node: b, Port: pb})
	t.Nodes[b].Ports = append(t.Nodes[b].Ports, Peer{Link: li, Node: a, Port: pa})
	t.Links = append(t.Links, Link{
		A:         PortID{Node: a, Port: pa},
		B:         PortID{Node: b, Port: pb},
		Bandwidth: bw,
		Delay:     delay,
	})
	return li
}

// Hosts returns the host IDs in creation order.
func (t *Topology) Hosts() []NodeID { return t.hosts }

// Switches returns the switch IDs in creation order.
func (t *Topology) Switches() []NodeID { return t.switches }

// Node returns the node record for id.
func (t *Topology) Node(id NodeID) *Node { return &t.Nodes[id] }

// LinkAt returns the link attached to the given port.
func (t *Topology) LinkAt(p PortID) *Link {
	return &t.Links[t.Nodes[p.Node].Ports[p.Port].Link]
}

// PeerOf returns the node and port on the far end of the given port.
func (t *Topology) PeerOf(p PortID) PortID {
	peer := t.Nodes[p.Node].Ports[p.Port]
	return PortID{Node: peer.Node, Port: peer.Port}
}

// ComputeRoutes builds shortest-path ECMP next-hop tables from every node to
// every host. Call once after the topology is fully built.
func (t *Topology) ComputeRoutes() {
	for _, h := range t.hosts {
		dist := t.bfsFrom(h)
		t.dist[h] = dist
		for _, n := range t.Nodes {
			if n.ID == h {
				continue
			}
			d, ok := dist[n.ID]
			if !ok {
				continue
			}
			var ports []int
			for pi, peer := range n.Ports {
				if pd, ok := dist[peer.Node]; ok && pd == d-1 {
					ports = append(ports, pi)
				}
			}
			m := t.nextHops[n.ID]
			if m == nil {
				m = make(map[NodeID][]int)
				t.nextHops[n.ID] = m
			}
			m[h] = ports
		}
	}
}

// bfsFrom returns hop distances from src to every reachable node.
func (t *Topology) bfsFrom(src NodeID) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, peer := range t.Nodes[cur].Ports {
			if _, seen := dist[peer.Node]; !seen {
				dist[peer.Node] = dist[cur] + 1
				queue = append(queue, peer.Node)
			}
		}
	}
	return dist
}

// NextHops returns the ECMP candidate egress ports at node `at` toward host
// dst. The returned slice is shared; callers must not mutate it.
func (t *Topology) NextHops(at, dst NodeID) []int {
	return t.nextHops[at][dst]
}

// OverrideNextHops replaces the next-hop set at node `at` toward dst.
// Used to inject routing anomalies (loops, load imbalance).
func (t *Topology) OverrideNextHops(at, dst NodeID, ports []int) {
	m := t.nextHops[at]
	if m == nil {
		m = make(map[NodeID][]int)
		t.nextHops[at] = m
	}
	m[dst] = ports
}

// HopCount returns the number of links on a shortest path from src to dst,
// or -1 if unreachable.
func (t *Topology) HopCount(src, dst NodeID) int {
	if d, ok := t.dist[dst]; ok {
		if n, ok := d[src]; ok {
			return n
		}
		return -1
	}
	// dst may be a switch; fall back to a BFS from src.
	if d, ok := t.bfsFrom(src)[dst]; ok {
		return d
	}
	return -1
}

// Path returns one concrete shortest path from src host to dst host as the
// sequence of egress PortIDs traversed, choosing among ECMP candidates with
// the supplied hash. It mirrors exactly the choice the fabric's switches
// make, so monitors can predict a flow's path from the topology alone.
func (t *Topology) Path(src, dst NodeID, hash uint64) []PortID {
	if src == dst {
		return nil
	}
	var path []PortID
	cur := src
	for cur != dst {
		ports := t.NextHops(cur, dst)
		if len(ports) == 0 {
			return nil
		}
		p := ports[hash%uint64(len(ports))]
		path = append(path, PortID{Node: cur, Port: p})
		cur = t.Nodes[cur].Ports[p].Node
		if len(path) > len(t.Nodes) {
			return nil // routing loop guard
		}
	}
	return path
}

// EstimateBaseRTT returns the topology-derived round-trip time for a
// probeSize-byte packet answered by an ackSize-byte reply over the ECMP path
// chosen by hash, with empty queues. This is the quantity Vedrfolnir's
// monitor recomputes before each step to set its RTT threshold (§III-C2).
func (t *Topology) EstimateBaseRTT(src, dst NodeID, probeSize, ackSize int, hash uint64) simtime.Duration {
	fwd := t.Path(src, dst, hash)
	rev := t.Path(dst, src, hash)
	var rtt simtime.Duration
	for _, p := range fwd {
		l := t.LinkAt(p)
		rtt += l.Delay + l.Bandwidth.Transmit(int64(probeSize))
	}
	for _, p := range rev {
		l := t.LinkAt(p)
		rtt += l.Delay + l.Bandwidth.Transmit(int64(ackSize))
	}
	return rtt
}

// EstimateFCT returns the ideal flow completion time for a message of size
// bytes from src to dst: base one-way latency plus serialization at the
// bottleneck link along the chosen path. Vedrfolnir derives its detection
// trigger spacing from this value (§III-C2, Fig 5).
func (t *Topology) EstimateFCT(src, dst NodeID, size int64, hash uint64) simtime.Duration {
	path := t.Path(src, dst, hash)
	if len(path) == 0 {
		return 0
	}
	var lat simtime.Duration
	bottleneck := simtime.Rate(0)
	for _, p := range path {
		l := t.LinkAt(p)
		lat += l.Delay
		if bottleneck == 0 || l.Bandwidth < bottleneck {
			bottleneck = l.Bandwidth
		}
	}
	return lat + bottleneck.Transmit(size)
}
