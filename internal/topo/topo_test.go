package topo

import (
	"testing"
	"testing/quick"
	"time"

	"vedrfolnir/internal/simtime"
)

// line builds host0 -- sw -- host1 with the given bandwidth/delay.
func line(t *testing.T) (*Topology, NodeID, NodeID, NodeID) {
	t.Helper()
	tp := New()
	h0 := tp.AddNode(KindHost, "h0")
	h1 := tp.AddNode(KindHost, "h1")
	sw := tp.AddNode(KindSwitch, "sw")
	tp.AddLink(h0, sw, 100*simtime.Gbps, time.Microsecond)
	tp.AddLink(h1, sw, 100*simtime.Gbps, time.Microsecond)
	tp.ComputeRoutes()
	return tp, h0, h1, sw
}

func TestLineRouting(t *testing.T) {
	tp, h0, h1, sw := line(t)
	hops := tp.NextHops(sw, h1)
	if len(hops) != 1 {
		t.Fatalf("nexthops at sw toward h1 = %v, want 1", hops)
	}
	path := tp.Path(h0, h1, 0)
	if len(path) != 2 {
		t.Fatalf("path len = %d, want 2 (host uplink + switch egress)", len(path))
	}
	if path[0].Node != h0 || path[1].Node != sw {
		t.Fatalf("path = %v", path)
	}
	if tp.HopCount(h0, h1) != 2 {
		t.Fatalf("HopCount = %d, want 2", tp.HopCount(h0, h1))
	}
}

func TestPeerOf(t *testing.T) {
	tp, h0, _, sw := line(t)
	got := tp.PeerOf(PortID{Node: h0, Port: 0})
	if got.Node != sw {
		t.Fatalf("PeerOf(h0.p0).Node = %v, want %v", got.Node, sw)
	}
	back := tp.PeerOf(got)
	if back.Node != h0 || back.Port != 0 {
		t.Fatalf("PeerOf not symmetric: %v", back)
	}
}

func TestEstimateBaseRTT(t *testing.T) {
	tp, h0, h1, _ := line(t)
	// 2 hops each way at 1µs delay; 1250B fwd = 100ns/hop, 50B ack = 4ns/hop.
	got := tp.EstimateBaseRTT(h0, h1, 1250, 50, 0)
	want := 4*time.Microsecond + 2*100*time.Nanosecond + 2*4*time.Nanosecond
	if got != want {
		t.Fatalf("RTT = %v, want %v", got, want)
	}
}

func TestEstimateFCT(t *testing.T) {
	tp, h0, h1, _ := line(t)
	// 1 MB at 100Gbps bottleneck = 80µs serialization + 2µs latency.
	got := tp.EstimateFCT(h0, h1, 1_000_000, 0)
	want := 2*time.Microsecond + 80*time.Microsecond
	if got != want {
		t.Fatalf("FCT = %v, want %v", got, want)
	}
}

func TestFatTreeShape(t *testing.T) {
	ft := PaperFatTree()
	if got := len(ft.Switches()); got != 20 {
		t.Fatalf("switches = %d, want 20", got)
	}
	if got := len(ft.Hosts()); got != 16 {
		t.Fatalf("hosts = %d, want 16", got)
	}
	if got := len(ft.Core); got != 4 {
		t.Fatalf("core = %d, want 4", got)
	}
	for pod := 0; pod < 4; pod++ {
		if len(ft.Agg[pod]) != 2 || len(ft.Edge[pod]) != 2 {
			t.Fatalf("pod %d: agg=%d edge=%d, want 2/2", pod, len(ft.Agg[pod]), len(ft.Edge[pod]))
		}
	}
	// Every switch must have exactly K=4 ports; hosts exactly 1.
	for _, s := range ft.Switches() {
		if got := len(ft.Node(s).Ports); got != 4 {
			t.Fatalf("switch %s has %d ports, want 4", ft.Node(s).Name, got)
		}
	}
	for _, h := range ft.Hosts() {
		if got := len(ft.Node(h).Ports); got != 1 {
			t.Fatalf("host %s has %d ports, want 1", ft.Node(h).Name, got)
		}
	}
}

func TestFatTreeECMP(t *testing.T) {
	ft := PaperFatTree()
	hosts := ft.Hosts()
	// Cross-pod pairs have 2 ECMP uplinks at edge and 2 at agg.
	src, dst := hosts[0], hosts[15]
	edge, _ := ft.EdgeOf(src)
	if got := len(ft.NextHops(edge, dst)); got != 2 {
		t.Fatalf("edge uplink ECMP width = %d, want 2", got)
	}
	// Same-edge pair: exactly one next hop (the host port).
	sameEdge := ft.HostsByEdge[0][0]
	if got := len(ft.NextHops(edge, sameEdge[1])); got != 1 {
		t.Fatalf("same-edge next hops = %d, want 1", got)
	}
}

func TestFatTreeHopCounts(t *testing.T) {
	ft := PaperFatTree()
	h := ft.HostsByEdge
	cases := []struct {
		a, b NodeID
		want int
	}{
		{h[0][0][0], h[0][0][1], 2}, // same edge
		{h[0][0][0], h[0][1][0], 4}, // same pod, different edge
		{h[0][0][0], h[1][0][0], 6}, // cross pod
	}
	for _, c := range cases {
		if got := ft.HopCount(c.a, c.b); got != c.want {
			t.Fatalf("HopCount(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: for any host pair and any hash, Path yields a valid walk ending
// at the destination whose length equals HopCount.
func TestPathValidity(t *testing.T) {
	ft := PaperFatTree()
	hosts := ft.Hosts()
	f := func(a, b uint8, hash uint64) bool {
		src := hosts[int(a)%len(hosts)]
		dst := hosts[int(b)%len(hosts)]
		if src == dst {
			return ft.Path(src, dst, hash) == nil
		}
		path := ft.Path(src, dst, hash)
		if len(path) != ft.HopCount(src, dst) {
			return false
		}
		cur := src
		for _, p := range path {
			if p.Node != cur {
				return false
			}
			cur = ft.PeerOf(p).Node
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ECMP hash diversity — across hashes 0..3 a cross-pod pair uses
// more than one core switch.
func TestECMPDiversity(t *testing.T) {
	ft := PaperFatTree()
	src, dst := ft.Hosts()[0], ft.Hosts()[15]
	cores := map[NodeID]bool{}
	for hash := uint64(0); hash < 4; hash++ {
		for _, p := range ft.Path(src, dst, hash) {
			for _, c := range ft.Core {
				if p.Node == c {
					cores[c] = true
				}
			}
		}
	}
	if len(cores) < 2 {
		t.Fatalf("ECMP uses %d cores across 4 hashes, want >= 2", len(cores))
	}
}

func TestOverrideNextHopsCreatesLoop(t *testing.T) {
	ft := PaperFatTree()
	src, dst := ft.Hosts()[0], ft.Hosts()[15]
	path := ft.Path(src, dst, 0)
	if len(path) != 6 {
		t.Fatalf("setup: path len %d", len(path))
	}
	// Point the 3rd hop back where it came from.
	third := path[2]
	backPort := ft.PeerOf(PortID{Node: path[1].Node, Port: path[1].Port}).Port
	// Find the port on third.Node that goes back to path[1].Node.
	var back int = -1
	for pi, peer := range ft.Node(third.Node).Ports {
		if peer.Node == path[1].Node {
			back = pi
		}
	}
	_ = backPort
	if back < 0 {
		t.Fatalf("no return port found")
	}
	ft.OverrideNextHops(third.Node, dst, []int{back})
	if got := ft.Path(src, dst, 0); got != nil {
		t.Fatalf("looped path should be nil, got %v", got)
	}
}

func TestSelfLinkPanics(t *testing.T) {
	tp := New()
	n := tp.AddNode(KindSwitch, "s")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on self link")
		}
	}()
	tp.AddLink(n, n, simtime.Gbps, 0)
}

func TestFatTreeConfigValidation(t *testing.T) {
	if _, err := NewFatTree(FatTreeConfig{K: 3, Bandwidth: simtime.Gbps, Delay: 0}); err == nil {
		t.Fatalf("expected error for odd K")
	}
	if _, err := NewFatTree(FatTreeConfig{K: 0, Bandwidth: simtime.Gbps, Delay: 0}); err == nil {
		t.Fatalf("expected error for zero K")
	}
}

func TestEstimateFCTBottleneck(t *testing.T) {
	// Heterogeneous path: the slowest link dominates serialization.
	tp := New()
	h0 := tp.AddNode(KindHost, "h0")
	h1 := tp.AddNode(KindHost, "h1")
	s0 := tp.AddNode(KindSwitch, "s0")
	s1 := tp.AddNode(KindSwitch, "s1")
	tp.AddLink(h0, s0, 100*simtime.Gbps, time.Microsecond)
	tp.AddLink(s0, s1, 10*simtime.Gbps, time.Microsecond) // bottleneck
	tp.AddLink(s1, h1, 100*simtime.Gbps, time.Microsecond)
	tp.ComputeRoutes()
	got := tp.EstimateFCT(h0, h1, 1_000_000, 0)
	want := 3*time.Microsecond + (10 * simtime.Gbps).Transmit(int64(1_000_000))
	if got != want {
		t.Fatalf("FCT = %v, want %v", got, want)
	}
}

func TestFatTreeK6(t *testing.T) {
	ft, err := NewFatTree(FatTreeConfig{K: 6, Bandwidth: 100 * simtime.Gbps, Delay: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// K=6: 9 cores + 6 pods × (3 agg + 3 edge) = 45 switches, 54 hosts.
	if got := len(ft.Switches()); got != 45 {
		t.Fatalf("switches = %d, want 45", got)
	}
	if got := len(ft.Hosts()); got != 54 {
		t.Fatalf("hosts = %d, want 54", got)
	}
	for _, s := range ft.Switches() {
		if got := len(ft.Node(s).Ports); got != 6 {
			t.Fatalf("switch %s ports = %d, want 6", ft.Node(s).Name, got)
		}
	}
	// Cross-pod connectivity intact.
	src, dst := ft.Hosts()[0], ft.Hosts()[53]
	if p := ft.Path(src, dst, 3); len(p) != 6 {
		t.Fatalf("cross-pod path = %d hops, want 6", len(p))
	}
}
