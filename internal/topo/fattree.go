package topo

import (
	"fmt"
	"time"

	"vedrfolnir/internal/simtime"
)

// FatTreeConfig parameterizes the standard k-ary fat-tree of the paper's
// evaluation: k²/4 core switches, k pods of k/2 aggregation + k/2 edge
// switches, and k/2 hosts per edge switch. K=4 yields the paper's 20-switch,
// 16-host topology.
type FatTreeConfig struct {
	K         int              // pod count / switch radix; must be even and ≥ 2
	Bandwidth simtime.Rate     // per-link bandwidth (paper: 100 Gbps)
	Delay     simtime.Duration // per-link propagation delay (paper: 2 µs)
}

// FatTree describes a built fat-tree: the topology plus the role of each
// switch, which the anomaly constructors use to pick injection points.
type FatTree struct {
	*Topology
	Config FatTreeConfig

	Core []NodeID   // k²/4 core switches
	Agg  [][]NodeID // [pod][k/2] aggregation switches
	Edge [][]NodeID // [pod][k/2] edge switches
	// HostsByEdge[pod][edge] lists the k/2 hosts under one edge switch.
	HostsByEdge [][][]NodeID
}

// NewFatTree builds a k-ary fat-tree and computes its routes. K must be
// even and at least 2.
func NewFatTree(cfg FatTreeConfig) (*FatTree, error) {
	if cfg.K < 2 || cfg.K%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree K must be even and >= 2, got %d", cfg.K)
	}
	k := cfg.K
	half := k / 2
	ft := &FatTree{Topology: New(), Config: cfg}

	// Hosts first so their IDs are dense 0..N-1 — collective ranks map
	// directly onto host NodeIDs.
	ft.HostsByEdge = make([][][]NodeID, k)
	for pod := 0; pod < k; pod++ {
		ft.HostsByEdge[pod] = make([][]NodeID, half)
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				id := ft.AddNode(KindHost, fmt.Sprintf("host%d", len(ft.Hosts())))
				ft.HostsByEdge[pod][e] = append(ft.HostsByEdge[pod][e], id)
			}
		}
	}

	for i := 0; i < half*half; i++ {
		ft.Core = append(ft.Core, ft.AddNode(KindSwitch, fmt.Sprintf("core%d", i)))
	}
	ft.Agg = make([][]NodeID, k)
	ft.Edge = make([][]NodeID, k)
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			ft.Agg[pod] = append(ft.Agg[pod], ft.AddNode(KindSwitch, fmt.Sprintf("agg%d_%d", pod, a)))
		}
		for e := 0; e < half; e++ {
			ft.Edge[pod] = append(ft.Edge[pod], ft.AddNode(KindSwitch, fmt.Sprintf("edge%d_%d", pod, e)))
		}
	}

	// Edge <-> hosts and edge <-> agg.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			edge := ft.Edge[pod][e]
			for _, h := range ft.HostsByEdge[pod][e] {
				ft.AddLink(h, edge, cfg.Bandwidth, cfg.Delay)
			}
			for a := 0; a < half; a++ {
				ft.AddLink(edge, ft.Agg[pod][a], cfg.Bandwidth, cfg.Delay)
			}
		}
	}
	// Agg <-> core: agg switch a in each pod connects to core switches
	// [a*half, (a+1)*half).
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				ft.AddLink(ft.Agg[pod][a], ft.Core[a*half+c], cfg.Bandwidth, cfg.Delay)
			}
		}
	}

	ft.ComputeRoutes()
	return ft, nil
}

// MustFatTree is NewFatTree for compile-time-constant configurations,
// following the regexp.MustCompile contract: it panics if cfg is invalid.
func MustFatTree(cfg FatTreeConfig) *FatTree {
	ft, err := NewFatTree(cfg)
	if err != nil {
		panic(err)
	}
	return ft
}

// PaperFatTree returns the evaluation topology of §IV-A: K=4, 100 Gbps
// links, 2 µs link delay (20 switches, 16 hosts).
func PaperFatTree() *FatTree {
	return MustFatTree(FatTreeConfig{
		K:         4,
		Bandwidth: 100 * simtime.Gbps,
		Delay:     2 * time.Microsecond,
	})
}

// EdgeOf returns the edge switch a host hangs off, and the host's uplink
// egress port on that edge switch (the port facing the host).
func (ft *FatTree) EdgeOf(host NodeID) (sw NodeID, portToHost int) {
	peer := ft.Nodes[host].Ports[0] // hosts are single-homed on port 0
	return peer.Node, peer.Port
}
