// Package stats provides the small summary-statistics helpers the
// experiment harnesses use: percentiles, means, and fixed-bucket histograms
// over durations (step times, slowdowns, RTTs).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vedrfolnir/internal/simtime"
)

// Summary holds order statistics of a duration sample.
type Summary struct {
	N             int
	Min, Max      simtime.Duration
	Mean          simtime.Duration
	P50, P90, P99 simtime.Duration
	Stddev        simtime.Duration
}

// Summarize computes order statistics. An empty sample yields a zero
// Summary.
func Summarize(sample []simtime.Duration) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := make([]simtime.Duration, len(sample))
	copy(s, sample)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })

	var sum, sumSq float64
	for _, v := range s {
		f := float64(v)
		sum += f
		sumSq += f * f
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   simtime.Duration(mean),
		P50:    Percentile(s, 50),
		P90:    Percentile(s, 90),
		P99:    Percentile(s, 99),
		Stddev: simtime.Duration(math.Sqrt(variance)),
	}
}

// Percentile returns the p-th percentile (nearest-rank) of a sorted sample.
func Percentile(sorted []simtime.Duration, p float64) simtime.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v sd=%v",
		s.N, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean, s.Stddev)
}

// Histogram counts samples into equal-width buckets over [min, max].
type Histogram struct {
	Lo, Hi  simtime.Duration
	Buckets []int
}

// NewHistogram builds a histogram of the sample with n buckets.
func NewHistogram(sample []simtime.Duration, n int) *Histogram {
	if n <= 0 {
		n = 10
	}
	h := &Histogram{Buckets: make([]int, n)}
	if len(sample) == 0 {
		return h
	}
	h.Lo, h.Hi = sample[0], sample[0]
	for _, v := range sample {
		if v < h.Lo {
			h.Lo = v
		}
		if v > h.Hi {
			h.Hi = v
		}
	}
	span := float64(h.Hi - h.Lo)
	for _, v := range sample {
		idx := n - 1
		if span > 0 {
			idx = int(float64(v-h.Lo) / span * float64(n))
			if idx >= n {
				idx = n - 1
			}
		}
		h.Buckets[idx]++
	}
	return h
}

// Render draws the histogram as ASCII rows, one per bucket.
func (h *Histogram) Render() string {
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	span := h.Hi - h.Lo
	for i, c := range h.Buckets {
		lo := h.Lo + span*simtime.Duration(i)/simtime.Duration(len(h.Buckets))
		hi := h.Lo + span*simtime.Duration(i+1)/simtime.Duration(len(h.Buckets))
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&b, "%12v – %-12v %5d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
