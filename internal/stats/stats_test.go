package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vedrfolnir/internal/simtime"
)

func ms(x int64) simtime.Duration { return simtime.Duration(x) * time.Millisecond }

func TestSummarizeKnown(t *testing.T) {
	sample := []simtime.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	s := Summarize(sample)
	if s.N != 10 || s.Min != ms(1) || s.Max != ms(10) {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != ms(5) {
		t.Fatalf("p50 = %v, want 5ms", s.P50)
	}
	if s.P90 != ms(9) {
		t.Fatalf("p90 = %v, want 9ms", s.P90)
	}
	if s.Mean != ms(5)+500*time.Microsecond {
		t.Fatalf("mean = %v, want 5.5ms", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		sample := make([]simtime.Duration, n)
		for i := range sample {
			sample[i] = simtime.Duration(rng.Int63n(1e9))
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		last := sample[0]
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(sample, p)
			if v < last || v < sample[0] || v > sample[n-1] {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	sample := []simtime.Duration{ms(1), ms(1), ms(2), ms(9), ms(10)}
	h := NewHistogram(sample, 3)
	total := 0
	for _, c := range h.Buckets {
		total += c
	}
	if total != len(sample) {
		t.Fatalf("histogram lost samples: %d != %d", total, len(sample))
	}
	if h.Buckets[0] != 3 {
		t.Fatalf("low bucket = %d, want 3 (1,1,2ms)", h.Buckets[0])
	}
	out := h.Render()
	if !strings.Contains(out, "#") {
		t.Fatalf("render produced no bars:\n%s", out)
	}
}

func TestHistogramUniformValue(t *testing.T) {
	sample := []simtime.Duration{ms(5), ms(5), ms(5)}
	h := NewHistogram(sample, 4)
	total := 0
	for _, c := range h.Buckets {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost samples")
	}
}
