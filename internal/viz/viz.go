// Package viz renders waiting graphs and network provenance graphs as
// Graphviz DOT, reproducing the case-study visuals of Fig 14: the pruned
// waiting graph that exposes the critical path, and the provenance graph
// around an anomalous flow with its edge weights.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/provenance"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

// WaitGraphDOT renders g. Critical-path vertices are highlighted; edge
// styles follow the paper's colour coding (data deps blue, previous-step
// orange, execution solid dark with the duration as label).
func WaitGraphDOT(g *waitgraph.Graph) string {
	var b strings.Builder
	b.WriteString("digraph waiting {\n  rankdir=RL;\n  node [shape=box, fontsize=10];\n")

	crit := map[waitgraph.StepRef]bool{}
	path, _ := g.CriticalPath()
	for _, ref := range path {
		crit[ref] = true
	}

	verts := g.Vertices()
	sort.Slice(verts, func(i, j int) bool { return vertexLess(verts[i], verts[j]) })
	for _, v := range verts {
		attrs := ""
		if crit[waitgraph.StepRef{Host: v.Host, Step: v.Step}] {
			attrs = ", style=filled, fillcolor=gold"
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", v.String(), v.String(), attrs)
	}

	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if !vertexEq(edges[i].From, edges[j].From) {
			return vertexLess(edges[i].From, edges[j].From)
		}
		return vertexLess(edges[i].To, edges[j].To)
	})
	for _, e := range edges {
		switch e.Kind {
		case waitgraph.EdgeExec:
			fmt.Fprintf(&b, "  %q -> %q [label=%q, color=black];\n",
				e.From.String(), e.To.String(), e.Weight.String())
		case waitgraph.EdgePrev:
			fmt.Fprintf(&b, "  %q -> %q [color=orange];\n", e.From.String(), e.To.String())
		case waitgraph.EdgeData:
			fmt.Fprintf(&b, "  %q -> %q [color=blue];\n", e.From.String(), e.To.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func vertexLess(a, b waitgraph.Vertex) bool {
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	return a.Kind < b.Kind
}

func vertexEq(a, b waitgraph.Vertex) bool { return a == b }

// ProvenanceDOT renders g: flows as ellipses (collective flows
// highlighted), ports as boxes, the three §III-D1 edge types with their
// weights as labels.
func ProvenanceDOT(g *provenance.Graph) string {
	var b strings.Builder
	b.WriteString("digraph provenance {\n  rankdir=LR;\n  node [fontsize=10];\n")

	flows := map[fabric.FlowKey]bool{}
	for _, p := range g.Ports() {
		fmt.Fprintf(&b, "  %q [shape=box];\n", portName(p))
		for _, f := range g.FlowsAt(p) {
			flows[f] = true
		}
	}
	var fs []fabric.FlowKey
	for f := range flows {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].String() < fs[j].String() })
	for _, f := range fs {
		attrs := "shape=ellipse"
		if g.IsCF(f) {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", f.String(), attrs)
	}

	for _, p := range g.Ports() {
		for _, f := range g.FlowsAt(p) {
			if w := g.WFlowPort(f, p); w > 0 {
				fmt.Fprintf(&b, "  %q -> %q [label=\"w=%d\"];\n", f.String(), portName(p), w)
			}
			if w := g.WPortFlow(p, f); w > 0 {
				fmt.Fprintf(&b, "  %q -> %q [label=\"w=%.0f\", style=dashed];\n",
					portName(p), f.String(), w)
			}
		}
		for _, pj := range g.PFCOut(p) {
			fmt.Fprintf(&b, "  %q -> %q [label=\"pfc w=%.2f\", color=red, penwidth=2];\n",
				portName(p), portName(pj), g.WPortPort(p, pj))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func portName(p topo.PortID) string {
	return fmt.Sprintf("sw%d.port%d", p.Node, p.Port)
}
