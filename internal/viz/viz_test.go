package viz

import (
	"strings"
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/provenance"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

func TestWaitGraphDOT(t *testing.T) {
	us := func(x int64) simtime.Time { return simtime.Time(x * int64(time.Microsecond)) }
	recs := []collective.StepRecord{
		{Host: 0, Step: 0, Start: 0, End: us(10), WaitSrc: topo.None},
		{Host: 1, Step: 0, Start: 0, End: us(50), WaitSrc: topo.None},
		{Host: 0, Step: 1, Start: us(50), End: us(60), WaitSrc: 1, BoundByWait: true},
	}
	g := waitgraph.Build(recs)
	dot := WaitGraphDOT(g)
	for _, want := range []string{"digraph waiting", "F0S1.start", "color=blue", "color=orange", "fillcolor=gold"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != WaitGraphDOT(g) {
		t.Fatal("nondeterministic DOT")
	}
}

func TestProvenanceDOT(t *testing.T) {
	cf := fabric.FlowKey{Src: 0, Dst: 1, SrcPort: 5000, DstPort: 5000, Proto: 17}
	bf := fabric.FlowKey{Src: 8, Dst: 9, SrcPort: 9000, DstPort: 9001, Proto: 17}
	p1 := topo.PortID{Node: 20, Port: 2}
	p2 := topo.PortID{Node: 21, Port: 3}
	rep := &telemetry.Report{
		Flows: []telemetry.FlowRecord{
			{Switch: p1.Node, Port: p1.Port, Flow: cf, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{bf: 7}},
			{Switch: p2.Node, Port: p2.Port, Flow: bf, Pkts: 5, Bytes: 5000},
		},
		Ports: []telemetry.PortRecord{
			{Switch: p1.Node, Port: p1.Port, AvgQueuedBytes: 8000},
			{Switch: p2.Node, Port: p2.Port, AvgQueuedBytes: 5000,
				MeterIn: map[topo.PortID]int64{p1: 5000},
				PFCEvents: []fabric.PFCEvent{
					{Pause: true, Upstream: p1, Downstream: p2.Node, CauseEgress: p2.Port},
				}},
		},
	}
	g := provenance.Build([]*telemetry.Report{rep}, map[fabric.FlowKey]bool{cf: true})
	dot := ProvenanceDOT(g)
	for _, want := range []string{"digraph provenance", "sw20.port2", "lightblue", "pfc w=", "w=7"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	if dot != ProvenanceDOT(g) {
		t.Fatal("nondeterministic DOT")
	}
}
