package vedrtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/spec"
	"vedrfolnir/internal/wire"
)

// The end-to-end mode replays a finished in-process run's analyzer inputs
// (step records, telemetry reports, collective-flow census) through a real
// vedranalyzerd subprocess over the seq/ack ReliableClient, then SIGTERMs
// the daemon and compares its drained diagnosis byte-for-byte against a
// local wire.Bundle analysis of the same inputs. With kill-after set, the
// daemon is SIGKILLed mid-stream after that many acknowledged messages and
// restarted on the same WAL directory and address — the client resubmits
// through the reconnect, and every assertion must hold across the crash.
//
// This file necessarily touches the host clock (subprocess startup and
// drain timeouts, bind-race retry pacing): it orchestrates real processes,
// not simulated ones. Each wall-clock read is individually sanctioned; the
// simulation itself finished before the replay starts, so determinism of
// the diagnosis is unaffected.

// e2eStartupTimeout bounds waiting for the daemon to announce or drain.
const e2eStartupTimeout = 30 * time.Second

// daemonBuild caches one on-demand `go build` of cmd/vedranalyzerd.
type daemonBuild struct {
	once sync.Once
	path string
	err  error
}

// daemonBinary returns the vedranalyzerd binary path, building it once
// per Runner when no prebuilt path was supplied.
func (r *Runner) daemonBinary() (string, error) {
	if r.AnalyzerdPath != "" {
		return r.AnalyzerdPath, nil
	}
	r.daemon.once.Do(func() {
		dir, err := os.MkdirTemp("", "vedrtest-analyzerd")
		if err != nil {
			r.daemon.err = err
			return
		}
		bin := filepath.Join(dir, "vedranalyzerd")
		build := exec.Command("go", "build", "-o", bin, "vedrfolnir/cmd/vedranalyzerd")
		out, err := build.CombinedOutput()
		if err != nil {
			r.daemon.err = fmt.Errorf("building vedranalyzerd: %v\n%s", err, out)
			return
		}
		r.daemon.path = bin
	})
	return r.daemon.path, r.daemon.err
}

// runAnalyzerd replays one finished case end-to-end and returns the
// resulting checks. Every failure mode lands in a failing check rather
// than an error, so the report always shows how far the replay got.
func (r *Runner) runAnalyzerd(sp *spec.Spec, cs scenario.Case, res scenario.Result) []Check {
	fail := func(field, want string, err error) []Check {
		return []Check{checkBound(field, want, err.Error(), false)}
	}
	bin, err := r.daemonBinary()
	if err != nil {
		return fail("analyzerd.binary", "vedranalyzerd binary available", err)
	}
	walDir, err := os.MkdirTemp("", "vedrtest-wal")
	if err != nil {
		return fail("analyzerd.wal-dir", "WAL directory created", err)
	}
	defer func() { _ = os.RemoveAll(walDir) }()

	baseArgs := []string{"-json", "-wal-dir", walDir,
		"-fsync", sp.Analyzerd.Fsync,
		"-snapshot-every", strconv.Itoa(sp.Analyzerd.SnapshotEvery)}
	d, ok, err := startDaemon(bin, append([]string{"-listen", "127.0.0.1:0"}, baseArgs...))
	if err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("daemon exited before announcing its address")
		}
		return fail("analyzerd.start", "daemon listening", err)
	}
	defer func() { _ = d.cmd.Process.Kill() }()

	rc, err := analyzerd.NewReliableClient(d.addr, analyzerd.ClientConfig{
		ID:          "vedrtest",
		MaxAttempts: 40,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
	})
	if err != nil {
		return fail("analyzerd.connect", "client connected", err)
	}
	defer func() { _ = rc.Close() }()

	msgs := submissionStream(res)
	killAfter := sp.Analyzerd.KillAfter
	var checks []Check
	if killAfter > 0 && killAfter >= len(msgs) {
		checks = append(checks, checkBound("analyzerd.crash-recovery",
			fmt.Sprintf("SIGKILL after %d acked messages lands mid-stream", killAfter),
			fmt.Sprintf("stream only has %d messages", len(msgs)), false))
		killAfter = 0
	}

	killed := false
	for i, send := range msgs {
		if err := send(rc); err != nil {
			return append(checks, fail(fmt.Sprintf("analyzerd.send[%d]", i), "message accepted", err)...)
		}
		if err := rc.Flush(); err != nil {
			return append(checks, fail(fmt.Sprintf("analyzerd.ack[%d]", i), "message acked", err)...)
		}
		if killAfter > 0 && i+1 == killAfter {
			if err := d.cmd.Process.Kill(); err != nil {
				return append(checks, fail("analyzerd.crash-recovery", "daemon SIGKILLed", err)...)
			}
			<-d.done
			d, err = restartDaemon(bin, append([]string{"-listen", d.addr}, baseArgs...))
			if err != nil {
				return append(checks, fail("analyzerd.crash-recovery", "daemon restarted on the same address", err)...)
			}
			killed = true
		}
	}
	if err := rc.Close(); err != nil {
		return append(checks, fail("analyzerd.close", "client closed cleanly", err)...)
	}
	lines, err := d.terminate()
	if err != nil {
		return append(checks, fail("analyzerd.drain", "daemon drained and exited 0", err)...)
	}
	if killed {
		checks = append(checks, checkBound("analyzerd.crash-recovery",
			fmt.Sprintf("daemon SIGKILLed after %d acked messages and restarted", sp.Analyzerd.KillAfter),
			fmt.Sprintf("daemon SIGKILLed after %d acked messages and restarted", sp.Analyzerd.KillAfter), true))
	}

	// Ingest totals must cover exactly what was submitted, crash or not.
	wantIngest := fmt.Sprintf("ingested: %d step records, %d reports, %d collective flows",
		len(res.Records), len(res.Reports), len(res.CFs))
	gotIngest := "(no ingest line)"
	var jsonLines []string
	for i, l := range lines {
		if strings.HasPrefix(l, "ingested: ") {
			gotIngest = l
			continue
		}
		if strings.HasPrefix(l, "{") {
			jsonLines = lines[i:]
			break
		}
	}
	checks = append(checks, check("analyzerd.ingested", wantIngest, gotIngest))

	// Parity: the daemon's drained diagnosis must be byte-identical to a
	// local bundle analysis of the same inputs.
	var local bytes.Buffer
	enc := json.NewEncoder(&local)
	enc.SetIndent("", " ")
	bundle := wire.NewBundle(res.Records, res.Reports, res.CFs)
	localDiag := bundle.Analyze()
	if err := enc.Encode(wire.FromDiagnosis(localDiag)); err != nil {
		return append(checks, fail("analyzerd.diagnosis-parity", "local diagnosis rendered", err)...)
	}
	gotJSON := strings.Join(jsonLines, "\n") + "\n"
	parity := "byte-identical diagnosis"
	if gotJSON != local.String() {
		parity = fmt.Sprintf("daemon diagnosis differs from the local bundle analysis (%d vs %d bytes)",
			len(gotJSON), local.Len())
	}
	checks = append(checks, check("analyzerd.diagnosis-parity", "byte-identical diagnosis", parity))

	// The replayed diagnosis must reach the same verdict as the in-process
	// run (coverage inputs aside, the findings are the same analysis).
	checks = append(checks, check("analyzerd.outcome",
		res.Outcome.String(), scenario.Evaluate(cs, localDiag).String()))
	return checks
}

// submissionStream fixes the replay order: the collective-flow census
// (sorted), then step records, then telemetry reports, all in run order —
// deterministic, so a kill-after point always lands on the same message.
func submissionStream(res scenario.Result) []func(*analyzerd.ReliableClient) error {
	var msgs []func(*analyzerd.ReliableClient) error
	cfs := make([]fabric.FlowKey, 0, len(res.CFs))
	for f := range res.CFs {
		cfs = append(cfs, f)
	}
	sort.Slice(cfs, func(i, j int) bool { return flowKeyLess(cfs[i], cfs[j]) })
	for _, f := range cfs {
		f := f
		msgs = append(msgs, func(rc *analyzerd.ReliableClient) error { return rc.SendCF(f) })
	}
	for _, rec := range res.Records {
		rec := rec
		msgs = append(msgs, func(rc *analyzerd.ReliableClient) error { return rc.SendStep(rec) })
	}
	for _, rep := range res.Reports {
		rep := rep
		msgs = append(msgs, func(rc *analyzerd.ReliableClient) error { return rc.SendReport(rep) })
	}
	return msgs
}

// daemon is one running vedranalyzerd subprocess with captured stdout.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	done chan error

	mu    sync.Mutex
	lines []string
}

// startDaemon launches the binary and waits for its listening line; ok is
// false when the daemon exited before announcing (a bind race on restart —
// the caller retries).
func startDaemon(bin string, args []string) (*daemon, bool, error) {
	d := &daemon{cmd: exec.Command(bin, args...), done: make(chan error, 1)}
	d.cmd.Stderr = os.Stderr
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		return nil, false, err
	}
	if err := d.cmd.Start(); err != nil {
		return nil, false, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "analyzer listening on "); ok {
				addrCh <- a
				continue
			}
			d.mu.Lock()
			d.lines = append(d.lines, line)
			d.mu.Unlock()
		}
		close(addrCh)
		d.done <- d.cmd.Wait()
	}()
	select {
	case a, ok := <-addrCh:
		if !ok {
			<-d.done
			return nil, false, nil
		}
		d.addr = a
		return d, true, nil
	//lint:ignore nosystime bounding a real subprocess's startup, not simulated time
	case <-time.After(e2eStartupTimeout):
		_ = d.cmd.Process.Kill()
		return nil, false, fmt.Errorf("daemon never announced its address")
	}
}

// restartDaemon rebinds a recovered daemon on the address the killed one
// used (the reliable client keeps resubmitting there), retrying the bind
// race while the kernel releases the port.
func restartDaemon(bin string, args []string) (*daemon, error) {
	for attempt := 0; attempt < 40; attempt++ {
		d, ok, err := startDaemon(bin, args)
		if err != nil {
			return nil, err
		}
		if ok {
			return d, nil
		}
		//lint:ignore nosystime pacing a real TCP bind-race retry
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("could not rebind the daemon's address after 40 attempts")
}

// output returns the captured stdout lines, minus the operational noise
// that legitimately differs between a crashed-and-recovered run and an
// uninterrupted one (duplicate-suppression and backpressure counters, and
// per-shard announce lines whose ports and pids are never stable).
func (d *daemon) output() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, l := range d.lines {
		if strings.HasPrefix(l, "shrugged off:") || strings.HasPrefix(l, "backpressure:") ||
			strings.HasPrefix(l, "shard ") {
			continue
		}
		out = append(out, l)
	}
	return out
}

// terminate SIGTERMs the daemon, waits for the graceful drain, and returns
// the filtered output.
func (d *daemon) terminate() ([]string, error) {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil, fmt.Errorf("signalling daemon: %w", err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			return nil, fmt.Errorf("daemon exited non-zero after SIGTERM: %w", err)
		}
	//lint:ignore nosystime bounding a real subprocess's drain, not simulated time
	case <-time.After(e2eStartupTimeout):
		_ = d.cmd.Process.Kill()
		return nil, fmt.Errorf("daemon did not drain and exit after SIGTERM")
	}
	return d.output(), nil
}
