package vedrtest

import (
	"fmt"
	"sort"
	"strconv"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/spec"
)

// check builds one evaluated assertion.
func check(field, want, got string) Check {
	return Check{Field: field, Want: want, Got: got, OK: want == got}
}

// checkBound builds a bound assertion whose verdict is computed, not
// string-equality (Got keeps the measured value for the diff).
func checkBound(field, want, got string, ok bool) Check {
	return Check{Field: field, Want: want, Got: got, OK: ok}
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// caseChecks evaluates the spec's per-case expectations against one run.
func caseChecks(sp *spec.Spec, cs scenario.Case, res scenario.Result) []Check {
	e := sp.Expect
	diag := res.Diag
	var out []Check

	if e.Outcome != "" {
		out = append(out, check("outcome", e.Outcome, res.Outcome.String()))
	}
	if e.Completed != nil {
		out = append(out, check("completed",
			strconv.FormatBool(*e.Completed), strconv.FormatBool(res.Completed)))
	}
	for _, want := range e.AnomalyTypes {
		got := "absent"
		for _, f := range diag.Findings {
			if f.Type.String() == want {
				got = "present"
				break
			}
		}
		out = append(out, check("anomaly-types["+want+"]", "present", got))
	}
	nf := len(diag.Findings)
	if e.MinFindings != spec.Unset {
		out = append(out, checkBound("min-findings",
			fmt.Sprintf(">= %d findings", e.MinFindings),
			fmt.Sprintf("%d findings", nf), nf >= e.MinFindings))
	}
	if e.MaxFindings != spec.Unset {
		out = append(out, checkBound("max-findings",
			fmt.Sprintf("<= %d findings", e.MaxFindings),
			fmt.Sprintf("%d findings", nf), nf <= e.MaxFindings))
	}

	culprits := diag.Culprits()
	if e.CulpritsIncludeInjected {
		detected := make(map[fabric.FlowKey]bool, len(culprits))
		for _, f := range culprits {
			detected[f] = true
		}
		missing := 0
		for key := range cs.InjectedKeys() {
			if !detected[key] {
				missing++
			}
		}
		got := "all injected flows among the culprits"
		if missing > 0 {
			got = fmt.Sprintf("%d of %d injected flows missing from the culprits", missing, len(cs.Flows))
		}
		out = append(out, check("culprits-include-injected",
			"all injected flows among the culprits", got))
	}
	if e.MinCulprits != spec.Unset {
		out = append(out, checkBound("min-culprits",
			fmt.Sprintf(">= %d culprits", e.MinCulprits),
			fmt.Sprintf("%d culprits", len(culprits)), len(culprits) >= e.MinCulprits))
	}
	if e.MaxCulprits != spec.Unset {
		out = append(out, checkBound("max-culprits",
			fmt.Sprintf("<= %d culprits", e.MaxCulprits),
			fmt.Sprintf("%d culprits", len(culprits)), len(culprits) <= e.MaxCulprits))
	}

	if e.MinVictims != spec.Unset || e.VictimsAreCollective {
		victims := victimSet(diag)
		if e.MinVictims != spec.Unset {
			out = append(out, checkBound("min-victims",
				fmt.Sprintf(">= %d victim flows", e.MinVictims),
				fmt.Sprintf("%d victim flows", len(victims)), len(victims) >= e.MinVictims))
		}
		if e.VictimsAreCollective {
			stray := 0
			for _, v := range victims {
				if !res.CFs[v] {
					stray++
				}
			}
			got := "every victim is a collective flow"
			if stray > 0 {
				got = fmt.Sprintf("%d of %d victims are not collective flows", stray, len(victims))
			}
			out = append(out, check("victims-are-collective",
				"every victim is a collective flow", got))
		}
	}

	if e.MinConfidence != spec.Unset {
		out = append(out, checkBound("min-confidence",
			">= "+ftoa(e.MinConfidence), ftoa(res.Confidence),
			res.Confidence >= e.MinConfidence))
	}
	if e.MaxConfidence != spec.Unset {
		out = append(out, checkBound("max-confidence",
			"<= "+ftoa(e.MaxConfidence), ftoa(res.Confidence),
			res.Confidence <= e.MaxConfidence))
	}

	if e.RootLocalized {
		out = append(out, rootLocalizedCheck(cs, diag))
	}
	return out
}

// victimSet collects the distinct affected flows across all findings, in
// deterministic order.
func victimSet(diag *diagnose.Diagnosis) []fabric.FlowKey {
	seen := make(map[fabric.FlowKey]bool)
	var out []fabric.FlowKey
	for _, f := range diag.Findings {
		for _, v := range f.Affected {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return flowKeyLess(out[i], out[j]) })
	return out
}

func flowKeyLess(a, b fabric.FlowKey) bool {
	switch {
	case a.Src != b.Src:
		return a.Src < b.Src
	case a.Dst != b.Dst:
		return a.Dst < b.Dst
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	default:
		return a.Proto < b.Proto
	}
}

// rootLocalizedCheck applies the paper's PFC localization criterion: the
// storm must trace to the injected switch, the backpressure cascade to the
// ground-truth root port.
func rootLocalizedCheck(cs scenario.Case, diag *diagnose.Diagnosis) Check {
	want := ""
	got := "no finding localizes the root"
	switch cs.Kind {
	case scenario.PFCStorm:
		want = fmt.Sprintf("a pfc-storm finding rooted at switch %d", cs.StormSwitch)
		for _, f := range diag.Findings {
			if f.Type == diagnose.PFCStorm && f.RootPort.Node == cs.StormSwitch {
				got = want
				break
			}
		}
	case scenario.PFCBackpressure:
		want = fmt.Sprintf("a PFC finding rooted at port %d/%d",
			cs.BackpressureRoot.Node, cs.BackpressureRoot.Port)
		for _, f := range diag.Findings {
			if (f.Type == diagnose.PFCBackpressure || f.Type == diagnose.PFCStorm) &&
				f.RootPort == cs.BackpressureRoot {
				got = want
				break
			}
		}
	}
	return check("root-localized", want, got)
}

// aggregateChecks evaluates the spec-level precision/recall expectations
// over all cases.
func aggregateChecks(sp *spec.Spec, m scenario.Metrics) []Check {
	e := sp.Expect
	var out []Check
	if e.Precision != spec.Unset {
		out = append(out, check("precision", ftoa(e.Precision), ftoa(m.Precision())))
	}
	if e.Recall != spec.Unset {
		out = append(out, check("recall", ftoa(e.Recall), ftoa(m.Recall())))
	}
	if e.MinPrecision != spec.Unset {
		out = append(out, checkBound("min-precision",
			">= "+ftoa(e.MinPrecision), ftoa(m.Precision()),
			m.Precision() >= e.MinPrecision))
	}
	if e.MinRecall != spec.Unset {
		out = append(out, checkBound("min-recall",
			">= "+ftoa(e.MinRecall), ftoa(m.Recall()),
			m.Recall() >= e.MinRecall))
	}
	return out
}
