// Package vedrtest executes declarative scenario specs (internal/spec) and
// diffs the resulting diagnosis against the spec's expectations. It is the
// conformance-corpus runner behind cmd/vedrtest: a spec compiles into the
// same scenario.Config/RunOptions the Go-coded experiments use, runs
// in-process (deterministically, sim-time only), and — in analyzerd mode —
// additionally replays the run's records, reports, and collective flows
// end-to-end through a real vedranalyzerd process over the seq/ack
// ReliableClient, optionally SIGKILLing and restarting the daemon
// mid-stream to prove the assertions survive crash recovery.
//
// Every run is traced through an obs scope; when a spec fails, the runner
// writes the trace and a structured JSON report next to the corpus so a CI
// failure is debuggable from artifacts alone.
package vedrtest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/spec"
	"vedrfolnir/internal/topo"
)

// Check is one evaluated assertion: a field name, the expected value, what
// the run actually produced, and the verdict. Want and Got are rendered
// strings so reports serialize losslessly and diff cleanly.
type Check struct {
	Field string `json:"field"`
	Want  string `json:"want"`
	Got   string `json:"got"`
	OK    bool   `json:"ok"`
}

// CaseReport is one seed's evaluation.
type CaseReport struct {
	Seed    int64   `json:"seed"`
	Outcome string  `json:"outcome"`
	Checks  []Check `json:"checks"`
}

// Report is one spec file's full result.
type Report struct {
	File string `json:"file"`
	Name string `json:"name"`
	Mode string `json:"mode"`

	// Err is a load/validation/execution error; when set, no checks ran.
	Err string `json:"err,omitempty"`
	// LoadFailed distinguishes a spec that could not even be parsed or
	// validated (CLI exit 2) from one whose assertions failed (exit 1).
	LoadFailed bool `json:"load_failed,omitempty"`

	Cases []CaseReport `json:"cases,omitempty"`
	// Aggregate holds the spec-level checks (precision/recall over a
	// seeds list).
	Aggregate []Check `json:"aggregate,omitempty"`

	// Failure artifacts (written only when the spec failed and the runner
	// has an artifacts directory).
	TracePath  string `json:"trace_path,omitempty"`
	ReportPath string `json:"report_path,omitempty"`
}

// Failed reports whether the spec failed (an error or any failed check).
func (r *Report) Failed() bool {
	if r.Err != "" {
		return true
	}
	for _, c := range r.Aggregate {
		if !c.OK {
			return true
		}
	}
	for _, cs := range r.Cases {
		for _, c := range cs.Checks {
			if !c.OK {
				return true
			}
		}
	}
	return false
}

// Counts returns the total and failed check counts.
func (r *Report) Counts() (total, failed int) {
	count := func(checks []Check) {
		for _, c := range checks {
			total++
			if !c.OK {
				failed++
			}
		}
	}
	count(r.Aggregate)
	for _, cs := range r.Cases {
		count(cs.Checks)
	}
	return total, failed
}

// Runner executes spec files.
type Runner struct {
	// ForceInProcess downgrades analyzerd-mode specs to in-process
	// execution (what the CI -race corpus step uses).
	ForceInProcess bool
	// AnalyzerdPath is a prebuilt vedranalyzerd binary for end-to-end
	// specs; empty builds one on demand (cached per Runner).
	AnalyzerdPath string
	// ArtifactsDir receives failure artifacts (obs trace + JSON report);
	// empty disables artifact writing.
	ArtifactsDir string

	daemon daemonBuild
}

// RunFile loads and executes one spec file, returning its report. All
// failures are captured in the report; RunFile itself never panics on a
// bad spec.
func (r *Runner) RunFile(path string) *Report {
	rep := &Report{
		File: path,
		Name: strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)),
		Mode: spec.InProcess.String(),
	}
	sp, err := spec.Load(path)
	if err != nil {
		rep.Err = err.Error()
		rep.LoadFailed = true
		return rep
	}
	if sp.Name != "" {
		rep.Name = sp.Name
	}
	mode := sp.Mode
	if r.ForceInProcess {
		mode = spec.InProcess
	}
	rep.Mode = mode.String()

	scope := &obs.Scope{Trace: obs.NewTracer()}
	r.execute(sp, mode, scope, rep)
	if rep.Failed() {
		r.writeArtifacts(rep, scope)
	}
	return rep
}

// execute compiles and runs the spec's cases, filling in the report.
func (r *Runner) execute(sp *spec.Spec, mode spec.Mode, scope *obs.Scope, rep *Report) {
	cfg, opts, err := Compile(sp)
	if err != nil {
		rep.Err = err.Error()
		return
	}
	opts.Obs = scope

	var metrics scenario.Metrics
	for _, seed := range sp.Scenario.Seeds {
		cs, err := scenario.GenerateCase(sp.Scenario.Anomaly, seed, cfg)
		if err != nil {
			rep.Err = fmt.Sprintf("seed %d: %v", seed, err)
			return
		}
		if len(sp.Scenario.Flows) > 0 {
			cs.Flows = compileFlows(sp.Scenario.Flows, cfg)
		}
		res, err := runCase(cs, sp.Scenario.System, cfg, opts)
		if err != nil {
			rep.Err = fmt.Sprintf("seed %d: %v", seed, err)
			return
		}
		metrics.Add(res.Outcome)
		cr := CaseReport{Seed: seed, Outcome: res.Outcome.String()}
		cr.Checks = caseChecks(sp, cs, res)
		if mode == spec.Analyzerd {
			cr.Checks = append(cr.Checks, r.runAnalyzerd(sp, cs, res)...)
		}
		if mode == spec.Fleet {
			cr.Checks = append(cr.Checks, r.runFleet(sp, cs, res)...)
		}
		rep.Cases = append(rep.Cases, cr)
	}
	rep.Aggregate = aggregateChecks(sp, metrics)
}

// runCase executes one case, converting a panic anywhere in the simulation
// stack into a captured error so one broken case cannot take down a corpus
// run.
func runCase(cs scenario.Case, system scenario.SystemKind, cfg scenario.Config, opts scenario.RunOptions) (res scenario.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return scenario.Run(cs, system, cfg, opts)
}

// Compile translates a validated spec into the scenario configuration and
// run options the Go-coded experiments use.
func Compile(sp *spec.Spec) (scenario.Config, scenario.RunOptions, error) {
	s := sp.Scenario
	cfg := scenario.ConfigForScale(s.ScaleDen)
	cfg.Ranks = s.Ranks
	cfg.Op = s.Op
	cfg.Alg = s.Alg

	opts := scenario.DefaultRunOptions(cfg)
	p := sp.Params
	if p.RTTFactor != 0 {
		opts.Monitor.RTTFactor = p.RTTFactor
	}
	if p.MaxDetectPerStep != 0 {
		opts.Monitor.MaxDetectPerStep = p.MaxDetectPerStep
	}
	if p.FixedRTTThreshold != 0 {
		opts.Monitor.FixedRTTThreshold = p.FixedRTTThreshold
	}
	if p.Unrestricted {
		opts.Monitor.Unrestricted = true
	}
	opts.Chaos = sp.Chaos
	return cfg, opts, nil
}

// compileFlows converts the spec's explicit flow timeline into injected
// flows, using the same 5-tuple construction, byte scaling, and time
// scaling as the seeded case generator.
func compileFlows(flows []spec.Flow, cfg scenario.Config) []scenario.InjectedFlow {
	out := make([]scenario.InjectedFlow, 0, len(flows))
	for i, f := range flows {
		out = append(out, scenario.InjectedFlow{
			Key: fabric.FlowKey{
				Src:     topo.NodeID(f.Src),
				Dst:     topo.NodeID(f.Dst),
				SrcPort: uint16(9000 + 10*i),
				DstPort: uint16(9001 + 10*i),
				Proto:   17,
			},
			Bytes:   cfg.ScaledBytes(f.MB * 1e6),
			StartAt: simtime.Time(f.StartMS * 1e6 * cfg.Scale),
		})
	}
	return out
}

// writeArtifacts persists the failure trace and the structured report.
func (r *Runner) writeArtifacts(rep *Report, scope *obs.Scope) {
	if r.ArtifactsDir == "" {
		return
	}
	if err := os.MkdirAll(r.ArtifactsDir, 0o755); err != nil {
		return
	}
	if scope.T().Len() > 0 {
		tp := filepath.Join(r.ArtifactsDir, rep.Name+".trace.json")
		if err := scope.T().WriteFile(tp); err == nil {
			rep.TracePath = tp
		}
	}
	pp := filepath.Join(r.ArtifactsDir, rep.Name+".report.json")
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return
	}
	if err := os.WriteFile(pp, append(data, '\n'), 0o644); err == nil {
		rep.ReportPath = pp
	}
}
