package vedrtest

import (
	"path/filepath"
	"testing"
)

// TestAnalyzerdSpecEndToEnd runs the corpus's crash-recovery spec for real:
// a vedranalyzerd subprocess is fed the replay over the seq/ack client,
// SIGKILLed mid-stream, restarted on the same WAL directory, and its
// drained diagnosis compared byte-for-byte with the local bundle analysis.
func TestAnalyzerdSpecEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-tests a real daemon; skipped with -short")
	}
	rep := (&Runner{}).RunFile(filepath.Join(corpusDir, "analyzerd_crash_recovery.yaml"))
	if rep.LoadFailed {
		t.Fatalf("spec failed to load: %s", rep.Err)
	}
	if rep.Mode != "analyzerd" {
		t.Fatalf("mode = %q, want analyzerd", rep.Mode)
	}
	if rep.Failed() {
		t.Fatalf("end-to-end spec failed:\n%s", FailureDiff(rep))
	}

	seen := map[string]bool{}
	for _, cs := range rep.Cases {
		for _, c := range cs.Checks {
			seen[c.Field] = true
		}
	}
	for _, field := range []string{
		"analyzerd.crash-recovery",
		"analyzerd.ingested",
		"analyzerd.diagnosis-parity",
		"analyzerd.outcome",
	} {
		if !seen[field] {
			t.Errorf("end-to-end run emitted no %q check", field)
		}
	}
}
