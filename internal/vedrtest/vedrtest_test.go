package vedrtest

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/spec"
)

const corpusDir = "../../testdata/conformance"

func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.yaml"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no conformance specs under %s: %v", corpusDir, err)
	}
	return files
}

// TestConformanceCorpusInProcess runs the full shipped corpus in-process
// (analyzerd-mode specs downgraded) — the same thing CI's -race corpus
// step exercises through cmd/vedrtest.
func TestConformanceCorpusInProcess(t *testing.T) {
	r := &Runner{ForceInProcess: true}
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			rep := r.RunFile(file)
			if rep.LoadFailed {
				t.Fatalf("spec failed to load: %s", rep.Err)
			}
			if rep.Failed() {
				t.Fatalf("spec failed:\n%s", FailureDiff(rep))
			}
			if total, _ := rep.Counts(); total == 0 {
				t.Fatalf("spec ran no checks")
			}
		})
	}
}

// TestFig9SpecGoParity pins the ported Fig 9 contention cell: the
// declarative spec and a direct Go replication of the experiment's jobs
// (same seeds, same max-detect-per-step operating point) must agree on
// precision and recall, and both must match the values the spec asserts.
func TestFig9SpecGoParity(t *testing.T) {
	path := filepath.Join(corpusDir, "fig9_contention_cell.yaml")
	sp, err := spec.Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	if sp.Params.MaxDetectPerStep != 5 {
		t.Fatalf("spec max-detect-per-step = %d, want the experiment's 5", sp.Params.MaxDetectPerStep)
	}

	// Direct Go run of the identical cell, written the way
	// internal/experiments codes it rather than through Compile.
	cfg := scenario.ConfigForScale(90)
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.MaxDetectPerStep = 5
	var m scenario.Metrics
	for _, seed := range sp.Scenario.Seeds {
		cs, err := scenario.GenerateCase(scenario.Contention, seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m.Add(res.Outcome)
	}
	if m.Precision() != sp.Expect.Precision {
		t.Errorf("Go precision = %v, spec asserts %v", m.Precision(), sp.Expect.Precision)
	}
	if m.Recall() != sp.Expect.Recall {
		t.Errorf("Go recall = %v, spec asserts %v", m.Recall(), sp.Expect.Recall)
	}

	rep := (&Runner{}).RunFile(path)
	if rep.Failed() {
		t.Fatalf("spec run failed:\n%s", FailureDiff(rep))
	}
	for _, c := range rep.Aggregate {
		var got string
		switch c.Field {
		case "precision":
			got = ftoa(m.Precision())
		case "recall":
			got = ftoa(m.Recall())
		default:
			continue
		}
		if c.Got != got {
			t.Errorf("spec aggregate %s = %s, direct Go run = %s", c.Field, c.Got, got)
		}
	}
}

// failingSpec is a storm case whose expectations are deliberately wrong:
// the run is a TP with exactly one pfc-storm finding.
const failingSpec = `name: deliberately-wrong
scenario:
  anomaly: pfc-storm
  seed: 5
expect:
  outcome: FN
  max-findings: 0
  min-confidence: 1
`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.yaml")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFailingSpecDiff(t *testing.T) {
	rep := (&Runner{}).RunFile(writeSpec(t, failingSpec))
	if rep.LoadFailed || rep.Err != "" {
		t.Fatalf("unexpected error: %s", rep.Err)
	}
	if !rep.Failed() {
		t.Fatal("deliberately wrong spec passed")
	}
	total, failed := rep.Counts()
	if total != 3 || failed != 2 {
		t.Fatalf("counts = (%d, %d), want (3, 2)", total, failed)
	}
	diff := FailureDiff(rep)
	for _, want := range []string{
		"-outcome = FN",
		"+outcome = TP",
		"-max-findings = <= 0 findings",
		"+max-findings = 1 findings",
		" min-confidence = >= 1", // passing check stays context
	} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff is missing %q:\n%s", want, diff)
		}
	}
}

func TestArtifactsOnFailure(t *testing.T) {
	dir := t.TempDir()
	rep := (&Runner{ArtifactsDir: dir}).RunFile(writeSpec(t, failingSpec))
	if !rep.Failed() {
		t.Fatal("deliberately wrong spec passed")
	}
	if rep.TracePath == "" || rep.ReportPath == "" {
		t.Fatalf("missing artifacts: trace=%q report=%q", rep.TracePath, rep.ReportPath)
	}
	data, err := os.ReadFile(rep.ReportPath)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report artifact is not valid JSON: %v", err)
	}
	if round.Name != "deliberately-wrong" {
		t.Fatalf("report artifact name = %q", round.Name)
	}
	if st, err := os.Stat(rep.TracePath); err != nil || st.Size() == 0 {
		t.Fatalf("trace artifact unreadable or empty: %v", err)
	}
}

func TestLoadErrorIsLineNumbered(t *testing.T) {
	rep := (&Runner{}).RunFile(writeSpec(t, "name: broken\nscenario:\n  anomaly: nope\nexpect:\n  outcome: TP\n"))
	if !rep.LoadFailed {
		t.Fatal("broken spec loaded")
	}
	if !strings.Contains(rep.Err, "line 3:") {
		t.Fatalf("error is not line-numbered: %q", rep.Err)
	}
}

// TestRunnerDeterminism reruns one multi-seed spec and requires the full
// serialized report to be identical — the property that makes corpus
// output byte-stable at any worker count.
func TestRunnerDeterminism(t *testing.T) {
	path := filepath.Join(corpusDir, "fig9_contention_cell.yaml")
	r := &Runner{ForceInProcess: true}
	first, err := json.Marshal(r.RunFile(path))
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(r.RunFile(path))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("reports differ across reruns:\n%s\n%s", first, second)
	}
}
