package vedrtest

import "testing"

func TestUnifiedDiffEqual(t *testing.T) {
	lines := []string{"a", "b", "c"}
	if d := UnifiedDiff(lines, lines, 3); d != "" {
		t.Fatalf("diff of equal inputs = %q", d)
	}
	if d := UnifiedDiff(nil, nil, 3); d != "" {
		t.Fatalf("diff of empty inputs = %q", d)
	}
}

func TestUnifiedDiffReplace(t *testing.T) {
	a := []string{"one", "two", "three", "four"}
	b := []string{"one", "TWO", "three", "four"}
	want := "@@ -1,4 +1,4 @@\n one\n-two\n+TWO\n three\n four\n"
	if got := UnifiedDiff(a, b, 3); got != want {
		t.Fatalf("diff = %q, want %q", got, want)
	}
}

func TestUnifiedDiffInsertDelete(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"x", "mid", "y"}
	want := "@@ -1,2 +1,3 @@\n x\n+mid\n y\n"
	if got := UnifiedDiff(a, b, 3); got != want {
		t.Fatalf("insert diff = %q, want %q", got, want)
	}
	want = "@@ -1,3 +1,2 @@\n x\n-mid\n y\n"
	if got := UnifiedDiff(b, a, 3); got != want {
		t.Fatalf("delete diff = %q, want %q", got, want)
	}
}

func TestUnifiedDiffSplitsDistantHunks(t *testing.T) {
	a := make([]string, 20)
	b := make([]string, 20)
	for i := range a {
		a[i] = string(rune('a' + i))
		b[i] = a[i]
	}
	b[1] = "CHANGED-1"
	b[18] = "CHANGED-18"
	got := UnifiedDiff(a, b, 1)
	want := "@@ -1,3 +1,3 @@\n a\n-b\n+CHANGED-1\n c\n" +
		"@@ -18,3 +18,3 @@\n r\n-s\n+CHANGED-18\n t\n"
	if got != want {
		t.Fatalf("two-hunk diff = %q, want %q", got, want)
	}
}

func TestUnifiedDiffMergesNearbyHunks(t *testing.T) {
	a := []string{"1", "2", "3", "4", "5"}
	b := []string{"1", "X", "3", "Y", "5"}
	got := UnifiedDiff(a, b, 1)
	want := "@@ -1,5 +1,5 @@\n 1\n-2\n+X\n 3\n-4\n+Y\n 5\n"
	if got != want {
		t.Fatalf("merged diff = %q, want %q", got, want)
	}
}
