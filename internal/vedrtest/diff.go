package vedrtest

import (
	"fmt"
	"strings"
)

// FailureDiff renders a unified diff of the report's expected vs. actual
// assertion values: passing checks appear as context, failing checks as
// -want/+got pairs, so a corpus failure reads like a test diff in CI logs.
// Returns "" when nothing failed.
func FailureDiff(r *Report) string {
	var want, got []string
	add := func(prefix string, checks []Check) {
		for _, c := range checks {
			want = append(want, prefix+c.Field+" = "+c.Want)
			if c.OK {
				got = append(got, prefix+c.Field+" = "+c.Want)
			} else {
				got = append(got, prefix+c.Field+" = "+c.Got)
			}
		}
	}
	for _, cs := range r.Cases {
		prefix := ""
		if len(r.Cases) > 1 {
			prefix = fmt.Sprintf("seed[%d].", cs.Seed)
		}
		add(prefix, cs.Checks)
	}
	add("", r.Aggregate)
	return UnifiedDiff(want, got, 3)
}

// UnifiedDiff computes a unified diff (3-way hunk format, no file header)
// between two line slices with the given context radius. Returns "" when
// the inputs are equal.
func UnifiedDiff(a, b []string, ctx int) string {
	ops := diffOps(a, b)
	changed := false
	for _, op := range ops {
		if op.kind != opEqual {
			changed = true
			break
		}
	}
	if !changed {
		return ""
	}

	var sb strings.Builder
	// Group ops into hunks: runs of changes padded by up to ctx equal
	// lines, merging hunks whose gaps are <= 2*ctx.
	type hunk struct{ start, end int } // op index range
	var hunks []hunk
	for i := 0; i < len(ops); i++ {
		if ops[i].kind == opEqual {
			continue
		}
		j := i
		for j+1 < len(ops) {
			// Extend through the next change if the equal gap is small.
			k := j + 1
			for k < len(ops) && ops[k].kind == opEqual {
				k++
			}
			if k < len(ops) && k-j-1 <= 2*ctx {
				j = k
				continue
			}
			break
		}
		hunks = append(hunks, hunk{start: i, end: j})
		i = j
	}

	for _, h := range hunks {
		start := h.start
		for n := 0; n < ctx && start > 0 && ops[start-1].kind == opEqual; n++ {
			start--
		}
		end := h.end
		for n := 0; n < ctx && end+1 < len(ops) && ops[end+1].kind == opEqual; n++ {
			end++
		}
		aStart, bStart := ops[start].aIdx+1, ops[start].bIdx+1
		var aLen, bLen int
		for _, op := range ops[start : end+1] {
			switch op.kind {
			case opEqual:
				aLen++
				bLen++
			case opDelete:
				aLen++
			case opInsert:
				bLen++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart, aLen, bStart, bLen)
		for _, op := range ops[start : end+1] {
			switch op.kind {
			case opEqual:
				sb.WriteString(" " + op.text + "\n")
			case opDelete:
				sb.WriteString("-" + op.text + "\n")
			case opInsert:
				sb.WriteString("+" + op.text + "\n")
			}
		}
	}
	return sb.String()
}

type opKind uint8

const (
	opEqual opKind = iota
	opDelete
	opInsert
)

type diffOp struct {
	kind opKind
	text string
	// aIdx/bIdx are the op's positions in a and b (for deletes, bIdx is
	// the insertion point, and vice versa).
	aIdx, bIdx int
}

// diffOps computes an LCS edit script between a and b.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{kind: opEqual, text: a[i], aIdx: i, bIdx: j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{kind: opDelete, text: a[i], aIdx: i, bIdx: j})
			i++
		default:
			ops = append(ops, diffOp{kind: opInsert, text: b[j], aIdx: i, bIdx: j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{kind: opDelete, text: a[i], aIdx: i, bIdx: j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{kind: opInsert, text: b[j], aIdx: i, bIdx: j})
	}
	return ops
}
