package vedrtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/spec"
	"vedrfolnir/internal/wire"
)

// The fleet mode replays a finished case through `vedranalyzerd -cluster`:
// every source host streams through its own named ReliableClient, the
// router consistent-hashes the hosts across supervised shard daemons, and
// the drained merged diagnosis must match a local canonical merge of the
// same sourced stream — including across a mid-stream shard SIGKILL
// (recovered by the supervisor) or a shard held down through the drain
// (asserted degraded instead).

// fleetSubmission is one message from one named host agent, mirrored as
// the sourced message the shard is expected to retain.
type fleetSubmission struct {
	host string
	send func(*analyzerd.ReliableClient) error
	msg  wire.SourcedMessage
}

// hostOf names the fleet client for a source host ID.
func hostOf(id int32) string { return fmt.Sprintf("h%02d", id) }

// fleetStream fixes the replay order (sorted collective-flow census, then
// step records, then telemetry reports — the submissionStream order) and
// attributes each message to the host that produced it.
func fleetStream(res scenario.Result) []fleetSubmission {
	var subs []fleetSubmission
	cfs := make([]fabric.FlowKey, 0, len(res.CFs))
	for f := range res.CFs {
		cfs = append(cfs, f)
	}
	sort.Slice(cfs, func(i, j int) bool { return flowKeyLess(cfs[i], cfs[j]) })
	for _, f := range cfs {
		f := f
		dto := wire.FromFlow(f)
		subs = append(subs, fleetSubmission{
			host: hostOf(int32(f.Src)),
			send: func(rc *analyzerd.ReliableClient) error { return rc.SendCF(f) },
			msg:  wire.SourcedMessage{Type: wire.MsgCF, CF: &dto},
		})
	}
	for _, rec := range res.Records {
		rec := rec
		dto := wire.FromStepRecord(rec)
		subs = append(subs, fleetSubmission{
			host: hostOf(int32(rec.Host)),
			send: func(rc *analyzerd.ReliableClient) error { return rc.SendStep(rec) },
			msg:  wire.SourcedMessage{Type: wire.MsgStep, Step: &dto},
		})
	}
	for _, rep := range res.Reports {
		rep := rep
		dto := wire.FromReport(rep)
		subs = append(subs, fleetSubmission{
			host: hostOf(int32(rep.TriggeredBy.Src)),
			send: func(rc *analyzerd.ReliableClient) error { return rc.SendReport(rep) },
			msg:  wire.SourcedMessage{Type: wire.MsgReport, Report: &dto},
		})
	}
	return subs
}

// shardAnnounces counts shard i's announce lines: one per incarnation,
// so >= 2 proves a supervised restart happened.
func (d *daemon) shardAnnounces(i int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	prefix := fmt.Sprintf("shard %d listening on ", i)
	for _, l := range d.lines {
		if strings.HasPrefix(l, prefix) {
			n++
		}
	}
	return n
}

// shardPid scans the daemon's captured announce lines for shard i's most
// recent incarnation and returns its pid (-1 when it never announced).
func (d *daemon) shardPid(i int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	pid := -1
	prefix := fmt.Sprintf("shard %d listening on ", i)
	for _, l := range d.lines {
		rest, ok := strings.CutPrefix(l, prefix)
		if !ok {
			continue
		}
		var addr string
		var p int
		if _, err := fmt.Sscanf(rest, "%s (pid %d)", &addr, &p); err == nil {
			pid = p
		}
	}
	return pid
}

// runFleet replays one finished case through a real sharded cluster and
// returns the resulting checks. Like runAnalyzerd, every failure mode
// lands in a failing check so the report shows how far the replay got.
func (r *Runner) runFleet(sp *spec.Spec, cs scenario.Case, res scenario.Result) []Check {
	fail := func(field, want string, err error) []Check {
		return []Check{checkBound(field, want, err.Error(), false)}
	}
	bin, err := r.daemonBinary()
	if err != nil {
		return fail("fleet.binary", "vedranalyzerd binary available", err)
	}
	walDir, err := os.MkdirTemp("", "vedrtest-fleet-wal")
	if err != nil {
		return fail("fleet.wal-dir", "WAL directory created", err)
	}
	defer func() { _ = os.RemoveAll(walDir) }()

	fl := sp.Fleet
	args := []string{"-listen", "127.0.0.1:0", "-json",
		"-cluster", strconv.Itoa(fl.Shards),
		"-wal-dir", walDir,
		"-fsync", fl.Fsync,
		"-snapshot-every", strconv.Itoa(fl.SnapshotEvery)}
	if fl.Replicas > 0 {
		args = append(args, "-shard-replicas", strconv.Itoa(fl.Replicas))
	}
	if fl.HoldShard != spec.Unset {
		args = append(args, "-hold-shard", strconv.Itoa(fl.HoldShard))
	}
	if fl.ResizeTo > 0 {
		args = append(args, "-resize-to", strconv.Itoa(fl.ResizeTo))
		if fl.ResizeAfter > 0 {
			args = append(args, "-resize-after", strconv.Itoa(fl.ResizeAfter))
		}
		if fl.RebalanceKillPhase != "" {
			args = append(args, "-rebalance-kill",
				fl.RebalanceKillPhase+":"+strconv.Itoa(fl.RebalanceKillShard))
		}
	}
	if fl.TenantRate > 0 {
		args = append(args, "-tenant-rate", strconv.FormatFloat(fl.TenantRate, 'f', -1, 64))
		if fl.TenantBurst > 0 {
			args = append(args, "-tenant-burst", strconv.Itoa(fl.TenantBurst))
		}
	}
	d, ok, err := startDaemon(bin, args)
	if err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("cluster exited before announcing its address")
		}
		return fail("fleet.start", "cluster listening", err)
	}
	defer func() { _ = d.cmd.Process.Kill() }()

	subs := fleetStream(res)
	var checks []Check
	killAfter := 0
	if fl.KillShard != spec.Unset {
		killAfter = fl.KillAfter
		if killAfter >= len(subs) {
			checks = append(checks, checkBound("fleet.kill-recover",
				fmt.Sprintf("SIGKILL after %d acked messages lands mid-stream", killAfter),
				fmt.Sprintf("stream only has %d messages", len(subs)), false))
			killAfter = 0
		}
	}

	clients := map[string]*analyzerd.ReliableClient{}
	client := func(host string) (*analyzerd.ReliableClient, error) {
		if rc, ok := clients[host]; ok {
			return rc, nil
		}
		rc, err := analyzerd.NewReliableClient(d.addr, analyzerd.ClientConfig{
			ID:          host,
			MaxAttempts: 40,
			BackoffBase: 20 * time.Millisecond,
			BackoffMax:  500 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		clients[host] = rc
		return rc, nil
	}
	defer func() {
		for _, rc := range clients {
			_ = rc.Close()
		}
	}()

	// Mirror the sourced stream the shards should collectively retain:
	// per-client seqs count up in submission order.
	seqs := map[string]int64{}
	var sourced []wire.SourcedMessage
	killed := false
	for i, sub := range subs {
		rc, err := client(sub.host)
		if err != nil {
			return append(checks, fail(fmt.Sprintf("fleet.connect[%s]", sub.host), "client connected", err)...)
		}
		if err := sub.send(rc); err != nil {
			return append(checks, fail(fmt.Sprintf("fleet.send[%d]", i), "message accepted", err)...)
		}
		if err := rc.Flush(); err != nil {
			return append(checks, fail(fmt.Sprintf("fleet.ack[%d]", i), "message acked", err)...)
		}
		seqs[sub.host]++
		sm := sub.msg
		sm.Client, sm.Seq = sub.host, seqs[sub.host]
		sourced = append(sourced, sm)

		if killAfter > 0 && i+1 == killAfter {
			pid := d.shardPid(fl.KillShard)
			if pid <= 0 {
				return append(checks, fail("fleet.kill-recover",
					fmt.Sprintf("shard %d announced a pid", fl.KillShard),
					fmt.Errorf("no announce line for shard %d", fl.KillShard))...)
			}
			if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
				return append(checks, fail("fleet.kill-recover", "shard SIGKILLed", err)...)
			}
			//lint:ignore nosystime bounding a real supervised restart, not simulated time
			deadline := time.Now().Add(e2eStartupTimeout)
			for d.shardPid(fl.KillShard) == pid {
				//lint:ignore nosystime bounding a real supervised restart, not simulated time
				if time.Now().After(deadline) {
					return append(checks, fail("fleet.kill-recover", "supervisor restarted the shard",
						fmt.Errorf("shard %d never re-announced after SIGKILL", fl.KillShard))...)
				}
				//lint:ignore nosystime pacing a poll for a real subprocess restart
				time.Sleep(10 * time.Millisecond)
			}
			killed = true
		}
	}
	hosts := make([]string, 0, len(clients))
	for host := range clients {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		if err := clients[host].Close(); err != nil {
			return append(checks, fail(fmt.Sprintf("fleet.close[%s]", host), "client closed cleanly", err)...)
		}
	}
	lines, err := d.terminate()
	if err != nil {
		return append(checks, fail("fleet.drain", "cluster drained and exited 0", err)...)
	}
	if killed {
		checks = append(checks, checkBound("fleet.kill-recover",
			fmt.Sprintf("shard %d SIGKILLed after %d acked messages and restarted", fl.KillShard, fl.KillAfter),
			fmt.Sprintf("shard %d SIGKILLed after %d acked messages and restarted", fl.KillShard, fl.KillAfter), true))
	}
	if fl.ResizeTo > 0 {
		// The cluster prints its resize report before draining; its
		// absence means the rebalance never completed.
		wantResized := fmt.Sprintf("resized to %d shards (epoch 1)", fl.ResizeTo)
		gotResized := "(no resize line)"
		for _, l := range lines {
			if strings.HasPrefix(l, "resized to ") {
				gotResized = l
			}
		}
		checks = append(checks, check("fleet.resized", wantResized, gotResized))
	}
	if fl.RebalanceKillPhase != "" {
		// The chaos kill must have fired and the supervisor brought the
		// shard back: that shard announces at least twice.
		field := "fleet.rebalance-kill"
		want := fmt.Sprintf("shard %d SIGKILLed at %s and restarted", fl.RebalanceKillShard, fl.RebalanceKillPhase)
		if n := d.shardAnnounces(fl.RebalanceKillShard); n >= 2 {
			checks = append(checks, checkBound(field, want, want, true))
		} else {
			checks = append(checks, checkBound(field, want,
				fmt.Sprintf("shard %d announced %d time(s)", fl.RebalanceKillShard, n), false))
		}
	}

	// Local canonical merge of the mirrored sourced stream: what the fleet
	// must reconstruct no matter how it was sharded, killed, or recovered.
	local, stats := wire.MergeShardStates([]*wire.ShardState{{
		Format:   wire.ShardStateFormat,
		Map:      wire.ShardMap{Shards: fl.Shards, Replicas: fl.Replicas},
		Messages: sourced,
	}})

	wantIngest := fmt.Sprintf("ingested: %d step records, %d reports, %d collective flows",
		stats.Records, stats.Reports, stats.CFs)
	gotIngest := "(no ingest line)"
	var jsonLines []string
	for i, l := range lines {
		if strings.HasPrefix(l, "ingested: ") {
			gotIngest = l
			continue
		}
		if strings.HasPrefix(l, "{") {
			jsonLines = lines[i:]
			break
		}
	}
	gotJSON := strings.Join(jsonLines, "\n") + "\n"

	if fl.HoldShard != spec.Unset {
		// Degraded drill: a full-coverage ingest check would be wrong (the
		// held shard's slice is gone); assert the diagnosis is honest about
		// it instead — present, parseable, and confidence < 1.
		var diag struct {
			Confidence *float64 `json:"confidence"`
		}
		if err := json.Unmarshal([]byte(gotJSON), &diag); err != nil {
			return append(checks, fail("fleet.degraded", "degraded diagnosis JSON parseable", err)...)
		}
		got := "confidence absent (full confidence)"
		if diag.Confidence != nil {
			got = fmt.Sprintf("confidence %v", *diag.Confidence)
			if *diag.Confidence > 0 && *diag.Confidence < 1 {
				got = "confidence in (0, 1)"
			}
		}
		checks = append(checks, check("fleet.degraded", "confidence in (0, 1)", got))
		return checks
	}

	checks = append(checks, check("fleet.ingested", wantIngest, gotIngest))

	// Parity: the cluster's merged diagnosis must be byte-identical to the
	// local canonical merge's analysis.
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", " ")
	localDiag := local.Analyze()
	if err := enc.Encode(wire.FromDiagnosis(localDiag)); err != nil {
		return append(checks, fail("fleet.diagnosis-parity", "local merged diagnosis rendered", err)...)
	}
	parity := "byte-identical merged diagnosis"
	if gotJSON != want.String() {
		parity = fmt.Sprintf("cluster diagnosis differs from the local canonical merge (%d vs %d bytes)",
			len(gotJSON), want.Len())
	}
	checks = append(checks, check("fleet.diagnosis-parity", "byte-identical merged diagnosis", parity))

	// The fleet's merged diagnosis must reach the same verdict as the
	// in-process run.
	checks = append(checks, check("fleet.outcome",
		res.Outcome.String(), scenario.Evaluate(cs, localDiag).String()))
	return checks
}
