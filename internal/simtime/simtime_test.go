package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var t0 Time
	t1 := t0.Add(3 * time.Microsecond)
	if got := t1.Sub(t0); got != 3*time.Microsecond {
		t.Fatalf("Sub = %v, want 3µs", got)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatalf("Before ordering wrong: t0=%v t1=%v", t0, t1)
	}
	if !t1.After(t0) {
		t.Fatalf("After ordering wrong")
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500).String(); got != "1.5µs" {
		t.Fatalf("String = %q, want 1.5µs", got)
	}
	if got := Never.String(); got != "never" {
		t.Fatalf("Never.String = %q", got)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{100 * Gbps, "100Gbps"},
		{40 * Mbps, "40Mbps"},
		{9 * Kbps, "9Kbps"},
		{123, "123bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.r), got, c.want)
		}
	}
}

func TestTransmit(t *testing.T) {
	// 1250 bytes at 100Gbps = 10000 bits / 1e11 bps = 100ns.
	if got := (100 * Gbps).Transmit(int64(1250)); got != 100*time.Nanosecond {
		t.Fatalf("Transmit = %v, want 100ns", got)
	}
	// 1 MiB at 1Gbps = 8*2^20 / 1e9 s = 8.388608ms
	if got := (1 * Gbps).Transmit(int64(1 << 20)); got != 8388608*time.Nanosecond {
		t.Fatalf("Transmit = %v, want 8.388608ms", got)
	}
	if got := Rate(0).Transmit(int64(1)); got <= 0 {
		t.Fatalf("zero-rate Transmit should be huge, got %v", got)
	}
}

func TestBytesIn(t *testing.T) {
	// 100Gbps for 1µs = 12500 bytes.
	if got := (100 * Gbps).BytesIn(time.Microsecond); got != 12500 {
		t.Fatalf("BytesIn = %d, want 12500", got)
	}
	if got := (100 * Gbps).BytesIn(0); got != 0 {
		t.Fatalf("BytesIn(0) = %d, want 0", got)
	}
	if got := Rate(0).BytesIn(time.Second); got != 0 {
		t.Fatalf("zero rate BytesIn = %d, want 0", got)
	}
}

func TestScale(t *testing.T) {
	if got := (100 * Gbps).Scale(1, 2); got != 50*Gbps {
		t.Fatalf("Scale = %v, want 50Gbps", got)
	}
	if got := (100 * Gbps).Scale(3, 0); got != 100*Gbps {
		t.Fatalf("Scale with zero den should be identity, got %v", got)
	}
}

// Property: Transmit then BytesIn round-trips within one byte of rounding
// error for realistic sizes and rates.
func TestTransmitBytesInRoundTrip(t *testing.T) {
	f := func(sz uint16, rsel uint8) bool {
		size := int(sz)%65536 + 1
		rates := []Rate{1 * Gbps, 10 * Gbps, 25 * Gbps, 40 * Gbps, 100 * Gbps}
		r := rates[int(rsel)%len(rates)]
		d := r.Transmit(int64(size))
		back := r.BytesIn(d)
		// Truncating to whole nanoseconds loses up to one nanosecond's
		// worth of bytes (r/8e9), plus one byte of integer rounding.
		quantum := int64(r)/(8*1e9) + 1
		diff := back - int64(size)
		return diff >= -quantum && diff <= quantum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Transmit is additive — transmitting a+b takes the same time as
// a then b, within 1ns rounding.
func TestTransmitAdditive(t *testing.T) {
	f := func(a, b uint16) bool {
		r := 100 * Gbps
		whole := r.Transmit(int64(a) + int64(b))
		split := r.Transmit(int64(a)) + r.Transmit(int64(b))
		diff := whole - split
		return diff >= -time.Nanosecond && diff <= time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
