// Package simtime provides the time, duration and rate arithmetic used by
// the discrete-event network simulator. All simulation timestamps are
// nanoseconds from the start of the simulation, kept in int64 so that event
// ordering is exact and runs are reproducible.
package simtime

import (
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the start of
// the run. The zero Time is the start of the simulation.
type Time int64

// Duration is a span of simulation time. It aliases time.Duration so the
// stdlib constants (time.Microsecond etc.) compose directly.
type Duration = time.Duration

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }

// String renders the timestamp as a duration offset, e.g. "1.5ms".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// Rate is a transmission rate in bits per second.
type Rate int64

// Common rates used by the experiments.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// String renders the rate in the most natural unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Transmit returns the serialization delay of size bytes at rate r.
// A zero or negative rate yields Never-like huge duration; callers must
// configure links with positive rates.
func (r Rate) Transmit(size int64) Duration {
	if r <= 0 {
		return Duration(1<<62 - 1)
	}
	bits := int64(size) * 8
	// bits / (bits/sec) in nanoseconds: bits * 1e9 / r, computed to avoid
	// overflow for realistic sizes (size < 2^40, r >= 1e3).
	sec := bits / int64(r)
	rem := bits % int64(r)
	return Duration(sec)*time.Second + Duration(rem*int64(time.Second)/int64(r))
}

// BytesIn returns how many whole bytes rate r moves in duration d.
func (r Rate) BytesIn(d Duration) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	// bytes = r/8 * seconds = r * d_ns / (8 * 1e9)
	return int64(r) / 8 * int64(d) / int64(time.Second)
}

// Scale returns r scaled by num/den, guarding against zero denominators.
func (r Rate) Scale(num, den int64) Rate {
	if den == 0 {
		return r
	}
	return Rate(int64(r) * num / den)
}
