package simtime

import "time"

// Stopwatch measures elapsed host wall-clock time. Simulation code never
// reads the system clock directly (the nosystime invariant); the few places
// that legitimately need real elapsed time — the Fig 11 host-overhead
// measurement — take a Stopwatch so tests can substitute a fake and so every
// wall-clock read in the tree funnels through this package, the one
// sanctioned gateway.
type Stopwatch interface {
	// Start resets the stopwatch to the current instant.
	Start()
	// Elapsed returns the time since the last Start (or construction).
	Elapsed() Duration
}

// NewSystemStopwatch returns a Stopwatch backed by the system monotonic
// clock, started at the current instant.
func NewSystemStopwatch() Stopwatch {
	return &systemStopwatch{start: time.Now()}
}

type systemStopwatch struct{ start time.Time }

func (s *systemStopwatch) Start()            { s.start = time.Now() }
func (s *systemStopwatch) Elapsed() Duration { return time.Since(s.start) }
