// Package workload generates the empirical collective-communication
// workload of §IV-A, derived from the paper's cited analysis of LLM
// training traffic: 97% of collective operations are AllReduce or
// AllGather, each moving 360 MB per step, with the remainder modelled as
// ReduceScatter. The generator is deterministic per seed and emits
// decomposition-ready specs.
package workload

import (
	"math/rand"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/topo"
)

// Mix sets the operation proportions. Fractions must sum to ≤ 1; the
// remainder becomes ReduceScatter.
type Mix struct {
	AllReduce float64
	AllGather float64
}

// PaperMix is the §IV-A distribution: 97% AllReduce/AllGather, split evenly.
func PaperMix() Mix { return Mix{AllReduce: 0.485, AllGather: 0.485} }

// Generator produces collective specs.
type Generator struct {
	rng   *rand.Rand
	mix   Mix
	ranks []topo.NodeID
	bytes int64
	alg   collective.Algorithm
	next  uint16
}

// NewGenerator builds a deterministic generator. stepBytes is the per-step
// per-flow volume (paper: 360 MB); each generated spec receives a distinct
// port base so concurrent collectives never share 5-tuples.
func NewGenerator(seed int64, mix Mix, ranks []topo.NodeID, stepBytes int64, alg collective.Algorithm) *Generator {
	return &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		mix:   mix,
		ranks: ranks,
		bytes: stepBytes,
		alg:   alg,
		next:  5000,
	}
}

// Next returns the following collective spec in the stream.
func (g *Generator) Next() collective.Spec {
	op := collective.ReduceScatter
	switch r := g.rng.Float64(); {
	case r < g.mix.AllReduce:
		op = collective.AllReduce
	case r < g.mix.AllReduce+g.mix.AllGather:
		op = collective.AllGather
	}
	base := g.next
	g.next += 200 // room for 200 steps per collective
	return collective.Spec{
		Op:    op,
		Alg:   g.alg,
		Ranks: g.ranks,
		Bytes: g.bytes * int64(len(g.ranks)),
		Base:  base,
	}
}

// Batch returns n consecutive specs.
func (g *Generator) Batch(n int) []collective.Spec {
	out := make([]collective.Spec, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
