package workload

import (
	"testing"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/topo"
)

func ranks(n int) []topo.NodeID {
	out := make([]topo.NodeID, n)
	for i := range out {
		out[i] = topo.NodeID(i)
	}
	return out
}

func TestMixProportions(t *testing.T) {
	g := NewGenerator(1, PaperMix(), ranks(8), 360e6, collective.Ring)
	counts := map[collective.Op]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		counts[g.Next().Op]++
	}
	arag := float64(counts[collective.AllReduce]+counts[collective.AllGather]) / n
	if arag < 0.95 || arag > 0.99 {
		t.Fatalf("AllReduce+AllGather fraction = %v, want ≈0.97", arag)
	}
	if counts[collective.ReduceScatter] == 0 {
		t.Fatalf("no ReduceScatter in the residual 3%%")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(7, PaperMix(), ranks(8), 1e6, collective.Ring).Batch(50)
	b := NewGenerator(7, PaperMix(), ranks(8), 1e6, collective.Ring).Batch(50)
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Base != b[i].Base {
			t.Fatalf("generators diverge at %d", i)
		}
	}
}

func TestDistinctPortBases(t *testing.T) {
	g := NewGenerator(3, PaperMix(), ranks(4), 1e6, collective.Ring)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		s := g.Next()
		if seen[s.Base] {
			t.Fatalf("duplicate port base %d", s.Base)
		}
		seen[s.Base] = true
	}
}

func TestSpecsDecompose(t *testing.T) {
	g := NewGenerator(5, PaperMix(), ranks(8), 8e6, collective.Ring)
	for _, spec := range g.Batch(20) {
		schs, err := collective.Decompose(spec)
		if err != nil {
			t.Fatalf("spec %+v failed to decompose: %v", spec, err)
		}
		if len(schs) != 8 {
			t.Fatalf("schedules = %d", len(schs))
		}
	}
}
