package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing int64. Safe for concurrent use;
// all methods are no-ops on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored — counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. Safe for concurrent use; no-op on nil.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates int64 observations into fixed cumulative buckets.
// Safe for concurrent use; no-op on nil.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // ascending upper bounds; +Inf bucket is implicit
	counts []int64 // len(bounds)+1, last is the overflow bucket
	sum    int64
	count  int64
}

// Observe folds one observation in.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// Le is the inclusive upper bound.
	Le int64
	// Count is the cumulative count of observations <= Le.
	Count int64
}

// Sample is one metric's point-in-time state.
type Sample struct {
	Name string
	Help string
	Kind Kind
	// Value holds the counter or gauge value.
	Value int64
	// Buckets, Sum, and Count hold histogram state (cumulative buckets,
	// excluding the implicit +Inf bucket whose count is Count).
	Buckets []Bucket
	Sum     int64
	Count   int64
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of a histogram
// sample by linear interpolation inside the cumulative bucket holding
// that rank — the histogram_quantile estimator. Observations are assumed
// non-negative (the first bucket interpolates from 0). Ranks that land in
// the implicit +Inf bucket clamp to the highest finite bound, so the
// estimate never invents a value beyond what the buckets can resolve. An
// empty or non-histogram sample yields 0.
func (s Sample) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	last := s.Buckets[len(s.Buckets)-1]
	if rank > float64(last.Count) {
		return float64(last.Le)
	}
	i := sort.Search(len(s.Buckets), func(i int) bool {
		return float64(s.Buckets[i].Count) >= rank
	})
	upper := float64(s.Buckets[i].Le)
	lower, prev := 0.0, int64(0)
	if i > 0 {
		lower = float64(s.Buckets[i-1].Le)
		prev = s.Buckets[i-1].Count
	}
	in := s.Buckets[i].Count - prev
	if in == 0 {
		return upper
	}
	return lower + (upper-lower)*(rank-float64(prev))/float64(in)
}

type metricEntry struct {
	name string
	help string
	kind Kind
	ctr  *Counter
	gge  *Gauge
	fn   func() int64
	hist *Histogram
}

// Registry holds named metrics. Registration is get-or-create and safe
// for concurrent use; every method no-ops on a nil receiver so an
// instrumented call site never branches on whether metrics are enabled.
type Registry struct {
	mu sync.Mutex
	by map[string]*metricEntry
	// conflicts counts kind-mismatched re-registrations. It lives outside
	// the by map (lookup already holds mu, and a conflict must never fail)
	// and is synthesized into snapshots as ConflictMetric once non-zero,
	// so misregistrations are observable instead of silently detached.
	conflicts Counter
}

// ConflictMetric names the self-metric counting kind-mismatched
// re-registrations (see Registry.lookup).
const ConflictMetric = "obs_registration_conflicts"

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: map[string]*metricEntry{}}
}

// lookup returns the entry for name, creating it with create when absent.
// A name registered under a different kind yields a fresh detached entry
// (recorded nowhere) rather than a panic — the nopanic invariant; the
// mismatch is a programming error, surfaced by the ConflictMetric counter
// on top of the missing metric.
func (r *Registry) lookup(name string, kind Kind, create func() *metricEntry) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.by[name]; ok {
		if e.kind == kind {
			return e
		}
		r.conflicts.Inc()
		return create()
	}
	e := create()
	r.by[name] = e
	return e
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, KindCounter, func() *metricEntry {
		return &metricEntry{name: name, help: help, kind: KindCounter, ctr: &Counter{}}
	})
	return e.ctr
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, KindGauge, func() *metricEntry {
		return &metricEntry{name: name, help: help, kind: KindGauge, gge: &Gauge{}}
	})
	return e.gge
}

// GaugeFunc registers a gauge computed at snapshot time. Re-registering
// the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	e := r.lookup(name, KindGauge, func() *metricEntry {
		return &metricEntry{name: name, help: help, kind: KindGauge, fn: fn}
	})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram with the given ascending upper
// bounds, registering it on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, KindHistogram, func() *metricEntry {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		return &metricEntry{name: name, help: help, kind: KindHistogram,
			hist: &Histogram{bounds: b, counts: make([]int64, len(b)+1)}}
	})
	return e.hist
}

// CounterSet returns a fixed-size indexed family of counters — one per
// member of a known enumeration, such as the shards of a diagnosis fleet.
// Member i is registered as "<name>_<i>" so the family renders as ordinary
// flat metrics everywhere (Prometheus, expvar, Flatten). The whole family
// is registered up front: a member that never fires still exports 0, which
// keeps fleet dashboards honest about shards that did no work. Like every
// registration it is get-or-create, and a nil receiver returns a slice of
// nil counters that no-op.
func (r *Registry) CounterSet(name, help string, n int) []*Counter {
	if n <= 0 {
		return nil
	}
	out := make([]*Counter, n)
	if r == nil {
		return out
	}
	for i := range out {
		out[i] = r.Counter(fmt.Sprintf("%s_%d", name, i), help)
	}
	return out
}

// Snapshot returns every metric's current state, sorted by name.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.by))
	for _, e := range r.by {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Help: e.help, Kind: e.kind}
		switch {
		case e.ctr != nil:
			s.Value = e.ctr.Value()
		case e.fn != nil:
			s.Value = e.fn()
		case e.gge != nil:
			s.Value = e.gge.Value()
		case e.hist != nil:
			e.hist.mu.Lock()
			cum := int64(0)
			for i, b := range e.hist.bounds {
				cum += e.hist.counts[i]
				s.Buckets = append(s.Buckets, Bucket{Le: b, Count: cum})
			}
			s.Sum = e.hist.sum
			s.Count = e.hist.count
			e.hist.mu.Unlock()
		}
		out = append(out, s)
	}
	if c := r.conflicts.Value(); c > 0 {
		// Synthesized only once a conflict happened, so clean registries
		// render exactly as before; inserted in name order to keep the
		// sorted-snapshot contract.
		s := Sample{Name: ConflictMetric, Help: "kind-mismatched metric re-registrations",
			Kind: KindCounter, Value: c}
		i := sort.Search(len(out), func(i int) bool { return out[i].Name >= s.Name })
		out = append(out, Sample{})
		copy(out[i+1:], out[i:])
		out[i] = s
	}
	return out
}

// Flatten renders the snapshot as a flat name→value map: counters and
// gauges directly, histograms as <name>_sum, <name>_count, and one
// cumulative `<name>_bucket{le="B"}` key per bound plus the implicit
// `{le="+Inf"}` — the same series WritePrometheus renders, so bundles and
// expvar carry full distributions, not just the mean. The map is what
// result bundles embed (encoding/json sorts the keys).
func (r *Registry) Flatten() map[string]int64 {
	if r == nil {
		return nil
	}
	out := map[string]int64{}
	for _, s := range r.Snapshot() {
		if s.Kind == KindHistogram {
			for _, b := range s.Buckets {
				out[fmt.Sprintf("%s_bucket{le=%q}", s.Name, strconv.FormatInt(b.Le, 10))] = b.Count
			}
			out[s.Name+`_bucket{le="+Inf"}`] = s.Count
			out[s.Name+"_sum"] = s.Sum
			out[s.Name+"_count"] = s.Count
			continue
		}
		out[s.Name] = s.Value
	}
	return out
}
