// Package obs is the repository's zero-dependency observability layer:
// sim-time tracing (Chrome trace-event JSON, Perfetto-loadable), a
// counters/gauges/histograms registry with Prometheus-text and expvar
// rendering, and structured logging with a sim-time attribute.
//
// Everything here obeys the tree's determinism invariants. Trace
// timestamps, metric values, and log attributes derive exclusively from
// simulation time — the package never reads the host clock (enforced by
// the nosystime and obswallclock lint rules) — so a trace file is
// byte-identical across runs and worker counts, and an enabled scope
// never perturbs the simulation it observes. Every recording method is a
// no-op on a nil receiver, so instrumented code calls unconditionally and
// a disabled scope costs a nil check.
package obs

import "log/slog"

// Scope bundles the three observability facilities threaded through a
// run. Any field may be nil; the zero Scope (and a nil *Scope) disables
// everything.
type Scope struct {
	// Trace receives sim-time spans and instants.
	Trace *Tracer
	// Metrics receives counters, gauges, and histograms.
	Metrics *Registry
	// Log receives structured log records; nil discards them.
	Log *slog.Logger
}

// T returns the scope's tracer; nil (a valid no-op tracer) when the scope
// is nil or tracing is off.
func (s *Scope) T() *Tracer {
	if s == nil {
		return nil
	}
	return s.Trace
}

// M returns the scope's registry; nil (a valid no-op registry) when the
// scope is nil or metrics are off.
func (s *Scope) M() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// L returns the scope's logger, or a discard logger when unset — callers
// never need a nil check.
func (s *Scope) L() *slog.Logger {
	if s == nil || s.Log == nil {
		return nopLogger
	}
	return s.Log
}

// Enabled reports whether any facility is active.
func (s *Scope) Enabled() bool {
	return s != nil && (s.Trace != nil || s.Metrics != nil || s.Log != nil)
}
