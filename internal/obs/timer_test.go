package obs

import (
	"testing"
)

// fakeClock is a deterministic injected nanosecond source.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

func TestTimerObserves(t *testing.T) {
	r := NewRegistry()
	clk := &fakeClock{}
	tm := NewTimer(r.Histogram("stage_ns", "", WallBuckets()), clk.now)
	start := tm.Begin()
	clk.t += 1000
	tm.End(start)
	clk.t += 5
	start = tm.Begin()
	clk.t += 200
	tm.End(start)

	s := r.Snapshot()[0]
	if s.Count != 2 || s.Sum != 1200 {
		t.Errorf("count/sum = %d/%d, want 2/1200", s.Count, s.Sum)
	}
	if got := s.Quantile(1); got > 1024 || got <= 512 {
		t.Errorf("q1 = %v, want within the 1000ns bucket (512, 1024]", got)
	}
}

func TestTimerNilSafe(t *testing.T) {
	var tm *Timer
	tm.End(tm.Begin()) // must not panic, must not read any clock

	if NewTimer(nil, (&fakeClock{}).now) != nil {
		t.Error("NewTimer with nil histogram should be nil")
	}
	if NewTimer(NewRegistry().Histogram("h", "", []int64{1}), nil) != nil {
		t.Error("NewTimer with nil clock should be nil")
	}
}

func TestStagesNilAndRegistration(t *testing.T) {
	if NewStages(nil, (&fakeClock{}).now) != nil {
		t.Error("NewStages with nil registry should be nil")
	}
	if NewStages(NewRegistry(), nil) != nil {
		t.Error("NewStages with nil clock should be nil")
	}
	var st *Stages
	// Every timer on a nil bundle is nil and therefore a no-op; this is
	// the shape the kernel packages rely on for the uninstrumented path.
	for _, tm := range []*Timer{
		st.timer(StageEventPush), st.timer(StageDiagnose),
	} {
		tm.End(tm.Begin())
	}

	r := NewRegistry()
	clk := &fakeClock{}
	st = NewStages(r, clk.now)
	for _, name := range StageNames() {
		tm := st.timer(name)
		if tm == nil {
			t.Fatalf("stage %q has no timer", name)
		}
		start := tm.Begin()
		clk.t += 100
		tm.End(start)
	}
	snap := r.Snapshot()
	if len(snap) != len(StageNames()) {
		t.Fatalf("registered %d stage histograms, want %d", len(snap), len(StageNames()))
	}
	for _, s := range snap {
		if s.Count != 1 {
			t.Errorf("%s count = %d, want 1", s.Name, s.Count)
		}
	}
	// Conflict-free: re-building stages over the same registry reuses the
	// histograms instead of clashing.
	NewStages(r, clk.now)
	if got := r.Flatten()[ConflictMetric]; got != 0 {
		t.Errorf("re-registering stages raised %d conflicts, want 0", got)
	}
}
