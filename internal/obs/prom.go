package obs

import (
	"bufio"
	"expvar"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers and one sample line per
// metric, sorted by name. Histograms render cumulative _bucket lines plus
// _sum and _count. The rendering is deterministic for a fixed registry
// state — integer values only, sorted names.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(s.Help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(s.Name)
		bw.WriteByte(' ')
		bw.WriteString(s.Kind.String())
		bw.WriteByte('\n')
		if s.Kind == KindHistogram {
			for _, b := range s.Buckets {
				bw.WriteString(s.Name)
				bw.WriteString(`_bucket{le="`)
				bw.WriteString(strconv.FormatInt(b.Le, 10))
				bw.WriteString(`"} `)
				bw.WriteString(strconv.FormatInt(b.Count, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(s.Name)
			bw.WriteString(`_bucket{le="+Inf"} `)
			bw.WriteString(strconv.FormatInt(s.Count, 10))
			bw.WriteByte('\n')
			bw.WriteString(s.Name)
			bw.WriteString("_sum ")
			bw.WriteString(strconv.FormatInt(s.Sum, 10))
			bw.WriteByte('\n')
			bw.WriteString(s.Name)
			bw.WriteString("_count ")
			bw.WriteString(strconv.FormatInt(s.Count, 10))
			bw.WriteByte('\n')
			continue
		}
		bw.WriteString(s.Name)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(s.Value, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// PublishExpvar exposes the registry's flattened snapshot as an expvar
// variable. Re-publishing an existing name is a no-op (expvar.Publish
// would panic), so restarting servers in one process is safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Flatten() }))
}

// Handler serves the registry as Prometheus text.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) // scrape body; the client vanished if this fails
	})
}

// Mux returns the standard introspection surface every daemon serves:
// /metrics (Prometheus text), /debug/vars (expvar JSON), and
// /debug/pprof/* (runtime profiles) — the live side of the observability
// layer, mounted explicitly so nothing leaks onto http.DefaultServeMux.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
