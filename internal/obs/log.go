package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"sync"

	"vedrfolnir/internal/simtime"
)

// NewLogger returns a structured logger writing logfmt-style lines. When
// now is non-nil, every record carries a leading sim=<duration> attribute
// read from the simulation clock at handle time. The handler ignores the
// record's wall-clock timestamp entirely — output for a deterministic run
// is byte-identical across invocations.
func NewLogger(w io.Writer, level slog.Level, now func() simtime.Time) *slog.Logger {
	return slog.New(&textHandler{mu: &sync.Mutex{}, w: w, level: level, now: now})
}

// nopLogger discards everything; Scope.L returns it when no logger is
// configured so call sites never nil-check.
var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards every record — the default
// for components whose callers did not configure logging.
func NopLogger() *slog.Logger { return nopLogger }

// WithSimClock returns a copy of l whose records carry sim=<now()> read
// at handle time — how a run binds its kernel clock to a logger the
// caller constructed before the kernel existed. Loggers not built by
// NewLogger are returned unchanged.
func WithSimClock(l *slog.Logger, now func() simtime.Time) *slog.Logger {
	h, ok := l.Handler().(*textHandler)
	if !ok || now == nil {
		return l
	}
	nh := *h
	nh.now = now
	return slog.New(&nh)
}

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

type textHandler struct {
	mu     *sync.Mutex
	w      io.Writer
	level  slog.Level
	now    func() simtime.Time
	prefix string      // dotted group path
	attrs  []slog.Attr // pre-bound attributes, already prefixed
}

func (h *textHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.level }

func (h *textHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		a.Key = h.prefix + a.Key
		nh.attrs = append(nh.attrs, a)
	}
	return &nh
}

func (h *textHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.prefix = h.prefix + name + "."
	return &nh
}

func (h *textHandler) Handle(_ context.Context, r slog.Record) error {
	buf := make([]byte, 0, 128)
	if h.now != nil {
		buf = append(buf, "sim="...)
		buf = append(buf, simtime.Duration(h.now()).String()...)
		buf = append(buf, ' ')
	}
	buf = append(buf, "level="...)
	buf = append(buf, r.Level.String()...)
	buf = append(buf, " msg="...)
	buf = appendLogValue(buf, r.Message)
	for _, a := range h.attrs {
		buf = appendAttr(buf, a, "")
	}
	r.Attrs(func(a slog.Attr) bool {
		buf = appendAttr(buf, a, h.prefix)
		return true
	})
	buf = append(buf, '\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := h.w.Write(buf)
	return err
}

func appendAttr(buf []byte, a slog.Attr, prefix string) []byte {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		sub := prefix + a.Key
		if sub != "" {
			sub += "."
		}
		for _, ga := range v.Group() {
			buf = appendAttr(buf, ga, sub)
		}
		return buf
	}
	buf = append(buf, ' ')
	buf = append(buf, prefix...)
	buf = append(buf, a.Key...)
	buf = append(buf, '=')
	switch v.Kind() {
	case slog.KindInt64:
		buf = strconv.AppendInt(buf, v.Int64(), 10)
	case slog.KindUint64:
		buf = strconv.AppendUint(buf, v.Uint64(), 10)
	case slog.KindBool:
		buf = strconv.AppendBool(buf, v.Bool())
	case slog.KindDuration:
		buf = append(buf, v.Duration().String()...)
	case slog.KindString:
		buf = appendLogValue(buf, v.String())
	default:
		buf = appendLogValue(buf, fmt.Sprintf("%v", v.Any()))
	}
	return buf
}

// appendLogValue quotes a string only when it needs it, logfmt-style.
func appendLogValue(buf []byte, s string) []byte {
	plain := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			plain = false
			break
		}
	}
	if plain {
		return append(buf, s...)
	}
	return strconv.AppendQuote(buf, s)
}
