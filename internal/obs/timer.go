package obs

// Wall-time stage timing for the hot-path performance observability layer
// (cmd/vedrperf). Unlike everything else in this package, stage timers
// record *host* wall-clock durations — they exist to answer "where do the
// nanoseconds go", which sim time cannot. The obswallclock rule still
// holds: obs itself never reads a clock. The nanosecond source is injected
// as a plain func by the caller (internal/perf builds one on the
// sanctioned simtime.Stopwatch gateway), so the recording path here stays
// clock-free and the uninstrumented path — a nil Timer or nil Stages —
// costs a nil check and changes no behaviour.
//
// Stage histograms therefore live in a *dedicated* registry owned by the
// profiling run, never in the deterministic obs.Scope registry whose
// Flatten lands in result bundles: wall times are not reproducible and
// must never leak into byte-identity-checked artifacts (DESIGN.md §16).

// Canonical hot-path stage names. Each becomes a histogram
// "vedr_stage_<name>_ns" in the stage registry.
const (
	StageEventPush        = "event_push"
	StageEventPop         = "event_pop"
	StageFabricForward    = "fabric_forward"
	StageTelemetryCollect = "telemetry_collect"
	StageWaitgraphBuild   = "waitgraph_build"
	StageProvenanceRate   = "provenance_rate"
	StageDiagnose         = "diagnose"
)

// StageNames lists every canonical stage in display order.
func StageNames() []string {
	return []string{
		StageEventPush, StageEventPop, StageFabricForward,
		StageTelemetryCollect, StageWaitgraphBuild, StageProvenanceRate,
		StageDiagnose,
	}
}

// WallBuckets returns the histogram bounds shared by every stage timer:
// exponential powers of two from 64 ns to ~4 s, wide enough for a single
// heap operation and a whole-case diagnosis alike while keeping quantile
// interpolation error within a factor of two.
func WallBuckets() []int64 {
	bounds := make([]int64, 0, 27)
	for b := int64(64); b <= 4<<30; b <<= 1 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Timer observes wall-clock durations of one named stage into a
// histogram. All methods no-op on a nil receiver, so instrumented code
// calls Begin/End unconditionally and the disabled path never touches a
// clock.
type Timer struct {
	h   *Histogram
	now func() int64
}

// NewTimer builds a timer over h using the injected monotonic nanosecond
// source. A nil histogram or clock yields a nil (no-op) timer.
func NewTimer(h *Histogram, now func() int64) *Timer {
	if h == nil || now == nil {
		return nil
	}
	return &Timer{h: h, now: now}
}

// Begin returns the current clock reading (0 on a nil timer).
func (t *Timer) Begin() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// End folds the duration since start into the histogram.
func (t *Timer) End(start int64) {
	if t == nil {
		return
	}
	t.h.Observe(t.now() - start)
}

// Stages bundles one timer per canonical hot-path stage. A nil *Stages
// disables all of them; consumers cache the individual timers (which are
// nil-safe) so the hot path never dereferences the bundle.
type Stages struct {
	EventPush        *Timer
	EventPop         *Timer
	FabricForward    *Timer
	TelemetryCollect *Timer
	WaitgraphBuild   *Timer
	ProvenanceRate   *Timer
	Diagnose         *Timer
}

// WaitgraphTimer, ProvenanceTimer, and DiagnoseTimer are nil-safe field
// accessors for consumers that hold a possibly-nil bundle (a nil struct
// pointer's fields cannot be read directly).
func (s *Stages) WaitgraphTimer() *Timer {
	if s == nil {
		return nil
	}
	return s.WaitgraphBuild
}

// ProvenanceTimer returns the provenance build + rating timer; nil-safe.
func (s *Stages) ProvenanceTimer() *Timer {
	if s == nil {
		return nil
	}
	return s.ProvenanceRate
}

// DiagnoseTimer returns the whole-diagnosis timer; nil-safe.
func (s *Stages) DiagnoseTimer() *Timer {
	if s == nil {
		return nil
	}
	return s.Diagnose
}

// timer maps a canonical stage name to its timer; nil bundle or unknown
// name yields a nil (no-op) timer.
func (s *Stages) timer(stage string) *Timer {
	if s == nil {
		return nil
	}
	switch stage {
	case StageEventPush:
		return s.EventPush
	case StageEventPop:
		return s.EventPop
	case StageFabricForward:
		return s.FabricForward
	case StageTelemetryCollect:
		return s.TelemetryCollect
	case StageWaitgraphBuild:
		return s.WaitgraphBuild
	case StageProvenanceRate:
		return s.ProvenanceRate
	case StageDiagnose:
		return s.Diagnose
	default:
		return nil
	}
}

// NewStages registers the canonical stage histograms in r and returns
// their timers, all reading the injected nanosecond source. A nil
// registry or clock returns nil — the uninstrumented default.
func NewStages(r *Registry, now func() int64) *Stages {
	if r == nil || now == nil {
		return nil
	}
	t := func(stage, help string) *Timer {
		return NewTimer(r.Histogram("vedr_stage_"+stage+"_ns", help, WallBuckets()), now)
	}
	return &Stages{
		EventPush:        t(StageEventPush, "wall time of one event-queue push (ns)"),
		EventPop:         t(StageEventPop, "wall time of one event-queue pop (ns)"),
		FabricForward:    t(StageFabricForward, "wall time of one switch forwarding decision (ns)"),
		TelemetryCollect: t(StageTelemetryCollect, "wall time of one telemetry poll (ns)"),
		WaitgraphBuild:   t(StageWaitgraphBuild, "wall time of one waiting-graph build + critical path (ns)"),
		ProvenanceRate:   t(StageProvenanceRate, "wall time of provenance build + contributor rating (ns)"),
		Diagnose:         t(StageDiagnose, "wall time of one full diagnosis (ns)"),
	}
}
