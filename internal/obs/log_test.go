package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"vedrfolnir/internal/simtime"
)

func TestLoggerSimTime(t *testing.T) {
	var buf bytes.Buffer
	clock := simtime.Time(1_500_000)
	log := NewLogger(&buf, slog.LevelInfo, func() simtime.Time { return clock })
	log.Info("step done", "step", 3, "bytes", int64(4096))
	clock = 2_000_000
	log.Warn("rtt over threshold", "rtt", simtime.Duration(250_000))

	want := "sim=1.5ms level=INFO msg=\"step done\" step=3 bytes=4096\n" +
		"sim=2ms level=WARN msg=\"rtt over threshold\" rtt=250µs\n"
	if got := buf.String(); got != want {
		t.Errorf("log output:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerNoClock(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelDebug, nil)
	log.Debug("plain")
	if got := buf.String(); got != "level=DEBUG msg=plain\n" {
		t.Errorf("got %q", got)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn, nil)
	log.Info("dropped")
	log.Warn("kept")
	if got := buf.String(); got != "level=WARN msg=kept\n" {
		t.Errorf("got %q", got)
	}
}

func TestLoggerGroupsAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, nil).
		With("host", 2).WithGroup("poll").With("round", 7)
	log.Info("lost", "ports", 3)
	want := "level=INFO msg=lost host=2 poll.round=7 poll.ports=3\n"
	if got := buf.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo, nil)
	log.Info("msg with spaces", "k", `quote"eq=`, "empty", "", "ok", true)
	want := `level=INFO msg="msg with spaces" k="quote\"eq=" empty="" ok=true` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWithSimClock(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, slog.LevelInfo, nil)
	bound := WithSimClock(base, func() simtime.Time { return 42_000 })
	bound.Info("bound")
	base.Info("unbound")
	want := "sim=42µs level=INFO msg=bound\nlevel=INFO msg=unbound\n"
	if got := buf.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Foreign handlers pass through untouched.
	if got := WithSimClock(NopLogger(), func() simtime.Time { return 1 }); got != NopLogger() {
		t.Error("WithSimClock rewrapped a non-obs handler")
	}
}

func TestNopLogger(t *testing.T) {
	NopLogger().Info("goes nowhere", "k", 1)
	var s *Scope
	s.L().Warn("nil scope logs safely")
	if s.Enabled() || s.T() != nil || s.M() != nil {
		t.Error("nil scope not inert")
	}
	if (&Scope{Trace: NewTracer()}).Enabled() == false {
		t.Error("scope with tracer not enabled")
	}
}

func TestLoggerDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		log := NewLogger(&buf, slog.LevelInfo, func() simtime.Time { return 7 })
		for i := 0; i < 50; i++ {
			log.Info("tick", "i", i)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("identical log sequences rendered differently")
	}
	if strings.Contains(a, "time=") {
		t.Error("wall-clock timestamp leaked into log output")
	}
}
