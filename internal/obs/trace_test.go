package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vedrfolnir/internal/simtime"
)

func buildTrace() *Tracer {
	tr := NewTracer()
	tr.NameProcess(PidCollective, "collective")
	tr.NameProcess(PidKernel, "kernel")
	tr.NameThread(PidCollective, 1, "rank 1")
	tr.NameThread(PidCollective, 0, "rank 0")
	tr.Span(PidCollective, 0, "step", "S0", simtime.Time(1500), simtime.Time(4750),
		I("bytes", 4096), S("flow", "1>2"))
	tr.Instant(PidCollective, 1, "queue", "step-start", simtime.Time(2000), I("step", 1))
	tr.Counter(PidKernel, "events", simtime.Time(3000), I("pending", 7))
	return tr
}

func TestTracerDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical traces rendered differently:\n%s\n----\n%s", a.String(), b.String())
	}
}

func TestTracerFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// The file must be valid JSON: an array of event objects.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	// 2 process_name + 2 thread_name + span + instant + counter.
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7:\n%s", len(events), out)
	}

	// Metadata precedes payload events and is sorted by (pid, tid)
	// regardless of naming order.
	if events[0]["name"] != "process_name" || events[0]["pid"] != float64(0) {
		t.Errorf("event 0 = %v, want kernel process_name first", events[0])
	}
	if events[3]["name"] != "thread_name" || events[3]["tid"] != float64(1) {
		t.Errorf("event 3 = %v, want rank 1 thread_name", events[3])
	}

	// Timestamps are microseconds with a fixed 3-digit nanosecond
	// fraction: 1500 ns -> 1.500, duration 3250 ns -> 3.250.
	if !strings.Contains(out, `"ts":1.500,"dur":3.250`) {
		t.Errorf("span ts/dur not rendered as fixed-point micros:\n%s", out)
	}
	// Instants carry thread scope for Perfetto.
	if !strings.Contains(out, `"ph":"i"`) || !strings.Contains(out, `"s":"t"`) {
		t.Errorf("instant missing ph/s markers:\n%s", out)
	}
	if !strings.Contains(out, `"flow":"1>2"`) || !strings.Contains(out, `"bytes":4096`) {
		t.Errorf("span args missing:\n%s", out)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.NameProcess(1, "x")
	tr.NameThread(1, 2, "y")
	tr.Span(1, 2, "c", "n", 0, 1)
	tr.Instant(1, 2, "c", "n", 0)
	tr.Counter(1, "n", 0)
	if tr.Len() != 0 {
		t.Errorf("nil tracer Len = %d, want 0", tr.Len())
	}
}

func TestAppendMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0.000"},
		{1, "0.001"},
		{999, "0.999"},
		{1000, "1.000"},
		{1500, "1.500"},
		{123456789, "123456.789"},
	}
	for _, c := range cases {
		if got := string(appendMicros(nil, c.ns)); got != c.want {
			t.Errorf("appendMicros(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}
