package obs

import (
	"io"
	"net/http"
)

// HandleHealth mounts the two standard probe endpoints on mux:
//
//   - /healthz — liveness. healthz nil means "alive whenever the process
//     answers"; otherwise a non-nil error renders 503.
//   - /readyz — readiness. readyz reports whether the daemon should
//     receive traffic (e.g. an analyzer that is draining returns an
//     error and flips to 503 so supervisors stop routing to it).
//
// Both endpoints answer 200 with "ok\n" when healthy and 503 with the
// error text when not, matching what kubelet-style probes and the
// supervise loop expect.
func HandleHealth(mux *http.ServeMux, healthz, readyz func() error) {
	mux.Handle("/healthz", probeHandler(healthz))
	mux.Handle("/readyz", probeHandler(readyz))
}

func probeHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = io.WriteString(w, err.Error()+"\n") // probe body; the client vanished if this fails
				return
			}
		}
		_, _ = io.WriteString(w, "ok\n") // probe body; the client vanished if this fails
	})
}
