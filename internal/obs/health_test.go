package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandleHealth(t *testing.T) {
	mux := http.NewServeMux()
	var notReady error
	HandleHealth(mux, nil, func() error { return notReady })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/readyz = %d %q, want 200 ok", code, body)
	}

	notReady = errors.New("draining")
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	// Liveness is independent of readiness.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d while draining, want 200", code)
	}
}
