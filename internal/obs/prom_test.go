package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("vedr_sim_events_total", "kernel events executed").Add(71767)
	r.Gauge("vedr_sim_event_queue_max", "event-queue depth high-water mark").Set(129)
	h := r.Histogram("vedr_step_duration_ns", "collective step execution time (ns)",
		[]int64{1000, 4000, 16000})
	for _, v := range []int64{500, 1500, 2000, 20000} {
		h.Observe(v)
	}
	r.GaugeFunc("vedr_sweep_cases", "planned sweep cases", func() int64 { return 30 })
	return r
}

// TestPrometheusGolden pins the text exposition rendering byte-for-byte:
// sorted names, HELP/TYPE headers, cumulative buckets with a +Inf
// terminator, integer-only values.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus rendering drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestMetricsHandler(t *testing.T) {
	srv := httptest.NewServer(Mux(promRegistry()))
	defer srv.Close()

	resp := httptest.NewRecorder()
	Mux(promRegistry()).ServeHTTP(resp, httptest.NewRequest("GET", "/metrics", nil))
	if ct := resp.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	if !bytes.Contains(resp.Body.Bytes(), []byte("vedr_sim_events_total 71767")) {
		t.Errorf("missing counter in /metrics body:\n%s", resp.Body.String())
	}

	vars := httptest.NewRecorder()
	Mux(promRegistry()).ServeHTTP(vars, httptest.NewRequest("GET", "/debug/vars", nil))
	if vars.Code != 200 {
		t.Errorf("/debug/vars status = %d", vars.Code)
	}

	pprofIdx := httptest.NewRecorder()
	Mux(promRegistry()).ServeHTTP(pprofIdx, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if pprofIdx.Code != 200 {
		t.Errorf("/debug/pprof/ status = %d", pprofIdx.Code)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := promRegistry()
	r.PublishExpvar("obs_test_registry")
	// Re-publishing (same or another registry) must not panic.
	r.PublishExpvar("obs_test_registry")
	NewRegistry().PublishExpvar("obs_test_registry")

	vars := httptest.NewRecorder()
	Mux(r).ServeHTTP(vars, httptest.NewRequest("GET", "/debug/vars", nil))
	var all map[string]json.RawMessage
	if err := json.Unmarshal(vars.Body.Bytes(), &all); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	var flat map[string]int64
	if err := json.Unmarshal(all["obs_test_registry"], &flat); err != nil {
		t.Fatalf("published registry not JSON: %v", err)
	}
	if flat["vedr_sim_events_total"] != 71767 {
		t.Errorf("expvar snapshot = %v", flat)
	}
}
