package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c", "ignored"); again != c {
		t.Error("re-registering a counter did not return the same instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Max(3) // lower: no-op
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}

	r.GaugeFunc("gf", "computed", func() int64 { return 42 })
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []int64{100, 10, 1000}) // unsorted on purpose
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d samples, want 1", len(snap))
	}
	s := snap[0]
	want := []Bucket{{Le: 10, Count: 2}, {Le: 100, Count: 4}, {Le: 1000, Count: 4}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Count != 5 || s.Sum != 5126 {
		t.Errorf("count/sum = %d/%d, want 5/5126", s.Count, s.Sum)
	}
}

func TestSnapshotSortedAndFlatten(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz", "").Set(1)
	r.Counter("aa", "").Add(2)
	r.Histogram("mm", "", []int64{10}).Observe(3)

	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	if !reflect.DeepEqual(names, []string{"aa", "mm", "zz"}) {
		t.Errorf("snapshot order = %v, want sorted by name", names)
	}

	flat := r.Flatten()
	want := map[string]int64{"aa": 2, "zz": 1, "mm_sum": 3, "mm_count": 1}
	if !reflect.DeepEqual(flat, want) {
		t.Errorf("Flatten = %v, want %v", flat, want)
	}
}

// TestKindClashDetaches pins the nopanic behaviour: registering an
// existing name under a different kind yields a working but unrecorded
// metric instead of panicking.
func TestKindClashDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "").Add(3)
	g := r.Gauge("m", "clashing kind")
	g.Set(99) // must not crash, must not clobber the counter
	flat := r.Flatten()
	if flat["m"] != 3 {
		t.Errorf("counter value after clash = %d, want 3", flat["m"])
	}
	if len(flat) != 1 {
		t.Errorf("Flatten = %v, want only the original counter", flat)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	r.GaugeFunc("gf", "", func() int64 { return 1 })
	r.Histogram("h", "", []int64{1}).Observe(1)
	if r.Snapshot() != nil || r.Flatten() != nil {
		t.Error("nil registry snapshot/flatten not nil")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Max(int64(j))
				r.Histogram("h", "", []int64{500}).Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	flat := r.Flatten()
	if flat["c"] != 8000 {
		t.Errorf("counter = %d, want 8000", flat["c"])
	}
	if flat["g"] != 999 {
		t.Errorf("gauge max = %d, want 999", flat["g"])
	}
	if flat["h_count"] != 8000 {
		t.Errorf("histogram count = %d, want 8000", flat["h_count"])
	}
}

func TestCounterSet(t *testing.T) {
	r := NewRegistry()
	set := r.CounterSet("shard_acked", "per-shard acked messages", 3)
	if len(set) != 3 {
		t.Fatalf("CounterSet returned %d counters, want 3", len(set))
	}
	set[1].Add(5)
	set[2].Inc()
	flat := r.Flatten()
	for name, want := range map[string]int64{
		"shard_acked_0": 0, "shard_acked_1": 5, "shard_acked_2": 1,
	} {
		if flat[name] != want {
			t.Errorf("%s = %d, want %d (idle members must still export 0)", name, flat[name], want)
		}
	}
	// Get-or-create: a second registration returns the same counters.
	again := r.CounterSet("shard_acked", "per-shard acked messages", 3)
	if again[1] != set[1] {
		t.Error("re-registration did not return the same counter")
	}
	var nilReg *Registry
	nilSet := nilReg.CounterSet("x", "", 2)
	if len(nilSet) != 2 {
		t.Fatalf("nil registry CounterSet returned %d entries, want 2", len(nilSet))
	}
	nilSet[0].Inc() // must not panic
	if r.CounterSet("y", "", 0) != nil {
		t.Error("empty family should be nil")
	}
}
