package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c", "ignored"); again != c {
		t.Error("re-registering a counter did not return the same instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Max(3) // lower: no-op
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}

	r.GaugeFunc("gf", "computed", func() int64 { return 42 })
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []int64{100, 10, 1000}) // unsorted on purpose
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d samples, want 1", len(snap))
	}
	s := snap[0]
	want := []Bucket{{Le: 10, Count: 2}, {Le: 100, Count: 4}, {Le: 1000, Count: 4}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %v, want %v", s.Buckets, want)
	}
	if s.Count != 5 || s.Sum != 5126 {
		t.Errorf("count/sum = %d/%d, want 5/5126", s.Count, s.Sum)
	}
}

func TestSnapshotSortedAndFlatten(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz", "").Set(1)
	r.Counter("aa", "").Add(2)
	r.Histogram("mm", "", []int64{10}).Observe(3)

	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	if !reflect.DeepEqual(names, []string{"aa", "mm", "zz"}) {
		t.Errorf("snapshot order = %v, want sorted by name", names)
	}

	flat := r.Flatten()
	want := map[string]int64{
		"aa": 2, "zz": 1, "mm_sum": 3, "mm_count": 1,
		`mm_bucket{le="10"}`: 1, `mm_bucket{le="+Inf"}`: 1,
	}
	if !reflect.DeepEqual(flat, want) {
		t.Errorf("Flatten = %v, want %v", flat, want)
	}
}

// TestKindClashDetaches pins the nopanic behaviour: registering an
// existing name under a different kind yields a working but unrecorded
// metric instead of panicking — and the clash itself is counted by the
// obs_registration_conflicts self-metric so it is observable.
func TestKindClashDetaches(t *testing.T) {
	r := NewRegistry()
	if got := r.Flatten(); len(got) != 0 {
		t.Errorf("clean registry Flatten = %v, want empty (no conflict metric yet)", got)
	}
	r.Counter("m", "").Add(3)
	g := r.Gauge("m", "clashing kind")
	g.Set(99) // must not crash, must not clobber the counter
	flat := r.Flatten()
	if flat["m"] != 3 {
		t.Errorf("counter value after clash = %d, want 3", flat["m"])
	}
	if flat[ConflictMetric] != 1 {
		t.Errorf("%s = %d, want 1", ConflictMetric, flat[ConflictMetric])
	}
	if len(flat) != 2 {
		t.Errorf("Flatten = %v, want the counter plus the conflict self-metric", flat)
	}
	// A second clash — same name, yet another kind — keeps counting.
	r.Histogram("m", "", []int64{1}).Observe(1)
	if got := r.Flatten()[ConflictMetric]; got != 2 {
		t.Errorf("%s after second clash = %d, want 2", ConflictMetric, got)
	}
	// The synthesized sample keeps the snapshot sorted by name.
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Errorf("snapshot out of order: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	r.GaugeFunc("gf", "", func() int64 { return 1 })
	r.Histogram("h", "", []int64{1}).Observe(1)
	if r.Snapshot() != nil || r.Flatten() != nil {
		t.Error("nil registry snapshot/flatten not nil")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Max(int64(j))
				r.Histogram("h", "", []int64{500}).Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	flat := r.Flatten()
	if flat["c"] != 8000 {
		t.Errorf("counter = %d, want 8000", flat["c"])
	}
	if flat["g"] != 999 {
		t.Errorf("gauge max = %d, want 999", flat["g"])
	}
	if flat["h_count"] != 8000 {
		t.Errorf("histogram count = %d, want 8000", flat["h_count"])
	}
}

// TestQuantileKnownDistributions checks the bucket-interpolation
// estimator against distributions whose quantiles are known exactly.
func TestQuantileKnownDistributions(t *testing.T) {
	// Uniform 1..1000 into buckets every 100: every quantile is known and
	// interpolation inside a bucket is exact up to the discretization.
	r := NewRegistry()
	var bounds []int64
	for b := int64(100); b <= 1000; b += 100 {
		bounds = append(bounds, b)
	}
	h := r.Histogram("u", "", bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := r.Snapshot()[0]
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 0, 1},        // rank 0 interpolates to the bucket floor
		{0.5, 500, 1},    // exact: ranks align with bucket edges
		{0.95, 950, 1},   // interpolated mid-bucket
		{0.99, 990, 1},   // interpolated mid-bucket
		{1, 1000, 0.001}, // top edge
	} {
		got := s.Quantile(tc.q)
		if got < tc.want-tc.tol || got > tc.want+tc.tol {
			t.Errorf("uniform q%.2f = %v, want %v ±%v", tc.q, got, tc.want, tc.tol)
		}
	}

	// Point mass: everything in one bucket — all quantiles land inside it.
	r2 := NewRegistry()
	h2 := r2.Histogram("p", "", []int64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h2.Observe(15)
	}
	s2 := r2.Snapshot()[0]
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := s2.Quantile(q); got <= 10 || got > 20 {
			t.Errorf("point-mass q%.2f = %v, want in (10, 20]", q, got)
		}
	}

	// Overflow clamp: observations beyond the last bound estimate as the
	// last bound, never an invented larger value.
	r3 := NewRegistry()
	h3 := r3.Histogram("o", "", []int64{10})
	h3.Observe(5)
	h3.Observe(1_000_000)
	s3 := r3.Snapshot()[0]
	if got := s3.Quantile(0.99); got != 10 {
		t.Errorf("overflow q0.99 = %v, want clamp to 10", got)
	}

	// Empty histogram: defined zero, not NaN or panic.
	r4 := NewRegistry()
	r4.Histogram("e", "", []int64{10})
	if got := r4.Snapshot()[0].Quantile(0.5); got != 0 {
		t.Errorf("empty q0.5 = %v, want 0", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines and checks the invariants that concurrent folding must
// preserve: total count, exact sum, and monotone cumulative buckets.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", "", []int64{8, 64, 512, 4096})
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per+i) % 5000)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()[0]
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	var wantSum int64
	for v := int64(0); v < workers*per; v++ {
		wantSum += v % 5000
	}
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	prev := int64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Errorf("cumulative bucket le=%d count %d < previous %d", b.Le, b.Count, prev)
		}
		prev = b.Count
	}
	if prev > s.Count {
		t.Errorf("last finite bucket %d exceeds total count %d", prev, s.Count)
	}
}

func TestCounterSet(t *testing.T) {
	r := NewRegistry()
	set := r.CounterSet("shard_acked", "per-shard acked messages", 3)
	if len(set) != 3 {
		t.Fatalf("CounterSet returned %d counters, want 3", len(set))
	}
	set[1].Add(5)
	set[2].Inc()
	flat := r.Flatten()
	for name, want := range map[string]int64{
		"shard_acked_0": 0, "shard_acked_1": 5, "shard_acked_2": 1,
	} {
		if flat[name] != want {
			t.Errorf("%s = %d, want %d (idle members must still export 0)", name, flat[name], want)
		}
	}
	// Get-or-create: a second registration returns the same counters.
	again := r.CounterSet("shard_acked", "per-shard acked messages", 3)
	if again[1] != set[1] {
		t.Error("re-registration did not return the same counter")
	}
	var nilReg *Registry
	nilSet := nilReg.CounterSet("x", "", 2)
	if len(nilSet) != 2 {
		t.Fatalf("nil registry CounterSet returned %d entries, want 2", len(nilSet))
	}
	nilSet[0].Inc() // must not panic
	if r.CounterSet("y", "", 0) != nil {
		t.Error("empty family should be nil")
	}
}
