package obs

import (
	"bufio"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"

	"vedrfolnir/internal/simtime"
)

// Track ("process") IDs used across the tree, so every producer lands in
// a predictable Perfetto row group.
const (
	PidKernel     = 0 // event-loop bookkeeping
	PidCollective = 1 // per-host collective steps (tid = host node ID)
	PidMonitor    = 2 // per-host monitor activity (tid = host node ID)
	PidFabric     = 3 // switch-level events, PFC pause/resume (tid = switch node ID)
	PidAnalyzer   = 4 // diagnosis phases
	PidSweep      = 5 // sweep cases laid out in job order on the sim-time axis
)

// Arg is one "args" entry on a trace event: a string or int64 value.
// Floats are deliberately unsupported — their formatting is a determinism
// hazard; callers scale to integers (permille, nanoseconds) instead.
type Arg struct {
	Key   string
	str   string
	n     int64
	isStr bool
}

// I makes an integer arg.
func I(key string, v int64) Arg { return Arg{Key: key, n: v} }

// S makes a string arg.
func S(key, v string) Arg { return Arg{Key: key, str: v, isStr: true} }

type traceEvent struct {
	name string
	cat  string
	ph   byte // 'X' complete, 'i' instant, 'C' counter
	pid  int
	tid  int
	ts   simtime.Time
	dur  simtime.Duration
	args []Arg
}

// Tracer accumulates Chrome trace-event records keyed by sim time. Events
// are emitted in insertion order (the simulation is single-goroutine, so
// insertion order is deterministic); metadata records are sorted and
// written first. The zero Tracer is not usable — use NewTracer — but all
// methods are no-ops on a nil receiver, so call sites never branch.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	procs   map[int]string
	threads map[[2]int]string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{procs: map[int]string{}, threads: map[[2]int]string{}}
}

// NameProcess labels a track group ("process" in the trace-event model).
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// NameThread labels one track within a group.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[[2]int{pid, tid}] = name
	t.mu.Unlock()
}

// Span records a complete ('X') event covering [start, end] in sim time.
func (t *Tracer) Span(pid, tid int, cat, name string, start, end simtime.Time, args ...Arg) {
	if t == nil {
		return
	}
	dur := end.Sub(start)
	if dur < 0 {
		dur = 0
	}
	t.add(traceEvent{name: name, cat: cat, ph: 'X', pid: pid, tid: tid, ts: start, dur: dur, args: args})
}

// Instant records a point ('i') event at sim time at.
func (t *Tracer) Instant(pid, tid int, cat, name string, at simtime.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.add(traceEvent{name: name, cat: cat, ph: 'i', pid: pid, tid: tid, ts: at, args: args})
}

// Counter records a counter ('C') sample at sim time at; each arg becomes
// one series on the counter track.
func (t *Tracer) Counter(pid int, name string, at simtime.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.add(traceEvent{name: name, ph: 'C', pid: pid, ts: at, args: args})
}

func (t *Tracer) add(e traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events (metadata excluded).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON renders the trace as a Chrome trace-event JSON array, one
// event per line: metadata first (sorted by pid then tid), then events in
// insertion order. The rendering is fully deterministic: timestamps are
// integer-formatted microseconds with nanosecond fraction, and args keep
// their call-site order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[\n]\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(line []byte) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.Write(line)
	}

	var buf []byte
	pids := make([]int, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		buf = buf[:0]
		buf = append(buf, `{"name":"process_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(pid), 10)
		buf = append(buf, `,"tid":0,"args":{"name":`...)
		buf = strconv.AppendQuote(buf, t.procs[pid])
		buf = append(buf, "}}"...)
		emit(buf)
	}
	tids := make([][2]int, 0, len(t.threads))
	for key := range t.threads {
		tids = append(tids, key)
	}
	sort.Slice(tids, func(i, j int) bool {
		if tids[i][0] != tids[j][0] {
			return tids[i][0] < tids[j][0]
		}
		return tids[i][1] < tids[j][1]
	})
	for _, key := range tids {
		buf = buf[:0]
		buf = append(buf, `{"name":"thread_name","ph":"M","pid":`...)
		buf = strconv.AppendInt(buf, int64(key[0]), 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(key[1]), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = strconv.AppendQuote(buf, t.threads[key])
		buf = append(buf, "}}"...)
		emit(buf)
	}

	for _, e := range t.events {
		buf = buf[:0]
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, e.name)
		if e.cat != "" {
			buf = append(buf, `,"cat":`...)
			buf = strconv.AppendQuote(buf, e.cat)
		}
		buf = append(buf, `,"ph":"`...)
		buf = append(buf, e.ph)
		buf = append(buf, `","pid":`...)
		buf = strconv.AppendInt(buf, int64(e.pid), 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(e.tid), 10)
		buf = append(buf, `,"ts":`...)
		buf = appendMicros(buf, int64(e.ts))
		if e.ph == 'X' {
			buf = append(buf, `,"dur":`...)
			buf = appendMicros(buf, int64(e.dur))
		}
		if e.ph == 'i' {
			buf = append(buf, `,"s":"t"`...)
		}
		if len(e.args) > 0 {
			buf = append(buf, `,"args":{`...)
			for i, a := range e.args {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendQuote(buf, a.Key)
				buf = append(buf, ':')
				if a.isStr {
					buf = strconv.AppendQuote(buf, a.str)
				} else {
					buf = strconv.AppendInt(buf, a.n, 10)
				}
			}
			buf = append(buf, '}')
		}
		buf = append(buf, '}')
		emit(buf)
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		_ = f.Close() // the write failure is the error worth returning
		return err
	}
	return f.Close()
}

// appendMicros formats ns as microseconds with exact nanosecond fraction
// ("1234.567") using only integer arithmetic — no float formatting on the
// determinism-critical path.
func appendMicros(buf []byte, ns int64) []byte {
	neg := ns < 0
	if neg {
		buf = append(buf, '-')
		ns = -ns
	}
	buf = strconv.AppendInt(buf, ns/1000, 10)
	frac := ns % 1000
	buf = append(buf, '.')
	buf = append(buf, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return buf
}
