package replay

import (
	"testing"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

func mkFlow(a, b topo.NodeID, p uint16) fabric.FlowKey {
	return fabric.FlowKey{Src: a, Dst: b, SrcPort: p, DstPort: p + 1, Proto: 17}
}

func TestReplaySyntheticQueue(t *testing.T) {
	f1 := mkFlow(0, 9, 100)
	f2 := mkFlow(1, 9, 200)
	var l Log
	// f1 enqueues 2 packets, then f2 enqueues behind them, then f1 again
	// behind f2's one packet (and its own, which doesn't count).
	l.Record(Event{At: 10, Kind: Enqueue, Flow: f1, Size: 1000})
	l.Record(Event{At: 20, Kind: Enqueue, Flow: f1, Size: 1000})
	l.Record(Event{At: 30, Kind: Enqueue, Flow: f2, Size: 1000}) // waits behind 2×f1
	l.Record(Event{At: 40, Kind: Dequeue, Flow: f1, Size: 1000})
	l.Record(Event{At: 50, Kind: Enqueue, Flow: f1, Size: 1000}) // waits behind 1×f2
	res := Replay(&l, 0, simtime.Never)

	if got := res.W(f2, f1); got != 2 {
		t.Fatalf("w(f2,f1) = %d, want 2", got)
	}
	if got := res.W(f1, f2); got != 1 {
		t.Fatalf("w(f1,f2) = %d, want 1", got)
	}
	if res.MaxDepthBytes != 3000 {
		t.Fatalf("max depth = %d, want 3000", res.MaxDepthBytes)
	}
	if res.Incomplete {
		t.Fatalf("untruncated log marked incomplete")
	}
}

func TestReplayWindow(t *testing.T) {
	f1 := mkFlow(0, 9, 100)
	f2 := mkFlow(1, 9, 200)
	var l Log
	l.Record(Event{At: 10, Kind: Enqueue, Flow: f1, Size: 1000})
	l.Record(Event{At: 30, Kind: Enqueue, Flow: f2, Size: 1000})
	// Window starting after f2's enqueue: no waits counted, but the queue
	// state before the window still matters for later events.
	l.Record(Event{At: 50, Kind: Enqueue, Flow: f2, Size: 1000})
	res := Replay(&l, 40, simtime.Never)
	if got := res.W(f2, f1); got != 1 {
		t.Fatalf("windowed w(f2,f1) = %d, want 1 (only the in-window enqueue)", got)
	}
}

func TestRingTruncation(t *testing.T) {
	f := mkFlow(0, 9, 100)
	l := Log{Cap: 4}
	for i := 0; i < 10; i++ {
		l.Record(Event{At: simtime.Time(i), Kind: Enqueue, Flow: f, Size: 100})
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if l.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", l.Dropped)
	}
	if !Replay(&l, 0, simtime.Never).Incomplete {
		t.Fatalf("truncated replay not marked incomplete")
	}
}

func TestUnmatchedDequeueIgnored(t *testing.T) {
	f := mkFlow(0, 9, 100)
	var l Log
	l.Record(Event{At: 1, Kind: Dequeue, Flow: f, Size: 1000}) // no matching enqueue
	l.Record(Event{At: 2, Kind: Enqueue, Flow: f, Size: 1000})
	res := Replay(&l, 0, simtime.Never)
	if res.MaxDepthBytes != 1000 {
		t.Fatalf("depth went negative or wrong: %d", res.MaxDepthBytes)
	}
}

// TestReplayMatchesOnlineAccumulators cross-validates the replay algorithm
// against the switch's online wait counters on real simulated traffic: the
// two implementations are independent, so agreement is strong evidence both
// compute the paper's w(f_i, f_j).
func TestReplayMatchesOnlineAccumulators(t *testing.T) {
	tp := topo.New()
	h0 := tp.AddNode(topo.KindHost, "h0")
	h1 := tp.AddNode(topo.KindHost, "h1")
	h2 := tp.AddNode(topo.KindHost, "h2")
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range []topo.NodeID{h0, h1, h2} {
		tp.AddLink(h, sw, 100*simtime.Gbps, time.Microsecond)
	}
	tp.ComputeRoutes()
	k := sim.New(77)
	fcfg := fabric.DefaultConfig()
	fcfg.PFCPauseThreshold = 1 << 40
	net := fabric.NewNetwork(k, tp, fcfg)
	rec := Attach(net, 0)

	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = 4096
	a, err := rdma.NewHost(k, net, h0, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rdma.NewHost(k, net, h1, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rdma.NewHost(k, net, h2, rcfg)

	fa, fb := mkFlow(h0, h2, 100), mkFlow(h1, h2, 200)
	a.Send(fa, 512*1024)
	b.Send(fb, 512*1024)
	k.Run(simtime.Never)

	// Egress toward h2 is port 2 on the switch.
	port := topo.PortID{Node: sw, Port: 2}
	log := rec.Log(port)
	if log == nil || log.Len() == 0 {
		t.Fatalf("no replay log at the contended port")
	}
	res := Replay(log, 0, simtime.Never)

	online := net.SwitchAt(sw).Stats[2].Wait
	for _, pair := range [][2]fabric.FlowKey{{fa, fb}, {fb, fa}} {
		want := online[pair[0]][pair[1]]
		got := res.W(pair[0], pair[1])
		if want == 0 {
			t.Fatalf("setup: no online wait for %v behind %v", pair[0], pair[1])
		}
		if got != want {
			t.Fatalf("replayed w(%v,%v) = %d, online = %d", pair[0], pair[1], got, want)
		}
	}
}

func TestRecorderPortsDeterministic(t *testing.T) {
	r := &Recorder{logs: map[topo.PortID]*Log{}}
	f := mkFlow(0, 1, 10)
	r.QueueEvent(5, 2, true, f, 100, 1)
	r.QueueEvent(3, 0, true, f, 100, 2)
	r.QueueEvent(5, 0, true, f, 100, 3)
	ports := r.Ports()
	want := []topo.PortID{{Node: 3, Port: 0}, {Node: 5, Port: 0}, {Node: 5, Port: 2}}
	if len(ports) != len(want) {
		t.Fatalf("ports = %v", ports)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("ports = %v, want %v", ports, want)
		}
	}
}
