// Package replay implements the queue replay algorithm the paper references
// for deriving pairwise wait weights ("w(cf, f_i) can be derived via a
// replay algorithm", §III-D3, citing Hawkeye): switches log compact
// per-port packet arrival/departure events into bounded ring buffers, and
// the analyzer replays a port's log to reconstruct queue occupancy over
// time and recompute w(f_i, f_j) — the number of f_j packets each f_i
// packet queued behind — for any flow pair and any time window, offline.
//
// This complements internal/telemetry's online accumulators: the online
// counters are cheap but fixed at collection time; a replayed log answers
// questions the analyzer did not know to ask while collecting (e.g. the
// direct w(cf, f_i) term of Eq. 2 for a culprit identified only later).
package replay

import (
	"fmt"
	"sort"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// EventKind distinguishes arrivals and departures.
type EventKind uint8

// Event kinds.
const (
	Enqueue EventKind = iota
	Dequeue
)

// Event is one logged queue transition at a port.
type Event struct {
	At   simtime.Time
	Kind EventKind
	Flow fabric.FlowKey
	Size int32
}

// Log is a bounded ring of queue events for one port. The zero Log is
// unbounded; set Cap to bound memory as a switch would.
type Log struct {
	Cap    int
	events []Event
	// Dropped counts events evicted by the ring bound.
	Dropped int64
}

// Record appends an event, evicting the oldest when over capacity.
func (l *Log) Record(ev Event) {
	l.events = append(l.events, ev)
	if l.Cap > 0 && len(l.events) > l.Cap {
		over := len(l.events) - l.Cap
		l.events = append(l.events[:0], l.events[over:]...)
		l.Dropped += int64(over)
	}
}

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the retained events in time order (the log is naturally
// ordered; a defensive sort guards against merged logs).
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Result is the reconstruction of one replay.
type Result struct {
	// Wait[fi][fj] is the replayed w(f_i, f_j): packets of f_j in the
	// queue at each f_i enqueue, summed over f_i's packets in the window.
	Wait map[fabric.FlowKey]map[fabric.FlowKey]int64
	// MaxDepthBytes is the peak queue depth observed.
	MaxDepthBytes int64
	// MeanDepthBytes is the depth averaged over enqueue events.
	MeanDepthBytes int64
	// Incomplete is true when the log was truncated by its ring bound
	// (the replay starts mid-stream, so early dequeues may be unmatched).
	Incomplete bool
}

// Replay reconstructs queue state from the log over [from, to] and returns
// the pairwise wait matrix. Dequeue events without a matching tracked
// packet (log truncation) are ignored.
func Replay(l *Log, from, to simtime.Time) *Result {
	res := &Result{
		Wait:       make(map[fabric.FlowKey]map[fabric.FlowKey]int64),
		Incomplete: l.Dropped > 0,
	}
	inQueue := make(map[fabric.FlowKey]int64)
	var depth int64
	var depthSum int64
	var enqueues int64

	for _, ev := range l.Events() {
		if ev.At > to {
			break
		}
		switch ev.Kind {
		case Enqueue:
			if ev.At >= from {
				row := res.Wait[ev.Flow]
				if row == nil {
					row = make(map[fabric.FlowKey]int64)
					res.Wait[ev.Flow] = row
				}
				for fj, n := range inQueue {
					if fj != ev.Flow && n > 0 {
						row[fj] += n
					}
				}
				depthSum += depth
				enqueues++
			}
			inQueue[ev.Flow]++
			depth += int64(ev.Size)
			if depth > res.MaxDepthBytes {
				res.MaxDepthBytes = depth
			}
		case Dequeue:
			if inQueue[ev.Flow] > 0 {
				inQueue[ev.Flow]--
				depth -= int64(ev.Size)
			}
		}
	}
	if enqueues > 0 {
		res.MeanDepthBytes = depthSum / enqueues
	}
	return res
}

// W returns the replayed w(f_i, f_j) from a result (0 when absent).
func (r *Result) W(fi, fj fabric.FlowKey) int64 { return r.Wait[fi][fj] }

// Recorder taps a fabric network's queue transitions into per-port logs —
// the switch-side "periodic recording" of §III-C3 in its replayable form.
type Recorder struct {
	// PerPortCap bounds each port's ring (0 = unbounded).
	PerPortCap int
	logs       map[topo.PortID]*Log
}

// Attach creates a recorder and installs it as net's queue observer.
func Attach(net *fabric.Network, perPortCap int) *Recorder {
	r := &Recorder{PerPortCap: perPortCap, logs: make(map[topo.PortID]*Log)}
	net.Observer = r
	return r
}

// QueueEvent implements fabric.QueueObserver.
func (r *Recorder) QueueEvent(node topo.NodeID, port int, enqueue bool, flow fabric.FlowKey, size int, at simtime.Time) {
	p := topo.PortID{Node: node, Port: port}
	l := r.logs[p]
	if l == nil {
		l = &Log{Cap: r.PerPortCap}
		r.logs[p] = l
	}
	kind := Dequeue
	if enqueue {
		kind = Enqueue
	}
	l.Record(Event{At: at, Kind: kind, Flow: flow, Size: int32(size)})
}

// Log returns the log for a port (nil if the port saw no traffic).
func (r *Recorder) Log(p topo.PortID) *Log { return r.logs[p] }

// Ports returns every port with a log, deterministically ordered.
func (r *Recorder) Ports() []topo.PortID {
	out := make([]topo.PortID, 0, len(r.logs))
	for p := range r.logs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// String renders a short summary of a result for reports.
func (r *Result) String() string {
	pairs := 0
	for _, row := range r.Wait {
		pairs += len(row)
	}
	return fmt.Sprintf("replay: %d flow pairs, max depth %dB, mean depth %dB, incomplete=%v",
		pairs, r.MaxDepthBytes, r.MeanDepthBytes, r.Incomplete)
}
