// Package rdma models the host side of RoCEv2: NIC message transmission in
// fixed-size cells, line-rate start (no slow start — the paper's second
// source of RDMA complexity, §II-A), per-cell ACKs that produce the RTT
// samples monitors consume, and a DCQCN-style reaction point driven by ECN
// marks relayed as CNPs.
package rdma

import (
	"fmt"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// CCKind selects the congestion-control algorithm at the reaction point.
type CCKind uint8

// Congestion-control algorithms (the paper names DCQCN and Swift as the
// deployed options, §I).
const (
	// CCDCQCN is the ECN/CNP-driven DCQCN-lite (default).
	CCDCQCN CCKind = iota
	// CCSwift is a Swift-like delay-based controller: per-ACK RTT against
	// a target derived from the observed base RTT, multiplicative
	// decrease proportional to the excess, additive increase otherwise.
	CCSwift
	// CCNone disables rate control entirely: pure line-rate blasting
	// (ablation).
	CCNone
)

func (c CCKind) String() string {
	switch c {
	case CCDCQCN:
		return "dcqcn"
	case CCSwift:
		return "swift"
	case CCNone:
		return "none"
	default:
		return "cc?"
	}
}

// Config sets NIC and congestion-control behaviour.
type Config struct {
	CellSize int // bytes per data packet ("cell"); see DESIGN.md
	Window   int // max unacked cells in flight (ACK clocking)

	// CC selects the congestion controller.
	CC CCKind
	// SwiftBeta scales the per-flow base RTT into Swift's target delay.
	SwiftBeta float64
	// SwiftMDFactor caps one multiplicative decrease (0.4 = up to -40%).
	SwiftMDFactor float64

	// DCQCN-lite parameters.
	CNPInterval  simtime.Duration // min spacing of CNPs per flow at the NP
	RateIncTimer simtime.Duration // reaction-point recovery period
	Gain         float64          // EWMA gain g for alpha
	MinRateFrac  float64          // floor as a fraction of line rate
	AddIncFrac   float64          // additive increase per timer, fraction of line rate
	DisableDCQCN bool             // if true, always send at line rate
	FastRecoverN int              // rounds of hyper recovery after a cut
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		CellSize:      64 << 10,
		Window:        64,
		CC:            CCDCQCN,
		SwiftBeta:     1.5,
		SwiftMDFactor: 0.4,
		CNPInterval:   50 * time.Microsecond,
		RateIncTimer:  55 * time.Microsecond,
		Gain:          1.0 / 16,
		MinRateFrac:   0.01,
		AddIncFrac:    0.02,
		FastRecoverN:  3,
	}
}

// RTTSample is one per-cell round-trip observation delivered to monitors.
type RTTSample struct {
	Flow fabric.FlowKey
	Seq  int64
	RTT  simtime.Duration
	At   simtime.Time
}

// Host is an RDMA endpoint attached to the fabric.
type Host struct {
	K   *sim.Kernel
	Net *fabric.Network
	ID  topo.NodeID
	Cfg Config

	lineRate simtime.Rate

	sends map[fabric.FlowKey]*sendState
	recvs map[fabric.FlowKey]*recvState

	// OnRTTSample fires at the sender for every ACK received.
	OnRTTSample func(RTTSample)
	// OnRecvComplete fires at the receiver when a message fully arrives.
	OnRecvComplete func(flow fabric.FlowKey, bytes int64)
	// OnSendComplete fires at the sender when every cell is acked.
	OnSendComplete func(flow fabric.FlowKey, bytes int64)
	// OnNotify fires when a Vedrfolnir notification packet arrives.
	OnNotify func(pkt *fabric.Packet)

	// Counters.
	CellsSent, AcksSent, CNPsSent int64
}

type sendState struct {
	flow       fabric.FlowKey
	totalCells int64
	lastCell   int // size of final (possibly short) cell
	nextSeq    int64
	acked      int64
	bytes      int64

	// DCQCN reaction point.
	rate       simtime.Rate
	targetRate simtime.Rate
	alpha      float64
	recoverCnt int

	// Swift reaction point.
	minRTT  simtime.Duration
	lastCut simtime.Time

	nextSendAt simtime.Time
	timerSet   bool
	done       bool
}

type recvState struct {
	flow    fabric.FlowKey
	got     int64
	bytes   int64
	total   int64 // expected bytes (learned from sender's first cell payload)
	lastCNP simtime.Time
}

// NewHost creates a host NIC and attaches it to the network. It fails on an
// invalid configuration or when id is not a host node of the topology.
func NewHost(k *sim.Kernel, net *fabric.Network, id topo.NodeID, cfg Config) (*Host, error) {
	if cfg.CellSize <= 0 {
		return nil, fmt.Errorf("rdma: CellSize must be positive, got %d", cfg.CellSize)
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	link := net.Topo.LinkAt(topo.PortID{Node: id, Port: 0})
	h := &Host{
		K:        k,
		Net:      net,
		ID:       id,
		Cfg:      cfg,
		lineRate: link.Bandwidth,
		sends:    make(map[fabric.FlowKey]*sendState),
		recvs:    make(map[fabric.FlowKey]*recvState),
	}
	if err := net.Attach(id, h); err != nil {
		return nil, err
	}
	return h, nil
}

// LineRate returns the host uplink bandwidth.
func (h *Host) LineRate() simtime.Rate { return h.lineRate }

// Send begins transmitting a message of size bytes on the given flow. RDMA
// has no slow start: the flow begins at line rate. It fails if the flow does
// not originate here or is already in flight.
func (h *Host) Send(flow fabric.FlowKey, size int64) error {
	if flow.Src != h.ID {
		return fmt.Errorf("rdma: flow source %d is not host %d", flow.Src, h.ID)
	}
	if _, dup := h.sends[flow]; dup {
		return fmt.Errorf("rdma: duplicate send on flow %v", flow)
	}
	cells := size / int64(h.Cfg.CellSize)
	last := int(size % int64(h.Cfg.CellSize))
	if last > 0 {
		cells++
	} else {
		last = h.Cfg.CellSize
	}
	if cells == 0 {
		cells, last = 1, 1
	}
	st := &sendState{
		flow:       flow,
		totalCells: cells,
		lastCell:   last,
		bytes:      size,
		rate:       h.lineRate,
		targetRate: h.lineRate,
		nextSendAt: h.K.Now(),
	}
	h.sends[flow] = st
	h.pump(st)
	return nil
}

// ActiveSends returns the number of in-progress outbound messages.
func (h *Host) ActiveSends() int { return len(h.sends) }

// pump injects as many cells as the window and pacing rate allow, and arms
// a timer for the next pacing slot if the window is open but the rate gate
// is not.
func (h *Host) pump(st *sendState) {
	if st.done {
		return
	}
	now := h.K.Now()
	for st.nextSeq < st.totalCells && st.nextSeq-st.acked < int64(h.Cfg.Window) {
		if now < st.nextSendAt {
			if !st.timerSet {
				st.timerSet = true
				h.K.At(st.nextSendAt, func() {
					st.timerSet = false
					h.pump(st)
				})
			}
			return
		}
		size := h.Cfg.CellSize
		if st.nextSeq == st.totalCells-1 {
			size = st.lastCell
		}
		pkt := &fabric.Packet{
			Kind:   fabric.KindData,
			Flow:   st.flow,
			To:     st.flow.Dst,
			Size:   size,
			Seq:    st.nextSeq,
			SentAt: int64(now),
		}
		// Stash total bytes on seq 0 so the receiver knows the message
		// length (stand-in for the RDMA work-request metadata).
		if st.nextSeq == 0 {
			pkt.Payload = st.bytes
		}
		h.Net.Inject(h.ID, pkt)
		h.CellsSent++
		st.nextSeq++
		st.nextSendAt = maxTime(st.nextSendAt, now).Add(st.rate.Transmit(int64(size)))
	}
}

func maxTime(a, b simtime.Time) simtime.Time {
	if a > b {
		return a
	}
	return b
}

// Receive implements fabric.Device.
func (h *Host) Receive(pkt *fabric.Packet, port int) {
	switch pkt.Kind {
	case fabric.KindData:
		h.onData(pkt)
	case fabric.KindAck:
		h.onAck(pkt)
	case fabric.KindCNP:
		h.onCNP(pkt)
	case fabric.KindNotify:
		if h.OnNotify != nil {
			h.OnNotify(pkt)
		}
	}
}

func (h *Host) onData(pkt *fabric.Packet) {
	rs := h.recvs[pkt.Flow]
	if rs == nil {
		rs = &recvState{flow: pkt.Flow, lastCNP: -1 << 62}
		h.recvs[pkt.Flow] = rs
	}
	if pkt.Seq == 0 {
		if total, ok := pkt.Payload.(int64); ok {
			rs.total = total
		}
	}
	rs.got++
	rs.bytes += int64(pkt.Size)

	// Echo an ACK carrying the sender's timestamp (RTT source).
	ack := &fabric.Packet{
		Kind:   fabric.KindAck,
		Flow:   pkt.Flow,
		To:     pkt.Flow.Src,
		Size:   fabric.AckSize,
		Seq:    pkt.Seq,
		SentAt: pkt.SentAt,
	}
	h.Net.Inject(h.ID, ack)
	h.AcksSent++

	// Congestion-experienced → CNP, rate limited per flow.
	if pkt.ECN {
		now := h.K.Now()
		if now.Sub(rs.lastCNP) >= h.Cfg.CNPInterval {
			rs.lastCNP = now
			cnp := &fabric.Packet{
				Kind: fabric.KindCNP,
				Flow: pkt.Flow,
				To:   pkt.Flow.Src,
				Size: fabric.CNPSize,
			}
			h.Net.Inject(h.ID, cnp)
			h.CNPsSent++
		}
	}

	if rs.total > 0 && rs.bytes >= rs.total {
		delete(h.recvs, pkt.Flow)
		if h.OnRecvComplete != nil {
			h.OnRecvComplete(pkt.Flow, rs.bytes)
		}
	}
}

func (h *Host) onAck(pkt *fabric.Packet) {
	st := h.sends[pkt.Flow]
	if st == nil {
		return
	}
	now := h.K.Now()
	rtt := now.Sub(simtime.Time(pkt.SentAt))
	if h.OnRTTSample != nil {
		h.OnRTTSample(RTTSample{
			Flow: pkt.Flow,
			Seq:  pkt.Seq,
			RTT:  rtt,
			At:   now,
		})
	}
	if h.Cfg.CC == CCSwift {
		h.swiftUpdate(st, rtt, now)
	}
	st.acked++
	if st.acked >= st.totalCells {
		st.done = true
		delete(h.sends, pkt.Flow)
		if h.OnSendComplete != nil {
			h.OnSendComplete(pkt.Flow, st.bytes)
		}
		return
	}
	h.pump(st)
}

// swiftUpdate applies the Swift-like delay-based control law: one
// multiplicative decrease per RTT when the sampled delay exceeds the
// target, additive increase otherwise.
func (h *Host) swiftUpdate(st *sendState, rtt simtime.Duration, now simtime.Time) {
	if st.minRTT == 0 || rtt < st.minRTT {
		st.minRTT = rtt
	}
	target := simtime.Duration(float64(st.minRTT) * h.Cfg.SwiftBeta)
	if rtt > target {
		// At most one cut per RTT.
		if now.Sub(st.lastCut) < st.minRTT {
			return
		}
		st.lastCut = now
		excess := float64(rtt-target) / float64(rtt)
		cut := 1 - h.Cfg.SwiftMDFactor*excess
		st.rate = simtime.Rate(float64(st.rate) * cut)
		minRate := simtime.Rate(float64(h.lineRate) * h.Cfg.MinRateFrac)
		if st.rate < minRate {
			st.rate = minRate
		}
		return
	}
	st.rate += simtime.Rate(float64(h.lineRate) * h.Cfg.AddIncFrac)
	if st.rate > h.lineRate {
		st.rate = h.lineRate
	}
}

// onCNP applies the DCQCN rate cut and schedules recovery.
func (h *Host) onCNP(pkt *fabric.Packet) {
	if h.Cfg.DisableDCQCN || h.Cfg.CC != CCDCQCN {
		return
	}
	st := h.sends[pkt.Flow]
	if st == nil {
		return
	}
	st.alpha = (1-h.Cfg.Gain)*st.alpha + h.Cfg.Gain
	st.targetRate = st.rate
	st.rate = simtime.Rate(float64(st.rate) * (1 - st.alpha/2))
	minRate := simtime.Rate(float64(h.lineRate) * h.Cfg.MinRateFrac)
	if st.rate < minRate {
		st.rate = minRate
	}
	st.recoverCnt = 0
	h.armRecovery(st)
}

func (h *Host) armRecovery(st *sendState) {
	h.K.After(h.Cfg.RateIncTimer, func() {
		if st.done {
			return
		}
		st.alpha *= 1 - h.Cfg.Gain
		if st.recoverCnt < h.Cfg.FastRecoverN {
			// Hyper recovery toward the pre-cut rate.
			st.rate = (st.rate + st.targetRate) / 2
			st.recoverCnt++
		} else {
			// Additive probing beyond it.
			st.targetRate += simtime.Rate(float64(h.lineRate) * h.Cfg.AddIncFrac)
			if st.targetRate > h.lineRate {
				st.targetRate = h.lineRate
			}
			st.rate = (st.rate + st.targetRate) / 2
		}
		if st.rate > h.lineRate {
			st.rate = h.lineRate
		}
		if st.rate < st.targetRate || st.rate < h.lineRate {
			h.armRecovery(st)
		}
	})
}

// CurrentRate reports the pacing rate of an active flow (line rate if the
// flow is unknown, which also covers completed flows).
func (h *Host) CurrentRate(flow fabric.FlowKey) simtime.Rate {
	if st := h.sends[flow]; st != nil {
		return st.rate
	}
	return h.lineRate
}
