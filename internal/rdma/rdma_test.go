package rdma

import (
	"testing"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// rig is a star topology with n RDMA hosts around one switch.
type rig struct {
	k     *sim.Kernel
	tp    *topo.Topology
	net   *fabric.Network
	hosts []*Host
}

func newRig(t *testing.T, n int, rcfg Config, fcfg fabric.Config) *rig {
	t.Helper()
	tp := topo.New()
	var ids []topo.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, tp.AddNode(topo.KindHost, "h"))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range ids {
		tp.AddLink(h, sw, 100*simtime.Gbps, time.Microsecond)
	}
	tp.ComputeRoutes()
	k := sim.New(7)
	net := fabric.NewNetwork(k, tp, fcfg)
	r := &rig{k: k, tp: tp, net: net}
	for _, id := range ids {
		h, err := NewHost(k, net, id, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		r.hosts = append(r.hosts, h)
	}
	return r
}

func fk(src, dst topo.NodeID, port uint16) fabric.FlowKey {
	return fabric.FlowKey{Src: src, Dst: dst, SrcPort: port, DstPort: port + 1, Proto: 17}
}

func TestMessageDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 1024
	r := newRig(t, 2, cfg, fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]

	var recvBytes, sentBytes int64
	var recvAt simtime.Time
	h1.OnRecvComplete = func(f fabric.FlowKey, b int64) { recvBytes = b; recvAt = r.k.Now() }
	h0.OnSendComplete = func(f fabric.FlowKey, b int64) { sentBytes = b }

	const size = 10*1024 + 17 // non-multiple of cell size
	h0.Send(fk(h0.ID, h1.ID, 100), size)
	r.k.Run(simtime.Never)

	if recvBytes != size {
		t.Fatalf("received %d bytes, want %d", recvBytes, size)
	}
	if sentBytes != size {
		t.Fatalf("sender completion reported %d, want %d", sentBytes, size)
	}
	if recvAt == 0 {
		t.Fatalf("no completion time recorded")
	}
	if h0.ActiveSends() != 0 {
		t.Fatalf("send state leaked")
	}
}

func TestLineRateStart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 64 << 10
	r := newRig(t, 2, cfg, fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]

	var done simtime.Time
	h1.OnRecvComplete = func(fabric.FlowKey, int64) { done = r.k.Now() }

	const size = 16 * (64 << 10) // 1 MiB
	h0.Send(fk(h0.ID, h1.ID, 100), size)
	r.k.Run(simtime.Never)

	// Ideal: serialization 1MiB at 100Gbps ≈ 83.9µs + ~2.2µs path. With
	// ACK-clocked window the flow must finish within ~25% of ideal —
	// proving there is no slow-start ramp.
	ideal := (100 * simtime.Gbps).Transmit(int64(size))
	if done == 0 {
		t.Fatalf("message never completed")
	}
	if limit := ideal * 5 / 4; simtime.Duration(done) > limit {
		t.Fatalf("completion %v exceeds no-slow-start bound %v", done, limit)
	}
}

func TestRTTSamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 1024
	r := newRig(t, 2, cfg, fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]

	var samples []RTTSample
	h0.OnRTTSample = func(s RTTSample) { samples = append(samples, s) }
	h0.Send(fk(h0.ID, h1.ID, 100), 4*1024)
	r.k.Run(simtime.Never)

	if len(samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(samples))
	}
	// Uncongested RTT: data 1024B tx twice + ack 64B twice + 4×1µs prop.
	base := 2*(100*simtime.Gbps).Transmit(int64(1024)) +
		2*(100*simtime.Gbps).Transmit(int64(fabric.AckSize)) + 4*time.Microsecond
	for _, s := range samples {
		if s.RTT < base || s.RTT > base*2 {
			t.Fatalf("sample RTT %v outside [%v, %v]", s.RTT, base, base*2)
		}
	}
	_ = h1
}

func TestDCQCNReactsToCongestion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 4096
	fcfg := fabric.DefaultConfig()
	fcfg.ECNThreshold = 8192
	fcfg.PFCPauseThreshold = 1 << 40
	r := newRig(t, 3, cfg, fcfg)
	h0, h1, h2 := r.hosts[0], r.hosts[1], r.hosts[2]

	f0, f1 := fk(h0.ID, h2.ID, 100), fk(h1.ID, h2.ID, 200)
	h0.Send(f0, 1<<20)
	h1.Send(f1, 1<<20)

	minRate := simtime.Rate(1 << 62)
	// Sample rates periodically while the flows run.
	var probe func()
	probe = func() {
		if rt := h0.CurrentRate(f0); h0.ActiveSends() > 0 && rt < minRate {
			minRate = rt
		}
		if r.k.Pending() > 0 {
			r.k.After(10*time.Microsecond, probe)
		}
	}
	r.k.After(10*time.Microsecond, probe)
	r.k.Run(simtime.Never)

	if h0.CNPsSent+h1.CNPsSent+h2.CNPsSent == 0 {
		t.Fatalf("no CNPs generated under 2:1 incast with ECN")
	}
	if minRate >= 100*simtime.Gbps {
		t.Fatalf("sender never reduced rate below line rate (min %v)", minRate)
	}
}

func TestConcurrentFlowsComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 2048
	r := newRig(t, 4, cfg, fabric.DefaultConfig())

	done := map[fabric.FlowKey]bool{}
	for _, h := range r.hosts {
		h.OnRecvComplete = func(f fabric.FlowKey, b int64) { done[f] = true }
	}
	var flows []fabric.FlowKey
	for i, hs := range r.hosts {
		dst := r.hosts[(i+1)%len(r.hosts)]
		f := fk(hs.ID, dst.ID, uint16(100*i+100))
		flows = append(flows, f)
		hs.Send(f, 100*1024)
	}
	r.k.Run(simtime.Never)
	for _, f := range flows {
		if !done[f] {
			t.Fatalf("flow %v never completed", f)
		}
	}
}

func TestSendValidation(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(), fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]
	if err := h0.Send(fk(h1.ID, h0.ID, 1), 100); err == nil {
		t.Errorf("expected error for wrong source")
	}
	f := fk(h0.ID, h1.ID, 2)
	if err := h0.Send(f, 100); err != nil {
		t.Fatal(err)
	}
	if err := h0.Send(f, 100); err == nil {
		t.Errorf("expected error for duplicate flow")
	}
}

func TestTinyMessage(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(), fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]
	got := int64(-1)
	h1.OnRecvComplete = func(f fabric.FlowKey, b int64) { got = b }
	h0.Send(fk(h0.ID, h1.ID, 3), 1)
	r.k.Run(simtime.Never)
	if got != 1 {
		t.Fatalf("1-byte message: got %d", got)
	}
}

func TestPFCHaltsSenderUntilResume(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 1024
	r := newRig(t, 2, cfg, fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]
	sw := r.tp.Switches()[0]

	// Storm pauses h0's uplink between 5µs and 100µs.
	r.net.InjectPFCStorm(sw, 0, simtime.Time(5*time.Microsecond), 95*time.Microsecond)

	var done simtime.Time
	h1.OnRecvComplete = func(fabric.FlowKey, int64) { done = r.k.Now() }
	// Large enough that transmission is still in progress when the PAUSE
	// frame lands (the windowed burst cannot cover the whole message).
	h0.Send(fk(h0.ID, h1.ID, 9), 1<<20)
	r.k.Run(simtime.Never)

	if done < simtime.Time(100*time.Microsecond) {
		t.Fatalf("flow finished at %v despite 95µs PFC storm", done)
	}
}

func TestSwiftReactsToCongestion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 4096
	cfg.CC = CCSwift
	fcfg := fabric.DefaultConfig()
	fcfg.PFCPauseThreshold = 1 << 40
	r := newRig(t, 3, cfg, fcfg)
	h0, h1, h2 := r.hosts[0], r.hosts[1], r.hosts[2]

	f0, f1 := fk(h0.ID, h2.ID, 100), fk(h1.ID, h2.ID, 200)
	h0.Send(f0, 1<<20)
	h1.Send(f1, 1<<20)

	minRate := simtime.Rate(1 << 62)
	var probe func()
	probe = func() {
		if rt := h0.CurrentRate(f0); h0.ActiveSends() > 0 && rt < minRate {
			minRate = rt
		}
		if r.k.Pending() > 0 {
			r.k.After(10*time.Microsecond, probe)
		}
	}
	r.k.After(10*time.Microsecond, probe)
	r.k.Run(simtime.Never)

	if minRate >= 100*simtime.Gbps {
		t.Fatalf("swift never reduced rate under 2:1 incast (min %v)", minRate)
	}
	// Swift never generates CNPs — it is delay-driven.
	if h0.CNPsSent+h1.CNPsSent > 0 {
		t.Fatalf("swift senders emitted CNPs")
	}
}

func TestCCNoneStaysAtLineRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 4096
	cfg.CC = CCNone
	r := newRig(t, 3, cfg, fabric.DefaultConfig())
	h0, h1, h2 := r.hosts[0], r.hosts[1], r.hosts[2]
	f0, f1 := fk(h0.ID, h2.ID, 100), fk(h1.ID, h2.ID, 200)
	h0.Send(f0, 512*1024)
	h1.Send(f1, 512*1024)

	sawBelow := false
	var probe func()
	probe = func() {
		if h0.ActiveSends() > 0 && h0.CurrentRate(f0) < 100*simtime.Gbps {
			sawBelow = true
		}
		if r.k.Pending() > 0 {
			r.k.After(10*time.Microsecond, probe)
		}
	}
	r.k.After(10*time.Microsecond, probe)
	r.k.Run(simtime.Never)
	if sawBelow {
		t.Fatalf("CCNone sender reduced its rate")
	}
}

func TestSwiftCompletesCollectiveScaleMessage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CellSize = 16 << 10
	cfg.CC = CCSwift
	r := newRig(t, 2, cfg, fabric.DefaultConfig())
	h0, h1 := r.hosts[0], r.hosts[1]
	var done bool
	h1.OnRecvComplete = func(fabric.FlowKey, int64) { done = true }
	h0.Send(fk(h0.ID, h1.ID, 9), 4<<20)
	r.k.Run(simtime.Never)
	if !done {
		t.Fatalf("swift flow never completed")
	}
}
