// Package fabric simulates the RoCEv2 data plane: store-and-forward switches
// with per-egress FIFO queues, ingress-attributed PFC pause/resume, ECN
// marking, ECMP forwarding, and the per-port counters (flow statistics,
// pairwise queue-wait weights, inter-port traffic meters, PFC event logs)
// that Vedrfolnir's telemetry collection reads (§III-C3).
package fabric

import (
	"fmt"

	"vedrfolnir/internal/topo"
)

// FlowKey is the 5-tuple identifying a flow. Src/Dst are node IDs standing
// in for IP addresses; ports and protocol disambiguate concurrent flows
// between the same pair of hosts.
type FlowKey struct {
	Src, Dst         topo.NodeID
	SrcPort, DstPort uint16
	Proto            uint8
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d>%d:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Reverse returns the key of the reverse direction (ACKs, CNPs).
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Hash returns a deterministic 64-bit hash of the 5-tuple (FNV-1a). Switches
// use it for ECMP selection, so all packets of a flow follow one path.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(uint32(k.Src)))
	mix(uint64(uint32(k.Dst)))
	mix(uint64(k.SrcPort)<<32 | uint64(k.DstPort)<<16 | uint64(k.Proto))
	return h
}

// PathHash is the value used for ECMP decisions for this flow. Forward
// traffic and its reverse (ACK) traffic hash identically so both directions
// share a symmetric path, as RoCE deployments typically configure.
func (k FlowKey) PathHash() uint64 {
	if k.Src > k.Dst || (k.Src == k.Dst && k.SrcPort > k.DstPort) {
		return k.Reverse().Hash()
	}
	return k.Hash()
}

// Kind enumerates the packet types the fabric moves.
type Kind uint8

// Packet kinds.
const (
	KindData   Kind = iota // RDMA payload cell
	KindAck                // per-cell acknowledgement (RTT source)
	KindCNP                // congestion notification packet (DCQCN)
	KindPause              // PFC PAUSE frame (link-local)
	KindResume             // PFC RESUME frame (link-local)
	KindNotify             // Vedrfolnir notification packet (highest priority)
)

func (kd Kind) String() string {
	switch kd {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindCNP:
		return "cnp"
	case KindPause:
		return "pause"
	case KindResume:
		return "resume"
	case KindNotify:
		return "notify"
	default:
		return fmt.Sprintf("kind(%d)", uint8(kd))
	}
}

// Control packet wire sizes in bytes.
const (
	AckSize    = 64
	CNPSize    = 64
	PFCSize    = 64
	NotifySize = 64
)

// Packet is one unit moving through the fabric. Data packets are "cells" —
// fixed-size quanta of an RDMA message (see DESIGN.md: cell size only
// quantizes timing, all thresholds are byte-denominated).
type Packet struct {
	Kind Kind
	Flow FlowKey     // flow attribution for telemetry
	To   topo.NodeID // routing destination
	Size int         // wire size in bytes
	Seq  int64       // cell index; echoed by ACKs
	TTL  int
	ECN  bool // congestion-experienced mark

	// SentAt is stamped by the sender for RTT measurement on the ACK echo.
	SentAt int64
	// Payload carries control information (e.g. notification contents).
	Payload any
}

// DefaultTTL bounds forwarding hops; loops exhaust it and drop.
const DefaultTTL = 64
