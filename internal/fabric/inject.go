package fabric

import (
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// InjectPFCStorm makes the given switch port behave like the hardware bug
// of §II-B: from start, it continuously asserts PAUSE toward its upstream
// neighbour regardless of queue occupancy, and releases it after duration.
// Cascading backpressure then propagates through the normal PFC machinery.
func (n *Network) InjectPFCStorm(sw topo.NodeID, port int, start simtime.Time, duration simtime.Duration) {
	s := n.switches[sw]
	if s == nil {
		panic("fabric: PFC storm injection point must be a switch")
	}
	n.K.At(start, func() {
		s.stormPorts[port] = true
		if !s.pausedUpstream[port] {
			s.pausedUpstream[port] = true
			n.sendPFC(sw, port, true, s.busiestEgressFor(port), true)
		}
	})
	n.K.At(start.Add(duration), func() {
		s.stormPorts[port] = false
		if s.pausedUpstream[port] && s.ingressBytes[port] <= n.Cfg.PFCResumeThreshold {
			s.pausedUpstream[port] = false
			n.sendPFC(sw, port, false, s.busiestEgressFor(port), true)
		}
	})
}
