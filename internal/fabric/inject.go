package fabric

import (
	"fmt"

	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// InjectPFCStorm makes the given switch port behave like the hardware bug
// of §II-B: from start, it continuously asserts PAUSE toward its upstream
// neighbour regardless of queue occupancy, and releases it after duration.
// Cascading backpressure then propagates through the normal PFC machinery.
// The injection point must be a switch.
func (n *Network) InjectPFCStorm(sw topo.NodeID, port int, start simtime.Time, duration simtime.Duration) error {
	s := n.switches[sw]
	if s == nil {
		return fmt.Errorf("fabric: PFC storm injection point %d is not a switch", sw)
	}
	n.K.At(start, func() {
		s.stormPorts[port] = true
		if !s.pausedUpstream[port] {
			s.pausedUpstream[port] = true
			n.sendPFC(sw, port, true, s.busiestEgressFor(port), true)
		}
	})
	n.K.At(start.Add(duration), func() {
		s.stormPorts[port] = false
		if s.pausedUpstream[port] && s.ingressBytes[port] <= n.Cfg.PFCResumeThreshold {
			s.pausedUpstream[port] = false
			n.sendPFC(sw, port, false, s.busiestEgressFor(port), true)
		}
	})
	return nil
}
