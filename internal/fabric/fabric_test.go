package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// sink records arrivals at a host.
type sink struct {
	got []*Packet
	at  []simtime.Time
	k   *sim.Kernel
}

func (s *sink) Receive(pkt *Packet, port int) {
	s.got = append(s.got, pkt)
	s.at = append(s.at, s.k.Now())
}

// starTopo builds n hosts around one switch, 100Gbps / 1µs links.
func starTopo(n int) *topo.Topology {
	tp := topo.New()
	var hosts []topo.NodeID
	for i := 0; i < n; i++ {
		hosts = append(hosts, tp.AddNode(topo.KindHost, "h"))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range hosts {
		tp.AddLink(h, sw, 100*simtime.Gbps, time.Microsecond)
	}
	tp.ComputeRoutes()
	return tp
}

func flow(src, dst topo.NodeID) FlowKey {
	return FlowKey{Src: src, Dst: dst, SrcPort: 1000, DstPort: 2000, Proto: 17}
}

func TestSingleHopDelivery(t *testing.T) {
	tp := starTopo(2)
	k := sim.New(1)
	n := NewNetwork(k, tp, DefaultConfig())
	h0, h1 := tp.Hosts()[0], tp.Hosts()[1]
	rx := &sink{k: k}
	n.Attach(h1, rx)

	n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h1), To: h1, Size: 1250, Seq: 7})
	k.Run(simtime.Never)

	if len(rx.got) != 1 {
		t.Fatalf("got %d packets, want 1", len(rx.got))
	}
	if rx.got[0].Seq != 7 {
		t.Fatalf("seq = %d, want 7", rx.got[0].Seq)
	}
	// 100ns tx + 1µs + 100ns tx + 1µs = 2.2µs.
	want := simtime.Time(2200 * time.Nanosecond)
	if rx.at[0] != want {
		t.Fatalf("arrival = %v, want %v", rx.at[0], want)
	}
}

func TestFIFOAndSerialization(t *testing.T) {
	tp := starTopo(2)
	k := sim.New(1)
	n := NewNetwork(k, tp, DefaultConfig())
	h0, h1 := tp.Hosts()[0], tp.Hosts()[1]
	rx := &sink{k: k}
	n.Attach(h1, rx)

	for i := 0; i < 3; i++ {
		n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h1), To: h1, Size: 1250, Seq: int64(i)})
	}
	k.Run(simtime.Never)
	if len(rx.got) != 3 {
		t.Fatalf("got %d packets, want 3", len(rx.got))
	}
	for i, p := range rx.got {
		if p.Seq != int64(i) {
			t.Fatalf("out of order: got seq %d at position %d", p.Seq, i)
		}
	}
	// Packets pipeline: arrivals spaced by one serialization (100ns).
	if d := rx.at[1].Sub(rx.at[0]); d != 100*time.Nanosecond {
		t.Fatalf("spacing = %v, want 100ns", d)
	}
}

func TestECNMarking(t *testing.T) {
	tp := starTopo(3)
	k := sim.New(1)
	cfg := DefaultConfig()
	cfg.ECNThreshold = 2000
	cfg.PFCPauseThreshold = 1 << 40 // effectively off
	n := NewNetwork(k, tp, cfg)
	h0, h1, h2 := tp.Hosts()[0], tp.Hosts()[1], tp.Hosts()[2]
	rx := &sink{k: k}
	n.Attach(h2, rx)

	// Two senders flood one egress; later packets must join a deep queue.
	for i := 0; i < 10; i++ {
		n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h2), To: h2, Size: 1250, Seq: int64(i)})
		n.Inject(h1, &Packet{Kind: KindData, Flow: flow(h1, h2), To: h2, Size: 1250, Seq: int64(i)})
	}
	k.Run(simtime.Never)

	if len(rx.got) != 20 {
		t.Fatalf("got %d packets, want 20", len(rx.got))
	}
	marked := 0
	for _, p := range rx.got {
		if p.ECN {
			marked++
		}
	}
	if marked == 0 {
		t.Fatalf("no ECN marks despite sustained congestion")
	}
	sw := tp.Switches()[0]
	st := n.SwitchAt(sw)
	var ecn int64
	for _, ps := range st.Stats {
		ecn += ps.ECNMarks
	}
	if int(ecn) != marked {
		t.Fatalf("switch ECN counter %d != observed marks %d", ecn, marked)
	}
}

func TestPFCPauseAndResume(t *testing.T) {
	tp := starTopo(3)
	k := sim.New(1)
	cfg := Config{PFCPauseThreshold: 4000, PFCResumeThreshold: 1500, ECNThreshold: 1 << 40, TTL: 16}
	n := NewNetwork(k, tp, cfg)
	h0, h1, h2 := tp.Hosts()[0], tp.Hosts()[1], tp.Hosts()[2]
	rx := &sink{k: k}
	n.Attach(h2, rx)

	// Flood from both senders so the switch ingress attribution crosses
	// the pause threshold.
	for i := 0; i < 30; i++ {
		n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h2), To: h2, Size: 1250, Seq: int64(i)})
		n.Inject(h1, &Packet{Kind: KindData, Flow: flow(h1, h2), To: h2, Size: 1250, Seq: int64(i)})
	}
	k.Run(simtime.Never)

	if len(rx.got) != 60 {
		t.Fatalf("lossless fabric lost packets: got %d, want 60", len(rx.got))
	}
	var pauses, resumes int
	for _, ev := range n.PFCLog {
		if ev.Pause {
			pauses++
		} else {
			resumes++
		}
	}
	if pauses == 0 {
		t.Fatalf("expected PFC pauses under incast flood")
	}
	if pauses != resumes {
		t.Fatalf("pauses (%d) != resumes (%d); a port stayed paused", pauses, resumes)
	}
	// Host egress ports must have recorded paused time.
	if n.Egress(h0, 0).PauseCount() == 0 && n.Egress(h1, 0).PauseCount() == 0 {
		t.Fatalf("no upstream host egress was ever paused")
	}
	// Cause egress on pause events must be the port toward h2.
	sw := tp.Switches()[0]
	for _, ev := range n.PFCLog {
		if ev.Pause && ev.Downstream == sw {
			cause := tp.PeerOf(topo.PortID{Node: sw, Port: ev.CauseEgress})
			if cause.Node != h2 {
				t.Fatalf("pause cause egress points at node %d, want %d", cause.Node, h2)
			}
		}
	}
}

func TestPFCStormInjection(t *testing.T) {
	tp := starTopo(2)
	k := sim.New(1)
	n := NewNetwork(k, tp, DefaultConfig())
	h0, h1 := tp.Hosts()[0], tp.Hosts()[1]
	rx := &sink{k: k}
	n.Attach(h1, rx)
	sw := tp.Switches()[0]

	// Storm on the switch port facing h0: pauses h0's NIC from 10µs to 60µs.
	n.InjectPFCStorm(sw, 0, simtime.Time(10*time.Microsecond), 50*time.Microsecond)

	// h0 sends one packet at t=20µs: it must be held until the storm ends.
	k.At(simtime.Time(20*time.Microsecond), func() {
		n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h1), To: h1, Size: 1250})
	})
	k.Run(simtime.Never)

	if len(rx.got) != 1 {
		t.Fatalf("got %d packets, want 1", len(rx.got))
	}
	// Released at 60µs (+PFC frame latency), then 2.2µs path time.
	if rx.at[0] < simtime.Time(62*time.Microsecond) {
		t.Fatalf("packet arrived at %v, before storm ended", rx.at[0])
	}
	var injected int
	for _, ev := range n.PFCLog {
		if ev.Injected {
			injected++
		}
	}
	if injected != 2 {
		t.Fatalf("injected PFC events = %d, want 2 (pause+resume)", injected)
	}
	if got := n.Egress(h0, 0).PausedFor(k.Now()); got < 40*time.Microsecond {
		t.Fatalf("paused duration %v, want >= 40µs", got)
	}
}

func TestTTLLoopDrop(t *testing.T) {
	// Two switches pointing at each other for h1's traffic → loop.
	tp := topo.New()
	h0 := tp.AddNode(topo.KindHost, "h0")
	h1 := tp.AddNode(topo.KindHost, "h1")
	s0 := tp.AddNode(topo.KindSwitch, "s0")
	s1 := tp.AddNode(topo.KindSwitch, "s1")
	tp.AddLink(h0, s0, 100*simtime.Gbps, time.Microsecond)
	tp.AddLink(h1, s1, 100*simtime.Gbps, time.Microsecond)
	tp.AddLink(s0, s1, 100*simtime.Gbps, time.Microsecond)
	tp.ComputeRoutes()
	// s1 sends h1-traffic back to s0.
	back := -1
	for pi, peer := range tp.Node(s1).Ports {
		if peer.Node == s0 {
			back = pi
		}
	}
	tp.OverrideNextHops(s1, h1, []int{back})

	k := sim.New(1)
	cfg := DefaultConfig()
	cfg.TTL = 8
	n := NewNetwork(k, tp, cfg)
	rx := &sink{k: k}
	n.Attach(h1, rx)
	n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h1), To: h1, Size: 1250})
	k.SetEventLimit(100000)
	k.Run(simtime.Never)

	if len(rx.got) != 0 {
		t.Fatalf("looped packet was delivered")
	}
	total := n.Drops[s0] + n.Drops[s1]
	if total != 1 {
		t.Fatalf("drops = %d, want 1", total)
	}
}

func TestDeliverControl(t *testing.T) {
	tp := starTopo(2)
	k := sim.New(1)
	n := NewNetwork(k, tp, DefaultConfig())
	h0, h1 := tp.Hosts()[0], tp.Hosts()[1]
	rx := &sink{k: k}
	n.Attach(h1, rx)

	// Congest the path first: control packets must not be delayed by it.
	for i := 0; i < 100; i++ {
		n.Inject(h0, &Packet{Kind: KindData, Flow: flow(h0, h1), To: h1, Size: 1250})
	}
	hops := n.DeliverControl(h0, h1, &Packet{Kind: KindNotify, Flow: flow(h0, h1), To: h1, Size: NotifySize})
	k.Run(simtime.Never)

	if hops != 2 {
		t.Fatalf("hops = %d, want 2", hops)
	}
	var notifyAt simtime.Time = -1
	for i, p := range rx.got {
		if p.Kind == KindNotify {
			notifyAt = rx.at[i]
		}
	}
	if notifyAt < 0 {
		t.Fatalf("notification not delivered")
	}
	// 2 hops × (1µs + 64B@100G≈5.12ns) ≈ 2.01µs — far earlier than the
	// 100-packet data queue would allow.
	if notifyAt > simtime.Time(3*time.Microsecond) {
		t.Fatalf("notification delayed by congestion: %v", notifyAt)
	}
}

func TestWaitMatrixAccumulation(t *testing.T) {
	tp := starTopo(3)
	k := sim.New(1)
	cfg := DefaultConfig()
	cfg.PFCPauseThreshold = 1 << 40
	n := NewNetwork(k, tp, cfg)
	h0, h1, h2 := tp.Hosts()[0], tp.Hosts()[1], tp.Hosts()[2]
	n.Attach(h2, &sink{k: k})

	f0, f1 := flow(h0, h2), flow(h1, h2)
	// h0 sends two packets: the first is mid-transmission when the rest
	// arrive, the second still queued. h1's packets then wait behind it.
	n.Inject(h0, &Packet{Kind: KindData, Flow: f0, To: h2, Size: 1250})
	n.Inject(h0, &Packet{Kind: KindData, Flow: f0, To: h2, Size: 1250})
	n.Inject(h1, &Packet{Kind: KindData, Flow: f1, To: h2, Size: 1250})
	n.Inject(h1, &Packet{Kind: KindData, Flow: f1, To: h2, Size: 1250})
	k.Run(simtime.Never)

	sw := tp.Switches()[0]
	st := n.SwitchAt(sw)
	// Egress toward h2 is port 2 (links added in host order).
	ps := st.Stats[2]
	if ps.FlowPkts[f0] != 2 || ps.FlowPkts[f1] != 2 {
		t.Fatalf("flow counts: f0=%d f1=%d", ps.FlowPkts[f0], ps.FlowPkts[f1])
	}
	if ps.Wait[f1][f0] == 0 {
		t.Fatalf("f1 never recorded waiting behind f0: %v", ps.Wait)
	}
	if ps.MeterIn[0] != 2500 || ps.MeterIn[1] != 2500 {
		t.Fatalf("MeterIn = %v", ps.MeterIn)
	}
}

// Property: the fabric is lossless — every data byte injected on a valid
// route is delivered — and per-flow FIFO order holds, for random traffic
// matrices over the paper fat-tree.
func TestConservationAndOrderProperty(t *testing.T) {
	ft := topo.PaperFatTree()
	f := func(seed int64) bool {
		k := sim.New(seed)
		cfg := DefaultConfig()
		n := NewNetwork(k, ft.Topology, cfg)
		rng := k.Rand()
		hosts := ft.Hosts()

		type sinkState struct {
			bytes   int64
			lastSeq map[FlowKey]int64
		}
		states := map[topo.NodeID]*sinkState{}
		ordered := true
		for _, h := range hosts {
			h := h
			st := &sinkState{lastSeq: map[FlowKey]int64{}}
			states[h] = st
			n.Attach(h, deviceFunc(func(pkt *Packet, port int) {
				st.bytes += int64(pkt.Size)
				if last, ok := st.lastSeq[pkt.Flow]; ok && pkt.Seq <= last {
					ordered = false
				}
				st.lastSeq[pkt.Flow] = pkt.Seq
			}))
		}

		var injected int64
		for i := 0; i < 8; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			fl := FlowKey{Src: src, Dst: dst, SrcPort: uint16(1000 + i), DstPort: uint16(2000 + i), Proto: 17}
			pkts := 1 + rng.Intn(30)
			base := simtime.Time(rng.Intn(50_000))
			for s := 0; s < pkts; s++ {
				size := 256 + rng.Intn(4096)
				injected += int64(size)
				seq := int64(s)
				// Sequences leave the source in order; the fabric must
				// preserve that order per flow.
				at := base.Add(simtime.Duration(s) * 500)
				k.At(at, func() {
					n.Inject(src, &Packet{Kind: KindData, Flow: fl, To: dst, Size: size, Seq: seq})
				})
			}
		}
		k.SetEventLimit(10_000_000)
		k.Run(simtime.Never)

		var delivered int64
		for _, st := range states {
			delivered += st.bytes
		}
		return delivered == injected && ordered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// deviceFunc adapts a function to the Device interface.
type deviceFunc func(pkt *Packet, port int)

func (d deviceFunc) Receive(pkt *Packet, port int) { d(pkt, port) }

// Property: PFC pause/resume events always alternate per port and the
// fabric quiesces unpaused after traffic drains (no stuck pauses without a
// storm).
func TestPFCQuiescenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		tp := starTopo(4)
		k := sim.New(seed)
		cfg := Config{PFCPauseThreshold: 4000, PFCResumeThreshold: 1500, ECNThreshold: 1 << 40, TTL: 16}
		n := NewNetwork(k, tp, cfg)
		hosts := tp.Hosts()
		for _, h := range hosts {
			n.Attach(h, &sink{k: k})
		}
		rng := k.Rand()
		// All hosts flood the last one.
		dst := hosts[3]
		for i, src := range hosts[:3] {
			fl := FlowKey{Src: src, Dst: dst, SrcPort: uint16(100 * (i + 1)), DstPort: 9, Proto: 17}
			for s := 0; s < 20+rng.Intn(40); s++ {
				src, fl := src, fl
				k.At(simtime.Time(rng.Intn(10_000)), func() {
					n.Inject(src, &Packet{Kind: KindData, Flow: fl, To: dst, Size: 1250})
				})
			}
		}
		k.SetEventLimit(10_000_000)
		k.Run(simtime.Never)

		// Alternation per (upstream) port.
		lastPause := map[topo.PortID]bool{}
		for _, ev := range n.PFCLog {
			if prev, seen := lastPause[ev.Upstream]; seen && prev == ev.Pause {
				return false
			}
			lastPause[ev.Upstream] = ev.Pause
		}
		// Quiescence: nothing left paused.
		for _, h := range tp.Hosts() {
			if n.Egress(h, 0).Paused() {
				return false
			}
		}
		for _, sw := range tp.Switches() {
			for pi := range tp.Node(sw).Ports {
				if n.Egress(sw, pi).Paused() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
