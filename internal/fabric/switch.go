package fabric

import (
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// queued is a packet plus the ingress port that must be credited when it
// leaves the queue (PFC attribution).
type queued struct {
	pkt     *Packet
	ingress int
}

// egressPort is one output queue of a node (switch or host NIC).
type egressPort struct {
	node topo.NodeID
	port int

	bw    simtime.Rate
	delay simtime.Duration

	q          []queued // data packets
	cq         []queued // control packets (ACK/CNP): strict priority
	bytes      int64
	pktsByFlow map[FlowKey]int
	busy       bool
	paused     bool

	pausedSince simtime.Time

	// Cumulative counters exposed to telemetry.
	PauseCount  int64
	PausedTotal simtime.Duration
}

func newEgressPort(node topo.NodeID, port int, bw simtime.Rate, delay simtime.Duration) *egressPort {
	return &egressPort{node: node, port: port, bw: bw, delay: delay, pktsByFlow: make(map[FlowKey]int)}
}

// control reports whether a packet rides the strict-priority control queue
// (ACKs and CNPs, as RoCE NICs and switches prioritize them in practice).
func control(k Kind) bool { return k == KindAck || k == KindCNP }

// push enqueues pkt. pktsByFlow tracks data packets only: control packets
// (ACK/CNP) are served with strict priority, so they neither wait behind
// data nor count as packets "in front" for the w(f_i, f_j) matrix.
func (e *egressPort) push(pkt *Packet, ingress int) {
	if control(pkt.Kind) {
		e.cq = append(e.cq, queued{pkt: pkt, ingress: ingress})
	} else {
		e.q = append(e.q, queued{pkt: pkt, ingress: ingress})
		e.pktsByFlow[pkt.Flow]++
	}
	e.bytes += int64(pkt.Size)
}

func (e *egressPort) empty() bool { return len(e.q) == 0 && len(e.cq) == 0 }

// head returns the next packet to serialize: control first.
func (e *egressPort) head() queued {
	if len(e.cq) > 0 {
		return e.cq[0]
	}
	return e.q[0]
}

func (e *egressPort) pop() queued {
	var item queued
	if len(e.cq) > 0 {
		item = e.cq[0]
		e.cq[0] = queued{}
		e.cq = e.cq[1:]
	} else {
		item = e.q[0]
		e.q[0] = queued{}
		e.q = e.q[1:]
	}
	e.bytes -= int64(item.pkt.Size)
	if !control(item.pkt.Kind) {
		if c := e.pktsByFlow[item.pkt.Flow]; c <= 1 {
			delete(e.pktsByFlow, item.pkt.Flow)
		} else {
			e.pktsByFlow[item.pkt.Flow] = c - 1
		}
	}
	return item
}

// PortStats are the cumulative per-egress telemetry counters a switch keeps
// (§III-C3: "flow-level telemetry (flows' 5-tuple, packet count per flow,
// queue depth, etc.) and port-level telemetry (traffic size between ports,
// number of packets paused by PFC per port, etc.)").
type PortStats struct {
	FlowPkts  map[FlowKey]int64
	FlowBytes map[FlowKey]int64
	// Wait accumulates the paper's w(f_i, f_j): for every enqueued packet
	// of f_i, the number of f_j packets already queued ahead of it.
	Wait map[FlowKey]map[FlowKey]int64
	// MeterIn is bytes entering this egress per ingress port — the
	// meter(p_i, p_j) term of the e(p_i, p_j) edge weight.
	MeterIn map[int]int64

	Enqueues  int64
	QDepthSum int64 // sum of queue bytes observed at each enqueue
	ECNMarks  int64
}

func newPortStats() *PortStats {
	return &PortStats{
		FlowPkts:  make(map[FlowKey]int64),
		FlowBytes: make(map[FlowKey]int64),
		Wait:      make(map[FlowKey]map[FlowKey]int64),
		MeterIn:   make(map[int]int64),
	}
}

// Switch is the forwarding and accounting state of one switch.
type Switch struct {
	net   *Network
	ID    topo.NodeID
	Stats []*PortStats // per egress port

	// ingressBytes attributes currently-buffered bytes to the ingress port
	// they arrived on; crossing the pause threshold pauses that upstream
	// link (ingress-based PFC).
	ingressBytes   []int64
	pausedUpstream []bool

	// stormPorts marks ingress ports whose upstream is being force-paused
	// by an injected PFC storm, so organic resume logic leaves them alone.
	stormPorts []bool

	// TTLDrops counts packets dropped here for TTL exhaustion.
	TTLDrops int64
}

func newSwitch(n *Network, id topo.NodeID, ports int) *Switch {
	s := &Switch{
		net:            n,
		ID:             id,
		Stats:          make([]*PortStats, ports),
		ingressBytes:   make([]int64, ports),
		pausedUpstream: make([]bool, ports),
		stormPorts:     make([]bool, ports),
	}
	for i := range s.Stats {
		s.Stats[i] = newPortStats()
	}
	return s
}

// forward routes pkt out of the switch. ingress is the arrival port, or -1
// for locally injected traffic.
func (s *Switch) forward(pkt *Packet, ingress int) {
	pkt.TTL--
	if pkt.TTL <= 0 {
		s.TTLDrops++
		s.net.Drops[s.ID]++
		s.creditIngressless(ingress, pkt)
		return
	}
	ports := s.net.Topo.NextHops(s.ID, pkt.To)
	if len(ports) == 0 {
		s.net.Drops[s.ID]++
		return
	}
	out := ports[pkt.Flow.PathHash()%uint64(len(ports))]
	s.net.enqueue(s.ID, out, ingress, pkt)
}

// creditIngressless is a no-op hook kept for symmetry: dropped packets were
// never enqueued, so no ingress credit is outstanding.
func (s *Switch) creditIngressless(int, *Packet) {}

// noteEnqueue updates telemetry counters and PFC attribution when pkt joins
// egress queue ep having arrived on ingress.
func (s *Switch) noteEnqueue(ep *egressPort, ingress int, pkt *Packet) {
	st := s.Stats[ep.port]
	st.Enqueues++
	st.QDepthSum += ep.bytes
	st.FlowPkts[pkt.Flow]++
	st.FlowBytes[pkt.Flow] += int64(pkt.Size)
	if ingress >= 0 {
		st.MeterIn[ingress] += int64(pkt.Size)
	}

	// Pairwise wait accumulation: this data packet waits behind every
	// data packet currently in the queue, grouped by flow. Control
	// packets skip the matrix (they are served with priority).
	if !control(pkt.Kind) && len(ep.pktsByFlow) > 0 {
		row := st.Wait[pkt.Flow]
		if row == nil {
			row = make(map[FlowKey]int64)
			st.Wait[pkt.Flow] = row
		}
		for fk, cnt := range ep.pktsByFlow {
			if fk == pkt.Flow {
				continue
			}
			row[fk] += int64(cnt)
		}
	}

	// ECN mark data packets joining a deep queue.
	if pkt.Kind == KindData && ep.bytes >= s.net.Cfg.ECNThreshold {
		pkt.ECN = true
		st.ECNMarks++
	}

	// Ingress-based PFC: attribute and maybe pause upstream.
	if ingress >= 0 {
		s.ingressBytes[ingress] += int64(pkt.Size)
		if !s.pausedUpstream[ingress] && s.ingressBytes[ingress] >= s.net.Cfg.PFCPauseThreshold {
			s.pausedUpstream[ingress] = true
			s.net.sendPFC(s.ID, ingress, true, s.busiestEgressFor(ingress), false)
		}
	}
}

// noteDequeue credits PFC attribution when a packet leaves an egress queue.
func (s *Switch) noteDequeue(ep *egressPort, item queued) {
	if item.ingress < 0 {
		return
	}
	s.ingressBytes[item.ingress] -= int64(item.pkt.Size)
	if s.pausedUpstream[item.ingress] && !s.stormPorts[item.ingress] &&
		s.ingressBytes[item.ingress] <= s.net.Cfg.PFCResumeThreshold {
		s.pausedUpstream[item.ingress] = false
		s.net.sendPFC(s.ID, item.ingress, false, ep.port, false)
	}
}

// busiestEgressFor returns the egress port holding the most bytes from the
// given ingress — the "cause" port p_j recorded on a pause event.
func (s *Switch) busiestEgressFor(ingress int) int {
	best, bestBytes := -1, int64(-1)
	for pi, ep := range s.net.egress[s.ID] {
		var b int64
		for _, it := range ep.q {
			if it.ingress == ingress {
				b += int64(it.pkt.Size)
			}
		}
		for _, it := range ep.cq {
			if it.ingress == ingress {
				b += int64(it.pkt.Size)
			}
		}
		if b > bestBytes {
			best, bestBytes = pi, b
		}
	}
	return best
}

// UpstreamPaused reports whether this switch currently holds the upstream
// of ingress port i paused.
func (s *Switch) UpstreamPaused(i int) bool { return s.pausedUpstream[i] }

// IngressBytes returns the bytes currently attributed to ingress port i.
func (s *Switch) IngressBytes(i int) int64 { return s.ingressBytes[i] }
