// Package hostmon is the real-testbed substitute for Fig 11. The paper
// measures the host-side monitor's CPU and memory overhead on a 4×H100
// RoCE testbed running a 4-node NCCL AllGather of 1 GB, comparing runs with
// and without the monitor. Without that hardware, this package runs the
// same workload shape through the real monitor implementation in-process
// and measures actual Go CPU time and allocated bytes, with and without the
// monitor attached. Fig 11's claim — the monitor's overhead is practically
// negligible — is checked against the real code, not a model of it.
package hostmon

import (
	"runtime"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// Measurement is one run's host-resource consumption.
type Measurement struct {
	// CPU is the wall-clock execution time of the run (single-threaded
	// simulation, so wall ≈ CPU).
	CPU time.Duration
	// AllocBytes is the heap allocated during the run.
	AllocBytes uint64
	// Events is the number of simulation events processed.
	Events uint64
	// SimTime is the simulated completion time of the AllGather.
	SimTime simtime.Duration
}

// Config shapes the measured workload.
type Config struct {
	Nodes       int   // paper: 4
	Bytes       int64 // total AllGather volume; paper: 1 GB (scale down)
	CellSize    int
	WithMonitor bool
	Seed        int64

	// Stopwatch supplies the CPU-time measurement clock. Nil selects the
	// system monotonic clock via simtime.NewSystemStopwatch — the only
	// sanctioned wall-clock source; Fig 11 measures real host overhead, so
	// simulated time cannot stand in for it. Tests inject fakes here.
	Stopwatch simtime.Stopwatch
}

// DefaultConfig mirrors Fig 11 at 1/90 scale: 4 nodes, ~11 MB.
func DefaultConfig() Config {
	return Config{Nodes: 4, Bytes: int64(1e9) / 90, CellSize: 64 << 10, Seed: 1}
}

// MeasureAllGather executes one AllGather run and measures it.
func MeasureAllGather(cfg Config) (Measurement, error) {
	tp := topo.New()
	var ids []topo.NodeID
	for i := 0; i < cfg.Nodes; i++ {
		ids = append(ids, tp.AddNode(topo.KindHost, "h"))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range ids {
		tp.AddLink(h, sw, 100*simtime.Gbps, 2*time.Microsecond)
	}
	tp.ComputeRoutes()

	k := sim.New(cfg.Seed)
	net := fabric.NewNetwork(k, tp, fabric.DefaultConfig())
	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = cfg.CellSize
	hosts := make(map[topo.NodeID]*rdma.Host)
	for _, id := range ids {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			return Measurement{}, err
		}
		hosts[id] = h
	}
	schs, err := collective.Decompose(collective.Spec{
		Op: collective.AllGather, Alg: collective.Ring, Ranks: ids, Bytes: cfg.Bytes,
	})
	if err != nil {
		return Measurement{}, err
	}
	run, err := collective.NewRunner(k, hosts, schs)
	if err != nil {
		return Measurement{}, err
	}
	run.Bind()
	if cfg.WithMonitor {
		mcfg := monitor.DefaultConfig()
		mcfg.CellSize = cfg.CellSize
		monitor.NewSystem(k, net, run, hosts, mcfg)
	}

	sw2 := cfg.Stopwatch
	if sw2 == nil {
		sw2 = simtime.NewSystemStopwatch()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sw2.Start()

	run.Start()
	k.Run(simtime.Never)

	cpu := sw2.Elapsed()
	runtime.ReadMemStats(&after)
	if err := run.Err(); err != nil {
		return Measurement{}, err
	}
	_, doneAt := run.Done()
	return Measurement{
		CPU:        cpu,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Events:     k.Events(),
		SimTime:    simtime.Duration(doneAt),
	}, nil
}

// Compare runs the workload n times with and without the monitor and
// returns the per-run averages — the two bar groups of Fig 11.
func Compare(cfg Config, n int) (with, without Measurement, err error) {
	if n <= 0 {
		n = 1
	}
	acc := func(withMon bool) (Measurement, error) {
		var total Measurement
		for i := 0; i < n; i++ {
			c := cfg
			c.WithMonitor = withMon
			c.Seed = cfg.Seed + int64(i)
			m, err := MeasureAllGather(c)
			if err != nil {
				return Measurement{}, err
			}
			total.CPU += m.CPU
			total.AllocBytes += m.AllocBytes
			total.Events += m.Events
			total.SimTime += m.SimTime
		}
		total.CPU /= time.Duration(n)
		total.AllocBytes /= uint64(n)
		total.Events /= uint64(n)
		total.SimTime /= simtime.Duration(n)
		return total, nil
	}
	if with, err = acc(true); err != nil {
		return Measurement{}, Measurement{}, err
	}
	if without, err = acc(false); err != nil {
		return Measurement{}, Measurement{}, err
	}
	return with, without, nil
}
