package hostmon

import "testing"

func TestMeasureCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bytes = 4 << 20 // small for unit tests
	m, err := MeasureAllGather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimTime <= 0 {
		t.Fatalf("collective did not complete: %+v", m)
	}
	if m.Events == 0 || m.AllocBytes == 0 {
		t.Fatalf("no resources measured: %+v", m)
	}
}

func TestMonitorOverheadIsModest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bytes = 8 << 20
	with, without, err := Compare(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if with.SimTime != without.SimTime {
		t.Fatalf("monitor changed the simulated outcome: %v vs %v",
			with.SimTime, without.SimTime)
	}
	// Fig 11's claim is "practically negligible"; in-process we only
	// assert the monitor does not blow up the memory budget (wall time is
	// too noisy for CI-grade assertions).
	if without.AllocBytes == 0 {
		t.Fatal("baseline allocated nothing")
	}
	ratio := float64(with.AllocBytes) / float64(without.AllocBytes)
	if ratio > 2.0 {
		t.Fatalf("monitor allocation ratio %.2f exceeds 2x", ratio)
	}
}

func TestCleanRunDeterministicSimTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bytes = 4 << 20
	a, err := MeasureAllGather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureAllGather(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.Events != b.Events {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
