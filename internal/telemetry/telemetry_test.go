package telemetry

import (
	"testing"
	"time"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

type rig struct {
	k     *sim.Kernel
	tp    *topo.Topology
	net   *fabric.Network
	hosts map[topo.NodeID]*rdma.Host
	col   *Collector
}

func newStarRig(t *testing.T, n int, fcfg fabric.Config) *rig {
	t.Helper()
	tp := topo.New()
	var ids []topo.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, tp.AddNode(topo.KindHost, "h"))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range ids {
		tp.AddLink(h, sw, 100*simtime.Gbps, time.Microsecond)
	}
	tp.ComputeRoutes()
	k := sim.New(11)
	net := fabric.NewNetwork(k, tp, fcfg)
	r := &rig{k: k, tp: tp, net: net, hosts: map[topo.NodeID]*rdma.Host{}}
	cfg := rdma.DefaultConfig()
	cfg.CellSize = 4096
	for _, id := range ids {
		h, err := rdma.NewHost(k, net, id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.hosts[id] = h
	}
	r.col = NewCollector(net)
	return r
}

func fk(src, dst topo.NodeID, port uint16) fabric.FlowKey {
	return fabric.FlowKey{Src: src, Dst: dst, SrcPort: port, DstPort: port, Proto: 17}
}

func TestPollCollectsFlowRecords(t *testing.T) {
	r := newStarRig(t, 3, fabric.DefaultConfig())
	h := r.tp.Hosts()
	f0, f1 := fk(h[0], h[2], 100), fk(h[1], h[2], 200)
	r.hosts[h[0]].Send(f0, 256*1024)
	r.hosts[h[1]].Send(f1, 256*1024)
	r.k.Run(simtime.Never)

	rep := r.col.Poll(f0, 0)
	if len(rep.Flows) == 0 {
		t.Fatalf("no flow records collected")
	}
	var sawF0, sawF1 bool
	for _, fr := range rep.Flows {
		if fr.Flow == f0 {
			sawF0 = true
			if fr.Pkts != 64 { // 256KiB / 4KiB cells
				t.Fatalf("f0 pkts = %d, want 64", fr.Pkts)
			}
			if fr.Bytes != 256*1024 {
				t.Fatalf("f0 bytes = %d", fr.Bytes)
			}
		}
		if fr.Flow == f1 {
			sawF1 = true
		}
	}
	if !sawF0 {
		t.Fatalf("polled flow missing from its own path's records")
	}
	// f1 shares the congested egress with f0 and must appear too.
	if !sawF1 {
		t.Fatalf("contending flow absent: co-flow analysis impossible")
	}
	if rep.Size() <= 0 {
		t.Fatalf("report size = %d", rep.Size())
	}
}

func TestWaitWeightsInReport(t *testing.T) {
	fcfg := fabric.DefaultConfig()
	fcfg.PFCPauseThreshold = 1 << 40
	r := newStarRig(t, 3, fcfg)
	h := r.tp.Hosts()
	f0, f1 := fk(h[0], h[2], 100), fk(h[1], h[2], 200)
	r.hosts[h[0]].Send(f0, 512*1024)
	r.hosts[h[1]].Send(f1, 512*1024)
	r.k.Run(simtime.Never)

	rep := r.col.Poll(f0, 0)
	foundWait := false
	for _, fr := range rep.Flows {
		if fr.Flow == f0 && fr.Wait[f1] > 0 {
			foundWait = true
		}
	}
	if !foundWait {
		t.Fatalf("w(f0,f1) missing despite sustained 2:1 contention")
	}
}

func TestDeltaSemantics(t *testing.T) {
	r := newStarRig(t, 2, fabric.DefaultConfig())
	h := r.tp.Hosts()
	f := fk(h[0], h[1], 100)
	r.hosts[h[0]].Send(f, 64*1024)
	r.k.Run(simtime.Never)

	first := r.col.Poll(f, 0)
	second := r.col.Poll(f, 0)
	var p1, p2 int64
	for _, fr := range first.Flows {
		p1 += fr.Pkts
	}
	for _, fr := range second.Flows {
		p2 += fr.Pkts
	}
	if p1 == 0 {
		t.Fatalf("first poll saw nothing")
	}
	if p2 != 0 {
		t.Fatalf("second poll re-reported %d packets; collection must drain", p2)
	}
}

func TestPFCSpreadingTrace(t *testing.T) {
	// Chain: h0 - s0 - s1 - h1, storm at s1's ingress from s0 pauses
	// s0's egress; polling h0→h1's flow must follow the pause to s1.
	tp := topo.New()
	h0 := tp.AddNode(topo.KindHost, "h0")
	h1 := tp.AddNode(topo.KindHost, "h1")
	s0 := tp.AddNode(topo.KindSwitch, "s0")
	s1 := tp.AddNode(topo.KindSwitch, "s1")
	tp.AddLink(h0, s0, 100*simtime.Gbps, time.Microsecond)
	tp.AddLink(s0, s1, 100*simtime.Gbps, time.Microsecond)
	tp.AddLink(s1, h1, 100*simtime.Gbps, time.Microsecond)
	tp.ComputeRoutes()
	k := sim.New(1)
	net := fabric.NewNetwork(k, tp, fabric.DefaultConfig())
	cfg := rdma.DefaultConfig()
	cfg.CellSize = 4096
	hh0, err := rdma.NewHost(k, net, h0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rdma.NewHost(k, net, h1, cfg)

	// s1 port 0 is its ingress from s0; storm there pauses s0's egress.
	var s1IngressFromS0 = -1
	for pi, peer := range tp.Node(s1).Ports {
		if peer.Node == s0 {
			s1IngressFromS0 = pi
		}
	}
	net.InjectPFCStorm(s1, s1IngressFromS0, simtime.Time(5*time.Microsecond), 100*time.Microsecond)

	f := fk(h0, h1, 100)
	hh0.Send(f, 128*1024)
	col := NewCollector(net)
	// Poll mid-storm.
	var rep *Report
	k.At(simtime.Time(50*time.Microsecond), func() { rep = col.Poll(f, time.Millisecond) })
	k.Run(simtime.Never)

	if rep == nil {
		t.Fatal("no report")
	}
	// The spreading trace must have visited s1's cause egress port.
	sawS1 := false
	for _, pr := range rep.Ports {
		if pr.Switch == s1 {
			sawS1 = true
		}
	}
	if !sawS1 {
		t.Fatalf("PFC spreading path not followed to s1; ports: %+v", rep.Ports)
	}
	// The report's PFC events must include the injected pause.
	sawInjected := false
	for _, pr := range rep.Ports {
		for _, ev := range pr.PFCEvents {
			if ev.Injected && ev.Pause {
				sawInjected = true
			}
		}
	}
	if !sawInjected {
		t.Fatalf("injected pause event missing from report")
	}
}

func TestOverheadAccounting(t *testing.T) {
	r := newStarRig(t, 2, fabric.DefaultConfig())
	h := r.tp.Hosts()
	f := fk(h[0], h[1], 100)
	r.hosts[h[0]].Send(f, 64*1024)
	r.k.Run(simtime.Never)

	rep := r.col.Poll(f, 0)
	tot := r.col.Totals
	if tot.Polls != 1 {
		t.Fatalf("polls = %d", tot.Polls)
	}
	if tot.TelemetryBytes != int64(rep.Size()) {
		t.Fatalf("telemetry bytes %d != report size %d", tot.TelemetryBytes, rep.Size())
	}
	if tot.PollBytes != int64(rep.HopsPolled*PollPacketSize) {
		t.Fatalf("poll bytes %d, hops %d", tot.PollBytes, rep.HopsPolled)
	}
	r.col.AddNotifyBytes(128)
	if got := r.col.Totals.Bandwidth(); got != tot.PollBytes+tot.ReportBytes+128 {
		t.Fatalf("bandwidth = %d", got)
	}
}

func TestPollAllSwitches(t *testing.T) {
	r := newStarRig(t, 4, fabric.DefaultConfig())
	h := r.tp.Hosts()
	r.hosts[h[0]].Send(fk(h[0], h[3], 100), 64*1024)
	r.k.Run(simtime.Never)

	rep := r.col.PollAllSwitches(0)
	// Star switch has 4 ports; all must be reported.
	if len(rep.Ports) != 4 {
		t.Fatalf("ports = %d, want 4", len(rep.Ports))
	}
	if rep.HopsPolled != 4 {
		t.Fatalf("hops = %d, want 4", rep.HopsPolled)
	}
}

func TestMeterInResolvesUpstreamPorts(t *testing.T) {
	r := newStarRig(t, 3, fabric.DefaultConfig())
	h := r.tp.Hosts()
	f0, f1 := fk(h[0], h[2], 100), fk(h[1], h[2], 200)
	r.hosts[h[0]].Send(f0, 64*1024)
	r.hosts[h[1]].Send(f1, 64*1024)
	r.k.Run(simtime.Never)

	rep := r.col.Poll(f0, 0)
	for _, pr := range rep.Ports {
		if pr.Switch != r.tp.Switches()[0] {
			continue
		}
		for up, bytes := range pr.MeterIn {
			if up.Node != h[0] && up.Node != h[1] {
				t.Fatalf("meter upstream %v is not a sender uplink", up)
			}
			if bytes <= 0 {
				t.Fatalf("meter bytes = %d", bytes)
			}
		}
		if len(pr.MeterIn) != 2 {
			t.Fatalf("MeterIn entries = %d, want 2 (both senders)", len(pr.MeterIn))
		}
	}
}

func TestCollectorBaselinesAtCreation(t *testing.T) {
	// A collector attached mid-run must not re-report history: traffic
	// sent before its creation is invisible to its first poll.
	r := newStarRig(t, 2, fabric.DefaultConfig())
	h := r.tp.Hosts()
	old := fk(h[0], h[1], 100)
	r.hosts[h[0]].Send(old, 128*1024)
	r.k.Run(simtime.Never)

	late := NewCollector(r.net)
	rep := late.PollAllSwitches(0)
	for _, fr := range rep.Flows {
		if fr.Flow == old {
			t.Fatalf("late collector re-reported pre-creation traffic: %+v", fr)
		}
	}

	// New traffic after creation is visible.
	fresh := fk(h[0], h[1], 300)
	r.hosts[h[0]].Send(fresh, 64*1024)
	r.k.Run(simtime.Never)
	rep2 := late.PollAllSwitches(0)
	saw := false
	for _, fr := range rep2.Flows {
		if fr.Flow == fresh {
			saw = true
		}
		if fr.Flow == old && fr.Pkts > 0 {
			t.Fatalf("old flow leaked into post-creation delta")
		}
	}
	if !saw {
		t.Fatalf("fresh traffic missing from late collector")
	}
}

func TestReportSizeMonotone(t *testing.T) {
	// Adding records strictly grows the modelled wire size.
	rep := &Report{}
	base := rep.Size()
	rep.Flows = append(rep.Flows, FlowRecord{})
	if rep.Size() <= base {
		t.Fatalf("flow record did not grow size")
	}
	withFlow := rep.Size()
	rep.Flows[0].Wait = map[fabric.FlowKey]int64{{}: 1}
	if rep.Size() <= withFlow {
		t.Fatalf("wait entry did not grow size")
	}
	withWait := rep.Size()
	rep.Ports = append(rep.Ports, PortRecord{})
	if rep.Size() <= withWait {
		t.Fatalf("port record did not grow size")
	}
}
