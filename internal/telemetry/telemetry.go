// Package telemetry implements the network-side data collection of §III-C3,
// following Hawkeye's methodology as the paper does: switches keep
// flow-level records (5-tuple, per-flow packet counts, queue depth) and
// port-level records (inter-port traffic meters, PFC pause counters and
// states). A polling query triggered by a host propagates along both the
// flow's path and the PFC spreading path, and the collected records are
// reported to the analyzer. Every byte collected is accounted, since
// telemetry volume is the paper's processing-overhead metric (Fig 10a) and
// polling traffic its bandwidth-overhead metric (Fig 10b).
package telemetry

import (
	"sort"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// Wire-size model for overhead accounting, in bytes. The exact constants
// only scale the overhead figures; the relative comparison between systems
// (Vedrfolnir / Hawkeye / full polling) is constant-free.
const (
	PollPacketSize   = 64 // one polling query crossing one hop
	FlowRecordSize   = 48 // 5-tuple + packet/byte counters
	WaitEntrySize    = 24 // one w(f_i, f_j) accumulator entry
	PortRecordSize   = 64 // depth, pause counters, state
	MeterEntrySize   = 12 // one inter-port traffic meter entry
	PFCEventSize     = 32 // one logged pause/resume edge
	ReportHeaderSize = 32 // per-report framing to the analyzer
)

// FlowRecord is the per-flow telemetry a switch exports for one egress port.
type FlowRecord struct {
	Switch topo.NodeID
	Port   int
	Flow   fabric.FlowKey
	Pkts   int64
	Bytes  int64
	// Wait is the paper's w(f_i, f_j): packets of flow f_j that packets of
	// this record's flow queued behind at this port during the window.
	Wait map[fabric.FlowKey]int64
}

// PortRecord is the per-port telemetry a switch exports.
type PortRecord struct {
	Switch topo.NodeID
	Port   int

	QueuedBytes int64 // instantaneous depth at collection
	QueuedPkts  int64
	// AvgQueuedBytes is the mean depth seen by packets enqueued during
	// the window — the "queue depth detected within a certain period"
	// of the e(p, f) weight definition (§III-D1).
	AvgQueuedBytes int64
	Paused         bool // egress currently PFC-paused
	PauseCount     int64
	PausedFor      simtime.Duration

	// MeterIn maps each upstream egress port feeding this port to the
	// bytes it contributed in the window — the meter(p_i, p_j) term.
	MeterIn map[topo.PortID]int64

	// PFCEvents are the pause/resume edges in the window in which this
	// port participated (as halted upstream or as congested cause).
	PFCEvents []fabric.PFCEvent
}

// Report is one poll's worth of telemetry delivered to the analyzer.
type Report struct {
	At          simtime.Time
	TriggeredBy fabric.FlowKey
	Flows       []FlowRecord
	Ports       []PortRecord
	// TTLDrops reports packets dropped for TTL exhaustion per visited
	// switch in the window — the forwarding-loop signature (§II-B).
	TTLDrops   map[topo.NodeID]int64
	HopsPolled int // polling packet hops, for bandwidth accounting
	// PortsMissed counts visited switch ports whose telemetry response was
	// lost (fault injection): the poll reached them but no records came
	// back. Zero in a healthy fabric. Feeds diagnosis confidence.
	PortsMissed int
}

// Size returns the report's modelled wire size in bytes.
func (r *Report) Size() int {
	sz := ReportHeaderSize
	for _, f := range r.Flows {
		sz += FlowRecordSize + len(f.Wait)*WaitEntrySize
	}
	for _, p := range r.Ports {
		sz += PortRecordSize + len(p.MeterIn)*MeterEntrySize + len(p.PFCEvents)*PFCEventSize
	}
	return sz
}

// Overhead aggregates the two cost metrics of §IV-B.
type Overhead struct {
	// TelemetryBytes is the volume of telemetry records collected for
	// diagnosis — the paper's processing overhead.
	TelemetryBytes int64
	// PollBytes is polling-query traffic (queries crossing switch hops).
	PollBytes int64
	// ReportBytes is switch-to-analyzer report traffic.
	ReportBytes int64
	// NotifyBytes is notification-packet traffic (Vedrfolnir only).
	NotifyBytes int64
	Polls       int64
}

// Bandwidth returns the paper's bandwidth-overhead metric: polling during
// detection + notification packets + switch telemetry reports.
func (o Overhead) Bandwidth() int64 { return o.PollBytes + o.NotifyBytes + o.ReportBytes }

// portState remembers the last-collected snapshot of cumulative switch
// counters so each poll reports only the delta (the switch's periodic
// record buffer, drained on read).
type portState struct {
	flowPkts  map[fabric.FlowKey]int64
	flowBytes map[fabric.FlowKey]int64
	wait      map[fabric.FlowKey]map[fabric.FlowKey]int64
	meterIn   map[int]int64
	qdepthSum int64
	enqueues  int64
}

// Collector reads switch counters and assembles reports.
type Collector struct {
	Net *fabric.Network

	last      map[topo.PortID]*portState
	lastDrops map[topo.NodeID]int64
	pfcSeen   int // high-water mark into Net.PFCLog for windowing

	// PortFault, when set, is consulted once per visited switch port; true
	// loses that port's response for this poll (fault injection). The
	// port's counters are left un-drained, so a later successful poll
	// reports the accumulated delta — loss degrades freshness, not totals.
	PortFault func(topo.PortID) bool

	// Totals accumulates overhead across all polls through this collector.
	Totals Overhead

	// tCollect is the wall-time stage timer around each poll (perf
	// observability); nil (the default) no-ops.
	tCollect *obs.Timer
}

// SetStages installs wall-time stage timers on the collection path; a nil
// bundle disables them.
func (c *Collector) SetStages(st *obs.Stages) {
	if st == nil {
		c.tCollect = nil
		return
	}
	c.tCollect = st.TelemetryCollect
}

// NewCollector creates a collector over the network's switches.
func NewCollector(net *fabric.Network) *Collector {
	c := &Collector{
		Net:       net,
		last:      make(map[topo.PortID]*portState),
		lastDrops: make(map[topo.NodeID]int64),
	}
	c.baseline()
	return c
}

// baseline snapshots every switch's cumulative counters so polls report
// only activity after the collector's creation — a collector attached
// mid-run (e.g. per training iteration) must not re-report history.
func (c *Collector) baseline() {
	c.pfcSeen = len(c.Net.PFCLog)
	for _, sw := range c.Net.Topo.Switches() {
		s := c.Net.SwitchAt(sw)
		c.lastDrops[sw] = s.TTLDrops
		for pi := range c.Net.Topo.Node(sw).Ports {
			stats := s.Stats[pi]
			st := &portState{
				flowPkts:  make(map[fabric.FlowKey]int64, len(stats.FlowPkts)),
				flowBytes: make(map[fabric.FlowKey]int64, len(stats.FlowBytes)),
				wait:      make(map[fabric.FlowKey]map[fabric.FlowKey]int64, len(stats.Wait)),
				meterIn:   make(map[int]int64, len(stats.MeterIn)),
				qdepthSum: stats.QDepthSum,
				enqueues:  stats.Enqueues,
			}
			for k, v := range stats.FlowPkts {
				st.flowPkts[k] = v
			}
			for k, v := range stats.FlowBytes {
				st.flowBytes[k] = v
			}
			for k, row := range stats.Wait {
				cp := make(map[fabric.FlowKey]int64, len(row))
				for k2, v := range row {
					cp[k2] = v
				}
				st.wait[k] = cp
			}
			for k, v := range stats.MeterIn {
				st.meterIn[k] = v
			}
			c.last[topo.PortID{Node: sw, Port: pi}] = st
		}
	}
}

// Poll performs one detection's telemetry collection for the given flow
// (§III-C3): the query visits every switch on the flow's path, collects
// flow and port records at the egress each hop uses, and — whenever a
// visited port is or was recently PFC-paused — follows the PFC spreading
// path to the congested downstream ports, collecting there too. The report
// is returned and all overhead is accounted.
//
// Collection is modelled as an instantaneous snapshot at poll time; the
// propagation latency of queries does not affect what the counters held.
func (c *Collector) Poll(flow fabric.FlowKey, window simtime.Duration) *Report {
	t0 := c.tCollect.Begin()
	defer c.tCollect.End(t0)
	now := c.Net.K.Now()
	rep := &Report{At: now, TriggeredBy: flow}

	visited := map[topo.PortID]bool{}
	var visit func(p topo.PortID, depth int)
	visit = func(p topo.PortID, depth int) {
		if visited[p] || depth > 32 {
			return
		}
		visited[p] = true
		// Host uplinks carry no switch telemetry but can still be the
		// halted end of a PFC edge (e.g. a storm pausing a NIC), so the
		// spreading-path check below runs for them too.
		if c.Net.Topo.Node(p.Node).Kind == topo.KindSwitch {
			c.collectPort(rep, p, window)
		}
		// Follow the PFC spreading path: if this egress was halted, the
		// cause lives at the downstream switch's congested egress.
		for _, ev := range c.pfcWindow(now, window) {
			if !ev.Pause || ev.Upstream != p {
				continue
			}
			cause := topo.PortID{Node: ev.Downstream, Port: ev.CauseEgress}
			rep.HopsPolled++
			visit(cause, depth+1)
		}
	}

	path := c.Net.Topo.Path(flow.Src, flow.Dst, flow.PathHash())
	for _, hop := range path {
		rep.HopsPolled++
		visit(hop, 0)
	}

	c.account(rep)
	return rep
}

// PollAllSwitches collects every egress port of every switch — the
// full-polling baseline's per-epoch collection.
func (c *Collector) PollAllSwitches(window simtime.Duration) *Report {
	t0 := c.tCollect.Begin()
	defer c.tCollect.End(t0)
	rep := &Report{At: c.Net.K.Now()}
	for _, sw := range c.Net.Topo.Switches() {
		for pi := range c.Net.Topo.Node(sw).Ports {
			rep.HopsPolled++
			c.collectPort(rep, topo.PortID{Node: sw, Port: pi}, window)
		}
	}
	c.account(rep)
	return rep
}

func (c *Collector) account(rep *Report) {
	c.Totals.Polls++
	c.Totals.TelemetryBytes += int64(rep.Size())
	c.Totals.PollBytes += int64(rep.HopsPolled * PollPacketSize)
	c.Totals.ReportBytes += int64(rep.Size())
}

// AddNotifyBytes records notification-packet traffic into the bandwidth
// overhead (called by the monitor layer).
func (c *Collector) AddNotifyBytes(n int64) { c.Totals.NotifyBytes += n }

// pfcWindow returns PFC events within the window ending now, excluding
// anything logged before the collector was created.
func (c *Collector) pfcWindow(now simtime.Time, window simtime.Duration) []fabric.PFCEvent {
	log := c.Net.PFCLog[c.pfcSeen:]
	if window <= 0 {
		return log
	}
	cutoff := now.Add(-window)
	// Binary search: log is append-ordered by time.
	i := sort.Search(len(log), func(i int) bool { return log[i].At >= cutoff })
	return log[i:]
}

// collectPort snapshots one egress port into the report, draining the
// window's counter deltas.
func (c *Collector) collectPort(rep *Report, p topo.PortID, window simtime.Duration) {
	sw := c.Net.SwitchAt(p.Node)
	if sw == nil {
		return
	}
	if c.PortFault != nil && c.PortFault(p) {
		rep.PortsMissed++
		return
	}
	now := c.Net.K.Now()
	stats := sw.Stats[p.Port]
	ev := c.Net.Egress(p.Node, p.Port)

	if d := sw.TTLDrops - c.lastDrops[p.Node]; d > 0 {
		if rep.TTLDrops == nil {
			rep.TTLDrops = make(map[topo.NodeID]int64)
		}
		rep.TTLDrops[p.Node] += d
		c.lastDrops[p.Node] = sw.TTLDrops
	}

	st := c.last[p]
	if st == nil {
		st = &portState{
			flowPkts:  make(map[fabric.FlowKey]int64),
			flowBytes: make(map[fabric.FlowKey]int64),
			wait:      make(map[fabric.FlowKey]map[fabric.FlowKey]int64),
			meterIn:   make(map[int]int64),
		}
		c.last[p] = st
	}

	// Flow records: delta of per-flow counters since last collection.
	flows := make([]fabric.FlowKey, 0, len(stats.FlowPkts))
	for fk := range stats.FlowPkts {
		flows = append(flows, fk)
	}
	sort.Slice(flows, func(i, j int) bool { return flowLess(flows[i], flows[j]) })
	for _, fk := range flows {
		dp := stats.FlowPkts[fk] - st.flowPkts[fk]
		if dp <= 0 {
			continue
		}
		fr := FlowRecord{
			Switch: p.Node,
			Port:   p.Port,
			Flow:   fk,
			Pkts:   dp,
			Bytes:  stats.FlowBytes[fk] - st.flowBytes[fk],
		}
		if row := stats.Wait[fk]; len(row) > 0 {
			fr.Wait = make(map[fabric.FlowKey]int64)
			prev := st.wait[fk]
			for other, w := range row {
				if dw := w - prev[other]; dw > 0 {
					fr.Wait[other] = dw
				}
			}
			if len(fr.Wait) == 0 {
				fr.Wait = nil
			}
		}
		rep.Flows = append(rep.Flows, fr)
		st.flowPkts[fk] = stats.FlowPkts[fk]
		st.flowBytes[fk] = stats.FlowBytes[fk]
		row := st.wait[fk]
		if row == nil {
			row = make(map[fabric.FlowKey]int64)
			st.wait[fk] = row
		}
		for other, w := range stats.Wait[fk] {
			row[other] = w
		}
	}

	// Port record.
	pr := PortRecord{
		Switch:      p.Node,
		Port:        p.Port,
		QueuedBytes: ev.QueuedBytes(),
		Paused:      ev.Paused(),
		PauseCount:  ev.PauseCount(),
		PausedFor:   ev.PausedFor(now),
	}
	if dn := stats.Enqueues - st.enqueues; dn > 0 {
		pr.AvgQueuedBytes = (stats.QDepthSum - st.qdepthSum) / dn
	}
	st.qdepthSum, st.enqueues = stats.QDepthSum, stats.Enqueues
	for _, cnt := range ev.FlowCounts() {
		pr.QueuedPkts += int64(cnt)
	}
	for ingress, bytes := range stats.MeterIn {
		if d := bytes - st.meterIn[ingress]; d > 0 {
			up := c.Net.Topo.PeerOf(topo.PortID{Node: p.Node, Port: ingress})
			if pr.MeterIn == nil {
				pr.MeterIn = make(map[topo.PortID]int64)
			}
			pr.MeterIn[up] += d
		}
		st.meterIn[ingress] = bytes
	}
	for _, e := range c.pfcWindow(now, window) {
		if (e.Downstream == p.Node && e.CauseEgress == p.Port) || e.Upstream == p {
			pr.PFCEvents = append(pr.PFCEvents, e)
		}
	}
	rep.Ports = append(rep.Ports, pr)
}

func flowLess(a, b fabric.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
