// Package provenance builds the network provenance graph of §III-D1 from
// collected telemetry and evaluates flow contributions per §III-D3. The
// vertex set is F ∪ P (flows and ports, with CF ⊆ F the collective flows);
// the three directed edge types carry the paper's weights:
//
//   - e(f, p): flow f waits at port p; weight w(f, p) = Σ_{j≠f} w(f, f_j),
//     where w(f_i, f_j) counts packets of f_j that f_i's packets queued
//     behind.
//   - e(p, f): flow f contributes to p's congestion; weight
//     w(p, f) = bytes(f)/bytes(p) × qdepth(p) (byte-denominated form of the
//     paper's packet-count formula; the ratio is identical).
//   - e(p_i, p_j): PFC causality — the congested downstream egress p_j
//     halted the upstream egress p_i; weight w(p_i, p_j) is p_i's share of
//     the traffic entering p_j: meter(p_i, p_j)/Σ_k meter(p_k, p_j).
package provenance

import (
	"math"
	"sort"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

// Graph is the built provenance graph for one diagnosis window (typically
// one collective step, §III-D1: "For each step of the collective
// communication, it constructs provenance graphs").
type Graph struct {
	// flowsAtPort: per port, per flow, the aggregated telemetry.
	flowPkts  map[topo.PortID]map[fabric.FlowKey]int64
	flowBytes map[topo.PortID]map[fabric.FlowKey]int64
	pairWait  map[topo.PortID]map[fabric.FlowKey]map[fabric.FlowKey]int64
	qdepth    map[topo.PortID]int64
	meterIn   map[topo.PortID]map[topo.PortID]int64
	pfcOut    map[topo.PortID]map[topo.PortID]bool // e(p_i, p_j)
	paused    map[topo.PortID]bool
	injected  map[topo.PortID]bool // p_j ports whose pause edges were storm-injected

	cf map[fabric.FlowKey]bool
}

// Build aggregates telemetry reports into a provenance graph. cfs marks the
// collective-communication flows (the CF subset of F).
func Build(reports []*telemetry.Report, cfs map[fabric.FlowKey]bool) *Graph {
	g := &Graph{
		flowPkts:  map[topo.PortID]map[fabric.FlowKey]int64{},
		flowBytes: map[topo.PortID]map[fabric.FlowKey]int64{},
		pairWait:  map[topo.PortID]map[fabric.FlowKey]map[fabric.FlowKey]int64{},
		qdepth:    map[topo.PortID]int64{},
		meterIn:   map[topo.PortID]map[topo.PortID]int64{},
		pfcOut:    map[topo.PortID]map[topo.PortID]bool{},
		paused:    map[topo.PortID]bool{},
		injected:  map[topo.PortID]bool{},
		cf:        map[fabric.FlowKey]bool{},
	}
	for f := range cfs {
		g.cf[f] = true
	}
	for _, rep := range reports {
		for _, fr := range rep.Flows {
			p := topo.PortID{Node: fr.Switch, Port: fr.Port}
			add2(g.flowPkts, p, fr.Flow, fr.Pkts)
			add2(g.flowBytes, p, fr.Flow, fr.Bytes)
			if len(fr.Wait) > 0 {
				pw := g.pairWait[p]
				if pw == nil {
					pw = map[fabric.FlowKey]map[fabric.FlowKey]int64{}
					g.pairWait[p] = pw
				}
				row := pw[fr.Flow]
				if row == nil {
					row = map[fabric.FlowKey]int64{}
					pw[fr.Flow] = row
				}
				for other, w := range fr.Wait {
					row[other] += w
				}
			}
		}
		for _, pr := range rep.Ports {
			p := topo.PortID{Node: pr.Switch, Port: pr.Port}
			depth := pr.AvgQueuedBytes
			if pr.QueuedBytes > depth {
				depth = pr.QueuedBytes
			}
			if depth > g.qdepth[p] {
				g.qdepth[p] = depth
			}
			if pr.Paused {
				g.paused[p] = true
			}
			for up, b := range pr.MeterIn {
				mi := g.meterIn[p]
				if mi == nil {
					mi = map[topo.PortID]int64{}
					g.meterIn[p] = mi
				}
				mi[up] += b
			}
			for _, ev := range pr.PFCEvents {
				if !ev.Pause {
					continue
				}
				pj := topo.PortID{Node: ev.Downstream, Port: ev.CauseEgress}
				out := g.pfcOut[ev.Upstream]
				if out == nil {
					out = map[topo.PortID]bool{}
					g.pfcOut[ev.Upstream] = out
				}
				out[pj] = true
				if ev.Injected {
					g.injected[pj] = true
				}
			}
		}
	}
	return g
}

func add2[K1, K2 comparable](m map[K1]map[K2]int64, k1 K1, k2 K2, v int64) {
	inner := m[k1]
	if inner == nil {
		inner = map[K2]int64{}
		m[k1] = inner
	}
	inner[k2] += v
}

// IsCF reports whether f is a collective-communication flow.
func (g *Graph) IsCF(f fabric.FlowKey) bool { return g.cf[f] }

// Ports returns every port vertex, deterministically ordered.
func (g *Graph) Ports() []topo.PortID {
	seen := map[topo.PortID]bool{}
	for p := range g.flowPkts {
		seen[p] = true
	}
	for p := range g.meterIn {
		seen[p] = true
	}
	for p := range g.qdepth {
		seen[p] = true
	}
	out := make([]topo.PortID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// FlowsAt returns the flows observed at a port, deterministically ordered.
func (g *Graph) FlowsAt(p topo.PortID) []fabric.FlowKey {
	fs := g.flowPkts[p]
	out := make([]fabric.FlowKey, 0, len(fs))
	for f := range fs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i], out[j]) })
	return out
}

// HasFlowPortEdge reports e(f, p) ∈ E: flow f waited at port p — either it
// queued behind other flows there (contention), or the port was PFC-paused
// while f's packets transited it (a halted flow waits on its port even with
// nothing in front of it, e.g. under a PFC storm).
func (g *Graph) HasFlowPortEdge(f fabric.FlowKey, p topo.PortID) bool {
	if g.WFlowPort(f, p) > 0 {
		return true
	}
	return g.paused[p] && g.flowPkts[p][f] > 0
}

// WFlowPort returns w(f, p) = Σ_{j≠f} w(f, f_j) at p.
func (g *Graph) WFlowPort(f fabric.FlowKey, p topo.PortID) int64 {
	var sum int64
	for other, w := range g.pairWait[p][f] {
		if other != f {
			sum += w
		}
	}
	return sum
}

// PairWait returns w(f_i, f_j) at port p.
func (g *Graph) PairWait(p topo.PortID, fi, fj fabric.FlowKey) int64 {
	return g.pairWait[p][fi][fj]
}

// WPortFlow returns w(p, f) = bytes(f)/bytes(p) × qdepth(p): f's
// contribution to p's congestion.
func (g *Graph) WPortFlow(p topo.PortID, f fabric.FlowKey) float64 {
	var total int64
	for _, b := range g.flowBytes[p] {
		total += b
	}
	if total == 0 {
		return 0
	}
	return float64(g.flowBytes[p][f]) / float64(total) * float64(g.qdepth[p])
}

// PFCUpstreams returns every port that appears as the halted upstream p_i
// of a pause edge, deterministically ordered. Host uplinks can appear here
// (a storm pausing a NIC) even though they carry no switch telemetry.
func (g *Graph) PFCUpstreams() []topo.PortID {
	out := make([]topo.PortID, 0, len(g.pfcOut))
	for p := range g.pfcOut {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// PFCOut returns the downstream cause ports p_j with e(p, p_j) ∈ E,
// deterministically ordered.
func (g *Graph) PFCOut(p topo.PortID) []topo.PortID {
	out := make([]topo.PortID, 0, len(g.pfcOut[p]))
	for pj := range g.pfcOut[p] {
		out = append(out, pj)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// WPortPort returns w(p_i, p_j): p_i's share of traffic entering p_j.
func (g *Graph) WPortPort(pi, pj topo.PortID) float64 {
	mi := g.meterIn[pj]
	var total int64
	for _, b := range mi {
		total += b
	}
	if total == 0 {
		return 0
	}
	return float64(mi[pi]) / float64(total)
}

// InjectedCause reports whether p_j's pause edges were storm-injected
// (hardware-bug signature rather than organic congestion).
func (g *Graph) InjectedCause(pj topo.PortID) bool { return g.injected[pj] }

// Paused reports whether p was PFC-paused at any collection.
func (g *Graph) Paused(p topo.PortID) bool { return g.paused[p] }

// PortsWaitedBy returns P_f: the ports flow f waits at (its e(f, p)
// neighbours), deterministically ordered.
func (g *Graph) PortsWaitedBy(f fabric.FlowKey) []topo.PortID {
	var out []topo.PortID
	for _, p := range g.Ports() {
		if g.HasFlowPortEdge(f, p) {
			out = append(out, p)
		}
	}
	return out
}

// RateFlowPort computes Eq. 1: R(f_i, p_j) = w(p_j, f_i) +
// Σ_{p_k: e(p_j,p_k)} R(f_i, p_k) × w(p_j, p_k), the impact of f_i on port
// p_j accumulated backwards along PFC causality. Cycles (PFC deadlock) are
// cut by the visited set.
func (g *Graph) RateFlowPort(fi fabric.FlowKey, pj topo.PortID) float64 {
	return g.rateFlowPort(fi, pj, map[topo.PortID]bool{})
}

func (g *Graph) rateFlowPort(fi fabric.FlowKey, pj topo.PortID, visiting map[topo.PortID]bool) float64 {
	if visiting[pj] {
		return 0
	}
	visiting[pj] = true
	defer delete(visiting, pj)
	r := g.WPortFlow(pj, fi)
	for _, pk := range g.PFCOut(pj) {
		r += g.rateFlowPort(fi, pk, visiting) * g.WPortPort(pj, pk)
	}
	return r
}

// RateFlowCF computes Eq. 2: the contribution of f_i to collective flow cf,
// summed over cf's waiting ports P_cf. Where f_i and cf contend directly at
// p_k, the direct pairwise wait w(cf, f_i) at that port replaces the
// port-level share w(p_k, f_i).
func (g *Graph) RateFlowCF(fi, cf fabric.FlowKey) float64 {
	var r float64
	for _, pk := range g.PortsWaitedBy(cf) {
		base := g.RateFlowPort(fi, pk)
		if g.HasFlowPortEdge(fi, pk) {
			direct := float64(g.PairWait(pk, cf, fi))
			base += direct - g.WPortFlow(pk, fi)
		}
		r += base
	}
	if math.IsNaN(r) {
		return 0
	}
	return r
}

// Contenders returns the non-CF flows in the connected subgraph reachable
// from the collective flows (§III-D3: "starting from all collective
// communication flows, we obtain the largest connected subgraph, then all
// flows f ∉ CF belong to the evaluation object"). Connectivity treats
// edges as undirected.
func (g *Graph) Contenders() []fabric.FlowKey {
	reach := map[topo.PortID]bool{}
	var stack []topo.PortID
	for _, p := range g.Ports() {
		if g.hasCFAt(p) {
			reach[p] = true
			stack = append(stack, p)
		}
	}
	// Expand across PFC edges in both directions.
	rev := map[topo.PortID][]topo.PortID{}
	for _, pi := range g.PFCUpstreams() {
		for _, pj := range g.PFCOut(pi) {
			rev[pj] = append(rev[pj], pi)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var nbrs []topo.PortID
		nbrs = append(nbrs, g.PFCOut(p)...)
		nbrs = append(nbrs, rev[p]...)
		for _, q := range nbrs {
			if !reach[q] {
				reach[q] = true
				stack = append(stack, q)
			}
		}
	}
	seen := map[fabric.FlowKey]bool{}
	var out []fabric.FlowKey
	for p := range reach {
		for f := range g.flowPkts[p] {
			if !g.cf[f] && !seen[f] && f.Proto != 0 {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i], out[j]) })
	return out
}

// hasCFAt reports whether any collective flow was observed at p.
func (g *Graph) hasCFAt(p topo.PortID) bool {
	for f := range g.flowPkts[p] {
		if g.cf[f] {
			return true
		}
	}
	return false
}

// CFs returns the collective flows, deterministically ordered.
func (g *Graph) CFs() []fabric.FlowKey {
	out := make([]fabric.FlowKey, 0, len(g.cf))
	for f := range g.cf {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return flowLess(out[i], out[j]) })
	return out
}

func flowLess(a, b fabric.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
