package provenance

import (
	"reflect"
	"testing"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/telemetry"
)

// TestMergeEquivalentToBuild pins the property the fleet merge depends
// on: building per-partition graphs and merging them is content-equal
// (not just behaviorally equal) to building one graph over the whole
// report set, for any partitioning.
func TestMergeEquivalentToBuild(t *testing.T) {
	cfs := map[fabric.FlowKey]bool{cfKey: true}
	reports := []*telemetry.Report{
		contentionReport(), pfcReport(), contentionReport(),
	}
	whole := Build(reports, cfs)

	partitions := [][][]*telemetry.Report{
		{{reports[0]}, {reports[1]}, {reports[2]}},
		{{reports[0], reports[1]}, {reports[2]}},
		{{reports[2], reports[0]}, nil, {reports[1]}},
	}
	for i, parts := range partitions {
		var gs []*Graph
		for _, part := range parts {
			if part == nil {
				gs = append(gs, nil) // Merge must skip nil graphs
				continue
			}
			gs = append(gs, Build(part, cfs))
		}
		merged := Merge(gs...)
		if !reflect.DeepEqual(merged, whole) {
			t.Errorf("partition %d: Merge(Build(parts)) != Build(all)\n got %+v\nwant %+v", i, merged, whole)
		}
	}
}

func TestMergeOfNothingIsEmpty(t *testing.T) {
	m := Merge()
	if !reflect.DeepEqual(m, Build(nil, nil)) {
		t.Errorf("Merge() = %+v, want the empty Build graph", m)
	}
}

func TestMergeTakesMaxQueueDepthAndORsFlags(t *testing.T) {
	shallow := Build([]*telemetry.Report{{Ports: []telemetry.PortRecord{
		{Switch: p1.Node, Port: p1.Port, AvgQueuedBytes: 100},
	}}}, nil)
	deep := Build([]*telemetry.Report{{Ports: []telemetry.PortRecord{
		{Switch: p1.Node, Port: p1.Port, AvgQueuedBytes: 900, Paused: true},
	}}}, nil)
	m := Merge(shallow, deep)
	if m.qdepth[p1] != 900 {
		t.Errorf("merged qdepth = %d, want max 900", m.qdepth[p1])
	}
	if !m.Paused(p1) {
		t.Error("merged graph lost the Paused flag")
	}
}
