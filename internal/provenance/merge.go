package provenance

import (
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/topo"
)

// Merge folds any number of provenance graphs into one. Every Graph
// aggregate is commutative and associative — packet/byte/wait/meter
// counts sum, queue depths take the max, pause/injection flags OR, and
// the CF set unions — so Merge(Build(A), Build(B)) is content-equal to
// Build(A ∪ B) regardless of how the report set was partitioned or in
// which order the parts arrive. That property is what lets a sharded
// diagnosis fleet build per-shard (and per-step) graphs independently
// and still produce one deterministic aggregate graph. nil inputs are
// skipped; Merge of nothing is an empty graph.
func Merge(gs ...*Graph) *Graph {
	m := &Graph{
		flowPkts:  map[topo.PortID]map[fabric.FlowKey]int64{},
		flowBytes: map[topo.PortID]map[fabric.FlowKey]int64{},
		pairWait:  map[topo.PortID]map[fabric.FlowKey]map[fabric.FlowKey]int64{},
		qdepth:    map[topo.PortID]int64{},
		meterIn:   map[topo.PortID]map[topo.PortID]int64{},
		pfcOut:    map[topo.PortID]map[topo.PortID]bool{},
		paused:    map[topo.PortID]bool{},
		injected:  map[topo.PortID]bool{},
		cf:        map[fabric.FlowKey]bool{},
	}
	for _, g := range gs {
		if g == nil {
			continue
		}
		for p, fs := range g.flowPkts {
			for f, v := range fs {
				add2(m.flowPkts, p, f, v)
			}
		}
		for p, fs := range g.flowBytes {
			for f, v := range fs {
				add2(m.flowBytes, p, f, v)
			}
		}
		for p, rows := range g.pairWait {
			for fi, row := range rows {
				dst := m.pairWait[p]
				if dst == nil {
					dst = map[fabric.FlowKey]map[fabric.FlowKey]int64{}
					m.pairWait[p] = dst
				}
				drow := dst[fi]
				if drow == nil {
					drow = map[fabric.FlowKey]int64{}
					dst[fi] = drow
				}
				for fj, w := range row {
					drow[fj] += w
				}
			}
		}
		for p, d := range g.qdepth {
			if d > m.qdepth[p] {
				m.qdepth[p] = d
			}
		}
		for p, mi := range g.meterIn {
			for up, b := range mi {
				add2(m.meterIn, p, up, b)
			}
		}
		for pi, out := range g.pfcOut {
			for pj, on := range out {
				if !on {
					continue
				}
				dst := m.pfcOut[pi]
				if dst == nil {
					dst = map[topo.PortID]bool{}
					m.pfcOut[pi] = dst
				}
				dst[pj] = true
			}
		}
		for p, on := range g.paused {
			if on {
				m.paused[p] = true
			}
		}
		for p, on := range g.injected {
			if on {
				m.injected[p] = true
			}
		}
		for f, on := range g.cf {
			if on {
				m.cf[f] = true
			}
		}
	}
	return m
}
