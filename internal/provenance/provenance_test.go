package provenance

import (
	"math"
	"testing"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

var (
	cfKey = fabric.FlowKey{Src: 0, Dst: 1, SrcPort: 5000, DstPort: 5000, Proto: 17}
	bfKey = fabric.FlowKey{Src: 2, Dst: 3, SrcPort: 9000, DstPort: 9001, Proto: 17}
	p1    = topo.PortID{Node: 10, Port: 2}
	p2    = topo.PortID{Node: 11, Port: 3}
	up1   = topo.PortID{Node: 12, Port: 0}
)

// contentionReport: cf and bf contend at p1; cf queued behind 100 bf
// packets and vice versa behind 40; queue averaged 10000 bytes; cf moved
// 60000 bytes, bf 40000.
func contentionReport() *telemetry.Report {
	return &telemetry.Report{
		Flows: []telemetry.FlowRecord{
			{Switch: p1.Node, Port: p1.Port, Flow: cfKey, Pkts: 60, Bytes: 60000,
				Wait: map[fabric.FlowKey]int64{bfKey: 100}},
			{Switch: p1.Node, Port: p1.Port, Flow: bfKey, Pkts: 40, Bytes: 40000,
				Wait: map[fabric.FlowKey]int64{cfKey: 40}},
		},
		Ports: []telemetry.PortRecord{
			{Switch: p1.Node, Port: p1.Port, AvgQueuedBytes: 10000},
		},
	}
}

func buildContention() *Graph {
	return Build([]*telemetry.Report{contentionReport()}, map[fabric.FlowKey]bool{cfKey: true})
}

// approx compares a computed float weight against its expected value with a
// relative tolerance: the weights are sums whose rounding depends on
// accumulation order, so tests must not rely on exact equality.
func approx(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	eps := 1e-9 * math.Abs(want)
	if eps < 1e-9 {
		eps = 1e-9
	}
	return d <= eps
}

func TestEdgeWeights(t *testing.T) {
	g := buildContention()
	if w := g.WFlowPort(cfKey, p1); w != 100 {
		t.Fatalf("w(cf,p1) = %d, want 100", w)
	}
	if !g.HasFlowPortEdge(cfKey, p1) || !g.HasFlowPortEdge(bfKey, p1) {
		t.Fatalf("missing e(f,p) edges")
	}
	// w(p1, cf) = 60000/100000 × 10000 = 6000.
	if w := g.WPortFlow(p1, cfKey); !approx(w, 6000) {
		t.Fatalf("w(p1,cf) = %v, want 6000", w)
	}
	if w := g.WPortFlow(p1, bfKey); !approx(w, 4000) {
		t.Fatalf("w(p1,bf) = %v, want 4000", w)
	}
}

func TestRateFlowPortNoPFC(t *testing.T) {
	g := buildContention()
	if r := g.RateFlowPort(bfKey, p1); !approx(r, 4000) {
		t.Fatalf("R(bf,p1) = %v, want w(p1,bf)=4000", r)
	}
}

func TestRateFlowCFDirectContention(t *testing.T) {
	g := buildContention()
	// Eq 2 at p1: e(bf,p1) ∈ E so the direct pair wait w(cf,bf)=100
	// replaces w(p1,bf)=4000 inside R: 4000 + (100 - 4000) = 100.
	if r := g.RateFlowCF(bfKey, cfKey); !approx(r, 100) {
		t.Fatalf("R(bf,cf) = %v, want 100", r)
	}
}

// pfcReport models: cf waits at upstream egress up1 (p_i), which was paused
// by downstream switch 11 whose congested egress is p2 (p_j); bf fills p2.
// Traffic into p2: 5000 bytes from up1, 5000 from elsewhere → w(up1,p2)=0.5.
func pfcReport() *telemetry.Report {
	other := topo.PortID{Node: 13, Port: 1}
	return &telemetry.Report{
		Flows: []telemetry.FlowRecord{
			{Switch: up1.Node, Port: up1.Port, Flow: cfKey, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{bfKey: 5}},
			{Switch: p2.Node, Port: p2.Port, Flow: bfKey, Pkts: 8, Bytes: 8000},
		},
		Ports: []telemetry.PortRecord{
			{Switch: up1.Node, Port: up1.Port, AvgQueuedBytes: 3000, Paused: true},
			{Switch: p2.Node, Port: p2.Port, AvgQueuedBytes: 8000,
				MeterIn: map[topo.PortID]int64{up1: 5000, other: 5000},
				PFCEvents: []fabric.PFCEvent{
					{Pause: true, Upstream: up1, Downstream: p2.Node, CauseEgress: p2.Port},
				}},
		},
	}
}

func TestPFCEdgeAndEq1Recursion(t *testing.T) {
	g := Build([]*telemetry.Report{pfcReport()}, map[fabric.FlowKey]bool{cfKey: true})
	out := g.PFCOut(up1)
	if len(out) != 1 || out[0] != p2 {
		t.Fatalf("PFCOut(up1) = %v, want [p2]", out)
	}
	if w := g.WPortPort(up1, p2); !approx(w, 0.5) {
		t.Fatalf("w(up1,p2) = %v, want 0.5", w)
	}
	// R(bf, p2) = w(p2,bf) = 8000 (bf is all of p2's traffic).
	if r := g.RateFlowPort(bfKey, p2); !approx(r, 8000) {
		t.Fatalf("R(bf,p2) = %v, want 8000", r)
	}
	// R(bf, up1) = w(up1,bf)=0 + R(bf,p2)×w(up1,p2) = 4000.
	if r := g.RateFlowPort(bfKey, up1); !approx(r, 4000) {
		t.Fatalf("R(bf,up1) = %v, want 4000", r)
	}
	// Eq 2: cf waits only at up1, where bf has no e(bf,up1) edge →
	// R(bf,cf) = R(bf,up1) = 4000.
	if r := g.RateFlowCF(bfKey, cfKey); !approx(r, 4000) {
		t.Fatalf("R(bf,cf) = %v, want 4000", r)
	}
}

func TestCycleTermination(t *testing.T) {
	// Deadlock-like cycle p1 → p2 → p1.
	rep := &telemetry.Report{
		Flows: []telemetry.FlowRecord{
			{Switch: p1.Node, Port: p1.Port, Flow: bfKey, Pkts: 1, Bytes: 1000},
		},
		Ports: []telemetry.PortRecord{
			{Switch: p1.Node, Port: p1.Port, AvgQueuedBytes: 1000,
				MeterIn:   map[topo.PortID]int64{p2: 1000},
				PFCEvents: []fabric.PFCEvent{{Pause: true, Upstream: p2, Downstream: p1.Node, CauseEgress: p1.Port}}},
			{Switch: p2.Node, Port: p2.Port, AvgQueuedBytes: 1000,
				MeterIn:   map[topo.PortID]int64{p1: 1000},
				PFCEvents: []fabric.PFCEvent{{Pause: true, Upstream: p1, Downstream: p2.Node, CauseEgress: p2.Port}}},
		},
	}
	g := Build([]*telemetry.Report{rep}, nil)
	r := g.RateFlowPort(bfKey, p1)
	if math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("cycle produced %v", r)
	}
}

func TestContenders(t *testing.T) {
	g := buildContention()
	got := g.Contenders()
	if len(got) != 1 || got[0] != bfKey {
		t.Fatalf("contenders = %v, want [bf]", got)
	}
}

func TestContendersAcrossPFC(t *testing.T) {
	// bf only appears at the downstream cause port p2, reachable from
	// cf's port up1 via the PFC edge.
	g := Build([]*telemetry.Report{pfcReport()}, map[fabric.FlowKey]bool{cfKey: true})
	got := g.Contenders()
	if len(got) != 1 || got[0] != bfKey {
		t.Fatalf("contenders across PFC = %v, want [bf]", got)
	}
}

func TestAggregationAcrossReports(t *testing.T) {
	g := Build([]*telemetry.Report{contentionReport(), contentionReport()},
		map[fabric.FlowKey]bool{cfKey: true})
	if w := g.WFlowPort(cfKey, p1); w != 200 {
		t.Fatalf("aggregated w(cf,p1) = %d, want 200", w)
	}
	// Ratios are scale-invariant: w(p1,cf) unchanged.
	if w := g.WPortFlow(p1, cfKey); !approx(w, 6000) {
		t.Fatalf("aggregated w(p1,cf) = %v, want 6000", w)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build(nil, nil)
	if len(g.Ports()) != 0 || len(g.Contenders()) != 0 || len(g.CFs()) != 0 {
		t.Fatalf("empty graph not empty")
	}
	if r := g.RateFlowPort(bfKey, p1); !approx(r, 0) {
		t.Fatalf("rating on empty graph = %v", r)
	}
}

func TestInjectedCauseFlag(t *testing.T) {
	rep := pfcReport()
	for i := range rep.Ports {
		for j := range rep.Ports[i].PFCEvents {
			rep.Ports[i].PFCEvents[j].Injected = true
		}
	}
	g := Build([]*telemetry.Report{rep}, nil)
	if !g.InjectedCause(p2) {
		t.Fatalf("injected cause not flagged")
	}
}

func TestDeterministicOrdering(t *testing.T) {
	g := Build([]*telemetry.Report{pfcReport(), contentionReport()},
		map[fabric.FlowKey]bool{cfKey: true})
	a := g.Ports()
	b := g.Ports()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic port count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic port order")
		}
	}
}
