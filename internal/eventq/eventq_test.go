package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vedrfolnir/internal/simtime"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.Push(30, func() { got = append(got, 3) })
	q.Push(10, func() { got = append(got, 1) })
	q.Push(20, func() { got = append(got, 2) })
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(42, func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Push(5, func() { fired = true })
	q.Cancel(e)
	if !e.Canceled() {
		t.Fatalf("event not marked canceled")
	}
	if q.Len() != 0 {
		t.Fatalf("queue should be empty after cancel, len=%d", q.Len())
	}
	if q.Pop() != nil {
		t.Fatalf("Pop on empty queue should be nil")
	}
	if fired {
		t.Fatalf("canceled event fired")
	}
	// Double-cancel is a no-op.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var es []*Event
	for i := 0; i < 20; i++ {
		es = append(es, q.Push(simtime.Time(i), nil))
	}
	q.Cancel(es[7])
	q.Cancel(es[13])
	var times []simtime.Time
	for q.Len() > 0 {
		times = append(times, q.Pop().At)
	}
	if len(times) != 18 {
		t.Fatalf("len = %d, want 18", len(times))
	}
	for _, at := range times {
		if at == 7 || at == 13 {
			t.Fatalf("canceled event %v still dequeued", at)
		}
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Fatalf("times not sorted: %v", times)
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatalf("Peek on empty should be nil")
	}
	q.Push(9, nil)
	q.Push(4, nil)
	if got := q.Peek().At; got != 4 {
		t.Fatalf("Peek.At = %v, want 4", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek must not remove; len=%d", q.Len())
	}
}

// Property: popping a randomly-filled queue always yields non-decreasing
// timestamps, even with interleaved cancels.
func TestHeapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var handles []*Event
		for i := 0; i < 200; i++ {
			handles = append(handles, q.Push(simtime.Time(rng.Intn(50)), nil))
		}
		for i := 0; i < 50; i++ {
			q.Cancel(handles[rng.Intn(len(handles))])
		}
		last := simtime.Time(-1)
		for q.Len() > 0 {
			e := q.Pop()
			if e.At < last {
				return false
			}
			last = e.At
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	var q Queue
	if got := q.Stats(); got != (Stats{}) {
		t.Fatalf("fresh queue stats = %+v, want zero", got)
	}
	e1 := q.Push(3, nil)
	q.Push(1, nil)
	q.Push(2, nil)
	if got := q.Stats(); got.Pushes != 3 || got.MaxLen != 3 {
		t.Errorf("after pushes: %+v, want Pushes=3 MaxLen=3", got)
	}
	q.Cancel(e1)
	q.Cancel(e1) // double cancel must not double count
	if got := q.Stats(); got.Cancels != 1 {
		t.Errorf("cancels = %d, want 1", got.Cancels)
	}
	for q.Pop() != nil {
	}
	got := q.Stats()
	if got.Pops != 2 {
		t.Errorf("pops = %d, want 2 (canceled event never pops)", got.Pops)
	}
	if got.MaxLen != 3 {
		t.Errorf("MaxLen = %d, want high-water mark 3 after drain", got.MaxLen)
	}
}
