// Package eventq implements the priority queue that orders discrete
// simulation events. Events with equal timestamps dequeue in the order they
// were scheduled (FIFO tie-break), which keeps simulations deterministic.
package eventq

import (
	"container/heap"

	"vedrfolnir/internal/simtime"
)

// Event is a callback scheduled at an absolute simulation time.
type Event struct {
	At  simtime.Time
	Fn  func()
	seq uint64
	idx int // heap index, -1 when not queued
}

// Canceled reports whether the event has been removed from its queue (or was
// never scheduled).
func (e *Event) Canceled() bool { return e.idx < 0 }

// Stats counts a queue's lifetime traffic: total pushes, pops, and
// cancels, plus the depth high-water mark. Plain values — the queue does
// not depend on any metrics machinery; callers export them if they care.
type Stats struct {
	Pushes  uint64
	Pops    uint64
	Cancels uint64
	MaxLen  int
}

// Queue is a min-heap of events keyed by (At, insertion order).
// The zero Queue is ready to use.
type Queue struct {
	h     eventHeap
	seq   uint64
	stats Stats
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Stats returns the queue's lifetime traffic counters.
func (q *Queue) Stats() Stats { return q.stats }

// Push schedules fn at time at and returns a handle that can cancel it.
func (q *Queue) Push(at simtime.Time, fn func()) *Event {
	q.seq++
	e := &Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	q.stats.Pushes++
	if n := len(q.h); n > q.stats.MaxLen {
		q.stats.MaxLen = n
	}
	return e
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	q.stats.Pops++
	return e
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *Queue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Cancel removes e from the queue if it is still pending. Canceling an
// already-fired or already-canceled event is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(q.h) || q.h[e.idx] != e {
		return
	}
	heap.Remove(&q.h, e.idx)
	q.stats.Cancels++
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}
