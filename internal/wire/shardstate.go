package wire

import (
	"encoding/json"
	"sort"
)

// Message type tags shared by the analyzer wire protocol and shard
// state dumps. internal/analyzerd's TypeStep/TypeReport/TypeCF carry
// the same values; they live here too so shard-state consumers don't
// need the daemon package.
const (
	MsgStep   = "step"
	MsgReport = "report"
	MsgCF     = "cf"
)

// SourcedMessage is one accepted ingest message with its provenance:
// which client submitted it and at which sequence number. Shards in a
// diagnosis fleet retain these (instead of bare records) so that the
// fleet aggregator can merge any subset of shard dumps into one
// deterministic bundle — (client, seq) is stable across shard crashes,
// resubmission, and re-sharding, which is what makes the merged
// diagnosis byte-identical to an unbroken run.
type SourcedMessage struct {
	Client string      `json:"client,omitempty"`
	Seq    int64       `json:"seq,omitempty"`
	Type   string      `json:"type"`
	Step   *StepRecord `json:"step,omitempty"`
	Report *Report     `json:"report,omitempty"`
	CF     *Flow       `json:"cf,omitempty"`
}

// ShardStateFormat is the supported shard-state dump format version.
const ShardStateFormat = 1

// ShardState is one shard daemon's complete accepted-message set, as
// returned by the "dump" verb. Shard and Map echo the shard's position
// in the fleet so an aggregator can detect a mis-wired dump.
type ShardState struct {
	Format int `json:"format"`
	// Shard is this daemon's index in [0, Map.Shards).
	Shard int `json:"shard"`
	// Map is the shard map the daemon was running under.
	Map ShardMap `json:"map"`
	// Messages holds every accepted message in local ingest order.
	Messages []SourcedMessage `json:"messages,omitempty"`
	// Acked carries each client's acknowledged-sequence highwater,
	// sorted by client. A rebalance handoff needs the true highwater —
	// not the max retained message seq — because a permanently rejected
	// submission advances the window without leaving a message behind;
	// adopting only message seqs could wedge the new owner's
	// seq-contiguity check. Merging ignores this field.
	Acked []ClientAck `json:"acked,omitempty"`
}

// MergeStats describes what MergeShardStates folded together.
type MergeStats struct {
	// Shards is the number of shard states merged.
	Shards int
	// Messages is the total message count across all inputs.
	Messages int
	// Duplicates counts messages dropped because another copy with the
	// same (client, seq) identity was already merged.
	Duplicates int
	// DupCFs counts collective-flow registrations dropped because the
	// same flow was already announced (possibly by another client).
	DupCFs int
	// Records, Reports, and CFs are the unique counts in the merged
	// bundle.
	Records int
	Reports int
	CFs     int
}

// MergeShardStates merges any number of shard dumps into one bundle in
// canonical order. The order is a pure function of the merged message
// *set* — messages sort by (client, seq, type, serialized payload) and
// duplicate (client, seq) identities collapse — so the result is
// byte-identical no matter how the fleet was sharded, how often shards
// crashed and replayed their WALs, or in which order the dumps were
// gathered.
func MergeShardStates(states []*ShardState) (*Bundle, MergeStats) {
	stats := MergeStats{Shards: len(states)}
	type item struct {
		sm  SourcedMessage
		tie string // serialized payload, breaking ties between unsequenced messages
	}
	var items []item
	for _, st := range states {
		if st == nil {
			continue
		}
		stats.Messages += len(st.Messages)
		for _, sm := range st.Messages {
			b, err := json.Marshal(sm)
			if err != nil {
				b = nil // plain DTOs cannot fail to marshal; an empty tiebreak still sorts
			}
			items = append(items, item{sm: sm, tie: string(b)})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.sm.Client != b.sm.Client {
			return a.sm.Client < b.sm.Client
		}
		if a.sm.Seq != b.sm.Seq {
			return a.sm.Seq < b.sm.Seq
		}
		if a.sm.Type != b.sm.Type {
			return a.sm.Type < b.sm.Type
		}
		return a.tie < b.tie
	})

	bundle := &Bundle{}
	type identity struct {
		client string
		seq    int64
	}
	seen := map[identity]bool{}
	cfSeen := map[Flow]bool{}
	for _, it := range items {
		sm := it.sm
		if sm.Client != "" && sm.Seq > 0 {
			id := identity{client: sm.Client, seq: sm.Seq}
			if seen[id] {
				stats.Duplicates++
				continue
			}
			seen[id] = true
		}
		switch {
		case sm.Type == MsgStep && sm.Step != nil:
			bundle.Records = append(bundle.Records, *sm.Step)
		case sm.Type == MsgReport && sm.Report != nil:
			bundle.Reports = append(bundle.Reports, *sm.Report)
		case sm.Type == MsgCF && sm.CF != nil:
			if cfSeen[*sm.CF] {
				stats.DupCFs++
				continue
			}
			cfSeen[*sm.CF] = true
			bundle.CFs = append(bundle.CFs, *sm.CF)
		}
	}
	SortFlows(bundle.CFs)
	stats.Records = len(bundle.Records)
	stats.Reports = len(bundle.Reports)
	stats.CFs = len(bundle.CFs)
	return bundle, stats
}
