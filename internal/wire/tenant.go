package wire

// TenantAccount is one tenant's slice of a fleet drain: how many
// clients it ran, what its accepted messages broke down to, and how
// often the router's per-tenant quota turned it away. The router emits
// these sorted by tenant so the drain-time accounting block is
// deterministic for a deterministic stream.
type TenantAccount struct {
	Tenant  string `json:"tenant"`
	Clients int    `json:"clients"`
	Records int64  `json:"records"`
	Reports int64  `json:"reports"`
	CFs     int64  `json:"cfs"`
	// Limited counts submissions NACKed by the tenant's token bucket
	// (each retryable, so it bounds added latency rather than loss).
	Limited int64 `json:"limited,omitempty"`
}

// SortTenantAccounts orders accounts by tenant name.
func SortTenantAccounts(s []TenantAccount) {
	sortSlice(s, func(a, b TenantAccount) bool { return a.Tenant < b.Tenant })
}
