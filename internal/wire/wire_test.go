package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

func randFlow(rng *rand.Rand) fabric.FlowKey {
	return fabric.FlowKey{
		Src:     topo.NodeID(rng.Intn(100)),
		Dst:     topo.NodeID(rng.Intn(100)),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   uint8(rng.Intn(256)),
	}
}

// Property: flow keys survive the DTO round trip.
func TestFlowRoundTrip(t *testing.T) {
	f := func(src, dst int32, sp, dp uint16, proto uint8) bool {
		k := fabric.FlowKey{Src: topo.NodeID(src), Dst: topo.NodeID(dst), SrcPort: sp, DstPort: dp, Proto: proto}
		return FromFlow(k).Key() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepRecordRoundTrip(t *testing.T) {
	rec := collective.StepRecord{
		Host:        7,
		Step:        3,
		Flow:        fabric.FlowKey{Src: 7, Dst: 8, SrcPort: 5003, DstPort: 5003, Proto: 17},
		Bytes:       1 << 20,
		Start:       simtime.Time(5 * time.Microsecond),
		End:         simtime.Time(95 * time.Microsecond),
		WaitSrc:     6,
		BoundByWait: true,
	}
	got := FromStepRecord(rec).Record()
	if got != rec {
		t.Fatalf("round trip changed record:\n%+v\n%+v", got, rec)
	}
	// And through actual JSON.
	data, err := json.Marshal(FromStepRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	var dto StepRecord
	if err := json.Unmarshal(data, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Record() != rec {
		t.Fatalf("JSON round trip changed record")
	}
}

// randomReport builds a telemetry report with every field populated.
func randomReport(rng *rand.Rand) *telemetry.Report {
	rep := &telemetry.Report{
		At:          simtime.Time(rng.Int63n(1e9)),
		TriggeredBy: randFlow(rng),
		HopsPolled:  rng.Intn(20),
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		fr := telemetry.FlowRecord{
			Switch: topo.NodeID(20 + rng.Intn(10)),
			Port:   rng.Intn(4),
			Flow:   randFlow(rng),
			Pkts:   rng.Int63n(1000),
			Bytes:  rng.Int63n(1e9),
		}
		if rng.Intn(2) == 0 {
			fr.Wait = map[fabric.FlowKey]int64{randFlow(rng): rng.Int63n(500)}
		}
		rep.Flows = append(rep.Flows, fr)
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		pr := telemetry.PortRecord{
			Switch:         topo.NodeID(20 + rng.Intn(10)),
			Port:           rng.Intn(4),
			QueuedBytes:    rng.Int63n(1e6),
			QueuedPkts:     rng.Int63n(100),
			AvgQueuedBytes: rng.Int63n(1e6),
			Paused:         rng.Intn(2) == 0,
			PauseCount:     rng.Int63n(10),
			PausedFor:      simtime.Duration(rng.Int63n(1e6)),
		}
		if rng.Intn(2) == 0 {
			pr.MeterIn = map[topo.PortID]int64{
				{Node: topo.NodeID(rng.Intn(30)), Port: rng.Intn(4)}: rng.Int63n(1e6),
			}
		}
		if rng.Intn(2) == 0 {
			pr.PFCEvents = append(pr.PFCEvents, fabric.PFCEvent{
				At:          simtime.Time(rng.Int63n(1e9)),
				Pause:       rng.Intn(2) == 0,
				Upstream:    topo.PortID{Node: topo.NodeID(rng.Intn(30)), Port: rng.Intn(4)},
				Downstream:  topo.NodeID(rng.Intn(30)),
				IngressPort: rng.Intn(4),
				CauseEgress: rng.Intn(4),
				Injected:    rng.Intn(2) == 0,
			})
		}
		rep.Ports = append(rep.Ports, pr)
	}
	if rng.Intn(2) == 0 {
		rep.TTLDrops = map[topo.NodeID]int64{topo.NodeID(rng.Intn(30)): rng.Int63n(100)}
	}
	return rep
}

// Property: telemetry reports survive DTO + JSON round trips with all maps
// and nested records intact.
func TestReportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		rep := randomReport(rng)
		data, err := json.Marshal(FromReport(rep))
		if err != nil {
			t.Fatal(err)
		}
		var dto Report
		if err := json.Unmarshal(data, &dto); err != nil {
			t.Fatal(err)
		}
		back := dto.Telemetry()
		if !reflect.DeepEqual(normalize(rep), normalize(back)) {
			t.Fatalf("iteration %d: round trip changed report\nin:  %+v\nout: %+v", i, rep, back)
		}
	}
}

// normalize nils out empty maps that the round trip legitimately drops.
func normalize(r *telemetry.Report) *telemetry.Report {
	c := *r
	for i := range c.Flows {
		if len(c.Flows[i].Wait) == 0 {
			c.Flows[i].Wait = nil
		}
	}
	for i := range c.Ports {
		if len(c.Ports[i].MeterIn) == 0 {
			c.Ports[i].MeterIn = nil
		}
	}
	if len(c.TTLDrops) == 0 {
		c.TTLDrops = nil
	}
	return &c
}

func TestDeterministicDTOOrdering(t *testing.T) {
	// Maps have random iteration order; the DTO must not.
	rep := &telemetry.Report{
		Flows: []telemetry.FlowRecord{{
			Switch: 20, Port: 1, Flow: randFlow(rand.New(rand.NewSource(1))),
			Pkts: 5, Bytes: 5000,
			Wait: map[fabric.FlowKey]int64{
				{Src: 3, Dst: 4, SrcPort: 1, DstPort: 2, Proto: 17}: 1,
				{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: 17}: 2,
				{Src: 2, Dst: 3, SrcPort: 1, DstPort: 2, Proto: 17}: 3,
			},
		}},
	}
	a, _ := json.Marshal(FromReport(rep))
	for i := 0; i < 10; i++ {
		b, _ := json.Marshal(FromReport(rep))
		if string(a) != string(b) {
			t.Fatalf("nondeterministic DTO serialization")
		}
	}
}

func TestBundleRoundTripAndAnalyze(t *testing.T) {
	// Build a minimal contention bundle by hand and check the offline
	// analysis path produces the expected finding.
	cf := fabric.FlowKey{Src: 0, Dst: 1, SrcPort: 5000, DstPort: 5000, Proto: 17}
	bf := fabric.FlowKey{Src: 8, Dst: 9, SrcPort: 9000, DstPort: 9001, Proto: 17}
	records := []collective.StepRecord{
		{Host: 0, Step: 0, Flow: cf, Start: 0, End: simtime.Time(100 * time.Microsecond), WaitSrc: topo.None},
	}
	reports := []*telemetry.Report{{
		TriggeredBy: cf,
		Flows: []telemetry.FlowRecord{
			{Switch: 20, Port: 1, Flow: cf, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{bf: 7}},
			{Switch: 20, Port: 1, Flow: bf, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{cf: 3}},
		},
		Ports: []telemetry.PortRecord{{Switch: 20, Port: 1, AvgQueuedBytes: 9000}},
	}}
	cfs := map[fabric.FlowKey]bool{cf: true}

	b := NewBundle(records, reports, cfs)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 || len(back.Reports) != 1 || len(back.CFs) != 1 {
		t.Fatalf("bundle shape lost: %+v", back)
	}
	diag := back.Analyze()
	found := false
	for _, f := range diag.Findings {
		if f.Type.String() == "flow-contention" {
			for _, c := range f.Culprits {
				if c == bf {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("offline analysis missed the contention: %+v", diag.Findings)
	}
}
