package wire

import (
	"encoding/json"
	"fmt"
	"sort"
)

// HandoffFormat is the supported rebalance-handoff format version.
const HandoffFormat = 1

// HandoffClient is one moved client's acknowledged-sequence highwater,
// installed at the new owner as its dedup baseline.
type HandoffClient struct {
	Client string `json:"client"`
	Acked  int64  `json:"acked,omitempty"`
}

// Handoff is the deterministic state-transfer unit of a live rebalance:
// the slice of one donor shard's accepted messages (and ack windows)
// that the new shard map assigns to one target shard. The router builds
// these from donor dumps, persists each as a file, and delivers them to
// the targets via the "adopt" verb. Map is the map being installed; its
// Epoch versions the handoff so a stale delivery is rejected loudly.
type Handoff struct {
	Format int      `json:"format"`
	Map    ShardMap `json:"map"`
	// From and To are the donor and target shard indexes under the old
	// and new maps respectively.
	From int `json:"from"`
	To   int `json:"to"`
	// Clients lists every moved client's ack highwater, sorted by
	// client. A moved client appears here even when it has no retained
	// messages (every submission may have been rejected past the
	// window), so the baseline still transfers.
	Clients []HandoffClient `json:"clients,omitempty"`
	// Messages holds the moved clients' retained messages in canonical
	// (client, seq, type, payload) order.
	Messages []SourcedMessage `json:"messages,omitempty"`
}

// Filename names the handoff's on-disk artifact; the triple is unique
// within one rebalance.
func (h *Handoff) Filename() string {
	return fmt.Sprintf("epoch-%d-from-%d-to-%d.json", h.Map.Epoch, h.From, h.To)
}

// BuildHandoffs slices a donor's dump into per-target handoffs under
// the new map. The result is deterministic: targets ascend, and within
// each handoff clients and messages are canonically sorted, so the
// serialized handoff bytes are a pure function of the donor state and
// the new map. Unnamed messages have no hash key and never move.
func BuildHandoffs(state *ShardState, newMap ShardMap) ([]*Handoff, error) {
	ring, err := NewHashRing(newMap)
	if err != nil {
		return nil, err
	}
	byTarget := map[int]*Handoff{}
	target := func(to int) *Handoff {
		h := byTarget[to]
		if h == nil {
			h = &Handoff{Format: HandoffFormat, Map: newMap, From: state.Shard, To: to}
			byTarget[to] = h
		}
		return h
	}
	for _, sm := range state.Messages {
		if sm.Client == "" {
			continue
		}
		if to := ring.Owner(sm.Client); to != state.Shard {
			h := target(to)
			h.Messages = append(h.Messages, sm)
		}
	}
	for _, ack := range state.Acked {
		if ack.Client == "" {
			continue
		}
		if to := ring.Owner(ack.Client); to != state.Shard {
			h := target(to)
			h.Clients = append(h.Clients, HandoffClient{Client: ack.Client, Acked: ack.Seq})
		}
	}
	out := make([]*Handoff, 0, len(byTarget))
	for _, h := range byTarget {
		sort.Slice(h.Clients, func(i, j int) bool { return h.Clients[i].Client < h.Clients[j].Client })
		sortSourced(h.Messages)
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out, nil
}

// sortSourced orders messages canonically — the same (client, seq,
// type, serialized payload) order MergeShardStates uses — so handoff
// bytes don't depend on the donor's local ingest order.
func sortSourced(msgs []SourcedMessage) {
	ties := make([]string, len(msgs))
	for i, sm := range msgs {
		if b, err := json.Marshal(sm); err == nil {
			ties[i] = string(b)
		}
	}
	order := make([]int, len(msgs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := msgs[order[x]], msgs[order[y]]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return ties[order[x]] < ties[order[y]]
	})
	sorted := make([]SourcedMessage, len(msgs))
	for i, idx := range order {
		sorted[i] = msgs[idx]
	}
	copy(msgs, sorted)
}

// DonorShards returns the old-map shards whose dumps a rebalance must
// slice into handoffs. The ring's virtual nodes are labeled by shard
// index alone, so two maps with the same Replicas share every surviving
// shard's points exactly: a pure shrink moves keys only FROM the
// removed shards, and a grow moves keys only TO the new ones. That
// makes a shrink's donor set just the removed tail; any other change
// (growth, replica change) must dump every old shard.
func DonorShards(old, next ShardMap) []int {
	or, nr := old.Replicas, next.Replicas
	if or == 0 {
		or = DefaultShardReplicas
	}
	if nr == 0 {
		nr = DefaultShardReplicas
	}
	if next.Shards < old.Shards && or == nr {
		donors := make([]int, 0, old.Shards-next.Shards)
		for i := next.Shards; i < old.Shards; i++ {
			donors = append(donors, i)
		}
		return donors
	}
	donors := make([]int, old.Shards)
	for i := range donors {
		donors[i] = i
	}
	return donors
}
