package wire

// ClientAck is one client's acknowledged-sequence highwater — the dedup
// state that lets a restarted analyzer suppress resubmissions of messages
// it had already made durable before the crash.
type ClientAck struct {
	Client string `json:"client"`
	Seq    int64  `json:"seq"`
}

// SnapshotFormat is the supported snapshot format version.
const SnapshotFormat = 1

// Snapshot is the JSON form of the analyzer daemon's complete ingest
// state: every step record, telemetry report, and collective-flow
// registration in ingest order, plus the per-client ack windows. A
// snapshot plus the write-ahead-log entries at or after NextLSN
// reconstructs a byte-identical Diagnose() — the records slice preserves
// arrival order because the analyzer's flow→step index is last-write-wins
// over that order.
type Snapshot struct {
	Format  int          `json:"format"`
	NextLSN uint64       `json:"next_lsn"`
	Records []StepRecord `json:"records,omitempty"`
	Reports []Report     `json:"reports,omitempty"`
	CFs     []Flow       `json:"cfs,omitempty"`
	Acked   []ClientAck  `json:"acked,omitempty"`
	// Messages replaces Records/Reports/CFs when the daemon runs as a
	// fleet shard: shard snapshots keep each accepted message with its
	// (client, seq) provenance so recovery can re-filter ownership
	// against the current shard map and the aggregator can merge dumps
	// deterministically. omitempty keeps standalone snapshots
	// byte-identical to the pre-fleet format.
	Messages []SourcedMessage `json:"messages,omitempty"`
}

// SortFlows sorts flows in canonical (src, dst, sport, dport, proto)
// order, for deterministic serialization of flow sets.
func SortFlows(s []Flow) { sortSlice(s, flowLess) }

// SortClientAcks sorts ack windows by client ID.
func SortClientAcks(s []ClientAck) {
	sortSlice(s, func(a, b ClientAck) bool { return a.Client < b.Client })
}
