package wire

// Sweep exchange forms: the JSONL journal written by internal/sweep is a
// header line (SweepHeader) followed by one SweepRecord per completed case.
// The journal is the sweep's checkpoint — a restarted sweep skips every job
// whose key already has a successful record — so these DTOs carry both the
// job identity (to rebuild the work list) and the per-case aggregates the
// figure harnesses consume. Kinds, systems, and outcomes travel as their
// stable numeric codes; the redundant *_name fields are informational only
// and ignored when decoding.

// SweepSpec identifies which sweep a journal belongs to. A journal opened
// with a different spec is rejected rather than silently mixed.
type SweepSpec struct {
	// Name of the job-set the journal covers (fig9, fig12, fig13a,
	// fig13b, ext, slowdowns).
	Name string `json:"name"`
	// Paper selects the full §IV-A case census over the reduced one.
	Paper bool `json:"paper,omitempty"`
	// ScaleDen is the workload scale denominator (sizes and times are
	// 1/ScaleDen of the paper's).
	ScaleDen float64 `json:"scale_den"`
}

// SweepHeader is the first line of a sweep journal.
type SweepHeader struct {
	// Format is the journal format version (currently 1).
	Format int       `json:"vedrfolnir_sweep"`
	Spec   SweepSpec `json:"spec"`
}

// SweepParams is the JSON form of a job's run-option overrides. Zero
// fields mean "the system's default operating point".
type SweepParams struct {
	RTTFactor        float64 `json:"rtt_factor,omitempty"`
	MaxDetectPerStep int     `json:"max_detect,omitempty"`
	FixedRTTNS       int64   `json:"fixed_rtt_ns,omitempty"`
	Unrestricted     bool    `json:"unrestricted,omitempty"`
	ChaosLoss        float64 `json:"chaos_loss,omitempty"`
}

// SweepJob is the JSON form of one scheduled case.
type SweepJob struct {
	Kind       uint8       `json:"kind"`
	KindName   string      `json:"kind_name,omitempty"`
	Seed       int64       `json:"seed"`
	System     uint8       `json:"system"`
	SystemName string      `json:"system_name,omitempty"`
	Params     SweepParams `json:"params"`
}

// SweepRecord is the JSON form of one completed (or failed) case.
type SweepRecord struct {
	Key string   `json:"key"`
	Job SweepJob `json:"job"`
	// Err is the case's captured failure; when non-empty every result
	// field below is meaningless and a resumed sweep re-runs the job.
	Err            string  `json:"err,omitempty"`
	Outcome        uint8   `json:"outcome"`
	OutcomeName    string  `json:"outcome_name,omitempty"`
	Completed      bool    `json:"completed"`
	TelemetryBytes int64   `json:"telemetry_bytes"`
	BandwidthBytes int64   `json:"bandwidth_bytes"`
	CollectiveNS   int64   `json:"collective_ns"`
	Detected       int     `json:"detected"`
	Confidence     float64 `json:"confidence,omitempty"`
	SamplesNS      []int64 `json:"samples_ns,omitempty"`
}
