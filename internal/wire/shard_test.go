package wire

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestHashRingDeterministicAndCovering(t *testing.T) {
	m := ShardMap{Shards: 4}
	a, err := NewHashRing(m)
	if err != nil {
		t.Fatalf("NewHashRing: %v", err)
	}
	b, err := NewHashRing(m)
	if err != nil {
		t.Fatalf("NewHashRing: %v", err)
	}
	hit := make([]int, m.Shards)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("h%03d", i)
		own := a.Owner(key)
		if own < 0 || own >= m.Shards {
			t.Fatalf("Owner(%q) = %d out of range", key, own)
		}
		if got := b.Owner(key); got != own {
			t.Fatalf("rings disagree on %q: %d vs %d", key, own, got)
		}
		hit[own]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d owns none of 256 keys — ring badly unbalanced", s)
		}
	}
}

func TestHashRingRejectsBadMaps(t *testing.T) {
	if _, err := NewHashRing(ShardMap{Shards: 0}); err == nil {
		t.Error("expected error for zero shards")
	}
	if _, err := NewHashRing(ShardMap{Shards: 2, Replicas: -1}); err == nil {
		t.Error("expected error for negative replicas")
	}
}

// shardTestMessages builds a small sourced stream across three clients.
func shardTestMessages() []SourcedMessage {
	var msgs []SourcedMessage
	for c := 0; c < 3; c++ {
		client := fmt.Sprintf("h%02d", c)
		seq := int64(0)
		for i := 0; i < 4; i++ {
			seq++
			f := Flow{Src: int32(c), Dst: int32(c + 1), SrcPort: uint16(i), DstPort: 7, Proto: 17}
			msgs = append(msgs, SourcedMessage{Client: client, Seq: seq, Type: MsgCF, CF: &f})
			seq++
			rec := StepRecord{Host: int32(c), Step: i, Flow: f, Bytes: 1 << 20}
			msgs = append(msgs, SourcedMessage{Client: client, Seq: seq, Type: MsgStep, Step: &rec})
		}
	}
	return msgs
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestMergeShardStatesPartitionInvariant(t *testing.T) {
	msgs := shardTestMessages()

	// One big shard vs. per-client shards vs. an interleaved split with a
	// duplicated message — all must merge to the same bundle.
	whole := []*ShardState{{Format: ShardStateFormat, Messages: msgs}}
	var perClient []*ShardState
	byClient := map[string][]SourcedMessage{}
	for _, m := range msgs {
		byClient[m.Client] = append(byClient[m.Client], m)
	}
	for c := 0; c < 3; c++ {
		client := fmt.Sprintf("h%02d", c)
		perClient = append(perClient, &ShardState{Format: ShardStateFormat, Shard: c, Messages: byClient[client]})
	}
	split := []*ShardState{
		{Messages: append(append([]SourcedMessage{}, msgs[6:]...), msgs[3])}, // dup of msgs[3]
		{Messages: msgs[:6]},
		nil,
	}

	wantBundle, wantStats := MergeShardStates(whole)
	want := mustJSON(t, wantBundle)
	if wantStats.Duplicates != 0 || wantStats.Records != 12 || wantStats.CFs != 12 {
		t.Fatalf("unexpected whole-merge stats: %+v", wantStats)
	}
	if got, _ := MergeShardStates(perClient); mustJSON(t, got) != want {
		t.Errorf("per-client merge differs:\n got %s\nwant %s", mustJSON(t, got), want)
	}
	gotSplit, splitStats := MergeShardStates(split)
	if mustJSON(t, gotSplit) != want {
		t.Errorf("split merge differs:\n got %s\nwant %s", mustJSON(t, gotSplit), want)
	}
	if splitStats.Duplicates != 1 {
		t.Errorf("split merge Duplicates = %d, want 1", splitStats.Duplicates)
	}
}

func TestMergeShardStatesDedupesCFs(t *testing.T) {
	f := Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	states := []*ShardState{
		{Messages: []SourcedMessage{{Client: "a", Seq: 1, Type: MsgCF, CF: &f}}},
		{Messages: []SourcedMessage{{Client: "b", Seq: 1, Type: MsgCF, CF: &f}}},
	}
	b, stats := MergeShardStates(states)
	if len(b.CFs) != 1 || stats.DupCFs != 1 {
		t.Errorf("got %d cfs, DupCFs=%d; want 1 cf, 1 dup", len(b.CFs), stats.DupCFs)
	}
}

func TestMergeShardStatesUnsequencedDeterministic(t *testing.T) {
	r1 := StepRecord{Host: 1, Step: 0}
	r2 := StepRecord{Host: 2, Step: 0}
	a := []*ShardState{{Messages: []SourcedMessage{
		{Type: MsgStep, Step: &r1}, {Type: MsgStep, Step: &r2},
	}}}
	b := []*ShardState{{Messages: []SourcedMessage{
		{Type: MsgStep, Step: &r2}, {Type: MsgStep, Step: &r1},
	}}}
	ba, _ := MergeShardStates(a)
	bb, _ := MergeShardStates(b)
	if mustJSON(t, ba) != mustJSON(t, bb) {
		t.Errorf("unsequenced merge order depends on input order:\n%s\n%s", mustJSON(t, ba), mustJSON(t, bb))
	}
}
