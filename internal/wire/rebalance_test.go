package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"
)

// syntheticIDs returns 10k client names shaped like real fleet traffic
// (tenant prefix + host suffix) so movement bounds are measured on the
// key distribution the router actually hashes.
func syntheticIDs() []string {
	ids := make([]string, 10000)
	for i := range ids {
		ids[i] = fmt.Sprintf("tenant-%d/host-%04d", i%23, i)
	}
	return ids
}

func mustRing(t *testing.T, m ShardMap) *HashRing {
	t.Helper()
	r, err := NewHashRing(m)
	if err != nil {
		t.Fatalf("NewHashRing(%+v): %v", m, err)
	}
	return r
}

// TestHashRingGrowMovementBound is the consistent-hashing contract a
// live rebalance leans on: growing N→N+1 moves roughly 1/(N+1) of the
// keys (within 2× of ideal for 64 vnodes), and every moved key lands on
// the NEW shard — surviving shards share their ring points across the
// two maps, so they can only donate, never trade among themselves.
func TestHashRingGrowMovementBound(t *testing.T) {
	ids := syntheticIDs()
	for n := 2; n <= 8; n++ {
		old := mustRing(t, ShardMap{Shards: n})
		next := mustRing(t, ShardMap{Shards: n + 1})
		moved := 0
		for _, id := range ids {
			a, b := old.Owner(id), next.Owner(id)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("grow %d→%d moved %q from shard %d to %d; only the new shard %d may gain keys",
					n, n+1, id, a, b, n)
			}
		}
		ideal := len(ids) / (n + 1)
		if moved == 0 || moved > 2*ideal {
			t.Errorf("grow %d→%d moved %d of %d ids, want (0, %d] (ideal %d)",
				n, n+1, moved, len(ids), 2*ideal, ideal)
		}
	}
}

// TestHashRingShrinkMovementBound: shrink is the exact inverse — the
// moved set is precisely the removed shard's keys, nothing else.
func TestHashRingShrinkMovementBound(t *testing.T) {
	ids := syntheticIDs()
	for n := 3; n <= 9; n++ {
		old := mustRing(t, ShardMap{Shards: n})
		next := mustRing(t, ShardMap{Shards: n - 1})
		for _, id := range ids {
			a, b := old.Owner(id), next.Owner(id)
			if a == n-1 {
				if b == a {
					t.Fatalf("shrink %d→%d left %q on removed shard %d", n, n-1, id, a)
				}
			} else if b != a {
				t.Fatalf("shrink %d→%d moved %q from surviving shard %d to %d; only the removed shard donates",
					n, n-1, id, a, b)
			}
		}
	}
}

// TestHashRingAssignmentByteStable pins the assignment function itself:
// the checksum of 10k ownership decisions must never drift across
// replica counts, process restarts, or refactors of the hash — a drift
// would silently reassign every fleet's clients on upgrade.
func TestHashRingAssignmentByteStable(t *testing.T) {
	golden := []struct {
		m   ShardMap
		sum uint64
	}{
		{ShardMap{Shards: 4}, 0x01d0a5eac60bfc36},
		{ShardMap{Shards: 4, Replicas: 16}, 0x14fd4b606e01021a},
		{ShardMap{Shards: 7, Replicas: 128}, 0xe38af973dea79354},
	}
	for _, g := range golden {
		ring := mustRing(t, g.m)
		h := fnv.New64a()
		for _, id := range syntheticIDs() {
			fmt.Fprintf(h, "%s=%d;", id, ring.Owner(id))
		}
		if got := h.Sum64(); got != g.sum {
			t.Errorf("assignment checksum for %+v = %#016x, want %#016x (ownership drifted!)", g.m, got, g.sum)
		}
		// Epoch is versioning metadata only: it must not perturb the ring.
		withEpoch := g.m
		withEpoch.Epoch = 42
		ring2 := mustRing(t, withEpoch)
		for _, id := range []string{"h00", "tenant-1/host-0001", "x"} {
			if ring.Owner(id) != ring2.Owner(id) {
				t.Errorf("Owner(%q) differs across epochs of the same map", id)
			}
		}
	}
}

// TestDonorShards pins which dumps a rebalance must take: a pure shrink
// drains only the removed tail; growth and replica changes drain all.
func TestDonorShards(t *testing.T) {
	cases := []struct {
		old, next ShardMap
		want      []int
	}{
		{ShardMap{Shards: 2}, ShardMap{Shards: 3}, []int{0, 1}},
		{ShardMap{Shards: 4}, ShardMap{Shards: 2}, []int{2, 3}},
		{ShardMap{Shards: 3, Replicas: 64}, ShardMap{Shards: 2}, []int{2}},
		{ShardMap{Shards: 3, Replicas: 16}, ShardMap{Shards: 2, Replicas: 32}, []int{0, 1, 2}},
		{ShardMap{Shards: 3}, ShardMap{Shards: 3, Epoch: 1}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		if got := DonorShards(c.old, c.next); !reflect.DeepEqual(got, c.want) {
			t.Errorf("DonorShards(%+v, %+v) = %v, want %v", c.old, c.next, got, c.want)
		}
	}
}

// TestBuildHandoffsDeterministic: the serialized handoff must be a pure
// function of the donor's message *set* and the new map, independent of
// the donor's local ingest order — the byte-identity story depends on
// the handoff file being reproducible from any incarnation of the
// donor.
func TestBuildHandoffsDeterministic(t *testing.T) {
	next := ShardMap{Shards: 3, Epoch: 1}
	ring := mustRing(t, next)
	step := StepRecord{Host: 1, Step: 2}
	var msgs []SourcedMessage
	var acked []ClientAck
	for i := 0; i < 40; i++ {
		c := fmt.Sprintf("h%02d", i)
		msgs = append(msgs, SourcedMessage{Client: c, Seq: 1, Type: MsgStep, Step: &step})
		acked = append(acked, ClientAck{Client: c, Seq: 2})
	}
	state := &ShardState{Format: ShardStateFormat, Shard: 0, Map: ShardMap{Shards: 2}, Messages: msgs, Acked: acked}
	hs, err := BuildHandoffs(state, next)
	if err != nil {
		t.Fatalf("BuildHandoffs: %v", err)
	}
	if len(hs) == 0 {
		t.Fatal("no handoffs built; expected shard 0 to donate to shards 1 and 2")
	}
	for _, h := range hs {
		if h.From != 0 || h.To == 0 || h.Map != next || h.Format != HandoffFormat {
			t.Errorf("handoff header %+v malformed", h)
		}
		for _, sm := range h.Messages {
			if ring.Owner(sm.Client) != h.To {
				t.Errorf("handoff to %d carries %q owned by %d", h.To, sm.Client, ring.Owner(sm.Client))
			}
		}
		for _, hc := range h.Clients {
			if hc.Acked != 2 {
				t.Errorf("client %q handed off with acked %d, want 2", hc.Client, hc.Acked)
			}
		}
		if want := fmt.Sprintf("epoch-1-from-0-to-%d.json", h.To); h.Filename() != want {
			t.Errorf("Filename() = %q, want %q", h.Filename(), want)
		}
	}

	// Reverse the donor's ingest order: identical bytes.
	rev := &ShardState{Format: ShardStateFormat, Shard: 0, Map: state.Map}
	for i := len(msgs) - 1; i >= 0; i-- {
		rev.Messages = append(rev.Messages, msgs[i])
	}
	for i := len(acked) - 1; i >= 0; i-- {
		rev.Acked = append(rev.Acked, acked[i])
	}
	hs2, err := BuildHandoffs(rev, next)
	if err != nil {
		t.Fatalf("BuildHandoffs(reversed): %v", err)
	}
	a, _ := json.Marshal(hs)
	b, _ := json.Marshal(hs2)
	if !bytes.Equal(a, b) {
		t.Errorf("handoff bytes depend on donor ingest order:\n%s\nvs\n%s", a, b)
	}
}

// TestBuildHandoffsSkipsUnnamed: unnamed messages have no hash key and
// must stay with the donor.
func TestBuildHandoffsSkipsUnnamed(t *testing.T) {
	step := StepRecord{Host: 1}
	state := &ShardState{
		Shard:    0,
		Map:      ShardMap{Shards: 1},
		Messages: []SourcedMessage{{Type: MsgStep, Step: &step}},
	}
	hs, err := BuildHandoffs(state, ShardMap{Shards: 2, Epoch: 1})
	if err != nil {
		t.Fatalf("BuildHandoffs: %v", err)
	}
	for _, h := range hs {
		if len(h.Messages) != 0 {
			t.Errorf("unnamed message moved in handoff %+v", h)
		}
	}
}
