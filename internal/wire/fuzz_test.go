package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReportRoundTrip: an arbitrary JSON report that unmarshals must
// convert to the internal telemetry form and back without panicking, and
// the DTO→internal→DTO conversion must be a fixed point after one
// normalization pass (FromReport sorts the map-derived lists, so a second
// pass must be byte-stable — the property journal resume and the
// determinism tests depend on).
func FuzzReportRoundTrip(f *testing.F) {
	f.Add([]byte(`{"at_ns":5,"triggered_by":{"src":1,"dst":2,"sport":7,"dport":8,"proto":17},"hops_polled":3}`))
	f.Add([]byte(`{"at_ns":5,"triggered_by":{},"ports_missed":2,"flows":[{"switch":9,"port":1,"flow":{"src":1,"dst":2},"pkts":10,"bytes":1000,"wait":[{"flow":{"src":3,"dst":4},"n":7}]}]}`))
	f.Add([]byte(`{"ports":[{"switch":9,"port":0,"queued_bytes":1,"paused":true,"meter_in":[{"from":{"node":2,"port":1},"bytes":5}],"pfc_events":[{"at_ns":1,"pause":true,"upstream":{"node":2,"port":1},"downstream":9,"ingress":1,"cause":3}]}]}`))
	f.Add([]byte(`{"ttl_drops":[{"switch":4,"n":2},{"switch":3,"n":1}]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var dto Report
		if err := json.Unmarshal(data, &dto); err != nil {
			return
		}
		// First pass normalizes (duplicate map keys collapse, lists sort).
		norm := FromReport(dto.Telemetry())
		a, err := json.Marshal(norm)
		if err != nil {
			t.Fatalf("marshal after round trip: %v", err)
		}
		// Second pass must be the identity.
		again := FromReport(norm.Telemetry())
		b, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("marshal after second round trip: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("report round trip not stable:\n%s\nvs\n%s", a, b)
		}
	})
}

// FuzzStepRecordRoundTrip: the step-record DTO is flat, so the round trip
// must be exactly lossless, not just stable.
func FuzzStepRecordRoundTrip(f *testing.F) {
	f.Add([]byte(`{"host":3,"step":1,"flow":{"src":3,"dst":4,"sport":1,"dport":2,"proto":17},"bytes":1048576,"start_ns":100,"end_ns":900,"wait_src":2,"wait_step":0,"bound_by_wait":true}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var dto StepRecord
		if err := json.Unmarshal(data, &dto); err != nil {
			return
		}
		if got := FromStepRecord(dto.Record()); got != dto {
			t.Fatalf("step record round trip lost data:\n%+v\nvs\n%+v", got, dto)
		}
	})
}

// FuzzSnapshotRoundTrip: an arbitrary JSON analyzer snapshot must survive
// an unmarshal → normalize (sort the flow and ack sets) → marshal cycle
// stably: the second pass is the identity. Recovery equality depends on
// this — a snapshot written, read back, and written again must be
// byte-identical.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte(`{"format":1,"next_lsn":7,"records":[{"host":3,"step":1,"flow":{"src":3,"dst":4,"sport":1,"dport":2,"proto":17},"bytes":1048576,"start_ns":100,"end_ns":900}],"cfs":[{"src":9,"dst":1},{"src":2,"dst":3,"proto":6}],"acked":[{"client":"h2","seq":41},{"client":"h1","seq":9}]}`))
	f.Add([]byte(`{"format":1,"reports":[{"at_ns":5,"triggered_by":{"src":1,"dst":2},"hops_polled":3}]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return
		}
		// First pass normalizes the set-valued fields; records and reports
		// keep ingest order by design.
		SortFlows(snap.CFs)
		SortClientAcks(snap.Acked)
		for i, r := range snap.Reports {
			snap.Reports[i] = FromReport(r.Telemetry())
		}
		a, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var snap2 Snapshot
		if err := json.Unmarshal(a, &snap2); err != nil {
			t.Fatalf("re-unmarshal of own output: %v", err)
		}
		SortFlows(snap2.CFs)
		SortClientAcks(snap2.Acked)
		for i, r := range snap2.Reports {
			snap2.Reports[i] = FromReport(r.Telemetry())
		}
		b, err := json.Marshal(snap2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("snapshot round trip not stable:\n%s\nvs\n%s", a, b)
		}
	})
}

// FuzzShardMapDecode: an arbitrary JSON shard map either fails ring
// construction with an error or yields a ring whose ownership function
// is total (every key lands in [0, Shards)), and the map's JSON round
// trip is stable. The rebalance admin channel feeds remotely-supplied
// maps straight into NewHashRing, so this is an input-validation
// surface, not just a DTO.
func FuzzShardMapDecode(f *testing.F) {
	f.Add([]byte(`{"shards":3}`))
	f.Add([]byte(`{"shards":4,"replicas":16,"epoch":7}`))
	f.Add([]byte(`{"shards":-1}`))
	f.Add([]byte(`{"shards":0,"replicas":-5}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ShardMap
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		a, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var m2 ShardMap
		if err := json.Unmarshal(a, &m2); err != nil || m2 != m {
			t.Fatalf("shard map round trip lost data: %+v vs %+v (%v)", m2, m, err)
		}
		ring, err := NewHashRing(m)
		if err != nil {
			return // invalid maps must be rejected, not built
		}
		// Cap the work: enormous replica counts are legal but slow to
		// exercise per fuzz iteration.
		if m.Shards > 1024 || m.Replicas > 1024 {
			return
		}
		for _, key := range []string{"", "h00", string(data)} {
			if o := ring.Owner(key); o < 0 || o >= m.Shards {
				t.Fatalf("Owner(%q) = %d, outside [0, %d)", key, o, m.Shards)
			}
		}
	})
}

// FuzzHandoffRoundTrip: an arbitrary JSON handoff survives an unmarshal
// → normalize (canonical client/message order) → marshal cycle stably —
// the handoff file is the durable artifact of a rebalance, so its
// serialization must be a fixed point after one normalization pass.
func FuzzHandoffRoundTrip(f *testing.F) {
	f.Add([]byte(`{"format":1,"map":{"shards":3,"epoch":2},"from":0,"to":2,"clients":[{"client":"h1","acked":4}],"messages":[{"client":"h1","seq":3,"type":"cf","cf":{"src":1,"dst":2}}]}`))
	f.Add([]byte(`{"format":1,"map":{"shards":2},"from":1,"to":0}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Handoff
		if err := json.Unmarshal(data, &h); err != nil {
			return
		}
		normalize := func(h *Handoff) {
			sortSlice(h.Clients, func(a, b HandoffClient) bool { return a.Client < b.Client })
			sortSourced(h.Messages)
		}
		normalize(&h)
		a, err := json.Marshal(&h)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var h2 Handoff
		if err := json.Unmarshal(a, &h2); err != nil {
			t.Fatalf("re-unmarshal of own output: %v", err)
		}
		normalize(&h2)
		b, err := json.Marshal(&h2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("handoff round trip not stable:\n%s\nvs\n%s", a, b)
		}
	})
}

// FuzzSweepRecordRoundTrip: journal records (including the chaos-grid
// fields) survive resultFromWire-style JSON cycles stably.
func FuzzSweepRecordRoundTrip(f *testing.F) {
	f.Add([]byte(`{"key":"flow-contention/vedrfolnir/s4/loss=0.01","kind":"flow-contention","seed":4,"system":"vedrfolnir","params":{"chaos_loss":0.01},"outcome":"TP","completed":true,"confidence":0.875}`))
	f.Add([]byte(`{"key":"incast/vedrfolnir/s0","err":"timed out after 30s (job abandoned)"}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec SweepRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return
		}
		a, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var rec2 SweepRecord
		if err := json.Unmarshal(a, &rec2); err != nil {
			t.Fatalf("re-unmarshal of own output: %v", err)
		}
		b, err := json.Marshal(rec2)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("sweep record round trip not stable:\n%s\nvs\n%s", a, b)
		}
	})
}
