package wire

import (
	"encoding/json"
	"io"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/waitgraph"
)

// Bundle is a complete diagnosis input set in exchange form: everything the
// analyzer needs to reproduce a diagnosis offline (cmd/vedranalyze) or on
// another machine.
type Bundle struct {
	Records []StepRecord `json:"records"`
	Reports []Report     `json:"reports"`
	CFs     []Flow       `json:"cfs"`
	// Metrics is an optional observability snapshot (internal/obs
	// Registry.Flatten) taken when the bundle was produced. omitempty
	// keeps bundles from uninstrumented runs byte-identical to before the
	// field existed.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// NewBundle converts internal analyzer inputs into exchange form.
func NewBundle(records []collective.StepRecord, reports []*telemetry.Report, cfs map[fabric.FlowKey]bool) *Bundle {
	b := &Bundle{}
	for _, r := range records {
		b.Records = append(b.Records, FromStepRecord(r))
	}
	for _, r := range reports {
		b.Reports = append(b.Reports, FromReport(r))
	}
	for f := range cfs {
		b.CFs = append(b.CFs, FromFlow(f))
	}
	sortSlice(b.CFs, flowLess)
	return b
}

// Write serializes the bundle as JSON.
func (b *Bundle) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(b)
}

// ReadBundle parses a JSON bundle.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Analyze reconstructs the internal inputs and runs the analyzer. The
// step index for per-step provenance grouping is rebuilt from the records.
func (b *Bundle) Analyze() *diagnose.Diagnosis {
	return b.AnalyzeObs(nil)
}

// AnalyzeObs is Analyze with an observability scope threaded into the
// analyzer: phase instants land on the trace and diagnosis counters on the
// registry. A nil scope behaves exactly like Analyze.
func (b *Bundle) AnalyzeObs(scope *obs.Scope) *diagnose.Diagnosis {
	return b.analyze(scope, 0, 0)
}

// AnalyzeDegraded is AnalyzeObs for a bundle known to be incomplete —
// e.g. a fleet merge with a shard missing. missedRecords and
// missedReports count messages that were acknowledged somewhere but are
// absent from the bundle; they feed the diagnosis Coverage/Confidence
// scores so the caller gets a scored partial diagnosis instead of an
// error. Both zero behaves exactly like AnalyzeObs.
func (b *Bundle) AnalyzeDegraded(scope *obs.Scope, missedRecords, missedReports int) *diagnose.Diagnosis {
	return b.analyze(scope, missedRecords, missedReports)
}

func (b *Bundle) analyze(scope *obs.Scope, missedRecords, missedReports int) *diagnose.Diagnosis {
	var records []collective.StepRecord
	index := map[fabric.FlowKey]waitgraph.StepRef{}
	for _, r := range b.Records {
		rec := r.Record()
		records = append(records, rec)
		index[rec.Flow] = waitgraph.StepRef{Host: rec.Host, Step: rec.Step}
	}
	var reports []*telemetry.Report
	for _, r := range b.Reports {
		reports = append(reports, r.Telemetry())
	}
	cfs := map[fabric.FlowKey]bool{}
	for _, f := range b.CFs {
		cfs[f.Key()] = true
	}
	in := diagnose.Input{
		Records: records,
		Reports: reports,
		CFs:     cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			ref, ok := index[f]
			return ref, ok
		},
		Obs: scope,
	}
	if missedRecords > 0 {
		in.RecordsExpected = len(records) + missedRecords
	}
	in.PollsLost = missedReports
	return diagnose.Analyze(in)
}
