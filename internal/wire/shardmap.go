package wire

import (
	"fmt"
	"sort"
)

// DefaultShardReplicas is the number of virtual nodes each shard
// contributes to the consistent-hash ring when ShardMap.Replicas is
// unset. More replicas smooth the key distribution at the cost of a
// larger (still tiny) ring.
const DefaultShardReplicas = 64

// ShardMap describes how a diagnosis fleet partitions clients across
// shard daemons. It is part of the wire schema: the router, every
// shard, and recovery all derive ownership from the same map, so the
// map must be identical everywhere for the fleet's exactly-once
// guarantees to hold.
type ShardMap struct {
	// Shards is the number of shard daemons in the fleet.
	Shards int `json:"shards"`
	// Replicas is the number of virtual nodes per shard on the hash
	// ring; zero means DefaultShardReplicas.
	Replicas int `json:"replicas,omitempty"`
	// Epoch versions the map: a live rebalance installs its successor
	// with Epoch+1, shards reject remaps whose epoch is behind their
	// own, and dumps echo it so the aggregator can detect a shard that
	// restarted on stale arguments. The ring itself depends only on
	// Shards and Replicas.
	Epoch int64 `json:"epoch,omitempty"`
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// HashRing is an immutable consistent-hash ring over a ShardMap. A key
// is owned by the shard of the first virtual node at or clockwise of
// the key's FNV-1a hash. Safe for concurrent use once built.
type HashRing struct {
	points []ringPoint
	shards int
}

// NewHashRing builds the ring for m. The construction is fully
// deterministic: the same map yields the same ring (and therefore the
// same ownership function) in every process.
func NewHashRing(m ShardMap) (*HashRing, error) {
	if m.Shards <= 0 {
		return nil, fmt.Errorf("wire: shard map needs at least one shard, got %d", m.Shards)
	}
	if m.Replicas < 0 {
		return nil, fmt.Errorf("wire: shard map replicas cannot be negative, got %d", m.Replicas)
	}
	replicas := m.Replicas
	if replicas == 0 {
		replicas = DefaultShardReplicas
	}
	r := &HashRing{shards: m.Shards, points: make([]ringPoint, 0, m.Shards*replicas)}
	for s := 0; s < m.Shards; s++ {
		for v := 0; v < replicas; v++ {
			label := fmt.Sprintf("shard-%d#%d", s, v)
			r.points = append(r.points, ringPoint{hash: fnv64a(label), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the number of shards the ring was built for.
func (r *HashRing) Shards() int { return r.shards }

// Owner returns the index of the shard owning key.
func (r *HashRing) Owner(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point back to the ring start
	}
	return r.points[i].shard
}

// fnv64a is the 64-bit FNV-1a hash with a murmur3-style avalanche
// finalizer, inlined so the ring never allocates a hasher per key. Raw
// FNV output for short, similar strings ("shard-1#0", "shard-1#1", …)
// clusters into tight bands that would leave most of the ring owned by
// one shard; the finalizer spreads those bands across the full 64-bit
// space.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
