// Package wire defines the JSON-safe exchange format between Vedrfolnir's
// host-side monitors and the central analyzer (the report path of Fig 3),
// and for exporting diagnoses to external tooling. The internal types use
// struct-keyed maps (efficient in memory, unrepresentable in JSON), so this
// package provides faithful DTO conversions in both directions.
package wire

import (
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

// Flow is the JSON form of a 5-tuple.
type Flow struct {
	Src     int32  `json:"src"`
	Dst     int32  `json:"dst"`
	SrcPort uint16 `json:"sport"`
	DstPort uint16 `json:"dport"`
	Proto   uint8  `json:"proto"`
}

// FromFlow converts an internal flow key.
func FromFlow(k fabric.FlowKey) Flow {
	return Flow{Src: int32(k.Src), Dst: int32(k.Dst), SrcPort: k.SrcPort, DstPort: k.DstPort, Proto: k.Proto}
}

// Key converts back to the internal flow key.
func (f Flow) Key() fabric.FlowKey {
	return fabric.FlowKey{Src: topo.NodeID(f.Src), Dst: topo.NodeID(f.Dst), SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: f.Proto}
}

// Port is the JSON form of a port identity.
type Port struct {
	Node int32 `json:"node"`
	Port int   `json:"port"`
}

// FromPort converts an internal port ID.
func FromPort(p topo.PortID) Port { return Port{Node: int32(p.Node), Port: p.Port} }

// ID converts back to the internal port ID.
func (p Port) ID() topo.PortID { return topo.PortID{Node: topo.NodeID(p.Node), Port: p.Port} }

// FlowCount is one entry of a flow-keyed counter map.
type FlowCount struct {
	Flow Flow  `json:"flow"`
	N    int64 `json:"n"`
}

// StepRecord is the JSON form of a monitor's per-step report (§III-C1).
type StepRecord struct {
	Host        int32 `json:"host"`
	Step        int   `json:"step"`
	Flow        Flow  `json:"flow"`
	Bytes       int64 `json:"bytes"`
	StartNS     int64 `json:"start_ns"`
	EndNS       int64 `json:"end_ns"`
	WaitSrc     int32 `json:"wait_src"`
	WaitStep    int   `json:"wait_step"`
	BoundByWait bool  `json:"bound_by_wait"`
}

// FromStepRecord converts an internal step record.
func FromStepRecord(r collective.StepRecord) StepRecord {
	return StepRecord{
		Host:        int32(r.Host),
		Step:        r.Step,
		Flow:        FromFlow(r.Flow),
		Bytes:       r.Bytes,
		StartNS:     int64(r.Start),
		EndNS:       int64(r.End),
		WaitSrc:     int32(r.WaitSrc),
		WaitStep:    r.WaitStep,
		BoundByWait: r.BoundByWait,
	}
}

// Record converts back to the internal step record.
func (r StepRecord) Record() collective.StepRecord {
	return collective.StepRecord{
		Host:        topo.NodeID(r.Host),
		Step:        r.Step,
		Flow:        r.Flow.Key(),
		Bytes:       r.Bytes,
		Start:       simtime.Time(r.StartNS),
		End:         simtime.Time(r.EndNS),
		WaitSrc:     topo.NodeID(r.WaitSrc),
		WaitStep:    r.WaitStep,
		BoundByWait: r.BoundByWait,
	}
}

// FlowRecord is the JSON form of per-flow switch telemetry.
type FlowRecord struct {
	Switch int32       `json:"switch"`
	Port   int         `json:"port"`
	Flow   Flow        `json:"flow"`
	Pkts   int64       `json:"pkts"`
	Bytes  int64       `json:"bytes"`
	Wait   []FlowCount `json:"wait,omitempty"`
}

// PFCEvent is the JSON form of a pause/resume edge.
type PFCEvent struct {
	AtNS        int64 `json:"at_ns"`
	Pause       bool  `json:"pause"`
	Upstream    Port  `json:"upstream"`
	Downstream  int32 `json:"downstream"`
	IngressPort int   `json:"ingress"`
	CauseEgress int   `json:"cause"`
	Injected    bool  `json:"injected"`
}

// MeterEntry is one inter-port traffic meter reading.
type MeterEntry struct {
	From  Port  `json:"from"`
	Bytes int64 `json:"bytes"`
}

// PortRecord is the JSON form of per-port switch telemetry.
type PortRecord struct {
	Switch         int32        `json:"switch"`
	Port           int          `json:"port"`
	QueuedBytes    int64        `json:"queued_bytes"`
	QueuedPkts     int64        `json:"queued_pkts"`
	AvgQueuedBytes int64        `json:"avg_queued_bytes"`
	Paused         bool         `json:"paused"`
	PauseCount     int64        `json:"pause_count"`
	PausedForNS    int64        `json:"paused_for_ns"`
	MeterIn        []MeterEntry `json:"meter_in,omitempty"`
	PFCEvents      []PFCEvent   `json:"pfc_events,omitempty"`
}

// DropEntry is one switch's TTL-drop count.
type DropEntry struct {
	Switch int32 `json:"switch"`
	N      int64 `json:"n"`
}

// Report is the JSON form of one telemetry report.
type Report struct {
	AtNS        int64        `json:"at_ns"`
	TriggeredBy Flow         `json:"triggered_by"`
	Flows       []FlowRecord `json:"flows,omitempty"`
	Ports       []PortRecord `json:"ports,omitempty"`
	TTLDrops    []DropEntry  `json:"ttl_drops,omitempty"`
	HopsPolled  int          `json:"hops_polled"`
	PortsMissed int          `json:"ports_missed,omitempty"`
}

// FromReport converts an internal telemetry report.
func FromReport(r *telemetry.Report) Report {
	out := Report{
		AtNS:        int64(r.At),
		TriggeredBy: FromFlow(r.TriggeredBy),
		HopsPolled:  r.HopsPolled,
		PortsMissed: r.PortsMissed,
	}
	for _, fr := range r.Flows {
		w := FlowRecord{
			Switch: int32(fr.Switch),
			Port:   fr.Port,
			Flow:   FromFlow(fr.Flow),
			Pkts:   fr.Pkts,
			Bytes:  fr.Bytes,
		}
		for fk, n := range fr.Wait {
			w.Wait = append(w.Wait, FlowCount{Flow: FromFlow(fk), N: n})
		}
		sortFlowCounts(w.Wait)
		out.Flows = append(out.Flows, w)
	}
	for _, pr := range r.Ports {
		p := PortRecord{
			Switch:         int32(pr.Switch),
			Port:           pr.Port,
			QueuedBytes:    pr.QueuedBytes,
			QueuedPkts:     pr.QueuedPkts,
			AvgQueuedBytes: pr.AvgQueuedBytes,
			Paused:         pr.Paused,
			PauseCount:     pr.PauseCount,
			PausedForNS:    int64(pr.PausedFor),
		}
		for up, b := range pr.MeterIn {
			p.MeterIn = append(p.MeterIn, MeterEntry{From: FromPort(up), Bytes: b})
		}
		sortMeters(p.MeterIn)
		for _, ev := range pr.PFCEvents {
			p.PFCEvents = append(p.PFCEvents, PFCEvent{
				AtNS:        int64(ev.At),
				Pause:       ev.Pause,
				Upstream:    FromPort(ev.Upstream),
				Downstream:  int32(ev.Downstream),
				IngressPort: ev.IngressPort,
				CauseEgress: ev.CauseEgress,
				Injected:    ev.Injected,
			})
		}
		out.Ports = append(out.Ports, p)
	}
	for sw, n := range r.TTLDrops {
		out.TTLDrops = append(out.TTLDrops, DropEntry{Switch: int32(sw), N: n})
	}
	sortDrops(out.TTLDrops)
	return out
}

// Telemetry converts back to the internal report.
func (r Report) Telemetry() *telemetry.Report {
	out := &telemetry.Report{
		At:          simtime.Time(r.AtNS),
		TriggeredBy: r.TriggeredBy.Key(),
		HopsPolled:  r.HopsPolled,
		PortsMissed: r.PortsMissed,
	}
	for _, fr := range r.Flows {
		w := telemetry.FlowRecord{
			Switch: topo.NodeID(fr.Switch),
			Port:   fr.Port,
			Flow:   fr.Flow.Key(),
			Pkts:   fr.Pkts,
			Bytes:  fr.Bytes,
		}
		if len(fr.Wait) > 0 {
			w.Wait = make(map[fabric.FlowKey]int64, len(fr.Wait))
			for _, fc := range fr.Wait {
				w.Wait[fc.Flow.Key()] = fc.N
			}
		}
		out.Flows = append(out.Flows, w)
	}
	for _, pr := range r.Ports {
		p := telemetry.PortRecord{
			Switch:         topo.NodeID(pr.Switch),
			Port:           pr.Port,
			QueuedBytes:    pr.QueuedBytes,
			QueuedPkts:     pr.QueuedPkts,
			AvgQueuedBytes: pr.AvgQueuedBytes,
			Paused:         pr.Paused,
			PauseCount:     pr.PauseCount,
			PausedFor:      simtime.Duration(pr.PausedForNS),
		}
		if len(pr.MeterIn) > 0 {
			p.MeterIn = make(map[topo.PortID]int64, len(pr.MeterIn))
			for _, me := range pr.MeterIn {
				p.MeterIn[me.From.ID()] = me.Bytes
			}
		}
		for _, ev := range pr.PFCEvents {
			p.PFCEvents = append(p.PFCEvents, fabric.PFCEvent{
				At:          simtime.Time(ev.AtNS),
				Pause:       ev.Pause,
				Upstream:    ev.Upstream.ID(),
				Downstream:  topo.NodeID(ev.Downstream),
				IngressPort: ev.IngressPort,
				CauseEgress: ev.CauseEgress,
				Injected:    ev.Injected,
			})
		}
		out.Ports = append(out.Ports, p)
	}
	if len(r.TTLDrops) > 0 {
		out.TTLDrops = make(map[topo.NodeID]int64, len(r.TTLDrops))
		for _, d := range r.TTLDrops {
			out.TTLDrops[topo.NodeID(d.Switch)] = d.N
		}
	}
	return out
}

// Finding is the JSON form of one diagnosed anomaly.
type Finding struct {
	Type     string `json:"type"`
	Port     Port   `json:"port"`
	RootPort Port   `json:"root_port,omitempty"`
	Chain    []Port `json:"chain,omitempty"`
	Culprits []Flow `json:"culprits,omitempty"`
	Affected []Flow `json:"affected,omitempty"`
	Injected bool   `json:"injected,omitempty"`
	// Confidence is the telemetry coverage behind this match, serialized
	// only when degraded (< 1) so healthy output is unchanged.
	Confidence float64 `json:"confidence,omitempty"`
}

// Rating is the JSON form of an Eq. 3 contributor score.
type Rating struct {
	Flow       Flow    `json:"flow"`
	Score      float64 `json:"score"`
	Confidence float64 `json:"confidence,omitempty"`
}

// Step names one critical-path step.
type Step struct {
	Host int32 `json:"host"`
	Step int   `json:"step"`
}

// Coverage is the JSON form of the observation-completeness accounting
// behind a degraded diagnosis.
type Coverage struct {
	PortsPolled     int `json:"ports_polled"`
	PortsMissed     int `json:"ports_missed"`
	ReportsSeen     int `json:"reports_seen"`
	PollsLost       int `json:"polls_lost"`
	RecordsSeen     int `json:"records_seen"`
	RecordsExpected int `json:"records_expected"`
}

// Diagnosis is the JSON form of the analyzer's structured result.
type Diagnosis struct {
	Findings     []Finding `json:"findings"`
	CriticalPath []Step    `json:"critical_path"`
	Ratings      []Rating  `json:"ratings"`
	// Confidence and Coverage appear only when the diagnosis was built
	// from partial observation (confidence < 1); a healthy diagnosis
	// serializes exactly as before they existed.
	Confidence float64   `json:"confidence,omitempty"`
	Coverage   *Coverage `json:"coverage,omitempty"`
}

// FromDiagnosis converts an internal diagnosis for export.
func FromDiagnosis(d *diagnose.Diagnosis) Diagnosis {
	var out Diagnosis
	for _, f := range d.Findings {
		nf := Finding{
			Type:     f.Type.String(),
			Port:     FromPort(f.Port),
			RootPort: FromPort(f.RootPort),
			Injected: f.Injected,
		}
		if f.Confidence < 1 {
			nf.Confidence = f.Confidence
		}
		for _, p := range f.Chain {
			nf.Chain = append(nf.Chain, FromPort(p))
		}
		for _, c := range f.Culprits {
			nf.Culprits = append(nf.Culprits, FromFlow(c))
		}
		for _, a := range f.Affected {
			nf.Affected = append(nf.Affected, FromFlow(a))
		}
		out.Findings = append(out.Findings, nf)
	}
	for _, ref := range d.CriticalPath {
		out.CriticalPath = append(out.CriticalPath, Step{Host: int32(ref.Host), Step: ref.Step})
	}
	for _, r := range d.Ratings {
		nr := Rating{Flow: FromFlow(r.Flow), Score: r.Score}
		if r.Confidence < 1 {
			nr.Confidence = r.Confidence
		}
		out.Ratings = append(out.Ratings, nr)
	}
	if d.Confidence < 1 {
		out.Confidence = d.Confidence
		c := d.Coverage
		out.Coverage = &Coverage{
			PortsPolled:     c.PortsPolled,
			PortsMissed:     c.PortsMissed,
			ReportsSeen:     c.ReportsSeen,
			PollsLost:       c.PollsLost,
			RecordsSeen:     c.RecordsSeen,
			RecordsExpected: c.RecordsExpected,
		}
	}
	return out
}

func sortFlowCounts(s []FlowCount) {
	sortSlice(s, func(a, b FlowCount) bool { return flowLess(a.Flow, b.Flow) })
}

func sortMeters(s []MeterEntry) {
	sortSlice(s, func(a, b MeterEntry) bool {
		if a.From.Node != b.From.Node {
			return a.From.Node < b.From.Node
		}
		return a.From.Port < b.From.Port
	})
}

func sortDrops(s []DropEntry) {
	sortSlice(s, func(a, b DropEntry) bool { return a.Switch < b.Switch })
}

func flowLess(a, b Flow) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// sortSlice is a tiny insertion sort to keep DTO output deterministic
// without importing sort for each element type.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
