// Package waitgraph builds the waiting graph of §III-B: a directed graph
// whose vertices are the start and end of every step of every flow in a
// collective, and whose edges express waiting relations — a step's start
// waits on the end of the same flow's previous step (the "orange" edges),
// on the end of the step it has a data dependency on (the "blue" edges),
// and a step's end waits on its own start through an execution edge (the
// "dark" edges) weighted with the step's execution time. The critical path
// through this graph is the collective's performance bottleneck (§III-D1).
package waitgraph

import (
	"fmt"
	"sort"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// VertexKind distinguishes the start and end events of a step.
type VertexKind uint8

// Vertex kinds.
const (
	Start VertexKind = iota
	End
)

// Vertex is the start or end of step Step of the flow originating at Host —
// the paper's F_i S_j notation.
type Vertex struct {
	Host topo.NodeID
	Step int
	Kind VertexKind
}

func (v Vertex) String() string {
	k := "start"
	if v.Kind == End {
		k = "end"
	}
	return fmt.Sprintf("F%dS%d.%s", v.Host, v.Step, k)
}

// EdgeKind labels the three waiting-relation types of §III-B.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeExec connects a step's end to its start; its weight is the
	// step's execution time (the dark edges).
	EdgeExec EdgeKind = iota
	// EdgePrev connects a step's start to the previous step's end of the
	// same flow; weight 0 (the orange edges).
	EdgePrev
	// EdgeData connects a step's start to the end of the step it has a
	// data dependency on; weight 0 (the blue edges).
	EdgeData
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeExec:
		return "exec"
	case EdgePrev:
		return "prev"
	case EdgeData:
		return "data"
	default:
		return fmt.Sprintf("edge(%d)", uint8(k))
	}
}

// Edge is a directed waiting relation from the waiter to the waited-for.
type Edge struct {
	From, To Vertex
	Kind     EdgeKind
	Weight   simtime.Duration
	// Binding marks the gate that actually delayed the waiter (§III-C1:
	// waiting "occurs selectively" — only the later of the two gates
	// binds).
	Binding bool
}

// StepRef identifies one step on the critical path.
type StepRef struct {
	Host topo.NodeID
	Step int
}

// Graph is a built waiting graph.
type Graph struct {
	records map[StepRef]collective.StepRecord
	out     map[Vertex][]Edge
	in      map[Vertex]int
	verts   map[Vertex]bool
}

// Build constructs the waiting graph from completion-ordered step records,
// exactly as the analyzer does at runtime (§III-D1). Records may arrive in
// any order; they are sorted by completion time first.
func Build(records []collective.StepRecord) *Graph {
	recs := make([]collective.StepRecord, len(records))
	copy(recs, records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].End < recs[j].End })

	g := &Graph{
		records: make(map[StepRef]collective.StepRecord, len(recs)),
		out:     make(map[Vertex][]Edge),
		in:      make(map[Vertex]int),
		verts:   make(map[Vertex]bool),
	}
	for _, rec := range recs {
		g.records[StepRef{rec.Host, rec.Step}] = rec
	}
	for _, rec := range recs {
		s := Vertex{rec.Host, rec.Step, Start}
		e := Vertex{rec.Host, rec.Step, End}
		g.addEdge(Edge{From: e, To: s, Kind: EdgeExec, Weight: rec.End.Sub(rec.Start), Binding: true})
		if rec.Step > 0 {
			prev := Vertex{rec.Host, rec.Step - 1, End}
			if g.verts[prev] || g.known(rec.Host, rec.Step-1) {
				g.addEdge(Edge{From: s, To: prev, Kind: EdgePrev, Binding: !rec.BoundByWait})
			}
		}
		if rec.WaitSrc != topo.None {
			dep := Vertex{rec.WaitSrc, rec.WaitStep, End}
			if g.known(rec.WaitSrc, rec.WaitStep) {
				g.addEdge(Edge{From: s, To: dep, Kind: EdgeData, Binding: rec.BoundByWait})
			}
		}
	}
	return g
}

func (g *Graph) known(host topo.NodeID, step int) bool {
	_, ok := g.records[StepRef{host, step}]
	return ok
}

func (g *Graph) addEdge(e Edge) {
	g.verts[e.From] = true
	g.verts[e.To] = true
	g.out[e.From] = append(g.out[e.From], e)
	g.in[e.To]++
}

func vertexLess(a, b Vertex) bool {
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	return a.Kind < b.Kind
}

// Vertices returns all vertices in deterministic (host, step, kind) order.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, 0, len(g.verts))
	for v := range g.verts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return vertexLess(out[i], out[j]) })
	return out
}

// Edges returns all edges in deterministic (from, to, kind) order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, v := range g.Vertices() {
		out = append(out, g.out[v]...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return vertexLess(out[i].From, out[j].From)
		}
		if out[i].To != out[j].To {
			return vertexLess(out[i].To, out[j].To)
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Record returns the step record behind a vertex pair.
func (g *Graph) Record(ref StepRef) (collective.StepRecord, bool) {
	rec, ok := g.records[ref]
	return rec, ok
}

// Source returns the graph's source: the end vertex of the globally
// latest-finishing step (the collective's completion).
func (g *Graph) Source() (Vertex, bool) {
	var best collective.StepRecord
	found := false
	for _, rec := range g.records {
		if !found || rec.End > best.End ||
			(rec.End == best.End && (rec.Host < best.Host || (rec.Host == best.Host && rec.Step < best.Step))) {
			best, found = rec, true
		}
	}
	if !found {
		return Vertex{}, false
	}
	return Vertex{best.Host, best.Step, End}, true
}

// Prune recursively removes vertices with in-degree zero — vertices no one
// waits for — keeping the graph's source, as the analyzer does before
// presenting the graph (§III-D1, Fig 14a). It returns the number of
// vertices removed.
func (g *Graph) Prune() int {
	src, ok := g.Source()
	if !ok {
		return 0
	}
	removed := 0
	for {
		var dead []Vertex
		for v := range g.verts {
			if v == src {
				continue
			}
			if g.in[v] == 0 {
				dead = append(dead, v)
			}
		}
		sort.Slice(dead, func(i, j int) bool { return vertexLess(dead[i], dead[j]) })
		if len(dead) == 0 {
			return removed
		}
		for _, v := range dead {
			for _, e := range g.out[v] {
				g.in[e.To]--
			}
			delete(g.out, v)
			delete(g.verts, v)
			delete(g.in, v)
			removed++
		}
	}
}

// CriticalPath walks the binding gates backward from the collective's
// completion to a dependency-free step start, returning the steps on the
// path in execution order plus the total elapsed time they explain. These
// steps are the collective's performance bottleneck; the flows they belong
// to are the "critical flows" whose provenance the analyzer inspects.
func (g *Graph) CriticalPath() ([]StepRef, simtime.Duration) {
	src, ok := g.Source()
	if !ok {
		return nil, 0
	}
	var path []StepRef
	cur := StepRef{src.Host, src.Step}
	seen := map[StepRef]bool{}
	for {
		if seen[cur] {
			break // defensive: malformed records
		}
		seen[cur] = true
		path = append(path, cur)
		rec := g.records[cur]
		if cur.Step == 0 {
			break
		}
		if rec.BoundByWait {
			next := StepRef{rec.WaitSrc, rec.WaitStep}
			if _, ok := g.records[next]; !ok {
				break
			}
			cur = next
		} else {
			cur = StepRef{cur.Host, cur.Step - 1}
		}
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	first := g.records[path[0]]
	last := g.records[path[len(path)-1]]
	return path, last.End.Sub(first.Start)
}

// TotalTime returns the collective's span: latest end minus earliest start.
func (g *Graph) TotalTime() simtime.Duration {
	var minStart, maxEnd simtime.Time
	first := true
	for _, rec := range g.records {
		if first || rec.Start < minStart {
			minStart = rec.Start
		}
		if first || rec.End > maxEnd {
			maxEnd = rec.End
		}
		first = false
	}
	return maxEnd.Sub(minStart)
}

// StepCount returns the number of step records in the graph.
func (g *Graph) StepCount() int { return len(g.records) }

// SlowestSteps returns the n steps with the largest execution time, most
// severe first — a quick triage view the analyzer surfaces alongside the
// critical path.
func (g *Graph) SlowestSteps(n int) []StepRef {
	refs := make([]StepRef, 0, len(g.records))
	for ref := range g.records {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		di := g.records[refs[i]].End.Sub(g.records[refs[i]].Start)
		dj := g.records[refs[j]].End.Sub(g.records[refs[j]].Start)
		if di != dj {
			return di > dj
		}
		if refs[i].Host != refs[j].Host {
			return refs[i].Host < refs[j].Host
		}
		return refs[i].Step < refs[j].Step
	})
	if n > len(refs) {
		n = len(refs)
	}
	return refs[:n]
}
