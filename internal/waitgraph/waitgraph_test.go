package waitgraph

import (
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// mkrec builds a step record with µs timestamps.
func mkrec(host topo.NodeID, step int, startUS, endUS int64, waitSrc topo.NodeID, bound bool) collective.StepRecord {
	ws := step - 1
	if ws < 0 {
		ws = 0
	}
	return collective.StepRecord{
		Host:        host,
		Step:        step,
		Start:       simtime.Time(startUS * int64(time.Microsecond)),
		End:         simtime.Time(endUS * int64(time.Microsecond)),
		WaitSrc:     waitSrc,
		WaitStep:    ws,
		BoundByWait: bound,
	}
}

// ring4 builds a synthetic 4-host, 2-step ring where host 2's step 0 is slow
// (0→50µs instead of 0→10µs), making its right neighbour (host 3) wait.
func ring4() []collective.StepRecord {
	left := func(i topo.NodeID) topo.NodeID { return (i + 3) % 4 }
	var recs []collective.StepRecord
	// Step 0: all start at 0. Host 2 is slow.
	for i := topo.NodeID(0); i < 4; i++ {
		end := int64(10)
		if i == 2 {
			end = 50
		}
		recs = append(recs, mkrec(i, 0, 0, end, topo.None, false))
	}
	// Step 1: host 3 is bound by host 2's late data; others follow their
	// own step 0.
	for i := topo.NodeID(0); i < 4; i++ {
		start, end := int64(10), int64(20)
		bound := false
		if i == 3 {
			start, end, bound = 50, 60, true
		}
		recs = append(recs, mkrec(i, 1, start, end, left(i), bound))
	}
	return recs
}

func TestBuildShape(t *testing.T) {
	g := Build(ring4())
	if g.StepCount() != 8 {
		t.Fatalf("records = %d, want 8", g.StepCount())
	}
	// 8 steps → 16 vertices; 8 exec edges + 4 prev + 4 data = 16 edges.
	if got := len(g.Vertices()); got != 16 {
		t.Fatalf("vertices = %d, want 16", got)
	}
	execN, prevN, dataN := 0, 0, 0
	for _, e := range g.Edges() {
		switch e.Kind {
		case EdgeExec:
			execN++
			if e.From.Kind != End || e.To.Kind != Start {
				t.Fatalf("exec edge direction wrong: %v -> %v", e.From, e.To)
			}
		case EdgePrev:
			prevN++
		case EdgeData:
			dataN++
		}
	}
	if execN != 8 || prevN != 4 || dataN != 4 {
		t.Fatalf("edges exec/prev/data = %d/%d/%d, want 8/4/4", execN, prevN, dataN)
	}
}

func TestExecWeights(t *testing.T) {
	g := Build(ring4())
	for _, e := range g.Edges() {
		if e.Kind != EdgeExec {
			if e.Weight != 0 {
				t.Fatalf("non-exec edge has weight %v", e.Weight)
			}
			continue
		}
		rec, _ := g.Record(StepRef{e.From.Host, e.From.Step})
		if e.Weight != rec.End.Sub(rec.Start) {
			t.Fatalf("exec weight %v != duration %v", e.Weight, rec.End.Sub(rec.Start))
		}
	}
}

func TestSource(t *testing.T) {
	g := Build(ring4())
	src, ok := g.Source()
	if !ok {
		t.Fatal("no source")
	}
	if src.Host != 3 || src.Step != 1 || src.Kind != End {
		t.Fatalf("source = %v, want F3S1.end", src)
	}
}

func TestCriticalPath(t *testing.T) {
	g := Build(ring4())
	path, span := g.CriticalPath()
	// Host 3's step 1 was bound by host 2's slow step 0.
	want := []StepRef{{2, 0}, {3, 1}}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if span != 60*time.Microsecond {
		t.Fatalf("span = %v, want 60µs", span)
	}
}

func TestCriticalPathWithoutAnomaly(t *testing.T) {
	// Homogeneous ring: nothing bound by waits; the path is one flow's
	// own chain of steps.
	var recs []collective.StepRecord
	for i := topo.NodeID(0); i < 4; i++ {
		recs = append(recs, mkrec(i, 0, 0, 10, topo.None, false))
		recs = append(recs, mkrec(i, 1, 10, 20, (i+3)%4, false))
	}
	g := Build(recs)
	path, span := g.CriticalPath()
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
	if path[0].Host != path[1].Host {
		t.Fatalf("unbound path should stay on one flow: %v", path)
	}
	if span != 20*time.Microsecond {
		t.Fatalf("span = %v, want 20µs", span)
	}
}

func TestPrune(t *testing.T) {
	g := Build(ring4())
	before := len(g.Vertices())
	removed := g.Prune()
	if removed == 0 {
		t.Fatalf("expected pruning to remove unwaited vertices")
	}
	after := len(g.Vertices())
	if after+removed != before {
		t.Fatalf("vertex accounting: %d + %d != %d", after, removed, before)
	}
	// The source must survive.
	if src, ok := g.Source(); !ok {
		t.Fatal("source vanished")
	} else if !contains(g.Vertices(), src) {
		t.Fatalf("source %v pruned", src)
	}
	// Critical-path steps' vertices must survive: they are waited on.
	path, _ := g.CriticalPath()
	for _, ref := range path {
		if !contains(g.Vertices(), Vertex{ref.Host, ref.Step, End}) {
			t.Fatalf("critical vertex F%dS%d.end pruned", ref.Host, ref.Step)
		}
	}
	// Pruning twice removes nothing more... pruning is idempotent.
	if again := g.Prune(); again != 0 {
		t.Fatalf("second prune removed %d", again)
	}
}

func contains(vs []Vertex, v Vertex) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

func TestTotalTime(t *testing.T) {
	g := Build(ring4())
	if got := g.TotalTime(); got != 60*time.Microsecond {
		t.Fatalf("TotalTime = %v, want 60µs", got)
	}
}

func TestSlowestSteps(t *testing.T) {
	g := Build(ring4())
	top := g.SlowestSteps(1)
	if len(top) != 1 || top[0] != (StepRef{2, 0}) {
		t.Fatalf("slowest = %v, want [{2 0}]", top)
	}
	all := g.SlowestSteps(100)
	if len(all) != 8 {
		t.Fatalf("SlowestSteps(100) = %d entries, want 8", len(all))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build(nil)
	if _, ok := g.Source(); ok {
		t.Fatal("empty graph has a source")
	}
	if path, span := g.CriticalPath(); path != nil || span != 0 {
		t.Fatalf("empty critical path = %v/%v", path, span)
	}
	if g.Prune() != 0 {
		t.Fatal("pruned something from empty graph")
	}
}

func TestUnorderedRecords(t *testing.T) {
	recs := ring4()
	// Shuffle deterministically: reverse.
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	g := Build(recs)
	path, _ := g.CriticalPath()
	if len(path) != 2 || path[0] != (StepRef{2, 0}) {
		t.Fatalf("order-sensitivity: path = %v", path)
	}
}
