package collective

import (
	"fmt"
	"sort"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// StepRecord is the timing of one executed step, the raw material of the
// waiting graph (§III-C1: "Upon completion of each flow step, the host
// reports its 5-tuple, data volume transferred, start time, end time, and
// the source host of the flow it is waiting for").
type StepRecord struct {
	Host     topo.NodeID
	Step     int
	Flow     fabric.FlowKey
	Bytes    int64
	Start    simtime.Time
	End      simtime.Time
	WaitSrc  topo.NodeID
	WaitStep int
	// BoundByWait reports whether the step's start was gated by the data
	// dependency (true) or by the previous send step (false) — i.e. which
	// incoming waiting-graph edge was binding.
	BoundByWait bool
}

type flowRef struct {
	host topo.NodeID
	step int
}

type hostState struct {
	sch *Schedule
	// next step to start; steps [0,next) have started.
	next int
	// sendDone[s] true once step s's message is fully acked.
	sendDone []bool
	// recvDone[s] true once the data dependency of step s is satisfied.
	recvDone []bool
	// recvAt / prevEndAt record when each gate opened, to decide which
	// edge was binding.
	recvAt    []simtime.Time
	prevEndAt []simtime.Time
	started   []simtime.Time
	ended     []simtime.Time
	chunks    map[string]bool
}

// Runner executes a set of decomposed schedules over RDMA hosts.
type Runner struct {
	K     *sim.Kernel
	hosts map[topo.NodeID]*rdma.Host

	state     map[topo.NodeID]*hostState
	flowIndex map[fabric.FlowKey]flowRef

	records  []StepRecord
	pending  int
	doneAt   simtime.Time
	finished bool
	err      error

	// OnStepStart fires when a host begins a step (its flow enters the
	// network).
	OnStepStart func(host topo.NodeID, step int, flow fabric.FlowKey, at simtime.Time)
	// OnStepEnd fires at sender-side completion of a step.
	OnStepEnd func(rec StepRecord)
	// OnComplete fires once every step of every schedule has completed.
	OnComplete func(at simtime.Time)
}

// NewRunner prepares (but does not start) a collective execution. It fails
// if a schedule names a host the cluster does not have.
func NewRunner(k *sim.Kernel, hosts map[topo.NodeID]*rdma.Host, schedules []*Schedule) (*Runner, error) {
	r := &Runner{
		K:         k,
		hosts:     hosts,
		state:     make(map[topo.NodeID]*hostState),
		flowIndex: make(map[fabric.FlowKey]flowRef),
	}
	for _, sch := range schedules {
		if _, ok := hosts[sch.Host]; !ok {
			return nil, fmt.Errorf("collective: no rdma host for node %d", sch.Host)
		}
		ns := len(sch.Steps)
		st := &hostState{
			sch:       sch,
			sendDone:  make([]bool, ns),
			recvDone:  make([]bool, ns),
			recvAt:    make([]simtime.Time, ns),
			prevEndAt: make([]simtime.Time, ns),
			started:   make([]simtime.Time, ns),
			ended:     make([]simtime.Time, ns),
			chunks:    map[string]bool{fmt.Sprintf("C%d", sch.Rank): true},
		}
		r.state[sch.Host] = st
		r.pending += ns
		for s := range sch.Steps {
			r.flowIndex[sch.FlowKey(s)] = flowRef{host: sch.Host, step: s}
		}
	}
	return r, nil
}

// Bind wires this runner directly into its hosts' completion hooks. Use it
// when the runner is the only flow producer; scenarios with background
// traffic should instead route HandleSendComplete/HandleRecvComplete from
// their own dispatchers.
func (r *Runner) Bind() {
	for id, h := range r.hosts {
		_ = id
		h.OnSendComplete = func(f fabric.FlowKey, b int64) { r.HandleSendComplete(f) }
		h.OnRecvComplete = func(f fabric.FlowKey, b int64) { r.HandleRecvComplete(f) }
	}
}

// Start launches step 0 of every schedule. Hosts are started in ascending
// ID order: same-timestamp simulation events run FIFO, so launch order is
// observable in packet interleavings — iterating the state map here would
// make otherwise-identical runs diverge.
func (r *Runner) Start() {
	ids := make([]topo.NodeID, 0, len(r.state))
	for host := range r.state {
		ids = append(ids, host)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, host := range ids {
		r.tryStart(host)
	}
}

// Err returns the first step-launch failure, if any. A non-nil Err means
// the collective cannot complete.
func (r *Runner) Err() error { return r.err }

// Owns reports whether the flow belongs to this collective.
func (r *Runner) Owns(flow fabric.FlowKey) bool {
	_, ok := r.flowIndex[flow]
	return ok
}

// StepOf resolves a flow to its (host, step), with ok=false for foreign
// flows.
func (r *Runner) StepOf(flow fabric.FlowKey) (host topo.NodeID, step int, ok bool) {
	ref, ok := r.flowIndex[flow]
	return ref.host, ref.step, ok
}

// Schedule returns the schedule for a participating host (nil otherwise).
func (r *Runner) Schedule(host topo.NodeID) *Schedule {
	if st := r.state[host]; st != nil {
		return st.sch
	}
	return nil
}

// SendIndex returns how many send steps host has completed — the monitor's
// "Send Steps" counter of Table I.
func (r *Runner) SendIndex(host topo.NodeID) int {
	st := r.state[host]
	n := 0
	for _, d := range st.sendDone {
		if !d {
			break
		}
		n++
	}
	return n
}

// RecvIndex returns how many receive-queue entries have been satisfied —
// the monitor's "Recv Steps" counter of Table I. Steps without a data
// dependency count as satisfied from the start.
func (r *Runner) RecvIndex(host topo.NodeID) int {
	st := r.state[host]
	n := 0
	for s := range st.recvDone {
		if st.sch.Steps[s].WaitSrc == topo.None || st.recvDone[s] {
			n++
			continue
		}
		break
	}
	return n
}

// HandleSendComplete processes a sender-side message completion. It returns
// false if the flow is not part of this collective.
func (r *Runner) HandleSendComplete(flow fabric.FlowKey) bool {
	ref, ok := r.flowIndex[flow]
	if !ok {
		return false
	}
	now := r.K.Now()
	st := r.state[ref.host]
	st.sendDone[ref.step] = true
	st.ended[ref.step] = now
	if ref.step+1 < len(st.sch.Steps) {
		st.prevEndAt[ref.step+1] = now
	}

	step := st.sch.Steps[ref.step]
	rec := StepRecord{
		Host:     ref.host,
		Step:     ref.step,
		Flow:     flow,
		Bytes:    step.Bytes,
		Start:    st.started[ref.step],
		End:      now,
		WaitSrc:  step.WaitSrc,
		WaitStep: step.WaitStep,
	}
	if step.WaitSrc != topo.None && st.recvAt[ref.step] >= st.prevEndAt[ref.step] {
		rec.BoundByWait = true
	}
	r.records = append(r.records, rec)
	if r.OnStepEnd != nil {
		r.OnStepEnd(rec)
	}

	r.pending--
	if r.pending == 0 && !r.finished {
		r.finished = true
		r.doneAt = now
		if r.OnComplete != nil {
			r.OnComplete(now)
		}
	}
	r.tryStart(ref.host)
	return true
}

// HandleRecvComplete processes a receiver-side message completion: it
// satisfies the data dependency of the receiver's next step. It returns
// false if the flow is not part of this collective.
func (r *Runner) HandleRecvComplete(flow fabric.FlowKey) bool {
	ref, ok := r.flowIndex[flow]
	if !ok {
		return false
	}
	srcState := r.state[ref.host]
	step := srcState.sch.Steps[ref.step]
	dst := step.Dst
	dstState := r.state[dst]
	if dstState == nil {
		return true // delivered to a non-participant (should not happen)
	}
	// The arriving chunk joins the receiver's ledger (symbolic data model;
	// lets tests assert collective semantics).
	dstState.chunks[step.Chunk] = true

	// This reception satisfies whichever of the receiver's steps waits on
	// exactly this (host, step) flow. Lockstep algorithms wait on step
	// index-1 of a neighbour; tree algorithms can wait on any index.
	for next := range dstState.sch.Steps {
		w := dstState.sch.Steps[next]
		if w.WaitSrc == ref.host && w.WaitStep == ref.step && !dstState.recvDone[next] {
			dstState.recvDone[next] = true
			dstState.recvAt[next] = r.K.Now()
			r.tryStart(dst)
			break
		}
	}
	return true
}

// tryStart launches the host's next step if both of its gates are open.
func (r *Runner) tryStart(host topo.NodeID) {
	st := r.state[host]
	for st.next < len(st.sch.Steps) {
		s := st.next
		if s > 0 && !st.sendDone[s-1] {
			return
		}
		step := st.sch.Steps[s]
		if step.WaitSrc != topo.None && !st.recvDone[s] {
			return
		}
		st.next++
		now := r.K.Now()
		st.started[s] = now
		flow := st.sch.FlowKey(s)
		if r.OnStepStart != nil {
			r.OnStepStart(host, s, flow, now)
		}
		if err := r.hosts[host].Send(flow, step.Bytes); err != nil {
			if r.err == nil {
				r.err = fmt.Errorf("collective: starting F%dS%d: %w", host, s, err)
			}
			return
		}
	}
}

// Records returns the completed step records in completion order.
func (r *Runner) Records() []StepRecord { return r.records }

// Done reports whether every step completed, and when.
func (r *Runner) Done() (bool, simtime.Time) { return r.finished, r.doneAt }

// Chunks returns the symbolic chunk ledger of a host (test hook for
// collective semantics).
func (r *Runner) Chunks(host topo.NodeID) map[string]bool { return r.state[host].chunks }
