package collective

import (
	"fmt"
	"testing"
	"testing/quick"

	"vedrfolnir/internal/topo"
)

func mkRanks(n int) []topo.NodeID {
	out := make([]topo.NodeID, n)
	for i := range out {
		out[i] = topo.NodeID(i)
	}
	return out
}

func TestBroadcastShape(t *testing.T) {
	schs, err := Decompose(Spec{Op: Broadcast, Ranks: mkRanks(8), Bytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: 0→1; round 1: 0→2, 1→3; round 2: 0→4, 1→5, 2→6, 3→7.
	// Ranks 4–7 receive in the last round and never forward.
	counts := map[int]int{}
	for _, sch := range schs {
		counts[sch.Rank] = len(sch.Steps)
	}
	want := map[int]int{0: 3, 1: 2, 2: 1, 3: 1, 4: 0, 5: 0, 6: 0, 7: 0}
	for r, n := range want {
		if counts[r] != n {
			t.Fatalf("rank %d: %d sends, want %d (counts=%v)", r, counts[r], n, counts)
		}
	}
	// Rank 3's first (only) send waits on rank 1's step that targeted it.
	sch3 := schs[3]
	if sch3.Steps[0].WaitSrc != 1 {
		t.Fatalf("rank 3 waits on %d, want 1", sch3.Steps[0].WaitSrc)
	}
	// Rank 1's step that targets rank 3 is its local step 0 (round 1).
	if sch3.Steps[0].WaitStep != 0 {
		t.Fatalf("rank 3 waits on step %d of rank 1, want 0", sch3.Steps[0].WaitStep)
	}
	if schs[1].Steps[0].Dst != 3 {
		t.Fatalf("rank 1 step 0 targets %d, want 3", schs[1].Steps[0].Dst)
	}
}

// Property: for any N in [2,64], the broadcast tree is consistent — every
// wait references a real (host, step) whose destination is the waiter, and
// simulating round-by-round delivery reaches every rank exactly once.
func TestBroadcastConsistency(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%63 + 2
		schs, err := Decompose(Spec{Op: Broadcast, Ranks: mkRanks(n), Bytes: 64})
		if err != nil {
			return false
		}
		byHost := map[topo.NodeID]*Schedule{}
		for _, sch := range schs {
			byHost[sch.Host] = sch
		}
		for _, sch := range schs {
			for _, st := range sch.Steps {
				if st.WaitSrc == topo.None {
					continue
				}
				parent := byHost[st.WaitSrc]
				if parent == nil || st.WaitStep >= len(parent.Steps) {
					return false
				}
				if parent.Steps[st.WaitStep].Dst != sch.Host {
					return false
				}
			}
		}
		// Symbolic delivery: rank 0 has the data; repeatedly execute any
		// step whose gates are satisfied.
		has := map[topo.NodeID]bool{0: true}
		done := map[[2]int]bool{} // (rank, step)
		for changed := true; changed; {
			changed = false
			for _, sch := range schs {
				for si, st := range sch.Steps {
					key := [2]int{sch.Rank, si}
					if done[key] || !has[sch.Host] {
						continue
					}
					if si > 0 && !done[[2]int{sch.Rank, si - 1}] {
						continue
					}
					if st.WaitSrc != topo.None && !done[[2]int{int(st.WaitSrc), st.WaitStep}] {
						continue
					}
					done[key] = true
					has[st.Dst] = true
					changed = true
				}
			}
		}
		for r := 0; r < n; r++ {
			if !has[topo.NodeID(r)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastExecution(t *testing.T) {
	r := newRig(t, 8)
	run := runCollective(t, r, Spec{Op: Broadcast, Bytes: 64 * 1024})
	// Every host must end up holding the root's chunk.
	for _, h := range r.tp.Hosts() {
		if h == r.tp.Hosts()[0] {
			continue
		}
		if !run.Chunks(h)["C0"] {
			t.Fatalf("host %d never received the broadcast payload", h)
		}
	}
	// 8-rank binomial tree: 7 sends total.
	if got := len(run.Records()); got != 7 {
		t.Fatalf("records = %d, want 7", got)
	}
}

func TestAllToAllShape(t *testing.T) {
	schs, err := Decompose(Spec{Op: AllToAll, Ranks: mkRanks(4), Bytes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range schs {
		if len(sch.Steps) != 3 {
			t.Fatalf("rank %d: steps = %d, want 3", sch.Rank, len(sch.Steps))
		}
		seen := map[topo.NodeID]bool{}
		for _, st := range sch.Steps {
			if st.WaitSrc != topo.None {
				t.Fatalf("all-to-all has no data dependencies")
			}
			if st.Dst == sch.Host || seen[st.Dst] {
				t.Fatalf("rank %d targets %v", sch.Rank, st.Dst)
			}
			seen[st.Dst] = true
			if st.Bytes != 1000 {
				t.Fatalf("chunk = %d, want 1000", st.Bytes)
			}
		}
	}
}

func TestAllToAllExecution(t *testing.T) {
	r := newRig(t, 4)
	run := runCollective(t, r, Spec{Op: AllToAll, Bytes: 32 * 1024})
	// Every host must hold the chunk addressed to it from every peer.
	for di, dst := range r.tp.Hosts() {
		for si := range r.tp.Hosts() {
			if si == di {
				continue
			}
			label := fmt.Sprintf("A%d.%d", si, di)
			if !run.Chunks(dst)[label] {
				t.Fatalf("host %d missing %s: %v", dst, label, run.Chunks(dst))
			}
		}
	}
}
