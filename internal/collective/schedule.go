// Package collective implements the collective-communication layer: the
// Ring and Halving-and-Doubling algorithms for AllGather, ReduceScatter and
// AllReduce, decomposed into per-flow steps exactly as Vedrfolnir's
// algorithm decomposition prescribes (§III-B), plus the runner that executes
// the decomposed schedules over RDMA hosts while honouring the waiting
// relationships between flows.
package collective

import (
	"fmt"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/topo"
)

// Op is the collective operation.
type Op uint8

// Supported operations.
const (
	AllGather Op = iota
	ReduceScatter
	AllReduce
)

func (o Op) String() string {
	switch o {
	case AllGather:
		return "allgather"
	case ReduceScatter:
		return "reducescatter"
	case AllReduce:
		return "allreduce"
	case Broadcast:
		return "broadcast"
	case AllToAll:
		return "alltoall"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Algorithm selects the communication schedule.
type Algorithm uint8

// Supported algorithms (Fig 1 of the paper).
const (
	Ring Algorithm = iota
	HalvingDoubling
)

func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case HalvingDoubling:
		return "halving-doubling"
	default:
		return fmt.Sprintf("alg(%d)", uint8(a))
	}
}

// Step is one entry of a host's decomposed send plan. Dst is the SSQ entry
// (where this host sends during the step); WaitSrc/WaitStep form the
// matching RSQ entry — the specific flow step whose data must be received
// before this send may start (§III-C1). WaitSrc is topo.None when the step
// has no data dependency. For lockstep algorithms (Ring, HD) WaitStep is
// always Index-1; tree-shaped algorithms (Broadcast) wait on other indices.
type Step struct {
	Index    int
	Dst      topo.NodeID
	Bytes    int64
	Chunk    string
	WaitSrc  topo.NodeID
	WaitStep int
}

// Schedule is the complete decomposition for the flow originating at one
// host: its SSQ/RSQ in step order.
type Schedule struct {
	Host  topo.NodeID
	Rank  int
	N     int
	Base  uint16 // port base; distinguishes concurrent collectives
	Steps []Step
}

// FlowKey returns the 5-tuple used by step s of this schedule. Each step is
// a distinct flow on the wire (the chunk or the destination changes), which
// is precisely the paper's definition of a flow "going through a step".
func (s *Schedule) FlowKey(step int) fabric.FlowKey {
	st := s.Steps[step]
	return fabric.FlowKey{
		Src:     s.Host,
		Dst:     st.Dst,
		SrcPort: s.Base + uint16(step),
		DstPort: s.Base + uint16(step),
		Proto:   17,
	}
}

// Spec describes one collective to decompose.
type Spec struct {
	Op    Op
	Alg   Algorithm
	Ranks []topo.NodeID // hosts in rank order
	Bytes int64         // total data per rank (paper: 360 MB)
	Base  uint16        // port base (use distinct bases per collective)
}

// Decompose produces the per-host schedules for spec. This is the
// "pre-executed algorithmic decomposition" the monitor performs before the
// collective runs (§III-A); the steps are predefined, not inferred.
func Decompose(spec Spec) ([]*Schedule, error) {
	n := len(spec.Ranks)
	if n < 2 {
		return nil, fmt.Errorf("collective: need >= 2 ranks, got %d", n)
	}
	if spec.Bytes <= 0 {
		return nil, fmt.Errorf("collective: non-positive byte count %d", spec.Bytes)
	}
	base := spec.Base
	if base == 0 {
		base = 5000
	}
	// Tree-shaped and dependency-free operations select their own
	// schedule regardless of the Ring/HD choice.
	switch spec.Op {
	case Broadcast:
		return broadcastSchedules(spec.Ranks, spec.Bytes, base)
	case AllToAll:
		return allToAllSchedules(spec.Ranks, spec.Bytes, base)
	}
	switch spec.Alg {
	case Ring:
		return ringSchedules(spec.Op, spec.Ranks, spec.Bytes, base)
	case HalvingDoubling:
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("collective: halving-doubling needs power-of-2 ranks, got %d", n)
		}
		return hdSchedules(spec.Op, spec.Ranks, spec.Bytes, base)
	default:
		return nil, fmt.Errorf("collective: unknown algorithm %v", spec.Alg)
	}
}

// ringSchedules builds the Ring decomposition of Fig 1a / Fig 4: in every
// step rank i sends one chunk to rank i+1 and, from step 1 on, waits for
// the chunk arriving from rank i-1.
func ringSchedules(op Op, ranks []topo.NodeID, bytes int64, base uint16) ([]*Schedule, error) {
	n := len(ranks)
	chunk := bytes / int64(n)
	if chunk == 0 {
		chunk = 1
	}
	phases := 0
	switch op {
	case AllGather, ReduceScatter:
		phases = n - 1
	case AllReduce:
		phases = 2 * (n - 1) // reduce-scatter then all-gather
	default:
		return nil, fmt.Errorf("collective: unknown op %v", op)
	}
	var out []*Schedule
	for i, host := range ranks {
		sch := &Schedule{Host: host, Rank: i, N: n, Base: base}
		right := ranks[(i+1)%n]
		left := ranks[(i-1+n)%n]
		for s := 0; s < phases; s++ {
			// Chunk index moving out of rank i at step s. For the
			// reduce-scatter direction chunks walk backwards from i;
			// the all-gather direction continues the same rotation.
			ci := ((i-s)%n + n) % n
			label := fmt.Sprintf("C%d", ci)
			if op == AllReduce && s >= n-1 {
				ci = ((i-s+1)%n + n) % n
				label = fmt.Sprintf("R%d", ci) // reduced chunk
			} else if op == AllReduce {
				label = fmt.Sprintf("P%d", ci) // partial sum
			}
			st := Step{Index: s, Dst: right, Bytes: chunk, Chunk: label, WaitSrc: topo.None}
			if s > 0 {
				st.WaitSrc = left
				st.WaitStep = s - 1
			}
			sch.Steps = append(sch.Steps, st)
		}
		out = append(out, sch)
	}
	return out, nil
}

// hdSchedules builds the Halving-and-Doubling decomposition of Fig 1b. The
// flow's destination changes between steps — the other way a flow "goes
// through a step". AllGather/AllReduce use recursive doubling distances; the
// reduce-scatter phase halves message sizes, the all-gather phase doubles.
func hdSchedules(op Op, ranks []topo.NodeID, bytes int64, base uint16) ([]*Schedule, error) {
	n := len(ranks)
	log2 := 0
	for 1<<log2 < n {
		log2++
	}
	type phase struct {
		dist  int
		bytes int64
		label string
	}
	var phases []phase
	switch op {
	case ReduceScatter:
		// Recursive halving: distance n/2, n/4, ..., 1; size halves.
		sz := bytes / 2
		for d := n / 2; d >= 1; d /= 2 {
			phases = append(phases, phase{dist: d, bytes: sz, label: "H"})
			sz /= 2
		}
	case AllGather:
		// Recursive doubling: distance 1, 2, ..., n/2; size doubles.
		sz := bytes / int64(n)
		for d := 1; d < n; d *= 2 {
			phases = append(phases, phase{dist: d, bytes: sz, label: "D"})
			sz *= 2
		}
	case AllReduce:
		sz := bytes / 2
		for d := n / 2; d >= 1; d /= 2 {
			phases = append(phases, phase{dist: d, bytes: sz, label: "H"})
			sz /= 2
		}
		sz = bytes / int64(n)
		for d := 1; d < n; d *= 2 {
			phases = append(phases, phase{dist: d, bytes: sz, label: "D"})
			sz *= 2
		}
	default:
		return nil, fmt.Errorf("collective: unknown op %v", op)
	}
	var out []*Schedule
	for i, host := range ranks {
		sch := &Schedule{Host: host, Rank: i, N: n, Base: base}
		prevPartner := topo.None
		for s, ph := range phases {
			partner := ranks[i^ph.dist]
			if ph.bytes <= 0 {
				return nil, fmt.Errorf("collective: data too small to halve across %d ranks", n)
			}
			st := Step{
				Index:    s,
				Dst:      partner,
				Bytes:    ph.bytes,
				Chunk:    fmt.Sprintf("%s%d", ph.label, s),
				WaitSrc:  prevPartner,
				WaitStep: s - 1,
			}
			sch.Steps = append(sch.Steps, st)
			prevPartner = partner
		}
		out = append(out, sch)
	}
	return out, nil
}
