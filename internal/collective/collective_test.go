package collective

import (
	"fmt"
	"testing"
	"testing/quick"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

func TestDecomposeValidation(t *testing.T) {
	ranks := []topo.NodeID{0, 1, 2}
	if _, err := Decompose(Spec{Op: AllGather, Alg: Ring, Ranks: ranks[:1], Bytes: 10}); err == nil {
		t.Errorf("single rank should fail")
	}
	if _, err := Decompose(Spec{Op: AllGather, Alg: Ring, Ranks: ranks, Bytes: 0}); err == nil {
		t.Errorf("zero bytes should fail")
	}
	if _, err := Decompose(Spec{Op: AllGather, Alg: HalvingDoubling, Ranks: ranks, Bytes: 10}); err == nil {
		t.Errorf("non-power-of-2 HD should fail")
	}
}

func TestRingAllGatherShape(t *testing.T) {
	ranks := []topo.NodeID{10, 11, 12, 13}
	schs, err := Decompose(Spec{Op: AllGather, Alg: Ring, Ranks: ranks, Bytes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(schs) != 4 {
		t.Fatalf("schedules = %d", len(schs))
	}
	for i, sch := range schs {
		if len(sch.Steps) != 3 {
			t.Fatalf("rank %d: steps = %d, want 3", i, len(sch.Steps))
		}
		right := ranks[(i+1)%4]
		left := ranks[(i+3)%4]
		for s, st := range sch.Steps {
			if st.Dst != right {
				t.Fatalf("rank %d step %d dst = %d, want %d", i, s, st.Dst, right)
			}
			if st.Bytes != 1000 {
				t.Fatalf("rank %d step %d bytes = %d, want 1000", i, s, st.Bytes)
			}
			wantChunk := fmt.Sprintf("C%d", ((i-s)%4+4)%4)
			if st.Chunk != wantChunk {
				t.Fatalf("rank %d step %d chunk = %s, want %s", i, s, st.Chunk, wantChunk)
			}
			if s == 0 && st.WaitSrc != topo.None {
				t.Fatalf("step 0 must not wait, got %d", st.WaitSrc)
			}
			if s > 0 && st.WaitSrc != left {
				t.Fatalf("rank %d step %d waits on %d, want %d", i, s, st.WaitSrc, left)
			}
		}
	}
	// Flow keys are unique across (host, step).
	seen := map[fabric.FlowKey]bool{}
	for _, sch := range schs {
		for s := range sch.Steps {
			k := sch.FlowKey(s)
			if seen[k] {
				t.Fatalf("duplicate flow key %v", k)
			}
			seen[k] = true
		}
	}
}

func TestHalvingDoublingAllGatherShape(t *testing.T) {
	ranks := []topo.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	schs, err := Decompose(Spec{Op: AllGather, Alg: HalvingDoubling, Ranks: ranks, Bytes: 8000})
	if err != nil {
		t.Fatal(err)
	}
	sch := schs[3] // rank 3
	if len(sch.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(sch.Steps))
	}
	wantDst := []topo.NodeID{ranks[3^1], ranks[3^2], ranks[3^4]}
	wantBytes := []int64{1000, 2000, 4000}
	for s, st := range sch.Steps {
		if st.Dst != wantDst[s] {
			t.Fatalf("step %d dst = %d, want %d (destination must change per step)", s, st.Dst, wantDst[s])
		}
		if st.Bytes != wantBytes[s] {
			t.Fatalf("step %d bytes = %d, want %d", s, st.Bytes, wantBytes[s])
		}
	}
	if sch.Steps[0].WaitSrc != topo.None {
		t.Fatalf("first HD step must not wait")
	}
	if sch.Steps[1].WaitSrc != wantDst[0] || sch.Steps[2].WaitSrc != wantDst[1] {
		t.Fatalf("HD wait sources must be the previous partner")
	}
}

func TestHDAllReduceShape(t *testing.T) {
	ranks := []topo.NodeID{0, 1, 2, 3}
	schs, err := Decompose(Spec{Op: AllReduce, Alg: HalvingDoubling, Ranks: ranks, Bytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sch := schs[0]
	if len(sch.Steps) != 4 { // 2 halving + 2 doubling
		t.Fatalf("steps = %d, want 4", len(sch.Steps))
	}
	wantBytes := []int64{2048, 1024, 1024, 2048}
	for s, st := range sch.Steps {
		if st.Bytes != wantBytes[s] {
			t.Fatalf("step %d bytes = %d, want %d", s, st.Bytes, wantBytes[s])
		}
	}
}

// rig builds a star network with RDMA hosts for execution tests.
type rig struct {
	k     *sim.Kernel
	tp    *topo.Topology
	hosts map[topo.NodeID]*rdma.Host
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	tp := topo.New()
	var ids []topo.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, tp.AddNode(topo.KindHost, fmt.Sprintf("h%d", i)))
	}
	sw := tp.AddNode(topo.KindSwitch, "sw")
	for _, h := range ids {
		tp.AddLink(h, sw, 100*simtime.Gbps, 2*1000)
	}
	tp.ComputeRoutes()
	k := sim.New(3)
	net := fabric.NewNetwork(k, tp, fabric.DefaultConfig())
	cfg := rdma.DefaultConfig()
	cfg.CellSize = 4096
	hosts := make(map[topo.NodeID]*rdma.Host)
	for _, id := range ids {
		h, err := rdma.NewHost(k, net, id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = h
	}
	return &rig{k: k, tp: tp, hosts: hosts}
}

func runCollective(t *testing.T, r *rig, spec Spec) *Runner {
	t.Helper()
	spec.Ranks = r.tp.Hosts()
	schs, err := Decompose(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewRunner(r.k, r.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	run.Start()
	r.k.SetEventLimit(50_000_000)
	r.k.Run(simtime.Never)
	done, _ := run.Done()
	if !done {
		t.Fatalf("collective did not complete (pending steps remain)")
	}
	return run
}

func TestRingAllGatherExecution(t *testing.T) {
	r := newRig(t, 4)
	run := runCollective(t, r, Spec{Op: AllGather, Alg: Ring, Bytes: 64 * 1024})

	if got := len(run.Records()); got != 4*3 {
		t.Fatalf("records = %d, want 12", got)
	}
	// AllGather semantics: every host ends up with every chunk.
	for _, h := range r.tp.Hosts() {
		for c := 0; c < 4; c++ {
			if !run.Chunks(h)[fmt.Sprintf("C%d", c)] {
				t.Fatalf("host %d missing chunk C%d: %v", h, c, run.Chunks(h))
			}
		}
	}
	// Per-host steps are sequential and dependency-respecting.
	byHost := map[topo.NodeID][]StepRecord{}
	for _, rec := range run.Records() {
		byHost[rec.Host] = append(byHost[rec.Host], rec)
	}
	for h, recs := range byHost {
		for i := 1; i < len(recs); i++ {
			if recs[i].Step != recs[i-1].Step+1 {
				t.Fatalf("host %d steps out of order", h)
			}
			if recs[i].Start < recs[i-1].End {
				t.Fatalf("host %d step %d started before step %d ended", h, recs[i].Step, recs[i-1].Step)
			}
		}
	}
	// Table I counters: all sends and receives complete.
	for _, h := range r.tp.Hosts() {
		if run.SendIndex(h) != 3 {
			t.Fatalf("SendIndex(%d) = %d, want 3", h, run.SendIndex(h))
		}
		if run.RecvIndex(h) != 3 {
			t.Fatalf("RecvIndex(%d) = %d, want 3", h, run.RecvIndex(h))
		}
	}
}

func TestRingAllReduceExecution(t *testing.T) {
	r := newRig(t, 4)
	run := runCollective(t, r, Spec{Op: AllReduce, Alg: Ring, Bytes: 32 * 1024})
	if got := len(run.Records()); got != 4*6 {
		t.Fatalf("records = %d, want 24 (2(N-1) steps × N hosts)", got)
	}
}

func TestHDAllReduceExecution(t *testing.T) {
	r := newRig(t, 8)
	run := runCollective(t, r, Spec{Op: AllReduce, Alg: HalvingDoubling, Bytes: 64 * 1024})
	if got := len(run.Records()); got != 8*6 {
		t.Fatalf("records = %d, want 48 (2·log2(8) steps × 8 hosts)", got)
	}
}

func TestRingOnFatTree(t *testing.T) {
	ft := topo.PaperFatTree()
	k := sim.New(5)
	net := fabric.NewNetwork(k, ft.Topology, fabric.DefaultConfig())
	cfg := rdma.DefaultConfig()
	cfg.CellSize = 16 << 10
	hosts := make(map[topo.NodeID]*rdma.Host)
	ranks := ft.Hosts()[:8]
	for _, id := range ranks {
		h, err := rdma.NewHost(k, net, id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = h
	}
	schs, err := Decompose(Spec{Op: AllGather, Alg: Ring, Ranks: ranks, Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewRunner(k, hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	run.Start()
	k.SetEventLimit(50_000_000)
	k.Run(simtime.Never)
	done, at := run.Done()
	if !done {
		t.Fatalf("fat-tree collective did not complete")
	}
	// Sanity bound: 8 ranks × 7 steps of 128 KiB at 100 Gbps ≈ 10.5µs of
	// serialization per step, so total well under 1 second.
	if at > simtime.Time(1e9) {
		t.Fatalf("completion absurdly late: %v", at)
	}
}

func TestBoundByWaitDetection(t *testing.T) {
	// In a homogeneous ring, sender-side ACK completion always lags the
	// symmetric data arrival, so no step is bound by its data dependency.
	r := newRig(t, 4)
	run := runCollective(t, r, Spec{Op: AllGather, Alg: Ring, Bytes: 64 * 1024})
	for _, rec := range run.Records() {
		if rec.BoundByWait {
			t.Fatalf("homogeneous ring: step %d of host %d bound by wait", rec.Step, rec.Host)
		}
	}

	// Now stall host 0's uplink at the start: its right neighbour's step 1
	// must become bound by the late-arriving dependency (the selective
	// waiting of §III-C1).
	r2 := newRig(t, 4)
	hosts := r2.tp.Hosts()
	sw := r2.tp.Switches()[0]
	net := r2.hosts[hosts[0]].Net
	net.InjectPFCStorm(sw, 0, 0, 200_000) // pause host0's uplink for 200µs

	schs, err := Decompose(Spec{Op: AllGather, Alg: Ring, Ranks: hosts, Bytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := NewRunner(r2.k, r2.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run2.Bind()
	run2.Start()
	r2.k.SetEventLimit(50_000_000)
	r2.k.Run(simtime.Never)
	if done, _ := run2.Done(); !done {
		t.Fatalf("stalled collective never completed")
	}
	bound := false
	for _, rec := range run2.Records() {
		if rec.Step == 0 && rec.BoundByWait {
			t.Fatalf("step 0 cannot be bound by a wait")
		}
		if rec.WaitSrc == hosts[0] && rec.BoundByWait {
			bound = true
		}
	}
	if !bound {
		t.Fatalf("no step waiting on stalled host0 was bound by the wait: %+v", run2.Records())
	}
}

func TestStepHooks(t *testing.T) {
	r := newRig(t, 4)
	spec := Spec{Op: AllGather, Alg: Ring, Ranks: r.tp.Hosts(), Bytes: 16 * 1024}
	schs, err := Decompose(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewRunner(r.k, r.hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	starts, ends := 0, 0
	var completeAt simtime.Time
	run.OnStepStart = func(h topo.NodeID, s int, f fabric.FlowKey, at simtime.Time) { starts++ }
	run.OnStepEnd = func(rec StepRecord) { ends++ }
	run.OnComplete = func(at simtime.Time) { completeAt = at }
	run.Start()
	r.k.Run(simtime.Never)
	if starts != 12 || ends != 12 {
		t.Fatalf("starts=%d ends=%d, want 12/12", starts, ends)
	}
	if completeAt == 0 {
		t.Fatalf("OnComplete never fired")
	}
}

func TestBroadcastLeafIndices(t *testing.T) {
	// A leaf rank (no sends) must report zero step counters without
	// panicking, and the collective completes regardless.
	r := newRig(t, 8)
	run := runCollective(t, r, Spec{Op: Broadcast, Bytes: 32 * 1024})
	leaf := r.tp.Hosts()[7]
	if got := run.SendIndex(leaf); got != 0 {
		t.Fatalf("leaf SendIndex = %d", got)
	}
	if got := run.RecvIndex(leaf); got != 0 {
		t.Fatalf("leaf RecvIndex = %d", got)
	}
}

func TestHDReduceScatterExecution(t *testing.T) {
	r := newRig(t, 8)
	run := runCollective(t, r, Spec{Op: ReduceScatter, Alg: HalvingDoubling, Bytes: 64 * 1024})
	if got := len(run.Records()); got != 8*3 {
		t.Fatalf("records = %d, want 24 (log2(8) steps × 8 hosts)", got)
	}
}

func TestRingReduceScatterExecution(t *testing.T) {
	r := newRig(t, 4)
	run := runCollective(t, r, Spec{Op: ReduceScatter, Alg: Ring, Bytes: 32 * 1024})
	if got := len(run.Records()); got != 4*3 {
		t.Fatalf("records = %d, want 12", got)
	}
}

// Property: every decomposition's flow keys are unique and every wait
// reference points at a real step that targets the waiter, across ops,
// algorithms and rank counts.
func TestDecompositionWaitConsistencyProperty(t *testing.T) {
	ops := []Op{AllGather, ReduceScatter, AllReduce, Broadcast, AllToAll}
	algs := []Algorithm{Ring, HalvingDoubling}
	f := func(opSel, algSel, nRaw uint8) bool {
		op := ops[int(opSel)%len(ops)]
		alg := algs[int(algSel)%len(algs)]
		n := int(nRaw)%15 + 2
		if alg == HalvingDoubling && op != Broadcast && op != AllToAll {
			// HD requires power-of-2 ranks.
			n = 1 << (int(nRaw)%4 + 1)
		}
		ranks := make([]topo.NodeID, n)
		for i := range ranks {
			ranks[i] = topo.NodeID(i)
		}
		schs, err := Decompose(Spec{Op: op, Alg: alg, Ranks: ranks, Bytes: int64(n) * 4096})
		if err != nil {
			return false
		}
		byHost := map[topo.NodeID]*Schedule{}
		seen := map[fabric.FlowKey]bool{}
		for _, sch := range schs {
			byHost[sch.Host] = sch
			for s := range sch.Steps {
				k := sch.FlowKey(s)
				if seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		for _, sch := range schs {
			for _, st := range sch.Steps {
				if st.Dst == sch.Host {
					return false
				}
				if st.WaitSrc == topo.None {
					continue
				}
				src := byHost[st.WaitSrc]
				if src == nil || st.WaitStep < 0 || st.WaitStep >= len(src.Steps) {
					return false
				}
				if src.Steps[st.WaitStep].Dst != sch.Host {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
