package collective

import (
	"fmt"
	"math/bits"

	"vedrfolnir/internal/topo"
)

// Additional operations beyond the paper's evaluated set, demonstrating the
// §V extensibility claim: the decomposition applies to "nearly all
// collective algorithms" because synchronization is expressible as
// (WaitSrc, WaitStep) pairs.
const (
	// Broadcast distributes rank 0's data to every rank over a binomial
	// tree. Unlike Ring/HD, hosts have different step counts and wait on
	// arbitrary step indices of their parent — the tree shape.
	Broadcast Op = iota + 100
	// AllToAll sends a distinct chunk from every rank to every other rank
	// (linear shift pattern: no data dependencies, destination changes
	// every step).
	AllToAll
)

// BinomialTree is the broadcast algorithm.
const BinomialTree Algorithm = 100

// broadcastSchedules decomposes a binomial-tree broadcast. Rank r > 0
// receives the data at round msb(r) from parent r with its top bit cleared,
// then forwards at rounds msb(r)+1 … ⌈log2 N⌉−1 to r + 2^round (when in
// range). Rank 0 sends from round 0.
func broadcastSchedules(ranks []topo.NodeID, bytes int64, base uint16) ([]*Schedule, error) {
	n := len(ranks)
	rounds := bits.Len(uint(n - 1)) // ⌈log2 N⌉
	firstRound := func(r int) int {
		if r == 0 {
			return 0
		}
		return bits.Len(uint(r)) // msb(r)+1
	}
	var out []*Schedule
	for r, host := range ranks {
		sch := &Schedule{Host: host, Rank: r, N: n, Base: base}
		for round := firstRound(r); round < rounds; round++ {
			peer := r + (1 << round)
			if peer >= n {
				continue
			}
			st := Step{
				Index:   len(sch.Steps),
				Dst:     ranks[peer],
				Bytes:   bytes,
				Chunk:   "C0",
				WaitSrc: topo.None,
			}
			// Only the first send waits on the inbound data; later
			// sends are gated by the previous send implicitly.
			if r != 0 && len(sch.Steps) == 0 {
				parent := r &^ (1 << (bits.Len(uint(r)) - 1))
				recvRound := bits.Len(uint(r)) - 1
				st.WaitSrc = ranks[parent]
				st.WaitStep = recvRound - firstRound(parent)
			}
			sch.Steps = append(sch.Steps, st)
		}
		out = append(out, sch)
	}
	return out, nil
}

// allToAllSchedules decomposes a linear-shift all-to-all: at step s rank i
// sends the chunk destined for rank (i+s+1) mod N directly to it. There are
// no data dependencies; only the per-host send order serializes steps.
func allToAllSchedules(ranks []topo.NodeID, bytes int64, base uint16) ([]*Schedule, error) {
	n := len(ranks)
	chunk := bytes / int64(n)
	if chunk == 0 {
		chunk = 1
	}
	var out []*Schedule
	for i, host := range ranks {
		sch := &Schedule{Host: host, Rank: i, N: n, Base: base}
		for s := 0; s < n-1; s++ {
			dst := (i + s + 1) % n
			sch.Steps = append(sch.Steps, Step{
				Index:   s,
				Dst:     ranks[dst],
				Bytes:   chunk,
				Chunk:   fmt.Sprintf("A%d.%d", i, dst),
				WaitSrc: topo.None,
			})
		}
		out = append(out, sch)
	}
	return out, nil
}
