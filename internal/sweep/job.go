// Package sweep is the deterministic parallel case-sweep engine behind
// every figure harness: it schedules independent scenario cases across a
// bounded worker pool while producing byte-identical merged output at any
// worker count. Each job runs in its own isolated simulation kernel with
// its own seeded RNG (scenario.Run builds both from the job seed), results
// are merged in job order regardless of completion order, and an optional
// JSONL journal (internal/wire exchange forms) gives checkpoint/resume: a
// killed sweep restarts and skips every job whose key already completed,
// and a failing case is captured per-job instead of aborting the sweep.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/wire"
)

// Params are the run-option overrides a job applies on top of the
// harness's base options — exactly the knobs the Fig 12/13 grids vary.
// Zero fields leave the base options untouched, so the zero Params is the
// system's default operating point.
type Params struct {
	// RTTFactor is the monitor's RTT threshold multiplier (Fig 12).
	RTTFactor float64
	// MaxDetectPerStep bounds detections per step (Figs 12, 13b).
	MaxDetectPerStep int
	// FixedRTTThreshold replaces the step-grained threshold (Fig 13a).
	FixedRTTThreshold simtime.Duration
	// Unrestricted removes the detection-count bound entirely (Fig 13b).
	Unrestricted bool
	// ChaosLoss applies a uniform control-packet loss rate to the run's
	// diagnosis traffic (the robustness grid). Zero injects nothing.
	ChaosLoss float64
}

// Apply overlays the non-zero overrides onto base run options.
func (p Params) Apply(opts *scenario.RunOptions) {
	if p.RTTFactor != 0 {
		opts.Monitor.RTTFactor = p.RTTFactor
	}
	if p.MaxDetectPerStep != 0 {
		opts.Monitor.MaxDetectPerStep = p.MaxDetectPerStep
	}
	if p.FixedRTTThreshold != 0 {
		opts.Monitor.FixedRTTThreshold = p.FixedRTTThreshold
	}
	if p.Unrestricted {
		opts.Monitor.Unrestricted = true
	}
	if p.ChaosLoss != 0 {
		opts.Chaos = chaos.UniformLoss(p.ChaosLoss)
	}
}

// Job is one schedulable case: which anomaly construction, which seed,
// which system under test, and which parameter overrides.
type Job struct {
	Kind   scenario.AnomalyKind
	Seed   int64
	System scenario.SystemKind
	Params Params
}

// Key returns the job's stable identity. Two jobs with the same key run
// the same simulation, so the key is what a resumed sweep matches journal
// records against; it must not depend on worker count, scheduling order,
// or process. Floats are rendered in Go's shortest round-trip form.
func (j Job) Key() string {
	var b strings.Builder
	b.WriteString(j.Kind.String())
	b.WriteByte('/')
	b.WriteString(j.System.String())
	fmt.Fprintf(&b, "/s%d", j.Seed)
	p := j.Params
	if p.RTTFactor != 0 {
		b.WriteString("/rtt=")
		b.WriteString(strconv.FormatFloat(p.RTTFactor, 'g', -1, 64))
	}
	if p.MaxDetectPerStep != 0 {
		fmt.Fprintf(&b, "/det=%d", p.MaxDetectPerStep)
	}
	if p.FixedRTTThreshold != 0 {
		fmt.Fprintf(&b, "/fix=%d", int64(p.FixedRTTThreshold))
	}
	if p.Unrestricted {
		b.WriteString("/unrestricted")
	}
	if p.ChaosLoss != 0 {
		b.WriteString("/loss=")
		b.WriteString(strconv.FormatFloat(p.ChaosLoss, 'g', -1, 64))
	}
	return b.String()
}

// Result is one job's outcome: the per-case quantities every figure
// harness aggregates, plus the captured error when the case failed. The
// schema is fixed so results survive a journal round trip losslessly.
type Result struct {
	Job Job
	Key string

	// Err is the captured per-job failure; non-empty means every other
	// result field is meaningless.
	Err string

	Outcome        scenario.Outcome
	Completed      bool
	TelemetryBytes int64
	BandwidthBytes int64
	CollectiveTime simtime.Duration
	// Detected is the number of culprit flows the diagnosis named.
	Detected int
	// Confidence is the diagnosis's coverage score (1 when every poll and
	// port answered; only the chaos grid pushes it below 1).
	Confidence float64
	// Samples is a harness-defined per-job sample set: positive per-step
	// slowdowns for case sweeps, per-iteration durations for training
	// streams.
	Samples []simtime.Duration
}

// wireJob converts a job to its exchange form.
func wireJob(j Job) wire.SweepJob {
	return wire.SweepJob{
		Kind:       uint8(j.Kind),
		KindName:   j.Kind.String(),
		Seed:       j.Seed,
		System:     uint8(j.System),
		SystemName: j.System.String(),
		Params: wire.SweepParams{
			RTTFactor:        j.Params.RTTFactor,
			MaxDetectPerStep: j.Params.MaxDetectPerStep,
			FixedRTTNS:       int64(j.Params.FixedRTTThreshold),
			Unrestricted:     j.Params.Unrestricted,
			ChaosLoss:        j.Params.ChaosLoss,
		},
	}
}

// jobFromWire converts an exchange-form job back.
func jobFromWire(j wire.SweepJob) Job {
	return Job{
		Kind:   scenario.AnomalyKind(j.Kind),
		Seed:   j.Seed,
		System: scenario.SystemKind(j.System),
		Params: Params{
			RTTFactor:         j.Params.RTTFactor,
			MaxDetectPerStep:  j.Params.MaxDetectPerStep,
			FixedRTTThreshold: simtime.Duration(j.Params.FixedRTTNS),
			Unrestricted:      j.Params.Unrestricted,
			ChaosLoss:         j.Params.ChaosLoss,
		},
	}
}

// wireRecord converts a result to its journal line form.
func wireRecord(r Result) wire.SweepRecord {
	rec := wire.SweepRecord{
		Key:            r.Key,
		Job:            wireJob(r.Job),
		Err:            r.Err,
		Outcome:        uint8(r.Outcome),
		OutcomeName:    r.Outcome.String(),
		Completed:      r.Completed,
		TelemetryBytes: r.TelemetryBytes,
		BandwidthBytes: r.BandwidthBytes,
		CollectiveNS:   int64(r.CollectiveTime),
		Detected:       r.Detected,
		Confidence:     r.Confidence,
	}
	for _, s := range r.Samples {
		rec.SamplesNS = append(rec.SamplesNS, int64(s))
	}
	return rec
}

// resultFromWire converts a journal line back.
func resultFromWire(rec wire.SweepRecord) Result {
	r := Result{
		Job:            jobFromWire(rec.Job),
		Key:            rec.Key,
		Err:            rec.Err,
		Outcome:        scenario.Outcome(rec.Outcome),
		Completed:      rec.Completed,
		TelemetryBytes: rec.TelemetryBytes,
		BandwidthBytes: rec.BandwidthBytes,
		CollectiveTime: simtime.Duration(rec.CollectiveNS),
		Detected:       rec.Detected,
		Confidence:     rec.Confidence,
	}
	for _, s := range rec.SamplesNS {
		r.Samples = append(r.Samples, simtime.Duration(s))
	}
	return r
}
