package sweep

import (
	"bytes"
	"testing"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
)

// fakeStopwatch keeps the sweep metrics wall-clock-free in tests.
type fakeStopwatch struct{ elapsed simtime.Duration }

func (f fakeStopwatch) Start()                    {}
func (f fakeStopwatch) Elapsed() simtime.Duration { return f.elapsed }

// TestSweepTraceWorkerInvariant pins the trace contract for parallel
// sweeps: the rendered trace is laid out in job order on an accumulated
// sim-time axis, so it is byte-identical at any -workers count even
// though cases complete in scheduler order.
func TestSweepTraceWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	exec := Cases(cfg, scenario.DefaultRunOptions(cfg))
	jobs := testJobs()

	render := func(workers int) ([]byte, map[string]int64) {
		scope := &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
		if _, err := Run(jobs, exec, Options{Workers: workers, Obs: scope, Clock: fakeStopwatch{}}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := scope.Trace.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), scope.Metrics.Flatten()
	}

	trace1, m1 := render(1)
	trace8, m8 := render(8)
	if !bytes.Equal(trace1, trace8) {
		t.Error("sweep trace differs between workers=1 and workers=8")
	}
	if m1["vedr_sweep_cases_done_total"] != int64(len(jobs)) {
		t.Errorf("cases done = %d, want %d", m1["vedr_sweep_cases_done_total"], len(jobs))
	}
	for _, k := range []string{"vedr_sweep_cases", "vedr_sweep_cases_done_total",
		"vedr_sweep_cases_failed_total", "vedr_sweep_case_sim_ns_count"} {
		if m1[k] != m8[k] {
			t.Errorf("metric %s differs across worker counts: %d vs %d", k, m1[k], m8[k])
		}
	}
}

// TestSweepMetricsFailures checks the failure counter and the interrupted
// / pending gauges land in the registry (the source for vedrsweep's final
// summary line).
func TestSweepMetricsFailures(t *testing.T) {
	jobs := []Job{
		{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 1, System: scenario.Vedrfolnir},
	}
	exec := func(job Job) (Result, error) {
		r := Result{Key: job.Key()}
		if job.Seed == 1 {
			r.Err = "boom"
		} else {
			r.CollectiveTime = 1000
		}
		return r, nil
	}
	scope := &obs.Scope{Metrics: obs.NewRegistry()}
	if _, err := Run(jobs, exec, Options{Workers: 2, Obs: scope, Clock: fakeStopwatch{elapsed: 5_000_000}}); err != nil {
		t.Fatal(err)
	}
	m := scope.Metrics.Flatten()
	checks := map[string]int64{
		"vedr_sweep_cases":              2,
		"vedr_sweep_cases_done_total":   2,
		"vedr_sweep_cases_failed_total": 1,
		"vedr_sweep_cases_pending":      0,
		"vedr_sweep_interrupted":        0,
		"vedr_sweep_wall_ms":            5,
		"vedr_sweep_case_sim_ns_count":  1,
	}
	for k, want := range checks {
		if m[k] != want {
			t.Errorf("%s = %d, want %d (all: %v)", k, m[k], want, m)
		}
	}
}
