package sweep

import (
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/simtime"
)

// caseSimBoundsNS bucket per-case collective completion times: 100 µs to
// ~100 s in decades.
var caseSimBoundsNS = []int64{
	100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000, 100_000_000_000,
}

// sweepMetrics updates the registry live from the merging goroutine
// (single-threaded, completion order), so a /metrics endpoint watching a
// running sweep sees real progress. All values are order-independent
// totals — the final state is identical at any worker count.
type sweepMetrics struct {
	done    *obs.Counter
	failed  *obs.Counter
	caseSim *obs.Histogram
	reg     *obs.Registry
	clock   simtime.Stopwatch
}

func newSweepMetrics(opts Options, total, skipped int) *sweepMetrics {
	m := opts.Obs.M()
	if m == nil {
		return nil
	}
	sm := &sweepMetrics{
		done:    m.Counter("vedr_sweep_cases_done_total", "jobs finished in this process"),
		failed:  m.Counter("vedr_sweep_cases_failed_total", "jobs that returned an error"),
		caseSim: m.Histogram("vedr_sweep_case_sim_ns", "per-case collective completion (sim ns)", caseSimBoundsNS),
		reg:     m,
		clock:   opts.Clock,
	}
	if sm.clock == nil {
		sm.clock = simtime.NewSystemStopwatch()
	}
	m.Gauge("vedr_sweep_cases", "jobs in the sweep").Set(int64(total))
	m.Counter("vedr_sweep_cases_skipped_total", "jobs satisfied from the journal").Add(int64(skipped))
	return sm
}

func (sm *sweepMetrics) step(r Result) {
	if sm == nil {
		return
	}
	sm.done.Inc()
	if r.Err != "" {
		sm.failed.Inc()
		return
	}
	sm.caseSim.Observe(int64(r.CollectiveTime))
}

func (sm *sweepMetrics) finish(sum *Summary) {
	if sm == nil {
		return
	}
	sm.reg.Gauge("vedr_sweep_cases_pending", "jobs never started (interrupted runs)").Set(int64(len(sum.Pending)))
	interrupted := int64(0)
	if sum.Interrupted {
		interrupted = 1
	}
	sm.reg.Gauge("vedr_sweep_interrupted", "1 when the sweep stopped early").Set(interrupted)
	// Wall clock through the sanctioned stopwatch; feeds only the live
	// endpoint and the summary line, never anything deterministic.
	sm.reg.Gauge("vedr_sweep_wall_ms", "sweep wall-clock runtime (ms)").Set(sm.clock.Elapsed().Milliseconds())
}

// traceSweep lays the finished cases out in job order on the sim-time
// axis, one span per case with its collective completion time as the
// span's duration. Job order and per-case results are independent of
// worker count, so the rendered trace is byte-identical at any -workers.
func traceSweep(tr *obs.Tracer, sum *Summary) {
	if tr == nil {
		return
	}
	tr.NameProcess(obs.PidSweep, "sweep")
	tr.NameThread(obs.PidSweep, 0, "cases (job order, sim time)")
	pending := map[string]bool{}
	for _, k := range sum.Pending {
		pending[k] = true
	}
	var acc simtime.Time
	for i := range sum.Results {
		r := &sum.Results[i]
		if pending[r.Key] {
			continue
		}
		if r.Err != "" {
			tr.Instant(obs.PidSweep, 0, "case", "failed: "+r.Key, acc, obs.S("err", r.Err))
			continue
		}
		end := acc.Add(r.CollectiveTime)
		completed := int64(0)
		if r.Completed {
			completed = 1
		}
		tr.Span(obs.PidSweep, 0, "case", r.Key, acc, end,
			obs.S("outcome", r.Outcome.String()),
			obs.I("detected", int64(r.Detected)),
			obs.I("completed", completed),
			obs.I("confidence_permille", int64(r.Confidence*1000)))
		acc = end
	}
}
